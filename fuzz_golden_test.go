package deltasigma_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"deltasigma/internal/fuzzing"
)

// fuzzGoldenSeeds is the pinned corpus size: seeds 1..64 of the scenario
// generator, summarized as seed → fingerprint → pass.
const fuzzGoldenSeeds = 64

// marshalFuzzSummary renders the corpus digest the golden file pins.
func marshalFuzzSummary(sums []fuzzing.Summary) ([]byte, error) {
	return json.MarshalIndent(sums, "", "  ")
}

// TestFuzzGolden locks the fuzzer end to end, alongside the sweep and
// churn goldens: the 64-seed corpus summary — which scenario every seed
// generates and what the audited run computes — is byte-identical across
// worker counts and pinned against testdata/fuzz_golden.json, so neither
// the generator, the engine, nor the audit layer can drift silently. The
// pinned corpus is all-pass: any engine change that breaks a conservation
// law flips a pass bit and fails here before CI's bigger fuzz-smoke runs.
func TestFuzzGolden(t *testing.T) {
	serial := fuzzing.Summarize(fuzzing.Campaign(1, fuzzGoldenSeeds, 1))
	js1, err := marshalFuzzSummary(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := fuzzing.Summarize(fuzzing.Campaign(1, fuzzGoldenSeeds, *sweepWorkers))
	jsN, err := marshalFuzzSummary(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, jsN) {
		t.Fatalf("fuzz corpus summary differs between -workers=1 and -workers=%d", *sweepWorkers)
	}
	for _, s := range serial {
		if !s.Pass {
			t.Errorf("seed %d fails its invariants in the pinned corpus", s.Seed)
		}
	}

	path := filepath.Join("testdata", "fuzz_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(js1, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(append(js1, '\n'), want) {
		t.Errorf("fuzz corpus diverged from golden file %s:\ngot:\n%s\nwant:\n%s", path, js1, want)
	}
}
