// Package deltasigma is a from-scratch reproduction of "Robustness to
// Inflated Subscription in Multicast Congestion Control" (Gorinsky, Jain,
// Vin, Zhang — SIGCOMM 2003 / UT Austin TR2003-09): DELTA, the in-band
// distribution of dynamic group keys to congestion-eligible receivers, and
// SIGMA, the generic key-checking group-management architecture at edge
// routers, together with the FLID-DL/FLID-DS protocols, the network
// simulator they run on, and the full evaluation harness.
//
// This root package is the public facade: it re-exports the core types and
// offers a compact builder for protected multicast experiments. The
// examples/ directory shows it in use; internal packages carry the
// machinery (one package per subsystem, see DESIGN.md).
package deltasigma

import (
	"deltasigma/internal/core"
	"deltasigma/internal/flid"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
	"deltasigma/internal/topo"
)

// Re-exported building blocks.
type (
	// Session describes a multi-group multicast session (identity, group
	// address block, rate schedule, slot clock).
	Session = core.Session
	// RateSchedule is the multiplicative cumulative layering of §5.1.
	RateSchedule = core.RateSchedule
	// Time is a virtual timestamp/duration in nanoseconds.
	Time = sim.Time
	// Meter accumulates delivered bytes into time bins.
	Meter = stats.Meter
	// Dumbbell is the paper's single-bottleneck topology.
	Dumbbell = topo.Dumbbell
	// Host is an end system of the simulated network.
	Host = netsim.Host
	// Addr is a network (host or group) address.
	Addr = packet.Addr
)

// Virtual time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// PaperSchedule returns the §5.1 rate schedule: 10 groups from 100 Kbps,
// factor 1.5.
func PaperSchedule() RateSchedule { return core.PaperSchedule() }

// Experiment is a ready-to-run protected (or baseline) multicast setup on
// the paper's dumbbell.
type Experiment struct {
	// Topology under the experiment.
	Net *Dumbbell
	// Protected selects FLID-DS (true) or plain FLID-DL (false).
	Protected bool

	slot     sim.Time
	nextID   uint16
	finished bool
	sessions []*ExperimentSession
}

// ExperimentSession is one multicast session within an experiment.
type ExperimentSession struct {
	Sess      *Session
	Sender    *flid.Sender
	Receivers []*Receiver
	exp       *Experiment
}

// Receiver wraps either protocol's receiver behind one interface.
type Receiver struct {
	dl  *flid.Receiver
	ds  *flid.DSReceiver
	atk interface{ Inflate() }
}

// Start begins receiving.
func (r *Receiver) Start() {
	if r.dl != nil {
		r.dl.Start()
	} else {
		r.ds.Start()
	}
}

// Level reports the current subscription level.
func (r *Receiver) Level() int {
	if r.dl != nil {
		return r.dl.Level()
	}
	return r.ds.Level()
}

// Meter returns the receiver's throughput meter.
func (r *Receiver) Meter() *Meter {
	if r.dl != nil {
		return r.dl.Meter
	}
	return r.ds.Meter
}

// Inflate launches the inflated-subscription attack from this receiver (it
// must have been added with AddAttacker).
func (r *Receiver) Inflate() {
	if r.atk != nil {
		r.atk.Inflate()
	}
}

// NewExperiment builds a dumbbell with the given bottleneck capacity in
// bits/s, protected (FLID-DS) or not (FLID-DL).
func NewExperiment(bottleneck int64, protected bool, seed uint64) *Experiment {
	e := &Experiment{
		Net:       topo.New(topo.PaperConfig(bottleneck, seed)),
		Protected: protected,
		slot:      500 * sim.Millisecond,
	}
	if protected {
		e.slot = 250 * sim.Millisecond
	}
	return e
}

// AddSession creates a multicast session with the paper's rate schedule and
// the given number of well-behaved receivers.
func (e *Experiment) AddSession(receivers int) *ExperimentSession {
	e.nextID++
	sess := &core.Session{
		ID:         e.nextID,
		BaseAddr:   packet.MulticastBase + packet.Addr(int(e.nextID)*32),
		Rates:      core.PaperSchedule(),
		SlotDur:    e.slot,
		PacketSize: 576,
	}
	src := e.Net.AddSource("")
	for _, a := range sess.Addrs() {
		e.Net.Fabric.SetSource(a, src.ID())
	}
	mode := flid.DL
	if e.Protected {
		mode = flid.DS
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	es := &ExperimentSession{
		Sess:   sess,
		Sender: flid.NewSender(src, sess, mode, policy, e.Net.RNG.Fork(), nil, 2),
		exp:    e,
	}
	for i := 0; i < receivers; i++ {
		es.AddReceiver()
	}
	e.sessions = append(e.sessions, es)
	return es
}

// AddReceiver attaches one more well-behaved receiver to the session.
func (s *ExperimentSession) AddReceiver() *Receiver {
	host := s.exp.Net.AddReceiver("")
	r := &Receiver{}
	if s.exp.Protected {
		r.ds = flid.NewDSReceiver(host, s.Sess, s.exp.Net.Right.Addr())
	} else {
		r.dl = flid.NewReceiver(host, s.Sess, s.exp.Net.Right.Addr())
	}
	s.Receivers = append(s.Receivers, r)
	return r
}

// AddAttacker attaches an inflated-subscription attacker to the session.
func (s *ExperimentSession) AddAttacker() *Receiver {
	host := s.exp.Net.AddReceiver("")
	r := &Receiver{}
	if s.exp.Protected {
		a := flid.NewDSAttacker(host, s.Sess, s.exp.Net.Right.Addr(), s.exp.Net.RNG.Fork())
		r.ds = a.DSReceiver
		r.atk = a
	} else {
		a := flid.NewAttacker(host, s.Sess, s.exp.Net.Right.Addr())
		r.dl = a.Receiver
		r.atk = a
	}
	s.Receivers = append(s.Receivers, r)
	return r
}

// Start finalizes wiring (routes, gatekeeper) and starts every sender and
// receiver at time zero. Call exactly once, before Run.
func (e *Experiment) Start() {
	if e.finished {
		return
	}
	e.finished = true
	e.Net.Done()
	if e.Protected {
		sigma.NewController(e.Net.Right, sigma.DefaultConfig(e.slot))
	} else {
		mcast.NewIGMP(e.Net.Right)
	}
	for _, s := range e.sessions {
		s := s
		e.Net.Sched.At(0, func() {
			s.Sender.Start()
			for _, r := range s.Receivers {
				r.Start()
			}
		})
	}
}

// At schedules fn at virtual time t.
func (e *Experiment) At(t Time, fn func()) { e.Net.Sched.At(t, fn) }

// Run advances the simulation to the given virtual time.
func (e *Experiment) Run(until Time) { e.Net.Sched.RunUntil(until) }
