// Package deltasigma is a from-scratch reproduction of "Robustness to
// Inflated Subscription in Multicast Congestion Control" (Gorinsky, Jain,
// Vin, Zhang — SIGCOMM 2003 / UT Austin TR2003-09): DELTA, the in-band
// distribution of dynamic group keys to congestion-eligible receivers, and
// SIGMA, the generic key-checking group-management architecture at edge
// routers, together with the FLID-DL/FLID-DS protocols, the network
// simulator they run on, and the full evaluation harness.
//
// This root package is the public facade: a composable experiment builder
// over the internal machinery (one package per subsystem, see DESIGN.md).
// Experiments are assembled from functional options:
//
//	exp, err := deltasigma.New(
//		deltasigma.WithDumbbell(1_000_000),
//		deltasigma.WithProtocol("flid-ds"),
//		deltasigma.WithSeed(7),
//	)
//	sess := exp.AddSession(2)   // one multicast session, two receivers
//	exp.AddTCP(0)               // a TCP Reno competitor
//	res := exp.Run(60 * deltasigma.Second)
//
// Three topologies ship with the package — the paper's dumbbell
// (WithDumbbell), a multi-bottleneck chain (WithChain) and a star with one
// SIGMA gatekeeper per edge (WithStar) — and any Topology implementation
// plugs in through WithTopology. Protocol variants are looked up by name in
// a registry (WithProtocol): "flid-dl", "flid-ds", "flid-ds-replicated"
// and "flid-ds-threshold" are built in alongside the competitor suite
// "mfcc", "dsc" and "abr-cf" (see docs/PROTOCOLS.md), and RegisterProtocol
// adds more.
// Run returns a typed Result carrying per-receiver throughput series,
// bottleneck utilization and loss counts. The examples/ directory shows
// the API in use.
package deltasigma

import (
	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
	"deltasigma/internal/topo"
)

// Re-exported building blocks.
type (
	// Session describes a multi-group multicast session (identity, group
	// address block, rate schedule, slot clock).
	Session = core.Session
	// RateSchedule is the multiplicative cumulative layering of §5.1.
	RateSchedule = core.RateSchedule
	// Time is a virtual timestamp/duration in nanoseconds.
	Time = sim.Time
	// RNG is the deterministic random source experiments fork from.
	RNG = sim.RNG
	// Meter accumulates delivered bytes into time bins.
	Meter = stats.Meter
	// Point is one bin of a throughput time series.
	Point = stats.Point
	// Host is an end system of the simulated network.
	Host = netsim.Host
	// Link is a unidirectional rate/delay pipe with a drop-tail queue.
	Link = netsim.Link
	// Addr is a network (host or group) address.
	Addr = packet.Addr
	// EdgeRouter is a gatekept multicast edge router — what EdgeAssisted
	// protocols hang their router-resident agents on.
	EdgeRouter = mcast.Router
	// PacketPool recycles packet envelopes across experiments; see
	// WithPacketPool. One pool must never serve concurrent experiments.
	PacketPool = packet.Pool

	// Topology is an assembled simulated network an experiment runs on.
	Topology = topo.Topology
	// Port couples a receiver host with its gatekeeping edge router.
	Port = topo.Port
	// Dumbbell is the paper's single-bottleneck topology.
	Dumbbell = topo.Dumbbell
	// DumbbellConfig parameterizes a Dumbbell.
	DumbbellConfig = topo.Config
	// Chain is a multi-bottleneck parking-lot topology.
	Chain = topo.Chain
	// ChainConfig parameterizes a Chain.
	ChainConfig = topo.ChainConfig
	// Star is a hub-and-spoke topology with per-edge gatekeepers.
	Star = topo.Star
	// StarConfig parameterizes a Star.
	StarConfig = topo.StarConfig
)

// Virtual time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultDelay passed as a receiver access delay selects the topology's
// default side delay; zero is a genuine zero-delay link.
const DefaultDelay = topo.DefaultDelay

// PaperSchedule returns the §5.1 rate schedule: 10 groups from 100 Kbps,
// factor 1.5.
func PaperSchedule() RateSchedule { return core.PaperSchedule() }

// PaperDumbbell builds the §5.1 dumbbell with the given bottleneck
// capacity in bits/s, ready for WithTopology.
func PaperDumbbell(bottleneck int64, seed uint64) *Dumbbell {
	return topo.New(topo.PaperConfig(bottleneck, seed))
}

// NewDumbbell builds a dumbbell from an explicit configuration.
func NewDumbbell(cfg DumbbellConfig) *Dumbbell { return topo.New(cfg) }

// NewChain builds a multi-bottleneck chain.
func NewChain(cfg ChainConfig) *Chain { return topo.NewChain(cfg) }

// NewStar builds a star with one bottleneck spoke per edge router.
func NewStar(cfg StarConfig) *Star { return topo.NewStar(cfg) }
