package deltasigma

import (
	"fmt"

	"deltasigma/internal/dynamics"
	"deltasigma/internal/netsim"
)

// TimelineEvent is a typed mid-run event scripted against virtual time.
// Events are declared up front — through WithTimeline or AddEvents — and
// resolved against the wired experiment when it starts: session, receiver
// and link references are symbolic indices until then, so a timeline can
// be built before any session exists (and by code, like Sweep, that never
// sees the concrete objects). Events at the same virtual time fire in
// declaration order.
//
// The built-in events cover the three families of change the paper's
// robustness story is about: membership churn (ReceiverJoin, ReceiverLeave,
// PoissonChurn), attacker lifecycle (AttackerOnset, AttackerStop), and
// path dynamics (LinkSetCapacity, LinkSetDelay, LinkDown, LinkUp,
// LinkFlap).
type TimelineEvent interface {
	// resolve validates the event against the started experiment and
	// installs its actions on the experiment timeline.
	resolve(e *Experiment) error
}

// ReceiverJoin (re)starts a receiver mid-run: it joins the session at the
// minimal level through its protocol's control path (IGMP or SIGMA
// session-join). Session and Receiver are 1-based, matching labels like
// S1R2. Joining an already-joined receiver is a no-op.
type ReceiverJoin struct {
	At       Time
	Session  int
	Receiver int
}

func (ev ReceiverJoin) resolve(e *Experiment) error {
	r, err := e.receiverRef("ReceiverJoin", ev.Session, ev.Receiver)
	if err != nil {
		return err
	}
	e.timeline.Add(ev.At, r.Start)
	return nil
}

// ReceiverLeave stops a receiver mid-run: it leaves every subscribed group
// (graft/prune churn under load) while its packets may still be queued or
// in flight — deliveries already committed drain normally. Leaving an
// already-left receiver is a no-op.
type ReceiverLeave struct {
	At       Time
	Session  int
	Receiver int
}

func (ev ReceiverLeave) resolve(e *Experiment) error {
	r, err := e.receiverRef("ReceiverLeave", ev.Session, ev.Receiver)
	if err != nil {
		return err
	}
	e.timeline.Add(ev.At, r.Stop)
	return nil
}

// AttackerOnset launches the inflated-subscription attack mid-session —
// the paper's core threat. Receiver selects one attacker (1-based); zero
// means every attacker in the session. Resolution fails if a selected
// receiver was not added with AddAttacker.
type AttackerOnset struct {
	At       Time
	Session  int
	Receiver int
}

func (ev AttackerOnset) resolve(e *Experiment) error {
	rs, err := e.attackerRefs("AttackerOnset", ev.Session, ev.Receiver)
	if err != nil {
		return err
	}
	for _, r := range rs {
		e.timeline.Add(ev.At, r.Inflate)
	}
	return nil
}

// AttackerStop calls an attack off mid-session: IGMP inflation joins are
// withdrawn and (for protected variants) the key-guessing loop goes quiet,
// while the attacker's legitimate receiver keeps its entitled share.
// Receiver zero means every attacker in the session.
type AttackerStop struct {
	At       Time
	Session  int
	Receiver int
}

func (ev AttackerStop) resolve(e *Experiment) error {
	rs, err := e.attackerRefs("AttackerStop", ev.Session, ev.Receiver)
	if err != nil {
		return err
	}
	for _, r := range rs {
		e.timeline.Add(ev.At, r.Deflate)
	}
	return nil
}

// PoissonChurn drives session-membership churn: toggle events arrive as a
// Poisson process at Rate events per second across the session's
// well-behaved population (attackers are exempt — churning them would blur
// the suppression statistics), each toggling one uniformly chosen member
// between joined and left. Cohort members count individually: a cohort of
// n carries n times the toggle weight of a single receiver, so aggregated
// and exact populations churn at the same per-member rate. Randomness
// forks from the experiment RNG when the experiment starts, so a seeded
// run replays exactly.
type PoissonChurn struct {
	Session  int
	Rate     float64 // expected toggles/second across the member set
	From, To Time    // active window
}

// churnTarget is one uniformly toggleable slice of a session's honest
// population: n members behind one toggle function taking a member index.
type churnTarget struct {
	n      uint64
	toggle func(idx uint64)
}

func (ev PoissonChurn) resolve(e *Experiment) error {
	s, err := e.sessionRef("PoissonChurn", ev.Session)
	if err != nil {
		return err
	}
	if ev.Rate <= 0 {
		return fmt.Errorf("PoissonChurn: rate %v must be positive", ev.Rate)
	}
	if ev.To <= ev.From {
		return fmt.Errorf("PoissonChurn: window [%v,%v) is empty", ev.From, ev.To)
	}
	var targets []churnTarget
	var total uint64
	for _, r := range s.Receivers {
		if r.Attacker() {
			continue
		}
		r := r
		targets = append(targets, churnTarget{n: 1, toggle: func(uint64) {
			if r.Joined() {
				r.Stop()
			} else {
				r.Start()
			}
		}})
		total++
	}
	for _, c := range s.Cohorts {
		targets = append(targets, churnTarget{n: c.Members(), toggle: c.Toggle})
		total += c.Members()
	}
	if total == 0 {
		return fmt.Errorf("PoissonChurn: session %d has no well-behaved receivers", ev.Session)
	}
	if total > uint64(int(^uint(0)>>1)) {
		return fmt.Errorf("PoissonChurn: session %d population %d overflows the toggle index", ev.Session, total)
	}
	sched := e.Topo.Scheduler()
	c := dynamics.NewChurn(sched, e.Topo.Rand().Fork(), ev.Rate, ev.To, int(total), func(i int) {
		idx := uint64(i)
		for _, t := range targets {
			if idx < t.n {
				t.toggle(idx)
				return
			}
			idx -= t.n
		}
	})
	e.churns = append(e.churns, c)
	c.Start(ev.From)
	return nil
}

// LinkSetCapacity re-rates a bottleneck link mid-run (degradation or
// upgrade). Link indexes Topo.Bottlenecks(); a packet already serializing
// completes on the old timing.
type LinkSetCapacity struct {
	At   Time
	Link int
	Bps  int64
}

func (ev LinkSetCapacity) resolve(e *Experiment) error {
	l, err := e.bottleneckRef("LinkSetCapacity", ev.Link)
	if err != nil {
		return err
	}
	if ev.Bps <= 0 {
		return fmt.Errorf("LinkSetCapacity: %d bits/s must be positive", ev.Bps)
	}
	e.timeline.Add(ev.At, func() { l.SetRate(ev.Bps) })
	return nil
}

// LinkSetDelay changes a bottleneck's propagation delay mid-run. In-flight
// packets keep their delivery times; the FIFO pipeline never reorders.
type LinkSetDelay struct {
	At    Time
	Link  int
	Delay Time
}

func (ev LinkSetDelay) resolve(e *Experiment) error {
	l, err := e.bottleneckRef("LinkSetDelay", ev.Link)
	if err != nil {
		return err
	}
	if ev.Delay < 0 {
		return fmt.Errorf("LinkSetDelay: delay %v is negative", ev.Delay)
	}
	e.timeline.Add(ev.At, func() { l.SetDelay(ev.Delay) })
	return nil
}

// LinkDown takes a bottleneck down mid-run: queued and in-flight packets
// are discarded (released back to the pool) and arrivals are dropped until
// a LinkUp.
type LinkDown struct {
	At   Time
	Link int
}

func (ev LinkDown) resolve(e *Experiment) error {
	l, err := e.bottleneckRef("LinkDown", ev.Link)
	if err != nil {
		return err
	}
	e.timeline.Add(ev.At, l.Down)
	return nil
}

// LinkUp brings a downed bottleneck back.
type LinkUp struct {
	At   Time
	Link int
}

func (ev LinkUp) resolve(e *Experiment) error {
	l, err := e.bottleneckRef("LinkUp", ev.Link)
	if err != nil {
		return err
	}
	e.timeline.Add(ev.At, l.Up)
	return nil
}

// LinkFlap cycles a bottleneck down and up: every Period the link goes
// down and comes back DownFor later (default Period/10). The up transition
// always fires, even past To, so a flapped link is never stranded down.
type LinkFlap struct {
	Link     int
	Period   Time
	DownFor  Time // 0 = Period/10
	From, To Time
}

func (ev LinkFlap) resolve(e *Experiment) error {
	l, err := e.bottleneckRef("LinkFlap", ev.Link)
	if err != nil {
		return err
	}
	downFor := ev.DownFor
	if downFor == 0 {
		downFor = ev.Period / 10
	}
	if ev.Period <= 0 || downFor <= 0 || downFor >= ev.Period {
		return fmt.Errorf("LinkFlap: down time %v must be inside period %v", downFor, ev.Period)
	}
	if ev.To <= ev.From {
		return fmt.Errorf("LinkFlap: window [%v,%v) is empty", ev.From, ev.To)
	}
	f := dynamics.NewFlapper(e.Topo.Scheduler(), ev.Period, downFor, ev.To, l.Down, l.Up)
	f.Start(ev.From)
	return nil
}

// ---------------------------------------------------------------------------
// Experiment wiring.

// AddEvents appends typed events to the experiment timeline. Like all
// wiring calls it must precede Start; WithTimeline is the equivalent
// construction-time option.
//
// Timeline events run on the main scheduler and mutate receiver state, so
// they are incompatible with sharded execution: on an experiment built
// with WithShards, AddEvents downgrades to serial execution while no
// receiver has migrated yet (recording the reason in Result.Sharding), and
// panics once receivers live on other shards — script events through
// WithTimeline, which forces the serial fallback up front, or add them
// before attaching receivers.
func (e *Experiment) AddEvents(events ...TimelineEvent) {
	e.mustNotHaveStarted("AddEvents")
	for _, ev := range events {
		if ev == nil {
			panic("deltasigma: AddEvents(nil event)")
		}
	}
	if len(events) > 0 && e.shardGroup != nil {
		if e.shardMigrated > 0 {
			panic("deltasigma: AddEvents on a sharded experiment with migrated receivers; use WithTimeline or add events before receivers")
		}
		e.shardGroup = nil
		e.shardFallback = "timeline events added: dynamics mutate cross-shard state"
	}
	e.events = append(e.events, events...)
}

// TimelineLen reports how many scripted timeline entries the experiment
// carries (after Start this includes resolved multi-action events).
func (e *Experiment) TimelineLen() int { return e.timeline.Len() }

// ChurnEvents totals membership toggles fired by PoissonChurn generators
// so far.
func (e *Experiment) ChurnEvents() uint64 {
	var n uint64
	for _, c := range e.churns {
		n += c.Events
	}
	return n
}

// resolveEvents validates and installs the declared timeline. Called once
// from Start; errors panic there — by Start time a bad index is a wiring
// bug exactly like AddReceiver on a started experiment.
func (e *Experiment) resolveEvents() error {
	for _, ev := range e.events {
		if err := ev.resolve(e); err != nil {
			return err
		}
	}
	return nil
}

func (e *Experiment) sessionRef(op string, idx int) (*ExperimentSession, error) {
	if idx < 1 || idx > len(e.sessions) {
		return nil, fmt.Errorf("%s: session %d outside 1..%d", op, idx, len(e.sessions))
	}
	return e.sessions[idx-1], nil
}

func (e *Experiment) receiverRef(op string, sess, idx int) (*Receiver, error) {
	s, err := e.sessionRef(op, sess)
	if err != nil {
		return nil, err
	}
	if idx < 1 || idx > len(s.Receivers) {
		return nil, fmt.Errorf("%s: receiver %d outside 1..%d of session %d", op, idx, len(s.Receivers), sess)
	}
	return s.Receivers[idx-1], nil
}

// attackerRefs resolves one attacker (idx >= 1) or every attacker in the
// session (idx == 0).
func (e *Experiment) attackerRefs(op string, sess, idx int) ([]*Receiver, error) {
	s, err := e.sessionRef(op, sess)
	if err != nil {
		return nil, err
	}
	if idx != 0 {
		r, err := e.receiverRef(op, sess, idx)
		if err != nil {
			return nil, err
		}
		if !r.Attacker() {
			return nil, fmt.Errorf("%s: receiver %s is not an attacker", op, r.Label())
		}
		return []*Receiver{r}, nil
	}
	var out []*Receiver
	for _, r := range s.Receivers {
		if r.Attacker() {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: session %d has no attackers", op, sess)
	}
	return out, nil
}

func (e *Experiment) bottleneckRef(op string, idx int) (*netsim.Link, error) {
	links := e.Topo.Bottlenecks()
	if idx < 0 || idx >= len(links) {
		return nil, fmt.Errorf("%s: link %d outside 0..%d", op, idx, len(links)-1)
	}
	return links[idx], nil
}
