// Replicated multicast demo: the Figure 5 DELTA instantiation. The session
// offers the same content in six groups at rates 100..759 Kbps; a receiver
// subscribes to exactly one group and moves between them with keys.
package main

import (
	"fmt"

	"deltasigma/internal/core"
	"deltasigma/internal/packet"
	"deltasigma/internal/replicated"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

func main() {
	d := topo.New(topo.PaperConfig(300_000, 11))
	src := d.AddSource("src")
	rcvHost := d.AddReceiver("rcv")
	d.Done()

	slot := 250 * sim.Millisecond
	sigma.NewController(d.Right, sigma.DefaultConfig(slot))

	sess := &core.Session{
		ID:         1,
		BaseAddr:   packet.MulticastBase,
		Rates:      core.RateSchedule{Base: 100_000, Mult: 1.5, N: 6},
		SlotDur:    slot,
		PacketSize: 576,
	}
	for _, a := range sess.Addrs() {
		d.Fabric.SetSource(a, src.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	snd := replicated.NewSender(src, sess, policy, d.RNG.Fork(), 2)
	rcv := replicated.NewReceiver(rcvHost, sess, d.Right.Addr())

	d.Sched.At(0, func() { snd.Start(); rcv.Start() })

	fmt.Println("Replicated multicast (one group at a time) on a 300 Kbps link:")
	for t := sim.Time(5) * sim.Second; t <= 60*sim.Second; t += 5 * sim.Second {
		d.Sched.RunUntil(t)
		fmt.Printf("t=%2.0fs group=%d (stream rate %3.0f Kbps) delivered=%3.0f Kbps switches=%d\n",
			t.Sec(), rcv.Group(),
			float64(sess.Rates.Cumulative(rcv.Group()))/1000,
			rcv.Meter.AvgKbps(t-5*sim.Second, t), rcv.Switches)
	}
	fmt.Println("\nThe receiver settles on the fastest stream its key entitlement")
	fmt.Println("sustains: group keys come from the Figure 5 DELTA instantiation")
	fmt.Println("(top key per group, decrease key one group up, increase key below).")
}
