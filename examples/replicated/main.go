// Replicated multicast demo: the Figure 5 DELTA instantiation, selected
// through the protocol registry. The session offers the same content in
// six groups at rates 100..759 Kbps; a receiver subscribes to exactly one
// group (Level reports which) and moves between them with keys.
package main

import (
	"fmt"

	"deltasigma"
)

func main() {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(300_000),
		deltasigma.WithProtocol("flid-ds-replicated"),
		deltasigma.WithSchedule(deltasigma.RateSchedule{Base: 100_000, Mult: 1.5, N: 6}),
		deltasigma.WithSeed(11),
	)
	sess := exp.AddSession(1)
	r := sess.Receivers[0]

	fmt.Println("Replicated multicast (one group at a time) on a 300 Kbps link:")
	for t := deltasigma.Time(5) * deltasigma.Second; t <= 60*deltasigma.Second; t += 5 * deltasigma.Second {
		exp.Run(t)
		fmt.Printf("t=%2.0fs group=%d (stream rate %3.0f Kbps) delivered=%3.0f Kbps\n",
			t.Sec(), r.Level(),
			float64(sess.Sess.Rates.Cumulative(r.Level()))/1000,
			r.Meter().AvgKbps(t-5*deltasigma.Second, t))
	}
	fmt.Println("\nThe receiver settles on the fastest stream its key entitlement")
	fmt.Println("sustains: group keys come from the Figure 5 DELTA instantiation")
	fmt.Println("(top key per group, decrease key one group up, increase key below).")
}
