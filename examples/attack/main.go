// Attack demo: the paper's Figure 1 vs Figure 7 narrative. Two multicast
// sessions and two TCP flows share a 1 Mbps bottleneck; receiver F1 turns
// malicious halfway through and inflates its subscription to all 10 groups.
// Under plain FLID-DL it captures most of the link; under FLID-DS the same
// attack changes nothing. The two runs differ in exactly one option:
// WithProtocol.
package main

import (
	"fmt"

	"deltasigma"
)

func run(protocol string) (pre, post, victimPost float64) {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(1_000_000),
		deltasigma.WithProtocol(protocol),
		deltasigma.WithSeed(2003),
	)
	atk := exp.AddSession(0).AddAttacker()
	s2 := exp.AddSession(1)
	exp.AddTCP(0)
	exp.AddTCP(0)

	const half = 60 * deltasigma.Second
	exp.At(half, atk.Inflate)
	exp.Run(2 * half)

	pre = atk.Meter().AvgKbps(20*deltasigma.Second, half)
	post = atk.Meter().AvgKbps(half+20*deltasigma.Second, 2*half)
	victimPost = s2.Receivers[0].Meter().AvgKbps(half+20*deltasigma.Second, 2*half)
	return pre, post, victimPost
}

func main() {
	fmt.Println("Inflated subscription on a 1 Mbps bottleneck (fair share 250 Kbps)")
	fmt.Println()

	pre, post, victim := run("flid-dl")
	fmt.Printf("FLID-DL (IGMP, trusted receivers):\n")
	fmt.Printf("  attacker:  %3.0f Kbps -> %3.0f Kbps after inflating\n", pre, post)
	fmt.Printf("  victim F2: %3.0f Kbps while the attack runs\n", victim)
	fmt.Println()

	pre, post, victim = run("flid-ds")
	fmt.Printf("FLID-DS (DELTA + SIGMA):\n")
	fmt.Printf("  attacker:  %3.0f Kbps -> %3.0f Kbps after 'inflating'\n", pre, post)
	fmt.Printf("  victim F2: %3.0f Kbps while the attack runs\n", victim)
	fmt.Println()
	fmt.Println("The protected attacker cannot name keys for groups its congestion")
	fmt.Println("state does not entitle it to, so the edge router never forwards them.")
}
