// Quickstart: one DELTA+SIGMA-protected FLID-DS session on the paper's
// single-bottleneck topology. Two receivers converge to the fair
// subscription level; the program prints their level and throughput.
package main

import (
	"fmt"

	"deltasigma"
)

func main() {
	// 250 Kbps bottleneck: the fair level is 3 (100·1.5² = 225 Kbps).
	exp := deltasigma.NewExperiment(250_000, true, 42)
	sess := exp.AddSession(2)
	exp.Start()

	for t := deltasigma.Time(10) * deltasigma.Second; t <= 60*deltasigma.Second; t += 10 * deltasigma.Second {
		exp.Run(t)
		fmt.Printf("t=%2.0fs", t.Sec())
		for i, r := range sess.Receivers {
			fmt.Printf("  receiver%d: level=%d rate=%3.0fKbps", i+1, r.Level(),
				r.Meter().AvgKbps(t-10*deltasigma.Second, t))
		}
		fmt.Println()
	}

	fmt.Println("\nBoth receivers hold the fair level without any receiver trust:")
	fmt.Println("every slot they reconstruct keys from received packets (DELTA) and")
	fmt.Println("prove them to the edge router (SIGMA).")
}
