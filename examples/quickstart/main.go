// Quickstart: one DELTA+SIGMA-protected FLID-DS session on the paper's
// single-bottleneck topology, assembled with the options API. Two
// receivers converge to the fair subscription level; the program prints
// their level and throughput, then the typed result summary.
package main

import (
	"fmt"

	"deltasigma"
)

func main() {
	// 250 Kbps bottleneck: the fair level is 3 (100·1.5² = 225 Kbps).
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(250_000),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(42),
	)
	sess := exp.AddSession(2)

	var res *deltasigma.Result
	for t := deltasigma.Time(10) * deltasigma.Second; t <= 60*deltasigma.Second; t += 10 * deltasigma.Second {
		res = exp.Run(t) // Run auto-starts the experiment
		fmt.Printf("t=%2.0fs", t.Sec())
		for i, r := range sess.Receivers {
			fmt.Printf("  receiver%d: level=%d rate=%3.0fKbps", i+1, r.Level(),
				r.Meter().AvgKbps(t-10*deltasigma.Second, t))
		}
		fmt.Println()
	}
	fmt.Printf("\nbottleneck utilization %.0f%%, %d packets lost\n",
		100*res.Utilization(), res.LostPackets)

	fmt.Println("\nBoth receivers hold the fair level without any receiver trust:")
	fmt.Println("every slot they reconstruct keys from received packets (DELTA) and")
	fmt.Println("prove them to the edge router (SIGMA).")
}
