// Threshold-protocol demo: the Shamir-sharing DELTA instantiation (§3.1.2).
// An RLM/WEBRC-style receiver is congested only when its loss rate exceeds
// the per-level tolerance; its level key reconstructs exactly when it
// caught enough Shamir shares.
package main

import (
	"fmt"

	"deltasigma/internal/core"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/threshold"
	"deltasigma/internal/topo"
)

func run(label string, thresh []float64, seed uint64) {
	d := topo.New(topo.PaperConfig(300_000, seed))
	src := d.AddSource("src")
	rcvHost := d.AddReceiver("rcv")
	d.Done()
	slot := 250 * sim.Millisecond
	sigma.NewController(d.Right, sigma.DefaultConfig(slot))

	sess := &core.Session{
		ID:         1,
		BaseAddr:   packet.MulticastBase,
		Rates:      core.RateSchedule{Base: 100_000, Mult: 1.5, N: 6},
		SlotDur:    slot,
		PacketSize: 576,
	}
	for _, a := range sess.Addrs() {
		d.Fabric.SetSource(a, src.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	snd := threshold.NewSender(src, sess, thresh, policy, d.RNG.Fork(), 2)
	rcv := threshold.NewReceiver(rcvHost, sess, thresh, d.Right.Addr())
	d.Sched.At(0, func() { snd.Start(); rcv.Start() })

	fmt.Printf("%s on a 300 Kbps link:\n", label)
	for t := sim.Time(10) * sim.Second; t <= 60*sim.Second; t += 10 * sim.Second {
		d.Sched.RunUntil(t)
		fmt.Printf("  t=%2.0fs level=%d rate=%3.0f Kbps\n",
			t.Sec(), rcv.Level(), rcv.Meter.AvgKbps(t-10*sim.Second, t))
	}
	fmt.Println()
}

func main() {
	fmt.Println("Loss-rate-threshold congestion control with Shamir (k,n) key shares")
	fmt.Println("(a receiver reconstructs a level key iff its loss stayed in tolerance)")
	fmt.Println()
	run("Flat 25% tolerances (RLM): overshoots and oscillates", threshold.RLMThresholds(6), 5)
	run("Graded tolerances (WEBRC): settles at the fair level", threshold.GradedThresholds(6), 5)
}
