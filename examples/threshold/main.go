// Threshold-protocol demo: the Shamir-sharing DELTA instantiation (§3.1.2).
// An RLM/WEBRC-style receiver is congested only when its loss rate exceeds
// the per-level tolerance; its level key reconstructs exactly when it
// caught enough Shamir shares. The registered "flid-ds-threshold" protocol
// uses graded tolerances; WithProtocolImpl parameterizes the same variant
// with custom ones.
package main

import (
	"fmt"

	"deltasigma"
)

// flat returns RLM-style uniform tolerances.
func flat(n int, tol float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = tol
	}
	return out
}

func run(label string, proto deltasigma.Option, seed uint64) {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(300_000),
		proto,
		deltasigma.WithSchedule(deltasigma.RateSchedule{Base: 100_000, Mult: 1.5, N: 6}),
		deltasigma.WithSeed(seed),
	)
	r := exp.AddSession(1).Receivers[0]

	fmt.Printf("%s on a 300 Kbps link:\n", label)
	for t := deltasigma.Time(10) * deltasigma.Second; t <= 60*deltasigma.Second; t += 10 * deltasigma.Second {
		exp.Run(t)
		fmt.Printf("  t=%2.0fs level=%d rate=%3.0f Kbps\n",
			t.Sec(), r.Level(), r.Meter().AvgKbps(t-10*deltasigma.Second, t))
	}
	fmt.Println()
}

func main() {
	fmt.Println("Loss-rate-threshold congestion control with Shamir (k,n) key shares")
	fmt.Println("(a receiver reconstructs a level key iff its loss stayed in tolerance)")
	fmt.Println()
	run("Flat 25% tolerances (RLM): overshoots and oscillates",
		deltasigma.WithProtocolImpl(deltasigma.ThresholdProtocol{Thresholds: flat(6, 0.25)}), 5)
	run("Graded tolerances (WEBRC): settles at the fair level",
		deltasigma.WithProtocol("flid-ds-threshold"), 5)
}
