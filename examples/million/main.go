// Million demo: population scale through the cohort layer. One session
// carries 1,000,000 well-behaved receivers as a single fluid cohort — a
// subscription-level distribution behind a private edge, advanced by the
// exact FLID slot rules at O(groups) per slot instead of O(members) per
// packet — while an exact per-packet attacker inflates mid-run and Poisson
// churn toggles cohort members throughout. Feedback from the cohort is
// consolidated hierarchically at the routers, so control traffic at the
// source scales with the tree's fan-out, not the million-member
// population. The whole run takes well under a second of wall clock, and
// because everything is seeded it prints identical numbers every time.
package main

import (
	"fmt"

	"deltasigma"
)

const (
	members = 1_000_000
	dur     = 60 * deltasigma.Second
	onset   = 20 * deltasigma.Second // attacker inflates
	standby = 40 * deltasigma.Second // ...and is called off
)

func main() {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(500_000),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(2003),
		deltasigma.WithTimeline(
			// Churn across the cohort: 100 join-or-leave toggles per
			// second on average, weighted by population, the whole run.
			deltasigma.PoissonChurn{Session: 1, Rate: 100, To: dur},
			deltasigma.AttackerOnset{At: onset, Session: 1},
			deltasigma.AttackerStop{At: standby, Session: 1},
		),
	)
	sess := exp.AddSession(0)
	cohort := sess.AddCohort(members) // the million, as one fluid aggregate
	atk := sess.AddAttacker()         // the threat stays an exact object

	fmt.Printf("FLID-DS, %d receivers as one cohort, one inflating attacker\n\n", members)
	fmt.Printf("%6s %14s %10s %12s %10s %s\n",
		"t", "per-member", "attacker", "online", "mean lvl", "phase")
	phase := func(t deltasigma.Time) string {
		switch {
		case t <= onset:
			return "churn only"
		case t <= standby:
			return "attack running"
		default:
			return "attack called off"
		}
	}
	step := 10 * deltasigma.Second
	for t := step; t <= dur; t += step {
		exp.Advance(t)
		fmt.Printf("%5.0fs %10.1fKbps %6.0fKbps %12d %10.2f %s\n",
			t.Sec(),
			cohort.Meter().AvgKbps(t-step, t)/float64(cohort.Members()),
			atk.Meter().AvgKbps(t-step, t),
			cohort.Online(), cohort.MeanLevel(), phase(t))
	}

	res := exp.Run(dur)
	c := res.Cohort(1, 1)
	absorbed, forwarded := exp.FeedbackStats()
	fmt.Printf("\n%s: %d members, %d online at end, top level %d\n",
		c.Label, c.Members, c.Online, c.Level)
	fmt.Printf("%.1f Kbps per member over the run, utilization %.0f%%\n",
		c.PerMemberKbps, 100*res.Utilization())
	fmt.Printf("feedback consolidation: %d reports absorbed, %d forwarded upstream\n",
		absorbed, forwarded)
}
