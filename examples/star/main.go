// Star-topology demo: one protected session fans out from a hub across
// three bottleneck spokes of different capacities, each with its own SIGMA
// gatekeeper at the edge router (§3.2.3: every edge enforces keys
// independently). Each receiver converges to the fair level of its own
// spoke — heterogeneity the single-bottleneck dumbbell cannot express —
// while a TCP flow competes on the first spoke.
package main

import (
	"fmt"

	"deltasigma"
)

func main() {
	exp := deltasigma.MustNew(
		deltasigma.WithStar(600_000, 250_000, 120_000),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(3),
	)
	// Three receivers round-robin onto the three spokes.
	sess := exp.AddSession(3)
	exp.AddTCP(0) // lands on the 600 Kbps spoke (round-robin continues)

	res := exp.Run(60 * deltasigma.Second)

	fmt.Println("One FLID-DS session across a 3-spoke star (600/250/120 Kbps):")
	for _, r := range sess.Receivers {
		fmt.Printf("  %s: level=%d avg=%3.0f Kbps\n", r.Label(), r.Level(),
			r.Meter().AvgKbps(30*deltasigma.Second, 60*deltasigma.Second))
	}
	for _, c := range res.Cross {
		fmt.Printf("  %s: avg=%3.0f Kbps\n", c.Label, c.AvgKbps)
	}
	fmt.Println("\nPer-spoke bottlenecks:")
	for _, b := range res.Bottlenecks {
		fmt.Printf("  %-12s %4.0f Kbps, utilization %3.0f%%, %d lost\n",
			b.Label, float64(b.CapacityBps)/1000, 100*b.Utilization, b.Dropped)
	}
	fmt.Println("\nEvery edge router checks keys on its own: a receiver's subscription")
	fmt.Println("is bounded by its spoke's capacity, not by the slowest member.")
}
