// ECN demo: the §3.1.2 congestion-notification adaptation. The bottleneck
// queue marks packets instead of relying on loss alone, and the SIGMA edge
// router scrubs the DELTA component field of each marked packet before
// local delivery — a mark denies keys exactly like a loss, but no data is
// thrown away.
package main

import (
	"fmt"

	"deltasigma/internal/core"
	"deltasigma/internal/flid"
	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

func main() {
	d := topo.New(topo.PaperConfig(250_000, 21))
	src := d.AddSource("src")
	rcvHost := d.AddReceiver("rcv")
	d.Done()

	// Mark at 40% queue occupancy.
	d.Forward.Queue.MarkAt = d.Forward.Queue.CapBytes * 2 / 5

	slot := 250 * sim.Millisecond
	ctl := sigma.NewController(d.Right, sigma.DefaultConfig(slot))
	ctl.EnableECNScrub(keys.NewSource(keys.DefaultBits, d.RNG.Fork().Uint64))

	sess := &core.Session{
		ID:         1,
		BaseAddr:   packet.MulticastBase,
		Rates:      core.PaperSchedule(),
		SlotDur:    slot,
		PacketSize: 576,
	}
	for _, a := range sess.Addrs() {
		d.Fabric.SetSource(a, src.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	snd := flid.NewSender(src, sess, flid.DS, policy, d.RNG.Fork(), nil, 2)
	rcv := flid.NewDSReceiver(rcvHost, sess, d.Right.Addr())
	d.Sched.At(0, func() { snd.Start(); rcv.Start() })

	fmt.Println("FLID-DS with ECN marking (component scrub at the edge):")
	for t := sim.Time(10) * sim.Second; t <= 60*sim.Second; t += 10 * sim.Second {
		d.Sched.RunUntil(t)
		fmt.Printf("t=%2.0fs level=%d rate=%3.0f Kbps marked=%d dropped=%d\n",
			t.Sec(), rcv.Level(), rcv.Meter.AvgKbps(t-10*sim.Second, t),
			d.Forward.Queue.Marked, d.Forward.Queue.Dropped)
	}
	fmt.Println("\nMarked packets arrive with scrubbed components: the receiver keeps")
	fmt.Println("the data but cannot reconstruct its level key, so it backs off —")
	fmt.Println("congestion control without discarding packets.")
}
