// ECN demo: the §3.1.2 congestion-notification adaptation, enabled with a
// single option. The bottleneck queue marks packets instead of relying on
// loss alone, and the SIGMA edge router scrubs the DELTA component field
// of each marked packet before local delivery — a mark denies keys exactly
// like a loss, but no data is thrown away.
package main

import (
	"fmt"

	"deltasigma"
)

func main() {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(250_000),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithECN(0.4), // mark at 40% queue occupancy, scrub at the edge
		deltasigma.WithSeed(21),
	)
	r := exp.AddSession(1).Receivers[0]

	fmt.Println("FLID-DS with ECN marking (component scrub at the edge):")
	var res *deltasigma.Result
	for t := deltasigma.Time(10) * deltasigma.Second; t <= 60*deltasigma.Second; t += 10 * deltasigma.Second {
		res = exp.Run(t)
		b := res.Bottlenecks[0]
		fmt.Printf("t=%2.0fs level=%d rate=%3.0f Kbps marked=%d dropped=%d\n",
			t.Sec(), r.Level(), r.Meter().AvgKbps(t-10*deltasigma.Second, t),
			b.Marked, b.Dropped)
	}
	fmt.Println("\nMarked packets arrive with scrubbed components: the receiver keeps")
	fmt.Println("the data but cannot reconstruct its level key, so it backs off —")
	fmt.Println("congestion control without discarding packets.")
}
