// Churn demo: the dynamics layer end to end. One protected session rides
// out everything the timeline can throw at it — Poisson membership churn,
// an attacker whose inflation begins mid-session and is called off again,
// a bottleneck that loses 40% of its capacity and later flaps — all
// scripted as typed events against virtual time through WithTimeline.
// Because every event resolves to seeded, deterministic machinery, running
// this program twice prints identical numbers.
package main

import (
	"fmt"

	"deltasigma"
)

const (
	dur     = 120 * deltasigma.Second
	onset   = 30 * deltasigma.Second // attacker inflates
	standby = 60 * deltasigma.Second // ...and is called off
	degrade = 75 * deltasigma.Second // bottleneck drops to 600 Kbps
	flapAt  = 90 * deltasigma.Second // ...then starts flapping
)

func main() {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(1_000_000),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(2003),
		deltasigma.WithTimeline(
			// Membership churn: one join-or-leave toggle every 2 s on
			// average across the well-behaved receivers, the whole run.
			deltasigma.PoissonChurn{Session: 1, Rate: 0.5, To: dur},
			// The paper's core threat, now first-class: inflation that
			// begins mid-session — and, here, ends again.
			deltasigma.AttackerOnset{At: onset, Session: 1},
			deltasigma.AttackerStop{At: standby, Session: 1},
			// Path dynamics: degradation, then flapping (down 1 s in 10).
			deltasigma.LinkSetCapacity{At: degrade, Link: 0, Bps: 600_000},
			deltasigma.LinkFlap{Link: 0, From: flapAt, To: dur, Period: 10 * deltasigma.Second},
		),
	)
	sess := exp.AddSession(4)
	atk := sess.AddAttacker()

	fmt.Println("FLID-DS under churn, late attacker onset and link dynamics")
	fmt.Println()
	fmt.Printf("%6s %12s %10s %8s %s\n", "t", "attacker", "good avg", "joined", "phase")
	phase := func(t deltasigma.Time) string {
		switch {
		case t <= onset:
			return "churn only"
		case t <= standby:
			return "attack running"
		case t <= degrade:
			return "attack called off"
		case t <= flapAt:
			return "bottleneck at 600 Kbps"
		default:
			return "bottleneck flapping"
		}
	}
	step := 15 * deltasigma.Second
	for t := step; t <= dur; t += step {
		exp.Advance(t)
		var good float64
		joined := 0
		for _, r := range sess.Receivers {
			if r.Attacker() {
				continue
			}
			good += r.Meter().AvgKbps(t-step, t)
			if r.Joined() {
				joined++
			}
		}
		good /= 4
		fmt.Printf("%5.0fs %9.0f Kbps %5.0f Kbps %5d/4   %s\n",
			t.Sec(), atk.Meter().AvgKbps(t-step, t), good, joined, phase(t))
	}

	res := exp.Run(dur)
	fmt.Println()
	fmt.Printf("%d membership toggles fired; bottleneck utilization %.0f%%, %d packets lost\n",
		exp.ChurnEvents(), 100*res.Utilization(), res.LostPackets)
	fmt.Println("The attacker's guessed keys never open a group: its share tracks its")
	fmt.Println("entitled level before, during and after the inflation window.")
}
