package deltasigma_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"deltasigma/internal/fuzzing"
)

// huntGoldenConfig is the pinned search: small enough to run in test
// time, large enough to exercise generation, mutation, elitism and the
// shrinker end to end.
func huntGoldenConfig(workers int) fuzzing.HuntConfig {
	return fuzzing.HuntConfig{
		Gens: 4, Pop: 12, Seed: 1, Workers: workers,
		Keep: 6, ShrinkTop: 1, ShrinkBudget: 30,
	}
}

func marshalHuntReport(r fuzzing.HuntReport) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// TestHuntGolden locks the attack optimizer end to end, alongside the
// sweep, churn and fuzz goldens: the full hunt report — every ranked
// scenario, its measured advantage, and the shrunk repro — is
// byte-identical across worker counts and pinned against
// testdata/hunt_golden.json, so neither the generator, the mutator, the
// fitness measurement nor the engine underneath can drift silently.
func TestHuntGolden(t *testing.T) {
	serial := fuzzing.Hunt(huntGoldenConfig(1))
	js1, err := marshalHuntReport(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := fuzzing.Hunt(huntGoldenConfig(*sweepWorkers))
	jsN, err := marshalHuntReport(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, jsN) {
		t.Fatalf("hunt report differs between -workers=1 and -workers=%d", *sweepWorkers)
	}
	if serial.Best() <= 1 {
		t.Errorf("pinned hunt found no attacker advantage (best %.3f); the corpus should document real attacks", serial.Best())
	}
	if len(serial.Scenarios) == 0 || serial.Scenarios[0].Shrunk == nil {
		t.Fatalf("pinned hunt is missing the shrunk repro for its top scenario")
	}

	path := filepath.Join("testdata", "hunt_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(js1, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(append(js1, '\n'), want) {
		t.Errorf("hunt report diverged from golden file %s:\ngot:\n%s\nwant:\n%s", path, js1, want)
	}
}

// TestHuntBeatsRandom is the optimizer's acceptance bar: on a fixed seed
// the guided search must find strictly more attacker advantage than the
// best of 200 random samples from the same generator — otherwise the
// evolutionary loop is decoration on top of random fuzzing.
func TestHuntBeatsRandom(t *testing.T) {
	baseline := fuzzing.RandomBaseline(1, 200, *sweepWorkers)
	report := fuzzing.Hunt(fuzzing.HuntConfig{
		Gens: 8, Pop: 24, Seed: 1, Workers: *sweepWorkers, ShrinkTop: -1,
	})
	t.Logf("hunt best %.3f vs random baseline %.3f (%s)",
		report.Best(), baseline.Fitness, baseline.Attacker)
	if report.Best() <= baseline.Fitness {
		t.Errorf("hunt best %.3f does not beat the best of 200 random samples %.3f",
			report.Best(), baseline.Fitness)
	}
}
