package deltasigma

import (
	"fmt"

	"deltasigma/internal/abrcf"
	"deltasigma/internal/dsc"
	"deltasigma/internal/flid"
	"deltasigma/internal/mfcc"
	"deltasigma/internal/stats"
)

// This file holds the competitor protocol suite — schemes from the related
// work (PAPERS.md) registered as first-class protocols so the attacker,
// dynamics, audit and sweep machinery can measure their robustness next to
// the paper's DELTA/SIGMA variants. See docs/PROTOCOLS.md for the rules and
// attack surface of each scheme.

// NoAttackerError is the typed "not applicable" a Protocol's NewAttacker
// returns when the scheme has no inflated-subscription attack surface —
// e.g. abr-cf, whose single dynamic channel leaves nothing to inflate
// into. TryAddAttacker surfaces it; sweeps record it per point.
type NoAttackerError struct {
	// Protocol is the registry name of the variant.
	Protocol string
	// Reason says why inflation is structurally impossible.
	Reason string
}

// Error implements error.
func (e *NoAttackerError) Error() string {
	return fmt.Sprintf("deltasigma: protocol %q has no inflated-subscription attacker: %s", e.Protocol, e.Reason)
}

// EdgeAgent is a protocol's router-resident participant (see EdgeAssisted).
type EdgeAgent interface {
	Start()
	Stop()
}

// EdgeAssisted is implemented by protocols whose routers actively
// participate in congestion control (mfcc's fair-share advertisements).
// Experiment.Start calls NewEdgeAgent once per gatekept edge router, after
// the gatekeeper is installed, and starts every agent at time zero.
type EdgeAssisted interface {
	NewEdgeAgent(router *EdgeRouter, sessions []*Session) EdgeAgent
}

// FeedbackDriven is implemented by protocols whose senders consume
// receiver feedback reports (dsc, abr-cf). Experiment.Start enables
// hierarchical feedback consolidation at the routers for them, exactly as
// it does when cohorts exist, unless WithFeedbackConsolidation(false).
type FeedbackDriven interface {
	ConsumesFeedback() bool
}

// CohortCapable is implemented by protocols that opt out of (or explicitly
// into) cohort aggregation. Protocols without the method support cohorts:
// the fluid aggregate models FLID slot rules over layered data, which is
// the default behaviour. Variants whose receivers follow other rules —
// replicated group switching, share advertisements, a single dynamic
// channel — return false.
type CohortCapable interface {
	SupportsCohorts() bool
}

// AttackerCapable is implemented by protocols that declare up front
// whether NewAttacker can succeed, so sweeps and fuzzers can skip attacker
// wiring without attaching throwaway hosts. Protocols without the method
// have an attacker.
type AttackerCapable interface {
	HasAttacker() bool
}

// supportsCohorts resolves the CohortCapable default.
func supportsCohorts(p Protocol) bool {
	if c, ok := p.(CohortCapable); ok {
		return c.SupportsCohorts()
	}
	return true
}

// ProtocolSupportsCohorts reports whether the named registered protocol
// can aggregate receivers into cohorts (false for unknown names).
func ProtocolSupportsCohorts(name string) bool {
	p, ok := LookupProtocol(name)
	return ok && supportsCohorts(p)
}

// ProtocolHasAttacker reports whether the named registered protocol has an
// inflated-subscription attacker (false for unknown names).
func ProtocolHasAttacker(name string) bool {
	p, ok := LookupProtocol(name)
	if !ok {
		return false
	}
	if a, ok := p.(AttackerCapable); ok {
		return a.HasAttacker()
	}
	return true
}

func init() {
	RegisterProtocol(MFCCProtocol{})
	RegisterProtocol(DSCProtocol{})
	RegisterProtocol(ABRCFProtocol{})
}

// ---------------------------------------------------------------------------
// mfcc — network-assisted multi-flow congestion control (Thomas et al.).

// MFCCProtocol is the network-assisted competitor: edge routers advertise
// per-receiver fair shares each slot and receivers subscribe to the level
// the share affords. The data plane is the plain FLID-DL layered sender
// and membership is plain IGMP — advertisement without enforcement, so the
// classic inflation attack goes through untouched.
type MFCCProtocol struct{}

// Name implements Protocol.
func (MFCCProtocol) Name() string { return "mfcc" }

// Protected implements Protocol: mfcc brings no SIGMA control plane.
func (MFCCProtocol) Protected() bool { return false }

// DefaultSlot implements Protocol: FLID-DL's 500 ms slots.
func (MFCCProtocol) DefaultSlot() Time { return 500 * Millisecond }

// NewSender implements Protocol: the unmodified FLID-DL layered source.
func (MFCCProtocol) NewSender(host *Host, sess *Session, rng *RNG) SenderAgent {
	return flid.NewSender(host, sess, flid.DL, upgradePolicy(sess), rng, nil, announceRepeat)
}

// NewReceiver implements Protocol.
func (MFCCProtocol) NewReceiver(host *Host, sess *Session, edge Addr) ReceiverAgent {
	return mfccReceiver{mfcc.NewReceiver(host, sess, edge)}
}

// NewAttacker implements Protocol.
func (MFCCProtocol) NewAttacker(host *Host, sess *Session, edge Addr, rng *RNG) (ReceiverAgent, error) {
	return mfccAttacker{mfcc.NewAttacker(host, sess, edge)}, nil
}

// NewEdgeAgent implements EdgeAssisted: the per-edge fair-share advertiser.
func (MFCCProtocol) NewEdgeAgent(router *EdgeRouter, sessions []*Session) EdgeAgent {
	return mfcc.NewEdgeAgent(router, sessions)
}

// SupportsCohorts implements CohortCapable: mfcc receivers move on share
// advertisements, which the layered fluid aggregate does not model.
func (MFCCProtocol) SupportsCohorts() bool { return false }

type mfccReceiver struct{ *mfcc.Receiver }

func (r mfccReceiver) Meter() *stats.Meter { return r.Receiver.Meter }
func (r mfccReceiver) Unwrap() any         { return r.Receiver }

type mfccAttacker struct{ *mfcc.Attacker }

func (a mfccAttacker) Meter() *stats.Meter { return a.Attacker.Meter }
func (a mfccAttacker) Unwrap() any         { return a.Attacker }

// ---------------------------------------------------------------------------
// dsc — dynamic source channels (Lucas et al.).

// DSCProtocol is the sender-adaptive competitor: receivers follow FLID
// subscription rules and report each slot's status upstream, routers
// consolidate the reports, and the source scales every layer's rate to the
// aggregate. Membership is plain IGMP; the attacker joins everything and
// silences its own feedback.
type DSCProtocol struct{}

// Name implements Protocol.
func (DSCProtocol) Name() string { return "dsc" }

// Protected implements Protocol: dsc brings no SIGMA control plane.
func (DSCProtocol) Protected() bool { return false }

// DefaultSlot implements Protocol.
func (DSCProtocol) DefaultSlot() Time { return 500 * Millisecond }

// NewSender implements Protocol.
func (DSCProtocol) NewSender(host *Host, sess *Session, rng *RNG) SenderAgent {
	return dsc.NewSender(host, sess, upgradePolicy(sess), rng)
}

// NewReceiver implements Protocol.
func (DSCProtocol) NewReceiver(host *Host, sess *Session, edge Addr) ReceiverAgent {
	return dscReceiver{dsc.NewReceiver(host, sess, edge)}
}

// NewAttacker implements Protocol.
func (DSCProtocol) NewAttacker(host *Host, sess *Session, edge Addr, rng *RNG) (ReceiverAgent, error) {
	return dscAttacker{dsc.NewAttacker(host, sess, edge)}, nil
}

// ConsumesFeedback implements FeedbackDriven: the dsc source adapts to
// consolidated receiver reports.
func (DSCProtocol) ConsumesFeedback() bool { return true }

type dscReceiver struct{ *dsc.Receiver }

func (r dscReceiver) Meter() *stats.Meter { return r.Receiver.Meter }
func (r dscReceiver) Unwrap() any         { return r.Receiver }

type dscAttacker struct{ *dsc.Attacker }

func (a dscAttacker) Meter() *stats.Meter { return a.Attacker.Meter }
func (a dscAttacker) Unwrap() any         { return a.Attacker }

// ---------------------------------------------------------------------------
// abr-cf — ABR-style single channel with consolidated feedback (Fahmy et al.).

// ABRCFProtocol is the consolidated-feedback baseline: one dynamic channel
// whose rate the source adapts AIMD-style to consolidated receiver
// reports. It has no inflated-subscription attack surface — NewAttacker
// returns a typed *NoAttackerError, the shoot-out's structural negative
// result.
type ABRCFProtocol struct{}

// Name implements Protocol.
func (ABRCFProtocol) Name() string { return "abr-cf" }

// Protected implements Protocol: abr-cf brings no SIGMA control plane.
func (ABRCFProtocol) Protected() bool { return false }

// DefaultSlot implements Protocol.
func (ABRCFProtocol) DefaultSlot() Time { return 500 * Millisecond }

// NewSender implements Protocol.
func (ABRCFProtocol) NewSender(host *Host, sess *Session, rng *RNG) SenderAgent {
	return abrcf.NewSender(host, sess, rng)
}

// NewReceiver implements Protocol.
func (ABRCFProtocol) NewReceiver(host *Host, sess *Session, edge Addr) ReceiverAgent {
	return abrcfReceiver{abrcf.NewReceiver(host, sess, edge)}
}

// NewAttacker implements Protocol: structurally not applicable.
func (ABRCFProtocol) NewAttacker(host *Host, sess *Session, edge Addr, rng *RNG) (ReceiverAgent, error) {
	return nil, &NoAttackerError{
		Protocol: "abr-cf",
		Reason:   "every receiver already subscribes to the session's single dynamic channel; there is no higher layer to inflate into",
	}
}

// ConsumesFeedback implements FeedbackDriven.
func (ABRCFProtocol) ConsumesFeedback() bool { return true }

// SupportsCohorts implements CohortCapable: the fluid aggregate models
// layered subscription moves, which a single-channel session lacks.
func (ABRCFProtocol) SupportsCohorts() bool { return false }

// HasAttacker implements AttackerCapable.
func (ABRCFProtocol) HasAttacker() bool { return false }

type abrcfReceiver struct{ *abrcf.Receiver }

func (r abrcfReceiver) Meter() *stats.Meter { return r.Receiver.Meter }
func (r abrcfReceiver) Unwrap() any         { return r.Receiver }
