package deltasigma

import (
	"fmt"

	"deltasigma/internal/core"
	"deltasigma/internal/dynamics"
	"deltasigma/internal/keys"
	"deltasigma/internal/mcast"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
)

// sessionSpacing is the minimum gap between session group address blocks;
// schedules wider than this get a correspondingly wider block.
const sessionSpacing = 32

// blockSize returns the address-block stride for this experiment's
// schedule, so sessions never overlap however many groups they carry.
func (e *Experiment) blockSize() int {
	if n := e.schedule.N; n > sessionSpacing {
		return n
	}
	return sessionSpacing
}

// defaultPacketSize is the §5.1 wire size of data packets.
const defaultPacketSize = 576

// Experiment is a composable protected (or baseline) multicast setup: a
// topology, a protocol variant, multicast sessions with well-behaved
// receivers and attackers, and TCP/CBR cross traffic. Build one with New,
// wire sessions and cross traffic, then Run.
type Experiment struct {
	// Topo is the network the experiment runs on.
	Topo Topology
	// Protocol is the congestion control variant sessions run.
	Protocol Protocol

	seed      uint64
	slot      Time
	schedule  RateSchedule
	pktSize   int
	ecnFrac   float64
	cohortThr int  // AddSession populations above this aggregate (0 = never)
	noConsol  bool // WithFeedbackConsolidation(false)

	nextID    uint16
	started   bool
	stoppedAt Time // when StopTraffic first ran; 0 while traffic flows
	sessions  []*ExperimentSession
	tcps      []*TCPFlow
	cbrs      []*CBR

	// audit is the invariant layer attached by WithAudit (nil otherwise);
	// poolBase snapshots the pool's outstanding gauge at construction so
	// balance is judged per-experiment even on a shared campaign pool.
	audit    *Audit
	poolBase uint64

	// events holds declared timeline events until Start resolves them onto
	// the timeline; churns keeps the live Poisson generators for metrics.
	events   []TimelineEvent
	timeline dynamics.Timeline
	churns   []*dynamics.Churn

	// Sharded execution (WithShards; see shard.go): the group is non-nil
	// when the run partitions across per-core schedulers, shardWant records
	// the resolved request for reporting, and shardFallback says why a
	// requested sharded run executes serially.
	shardGroup    *sim.ShardGroup
	shardWant     int
	shardAuto     bool
	shardSeen     int
	shardNext     int
	shardMigrated int
	shardFallback string

	controllers []*sigma.Controller
	edgeAgents  []EdgeAgent
}

// New assembles an experiment from functional options. With no options it
// runs FLID-DS on a 1 Mbps paper dumbbell with the §5.1 schedule.
func New(opts ...Option) (*Experiment, error) {
	s := settings{
		seed:     1,
		schedule: core.PaperSchedule(),
		pktSize:  defaultPacketSize,
	}
	for _, opt := range opts {
		opt(&s)
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.protocol == nil {
		s.protocol, _ = LookupProtocol("flid-ds")
	}
	if s.slot == 0 {
		s.slot = s.protocol.DefaultSlot()
	}
	t := s.topology
	if t == nil {
		fn := s.topoFn
		if fn == nil {
			fn = func(seed uint64) Topology { return PaperDumbbell(1_000_000, seed) }
		}
		t = fn(s.seed)
	}
	if s.pool != nil {
		t.Network().SetPool(s.pool)
	}
	e := &Experiment{
		Topo:      t,
		Protocol:  s.protocol,
		seed:      s.seed,
		slot:      s.slot,
		schedule:  s.schedule,
		pktSize:   s.pktSize,
		ecnFrac:   s.ecnFrac,
		cohortThr: s.cohortThr,
		noConsol:  s.noConsol,
		events:    s.events,
		poolBase:  t.Network().Pool().Outstanding(),
	}
	if s.audit.enabled {
		e.audit = newAudit(e, s.audit)
	}
	e.setupShards(&s)
	return e, nil
}

// MustNew is New, panicking on option errors — for examples, tests and
// hardcoded configurations.
func MustNew(opts ...Option) *Experiment {
	e, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// mustNotHaveStarted guards wiring calls: once Start has run, routes are
// computed and agents are scheduled, so later additions would silently
// never run — fail loudly instead.
func (e *Experiment) mustNotHaveStarted(op string) {
	if e.started {
		panic(fmt.Sprintf("deltasigma: %s after the experiment has started", op))
	}
}

// Slot returns the slot duration sessions run on.
func (e *Experiment) Slot() Time { return e.slot }

// Seed returns the experiment seed.
func (e *Experiment) Seed() uint64 { return e.seed }

// ExperimentSession is one multicast session within an experiment.
type ExperimentSession struct {
	// Sess is the session descriptor.
	Sess *Session
	// Sender is the protocol source (type-assert for protocol-specific
	// statistics, e.g. *flid.Sender).
	Sender SenderAgent
	// Receivers holds every receiver in attachment order, attackers
	// included.
	Receivers []*Receiver
	// Cohorts holds every aggregated receiver population in attachment
	// order (see AddCohort).
	Cohorts []*Cohort

	exp   *Experiment
	index int
	src   *Host // the sender host; cohort feedback reports aim here

	// collusion is the session's shared attacker key pool, created lazily
	// by the first StrategyColluding attacker.
	collusion *sigma.Collusion
}

// Receiver wraps any protocol's receiver — or attacker — behind one
// interface.
type Receiver struct {
	agent ReceiverAgent
	atk   Inflater // nil for well-behaved receivers

	exp     *Experiment
	host    *Host
	edge    Addr // the gatekeeper address the receiver subscribes through
	session int
	index   int
	startAt Time
	manual  bool

	// strategy is the attacker behavior selected by AddAttackerStrategy
	// (empty for well-behaved receivers and plain AddAttacker attackers);
	// forge is the feedback-forging engine of a StrategyForging attacker.
	strategy AttackerStrategy
	forge    *sigma.ForgeAttack
}

// StartAt defers the receiver's automatic start to virtual time t (the
// default is time zero — the staggered-join experiments use this). Call
// before the experiment starts; returns the receiver for chaining.
func (r *Receiver) StartAt(t Time) *Receiver {
	r.exp.mustNotHaveStarted("StartAt")
	r.startAt = t
	return r
}

// Manual suppresses the receiver's automatic start: it joins only when a
// ReceiverJoin event (or an explicit Start call) says so. Call before the
// experiment starts; returns the receiver for chaining.
func (r *Receiver) Manual() *Receiver {
	r.exp.mustNotHaveStarted("Manual")
	r.manual = true
	return r
}

// Start begins receiving (sessions started via Experiment.Start do this
// automatically). Safe mid-run: a stopped receiver re-joins the session at
// the minimal level — ReceiverJoin events resolve to this call.
func (r *Receiver) Start() { r.agent.Start() }

// Stop leaves the session. Safe mid-run — ReceiverLeave events resolve to
// this call; packets already queued or in flight drain normally.
func (r *Receiver) Stop() { r.agent.Stop() }

// Joined reports whether the receiver is currently subscribed (at any
// level) — the predicate membership churn toggles on.
func (r *Receiver) Joined() bool { return r.agent.Level() > 0 }

// Level reports the current subscription level (for replicated sessions,
// the current group).
func (r *Receiver) Level() int { return r.agent.Level() }

// Meter returns the receiver's throughput meter.
func (r *Receiver) Meter() *Meter { return r.agent.Meter() }

// Attacker reports whether this receiver was added with AddAttacker.
func (r *Receiver) Attacker() bool { return r.atk != nil }

// Inflate launches the inflated-subscription attack from this receiver (it
// must have been added with AddAttacker). For a StrategyForging attacker
// the forging loop starts alongside the inflation.
func (r *Receiver) Inflate() {
	if r.atk != nil {
		r.atk.Inflate()
	}
	if r.forge != nil {
		r.forge.Inflate()
	}
}

// Deflate calls the attack off mid-run (AttackerStop events resolve to
// this call): inflation joins are withdrawn and the attacker reverts to
// well-behaved congestion control. A no-op for receivers whose protocol
// attacker cannot stand down.
func (r *Receiver) Deflate() {
	if d, ok := r.agent.(Deflater); ok {
		d.Deflate()
	}
	if r.forge != nil {
		r.forge.Deflate()
	}
}

// Unwrap returns the concrete protocol agent (e.g. *flid.DSAttacker) for
// callers that need protocol-specific statistics.
func (r *Receiver) Unwrap() any {
	if u, ok := r.agent.(Unwrapper); ok {
		return u.Unwrap()
	}
	return r.agent
}

// sched returns the scheduler the receiver's host lives on (its shard
// under sharded execution), defaulting to the experiment's main scheduler.
func (r *Receiver) sched(main *sim.Scheduler) *sim.Scheduler {
	if r.host != nil {
		return r.host.Scheduler()
	}
	return main
}

// Label names the receiver in results: S<session>R<index>, with an
// "(attacker)" suffix for attackers.
func (r *Receiver) Label() string {
	l := fmt.Sprintf("S%dR%d", r.session, r.index)
	if r.atk != nil {
		l += "(attacker)"
	}
	return l
}

// AddSession creates a multicast session with the experiment's schedule
// and the given number of well-behaved receivers at the topology's default
// egress.
func (e *Experiment) AddSession(receivers int) *ExperimentSession {
	e.mustNotHaveStarted("AddSession")
	e.nextID++
	sess := &core.Session{
		ID:         e.nextID,
		BaseAddr:   packet.MulticastBase + packet.Addr(int(e.nextID)*e.blockSize()),
		Rates:      e.schedule,
		SlotDur:    e.slot,
		PacketSize: e.pktSize,
	}
	src := e.Topo.AttachSource("")
	sess.Src = src.Addr()
	for _, a := range sess.Addrs() {
		e.Topo.Multicast().SetSource(a, src.ID())
	}
	s := &ExperimentSession{
		Sess:   sess,
		Sender: e.Protocol.NewSender(src, sess, e.Topo.Rand().Fork()),
		exp:    e,
		index:  int(e.nextID),
		src:    src,
	}
	if e.cohortThr > 0 && receivers > e.cohortThr {
		// WithCohortThreshold: a population this large rides the fluid
		// aggregate instead of per-packet receiver objects.
		s.AddCohort(receivers)
	} else {
		for i := 0; i < receivers; i++ {
			s.AddReceiver()
		}
	}
	e.sessions = append(e.sessions, s)
	return s
}

// Sessions returns every session in creation order.
func (e *Experiment) Sessions() []*ExperimentSession { return e.sessions }

// Source returns the session's sender host — the root of the distribution
// tree, and where cohort feedback reports terminate.
func (s *ExperimentSession) Source() *Host { return s.src }

// AddReceiver attaches one more well-behaved receiver at the topology's
// default egress with the default access delay.
func (s *ExperimentSession) AddReceiver() *Receiver {
	return s.AddReceiverDelay(DefaultDelay)
}

// AddReceiverDelay attaches a well-behaved receiver whose access link has
// the given propagation delay (the heterogeneous-RTT experiments; a
// negative delay — DefaultDelay — uses the topology default, zero is a
// genuine zero-delay link).
func (s *ExperimentSession) AddReceiverDelay(delay Time) *Receiver {
	return s.AddReceiverAt(s.exp.Topo.AttachReceiver("", delay))
}

// AddReceiverAt attaches a well-behaved receiver at an explicit port —
// obtained from a topology's placement methods (e.g. Chain.AttachReceiverAt,
// Star.AttachReceiverAt) for non-default placement.
func (s *ExperimentSession) AddReceiverAt(port Port) *Receiver {
	s.exp.mustNotHaveStarted("AddReceiver")
	// Migration must precede agent construction: agents capture the host's
	// scheduler, so the host has to be on its final shard first.
	s.exp.maybeMigrate(port.Host)
	agent := s.exp.Protocol.NewReceiver(port.Host, s.Sess, port.Edge.Addr())
	return s.wrap(agent, port.Host, port.Edge.Addr())
}

// AddAttacker attaches an inflated-subscription attacker at the topology's
// default egress. It panics if the protocol variant has no attacker; use
// TryAddAttacker (or check ProtocolHasAttacker first) to handle that case.
func (s *ExperimentSession) AddAttacker() *Receiver {
	return s.AddAttackerAt(s.exp.Topo.AttachReceiver("", DefaultDelay))
}

// AddAttackerAt attaches an attacker at an explicit port.
func (s *ExperimentSession) AddAttackerAt(port Port) *Receiver {
	r, err := s.TryAddAttackerAt(port)
	if err != nil {
		panic(err)
	}
	return r
}

// TryAddAttacker attaches an attacker at the topology's default egress,
// returning the protocol's typed error — e.g. *NoAttackerError for
// variants whose design leaves nothing to inflate — instead of panicking.
// Check ProtocolHasAttacker before calling to avoid attaching a receiver
// host that an error would then leave unused.
func (s *ExperimentSession) TryAddAttacker() (*Receiver, error) {
	return s.TryAddAttackerAt(s.exp.Topo.AttachReceiver("", DefaultDelay))
}

// TryAddAttackerAt attaches an attacker at an explicit port, returning the
// protocol's error instead of panicking.
func (s *ExperimentSession) TryAddAttackerAt(port Port) (*Receiver, error) {
	s.exp.mustNotHaveStarted("AddAttacker")
	s.exp.maybeMigrate(port.Host)
	agent, err := s.exp.Protocol.NewAttacker(port.Host, s.Sess, port.Edge.Addr(), s.exp.Topo.Rand().Fork())
	if err != nil {
		return nil, err
	}
	return s.wrap(agent, port.Host, port.Edge.Addr()), nil
}

func (s *ExperimentSession) wrap(agent ReceiverAgent, host *Host, edge Addr) *Receiver {
	r := &Receiver{
		agent:   agent,
		exp:     s.exp,
		host:    host,
		edge:    edge,
		session: s.index,
		index:   len(s.Receivers) + 1,
	}
	if atk, ok := agent.(Inflater); ok {
		r.atk = atk
	}
	s.Receivers = append(s.Receivers, r)
	return r
}

// Start finalizes wiring — routes, one gatekeeper per edge router (SIGMA
// controllers for protected protocols, plain IGMP otherwise), ECN marking
// if enabled — and schedules every sender, receiver and cross-traffic
// source. Idempotent; Run calls it automatically.
func (e *Experiment) Start() {
	if e.started {
		return
	}
	e.started = true
	e.Topo.Finish()

	if e.ecnFrac > 0 {
		for _, l := range e.Topo.Bottlenecks() {
			if l.Queue.CapBytes > 0 {
				l.Queue.MarkAt = int(e.ecnFrac * float64(l.Queue.CapBytes))
			}
		}
	}

	for _, edge := range e.Topo.Edges() {
		if e.Protocol.Protected() {
			ctl := sigma.NewController(edge, sigma.DefaultConfig(e.slot))
			if e.ecnFrac > 0 {
				ctl.EnableECNScrub(keys.NewSource(keys.DefaultBits, e.Topo.Rand().Fork().Uint64))
			}
			e.controllers = append(e.controllers, ctl)
		} else {
			mcast.NewIGMP(edge)
		}
	}

	// Cohort feedback — and the per-slot receiver reports of feedback-driven
	// protocols like dsc and abr-cf — flows as unicast reports toward each
	// session source; with consolidation on (the default), every router
	// merges the child reports of a slot into one before forwarding, so the
	// source-side control volume scales with tree fan-out, not population.
	consumes := false
	if fd, ok := e.Protocol.(FeedbackDriven); ok {
		consumes = fd.ConsumesFeedback()
	}
	if (len(e.Cohorts()) > 0 || consumes) && !e.noConsol {
		e.enableConsolidation()
	}

	sched := e.Topo.Scheduler()

	// Network-assisted protocols hang an agent on every gatekept edge
	// (mfcc's fair-share advertiser), created after the gatekeepers above
	// so the agents can interrogate the installed membership policy.
	if ea, ok := e.Protocol.(EdgeAssisted); ok {
		sessList := make([]*Session, len(e.sessions))
		for i, s := range e.sessions {
			sessList[i] = s.Sess
		}
		for _, edge := range e.Topo.Edges() {
			agent := ea.NewEdgeAgent(edge, sessList)
			e.edgeAgents = append(e.edgeAgents, agent)
			sched.At(0, agent.Start)
		}
	}
	for _, s := range e.sessions {
		s := s
		sched.At(0, s.Sender.Start)
		// Consecutive receivers sharing a start time are fed to the slot
		// batches behind one event instead of one timer each: they start
		// in attach order, which is exactly the order their individual
		// events would have fired — they were scheduled consecutively, so
		// their tie-break seqs were adjacent. Under sharded execution each
		// receiver starts on its own host's scheduler, so batches are keyed
		// on (start time, scheduler); receivers on distinct shards touch
		// disjoint state, and their cross-shard effects merge in attach
		// order through the cut edges.
		var batch []*Receiver
		var batchAt Time
		var batchSched *sim.Scheduler
		flush := func() {
			if len(batch) == 0 {
				return
			}
			b, on := batch, batchSched
			batch = nil
			on.At(batchAt, func() {
				for _, r := range b {
					r.Start()
				}
			})
		}
		for _, r := range s.Receivers {
			if r.manual {
				continue // joins only by timeline event or explicit Start
			}
			rs := r.sched(sched)
			if len(batch) > 0 && (r.startAt != batchAt || rs != batchSched) {
				flush()
			}
			batchAt, batchSched = r.startAt, rs
			batch = append(batch, r)
		}
		flush()
		for _, c := range s.Cohorts {
			if c.manual {
				continue
			}
			c := c
			sched.At(c.startAt, c.Start)
		}
	}
	for _, f := range e.tcps {
		f.schedule(sched)
	}
	for _, c := range e.cbrs {
		c.schedule(e)
	}

	// Attacker strategies that depend on the wired experiment: forging
	// attackers learn the co-located honest receivers whose grants they
	// will tear down, and adaptive attackers compile their inflation
	// schedule from the declared timeline (before resolveEvents installs
	// it, so both kinds of entries share one declaration order).
	for _, s := range e.sessions {
		for _, r := range s.Receivers {
			if r.forge != nil {
				r.forge.Arm(s.victimAddrs(r))
			}
			if r.strategy == StrategyAdaptive {
				e.scheduleAdaptive(r)
			}
		}
	}

	// Resolve the declared timeline last, so events see the fully wired
	// experiment, and install it. A resolution failure is a wiring bug (a
	// session or link index that does not exist) and panics like every
	// other mis-wiring of the builder.
	if err := e.resolveEvents(); err != nil {
		panic("deltasigma: " + err.Error())
	}
	e.timeline.Install(sched)

	if e.audit != nil {
		e.audit.install(sched)
	}
}

// Controllers returns the SIGMA controllers installed at Start (empty for
// unprotected experiments or before Start).
func (e *Experiment) Controllers() []*sigma.Controller { return e.controllers }

// EdgeAgents returns the per-edge protocol agents installed at Start
// (empty unless the protocol is EdgeAssisted).
func (e *Experiment) EdgeAgents() []EdgeAgent { return e.edgeAgents }

// At schedules fn at virtual time t.
func (e *Experiment) At(t Time, fn func()) { e.Topo.Scheduler().At(t, fn) }

// Now returns the current virtual time.
func (e *Experiment) Now() Time { return e.Topo.Scheduler().Now() }

// Advance runs the simulation to the given virtual time (starting the
// experiment if needed) without snapshotting results — the cheap stepping
// primitive for loops that read meters directly. Times already in the
// past are a no-op; virtual time never rewinds.
func (e *Experiment) Advance(until Time) {
	e.Start()
	if until < e.Now() {
		return
	}
	if e.shardsActive() {
		// Conservative-window parallel execution across the shard group;
		// results are byte-identical to the serial path below.
		e.shardGroup.RunUntil(until)
		return
	}
	e.Topo.Scheduler().RunUntil(until)
}

// Run advances the simulation to the given virtual time, starting the
// experiment first if Start has not been called, and returns the typed
// results accumulated from time zero. Call repeatedly with growing times
// to step through an experiment — or use Advance for steps whose Result
// you would discard (the snapshot rebuilds every receiver's series). An
// `until` already in the past snapshots at the current time instead.
func (e *Experiment) Run(until Time) *Result {
	e.Advance(until)
	return e.result(e.Now())
}
