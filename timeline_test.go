package deltasigma_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"deltasigma"
	"deltasigma/internal/flid"
)

// Membership churn under load: receivers leave while their packets are
// still queued and in flight at the bottleneck. Every pooled reference
// must come back once the traffic drains — the leave path may not leak
// envelopes committed to a receiver that is no longer listening.
func TestTimelineLeaveWhileInFlightDrainsPool(t *testing.T) {
	for _, proto := range []string{"flid-dl", "flid-ds"} {
		pool := &deltasigma.PacketPool{}
		exp := deltasigma.MustNew(
			deltasigma.WithProtocol(proto),
			deltasigma.WithSeed(3),
			deltasigma.WithPacketPool(pool),
			deltasigma.WithTimeline(
				// Mid-slot, deliberately unaligned: packets of the current
				// slot are in the bottleneck queue when the leave fires.
				deltasigma.ReceiverLeave{At: 2*deltasigma.Second + 137*deltasigma.Millisecond, Session: 1, Receiver: 1},
				deltasigma.ReceiverJoin{At: 3 * deltasigma.Second, Session: 1, Receiver: 1},
				deltasigma.ReceiverLeave{At: 4*deltasigma.Second + 61*deltasigma.Millisecond, Session: 1, Receiver: 1},
			),
		)
		sess := exp.AddSession(2)
		exp.Advance(5 * deltasigma.Second)

		r := sess.Receivers[0]
		if r.Joined() {
			t.Errorf("%s: receiver still joined after final leave", proto)
		}
		if sess.Receivers[1].Meter().AvgKbps(0, 5*deltasigma.Second) == 0 {
			t.Errorf("%s: surviving receiver starved by the churn", proto)
		}

		if pool.Issued == 0 {
			t.Fatalf("%s: experiment issued no pooled packets", proto)
		}
		drainAndVerify(t, exp)
	}
}

// Attacker onset must behave at both phases of the slot clock: exactly on
// a slot boundary and mid-slot. Both onsets inflate, and under plain
// FLID-DL both capture bandwidth from the well-behaved receiver.
func TestAttackerOnsetSlotBoundaryVsMidSlot(t *testing.T) {
	slot := 500 * deltasigma.Millisecond
	for name, onset := range map[string]deltasigma.Time{
		"slot-boundary": 8 * slot,           // t = 4 s, exactly slot 8
		"mid-slot":      8*slot + slot*3/10, // t = 4.15 s
	} {
		exp := deltasigma.MustNew(
			deltasigma.WithProtocol("flid-dl"),
			deltasigma.WithSeed(9),
			deltasigma.WithTimeline(deltasigma.AttackerOnset{At: onset, Session: 1}),
		)
		sess := exp.AddSession(1)
		atk := sess.AddAttacker()
		exp.Advance(12 * deltasigma.Second)

		a := atk.Unwrap().(*flid.Attacker)
		if !a.Inflated() {
			t.Fatalf("%s: attacker not inflated after onset at %v", name, onset)
		}
		atkRate := atk.Meter().AvgKbps(6*deltasigma.Second, 12*deltasigma.Second)
		goodRate := sess.Receivers[0].Meter().AvgKbps(6*deltasigma.Second, 12*deltasigma.Second)
		if atkRate <= goodRate {
			t.Errorf("%s: DL attacker at %.0f Kbps did not overtake the well-behaved %.0f Kbps",
				name, atkRate, goodRate)
		}
	}
}

// AttackerStop reverts the attacker to well-behaved congestion control.
func TestAttackerStopDeflates(t *testing.T) {
	exp := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-dl"),
		deltasigma.WithSeed(4),
		deltasigma.WithTimeline(
			deltasigma.AttackerOnset{At: 2 * deltasigma.Second, Session: 1},
			deltasigma.AttackerStop{At: 6 * deltasigma.Second, Session: 1},
		),
	)
	sess := exp.AddSession(1)
	atk := sess.AddAttacker()
	exp.Advance(4 * deltasigma.Second)
	a := atk.Unwrap().(*flid.Attacker)
	if !a.Inflated() {
		t.Fatal("attacker not inflated at t=4s")
	}
	exp.Advance(12 * deltasigma.Second)
	if a.Inflated() {
		t.Fatal("attacker still inflated after AttackerStop")
	}
	if !atk.Joined() {
		t.Fatal("deflated attacker should rejoin as a well-behaved receiver")
	}
	if lvl := atk.Level(); lvl < 1 {
		t.Fatalf("deflated attacker level = %d, want >= 1", lvl)
	}
}

// Stopping and restarting a protected attacker must leave exactly one
// guessing loop running: Deflate cancels the pending guessing-slot timer,
// so a restarted attack guesses at the same per-slot rate as one that
// never stopped — not double.
func TestAttackerRestartSingleGuessLoop(t *testing.T) {
	guessesAfter := func(events ...deltasigma.TimelineEvent) uint64 {
		exp := deltasigma.MustNew(
			deltasigma.WithProtocol("flid-ds"),
			deltasigma.WithSeed(11),
			deltasigma.WithTimeline(events...),
		)
		atk := exp.AddSession(1).AddAttacker()
		a := atk.Unwrap().(*flid.DSAttacker)
		exp.Advance(6 * deltasigma.Second)
		before := a.GuessesSent
		exp.Advance(12 * deltasigma.Second)
		return a.GuessesSent - before
	}
	restarted := guessesAfter(
		deltasigma.AttackerOnset{At: 2 * deltasigma.Second, Session: 1},
		deltasigma.AttackerStop{At: 4 * deltasigma.Second, Session: 1},
		deltasigma.AttackerOnset{At: 5 * deltasigma.Second, Session: 1},
	)
	continuous := guessesAfter(
		deltasigma.AttackerOnset{At: 5 * deltasigma.Second, Session: 1},
	)
	if restarted == 0 || continuous == 0 {
		t.Fatalf("vacuous: restarted=%d continuous=%d guesses", restarted, continuous)
	}
	// A leaked second chain would double the rate; entitled-level drift
	// between the runs stays well under 50%.
	if restarted > continuous*3/2 {
		t.Fatalf("restarted attacker sent %d guesses vs %d continuous — a second guessing chain is running", restarted, continuous)
	}
}

// A LinkDown/LinkUp cycle through the timeline discards in-transit packets
// without corrupting the pool, and traffic recovers after the outage.
func TestTimelineLinkOutage(t *testing.T) {
	pool := &deltasigma.PacketPool{}
	exp := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(6),
		deltasigma.WithPacketPool(pool),
		deltasigma.WithTimeline(
			deltasigma.LinkDown{At: 3 * deltasigma.Second, Link: 0},
			deltasigma.LinkUp{At: 4 * deltasigma.Second, Link: 0},
		),
	)
	sess := exp.AddSession(1)
	exp.Advance(10 * deltasigma.Second)

	link := exp.Topo.Bottlenecks()[0]
	if link.DroppedDown == 0 {
		t.Fatal("outage discarded nothing — the link was idle, test is vacuous")
	}
	if link.IsDown() {
		t.Fatal("link still down after LinkUp")
	}
	during := sess.Receivers[0].Meter().AvgKbps(3*deltasigma.Second, 4*deltasigma.Second)
	after := sess.Receivers[0].Meter().AvgKbps(7*deltasigma.Second, 10*deltasigma.Second)
	if after <= during {
		t.Errorf("no recovery after outage: %.0f Kbps during vs %.0f Kbps after", during, after)
	}

	if pool.Issued == 0 {
		t.Fatal("experiment issued no pooled packets")
	}
	drainAndVerify(t, exp)
}

// Poisson churn toggles membership, draws only seeded randomness, and
// replays identically for the same seed.
func TestPoissonChurnDeterministic(t *testing.T) {
	run := func() (uint64, []byte) {
		exp := deltasigma.MustNew(
			deltasigma.WithProtocol("flid-ds"),
			deltasigma.WithSeed(21),
			deltasigma.WithTimeline(
				deltasigma.PoissonChurn{Session: 1, Rate: 2, From: deltasigma.Second, To: 9 * deltasigma.Second},
			),
		)
		exp.AddSession(4)
		res := exp.Run(10 * deltasigma.Second)
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return exp.ChurnEvents(), js
	}
	n1, js1 := run()
	n2, js2 := run()
	if n1 == 0 {
		t.Fatal("churn fired no events over 8 s at rate 2/s")
	}
	if n1 != n2 || !bytes.Equal(js1, js2) {
		t.Fatalf("same seed diverged: %d vs %d churn events, JSON equal=%v", n1, n2, bytes.Equal(js1, js2))
	}
}

// A Manual receiver joins only when its ReceiverJoin event fires.
func TestManualReceiverJoinsByEvent(t *testing.T) {
	exp := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-dl"),
		deltasigma.WithSeed(2),
		deltasigma.WithTimeline(deltasigma.ReceiverJoin{At: 4 * deltasigma.Second, Session: 1, Receiver: 2}),
	)
	sess := exp.AddSession(1)
	late := sess.AddReceiver().Manual()
	exp.Advance(8 * deltasigma.Second)

	if got := late.Meter().AvgKbps(0, 4*deltasigma.Second); got != 0 {
		t.Fatalf("manual receiver got %.1f Kbps before its join event", got)
	}
	if got := late.Meter().AvgKbps(4*deltasigma.Second, 8*deltasigma.Second); got == 0 {
		t.Fatal("manual receiver got nothing after its join event")
	}
}

// A timeline referencing a session, receiver or link that does not exist
// is a wiring bug and panics at Start.
func TestTimelineBadReferencePanics(t *testing.T) {
	for name, ev := range map[string]deltasigma.TimelineEvent{
		"session":      deltasigma.ReceiverLeave{At: 1, Session: 7, Receiver: 1},
		"receiver":     deltasigma.ReceiverLeave{At: 1, Session: 1, Receiver: 9},
		"link":         deltasigma.LinkDown{At: 1, Link: 3},
		"non-attacker": deltasigma.AttackerOnset{At: 1, Session: 1, Receiver: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad reference did not panic at Start", name)
				}
			}()
			exp := deltasigma.MustNew(deltasigma.WithSeed(1), deltasigma.WithTimeline(ev))
			exp.AddSession(1)
			exp.Start()
		}()
	}
}
