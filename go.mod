module deltasigma

go 1.22
