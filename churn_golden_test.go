package deltasigma_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"deltasigma"
)

// sweepWorkers is the parallel worker count the golden determinism tests
// compare against the serial run. CI's determinism job varies it to prove
// byte-identical output is independent of scheduling, not an artifact of
// one lucky worker count.
var sweepWorkers = flag.Int("sweep-workers", 8, "parallel worker count the golden sweep tests compare against workers=1")

// dynamicsSweep is the canned campaign pinned by testdata/churn_golden.json:
// every family of mid-run dynamics at once — Poisson membership churn, a
// late attacker onset, a bottleneck capacity drop and a brief flap — so the
// golden file locks the entire timeline layer, not just static grids.
func dynamicsSweep() deltasigma.Sweep {
	return deltasigma.Sweep{
		Name:       "churn-golden",
		Protocols:  []string{"flid-dl", "flid-ds"},
		Receivers:  []int{3},
		Attackers:  []int{1},
		ChurnRates: []float64{0, 1.5},
		AttackAts:  []deltasigma.Time{3 * deltasigma.Second},
		Duration:   6 * deltasigma.Second,
		Seeds:      []uint64{17},
		Configure: func(p deltasigma.SweepPoint, e *deltasigma.Experiment) error {
			// One scripted path event per point: the bottleneck loses 40%
			// of its capacity mid-run, and flaps once near the end.
			e.AddEvents(
				deltasigma.LinkSetCapacity{At: 4 * deltasigma.Second, Link: 0, Bps: 600_000},
				deltasigma.LinkDown{At: 5 * deltasigma.Second, Link: 0},
				deltasigma.LinkUp{At: 5*deltasigma.Second + 200*deltasigma.Millisecond, Link: 0},
			)
			return nil
		},
	}
}

// TestDynamicsGolden locks the dynamics layer's determinism: a seeded
// experiment with Poisson churn, late attacker onset and scripted link
// events produces byte-identical JSON across worker counts, pinned against
// testdata/churn_golden.json so engine changes cannot silently reshuffle
// seeded dynamic runs.
func TestDynamicsGolden(t *testing.T) {
	sw := dynamicsSweep()
	res1, err := sw.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	js1, err := res1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Failures != 0 {
		t.Fatalf("dynamics sweep had %d failures:\n%s", res1.Failures, js1)
	}

	resN, err := sw.Run(*sweepWorkers)
	if err != nil {
		t.Fatal(err)
	}
	jsN, err := resN.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, jsN) {
		t.Fatalf("dynamics sweep JSON differs between -workers=1 and -workers=%d", *sweepWorkers)
	}

	// The churned points must actually have churned, or the golden file
	// pins a vacuous scenario.
	churned := false
	for _, p := range res1.Points {
		if p.Point.ChurnRate > 0 && p.GoodMeanKbps != 0 {
			churned = true
		}
	}
	if !churned {
		t.Fatal("no churned point produced throughput — scenario is vacuous")
	}

	path := filepath.Join("testdata", "churn_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, js1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(js1, want) {
		t.Errorf("dynamics sweep JSON diverged from golden file %s:\ngot:\n%s\nwant:\n%s", path, js1, want)
	}
}
