package deltasigma_test

import (
	"strings"
	"testing"

	"deltasigma"
)

func TestProtocolRegistryNames(t *testing.T) {
	want := map[string]bool{ // name -> Protected()
		"flid-dl":            false,
		"flid-ds":            true,
		"flid-ds-replicated": true,
		"flid-ds-threshold":  true,
		"mfcc":               false,
		"dsc":                false,
		"abr-cf":             false,
	}
	got := deltasigma.Protocols()
	for name, protected := range want {
		p, ok := deltasigma.LookupProtocol(name)
		if !ok {
			t.Fatalf("protocol %q not registered (have %v)", name, got)
		}
		if p.Name() != name {
			t.Fatalf("protocol %q reports name %q", name, p.Name())
		}
		if prot := p.Protected(); prot != protected {
			t.Fatalf("protocol %q: Protected() = %v, want %v", name, prot, protected)
		}
	}
	if len(got) < len(want) {
		t.Fatalf("deltasigma.Protocols() = %v, want at least %d entries", got, len(want))
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := deltasigma.New(deltasigma.WithProtocol("no-such-protocol")); err == nil {
		t.Fatal("unknown protocol accepted")
	} else if !strings.Contains(err.Error(), "no-such-protocol") {
		t.Fatalf("error does not name the protocol: %v", err)
	}
	if _, err := deltasigma.New(deltasigma.WithSlot(-deltasigma.Second)); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := deltasigma.New(deltasigma.WithECN(1.5)); err == nil {
		t.Fatal("out-of-range ECN fraction accepted")
	}
	if _, err := deltasigma.New(deltasigma.WithPacketSize(0)); err == nil {
		t.Fatal("zero packet size accepted")
	}
	if _, err := deltasigma.New(deltasigma.WithSchedule(deltasigma.RateSchedule{Base: 100_000, Mult: 1.5, N: 300})); err == nil {
		t.Fatal("invalid schedule accepted (must error, not panic)")
	}
	if _, err := deltasigma.New(deltasigma.WithChain()); err == nil {
		t.Fatal("empty chain accepted (must error, not panic)")
	}
	if _, err := deltasigma.New(deltasigma.WithStar(-1)); err == nil {
		t.Fatal("negative star spoke accepted (must error, not panic)")
	}
	if _, err := deltasigma.New(deltasigma.WithDumbbell(0)); err == nil {
		t.Fatal("zero dumbbell capacity accepted (must error, not panic)")
	}
}

// protocolOptions returns per-variant extra options for the cross-protocol
// tests. A replicated sender transmits every group at its cumulative rate,
// so the paper's 10-group schedule (≈11.3 Mbps summed) would overflow the
// 10 Mbps access links; the variant gets the 6-group schedule its demo
// uses (≈2.1 Mbps summed).
func protocolOptions(name string) []deltasigma.Option {
	if name == "flid-ds-replicated" {
		return []deltasigma.Option{deltasigma.WithSchedule(deltasigma.RateSchedule{Base: 100_000, Mult: 1.5, N: 6})}
	}
	return nil
}

// Per-protocol convergence, topology coverage, cross-traffic sharing,
// drain-and-audit, determinism and attacker availability all live in the
// registry-driven conformance suite: see TestProtocolConformance in
// conformance_test.go.

// TestAttackSuppressedUnderEveryProtectedVariant is the regression the
// paper is about: under every protected protocol the inflated-subscription
// attacker gains nothing and the victim session survives.
func TestAttackSuppressedUnderEveryProtectedVariant(t *testing.T) {
	for _, name := range deltasigma.Protocols() {
		p, _ := deltasigma.LookupProtocol(name)
		if !p.Protected() {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			opts := append([]deltasigma.Option{deltasigma.WithDumbbell(500_000), deltasigma.WithProtocol(name), deltasigma.WithSeed(8)},
				protocolOptions(name)...)
			exp := deltasigma.MustNew(opts...)
			atk := exp.AddSession(0).AddAttacker()
			victim := exp.AddSession(1).Receivers[0]
			exp.At(20*deltasigma.Second, atk.Inflate)
			exp.Run(50 * deltasigma.Second)

			if rate := atk.Meter().AvgKbps(35*deltasigma.Second, 50*deltasigma.Second); rate > 400 {
				t.Fatalf("%s: attacker at %.0f Kbps exceeds any fair reading of 250 Kbps", name, rate)
			}
			if rate := victim.Meter().AvgKbps(35*deltasigma.Second, 50*deltasigma.Second); rate < 80 {
				t.Fatalf("%s: victim starved at %.0f Kbps", name, rate)
			}
			drainAndVerify(t, exp)
		})
	}
}

// TestBaselineAttackSucceeds pins the other half of the contrast: under
// plain FLID-DL the same attack does profit.
func TestBaselineAttackSucceeds(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithDumbbell(500_000), deltasigma.WithProtocol("flid-dl"), deltasigma.WithSeed(8))
	atk := exp.AddSession(0).AddAttacker()
	victim := exp.AddSession(1).Receivers[0]
	exp.At(20*deltasigma.Second, atk.Inflate)
	exp.Run(50 * deltasigma.Second)
	atkRate := atk.Meter().AvgKbps(35*deltasigma.Second, 50*deltasigma.Second)
	victimRate := victim.Meter().AvgKbps(35*deltasigma.Second, 50*deltasigma.Second)
	if atkRate < 2*victimRate {
		t.Fatalf("baseline attack ineffective: %.0f vs %.0f Kbps", atkRate, victimRate)
	}
	drainAndVerify(t, exp)
}

// TestChainTopology proves the Topology abstraction on a two-bottleneck
// chain: a receiver behind the 250 Kbps second hop is pinned near the fair
// level for that link while a receiver behind only the 1 Mbps first hop
// climbs higher.
func TestChainTopology(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithChain(1_000_000, 250_000), deltasigma.WithProtocol("flid-ds"), deltasigma.WithSeed(9))
	chain := exp.Topo.(*deltasigma.Chain)
	sess := exp.AddSession(1) // default egress: far end, behind both hops
	far := sess.Receivers[0]
	near := sess.AddReceiverAt(chain.AttachReceiverAt(1, "near", 0))
	res := exp.Run(60 * deltasigma.Second)

	if lvl := far.Level(); lvl < 2 || lvl > 4 {
		t.Fatalf("far receiver at level %d, want near the 250 Kbps fair level 3", lvl)
	}
	if near.Level() <= far.Level() {
		t.Fatalf("near receiver (1 Mbps hop) at level %d, not above far receiver's %d",
			near.Level(), far.Level())
	}
	if len(res.Bottlenecks) != 2 {
		t.Fatalf("want 2 bottleneck entries, got %d", len(res.Bottlenecks))
	}
	drainAndVerify(t, exp)
}

// TestStarPerEdgeGatekeepers proves the star: receivers of one session
// behind spokes of different capacity converge to different levels, each
// enforced by its own SIGMA edge.
func TestStarPerEdgeGatekeepers(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithStar(600_000, 150_000), deltasigma.WithProtocol("flid-ds"), deltasigma.WithSeed(10))
	sess := exp.AddSession(2) // round-robin: R1 on the 600k spoke, R2 on the 150k spoke
	fast, slow := sess.Receivers[0], sess.Receivers[1]
	exp.Run(60 * deltasigma.Second)

	if slow.Level() > 3 {
		t.Fatalf("slow-spoke receiver at level %d despite a 150 Kbps bottleneck", slow.Level())
	}
	if fast.Level() <= slow.Level() {
		t.Fatalf("fast-spoke receiver at level %d, not above slow spoke's %d",
			fast.Level(), slow.Level())
	}
	if fast.Meter().AvgKbps(30*deltasigma.Second, 60*deltasigma.Second) <= slow.Meter().AvgKbps(30*deltasigma.Second, 60*deltasigma.Second) {
		t.Fatal("fast spoke did not outpace slow spoke")
	}
	drainAndVerify(t, exp)
}

// TestCrossTrafficOptions runs a protected session against a TCP Reno flow
// and on-off CBR through the facade and checks everyone gets a share.
func TestCrossTrafficOptions(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithDumbbell(750_000), deltasigma.WithProtocol("flid-ds"), deltasigma.WithSeed(11))
	r := exp.AddSession(1).Receivers[0]
	tcpFlow := exp.AddTCP(0)
	exp.AddCBR(75_000, 5*deltasigma.Second, 5*deltasigma.Second)
	res := exp.Run(60 * deltasigma.Second)

	if avg := r.Meter().AvgKbps(30*deltasigma.Second, 60*deltasigma.Second); avg < 80 {
		t.Fatalf("multicast receiver starved at %.0f Kbps", avg)
	}
	if avg := tcpFlow.Meter().AvgKbps(30*deltasigma.Second, 60*deltasigma.Second); avg < 50 {
		t.Fatalf("TCP flow starved at %.0f Kbps", avg)
	}
	if len(res.Cross) != 2 {
		t.Fatalf("want 2 cross-traffic entries, got %d", len(res.Cross))
	}
	for _, c := range res.Cross {
		if c.AvgKbps <= 0 {
			t.Fatalf("cross flow %s delivered nothing", c.Label)
		}
	}
	drainAndVerify(t, exp)
}

// TestRunAutoStartsAndResult checks the satellite fixes: Run without an
// explicit Start no longer hangs silently, Start stays idempotent, and the
// typed Result carries coherent data.
func TestRunAutoStartsAndResult(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithDumbbell(250_000), deltasigma.WithSeed(12))
	exp.AddSession(1)
	res := exp.Run(30 * deltasigma.Second) // no Start() — must auto-start
	exp.Start()                            // idempotent after the fact

	if res.Protocol != "flid-ds" {
		t.Fatalf("result protocol %q", res.Protocol)
	}
	if res.Seconds != 30 {
		t.Fatalf("result seconds %.1f", res.Seconds)
	}
	rr := res.Receiver(1, 1)
	if rr == nil {
		t.Fatal("receiver S1R1 missing from result")
	}
	if rr.Label != "S1R1" || rr.Attacker {
		t.Fatalf("receiver entry %+v mislabelled", rr)
	}
	if rr.AvgKbps <= 0 || len(rr.Series) == 0 {
		t.Fatalf("receiver result empty: %+v", rr)
	}
	if len(res.Bottlenecks) != 1 || res.Bottlenecks[0].CapacityBps != 250_000 {
		t.Fatalf("bottleneck entries wrong: %+v", res.Bottlenecks)
	}
	if u := res.Utilization(); u <= 0 || u > 1.05 {
		t.Fatalf("utilization %.2f out of range", u)
	}

	// A Run into the past must not rewind the clock or skew the snapshot.
	stale := exp.Run(5 * deltasigma.Second)
	if stale.Seconds != 30 || exp.Now() != 30*deltasigma.Second {
		t.Fatalf("Run into the past rewound: seconds=%.0f now=%v", stale.Seconds, exp.Now())
	}
	if u := stale.Utilization(); u > 1.05 {
		t.Fatalf("stale-until snapshot inflated utilization to %.2f", u)
	}
	drainAndVerify(t, exp)
}

// TestECNOption checks WithECN wires marking and edge scrubbing end to
// end: the queue marks, the receiver still converges, losses stay rare.
func TestECNOption(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithDumbbell(250_000), deltasigma.WithECN(0.4), deltasigma.WithSeed(21))
	r := exp.AddSession(1).Receivers[0]
	res := exp.Run(40 * deltasigma.Second)
	if res.Bottlenecks[0].Marked == 0 {
		t.Fatal("ECN enabled but nothing was marked")
	}
	if r.Level() < 2 {
		t.Fatalf("receiver stuck at level %d under ECN", r.Level())
	}
	drainAndVerify(t, exp)
}

// TestWideScheduleSessionsDontOverlap pins the session address-block
// sizing: schedules wider than the minimum spacing must still get
// disjoint group blocks.
func TestWideScheduleSessionsDontOverlap(t *testing.T) {
	exp := deltasigma.MustNew(
		deltasigma.WithDumbbell(500_000),
		deltasigma.WithSchedule(deltasigma.RateSchedule{Base: 10_000, Mult: 1.05, N: 40}),
		deltasigma.WithSeed(14),
	)
	s1 := exp.AddSession(0)
	s2 := exp.AddSession(0)
	if top, next := s1.Sess.GroupAddr(40), s2.Sess.GroupAddr(1); top >= next {
		t.Fatalf("session blocks overlap: S1 group 40 at %v, S2 group 1 at %v", top, next)
	}
}

// TestAddAfterStartPanics pins the wiring guard: agents added after the
// experiment has started would silently never run, so the facade refuses.
func TestAddAfterStartPanics(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithDumbbell(250_000), deltasigma.WithSeed(15))
	exp.AddSession(1)
	exp.Advance(1 * deltasigma.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("AddSession after start must panic, not silently no-op")
		}
	}()
	exp.AddSession(1)
}

func TestFacadePaperSchedule(t *testing.T) {
	rs := deltasigma.PaperSchedule()
	if rs.N != 10 || rs.Base != 100_000 {
		t.Fatalf("unexpected schedule %+v", rs)
	}
}

// TestAttackerLabelAndUnwrap pins the receiver bookkeeping the results
// depend on.
func TestAttackerLabelAndUnwrap(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithDumbbell(250_000), deltasigma.WithSeed(13))
	s := exp.AddSession(1)
	atk := s.AddAttacker()
	if !atk.Attacker() || atk.Label() != "S1R2(attacker)" {
		t.Fatalf("attacker mislabelled: %q attacker=%v", atk.Label(), atk.Attacker())
	}
	if s.Receivers[0].Attacker() {
		t.Fatal("well-behaved receiver flagged as attacker")
	}
	if atk.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}
