package deltasigma

import "testing"

func TestFacadeProtectedSessionRuns(t *testing.T) {
	e := NewExperiment(250_000, true, 7)
	s := e.AddSession(1)
	e.Start()
	e.Run(40 * Second)
	r := s.Receivers[0]
	if r.Level() < 2 {
		t.Fatalf("level = %d, want convergence toward 3", r.Level())
	}
	if avg := r.Meter().AvgKbps(20*Second, 40*Second); avg < 100 {
		t.Fatalf("throughput %.0f Kbps too low", avg)
	}
}

func TestFacadeAttackAndProtection(t *testing.T) {
	// Baseline: attack profits.
	base := NewExperiment(500_000, false, 8)
	s1 := base.AddSession(0)
	s2 := base.AddSession(1)
	atk := s1.AddAttacker()
	base.Start()
	base.At(20*Second, atk.Inflate)
	base.Run(50 * Second)
	atkRate := atk.Meter().AvgKbps(35*Second, 50*Second)
	victimRate := s2.Receivers[0].Meter().AvgKbps(35*Second, 50*Second)
	if atkRate < 2*victimRate {
		t.Fatalf("baseline attack ineffective: %.0f vs %.0f", atkRate, victimRate)
	}

	// Protected: attack does not profit.
	prot := NewExperiment(500_000, true, 8)
	p1 := prot.AddSession(0)
	p2 := prot.AddSession(1)
	patk := p1.AddAttacker()
	prot.Start()
	prot.At(20*Second, patk.Inflate)
	prot.Run(50 * Second)
	pAtk := patk.Meter().AvgKbps(35*Second, 50*Second)
	pVictim := p2.Receivers[0].Meter().AvgKbps(35*Second, 50*Second)
	if pAtk > 400 {
		t.Fatalf("protected attacker at %.0f Kbps", pAtk)
	}
	if pVictim < 80 {
		t.Fatalf("protected victim starved at %.0f Kbps", pVictim)
	}
}

func TestFacadePaperSchedule(t *testing.T) {
	rs := PaperSchedule()
	if rs.N != 10 || rs.Base != 100_000 {
		t.Fatalf("unexpected schedule %+v", rs)
	}
}
