package deltasigma_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"deltasigma"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/sweep_golden.json from the current engine")

// goldenSweep is the small canned campaign pinned by testdata/sweep_golden.json:
// both FLID variants, with and without an attacker, one seed. The golden file
// was generated before the zero-allocation refactor of the event/packet hot
// path; byte-identical output proves the pooled engine replays the exact same
// simulation.
func goldenSweep() deltasigma.Sweep {
	return deltasigma.Sweep{
		Name:      "golden",
		Protocols: []string{"flid-dl", "flid-ds"},
		Receivers: []int{2},
		Attackers: []int{0, 1},
		Duration:  6 * deltasigma.Second,
		Seeds:     []uint64{11},
	}
}

// TestSweepGolden locks sweep output against the pre-refactor golden file and
// against itself across worker counts: same seeds must mean byte-identical
// JSON no matter how the grid is scheduled or how packets and events are
// recycled internally.
func TestSweepGolden(t *testing.T) {
	sw := goldenSweep()
	res1, err := sw.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	js1, err := res1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Failures != 0 {
		t.Fatalf("golden sweep had %d failures:\n%s", res1.Failures, js1)
	}

	res8, err := sw.Run(*sweepWorkers)
	if err != nil {
		t.Fatal(err)
	}
	js8, err := res8.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js8) {
		t.Fatalf("sweep JSON differs between -workers=1 and -workers=%d", *sweepWorkers)
	}

	path := filepath.Join("testdata", "sweep_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, js1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(js1, want) {
		t.Errorf("sweep JSON diverged from pre-refactor golden file %s:\ngot:\n%s\nwant:\n%s", path, js1, want)
	}
}
