package deltasigma

import (
	"fmt"

	"deltasigma/internal/cohort"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
)

// feedbackHold is how long a consolidating router buffers a feedback bucket
// before flushing one merged report upstream: long enough to absorb every
// child report of a slot (they arrive within propagation skew of each
// other), short against the slot duration so consolidated feedback stays
// fresh.
const feedbackHold = 5 * Millisecond

// Cohort wraps an aggregated population of well-behaved receivers: one
// fluid model of n members behind a private edge (see internal/cohort)
// instead of n per-packet receiver objects. It exposes the same lifecycle
// surface as Receiver — StartAt/Manual wiring, Start/Stop at runtime — plus
// the aggregate views (Online, Levels, MeanLevel) individuals do not have.
type Cohort struct {
	agent *cohort.Agent

	exp     *Experiment
	session int
	index   int
	startAt Time
	manual  bool
}

// AddCohort attaches an aggregated population of n well-behaved receivers
// at the topology's default egress with the default access delay. The
// population advances by the same FLID slot rules as n individual
// receivers and shares the session's bottlenecks and graft machinery, but
// costs O(groups) per slot instead of O(n) per packet — the way to put a
// million receivers in a session. Attackers cannot be aggregated; keep
// them (and any receiver on a path under test) as exact objects.
func (s *ExperimentSession) AddCohort(n int) *Cohort {
	return s.AddCohortDelay(n, DefaultDelay)
}

// AddCohortDelay attaches a cohort whose access link has the given
// propagation delay (negative — DefaultDelay — uses the topology default).
func (s *ExperimentSession) AddCohortDelay(n int, delay Time) *Cohort {
	s.exp.mustNotHaveStarted("AddCohort")
	if n <= 0 {
		panic(fmt.Sprintf("deltasigma: AddCohort(%d) needs a positive population", n))
	}
	if !supportsCohorts(s.exp.Protocol) {
		// E.g. replicated sessions carry ProtoRepl data the layered fluid
		// model never observes; an aggregated population would sit at
		// level 1 forever and report pure loss. Protocols declare this via
		// CohortCapable.
		panic(fmt.Sprintf("deltasigma: AddCohort is not supported on protocol %q", s.exp.Protocol.Name()))
	}
	port := s.exp.Topo.AttachCohort("", delay)
	agent := cohort.New(port.Host, port.Edge, s.Sess, uint64(n))
	agent.SetFeedbackDst(s.src.Addr())
	c := &Cohort{
		agent:   agent,
		exp:     s.exp,
		session: s.index,
		index:   len(s.Cohorts) + 1,
	}
	s.Cohorts = append(s.Cohorts, c)
	return c
}

// StartAt defers the cohort's automatic start to virtual time t, like
// Receiver.StartAt. Call before the experiment starts; returns the cohort
// for chaining.
func (c *Cohort) StartAt(t Time) *Cohort {
	c.exp.mustNotHaveStarted("StartAt")
	c.startAt = t
	return c
}

// Manual suppresses the cohort's automatic start; it joins only on an
// explicit Start call. Call before the experiment starts.
func (c *Cohort) Manual() *Cohort {
	c.exp.mustNotHaveStarted("Manual")
	c.manual = true
	return c
}

// Start brings every offline member online at the minimal level. Safe
// mid-run.
func (c *Cohort) Start() { c.agent.Start() }

// Stop takes every member offline. Safe mid-run; packets already queued or
// in flight drain normally.
func (c *Cohort) Stop() { c.agent.Stop() }

// Joined reports whether any member is currently online.
func (c *Cohort) Joined() bool { return c.agent.Joined() }

// Level reports the highest occupied subscription level (0 when every
// member is offline).
func (c *Cohort) Level() int { return c.agent.Level() }

// Levels returns the member count per subscription level; index 0 holds
// the offline members.
func (c *Cohort) Levels() []uint64 { return c.agent.Levels() }

// MeanLevel returns the average subscription level across all members,
// offline members counting as level 0.
func (c *Cohort) MeanLevel() float64 { return c.agent.MeanLevel() }

// Members returns the configured population size.
func (c *Cohort) Members() uint64 { return c.agent.Members() }

// Online returns how many members are currently joined.
func (c *Cohort) Online() uint64 { return c.agent.Online() }

// Toggle flips one member between joined and left; idx must be uniform in
// [0, Members()). PoissonChurn events resolve to this call.
func (c *Cohort) Toggle(idx uint64) { c.agent.Toggle(idx) }

// Meter returns the aggregate throughput meter: delivered session bytes
// summed across members.
func (c *Cohort) Meter() *Meter { return c.agent.Meter }

// Agent returns the underlying fluid model for aggregate statistics
// (bucket counts, per-member subscription moves, reports sent).
func (c *Cohort) Agent() *cohort.Agent { return c.agent }

// Label names the cohort in results: S<session>C<index>.
func (c *Cohort) Label() string { return fmt.Sprintf("S%dC%d", c.session, c.index) }

// ---------------------------------------------------------------------------
// Experiment-level cohort plumbing.

// Cohorts returns every cohort of every session, session by session in
// attachment order.
func (e *Experiment) Cohorts() []*Cohort {
	var out []*Cohort
	for _, s := range e.sessions {
		out = append(out, s.Cohorts...)
	}
	return out
}

// cohortEdges lists the private edge routers of every cohort, for the
// graft-consistency audit (they are deliberately absent from Topo.Edges).
func (e *Experiment) cohortEdges() []*mcast.Router {
	var out []*mcast.Router
	for _, s := range e.sessions {
		for _, c := range s.Cohorts {
			out = append(out, c.agent.Edge())
		}
	}
	return out
}

// enableConsolidation turns on hierarchical feedback consolidation at
// every router of the topology: each router merges the child feedback
// reports of a (session, slot) into one report and forwards it upstream
// after feedbackHold, so control traffic at the source scales with the
// tree's fan-out rather than the receiver population. Called from Start
// when cohorts exist and WithFeedbackConsolidation has not disabled it.
func (e *Experiment) enableConsolidation() {
	net := e.Topo.Network()
	for id := 0; id < e.Topo.Network().NodeCount(); id++ {
		if r, ok := net.Node(netsim.NodeID(id)).(*mcast.Router); ok {
			r.EnableConsolidation(feedbackHold)
		}
	}
}

// FeedbackStats totals the consolidation counters across every router:
// reports absorbed into pending buckets and merged reports forwarded
// upstream. Both zero when consolidation is off.
func (e *Experiment) FeedbackStats() (absorbed, forwarded uint64) {
	net := e.Topo.Network()
	for id := 0; id < net.NodeCount(); id++ {
		if r, ok := net.Node(netsim.NodeID(id)).(*mcast.Router); ok {
			absorbed += r.FeedbackAbsorbed
			forwarded += r.FeedbackForwarded
		}
	}
	return absorbed, forwarded
}
