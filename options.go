package deltasigma

import (
	"fmt"

	"deltasigma/internal/packet"
	"deltasigma/internal/topo"
)

// settings accumulates the functional options New applies.
type settings struct {
	seed      uint64
	topology  Topology                   // prebuilt; wins over topoFn
	topoFn    func(seed uint64) Topology // deferred builder, seeded by New
	protocol  Protocol
	schedule  RateSchedule
	slot      Time // 0 selects the protocol default
	pktSize   int
	ecnFrac   float64
	cohortThr int
	noConsol  bool
	pool      *packet.Pool
	events    []TimelineEvent
	audit     auditSettings
	shards    int
	shardsSet bool
	err       error
}

// Option configures an Experiment under construction.
type Option func(*settings)

func (s *settings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// WithSeed fixes the seed driving all experiment randomness (topology RNG,
// sender jitter, DELTA key generation). The default is 1.
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithTopology runs the experiment on a prebuilt topology. The topology's
// own seed governs its RNG; WithSeed does not reach into it.
func WithTopology(t Topology) Option {
	return func(s *settings) {
		if t == nil {
			s.fail(fmt.Errorf("deltasigma: WithTopology(nil)"))
			return
		}
		s.topology = t
		s.topoFn = nil
	}
}

// WithTopologyFunc defers topology construction until New has resolved the
// experiment seed; fn receives that seed. This is the generic hook custom
// topologies plug in through.
func WithTopologyFunc(fn func(seed uint64) Topology) Option {
	return func(s *settings) {
		if fn == nil {
			s.fail(fmt.Errorf("deltasigma: WithTopologyFunc(nil)"))
			return
		}
		s.topology = nil
		s.topoFn = fn
	}
}

// checkCaps validates a capacity list so topology options honor New's
// error contract instead of panicking inside the deferred builder.
func checkCaps(opt string, caps []int64) error {
	if len(caps) == 0 {
		return fmt.Errorf("deltasigma: %s needs at least one capacity", opt)
	}
	for _, c := range caps {
		if c <= 0 {
			return fmt.Errorf("deltasigma: %s capacity %d must be positive", opt, c)
		}
	}
	return nil
}

// WithDumbbell runs the experiment on the §5.1 dumbbell with the given
// bottleneck capacity in bits/s. This is the default topology (at 1 Mbps)
// when no topology option is given.
func WithDumbbell(bottleneck int64) Option {
	if err := checkCaps("WithDumbbell", []int64{bottleneck}); err != nil {
		return func(s *settings) { s.fail(err) }
	}
	return WithTopologyFunc(func(seed uint64) Topology {
		return topo.New(topo.PaperConfig(bottleneck, seed))
	})
}

// WithDumbbellConfig runs the experiment on a fully parameterized
// dumbbell. A zero cfg.Seed inherits the experiment seed.
func WithDumbbellConfig(cfg DumbbellConfig) Option {
	return WithTopologyFunc(func(seed uint64) Topology {
		if cfg.Seed == 0 {
			cfg.Seed = seed
		}
		return topo.New(cfg)
	})
}

// WithChain runs the experiment on a multi-bottleneck chain with the given
// per-hop capacities in bits/s, ingress to egress; receivers attach at the
// far end by default.
func WithChain(capacities ...int64) Option {
	caps := append([]int64(nil), capacities...)
	if err := checkCaps("WithChain", caps); err != nil {
		return func(s *settings) { s.fail(err) }
	}
	return WithTopologyFunc(func(seed uint64) Topology {
		return topo.NewChain(topo.ChainConfig{Bottlenecks: caps, Seed: seed})
	})
}

// WithChainConfig runs the experiment on a fully parameterized chain. A
// zero cfg.Seed inherits the experiment seed.
func WithChainConfig(cfg ChainConfig) Option {
	return WithTopologyFunc(func(seed uint64) Topology {
		if cfg.Seed == 0 {
			cfg.Seed = seed
		}
		return topo.NewChain(cfg)
	})
}

// WithStar runs the experiment on a star with one bottleneck spoke (and
// one gatekeeping edge router) per capacity; receivers round-robin across
// the spokes.
func WithStar(capacities ...int64) Option {
	caps := append([]int64(nil), capacities...)
	if err := checkCaps("WithStar", caps); err != nil {
		return func(s *settings) { s.fail(err) }
	}
	return WithTopologyFunc(func(seed uint64) Topology {
		return topo.NewStar(topo.StarConfig{Spokes: caps, Seed: seed})
	})
}

// WithStarConfig runs the experiment on a fully parameterized star. A zero
// cfg.Seed inherits the experiment seed.
func WithStarConfig(cfg StarConfig) Option {
	return WithTopologyFunc(func(seed uint64) Topology {
		if cfg.Seed == 0 {
			cfg.Seed = seed
		}
		return topo.NewStar(cfg)
	})
}

// WithProtocol selects a registered congestion control variant by name
// (see Protocols for the list). The default is "flid-ds".
func WithProtocol(name string) Option {
	return func(s *settings) {
		p, ok := LookupProtocol(name)
		if !ok {
			s.fail(fmt.Errorf("deltasigma: unknown protocol %q (registered: %v)", name, Protocols()))
			return
		}
		s.protocol = p
	}
}

// WithProtocolImpl runs the experiment on a Protocol instance directly,
// registered or not — custom implementations and parameterized variants
// (e.g. ThresholdProtocol with explicit tolerances) enter here.
func WithProtocolImpl(p Protocol) Option {
	return func(s *settings) {
		if p == nil {
			s.fail(fmt.Errorf("deltasigma: WithProtocolImpl(nil)"))
			return
		}
		s.protocol = p
	}
}

// WithSchedule overrides the rate schedule of every session the
// experiment creates. The default is PaperSchedule.
func WithSchedule(rs RateSchedule) Option {
	return func(s *settings) {
		if err := rs.Check(); err != nil {
			s.fail(err)
			return
		}
		s.schedule = rs
	}
}

// WithSlot overrides the slot duration of every session the experiment
// creates. The default is the protocol's DefaultSlot.
func WithSlot(d Time) Option {
	return func(s *settings) {
		if d <= 0 {
			s.fail(fmt.Errorf("deltasigma: WithSlot(%v) must be positive", d))
			return
		}
		s.slot = d
	}
}

// WithPacketSize overrides the wire size of data packets in bytes. The
// default is the paper's 576.
func WithPacketSize(bytes int) Option {
	return func(s *settings) {
		if bytes <= 0 {
			s.fail(fmt.Errorf("deltasigma: WithPacketSize(%d) must be positive", bytes))
			return
		}
		s.pktSize = bytes
	}
}

// WithPacketPool injects a shared packet pool into the experiment's
// network. The simulation recycles packet envelopes through the pool, so a
// caller that runs many experiments sequentially — a campaign worker
// stepping through grid points — hands each one the same warm pool and the
// per-experiment allocation spike disappears. A pool must never be shared
// by experiments running concurrently; each campaign worker owns its own.
func WithPacketPool(p *packet.Pool) Option {
	return func(s *settings) {
		if p == nil {
			s.fail(fmt.Errorf("deltasigma: WithPacketPool(nil)"))
			return
		}
		s.pool = p
	}
}

// WithTimeline scripts typed mid-run events against virtual time:
// membership churn (ReceiverJoin/ReceiverLeave/PoissonChurn), attacker
// lifecycle (AttackerOnset/AttackerStop) and link dynamics
// (LinkSetCapacity/LinkSetDelay/LinkDown/LinkUp/LinkFlap). Events carry
// symbolic session/receiver/link indices and are resolved when the
// experiment starts, so the timeline can be declared before any session is
// wired. Repeated options and AddEvents calls accumulate.
func WithTimeline(events ...TimelineEvent) Option {
	return func(s *settings) {
		for _, ev := range events {
			if ev == nil {
				s.fail(fmt.Errorf("deltasigma: WithTimeline(nil event)"))
				return
			}
		}
		s.events = append(s.events, events...)
	}
}

// WithCohortThreshold turns large AddSession populations into cohorts: a
// session asked for more than n well-behaved receivers gets one aggregated
// Cohort of that size (see ExperimentSession.AddCohort) instead of n
// per-packet receiver objects. Receivers added individually — AddReceiver,
// AddAttacker — are never aggregated, so attackers and probes on contested
// paths stay exact. Zero (the default) never aggregates.
func WithCohortThreshold(n int) Option {
	return func(s *settings) {
		if n <= 0 {
			s.fail(fmt.Errorf("deltasigma: WithCohortThreshold(%d) must be positive", n))
			return
		}
		s.cohortThr = n
	}
}

// WithFeedbackConsolidation toggles hierarchical consolidation of cohort
// feedback reports at the routers (default on whenever cohorts exist):
// each router merges the child reports of a (session, slot) into one and
// forwards it upstream, so source-side control traffic scales with the
// distribution tree's fan-out rather than the receiver population. Off,
// every cohort's per-slot report travels to the source individually.
func WithFeedbackConsolidation(on bool) Option {
	return func(s *settings) { s.noConsol = !on }
}

// WithShards asks the experiment to execute across n parallel shards: the
// topology is partitioned so that each migrated receiver host (and its
// access links' sender sides) runs on its own per-core scheduler, with
// conservative lookahead windows keeping results byte-identical to a serial
// run — sharding changes wall-clock time, never output. n = 0 picks an
// automatic shard count from GOMAXPROCS; n = 1 is explicit serial
// execution. Experiments that script timeline events or enable the audit
// layer's mid-run sampling fall back to serial execution and record why
// (see Result.Sharding).
func WithShards(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail(fmt.Errorf("deltasigma: WithShards(%d) must be non-negative", n))
			return
		}
		s.shards = n
		s.shardsSet = true
	}
}

// WithECN turns on threshold ECN marking at every bottleneck queue:
// packets enqueued beyond markFraction of the queue capacity are CE-marked
// instead of relying on loss alone, and protected experiments scrub the
// DELTA component of marked packets at the edge (§3.1.2 congestion
// notification — a mark denies keys exactly like a loss, but no data is
// thrown away).
func WithECN(markFraction float64) Option {
	return func(s *settings) {
		if markFraction <= 0 || markFraction >= 1 {
			s.fail(fmt.Errorf("deltasigma: WithECN(%v) must be in (0,1)", markFraction))
			return
		}
		s.ecnFrac = markFraction
	}
}
