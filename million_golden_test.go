package deltasigma_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"deltasigma"
)

// millionSweep is the canned million-receiver campaign pinned by
// testdata/million_golden.json: both FLID variants carrying one aggregated
// cohort of 1,000,000 receivers per session, with Poisson churn across the
// population. The fluid model makes the per-point cost independent of the
// member count, so a seven-figure session fits in a unit test.
func millionSweep() deltasigma.Sweep {
	return deltasigma.Sweep{
		Name:       "million-golden",
		Protocols:  []string{"flid-dl", "flid-ds"},
		Receivers:  []int{0},
		Cohorts:    []int{1_000_000},
		ChurnRates: []float64{0, 50},
		Duration:   6 * deltasigma.Second,
		Seeds:      []uint64{23},
	}
}

// TestMillionGolden locks the cohort subsystem's determinism at full scale:
// a seeded campaign with a million receivers per session produces
// byte-identical JSON across worker counts, pinned against
// testdata/million_golden.json.
func TestMillionGolden(t *testing.T) {
	sw := millionSweep()
	res1, err := sw.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	js1, err := res1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Failures != 0 {
		t.Fatalf("million sweep had %d failures:\n%s", res1.Failures, js1)
	}

	resN, err := sw.Run(*sweepWorkers)
	if err != nil {
		t.Fatal(err)
	}
	jsN, err := resN.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, jsN) {
		t.Fatalf("million sweep JSON differs between -workers=1 and -workers=%d", *sweepWorkers)
	}

	// Every point must have delivered throughput to its population, or the
	// golden file pins a vacuous scenario.
	for _, p := range res1.Points {
		if p.GoodMeanKbps <= 0 {
			t.Fatalf("point %s delivered nothing to its million receivers", p.Point)
		}
	}

	path := filepath.Join("testdata", "million_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, js1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(js1, want) {
		t.Errorf("million sweep JSON diverged from golden file %s:\ngot:\n%s\nwant:\n%s", path, js1, want)
	}
}

// TestMillionUnderFullAudit runs a seeded session with a 1,000,000-receiver
// cohort under the complete periodic invariant audit — every conservation
// law sampled every virtual second, cohort conservation and private-edge
// graft consistency included — through churn and an attacker onset, and
// requires a clean drain.
func TestMillionUnderFullAudit(t *testing.T) {
	e := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(29),
		deltasigma.WithAudit(deltasigma.AuditEvery(deltasigma.Second)),
	)
	s := e.AddSession(0)
	c := s.AddCohort(1_000_000)
	s.AddAttacker()
	e.AddEvents(
		deltasigma.AttackerOnset{At: 4 * deltasigma.Second, Session: 1},
		deltasigma.PoissonChurn{Session: 1, Rate: 100, To: 10 * deltasigma.Second},
	)
	e.Advance(10 * deltasigma.Second)
	if c.Online() == 0 {
		t.Fatal("the million-member cohort never came online")
	}
	if got := c.Agent().Accounted(); got != 1_000_000 {
		t.Fatalf("cohort members not conserved: %d accounted of 1000000", got)
	}
	if vs := e.DrainAndAudit(2 * deltasigma.Second); len(vs) > 0 {
		for _, v := range vs {
			t.Error(v)
		}
	}
}
