package deltasigma_test

import (
	"math"
	"testing"

	"deltasigma"
	"deltasigma/internal/packet"
)

// cohortRun runs one 30-second FLID-DL dumbbell session carrying n honest
// members — as n individual receivers or as one cohort — plus the scripted
// dynamics, and reduces it to the aggregate statistics the consistency
// tests compare: highest honest level, population-mean level, and aggregate
// honest throughput in Kbps.
func cohortRun(t *testing.T, n int, asCohort bool, churnRate float64, attacker bool) (top int, mean, aggKbps float64) {
	t.Helper()
	const dur = 30 * deltasigma.Second
	e := deltasigma.MustNew(deltasigma.WithProtocol("flid-dl"), deltasigma.WithSeed(7))
	s := e.AddSession(0)
	if asCohort {
		s.AddCohort(n)
	} else {
		for i := 0; i < n; i++ {
			s.AddReceiver()
		}
	}
	if attacker {
		s.AddAttacker()
		e.AddEvents(deltasigma.AttackerOnset{At: 10 * deltasigma.Second, Session: 1})
	}
	if churnRate > 0 {
		e.AddEvents(deltasigma.PoissonChurn{Session: 1, Rate: churnRate, To: dur})
	}
	res := e.Run(dur)
	if asCohort {
		cr := res.Cohorts[0]
		return cr.Level, cr.MeanLevel, cr.AvgKbps
	}
	var sumLvl float64
	for _, r := range res.Receivers {
		if r.Attacker {
			continue
		}
		sumLvl += float64(r.Level)
		aggKbps += r.AvgKbps
		if r.Level > top {
			top = r.Level
		}
	}
	return top, sumLvl / float64(n), aggKbps
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestCohortConsistencyStatic is the fluid model's core fidelity claim: a
// cohort of N members that all start together is ONE bucket whose state is
// exactly an individual receiver's scaled by N, so its level trajectory
// must match N individual receivers' and its aggregate throughput must
// match their sum to within the skew of the cohort's extra stub hop.
func TestCohortConsistencyStatic(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		iTop, iMean, iAgg := cohortRun(t, n, false, 0, false)
		cTop, cMean, cAgg := cohortRun(t, n, true, 0, false)
		if cTop != iTop {
			t.Errorf("n=%d: cohort top level %d, individuals %d", n, cTop, iTop)
		}
		if d := math.Abs(cMean - iMean); d > 0.05 {
			t.Errorf("n=%d: cohort mean level %.3f vs individuals %.3f", n, cMean, iMean)
		}
		if d := relDiff(cAgg, iAgg); d > 0.02 {
			t.Errorf("n=%d: aggregate throughput off by %.1f%%: cohort %.0f vs individuals %.0f Kbps",
				n, 100*d, cAgg, iAgg)
		}
	}
}

// TestCohortConsistencyChurn checks the model under Poisson membership
// churn. Toggle realizations necessarily differ — a cohort member is an
// index into an exchangeable pool, not a specific receiver object — so
// the comparison is statistical and starts at N=100, where the population
// mean is stable across realizations.
func TestCohortConsistencyChurn(t *testing.T) {
	for _, n := range []int{100, 1000} {
		iTop, iMean, iAgg := cohortRun(t, n, false, 2, false)
		cTop, cMean, cAgg := cohortRun(t, n, true, 2, false)
		if d := cTop - iTop; d < -1 || d > 1 {
			t.Errorf("n=%d: cohort top level %d vs individuals %d", n, cTop, iTop)
		}
		if d := relDiff(cMean, iMean); d > 0.10 {
			t.Errorf("n=%d: mean level off by %.1f%%: cohort %.3f vs individuals %.3f",
				n, 100*d, cMean, iMean)
		}
		if d := relDiff(cAgg, iAgg); d > 0.10 {
			t.Errorf("n=%d: aggregate throughput off by %.1f%%: cohort %.0f vs individuals %.0f Kbps",
				n, 100*d, cAgg, iAgg)
		}
	}
}

// TestCohortConsistencyAttackerOnset checks the model through a mid-run
// inflated-subscription onset: on unprotected FLID-DL the attack crushes
// every honest receiver to the minimal level, and the cohort must be
// crushed identically.
func TestCohortConsistencyAttackerOnset(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		iTop, iMean, iAgg := cohortRun(t, n, false, 0, true)
		cTop, cMean, cAgg := cohortRun(t, n, true, 0, true)
		if cTop != iTop {
			t.Errorf("n=%d: cohort top level %d, individuals %d", n, cTop, iTop)
		}
		if d := math.Abs(cMean - iMean); d > 0.05 {
			t.Errorf("n=%d: cohort mean level %.3f vs individuals %.3f", n, cMean, iMean)
		}
		if d := relDiff(cAgg, iAgg); d > 0.02 {
			t.Errorf("n=%d: aggregate throughput off by %.1f%%: cohort %.0f vs individuals %.0f Kbps",
				n, 100*d, cAgg, iAgg)
		}
	}
}

// feedbackAtRoot runs nCohorts cohorts of `members` each for 20 seconds and
// returns the count of feedback reports that reached the session source.
func feedbackAtRoot(t *testing.T, members, nCohorts int, consolidate bool) uint64 {
	t.Helper()
	e := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-dl"),
		deltasigma.WithSeed(3),
		deltasigma.WithFeedbackConsolidation(consolidate),
	)
	s := e.AddSession(0)
	for i := 0; i < nCohorts; i++ {
		s.AddCohort(members)
	}
	e.Advance(20 * deltasigma.Second)
	return s.Source().Received[packet.ProtoFeedback]
}

// TestFeedbackConsolidationScalesWithFanOut is the control-plane scaling
// claim: with hierarchical consolidation, feedback volume at the root is a
// function of the distribution tree's fan-out (and the slot clock), not of
// the receiver population — 100× more receivers, same packet count at the
// source. Without consolidation the root sees every cohort's report.
func TestFeedbackConsolidationScalesWithFanOut(t *testing.T) {
	small := feedbackAtRoot(t, 250, 4, true)    // 1,000 receivers
	large := feedbackAtRoot(t, 25_000, 4, true) // 100,000 receivers
	if small == 0 {
		t.Fatal("no consolidated feedback reached the root")
	}
	if small != large {
		t.Errorf("root feedback volume moved with population: %d reports at 1k receivers, %d at 100k", small, large)
	}

	raw := feedbackAtRoot(t, 250, 4, false)
	if raw < 3*small {
		t.Errorf("consolidation saved too little: %d raw reports vs %d consolidated for 4 cohorts", raw, small)
	}
}

// TestWithCohortThreshold checks the auto-aggregation option: AddSession
// populations above the threshold become one cohort, below it stay exact
// receiver objects, and individually added receivers are never aggregated.
func TestWithCohortThreshold(t *testing.T) {
	e := deltasigma.MustNew(deltasigma.WithCohortThreshold(100))
	big := e.AddSession(5000)
	if len(big.Receivers) != 0 || len(big.Cohorts) != 1 || big.Cohorts[0].Members() != 5000 {
		t.Fatalf("session over threshold: %d receivers, %d cohorts", len(big.Receivers), len(big.Cohorts))
	}
	small := e.AddSession(10)
	if len(small.Receivers) != 10 || len(small.Cohorts) != 0 {
		t.Fatalf("session under threshold: %d receivers, %d cohorts", len(small.Receivers), len(small.Cohorts))
	}
	if _, err := deltasigma.New(deltasigma.WithCohortThreshold(0)); err == nil {
		t.Fatal("WithCohortThreshold(0) accepted")
	}
}

// TestCohortAuditClean runs a churned cohort experiment under the full
// periodic audit — including the new cohort-conservation and private-edge
// graft-consistency rules — and requires a clean drain.
func TestCohortAuditClean(t *testing.T) {
	e := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-dl"),
		deltasigma.WithSeed(5),
		deltasigma.WithAudit(deltasigma.AuditEvery(deltasigma.Second)),
	)
	s := e.AddSession(2)
	c := s.AddCohort(10_000)
	e.AddEvents(deltasigma.PoissonChurn{Session: 1, Rate: 5, To: 10 * deltasigma.Second})
	e.Advance(10 * deltasigma.Second)
	if got := c.Agent().Accounted(); got != c.Members() {
		t.Fatalf("cohort members not conserved: %d accounted of %d", got, c.Members())
	}
	if vs := e.DrainAndAudit(2 * deltasigma.Second); len(vs) > 0 {
		for _, v := range vs {
			t.Error(v)
		}
	}
}

// TestAddCohortRejectsReplicated pins the facade guard: the replicated
// protocol carries no layered FLID data for the fluid model to observe.
func TestAddCohortRejectsReplicated(t *testing.T) {
	e := deltasigma.MustNew(deltasigma.WithProtocol("flid-ds-replicated"))
	s := e.AddSession(0)
	defer func() {
		if recover() == nil {
			t.Fatal("AddCohort on the replicated protocol did not panic")
		}
	}()
	s.AddCohort(10)
}
