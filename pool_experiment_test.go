package deltasigma_test

import (
	"testing"

	"deltasigma"
)

// End-to-end pool-balance check: run a protected experiment (multicast
// fan-out, SIGMA control traffic, announcements), stop the traffic, let the
// network drain, and verify every pooled packet reference came back — the
// experiment-level leak gauge for the whole Retain/Release discipline.
func TestExperimentPoolBalancedAfterDrain(t *testing.T) {
	for _, proto := range []string{"flid-dl", "flid-ds"} {
		pool := &deltasigma.PacketPool{}
		exp := deltasigma.MustNew(
			deltasigma.WithProtocol(proto),
			deltasigma.WithSeed(5),
			deltasigma.WithPacketPool(pool),
		)
		exp.AddSession(2)
		exp.Advance(3 * deltasigma.Second)
		if pool.Issued == 0 {
			t.Fatalf("%s: experiment issued no pooled packets", proto)
		}

		// The shared helper stops all traffic, drains, and asserts pool
		// balance plus the per-link conservation laws.
		drainAndVerify(t, exp)
	}
}

// The same pool handed to consecutive experiments (the campaign-worker
// pattern) keeps recycling: the second run issues packets without growing
// the pool's fresh-allocation count proportionally.
func TestPoolReuseAcrossExperiments(t *testing.T) {
	pool := &deltasigma.PacketPool{}
	run := func(seed uint64) {
		exp := deltasigma.MustNew(
			deltasigma.WithProtocol("flid-dl"),
			deltasigma.WithSeed(seed),
			deltasigma.WithPacketPool(pool),
		)
		exp.AddSession(1)
		exp.Advance(2 * deltasigma.Second)
		drainAndVerify(t, exp)
	}
	run(1)
	fresh := pool.Fresh
	if fresh == 0 {
		t.Fatal("first run allocated nothing — test is vacuous")
	}
	run(2)
	grown := pool.Fresh - fresh
	if grown > fresh/10 {
		t.Errorf("second experiment allocated %d fresh envelopes (first run: %d); the warm pool should cover nearly all of it", grown, fresh)
	}
}
