package deltasigma_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltasigma"
	"deltasigma/internal/fuzzing"
)

// sweepShards is the shard count the sharded golden tests run the pinned
// campaigns at. CI's determinism job varies it (alongside -sweep-workers)
// to prove the goldens are independent of the execution partition, not an
// artifact of one lucky shard count.
var sweepShards = flag.Int("sweep-shards", 2, "shard count the sharded golden tests compare against serial")

// shardScenario builds the differential scenario: a protected two-session
// run with heterogeneous access delays plus TCP and CBR cross traffic —
// SIGMA control exchanges, DELTA keys, IGMP grafts and cross-traffic
// queueing all cross the shard cut. shards < 0 means WithShards was never
// given (the plain serial engine).
func shardScenario(t *testing.T, shards int) (*deltasigma.Experiment, *deltasigma.Result) {
	t.Helper()
	opts := []deltasigma.Option{
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithDumbbell(1_000_000),
		deltasigma.WithSeed(7),
	}
	if shards >= 0 {
		opts = append(opts, deltasigma.WithShards(shards))
	}
	exp, err := deltasigma.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		sess := exp.AddSession(0)
		for i := 0; i < 6; i++ {
			sess.AddReceiverDelay(deltasigma.Time(2+3*i) * deltasigma.Millisecond)
		}
	}
	exp.AddTCP(0)
	exp.AddCBR(150_000, deltasigma.Second, deltasigma.Second)
	return exp, exp.Run(8 * deltasigma.Second)
}

// stripSharding marshals a Result minus its sharding metadata block — the
// only field allowed to differ between execution modes.
func stripSharding(t *testing.T, res *deltasigma.Result) []byte {
	t.Helper()
	sh := res.Sharding
	res.Sharding = nil
	js, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	res.Sharding = sh
	return js
}

// TestShardedMatchesSerial is the tentpole's headline claim as a test: the
// typed Result of a sharded run is byte-identical to the serial engine's at
// every shard count, including auto.
func TestShardedMatchesSerial(t *testing.T) {
	_, base := shardScenario(t, -1)
	want := stripSharding(t, base)
	for _, n := range []int{1, 2, 3, 0} {
		_, res := shardScenario(t, n)
		if got := stripSharding(t, res); !bytes.Equal(got, want) {
			t.Errorf("WithShards(%d) changed the Result:\ngot:  %s\nwant: %s", n, got, want)
		}
	}
}

// TestShardingObservability pins the metadata block of an actively sharded
// run: shard count, migrated hosts, window count, per-shard event totals
// and the efficiency gauge.
func TestShardingObservability(t *testing.T) {
	exp, res := shardScenario(t, 2)
	shards, migrated, fallback := exp.ShardStatus()
	if shards != 2 || migrated != 12 || fallback != "" {
		t.Fatalf("ShardStatus() = (%d, %d, %q), want (2, 12, \"\")", shards, migrated, fallback)
	}
	sh := res.Sharding
	if sh == nil {
		t.Fatal("no sharding block on a WithShards(2) result")
	}
	if sh.Shards != 2 || sh.MigratedHosts != 12 || sh.FallbackReason != "" {
		t.Errorf("sharding block = %+v, want 2 shards, 12 migrated hosts, no fallback", sh)
	}
	if sh.Windows == 0 {
		t.Error("no conservative windows recorded")
	}
	if sh.Efficiency <= 0 || sh.Efficiency > 1 {
		t.Errorf("efficiency %g outside (0,1]", sh.Efficiency)
	}
	if len(sh.PerShard) != 2 {
		t.Fatalf("per-shard stats = %d entries, want 2", len(sh.PerShard))
	}
	for i, ps := range sh.PerShard {
		if ps.Events == 0 {
			t.Errorf("shard %d fired no events", i)
		}
	}
	if sh.PerShard[1].MailboxMax == 0 {
		t.Error("no cross-shard envelopes ever reached shard 1")
	}
}

// TestShardFallbackReasons pins every path by which a shard request
// degrades to serial execution — each with its recorded reason — plus the
// rejections that never build at all.
func TestShardFallbackReasons(t *testing.T) {
	runShort := func(t *testing.T, opts ...deltasigma.Option) *deltasigma.Result {
		t.Helper()
		all := append([]deltasigma.Option{
			deltasigma.WithProtocol("flid-ds"),
			deltasigma.WithDumbbell(500_000),
			deltasigma.WithShards(2),
		}, opts...)
		exp, err := deltasigma.New(all...)
		if err != nil {
			t.Fatal(err)
		}
		exp.AddSession(2)
		return exp.Run(deltasigma.Second)
	}

	t.Run("audit", func(t *testing.T) {
		res := runShort(t, deltasigma.WithAudit())
		if res.Sharding == nil || res.Sharding.Shards != 1 || !strings.Contains(res.Sharding.FallbackReason, "audit") {
			t.Errorf("sharding block = %+v, want serial fallback naming the audit", res.Sharding)
		}
	})

	t.Run("timeline option", func(t *testing.T) {
		res := runShort(t, deltasigma.WithTimeline(
			deltasigma.LinkDown{At: 200 * deltasigma.Millisecond, Link: 0},
			deltasigma.LinkUp{At: 300 * deltasigma.Millisecond, Link: 0},
		))
		if res.Sharding == nil || res.Sharding.Shards != 1 || !strings.Contains(res.Sharding.FallbackReason, "timeline") {
			t.Errorf("sharding block = %+v, want serial fallback naming the timeline", res.Sharding)
		}
	})

	t.Run("events before receivers downgrade", func(t *testing.T) {
		exp, err := deltasigma.New(
			deltasigma.WithProtocol("flid-ds"),
			deltasigma.WithDumbbell(500_000),
			deltasigma.WithShards(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		exp.AddEvents(deltasigma.LinkDown{At: 200 * deltasigma.Millisecond, Link: 0})
		exp.AddSession(2)
		res := exp.Run(deltasigma.Second)
		if res.Sharding == nil || res.Sharding.Shards != 1 || !strings.Contains(res.Sharding.FallbackReason, "timeline") {
			t.Errorf("sharding block = %+v, want serial downgrade naming the timeline", res.Sharding)
		}
	})

	t.Run("events after migration panic", func(t *testing.T) {
		exp, err := deltasigma.New(
			deltasigma.WithProtocol("flid-ds"),
			deltasigma.WithDumbbell(500_000),
			deltasigma.WithShards(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		exp.AddSession(2)
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("AddEvents after migration did not panic")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "migrated") {
				t.Fatalf("panic = %v, want a migrated-receivers message", r)
			}
		}()
		exp.AddEvents(deltasigma.LinkDown{At: 200 * deltasigma.Millisecond, Link: 0})
	})

	t.Run("negative rejected", func(t *testing.T) {
		_, err := deltasigma.New(
			deltasigma.WithProtocol("flid-ds"),
			deltasigma.WithDumbbell(500_000),
			deltasigma.WithShards(-1),
		)
		if err == nil || !strings.Contains(err.Error(), "WithShards") {
			t.Fatalf("WithShards(-1) error = %v, want rejection", err)
		}
	})
}

// TestSweepGoldenSharded replays the three pinned sweep campaigns with
// Sweep.Shards set: static points run sharded, dynamic points take the
// serial fallback, and the campaign JSON must stay byte-identical to the
// serial goldens on disk.
func TestSweepGoldenSharded(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are written by the serial tests")
	}
	cases := []struct {
		name   string
		sweep  deltasigma.Sweep
		golden string
	}{
		{"sweep", goldenSweep(), "sweep_golden.json"},
		{"churn", dynamicsSweep(), "churn_golden.json"},
		{"million", millionSweep(), "million_golden.json"},
		// Every shootout point carries an attacker, so the shard request
		// falls back to serial on each — the trivial but load-bearing claim
		// that a -sweep-shards run cannot move the competitor numbers.
		{"shootout", shootoutSweep(), "shootout_golden.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := tc.sweep
			sw.Shards = *sweepShards
			res, err := sw.Run(*sweepWorkers)
			if err != nil {
				t.Fatal(err)
			}
			js, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatalf("missing golden file (run the serial test with -update-golden): %v", err)
			}
			if !bytes.Equal(js, want) {
				t.Errorf("%s campaign with Shards=%d diverged from its serial golden", tc.name, sw.Shards)
			}
		})
	}
}

// TestFuzzGoldenSharded replays the pinned fuzz corpus with a shard request
// on every scenario: the audit forces the serial fallback, so all 64
// fingerprints — and hence the corpus digest on disk — must not move.
func TestFuzzGoldenSharded(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are written by the serial tests")
	}
	defer func() { fuzzing.ShardRequest = -1 }()
	fuzzing.ShardRequest = *sweepShards
	sums := fuzzing.Summarize(fuzzing.Campaign(1, fuzzGoldenSeeds, *sweepWorkers))
	js, err := marshalFuzzSummary(sums)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "fuzz_golden.json"))
	if err != nil {
		t.Fatalf("missing golden file (run the serial test with -update-golden): %v", err)
	}
	if !bytes.Equal(append(js, '\n'), want) {
		t.Errorf("fuzz corpus with ShardRequest=%d diverged from the serial golden", *sweepShards)
	}
}
