package deltasigma

import (
	"runtime"

	"deltasigma/internal/sim"
)

// This file is the experiment-level face of sharded execution (see
// internal/sim/shard.go for the conservative-window engine and
// internal/netsim/shard.go for the topology cut). The experiment decides
// the partition: receiver hosts migrate to shards 1..n-1 in attachment
// order, round-robin, while everything shared — routers, the multicast
// fabric, senders, cohorts, cross traffic — stays on shard 0. Attachment
// order doubles as cut-edge creation order, which is what makes the merged
// event order replay a serial run exactly.

// maxAutoShards caps WithShards(0): beyond a handful of shards the window
// barriers outweigh the extra cores for typical topologies.
const maxAutoShards = 8

// autoKeepLocal is how many receivers auto mode leaves on shard 0 before
// migrating the rest: tiny topologies decline parallelism (the whole run
// fits one core's cache), and on larger ones the resident receivers
// balance shard 0's router work against the receiver shards.
const autoKeepLocal = 32

// autoShardCount resolves WithShards(0).
func autoShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxAutoShards {
		n = maxAutoShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// setupShards wires the shard group during New, or records why sharded
// execution was declined. Serial fallback keeps the run on the plain
// scheduler path with identical results.
func (e *Experiment) setupShards(s *settings) {
	if !s.shardsSet {
		return
	}
	n := s.shards
	auto := n == 0
	if auto {
		n = autoShardCount()
	}
	e.shardWant = n
	switch {
	case n <= 1:
		// Explicit serial (or a single-core auto resolution): not a fallback.
	case s.audit.enabled:
		e.shardFallback = "audit enabled: mid-run sampling reads cross-shard state"
	case len(s.events) > 0:
		e.shardFallback = "timeline events scripted: dynamics mutate cross-shard state"
	default:
		e.shardGroup = sim.NewShardGroupFrom(e.Topo.Scheduler(), n)
		e.shardGroup.Parallel = true
		e.Topo.Network().EnableSharding(e.shardGroup)
		e.shardAuto = auto
	}
}

// maybeMigrate moves a freshly attached receiver host onto the next shard,
// round-robin over shards 1..n-1. It must run before the protocol agent is
// constructed on the host — agents capture the host's scheduler. Hosts
// that cannot migrate (zero-delay access links) stay on shard 0.
func (e *Experiment) maybeMigrate(h *Host) {
	if e.shardGroup == nil {
		return
	}
	e.shardSeen++
	if e.shardAuto && e.shardSeen <= autoKeepLocal {
		return
	}
	net := e.Topo.Network()
	if !net.CanMigrate(h) {
		return
	}
	n := e.shardGroup.Shards()
	s := 1 + e.shardNext%(n-1)
	e.shardNext++
	net.MigrateHost(h, s)
	e.shardMigrated++
}

// shardsActive reports whether Advance must dispatch through the shard
// group: with no migrated host every event lives on shard 0 and the plain
// scheduler path is both correct and cheaper.
func (e *Experiment) shardsActive() bool {
	return e.shardGroup != nil && e.shardMigrated > 0
}

// ShardStatus reports the sharded-execution state: how many shards the run
// executes on (1 for serial), how many receiver hosts migrated off shard 0,
// and — when sharding was requested but declined — why. Command-line
// front-ends use this to warn about under-filled shard requests.
func (e *Experiment) ShardStatus() (shards, migrated int, fallback string) {
	if e.shardsActive() {
		return e.shardGroup.Shards(), e.shardMigrated, ""
	}
	return 1, 0, e.shardFallbackReason()
}

// shardFallbackReason names why a requested sharded run executes serially
// ("" when sharding was never requested, or is active).
func (e *Experiment) shardFallbackReason() string {
	if e.shardWant <= 1 || e.shardsActive() {
		return ""
	}
	if e.shardFallback != "" {
		return e.shardFallback
	}
	return "no migratable receivers: every host is on shard 0"
}

// ShardResult is one shard's share of a sharded run (see sim.ShardStats).
type ShardResult struct {
	// Events is the number of events the shard's scheduler fired.
	Events uint64 `json:"events"`
	// BarrierWaitNs is wall-clock time the shard spent finished-but-waiting
	// at window barriers — the load-imbalance measure.
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
	// MailboxMax is the high-water mark of cross-shard envelopes drained
	// into this shard at a single barrier.
	MailboxMax int `json:"mailbox_max"`
}

// ShardingResult describes how a run that requested WithShards actually
// executed. Wall-clock fields (barrier waits) vary run to run; everything
// the simulation computes is byte-identical to a serial run regardless.
type ShardingResult struct {
	// Shards is the executing shard count (1 when the request fell back to
	// serial).
	Shards int `json:"shards"`
	// MigratedHosts is how many receiver hosts run off shard 0.
	MigratedHosts int `json:"migrated_hosts"`
	// FallbackReason says why a requested sharded run executed serially.
	FallbackReason string `json:"fallback_reason,omitempty"`
	// Windows is the number of conservative window rounds executed.
	Windows uint64 `json:"windows,omitempty"`
	// Efficiency is sum(events) / (shards × max-shard events) in (0,1]: 1
	// means perfectly balanced shards, 1/shards means one shard did all the
	// work.
	Efficiency float64 `json:"efficiency,omitempty"`
	// PerShard holds one entry per shard, shard 0 first.
	PerShard []ShardResult `json:"per_shard,omitempty"`
}

// shardingResult snapshots the sharded-execution stats for Result, or nil
// when WithShards was never given.
func (e *Experiment) shardingResult() *ShardingResult {
	if e.shardWant == 0 {
		return nil
	}
	if !e.shardsActive() {
		return &ShardingResult{Shards: 1, FallbackReason: e.shardFallbackReason()}
	}
	stats := e.shardGroup.Stats()
	sr := &ShardingResult{
		Shards:        e.shardGroup.Shards(),
		MigratedHosts: e.shardMigrated,
		PerShard:      make([]ShardResult, len(stats)),
	}
	var sum, max uint64
	for i, st := range stats {
		sr.PerShard[i] = ShardResult{
			Events:        st.Events,
			BarrierWaitNs: st.BarrierWait.Nanoseconds(),
			MailboxMax:    st.MailboxMax,
		}
		sum += st.Events
		if st.Events > max {
			max = st.Events
		}
		if st.Windows > sr.Windows {
			sr.Windows = st.Windows
		}
	}
	if max > 0 {
		sr.Efficiency = float64(sum) / (float64(len(stats)) * float64(max))
	}
	return sr
}
