package deltasigma

import (
	"fmt"

	"deltasigma/internal/cbr"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
	"deltasigma/internal/tcp"
)

// TCPFlow is one TCP Reno connection crossing the experiment's
// bottleneck(s) from a source at the ingress to a sink at the default
// egress.
type TCPFlow struct {
	label   string
	snd     *tcp.Sender
	recv    *tcp.Receiver
	meter   *Meter
	startAt Time
}

// Meter returns the flow's delivered-bytes meter.
func (f *TCPFlow) Meter() *Meter { return f.meter }

// Label names the flow in results.
func (f *TCPFlow) Label() string { return f.label }

// Cwnd reports the sender's current congestion window in packets.
func (f *TCPFlow) Cwnd() float64 { return f.snd.Cwnd() }

// Stop halts the flow permanently: no further segments or retransmissions
// are sent, and in-flight traffic drains normally. Safe mid-run —
// StopTraffic calls this on every flow.
func (f *TCPFlow) Stop() { f.snd.Stop() }

func (f *TCPFlow) schedule(sched *sim.Scheduler) {
	sched.At(f.startAt, f.snd.Start)
}

// AddTCP attaches a TCP Reno competitor whose sender starts at the given
// virtual time. Call before Run.
func (e *Experiment) AddTCP(startAt Time) *TCPFlow {
	e.mustNotHaveStarted("AddTCP")
	flow := uint32(len(e.tcps) + 1)
	src := e.Topo.AttachSource(fmt.Sprintf("tsrc%d", flow))
	port := e.Topo.AttachReceiver(fmt.Sprintf("tdst%d", flow), DefaultDelay)
	cfg := tcp.DefaultConfig()
	recv := tcp.NewReceiver(port.Host, flow, cfg)
	meter := stats.NewMeter(sim.Second)
	sched := e.Topo.Scheduler()
	recv.OnDeliver = func(bytes int) { meter.Add(sched.Now(), bytes) }
	f := &TCPFlow{
		label:   fmt.Sprintf("tcp%d", flow),
		snd:     tcp.NewSender(src, port.Host.Addr(), flow, cfg),
		recv:    recv,
		meter:   meter,
		startAt: startAt,
	}
	e.tcps = append(e.tcps, f)
	return f
}

// TCPFlows returns every attached TCP flow in creation order.
func (e *Experiment) TCPFlows() []*TCPFlow { return e.tcps }

// CBR is one constant-bit-rate cross-traffic source from the ingress to
// the default egress, optionally duty-cycled or burst-windowed.
type CBR struct {
	label string
	src   *cbr.Source
	meter *Meter

	burst    bool
	from, to Time
}

// Start begins emission. Safe mid-run — raw e.At closures and timeline
// wiring drive this.
func (c *CBR) Start() { c.src.Start() }

// Stop halts emission. Safe mid-run.
func (c *CBR) Stop() { c.src.Stop() }

// Meter returns the delivered-bytes meter at the CBR sink.
func (c *CBR) Meter() *Meter { return c.meter }

// Label names the source in results.
func (c *CBR) Label() string { return c.label }

// PacketsSent reports emissions so far.
func (c *CBR) PacketsSent() uint64 { return c.src.PacketsSent }

// Burst restricts the source to a single on-window: it starts at from and
// stops permanently at to (the Figure 8e burst). Overrides the default
// start at time zero; call before Run. The window rides the experiment
// timeline — the same mechanism every other mid-run event uses.
func (c *CBR) Burst(from, to Time) {
	c.burst = true
	c.from, c.to = from, to
}

// schedule installs the source's lifecycle at Start: an always-on source
// starts with the experiment, a burst window goes onto the timeline.
func (c *CBR) schedule(e *Experiment) {
	if c.burst {
		e.timeline.Add(c.from, c.src.Start)
		e.timeline.Add(c.to, c.src.Stop)
		return
	}
	e.Topo.Scheduler().At(0, c.src.Start)
}

// AddCBR attaches a CBR source transmitting at rate bits/s with the given
// on/off duty cycle (both zero means always on). The paper's §5.1
// inelastic cross traffic is AddCBR(capacity/10, 5*Second, 5*Second).
// Call before Run.
func (e *Experiment) AddCBR(rate int64, on, off Time) *CBR {
	e.mustNotHaveStarted("AddCBR")
	idx := len(e.cbrs) + 1
	src := e.Topo.AttachSource(fmt.Sprintf("csrc%d", idx))
	port := e.Topo.AttachReceiver(fmt.Sprintf("cdst%d", idx), DefaultDelay)
	s := cbr.New(src, port.Host.Addr(), uint32(900+idx), rate, e.pktSize)
	s.OnPeriod, s.OffPeriod = on, off
	meter := stats.NewMeter(sim.Second)
	sched := e.Topo.Scheduler()
	port.Host.HandleAll(func(pkt *packet.Packet) { meter.Add(sched.Now(), pkt.Size) })
	c := &CBR{label: fmt.Sprintf("cbr%d", idx), src: s, meter: meter}
	e.cbrs = append(e.cbrs, c)
	return c
}

// CBRSources returns every attached CBR source in creation order.
func (e *Experiment) CBRSources() []*CBR { return e.cbrs }
