package scenario

import (
	"fmt"

	"deltasigma"
	"deltasigma/internal/sim"
)

// Campaign is a named, pre-configured parameter-sweep: the campaigns the
// figure harness, cmd/dsim sweep and the benchmarks share. Build returns a
// ready-to-run deltasigma.Sweep scaled by the usual Options (tests run
// shortened versions exactly like the per-figure scenarios).
type Campaign struct {
	// Name is the lookup key (cmd/dsim sweep -campaign <name>).
	Name string
	// Description is the one-line summary for listings.
	Description string
	// Build assembles the sweep at the given scale.
	Build func(opt Options) deltasigma.Sweep
}

// campaignDuration is the full-scale per-point run length: long enough
// past the join transient for stable averages, short enough that a grid
// stays minutes, not hours.
const campaignDuration = 60 * sim.Second

// campaigns holds every canned campaign in listing order.
var campaigns = []Campaign{
	{
		Name:        "population",
		Description: "receiver-population scaling, tens to thousands of receivers, FLID-DL vs FLID-DS",
		Build: func(opt Options) deltasigma.Sweep {
			receivers := []int{10, 100, 1000}
			if opt.Scale < 1 {
				receivers = []int{2, 8, 32}
			}
			return deltasigma.Sweep{
				Name:      "population",
				Protocols: []string{"flid-dl", "flid-ds"},
				Receivers: receivers,
				Duration:  opt.scale(campaignDuration),
				Seeds:     []uint64{opt.Seed},
			}
		},
	},
	{
		Name:        "attacker-fraction",
		Description: "inflated-subscription attacker fraction 0..50% of the group, FLID-DL vs FLID-DS",
		Build: func(opt Options) deltasigma.Sweep {
			receivers, attackers := []int{8}, []int{0, 1, 2, 4}
			if opt.Scale < 1 {
				receivers, attackers = []int{4}, []int{0, 1, 2}
			}
			dur := opt.scale(campaignDuration)
			return deltasigma.Sweep{
				Name:      "attacker-fraction",
				Protocols: []string{"flid-dl", "flid-ds"},
				Receivers: receivers,
				Attackers: attackers,
				Duration:  dur,
				AttackAt:  dur / 4,
				Seeds:     []uint64{opt.Seed},
			}
		},
	},
	{
		Name:        "rtt-heterogeneity",
		Description: "access-delay spread 0..640ms across receivers, FLID-DL vs FLID-DS",
		Build: func(opt Options) deltasigma.Sweep {
			spreads := []sim.Time{0, 40 * sim.Millisecond, 160 * sim.Millisecond, 640 * sim.Millisecond}
			receivers := []int{8}
			if opt.Scale < 1 {
				spreads = []sim.Time{0, 160 * sim.Millisecond}
				receivers = []int{4}
			}
			return deltasigma.Sweep{
				Name:         "rtt-heterogeneity",
				Protocols:    []string{"flid-dl", "flid-ds"},
				Receivers:    receivers,
				DelaySpreads: spreads,
				Duration:     opt.scale(campaignDuration),
				Seeds:        []uint64{opt.Seed},
			}
		},
	},
	{
		Name:        "churn",
		Description: "Poisson membership churn 0..2 toggles/s across the group, FLID-DL vs FLID-DS",
		Build: func(opt Options) deltasigma.Sweep {
			rates := []float64{0, 0.25, 1, 2}
			receivers := []int{8}
			if opt.Scale < 1 {
				rates = []float64{0, 1}
				receivers = []int{4}
			}
			return deltasigma.Sweep{
				Name:       "churn",
				Protocols:  []string{"flid-dl", "flid-ds"},
				Receivers:  receivers,
				ChurnRates: rates,
				Duration:   opt.scale(campaignDuration),
				Seeds:      []uint64{opt.Seed},
			}
		},
	},
	{
		Name:        "million",
		Description: "cohort-aggregated population scaling, ten thousand to a million receivers per session, FLID-DL vs FLID-DS",
		Build: func(opt Options) deltasigma.Sweep {
			cohorts := []int{10_000, 100_000, 1_000_000}
			if opt.Scale < 1 {
				cohorts = []int{1_000, 1_000_000}
			}
			return deltasigma.Sweep{
				Name:      "million",
				Protocols: []string{"flid-dl", "flid-ds"},
				// The population rides one fluid cohort per point; no exact
				// receivers, so the point's cost is population-independent.
				Receivers: []int{0},
				Cohorts:   cohorts,
				Duration:  opt.scale(campaignDuration),
				Seeds:     []uint64{opt.Seed},
			}
		},
	},
	{
		Name:        "shootout",
		Description: "competitor shoot-out: every registered protocol against every attacker model under churn, flapping and swept onset",
		Build: func(opt Options) deltasigma.Sweep {
			dur := opt.scale(campaignDuration)
			strategies := []string{"classic", "adaptive", "forging"}
			receivers := []int{8}
			churn := []float64{0, 1}
			flaps := []sim.Time{0, dur / 5}
			onsets := []sim.Time{dur / 4, dur / 2}
			if opt.Scale < 1 {
				receivers = []int{4}
				churn = []float64{0}
				flaps = []sim.Time{0}
				onsets = []sim.Time{dur / 4}
			}
			return deltasigma.Sweep{
				Name:       "shootout",
				Protocols:  deltasigma.Protocols(),
				Receivers:  receivers,
				Attackers:  []int{1},
				Strategies: strategies,
				// The 6-group schedule tops out at ~759 Kbps cumulative, so
				// the bottleneck must sit below that for inflation to bite:
				// honest receivers converge around level 4 (~506 Kbps) and an
				// attacker pulling all six groups overloads the link.
				Bottlenecks: []int64{500_000},
				ChurnRates:  churn,
				AttackAts:   onsets,
				FlapPeriods: flaps,
				// One uniform 6-group schedule keeps the head-to-head fair
				// and fits the replicated sender's summed stream rates
				// inside the default access links.
				Schedule: deltasigma.RateSchedule{Base: 100_000, Mult: 1.5, N: 6},
				Duration: dur,
				Seeds:    []uint64{opt.Seed},
			}
		},
	},
	{
		Name:        "late-attacker",
		Description: "inflated-subscription onset swept across the session lifetime, FLID-DL vs FLID-DS",
		Build: func(opt Options) deltasigma.Sweep {
			dur := opt.scale(campaignDuration)
			onsets := []sim.Time{dur / 8, dur / 4, dur / 2, 3 * dur / 4}
			receivers := []int{8}
			if opt.Scale < 1 {
				onsets = []sim.Time{dur / 4, dur / 2}
				receivers = []int{4}
			}
			return deltasigma.Sweep{
				Name:      "late-attacker",
				Protocols: []string{"flid-dl", "flid-ds"},
				Receivers: receivers,
				Attackers: []int{1},
				AttackAts: onsets,
				Duration:  dur,
				Seeds:     []uint64{opt.Seed},
			}
		},
	},
	{
		Name:        "flapping-bottleneck",
		Description: "bottleneck flapping (down a tenth of each period), period swept, FLID-DL vs FLID-DS",
		Build: func(opt Options) deltasigma.Sweep {
			dur := opt.scale(campaignDuration)
			periods := []sim.Time{0, dur / 10, dur / 5}
			receivers := []int{8}
			if opt.Scale < 1 {
				periods = []sim.Time{0, dur / 5}
				receivers = []int{4}
			}
			return deltasigma.Sweep{
				Name:        "flapping-bottleneck",
				Protocols:   []string{"flid-dl", "flid-ds"},
				Receivers:   receivers,
				FlapPeriods: periods,
				Duration:    dur,
				Seeds:       []uint64{opt.Seed},
			}
		},
	},
}

// Campaigns lists every canned campaign in listing order.
func Campaigns() []Campaign { return campaigns }

// LookupCampaign resolves a canned campaign by name.
func LookupCampaign(name string) (Campaign, bool) {
	for _, c := range campaigns {
		if c.Name == name {
			return c, true
		}
	}
	return Campaign{}, false
}

// CampaignNames returns the canned campaign names in listing order.
func CampaignNames() []string {
	names := make([]string, len(campaigns))
	for i, c := range campaigns {
		names[i] = c.Name
	}
	return names
}

// RunCampaign builds and runs a canned campaign by name.
func RunCampaign(name string, opt Options, workers int) (*deltasigma.CampaignResult, error) {
	c, ok := LookupCampaign(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown campaign %q (have %v)", name, CampaignNames())
	}
	return c.Build(opt).Run(workers)
}
