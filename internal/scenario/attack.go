package scenario

import (
	"deltasigma/internal/flid"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

// attackExperiment is the shared body of Figures 1 and 7: receivers F1 and
// F2 from different multicast sessions share a 1 Mbps bottleneck with two
// TCP Reno receivers T1 and T2; after 100 s (scaled), F1 inflates its
// subscription.
func attackExperiment(opt Options, mode flid.Mode) *Result {
	dur := opt.scale(200 * sim.Second)
	inflateAt := dur / 2

	l := newLab(topo.PaperConfig(1_000_000, opt.Seed), mode)

	// Session 1 carries the attacker F1, session 2 the victim F2.
	s1 := l.addSessionWithoutReceivers(1)
	s2 := l.addSessionWithoutReceivers(2)
	f1Host := l.d.AddReceiver("F1")
	f2Host := l.d.AddReceiver("F2")

	t1 := l.addTCP(1, 0)
	t2 := l.addTCP(2, 0)

	l.finish()

	res := &Result{}
	sched := l.d.Sched

	switch mode {
	case flid.DL:
		res.Name, res.Title = "fig1", "Impact of inflated subscription (FLID-DL)"
		atk := flid.NewAttacker(f1Host, s1.Sess, l.d.Right.Addr())
		f2 := flid.NewReceiver(f2Host, s2.Sess, l.d.Right.Addr())
		sched.At(0, func() { s1.Sender.Start(); s2.Sender.Start(); atk.Start(); f2.Start() })
		sched.At(inflateAt, atk.Inflate)
		sched.RunUntil(dur)
		res.Series = []Series{
			{Label: "F1", Points: atk.Meter.Series(SmoothenWin)},
			{Label: "F2", Points: f2.Meter.Series(SmoothenWin)},
		}
	case flid.DS:
		res.Name, res.Title = "fig7", "Protection with DELTA and SIGMA (FLID-DS)"
		atk := flid.NewDSAttacker(f1Host, s1.Sess, l.d.Right.Addr(), l.d.RNG.Fork())
		f2 := flid.NewDSReceiver(f2Host, s2.Sess, l.d.Right.Addr())
		sched.At(0, func() { s1.Sender.Start(); s2.Sender.Start(); atk.Start(); f2.Start() })
		sched.At(inflateAt, atk.Inflate)
		sched.RunUntil(dur)
		res.Series = []Series{
			{Label: "F1", Points: atk.Meter.Series(SmoothenWin)},
			{Label: "F2", Points: f2.Meter.Series(SmoothenWin)},
		}
		res.Notef("attacker submitted %d guessed keys", atk.GuessesSent)
	}
	res.Series = append(res.Series,
		Series{Label: "T1", Points: t1.Series(SmoothenWin)},
		Series{Label: "T2", Points: t2.Series(SmoothenWin)},
	)
	res.Notef("inflation at t=%.0fs; fair share 250 Kbps per session", inflateAt.Sec())
	return res
}

// addSessionWithoutReceivers builds a session (sender only); the figure
// attaches its own receiver flavours.
func (l *lab) addSessionWithoutReceivers(id uint16) *mcastSession {
	return l.addSession(id, 0)
}

// Fig1 reproduces Figure 1: inflated subscription under plain FLID-DL
// boosts the attacker's throughput at the expense of F2, T1 and T2.
func Fig1(opt Options) *Result { return attackExperiment(opt, flid.DL) }

// Fig7 reproduces Figure 7: under FLID-DS the same attack changes nothing —
// DELTA and SIGMA preserve the fair allocation.
func Fig7(opt Options) *Result { return attackExperiment(opt, flid.DS) }
