package scenario

import (
	"deltasigma/internal/flid"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

// attackExperiment is the shared body of Figures 1 and 7: receivers F1 and
// F2 from different multicast sessions share a 1 Mbps bottleneck with two
// TCP Reno receivers T1 and T2; after 100 s (scaled), F1 inflates its
// subscription.
func attackExperiment(opt Options, mode flid.Mode) *Result {
	dur := opt.scale(200 * sim.Second)
	inflateAt := dur / 2

	l := newLab(topo.PaperConfig(1_000_000, opt.Seed), mode)

	// Session 1 carries the attacker F1, session 2 the victim F2.
	atk := l.addSession(0).AddAttacker()
	f2 := l.addSession(0).AddReceiver()
	t1 := l.addTCP(0)
	t2 := l.addTCP(0)

	l.e.At(inflateAt, atk.Inflate)
	l.e.Run(dur)

	res := &Result{}
	if mode == flid.DS {
		res.Name, res.Title = "fig7", "Protection with DELTA and SIGMA (FLID-DS)"
		res.Notef("attacker submitted %d guessed keys", atk.Unwrap().(*flid.DSAttacker).GuessesSent)
	} else {
		res.Name, res.Title = "fig1", "Impact of inflated subscription (FLID-DL)"
	}
	res.Series = []Series{
		series("F1", atk, SmoothenWin),
		series("F2", f2, SmoothenWin),
		{Label: "T1", Points: t1.Series(SmoothenWin)},
		{Label: "T2", Points: t2.Series(SmoothenWin)},
	}
	res.Notef("inflation at t=%.0fs; fair share 250 Kbps per session", inflateAt.Sec())
	return res
}

// Fig1 reproduces Figure 1: inflated subscription under plain FLID-DL
// boosts the attacker's throughput at the expense of F2, T1 and T2.
func Fig1(opt Options) *Result { return attackExperiment(opt, flid.DL) }

// Fig7 reproduces Figure 7: under FLID-DS the same attack changes nothing —
// DELTA and SIGMA preserve the fair allocation.
func Fig7(opt Options) *Result { return attackExperiment(opt, flid.DS) }
