// Package scenario reproduces every experiment in the paper's evaluation
// (§5): one function per figure, each returning labelled data series so
// that cmd/figures can regenerate the plots, bench_test.go can time them,
// and the integration tests can assert their shape.
//
// All experiments use the §5.1 settings unless a figure overrides them:
// single-bottleneck topology, 250 Kbps fair share per session, 20 ms
// bottleneck delay, 10 ms / 10 Mbps side links, buffers of two
// bandwidth-delay products, 10 groups starting at 100 Kbps growing ×1.5,
// 576-byte data packets, 500 ms FLID-DL slots and 250 ms FLID-DS slots.
//
// Every experiment is assembled through the public deltasigma facade —
// the same options API users build on — so the figures double as an
// integration test of that surface.
package scenario

import (
	"fmt"

	"deltasigma"
	"deltasigma/internal/flid"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
	"deltasigma/internal/topo"
)

// Paper parameters (§5.1).
const (
	FairShare   = 250_000 // bits/s per session
	PacketSize  = 576     // bytes, all data traffic
	SlotDL      = 500 * sim.Millisecond
	SlotDS      = 250 * sim.Millisecond
	SmoothenWin = 5 // seconds of moving average for time-series figures
)

// Options scales experiments: tests run shortened versions.
type Options struct {
	// Scale multiplies experiment durations (1 = paper-length). Values in
	// (0,1] shorten runs proportionally.
	Scale float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultOptions runs experiments at paper length.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 2003} }

func (o Options) scale(t sim.Time) sim.Time {
	if o.Scale <= 0 || o.Scale == 1 {
		return t
	}
	return sim.Time(float64(t) * o.Scale)
}

// Series is one curve of a time-series figure.
type Series struct {
	Label  string
	Points []stats.Point
}

// XY is one point of a parameter-sweep curve.
type XY struct {
	X, Y float64
}

// Curve is one curve of a parameter-sweep figure.
type Curve struct {
	Label  string
	Points []XY
}

// Result is everything a figure produced.
type Result struct {
	Name   string
	Title  string
	Series []Series
	Curves []Curve
	Notes  []string
}

// Notef appends a formatted note to the result.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SeriesAvg averages a series' points over [from, to] seconds.
func SeriesAvg(s Series, from, to float64) float64 {
	var sum float64
	n := 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.Kbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// protoName maps a flid mode to its facade registry name.
func protoName(mode flid.Mode) string {
	if mode == flid.DS {
		return "flid-ds"
	}
	return "flid-dl"
}

// lab is the figures' shared wiring helper. Since the facade redesign it
// is a thin veneer over the public experiment builder: every figure
// constructs its setup exclusively through deltasigma.New and the
// Add{Session,Receiver,Attacker,TCP,CBR} surface.
type lab struct {
	e *deltasigma.Experiment
}

// newLab builds an experiment on a dumbbell with the given configuration
// and protocol mode.
func newLab(cfg topo.Config, mode flid.Mode) *lab {
	return &lab{e: deltasigma.MustNew(
		deltasigma.WithDumbbellConfig(cfg),
		deltasigma.WithProtocol(protoName(mode)),
		deltasigma.WithSeed(cfg.Seed),
	)}
}

// addSession creates a session with nRecv receivers at the default egress.
func (l *lab) addSession(nRecv int) *deltasigma.ExperimentSession {
	return l.e.AddSession(nRecv)
}

// addTCP creates one TCP Reno connection crossing the bottleneck and
// returns its throughput meter; the sender starts at `at`.
func (l *lab) addTCP(at sim.Time) *stats.Meter {
	return l.e.AddTCP(at).Meter()
}

// series extracts a receiver's smoothed throughput series.
func series(label string, r *deltasigma.Receiver, window int) Series {
	return Series{Label: label, Points: r.Meter().Series(window)}
}
