// Package scenario reproduces every experiment in the paper's evaluation
// (§5): one function per figure, each returning labelled data series so
// that cmd/figures can regenerate the plots, bench_test.go can time them,
// and the integration tests can assert their shape.
//
// All experiments use the §5.1 settings unless a figure overrides them:
// single-bottleneck topology, 250 Kbps fair share per session, 20 ms
// bottleneck delay, 10 ms / 10 Mbps side links, buffers of two
// bandwidth-delay products, 10 groups starting at 100 Kbps growing ×1.5,
// 576-byte data packets, 500 ms FLID-DL slots and 250 ms FLID-DS slots.
package scenario

import (
	"fmt"

	"deltasigma/internal/core"
	"deltasigma/internal/flid"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
	"deltasigma/internal/tcp"
	"deltasigma/internal/topo"
)

// Paper parameters (§5.1).
const (
	FairShare   = 250_000 // bits/s per session
	PacketSize  = 576     // bytes, all data traffic
	SlotDL      = 500 * sim.Millisecond
	SlotDS      = 250 * sim.Millisecond
	SmoothenWin = 5 // seconds of moving average for time-series figures
)

// Options scales experiments: tests run shortened versions.
type Options struct {
	// Scale multiplies experiment durations (1 = paper-length). Values in
	// (0,1] shorten runs proportionally.
	Scale float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultOptions runs experiments at paper length.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 2003} }

func (o Options) scale(t sim.Time) sim.Time {
	if o.Scale <= 0 || o.Scale == 1 {
		return t
	}
	return sim.Time(float64(t) * o.Scale)
}

// Series is one curve of a time-series figure.
type Series struct {
	Label  string
	Points []stats.Point
}

// XY is one point of a parameter-sweep curve.
type XY struct {
	X, Y float64
}

// Curve is one curve of a parameter-sweep figure.
type Curve struct {
	Label  string
	Points []XY
}

// Result is everything a figure produced.
type Result struct {
	Name   string
	Title  string
	Series []Series
	Curves []Curve
	Notes  []string
}

// Notef appends a formatted note to the result.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SeriesAvg averages a series' points over [from, to] seconds.
func SeriesAvg(s Series, from, to float64) float64 {
	var sum float64
	n := 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.Kbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// sessionSpacing keeps each session's group block apart in address space.
const sessionSpacing = 32

// newSession builds a paper-standard session descriptor.
func newSession(id uint16, slot sim.Time) *core.Session {
	return &core.Session{
		ID:         id,
		BaseAddr:   packet.MulticastBase + packet.Addr(int(id)*sessionSpacing),
		Rates:      core.PaperSchedule(),
		SlotDur:    slot,
		PacketSize: PacketSize,
	}
}

// slotFor returns the paper's slot duration for a mode: 500 ms for FLID-DL
// and 250 ms for FLID-DS, preserving the 500 ms control granularity through
// SIGMA's two-slot enforcement (§5.1).
func slotFor(mode flid.Mode) sim.Time {
	if mode == flid.DS {
		return SlotDS
	}
	return SlotDL
}

// mcastSession wires one complete multicast session onto a dumbbell.
type mcastSession struct {
	Sess   *core.Session
	Sender *flid.Sender
	// DL receivers and DS receivers (one of the two is populated).
	RecvDL []*flid.Receiver
	RecvDS []*flid.DSReceiver
}

// Meter returns the throughput meter of receiver i.
func (m *mcastSession) Meter(i int) *stats.Meter {
	if len(m.RecvDL) > 0 {
		return m.RecvDL[i].Meter
	}
	return m.RecvDS[i].Meter
}

// StartReceiver starts receiver i.
func (m *mcastSession) StartReceiver(i int) {
	if len(m.RecvDL) > 0 {
		m.RecvDL[i].Start()
	} else {
		m.RecvDS[i].Start()
	}
}

// lab assembles an experiment: dumbbell + gatekeeper + sessions + cross
// traffic, with uniform wiring so every figure shares the same setup code.
type lab struct {
	d    *topo.Dumbbell
	mode flid.Mode
	ctl  *sigma.Controller
	igmp *mcast.IGMP

	sessions []*mcastSession
	tcpRecv  []*tcp.Receiver
	tcpMeter []*stats.Meter
}

// newLab builds the dumbbell and installs the right gatekeeper for mode.
func newLab(cfg topo.Config, mode flid.Mode) *lab {
	l := &lab{d: topo.New(cfg), mode: mode}
	return l
}

// finish completes wiring after all hosts exist; must be called once.
func (l *lab) finish() {
	l.d.Done()
	if l.mode == flid.DS {
		l.ctl = sigma.NewController(l.d.Right, sigma.DefaultConfig(SlotDS))
	} else {
		l.igmp = mcast.NewIGMP(l.d.Right)
	}
}

// addSession creates session id with nRecv receivers (with default access
// delay); receivers are built but not started.
func (l *lab) addSession(id uint16, nRecv int) *mcastSession {
	slot := slotFor(l.mode)
	sess := newSession(id, slot)
	src := l.d.AddSource(fmt.Sprintf("src%d", id))
	for _, a := range sess.Addrs() {
		l.d.Fabric.SetSource(a, src.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	ms := &mcastSession{Sess: sess}
	ms.Sender = flid.NewSender(src, sess, l.mode, policy, l.d.RNG.Fork(), nil, 2)
	for i := 0; i < nRecv; i++ {
		host := l.d.AddReceiver(fmt.Sprintf("r%d_%d", id, i))
		l.attachReceiver(ms, host)
	}
	l.sessions = append(l.sessions, ms)
	return ms
}

// attachReceiver builds a receiver of the right mode on host.
func (l *lab) attachReceiver(ms *mcastSession, host *netsim.Host) {
	if l.mode == flid.DS {
		ms.RecvDS = append(ms.RecvDS, flid.NewDSReceiver(host, ms.Sess, l.d.Right.Addr()))
	} else {
		ms.RecvDL = append(ms.RecvDL, flid.NewReceiver(host, ms.Sess, l.d.Right.Addr()))
	}
}

// addTCP creates one TCP Reno connection crossing the bottleneck and
// returns its throughput meter; the sender starts at `at`.
func (l *lab) addTCP(flow uint32, at sim.Time) *stats.Meter {
	src := l.d.AddSource(fmt.Sprintf("tsrc%d", flow))
	dst := l.d.AddReceiver(fmt.Sprintf("tdst%d", flow))
	cfg := tcp.DefaultConfig()
	recv := tcp.NewReceiver(dst, flow, cfg)
	meter := stats.NewMeter(sim.Second)
	recv.OnDeliver = func(bytes int) { meter.Add(l.d.Sched.Now(), bytes) }
	snd := tcp.NewSender(src, dst.Addr(), flow, cfg)
	l.d.Sched.At(at, snd.Start)
	l.tcpRecv = append(l.tcpRecv, recv)
	l.tcpMeter = append(l.tcpMeter, meter)
	return meter
}
