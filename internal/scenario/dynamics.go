package scenario

import (
	"fmt"

	"deltasigma/internal/flid"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

// responsivenessRun is one curve of Figure 8(e): a single multicast session
// shares the 1 Mbps bottleneck with an 800 Kbps CBR burst between 45 s and
// 75 s (scaled).
func responsivenessRun(opt Options, mode flid.Mode) Series {
	dur := opt.scale(100 * sim.Second)
	on := opt.scale(45 * sim.Second)
	off := opt.scale(75 * sim.Second)

	l := newLab(topo.PaperConfig(1_000_000, opt.Seed), mode)
	ms := l.addSession(1)
	l.e.AddCBR(800_000, 0, 0).Burst(on, off)
	l.e.Run(dur)

	return series(protoName(mode), ms.Receivers[0], SmoothenWin)
}

// Fig8e reproduces Figure 8(e): FLID-DS backs off and recovers around the
// CBR burst just like FLID-DL.
func Fig8e(opt Options) *Result {
	dl := responsivenessRun(opt, flid.DL)
	ds := responsivenessRun(opt, flid.DS)
	dl.Label, ds.Label = "FLID-DL", "FLID-DS"
	r := &Result{
		Name:   "fig8e",
		Title:  "Responsiveness to an 800 Kbps on-off CBR burst",
		Series: []Series{dl, ds},
	}
	r.Notef("CBR burst between t=%.0fs and t=%.0fs", opt.scale(45*sim.Second).Sec(), opt.scale(75*sim.Second).Sec())
	return r
}

// rttRun is one curve of Figure 8(f): one session, 20 receivers whose
// round-trip times spread uniformly over 30..220 ms (bottleneck delay 5 ms),
// average throughput per receiver.
func rttRun(opt Options, mode flid.Mode) Curve {
	dur := opt.scale(200 * sim.Second)
	warmup := dur / 4

	const nRecv = 20
	cfg := topo.PaperConfig(FairShare, opt.Seed)
	cfg.BottleneckDelay = 5 * sim.Millisecond
	l := newLab(cfg, mode)

	ms := l.addSession(0)
	rtts := make([]float64, nRecv)
	for i := 0; i < nRecv; i++ {
		// RTT_i spreads 30..220 ms: RTT = 2·(10ms + 5ms + access).
		rttMs := 30.0 + float64(i)*(220.0-30.0)/float64(nRecv-1)
		rtts[i] = rttMs
		access := sim.Time((rttMs/2.0 - 15.0) * float64(sim.Millisecond))
		if access < 0 {
			access = 0
		}
		ms.AddReceiverDelay(access)
	}
	l.e.Run(dur)

	var c Curve
	c.Label = fmt.Sprintf("Average %s rates", mode)
	for i := 0; i < nRecv; i++ {
		c.Points = append(c.Points, XY{X: rtts[i], Y: ms.Receivers[i].Meter().AvgKbps(warmup, dur)})
	}
	return c
}

// Fig8f reproduces Figure 8(f): throughput is flat across heterogeneous
// round-trip times for both FLID-DL and FLID-DS.
func Fig8f(opt Options) *Result {
	dl := rttRun(opt, flid.DL)
	ds := rttRun(opt, flid.DS)
	return &Result{
		Name:   "fig8f",
		Title:  "Heterogeneous round-trip times",
		Curves: []Curve{dl, ds},
	}
}

// convergenceRun is Figure 8(g)/(h): four receivers of one session join at
// 0, 10, 20 and 30 s (scaled) and converge to the same subscription.
func convergenceRun(opt Options, mode flid.Mode) *Result {
	dur := opt.scale(40 * sim.Second)
	l := newLab(topo.PaperConfig(FairShare, opt.Seed), mode)
	ms := l.addSession(4)
	for i, r := range ms.Receivers {
		r.StartAt(opt.scale(sim.Time(i) * 10 * sim.Second))
	}
	l.e.Run(dur)

	name, title := "fig8g", "Subscription convergence in FLID-DL"
	if mode == flid.DS {
		name, title = "fig8h", "Subscription convergence in FLID-DS"
	}
	res := &Result{Name: name, Title: title}
	lv := make([]int, len(ms.Receivers))
	for i, r := range ms.Receivers {
		res.Series = append(res.Series, series(fmt.Sprintf("Receiver %d", i+1), r, 3))
		lv[i] = r.Level()
	}
	res.Notef("final levels: %v", lv)
	return res
}

// Fig8g reproduces Figure 8(g): convergence under FLID-DL.
func Fig8g(opt Options) *Result { return convergenceRun(opt, flid.DL) }

// Fig8h reproduces Figure 8(h): convergence under FLID-DS.
func Fig8h(opt Options) *Result { return convergenceRun(opt, flid.DS) }
