package scenario

import (
	"deltasigma"
	"deltasigma/internal/core"
	"deltasigma/internal/flid"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

// §5.4 overhead-experiment constants.
const (
	overheadPktBytes = 500       // s = 4000 bits of data per packet
	overheadTotal    = 4_000_000 // R: cumulative session rate
	overheadBase     = 100_000   // r: minimal group rate
	keyBits          = 16        // b
	slotNumberBits   = 8         // l
	fecExpansion     = 2         // z: repetition overcoming 50% loss
)

// overheadPoint runs a FLID-DS sender with N groups and slot duration t and
// evaluates the §5.4 overhead expressions with the observed f_g, z and h.
type overheadPoint struct {
	N          int
	T          sim.Time
	DeltaPct   float64 // O_Δ, analytic (2 − 1/m^(N−1))·b/s
	DeltaMeas  float64 // O_Δ from the measured packet counts (2P−p)b/(Rt)
	SigmaPct   float64 // O_Σ with observed f_g, z, h
	WirePct    float64 // actual announce bytes on the wire / data bytes
	SumFg      float64
	HeaderBits float64
}

func runOverheadPoint(opt Options, n int, slotDur sim.Time) overheadPoint {
	dur := opt.scale(60 * sim.Second)
	if dur < 20*slotDur {
		dur = 20 * slotDur
	}

	// Uncongested topology: overhead is a property of the sender's
	// emission, not of contention. One receiver keeps the edge on the
	// tree so announces traverse it.
	e := deltasigma.MustNew(
		deltasigma.WithDumbbellConfig(topo.PaperConfig(20_000_000, opt.Seed+uint64(n)+uint64(slotDur))),
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSchedule(core.ScheduleForTotal(overheadBase, overheadTotal, n)),
		deltasigma.WithSlot(slotDur),
		deltasigma.WithPacketSize(overheadPktBytes),
	)
	sess := e.AddSession(1)
	e.Run(dur)
	snd := sess.Sender.(*flid.Sender)

	pt := overheadPoint{N: n, T: slotDur}

	// O_Δ analytic: (2 − 1/m^(N−1)) · b/s, with m^(N−1) = R/r (Eq. 10).
	s := float64(overheadPktBytes * 8)
	ratio := float64(overheadTotal) / float64(overheadBase)
	pt.DeltaPct = (2 - 1/ratio) * keyBits / s * 100

	// O_Δ measured from actual packet counts: every packet carries a b-bit
	// component field, every packet of groups 2..N also a b-bit decrease
	// field → (2P − p)·b bits per slot against R·t data bits.
	totalPkts := float64(snd.PacketsSent)
	g1Pkts := float64(snd.PacketsPerGroup[0])
	dataBits := totalPkts * s
	if dataBits > 0 {
		pt.DeltaMeas = (2*totalPkts - g1Pkts) * keyBits / dataBits * 100
	}

	// O_Σ with the observed f_g, z and h (§5.4):
	//   [ (l + 32N + b(2N−1+Σf_g))·z + h ] / (R·t)
	var sumFg float64
	for g := 2; g <= n; g++ {
		sumFg += snd.ObservedFrequency(g)
	}
	pt.SumFg = sumFg
	ann := snd.Announcer()
	var h float64
	if ann.SlotsDone > 0 {
		h = float64(ann.HeaderBytes*8) / float64(ann.SlotsDone)
	}
	pt.HeaderBits = h
	tupleBits := slotNumberBits + 32*float64(n) + keyBits*(2*float64(n)-1+sumFg)
	rt := float64(overheadTotal) * slotDur.Sec()
	pt.SigmaPct = (tupleBits*float64(fecExpansion) + h) / rt * 100

	// Actual wire bytes (our codec uses 64-bit key fields for generality;
	// the paper's model assumes exactly b-bit fields).
	if snd.BytesSent > 0 {
		pt.WirePct = float64(ann.BytesSent) / float64(snd.BytesSent) * 100
	}
	return pt
}

// groupSweep is the Figure 9(a) x-axis.
func groupSweep(opt Options) []int {
	if opt.Scale >= 1 {
		return []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	}
	return []int{2, 6, 10, 14}
}

// Fig9a reproduces Figure 9(a): communication overhead of DELTA and SIGMA
// versus the number of groups, at t = 250 ms.
func Fig9a(opt Options) *Result {
	res := &Result{Name: "fig9a", Title: "Overhead vs number of groups"}
	var dCur, sCur Curve
	dCur.Label, sCur.Label = "DELTA", "SIGMA"
	for _, n := range groupSweep(opt) {
		pt := runOverheadPoint(opt, n, 250*sim.Millisecond)
		dCur.Points = append(dCur.Points, XY{X: float64(n), Y: pt.DeltaPct})
		sCur.Points = append(sCur.Points, XY{X: float64(n), Y: pt.SigmaPct})
		res.Notef("N=%2d: delta=%.3f%% (measured %.3f%%), sigma=%.3f%%, Σf_g=%.2f, h=%.0f bits, wire=%.3f%%",
			n, pt.DeltaPct, pt.DeltaMeas, pt.SigmaPct, pt.SumFg, pt.HeaderBits, pt.WirePct)
	}
	res.Curves = []Curve{dCur, sCur}
	return res
}

// slotSweep is the Figure 9(b) x-axis.
func slotSweep(opt Options) []sim.Time {
	if opt.Scale >= 1 {
		out := make([]sim.Time, 0, 9)
		for ms := 200; ms <= 1000; ms += 100 {
			out = append(out, sim.Time(ms)*sim.Millisecond)
		}
		return out
	}
	return []sim.Time{200 * sim.Millisecond, 500 * sim.Millisecond, 1000 * sim.Millisecond}
}

// Fig9b reproduces Figure 9(b): overhead versus the time-slot duration, at
// N = 10.
func Fig9b(opt Options) *Result {
	res := &Result{Name: "fig9b", Title: "Overhead vs time slot duration"}
	var dCur, sCur Curve
	dCur.Label, sCur.Label = "DELTA", "SIGMA"
	for _, t := range slotSweep(opt) {
		pt := runOverheadPoint(opt, 10, t)
		dCur.Points = append(dCur.Points, XY{X: t.Sec(), Y: pt.DeltaPct})
		sCur.Points = append(sCur.Points, XY{X: t.Sec(), Y: pt.SigmaPct})
		res.Notef("t=%.1fs: delta=%.3f%%, sigma=%.3f%%", t.Sec(), pt.DeltaPct, pt.SigmaPct)
	}
	res.Curves = []Curve{dCur, sCur}
	return res
}
