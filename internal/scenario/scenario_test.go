package scenario

import (
	"testing"

	"deltasigma/internal/stats"
)

// testOptions shrinks experiments so the suite stays fast; shapes must hold
// even at reduced scale.
func testOptions() Options { return Options{Scale: 0.35, Seed: 2003} }

func TestFig1AttackSucceedsUnderFLIDDL(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	opt := testOptions()
	res := Fig1(opt)
	if len(res.Series) != 4 {
		t.Fatalf("want 4 series, got %d", len(res.Series))
	}
	dur := 200 * opt.Scale
	mid := dur / 2
	byLabel := map[string]Series{}
	for _, s := range res.Series {
		byLabel[s.Label] = s
	}
	f1Pre := SeriesAvg(byLabel["F1"], mid*0.4, mid*0.9)
	f1Post := SeriesAvg(byLabel["F1"], mid*1.2, dur)
	f2Post := SeriesAvg(byLabel["F2"], mid*1.2, dur)
	t1Post := SeriesAvg(byLabel["T1"], mid*1.2, dur)

	if f1Post < 2*f1Pre {
		t.Fatalf("attack gained too little: %.0f -> %.0f Kbps", f1Pre, f1Post)
	}
	if f1Post < 600 {
		t.Fatalf("attacker reached only %.0f Kbps of the 1 Mbps bottleneck", f1Post)
	}
	if f2Post > f1Post/2 || t1Post > f1Post/2 {
		t.Fatalf("victims not suppressed: F2=%.0f T1=%.0f vs F1=%.0f", f2Post, t1Post, f1Post)
	}
}

func TestFig7ProtectionHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	opt := testOptions()
	res := Fig7(opt)
	dur := 200 * opt.Scale
	mid := dur / 2
	byLabel := map[string]Series{}
	for _, s := range res.Series {
		byLabel[s.Label] = s
	}
	f1Pre := SeriesAvg(byLabel["F1"], mid*0.4, mid*0.9)
	f1Post := SeriesAvg(byLabel["F1"], mid*1.2, dur)
	f2Post := SeriesAvg(byLabel["F2"], mid*1.2, dur)

	// The attack must not profit: F1's throughput stays within noise of its
	// pre-attack value and never exceeds a generous fair-share bound.
	if f1Post > 1.5*f1Pre+50 {
		t.Fatalf("attack profited under FLID-DS: %.0f -> %.0f Kbps", f1Pre, f1Post)
	}
	if f1Post > 400 {
		t.Fatalf("attacker at %.0f Kbps exceeds any fair reading of 250 Kbps", f1Post)
	}
	if f2Post < 50 {
		t.Fatalf("victim starved at %.0f Kbps despite protection", f2Post)
	}
}

func TestFig8aIndividualAndAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	res := Fig8a(testOptions())
	if len(res.Curves) != 2 {
		t.Fatalf("want 2 curves, got %d", len(res.Curves))
	}
	avg := res.Curves[1]
	for _, p := range avg.Points {
		if p.Y < 120 || p.Y > 420 {
			t.Fatalf("M=%.0f: average %.0f Kbps implausible for a 250 Kbps fair share", p.X, p.Y)
		}
	}
}

func TestFig8cAveragesComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	res := Fig8c(testOptions())
	dl, ds := res.Curves[0], res.Curves[1]
	if len(dl.Points) != len(ds.Points) {
		t.Fatal("sweep mismatch")
	}
	for i := range dl.Points {
		rdl, rds := dl.Points[i].Y, ds.Points[i].Y
		if rds < 0.55*rdl || rds > 1.45*rdl {
			t.Fatalf("M=%.0f: FLID-DS %.0f vs FLID-DL %.0f Kbps diverge", dl.Points[i].X, rds, rdl)
		}
	}
}

func TestFig8eResponsiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	opt := Options{Scale: 0.6, Seed: 2003}
	res := Fig8e(opt)
	on := 45 * opt.Scale
	off := 75 * opt.Scale
	dur := 100 * opt.Scale
	for _, s := range res.Series {
		before := SeriesAvg(s, on*0.3, on*0.9)
		during := SeriesAvg(s, on+3, off-1)
		after := SeriesAvg(s, off+6, dur)
		if during > 0.8*before {
			t.Fatalf("%s: no backoff during burst: %.0f -> %.0f Kbps", s.Label, before, during)
		}
		if after < 1.2*during {
			t.Fatalf("%s: no recovery after burst: %.0f -> %.0f Kbps", s.Label, during, after)
		}
	}
}

func TestFig8fRTTIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	res := Fig8f(testOptions())
	for _, c := range res.Curves {
		var ys []float64
		for _, p := range c.Points {
			ys = append(ys, p.Y)
		}
		mean := stats.Mean(ys)
		if mean < 60 {
			t.Fatalf("%s: mean %.0f Kbps too low", c.Label, mean)
		}
		// Receivers of one session behind one bottleneck share the stream:
		// the spread across RTTs must stay small.
		if sd := stats.StdDev(ys); sd > 0.35*mean {
			t.Fatalf("%s: throughput varies with RTT: mean=%.0f sd=%.0f", c.Label, mean, sd)
		}
	}
}

func TestFig8ghConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	opt := Options{Scale: 1, Seed: 2003} // short experiment anyway (40 s)
	for _, res := range []*Result{Fig8g(opt), Fig8h(opt)} {
		if len(res.Series) != 4 {
			t.Fatalf("%s: want 4 series", res.Name)
		}
		var finals []float64
		for _, s := range res.Series {
			finals = append(finals, SeriesAvg(s, 32, 40))
		}
		for i := 1; i < 4; i++ {
			if finals[i] < 60 {
				t.Fatalf("%s: receiver %d dead at end (%.0f Kbps): %v", res.Name, i+1, finals[i], finals)
			}
		}
		if j := stats.Jain(finals); j < 0.85 {
			t.Fatalf("%s: receivers did not converge, Jain=%.2f rates=%v", res.Name, j, finals)
		}
	}
}

func TestFig9aOverheadBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	res := Fig9a(testOptions())
	deltaC, sigmaC := res.Curves[0], res.Curves[1]
	for _, p := range deltaC.Points {
		// Paper: "remains about 0.8%".
		if p.Y < 0.7 || p.Y > 0.9 {
			t.Fatalf("DELTA overhead at N=%.0f is %.3f%%, want ~0.8%%", p.X, p.Y)
		}
	}
	for _, p := range sigmaC.Points {
		// Paper: "stays under 0.6%".
		if p.Y <= 0 || p.Y > 0.6 {
			t.Fatalf("SIGMA overhead at N=%.0f is %.3f%%, want under 0.6%%", p.X, p.Y)
		}
	}
}

func TestFig9bOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are moderate-length simulations")
	}
	res := Fig9b(testOptions())
	deltaC, sigmaC := res.Curves[0], res.Curves[1]
	// DELTA overhead is independent of slot duration.
	for i := 1; i < len(deltaC.Points); i++ {
		if d := deltaC.Points[i].Y - deltaC.Points[0].Y; d > 0.01 || d < -0.01 {
			t.Fatalf("DELTA overhead should be flat in t: %v", deltaC.Points)
		}
	}
	// SIGMA overhead decreases with slot duration (amortized per slot).
	first := sigmaC.Points[0].Y
	last := sigmaC.Points[len(sigmaC.Points)-1].Y
	if last >= first {
		t.Fatalf("SIGMA overhead should fall with t: %.3f%% -> %.3f%%", first, last)
	}
	for _, p := range sigmaC.Points {
		if p.Y > 0.6 {
			t.Fatalf("SIGMA overhead %.3f%% at t=%.1fs exceeds 0.6%%", p.Y, p.X)
		}
	}
}
