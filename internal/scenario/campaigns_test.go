package scenario

import (
	"strings"
	"testing"

	"deltasigma"
)

func TestCampaignRegistry(t *testing.T) {
	names := CampaignNames()
	if len(names) != 8 {
		t.Fatalf("campaigns = %v, want 8", names)
	}
	for _, name := range names {
		c, ok := LookupCampaign(name)
		if !ok || c.Name != name || c.Description == "" || c.Build == nil {
			t.Fatalf("campaign %q malformed: %+v", name, c)
		}
	}
	if _, ok := LookupCampaign("nope"); ok {
		t.Fatal("LookupCampaign resolved a bogus name")
	}
	if _, err := RunCampaign("nope", testOptions(), 1); err == nil {
		t.Fatal("RunCampaign should error on unknown names")
	}
}

// Every canned campaign must declare a valid, runnable grid; run them at a
// tiny scale to keep the suite fast while still exercising every axis.
func TestCampaignsRunAtReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs are moderate-length simulations")
	}
	opt := Options{Scale: 0.05, Seed: 2003}
	for _, c := range Campaigns() {
		sw := c.Build(opt)
		if sw.Size() < 4 {
			t.Fatalf("campaign %q declares only %d points", c.Name, sw.Size())
		}
		res, err := sw.Run(0)
		if err != nil {
			t.Fatalf("campaign %q: %v", c.Name, err)
		}
		for i, p := range res.Points {
			// Attacker points on attackerless protocols are the one
			// sanctioned failure: the shoot-out records the typed
			// no-attacker reason instead of a measurement.
			if p.Error != "" {
				if !deltasigma.ProtocolHasAttacker(p.Point.Protocol) &&
					strings.Contains(p.Error, "no inflated-subscription attacker") {
					continue
				}
				t.Fatalf("campaign %q point %v failed: %s", c.Name, p.Point, p.Error)
			}
			if p.GoodMeanKbps <= 0 {
				t.Fatalf("campaign %q point %d (%v) produced no throughput", c.Name, i, p.Point)
			}
		}
	}
}
