package scenario

import (
	"deltasigma"
	"deltasigma/internal/flid"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
	"deltasigma/internal/topo"
)

// sessionCounts is the paper's x-axis for Figure 8(a)-(d).
var sessionCounts = []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18}

// sweepCounts thins the sweep for scaled-down runs.
func sweepCounts(opt Options) []int {
	if opt.Scale >= 1 {
		return sessionCounts
	}
	return []int{1, 2, 4, 8}
}

// throughputRun measures every multicast receiver's average throughput with
// M sessions of the given mode, optionally with M TCP sessions and an
// on-off CBR session as cross traffic (Figure 8a/b/d body).
func throughputRun(opt Options, mode flid.Mode, m int, cross bool) (indiv []float64, avg float64) {
	dur := opt.scale(200 * sim.Second)
	warmup := dur / 10

	// Fair share of 250 Kbps per session fixes the capacity.
	nSessions := int64(m)
	if cross {
		nSessions = int64(2 * m)
	}
	capacity := FairShare * nSessions
	l := newLab(topo.PaperConfig(capacity, opt.Seed+uint64(m)*17), mode)

	sessions := make([]*deltasigma.ExperimentSession, 0, m)
	for i := 0; i < m; i++ {
		sessions = append(sessions, l.addSession(1))
	}
	if cross {
		for i := 0; i < m; i++ {
			l.addTCP(sim.Time(i) * 100 * sim.Millisecond)
		}
		// The on-off CBR session transmits at 10% of the bottleneck
		// capacity with 5-second on and off periods (§5.3).
		l.e.AddCBR(capacity/10, 5*sim.Second, 5*sim.Second)
	}
	l.e.Run(dur)

	for _, s := range sessions {
		indiv = append(indiv, s.Receivers[0].Meter().AvgKbps(warmup, dur))
	}
	return indiv, stats.Mean(indiv)
}

// throughputSweep runs throughputRun across the session counts.
func throughputSweep(opt Options, mode flid.Mode, cross bool) (indiv Curve, avg Curve) {
	for _, m := range sweepCounts(opt) {
		rates, mean := throughputRun(opt, mode, m, cross)
		for _, r := range rates {
			indiv.Points = append(indiv.Points, XY{X: float64(m), Y: r})
		}
		avg.Points = append(avg.Points, XY{X: float64(m), Y: mean})
	}
	return indiv, avg
}

// Fig8a reproduces Figure 8(a): FLID-DL individual and average receiver
// throughput versus the number of multicast sessions, no cross traffic.
func Fig8a(opt Options) *Result {
	indiv, avg := throughputSweep(opt, flid.DL, false)
	indiv.Label, avg.Label = "Individual rates", "Average rate"
	return &Result{
		Name:   "fig8a",
		Title:  "Throughput for FLID-DL without cross traffic",
		Curves: []Curve{indiv, avg},
	}
}

// Fig8b reproduces Figure 8(b): the same for FLID-DS.
func Fig8b(opt Options) *Result {
	indiv, avg := throughputSweep(opt, flid.DS, false)
	indiv.Label, avg.Label = "Individual rates", "Average rate"
	return &Result{
		Name:   "fig8b",
		Title:  "Throughput for FLID-DS without cross traffic",
		Curves: []Curve{indiv, avg},
	}
}

// Fig8c reproduces Figure 8(c): FLID-DL and FLID-DS average throughput
// without cross traffic coincide.
func Fig8c(opt Options) *Result {
	_, dl := throughputSweep(opt, flid.DL, false)
	_, ds := throughputSweep(opt, flid.DS, false)
	dl.Label, ds.Label = "FLID-DL average rate", "FLID-DS average rate"
	return &Result{
		Name:   "fig8c",
		Title:  "Average throughput without cross traffic",
		Curves: []Curve{dl, ds},
	}
}

// Fig8d reproduces Figure 8(d): averages with TCP and on-off CBR cross
// traffic remain comparable between FLID-DL and FLID-DS.
func Fig8d(opt Options) *Result {
	_, dl := throughputSweep(opt, flid.DL, true)
	_, ds := throughputSweep(opt, flid.DS, true)
	dl.Label, ds.Label = "FLID-DL average rate", "FLID-DS average rate"
	r := &Result{
		Name:   "fig8d",
		Title:  "Average throughput with cross traffic",
		Curves: []Curve{dl, ds},
	}
	r.Notef("cross traffic: one TCP per multicast session plus on-off CBR at 10%% capacity, 5 s periods")
	return r
}
