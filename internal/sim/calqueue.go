package sim

// This file implements the scheduler's pending-event store as a calendar
// (bucket) queue in the style of Brown's calendar queues, tuned for the
// slot-periodic schedules this simulator produces: virtual time is cut
// into fixed-width "days", each day hashes to one bucket of an unordered
// power-of-two array, and a cursor sweeps the calendar day by day. Insert
// appends to a bucket and removal swaps with the bucket's last element,
// both O(1); finding the minimum scans only the cursor's day, which the
// width feedback below keeps near one event, so pop is O(1) amortized
// where the previous container/heap implementation paid O(log n) pointer
// sifts (heap.Pop/Push were >55% of the Fig01/Fig07 CPU profile).
//
// Buckets store (at, seq) inline next to the event pointer: the minimum
// scan — the hottest loop in the whole simulator — walks contiguous
// entries and never dereferences an event, so it runs at cache speed
// regardless of where the freelist scattered the event objects.
//
// Ordering is exactly the heap's: strict (at, seq) order. All events whose
// timestamp falls inside the cursor's day live in the cursor's bucket, so
// the in-bucket minimum by (at, seq) is the global minimum; ties at equal
// timestamps resolve by the same insertion-stable seq the heap compared,
// which is what keeps every seeded golden byte-identical across the swap.
//
// Sizing is grow-only: simulation populations burst every slot (a sender
// schedules its whole slot's emissions at once, then the calendar drains),
// and shrinking on the trough just to re-grow on the next burst would
// reallocate every bucket twice per slot. A calendar that grew once stays
// grown; bucket capacity persists, so steady state inserts allocate
// nothing. The day width self-tunes instead: it is seeded from the
// observed mean inter-event spacing whenever the calendar grows, then
// corrected by a feedback loop measuring where the minimum scan actually
// spends its steps — many events examined per day means days are too wide
// (halve), many empty days walked means days are too narrow (double).
// Retuning refiles events through a reusable scratch buffer in place.
const (
	calMinBuckets = 64
	// calInitialShift makes the initial day width 2^20 ns (~1.05 ms). Day
	// widths are always powers of two so filing an event is a shift and a
	// mask, not a 64-bit division — place and the cursor math sit on the
	// hottest path in the simulator.
	calInitialShift = 20
	// The feedback window: every calRetuneWindow pops, compare the two
	// step counters against calRetuneScan steps per pop and adjust the
	// day width when either kind of work dominates.
	calRetuneWindow = 1024
	calRetuneScan   = 8
)

// calEntry files one pending event with its ordering key inline. Ordering
// is (at, akey, seq) — see the event type for why the middle component is
// redundant in serial runs but load-bearing for sharded ones.
type calEntry struct {
	at   Time
	akey Time
	seq  uint64
	e    *event
}

type calQueue struct {
	buckets [][]calEntry
	scratch []calEntry // reused by refile; never shrinks
	mask    int        // len(buckets)-1; the bucket count is a power of two
	shift   uint       // log2 of the day width
	width   Time       // day width (1<<shift): the span of virtual time one bucket covers
	count   int
	curBkt  int  // bucket under the cursor
	curTop  Time // exclusive end of the day under the cursor

	// Scan-cost accounting driving the width feedback.
	peeks       int
	bucketSteps int // events examined inside days (high => width too large)
	dayAdvances int // empty days walked past (high => width too small)
}

func (q *calQueue) init() {
	q.buckets = make([][]calEntry, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.shift = calInitialShift
	q.width = 1 << q.shift
	q.curTop = q.width
}

// place files e into the bucket owning its day. e.at is never negative
// (the scheduler panics on past scheduling before any event reaches the
// queue, and the clock starts at zero).
func (q *calQueue) place(e *event) {
	day := uint64(e.at) >> q.shift
	b := int(day) & q.mask
	e.bkt = b
	e.idx = len(q.buckets[b])
	q.buckets[b] = append(q.buckets[b], calEntry{at: e.at, akey: e.akey, seq: e.seq, e: e})
}

func (q *calQueue) setCursor(day uint64) {
	q.curBkt = int(day) & q.mask
	q.curTop = Time(day+1) << q.shift
}

func (q *calQueue) insert(e *event) {
	if q.buckets == nil {
		q.init()
	}
	if q.count >= 2*len(q.buckets) {
		q.grow()
	}
	q.place(e)
	q.count++
	if q.count == 1 || e.at < q.curTop-q.width {
		// The event lands on a day before the cursor — or the queue was
		// empty, leaving the cursor parked wherever the last drain ended —
		// so rewind to the new event's day. This preserves the scan
		// invariant: no pending event's day precedes the cursor's day.
		q.setCursor(uint64(e.at) >> q.shift)
	}
}

// remove unfiles a pending event in O(1) by swapping it with the last
// element of its bucket. The cursor never moves here; removal can only
// leave the cursor's day emptier, which the scan skips naturally.
func (q *calQueue) remove(e *event) {
	arr := q.buckets[e.bkt]
	last := len(arr) - 1
	moved := arr[last]
	arr[e.idx] = moved
	moved.e.idx = e.idx
	arr[last] = calEntry{}
	q.buckets[e.bkt] = arr[:last]
	e.idx = -1
	q.count--
}

// pop removes and returns the earliest pending event by (at, seq). In
// bounded mode an event past limit is left queued and pop returns nil —
// the run loop's horizon check is fused into the scan. Callers must ensure
// count > 0.
//
// The minimum scan and the swap-removal share one loop so the winning
// bucket slice and index stay in registers: the cursor advances day by day
// past empty days, and the first day holding an entry holds the global
// minimum. A full cycle without a hit means every pending event is at
// least one calendar year ahead, so pop falls back to a direct sweep for
// the global minimum, jumps the cursor to its day, and retries — sparse
// populations therefore cost O(buckets) per pop instead of walking empty
// virtual time.
func (q *calQueue) pop(bounded bool, limit Time) *event {
	q.peeks++
	for cycle := 0; cycle < len(q.buckets); cycle++ {
		arr := q.buckets[q.curBkt]
		// Seeding bestAt with the day's exclusive end folds the "entry is on
		// this day" bound into the ordinary best comparison: an entry at
		// exactly curTop belongs to a later day and can never win the tie
		// branches, because akeys are never negative and no uint64 seq
		// is < 0.
		best := -1
		bestAt := q.curTop
		var bestAkey Time
		var bestSeq uint64
		for i := range arr {
			en := &arr[i]
			if en.at < bestAt ||
				(en.at == bestAt && (en.akey < bestAkey ||
					(en.akey == bestAkey && en.seq < bestSeq))) {
				best, bestAt, bestAkey, bestSeq = i, en.at, en.akey, en.seq
			}
		}
		q.bucketSteps += len(arr)
		if best >= 0 {
			e := arr[best].e
			if bounded && e.at > limit {
				q.maybeRetune()
				return nil
			}
			last := len(arr) - 1
			if best != last {
				moved := arr[last]
				arr[best] = moved
				moved.e.idx = best
			}
			arr[last] = calEntry{}
			q.buckets[q.curBkt] = arr[:last]
			e.idx = -1
			q.count--
			q.maybeRetune()
			return e
		}
		q.dayAdvances++
		q.curBkt = (q.curBkt + 1) & q.mask
		q.curTop += q.width
		// Bounded horizon cut: once the cursor's day starts past the limit,
		// no pending event can be within it (the cursor invariant puts every
		// pending event at or after the cursor's day), so stop instead of
		// walking to wherever the next event actually lives. Windowed sharded
		// runs hit this every window — without the cut each window-end pop
		// walks the idle stretch to the next slot timer, or worse, falls
		// through to the full-calendar sweep.
		if bounded && q.curTop-q.width > limit {
			q.maybeRetune()
			return nil
		}
	}
	var beste *event
	for _, arr := range q.buckets {
		for i := range arr {
			en := &arr[i]
			if beste == nil || en.at < beste.at ||
				(en.at == beste.at && (en.akey < beste.akey ||
					(en.akey == beste.akey && en.seq < beste.seq))) {
				beste = en.e
			}
		}
	}
	q.setCursor(uint64(beste.at) >> q.shift)
	return q.pop(bounded, limit)
}

// nextAt reports the earliest pending timestamp without removing anything.
// It advances the cursor past empty days exactly as pop would (idempotent
// under the cursor invariant) but leaves the width-feedback counters alone
// so probes between windows don't skew the retune loop.
func (q *calQueue) nextAt() (Time, bool) {
	if q.count == 0 {
		return 0, false
	}
	for cycle := 0; cycle < len(q.buckets); cycle++ {
		arr := q.buckets[q.curBkt]
		bestAt := q.curTop
		found := false
		for i := range arr {
			if arr[i].at < bestAt {
				bestAt = arr[i].at
				found = true
			}
		}
		if found {
			return bestAt, true
		}
		q.curBkt = (q.curBkt + 1) & q.mask
		q.curTop += q.width
	}
	var best Time
	first := true
	for _, arr := range q.buckets {
		for i := range arr {
			if first || arr[i].at < best {
				best = arr[i].at
				first = false
			}
		}
	}
	q.setCursor(uint64(best) >> q.shift)
	return best, true
}

// maybeRetune closes the width feedback loop once per window: if the scan
// examined many events per day, days hold too much and the width halves;
// if it mostly walked empty days, days are too fine and the width doubles.
// Either way events are refiled in place — no bucket reallocation — and
// the counters restart, so a population whose density drifts (slot bursts
// draining into sparse idle stretches) converges within a window or two.
func (q *calQueue) maybeRetune() {
	if q.peeks < calRetuneWindow {
		return
	}
	// Test the empty-day signal before the crowded-day one. Slot-periodic
	// populations schedule bursts of events at the *same* timestamp (every
	// receiver's timer on a slot boundary), and no width separates ties, so
	// a "halve on crowded scans" response to a tied burst can never win —
	// it just narrows the days until the wheel aliases and the walks blow
	// up, and with both counters then high, halving first means halving
	// forever (the collapse pins the width at one nanosecond). Widening
	// first is safe in every regime: scanning a tied burst costs the same
	// at any width, while each empty day walked is pure overhead that
	// widening removes.
	if q.dayAdvances > calRetuneScan*q.peeks {
		q.setShift(int(q.shift) + 1)
	} else if q.bucketSteps > calRetuneScan*q.peeks {
		q.setShift(int(q.shift) - 1)
	}
	q.peeks, q.bucketSteps, q.dayAdvances = 0, 0, 0
}

// setShift changes the day width to 1<<sh and refiles every event.
func (q *calQueue) setShift(sh int) {
	if sh < 0 {
		sh = 0
	}
	if uint(sh) == q.shift {
		return
	}
	q.shift = uint(sh)
	q.width = 1 << q.shift
	q.refile(len(q.buckets))
}

// grow doubles the bucket count and re-seeds the day width from the
// population's observed mean inter-event spacing, the estimate the
// feedback loop then refines.
func (q *calQueue) grow() {
	var lo, hi Time
	first := true
	for _, arr := range q.buckets {
		for i := range arr {
			at := arr[i].at
			if first || at < lo {
				lo = at
			}
			if first || at > hi {
				hi = at
			}
			first = false
		}
	}
	if q.count > 1 && hi > lo {
		// Seed the width with the power of two nearest the mean spacing.
		w := (hi - lo) / Time(q.count-1)
		sh := 0
		for Time(1)<<(sh+1) <= w {
			sh++
		}
		q.shift = uint(sh)
		q.width = 1 << q.shift
	}
	q.refile(2 * len(q.buckets))
}

// refile redistributes every pending event under the current width into n
// buckets, reusing the existing bucket arrays (and their capacity) when n
// is unchanged, and leaves the cursor on the earliest event's day. Event
// pointers stay valid throughout — only their bkt/idx coordinates move —
// so a caller holding peek's result may still remove it afterwards.
func (q *calQueue) refile(n int) {
	q.scratch = q.scratch[:0]
	var lo Time
	for bi, arr := range q.buckets {
		for i := range arr {
			if len(q.scratch) == 0 || arr[i].at < lo {
				lo = arr[i].at
			}
			q.scratch = append(q.scratch, arr[i])
			arr[i] = calEntry{}
		}
		q.buckets[bi] = arr[:0]
	}
	if n != len(q.buckets) {
		q.buckets = make([][]calEntry, n)
		q.mask = n - 1
	}
	for i := range q.scratch {
		q.place(q.scratch[i].e)
		q.scratch[i] = calEntry{}
	}
	if q.count > 0 {
		q.setCursor(uint64(lo) >> q.shift)
	}
}
