package sim

// This file implements the scheduler's pending-event store as a calendar
// (bucket) queue in the style of Brown's calendar queues, tuned for the
// slot-periodic schedules this simulator produces: virtual time is cut
// into fixed-width "days", each day hashes to one bucket of an unordered
// power-of-two array, and a cursor sweeps the calendar day by day. Insert
// appends to a bucket and removal swaps with the bucket's last element,
// both O(1); finding the minimum scans only the cursor's day, which the
// width feedback below keeps near one event, so pop is O(1) amortized
// where the previous container/heap implementation paid O(log n) pointer
// sifts (heap.Pop/Push were >55% of the Fig01/Fig07 CPU profile).
//
// Ordering is exactly the heap's: strict (at, seq) order. All events whose
// timestamp falls inside the cursor's day live in the cursor's bucket, so
// the in-bucket minimum by (at, seq) is the global minimum; ties at equal
// timestamps resolve by the same insertion-stable seq the heap compared,
// which is what keeps every seeded golden byte-identical across the swap.
//
// Sizing is grow-only: simulation populations burst every slot (a sender
// schedules its whole slot's emissions at once, then the calendar drains),
// and shrinking on the trough just to re-grow on the next burst would
// reallocate every bucket twice per slot. A calendar that grew once stays
// grown; bucket capacity persists, so steady state inserts allocate
// nothing. The day width self-tunes instead: it is seeded from the
// observed mean inter-event spacing whenever the calendar grows, then
// corrected by a feedback loop measuring where peek actually spends its
// steps — many events examined per day means days are too wide (halve),
// many empty days walked means days are too narrow (double). Retuning
// refiles events through a reusable scratch buffer in place.
const (
	calMinBuckets   = 64
	calInitialWidth = Millisecond
	// The feedback window: every calRetuneWindow peeks, compare the two
	// step counters against calRetuneScan steps per peek and adjust the
	// day width when either kind of work dominates.
	calRetuneWindow = 1024
	calRetuneScan   = 8
)

type calQueue struct {
	buckets [][]*event
	scratch []*event // reused by refile; never shrinks
	mask    int      // len(buckets)-1; the bucket count is a power of two
	width   Time     // day width: the span of virtual time one bucket covers
	count   int
	curBkt  int  // bucket under the cursor
	curTop  Time // exclusive end of the day under the cursor

	// Scan-cost accounting driving the width feedback.
	peeks       int
	bucketSteps int // events examined inside days (high => width too large)
	dayAdvances int // empty days walked past (high => width too small)
}

func (q *calQueue) init() {
	q.buckets = make([][]*event, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.width = calInitialWidth
	q.curTop = q.width
}

// place files e into the bucket owning its day. e.at is never negative
// (the scheduler panics on past scheduling before any event reaches the
// queue, and the clock starts at zero).
func (q *calQueue) place(e *event) {
	day := uint64(e.at) / uint64(q.width)
	b := int(day) & q.mask
	e.bkt = b
	e.idx = len(q.buckets[b])
	q.buckets[b] = append(q.buckets[b], e)
}

func (q *calQueue) setCursor(day uint64) {
	q.curBkt = int(day) & q.mask
	q.curTop = Time(day+1) * q.width
}

func (q *calQueue) insert(e *event) {
	if q.buckets == nil {
		q.init()
	}
	if q.count >= 2*len(q.buckets) {
		q.grow()
	}
	q.place(e)
	q.count++
	if q.count == 1 || e.at < q.curTop-q.width {
		// The event lands on a day before the cursor — or the queue was
		// empty, leaving the cursor parked wherever the last drain ended —
		// so rewind to the new event's day. This preserves the scan
		// invariant: no pending event's day precedes the cursor's day.
		q.setCursor(uint64(e.at) / uint64(q.width))
	}
}

// remove unfiles a pending event in O(1) by swapping it with the last
// element of its bucket. The cursor never moves here; removal can only
// leave the cursor's day emptier, which the scan skips naturally.
func (q *calQueue) remove(e *event) {
	arr := q.buckets[e.bkt]
	last := len(arr) - 1
	moved := arr[last]
	arr[e.idx] = moved
	moved.idx = e.idx
	arr[last] = nil
	q.buckets[e.bkt] = arr[:last]
	e.idx = -1
	q.count--
}

// peek returns the earliest pending event by (at, seq) without removing
// it, or nil when the queue is empty. The cursor advances day by day past
// empty days; a full cycle without a hit means every pending event is at
// least one calendar year ahead, so peek falls back to a direct scan for
// the global minimum and jumps the cursor to its day — sparse populations
// therefore cost O(buckets) per pop instead of walking empty virtual time.
func (q *calQueue) peek() *event {
	if q.count == 0 {
		return nil
	}
	q.peeks++
	for cycle := 0; cycle < len(q.buckets); cycle++ {
		var best *event
		for _, e := range q.buckets[q.curBkt] {
			if e.at < q.curTop && (best == nil || e.at < best.at || (e.at == best.at && e.seq < best.seq)) {
				best = e
			}
		}
		q.bucketSteps += len(q.buckets[q.curBkt])
		if best != nil {
			q.maybeRetune()
			return best
		}
		q.dayAdvances++
		q.curBkt = (q.curBkt + 1) & q.mask
		q.curTop += q.width
	}
	var best *event
	for _, arr := range q.buckets {
		for _, e := range arr {
			if best == nil || e.at < best.at || (e.at == best.at && e.seq < best.seq) {
				best = e
			}
		}
	}
	q.setCursor(uint64(best.at) / uint64(q.width))
	return best
}

// maybeRetune closes the width feedback loop once per window: if peek
// examined many events per day, days hold too much and the width halves;
// if it mostly walked empty days, days are too fine and the width doubles.
// Either way events are refiled in place — no bucket reallocation — and
// the counters restart, so a population whose density drifts (slot bursts
// draining into sparse idle stretches) converges within a window or two.
func (q *calQueue) maybeRetune() {
	if q.peeks < calRetuneWindow {
		return
	}
	if q.bucketSteps > calRetuneScan*q.peeks {
		q.setWidth(q.width / 2)
	} else if q.dayAdvances > calRetuneScan*q.peeks {
		q.setWidth(q.width * 2)
	}
	q.peeks, q.bucketSteps, q.dayAdvances = 0, 0, 0
}

func (q *calQueue) setWidth(w Time) {
	if w < 1 {
		w = 1
	}
	if w == q.width {
		return
	}
	q.width = w
	q.refile(len(q.buckets))
}

// grow doubles the bucket count and re-seeds the day width from the
// population's observed mean inter-event spacing, the estimate the
// feedback loop then refines.
func (q *calQueue) grow() {
	var lo, hi Time
	first := true
	for _, arr := range q.buckets {
		for _, e := range arr {
			if first || e.at < lo {
				lo = e.at
			}
			if first || e.at > hi {
				hi = e.at
			}
			first = false
		}
	}
	if q.count > 1 && hi > lo {
		if w := (hi - lo) / Time(q.count-1); w >= 1 {
			q.width = w
		} else {
			q.width = 1
		}
	}
	q.refile(2 * len(q.buckets))
}

// refile redistributes every pending event under the current width into n
// buckets, reusing the existing bucket arrays (and their capacity) when n
// is unchanged, and leaves the cursor on the earliest event's day. Event
// pointers stay valid throughout — only their bkt/idx coordinates move —
// so a caller holding peek's result may still remove it afterwards.
func (q *calQueue) refile(n int) {
	q.scratch = q.scratch[:0]
	var lo Time
	for bi, arr := range q.buckets {
		for i, e := range arr {
			if len(q.scratch) == 0 || e.at < lo {
				lo = e.at
			}
			q.scratch = append(q.scratch, e)
			arr[i] = nil
		}
		q.buckets[bi] = arr[:0]
	}
	if n != len(q.buckets) {
		q.buckets = make([][]*event, n)
		q.mask = n - 1
	}
	for i, e := range q.scratch {
		q.place(e)
		q.scratch[i] = nil
	}
	if q.count > 0 {
		q.setCursor(uint64(lo) / uint64(q.width))
	}
}
