// Package sim provides the deterministic discrete-event simulation engine
// that underlies every experiment in this repository. It replaces the role
// NS-2 plays in the paper: a virtual clock, an event scheduler with stable
// ordering, cancellable timers, and seeded pseudo-randomness.
//
// All simulated components (links, queues, protocol endpoints) schedule
// closures on a single Scheduler. Execution is single-threaded and fully
// deterministic: two events at the same virtual time fire in the order they
// were scheduled. Determinism is what makes the integration tests and the
// figure-regeneration harness reproducible down to the packet.
//
// The hot path is allocation-free in steady state: fired and stopped events
// return to a per-scheduler freelist and are recycled by later Schedule/At
// calls, and a Timer can be re-armed in place with Reset so periodic and
// retransmission timers reuse one event for their whole lifetime. Timer
// handles are generation-guarded, so a handle to a fired-and-recycled event
// safely reads as inactive instead of resurrecting someone else's event.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated time has
// no epoch and never relates to the wall clock.
type Time int64

// Common virtual durations, re-exported for readability at call sites.
const (
	Nanosecond  = Time(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a virtual Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Duration converts a time.Duration into a virtual Time span.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Sec reports t as a floating-point number of seconds.
func (t Time) Sec() float64 { return float64(t) / float64(Second) }

// String renders the timestamp in seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Sec()) }

// event is a scheduled closure. Ties between events with equal timestamps
// break on (akey, seq): akey is the virtual instant the event was armed (or
// its seq reserved) and seq the global arming order. In a single-scheduler
// run the akey comparison is redundant — seq is monotone in arming order,
// and arming instants are monotone in seq — so ordering degenerates to the
// insertion-stable (at, seq) order the goldens were pinned under. The akey
// matters for sharded runs: a cross-shard delivery is re-filed into the
// destination scheduler with a fresh local seq but carries the sender-side
// reservation instant as its akey, which reproduces exactly the tie-break a
// single serial scheduler would have computed from its global seq.
type event struct {
	at   Time
	akey Time
	seq  uint64
	do   func()
	// bkt and idx locate the event inside the calendar queue: the bucket
	// it is filed in and its position within that bucket. idx is -1 once
	// popped or removed. An event is pending if and only if idx >= 0:
	// Timer.Stop removes its event from the calendar immediately, so no
	// dead events ever drain through the run loop.
	bkt int
	idx int
	// gen counts how many times this event object has been recycled through
	// the scheduler freelist. A Timer snapshots gen when it arms; a mismatch
	// means the event fired (or was stopped) and now belongs to someone else,
	// so the handle is stale and must not touch it.
	gen uint64
}

// Scheduler is the event loop of the simulation. The zero value is not
// usable; construct with NewScheduler.
type Scheduler struct {
	cal     calQueue
	free    []*event // recycled events, reused by alloc
	now     Time
	seq     uint64
	stopped bool
	fired   uint64
	anchors map[any]any // per-scheduler singletons, see Anchor
}

// NewScheduler returns an empty scheduler positioned at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed so far, a cheap progress and
// load metric used by benchmarks.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many live events are queued. Stopped timers leave
// the calendar immediately and are not counted.
func (s *Scheduler) Pending() int { return s.cal.count }

// Anchor returns the per-scheduler singleton stored under key, creating it
// with mk on first use. Layers above the engine hang shared machinery off
// the scheduler that owns the experiment — a clock's slot driver, a
// session's receiver batch — without global registries that would leak
// state across concurrently running experiments. Keys follow the
// context.Value convention: an unexported comparable type per caller.
func (s *Scheduler) Anchor(key any, mk func() any) any {
	if s.anchors == nil {
		s.anchors = make(map[any]any)
	}
	v, ok := s.anchors[key]
	if !ok {
		v = mk()
		s.anchors[key] = v
	}
	return v
}

// FreeEvents reports how many recycled events sit on the freelist — steady
// state keeps this roughly constant while alloc traffic drops to zero.
func (s *Scheduler) FreeEvents() int { return len(s.free) }

// alloc produces a pending event at time t running f, reusing a recycled
// event when one is available, and files it into the calendar.
func (s *Scheduler) alloc(t Time, f func()) *event {
	return s.allocRes(t, f, s.Reserve())
}

// allocRes is alloc with an explicit tie-break reservation (already made).
func (s *Scheduler) allocRes(t Time, f func(), r Reservation) *event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at = t
		e.do = f
	} else {
		e = &event{at: t, do: f}
	}
	e.akey = r.Akey
	e.seq = r.Seq
	s.cal.insert(e)
	return e
}

// recycle returns a popped or removed event to the freelist. Bumping gen
// invalidates every Timer handle still pointing at the event; clearing do
// drops the closure so recycled events pin no captured state.
func (s *Scheduler) recycle(e *event) {
	e.gen++
	e.do = nil
	s.free = append(s.free, e)
}

// Reservation is a tie-break key handed out by Reserve: the virtual instant
// the reservation was made plus the scheduler-local arming sequence. Events
// with equal timestamps fire in (Akey, Seq) order.
type Reservation struct {
	Akey Time
	Seq  uint64
}

// Reserve hands out the next tie-break reservation without scheduling
// anything. Components that keep their own FIFO of future work (a link's
// in-flight delivery pipeline) reserve at the moment the work is created,
// then arm a single reusable timer per item via Timer.ResetReserved —
// firing order is then identical to scheduling every item individually.
func (s *Scheduler) Reserve() Reservation {
	seq := s.seq
	s.seq++
	return Reservation{Akey: s.now, Seq: seq}
}

// At schedules f to run at absolute virtual time t and returns a cancellable
// handle. Scheduling in the past panics: it is always a logic error in a
// discrete-event model. Hot paths that never cancel should use Schedule,
// which allocates no handle.
func (s *Scheduler) At(t Time, f func()) *Timer {
	e := s.alloc(t, f)
	return &Timer{sched: s, do: f, ev: e, gen: e.gen}
}

// After schedules f to run d after the current virtual time.
func (s *Scheduler) After(d Time, f func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, f)
}

// Schedule runs f at absolute virtual time t, fire-and-forget: no Timer
// handle is allocated, and the event comes from the freelist in steady
// state, so a Schedule costs zero allocations beyond f's own closure.
func (s *Scheduler) Schedule(t Time, f func()) {
	s.alloc(t, f)
}

// ScheduleKeyed schedules f at absolute time t with an explicit tie-break
// akey instead of the current clock. The shard coordinator uses it to file
// cross-shard deliveries under their sender-side reservation instant, so a
// delivery competes in the destination scheduler exactly as it would have
// in a single serial scheduler. akey must not exceed t.
func (s *Scheduler) ScheduleKeyed(t, akey Time, f func()) {
	r := Reservation{Akey: akey, Seq: s.seq}
	s.seq++
	s.allocRes(t, f, r)
}

// NextAt reports the timestamp of the earliest pending event, or false
// when the queue is empty — the probe the shard coordinator anchors each
// conservative window on.
func (s *Scheduler) NextAt() (Time, bool) { return s.cal.nextAt() }

// ScheduleAfter runs f a duration d after the current virtual time,
// fire-and-forget.
func (s *Scheduler) ScheduleAfter(d Time, f func()) {
	if d < 0 {
		d = 0
	}
	s.alloc(s.now+d, f)
}

// NewTimer returns an unarmed timer that runs f when armed with Reset. One
// NewTimer at setup plus Reset per cycle is the allocation-free replacement
// for repeated After calls.
func (s *Scheduler) NewTimer(f func()) *Timer {
	return &Timer{sched: s, do: f}
}

// MakeTimer returns an unarmed timer by value, for embedding in a component
// struct. The returned Timer must not be copied once armed.
func (s *Scheduler) MakeTimer(f func()) Timer {
	return Timer{sched: s, do: f}
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// RunUntil executes events in timestamp order until the queue drains, the
// clock passes limit, or Stop is called. The clock is left at the timestamp
// of the last executed event, or at limit when the horizon is reached with
// events still pending.
func (s *Scheduler) RunUntil(limit Time) { s.run(true, limit) }

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() { s.run(false, 0) }

// run is the single pop-execute-recycle loop behind Run and RunUntil, so
// both share freelist and clock semantics exactly.
func (s *Scheduler) run(bounded bool, limit Time) {
	s.stopped = false
	for s.cal.count > 0 && !s.stopped {
		e := s.cal.pop(bounded, limit)
		if e == nil {
			// Bounded mode: the earliest event lies past the horizon and
			// was left queued.
			s.now = limit
			return
		}
		s.now = e.at
		s.fired++
		do := e.do
		// Recycle before running: the event is immediately reusable by
		// anything do schedules, and the gen bump marks every outstanding
		// handle to it stale.
		s.recycle(e)
		do()
	}
	if bounded && s.now < limit && !s.stopped {
		s.now = limit
	}
}

// Timer is a handle to a scheduled event, allowing cancellation and in-place
// rescheduling — the shape TCP retransmission timers need. A timer created
// by NewTimer or MakeTimer starts unarmed and is armed with Reset; a timer
// returned by At or After is already armed with that call's function.
type Timer struct {
	sched *Scheduler
	do    func()
	ev    *event
	gen   uint64
}

// valid reports whether the handle still owns a pending event: the event
// must not have been recycled out from under it (gen match) and must still
// sit in the calendar.
func (t *Timer) valid() bool {
	return t != nil && t.ev != nil && t.gen == t.ev.gen && t.ev.idx >= 0
}

// Stop cancels the timer. It is safe to call on a nil handle, repeatedly,
// and after the event fired — a stale handle is a no-op, never a cancellation
// of whatever the recycled event runs now. It reports whether the event was
// still pending.
//
// The event is removed from the scheduler's calendar immediately and
// recycled — cancelled timers do not linger until their timestamp drains,
// so workloads that set and cancel many timers (TCP retransmission) keep
// Pending() proportional to live events only, and removal itself is O(1):
// a swap with the last event in the same calendar bucket.
func (t *Timer) Stop() bool {
	if !t.valid() {
		if t != nil {
			t.ev = nil
		}
		return false
	}
	t.sched.cal.remove(t.ev)
	t.sched.recycle(t.ev)
	t.ev = nil
	return true
}

// Active reports whether the event is still pending. Fired, stopped, and
// recycled events all read as inactive.
func (t *Timer) Active() bool { return t.valid() }

// When returns the virtual time the timer is set to fire at, or 0 when the
// timer is not Active — a stale handle never reads a recycled event's time.
func (t *Timer) When() Time {
	if !t.valid() {
		return 0
	}
	return t.ev.at
}

// Reset arms the timer to run its function d after the current virtual time.
// An active timer keeps its event object and is simply refiled into the
// calendar bucket owning the new timestamp — no allocation, two O(1) bucket
// operations; an inactive one is re-armed from the freelist. Negative d
// clamps to zero. The timer must have a function (from NewTimer, MakeTimer,
// At or After).
func (t *Timer) Reset(d Time) {
	if d < 0 {
		d = 0
	}
	t.ResetAt(t.sched.now + d)
}

// ResetAt arms the timer to run its function at absolute virtual time at,
// rescheduling in place when the timer is active. Like At, arming in the
// past panics.
func (t *Timer) ResetAt(at Time) {
	t.resetAt(at, t.sched.Reserve())
}

// ResetReserved arms the timer at absolute time at with a tie-break
// reservation previously obtained from Scheduler.Reserve. This lets a
// component that queues future work in its own FIFO fire each item exactly
// where an individually scheduled event would have fired — the deterministic
// replay guarantee survives the pooling.
func (t *Timer) ResetReserved(at Time, r Reservation) {
	t.resetAt(at, r)
}

func (t *Timer) resetAt(at Time, r Reservation) {
	if t.do == nil {
		panic("sim: Reset on a timer with no function")
	}
	if t.valid() {
		if at < t.sched.now {
			panic(fmt.Sprintf("sim: resetting to %v before now %v", at, t.sched.now))
		}
		t.sched.cal.remove(t.ev)
		t.ev.at = at
		t.ev.akey = r.Akey
		t.ev.seq = r.Seq
		t.sched.cal.insert(t.ev)
		return
	}
	e := t.sched.allocRes(at, t.do, r)
	t.ev = e
	t.gen = e.gen
}
