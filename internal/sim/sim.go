// Package sim provides the deterministic discrete-event simulation engine
// that underlies every experiment in this repository. It replaces the role
// NS-2 plays in the paper: a virtual clock, an event scheduler with stable
// ordering, cancellable timers, and seeded pseudo-randomness.
//
// All simulated components (links, queues, protocol endpoints) schedule
// closures on a single Scheduler. Execution is single-threaded and fully
// deterministic: two events at the same virtual time fire in the order they
// were scheduled. Determinism is what makes the integration tests and the
// figure-regeneration harness reproducible down to the packet.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated time has
// no epoch and never relates to the wall clock.
type Time int64

// Common virtual durations, re-exported for readability at call sites.
const (
	Nanosecond  = Time(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a virtual Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Duration converts a time.Duration into a virtual Time span.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Sec reports t as a floating-point number of seconds.
func (t Time) Sec() float64 { return float64(t) / float64(Second) }

// String renders the timestamp in seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Sec()) }

// event is a scheduled closure. seq breaks ties between events with equal
// timestamps so ordering is insertion-stable.
type event struct {
	at  Time
	seq uint64
	do  func()
	// idx is the heap index, maintained by eventHeap; -1 once popped or
	// removed. An event is pending if and only if idx >= 0: Timer.Stop
	// removes its event from the heap immediately, so no dead events ever
	// drain through the run loop.
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Scheduler is the event loop of the simulation. The zero value is not
// usable; construct with NewScheduler.
type Scheduler struct {
	heap    eventHeap
	now     Time
	seq     uint64
	stopped bool
	fired   uint64
}

// NewScheduler returns an empty scheduler positioned at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed so far, a cheap progress and
// load metric used by benchmarks.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many live events are queued. Stopped timers leave
// the heap immediately and are not counted.
func (s *Scheduler) Pending() int { return len(s.heap) }

// At schedules f to run at absolute virtual time t. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, f func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	e := &event{at: t, seq: s.seq, do: f}
	s.seq++
	heap.Push(&s.heap, e)
	return &Timer{sched: s, ev: e}
}

// After schedules f to run d after the current virtual time.
func (s *Scheduler) After(d Time, f func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, f)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// RunUntil executes events in timestamp order until the queue drains, the
// clock passes limit, or Stop is called. The clock is left at the timestamp
// of the last executed event, or at limit when the horizon is reached with
// events still pending.
func (s *Scheduler) RunUntil(limit Time) {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		e := s.heap[0]
		if e.at > limit {
			s.now = limit
			return
		}
		heap.Pop(&s.heap)
		s.now = e.at
		s.fired++
		e.do()
	}
	if s.now < limit && !s.stopped {
		s.now = limit
	}
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		e := heap.Pop(&s.heap).(*event)
		s.now = e.at
		s.fired++
		e.do()
	}
}

// Timer is a handle to a scheduled event, allowing cancellation and
// rescheduling — the shape TCP retransmission timers need.
type Timer struct {
	sched *Scheduler
	ev    *event
}

// Stop cancels the timer. It is safe to call on a nil handle, repeatedly,
// and after the event fired. It reports whether the event was still pending.
//
// The event is removed from the scheduler heap immediately — cancelled
// timers do not linger until their timestamp drains, so workloads that
// set and cancel many timers (TCP retransmission) keep Pending() and the
// per-operation O(log n) cost proportional to live events only.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.idx < 0 {
		return false
	}
	heap.Remove(&t.sched.heap, t.ev.idx)
	return true
}

// Active reports whether the event is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && t.ev.idx >= 0
}

// When returns the virtual time the timer is set to fire at. Valid only
// while Active.
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}
