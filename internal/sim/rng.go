package sim

import "math/rand/v2"

// RNG is the deterministic randomness source shared by simulated components.
// Every experiment builds exactly one RNG from an explicit seed, so two runs
// with the same seed produce identical packet traces. Components derive
// sub-streams with Fork to stay independent of each other's draw order.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent sub-stream. The child's sequence depends only
// on the parent's state at the moment of the fork, so adding draws to one
// component never perturbs another component forked earlier.
func (g *RNG) Fork() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0,n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// ExpFloat64 returns an exponentially distributed value with mean 1. The
// dynamics layer draws Poisson interarrival gaps from it (gap = Exp/rate).
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Jitter returns a uniform virtual duration in [0,max).
func (g *RNG) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(g.r.Int64N(int64(max)))
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
