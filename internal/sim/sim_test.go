package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(3*Second, func() { got = append(got, 3) })
	s.At(1*Second, func() { got = append(got, 1) })
	s.At(2*Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
}

func TestSchedulerStableTieBreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of insertion order at %d: %v", i, got[:i+1])
		}
	}
}

func TestSchedulerRunUntilStopsAtLimit(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1*Second, func() { fired++ })
	s.At(5*Second, func() { fired++ })
	s.RunUntil(2 * Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 2*Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	s.RunUntil(10 * Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after extending horizon", fired)
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var got []Time
	var tick func()
	tick = func() {
		got = append(got, s.Now())
		if len(got) < 5 {
			s.After(Second, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if len(got) != 5 {
		t.Fatalf("ticks = %d, want 5", len(got))
	}
	for i, at := range got {
		if at != Time(i)*Second {
			t.Fatalf("tick %d at %v, want %v", i, at, Time(i)*Second)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(2*Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(1*Second, func() {})
	})
	s.Run()
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(Second, func() {})
	s.Run()
	if tm.Active() {
		t.Fatal("timer should be inactive after firing")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Fatal("Stop on nil handle should report false")
	}
}

// Regression: a stopped timer must leave the heap immediately, not linger
// as a dead event until its timestamp drains. Cancel-heavy workloads (TCP
// retransmission timers rescheduled on every ACK) would otherwise balloon
// Pending() and pay O(log n) on a bloated heap for the whole run.
func TestTimerStopRemovesFromHeap(t *testing.T) {
	s := NewScheduler()
	var timers []*Timer
	for i := 0; i < 1000; i++ {
		// Far-future timers: without heap removal these would sit in the
		// heap until t=1000s even though every one is cancelled below.
		timers = append(timers, s.After(1000*Second, func() {}))
	}
	if got := s.Pending(); got != 1000 {
		t.Fatalf("Pending = %d before Stop, want 1000", got)
	}
	for i, tm := range timers {
		tm.Stop()
		if got, want := s.Pending(), 1000-i-1; got != want {
			t.Fatalf("Pending = %d after stopping %d timers, want %d", got, i+1, want)
		}
	}
	// The scheduler must still run cleanly with an emptied heap.
	fired := false
	s.At(Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("live event did not fire after mass cancellation")
	}
}

// Regression: stopping timers out of insertion order (the heap-middle case
// heap.Remove has to sift around) must preserve execution order of the
// survivors.
func TestTimerStopInterleavedKeepsOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	var cancel []*Timer
	for i := 0; i < 100; i++ {
		i := i
		tm := s.At(Time(i)*Millisecond, func() { got = append(got, i) })
		if i%3 == 0 {
			cancel = append(cancel, tm)
		}
	}
	// Stop every third timer, middle-out.
	for i := len(cancel)/2 - 1; i >= 0; i-- {
		cancel[i].Stop()
	}
	for i := len(cancel) / 2; i < len(cancel); i++ {
		cancel[i].Stop()
	}
	s.Run()
	want := 0
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled timer %d fired", v)
		}
		if v < want {
			t.Fatalf("events fired out of order: %v", got)
		}
		want = v
	}
}

func TestTimerWhen(t *testing.T) {
	s := NewScheduler()
	tm := s.At(7*Second, func() {})
	if tm.When() != 7*Second {
		t.Fatalf("When = %v, want 7s", tm.When())
	}
}

func TestStopHaltsLoop(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.At(1*Second, func() { count++; s.Stop() })
	s.At(2*Second, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt loop)", count)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Duration(250*time.Millisecond) != 250*Millisecond {
		t.Fatalf("Duration(250ms) = %v", Duration(250*time.Millisecond))
	}
	if got := (2500 * Millisecond).Sec(); got != 2.5 {
		t.Fatalf("Sec = %v, want 2.5", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500s" {
		t.Fatalf("String = %q", s)
	}
}

// Property: for any batch of (delay, id) pairs, execution order sorts by
// delay with insertion order breaking ties.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			at := Time(d) * Millisecond
			i := i
			s.At(at, func() { got = append(got, rec{at, i}) })
		}
		s.Run()
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
				return false
			}
		}
		return len(got) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must generate identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 16; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// A child forked at the same parent state yields the same stream
	// regardless of later parent draws.
	p1 := NewRNG(7)
	c1 := p1.Fork()
	want := make([]uint64, 8)
	for i := range want {
		want[i] = c1.Uint64()
	}

	p2 := NewRNG(7)
	c2 := p2.Fork()
	for i := 0; i < 100; i++ {
		p2.Uint64() // extra parent draws after the fork must not matter
	}
	for i := range want {
		if got := c2.Uint64(); got != want[i] {
			t.Fatalf("fork stream diverged at %d", i)
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		j := g.Jitter(10 * Millisecond)
		if j < 0 || j >= 10*Millisecond {
			t.Fatalf("jitter %v out of [0,10ms)", j)
		}
	}
	if g.Jitter(0) != 0 {
		t.Fatal("Jitter(0) must be 0")
	}
	if g.Jitter(-5) != 0 {
		t.Fatal("Jitter(neg) must be 0")
	}
}

func TestRNGIntNRange(t *testing.T) {
	g := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := g.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("IntN(7) covered %d values, want 7", len(seen))
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	var pump func()
	n := 0
	pump = func() {
		n++
		if n < b.N {
			s.After(Microsecond, pump)
		}
	}
	b.ResetTimer()
	s.After(0, pump)
	s.Run()
}

// BenchmarkSchedulerCancelHeavy models the TCP retransmit pattern: every
// tick arms a far-future timeout and cancels the previous one. Before
// Timer.Stop removed events from the heap, the dead timers accumulated and
// every operation paid O(log n) on a heap of mostly-cancelled events; with
// the fix the heap holds at most two events throughout.
func BenchmarkSchedulerCancelHeavy(b *testing.B) {
	s := NewScheduler()
	var rto *Timer
	var pump func()
	n, maxPending := 0, 0
	pump = func() {
		n++
		rto.Stop()
		rto = s.After(60*Second, func() {}) // timeout that never fires
		if p := s.Pending(); p > maxPending {
			maxPending = p
		}
		if n < b.N {
			s.After(Microsecond, pump)
		}
	}
	b.ResetTimer()
	s.After(0, pump)
	s.Run()
	if maxPending > 2 {
		b.Fatalf("cancelled timers leaked: max Pending = %d", maxPending)
	}
}

func BenchmarkSchedulerFanOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewScheduler()
		for j := 0; j < 1000; j++ {
			s.At(Time(j)*Microsecond, func() {})
		}
		s.Run()
	}
}
