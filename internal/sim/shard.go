package sim

// This file implements conservative time-window parallel simulation across
// a group of schedulers ("shards"). The model is classic CMB-style
// lookahead PDES specialized to this engine's determinism contract:
//
//   - The topology is partitioned so that every piece of mutable state
//     belongs to exactly one shard, and shards influence each other only
//     through CrossEdges — directed channels with a positive minimum
//     latency (the lookahead): an effect posted by the source shard at
//     virtual time t cannot take effect in the destination shard before
//     t + lookahead.
//
//   - Execution proceeds in windows. Each round the coordinator finds the
//     earliest pending event time `next` across all shards, sets the window
//     end to next + min-lookahead, and lets every shard run its local
//     events strictly before the window end in parallel. Any cross-shard
//     effect generated inside the window lands at or after the window end,
//     so no shard can miss an incoming effect: the windows are provably
//     causally safe, with no rollbacks and no speculation.
//
//   - At the window barrier the coordinator drains every edge's posted
//     envelopes and files them into the destination schedulers in
//     (time, akey, edge, post-order) order. The akey carried by an envelope
//     is the virtual instant the source shard created the effect — exactly
//     the reservation instant a single serial scheduler would have used as
//     its tie-break (see the event type) — so a sharded run fires events in
//     the same order a serial run over the merged workload would have,
//     independent of the number of shards or of goroutine interleaving.
//
// Every scheduling decision is taken either inside one shard (single
// goroutine) or by the coordinator between windows (all shards quiescent),
// so the parallel execution is deterministic by construction: the Parallel
// flag changes wall-clock time, never results.

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"time"
)

// ShardStats describes one shard's share of a ShardGroup run.
type ShardStats struct {
	// Events is the number of events the shard's scheduler fired.
	Events uint64
	// Windows is the number of window rounds the group executed (identical
	// across shards, duplicated here for self-contained reporting).
	Windows uint64
	// BarrierWait is wall-clock time the shard spent finished-but-waiting
	// for the slowest shard of each round, an imbalance measure.
	BarrierWait time.Duration
	// MailboxMax is the high-water mark of envelopes drained into this
	// shard at a single barrier.
	MailboxMax int
}

// envelope is one posted cross-shard effect.
type envelope struct {
	at   Time
	akey Time // virtual instant the source shard posted the effect
	post uint64
	edge int
	fn   func()
}

// CrossEdge is a directed mailbox between two shards with a minimum
// latency. Post may only be called from the source shard's events (or from
// the coordinator between windows); the group drains the buffer at every
// window barrier.
type CrossEdge struct {
	group     *ShardGroup
	id        int
	from, to  int
	lookahead Time
	buf       []envelope
	nextPost  uint64
}

// Lookahead reports the edge's minimum latency.
func (e *CrossEdge) Lookahead() Time { return e.lookahead }

// Post files fn to run in the destination shard at virtual time at. The
// conservative contract requires at >= post-instant + lookahead; Post
// panics otherwise, because a violation would silently break the window
// safety argument.
func (e *CrossEdge) Post(at Time, fn func()) {
	now := e.group.shards[e.from].Now()
	if at < now+e.lookahead {
		panic(fmt.Sprintf("sim: cross-edge post at %v violates lookahead %v from now %v", at, e.lookahead, now))
	}
	e.buf = append(e.buf, envelope{at: at, akey: now, post: e.nextPost, edge: e.id, fn: fn})
	e.nextPost++
}

// ShardGroup coordinates a set of schedulers executing one partitioned
// simulation in conservative time windows.
type ShardGroup struct {
	shards []*Scheduler
	edges  []*CrossEdge
	// Parallel selects goroutine-per-shard execution inside windows. Off,
	// the coordinator runs each shard's window on the calling goroutine —
	// results are identical either way; only wall-clock time differs.
	Parallel bool

	stats    []ShardStats
	minLook  Time
	barriers []func()

	// scratch for barrier drains, reused across rounds: one envelope slice
	// per destination shard.
	perDst [][]envelope

	// worker machinery, built lazily on the first parallel run.
	workers  bool
	start    []chan Time
	done     []chan struct{}
	finished []time.Time
}

// NewShardGroup returns a group of n fresh schedulers. n must be >= 1.
func NewShardGroup(n int) *ShardGroup {
	return NewShardGroupFrom(NewScheduler(), n)
}

// NewShardGroupFrom returns a group whose shard 0 is the given (possibly
// already populated) scheduler — how an experiment wired serially adopts
// sharded execution without rebuilding: existing agents stay on shard 0 and
// migrated ones move to the fresh shards 1..n-1.
func NewShardGroupFrom(s0 *Scheduler, n int) *ShardGroup {
	if n < 1 {
		panic("sim: shard group needs at least one shard")
	}
	g := &ShardGroup{shards: make([]*Scheduler, n), stats: make([]ShardStats, n)}
	g.shards[0] = s0
	for i := 1; i < n; i++ {
		g.shards[i] = NewScheduler()
	}
	return g
}

// AtBarrier registers fn to run at every window barrier, when all shards
// are quiescent, before posted envelopes are filed into their destinations.
// This is the safe point for cross-shard resource hand-off (the network
// layer copies packets between shard-local pools here).
func (g *ShardGroup) AtBarrier(fn func()) {
	g.barriers = append(g.barriers, fn)
}

// Shards reports the number of shards.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's scheduler.
func (g *ShardGroup) Shard(i int) *Scheduler { return g.shards[i] }

// Stats returns a copy of the per-shard statistics of the last (or
// current) run.
func (g *ShardGroup) Stats() []ShardStats {
	out := make([]ShardStats, len(g.stats))
	copy(out, g.stats)
	return out
}

// AddEdge declares that shard `from` influences shard `to` with minimum
// latency lookahead, which must be positive — a zero-lookahead cut would
// force zero-width windows.
func (g *ShardGroup) AddEdge(from, to int, lookahead Time) *CrossEdge {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: cross-edge lookahead %v must be positive", lookahead))
	}
	if from == to {
		panic("sim: cross-edge endpoints must differ")
	}
	e := &CrossEdge{group: g, id: len(g.edges), from: from, to: to, lookahead: lookahead}
	g.edges = append(g.edges, e)
	if g.minLook == 0 || lookahead < g.minLook {
		g.minLook = lookahead
	}
	return e
}

// nextPending returns the earliest pending event time across all shards.
func (g *ShardGroup) nextPending() (Time, bool) {
	var min Time
	found := false
	for _, s := range g.shards {
		if t, ok := s.NextAt(); ok && (!found || t < min) {
			min = t
			found = true
		}
	}
	return min, found
}

// RunUntil executes the partitioned simulation until every event with
// timestamp <= limit has fired, matching Scheduler.RunUntil semantics
// shard-locally. Windows never extend past limit, and each shard's clock
// ends at limit exactly as a serial RunUntil would leave it.
func (g *ShardGroup) RunUntil(limit Time) {
	if len(g.shards) == 1 && len(g.edges) == 0 {
		g.shards[0].RunUntil(limit)
		g.stats[0].Events = g.shards[0].Fired()
		return
	}
	if g.minLook <= 0 {
		panic("sim: multi-shard group has no cross edges; lookahead unknown")
	}
	// Workers live for this call only: leaking parked goroutines across
	// many short experiments (sweeps, benchmarks) would accumulate forever.
	defer g.Close()
	for {
		next, ok := g.nextPending()
		if !ok || next > limit {
			break
		}
		// The window [next, wend) is causally closed: effects generated
		// inside it arrive >= next + minLook == wend.
		wend := next + g.minLook
		if wend > limit {
			// Final stretch: run through limit inclusive, exactly like a
			// serial RunUntil. Envelopes generated here land after limit.
			g.runWindow(limit)
			g.drainEdges()
			continue
		}
		// Events at exactly wend may be affected by deliveries arriving at
		// wend, so the window is half-open: run through wend-1 inclusive.
		g.runWindow(wend - 1)
		g.drainEdges()
	}
	// Leave every shard clock at limit (serial RunUntil contract) and fold
	// final event counts into the stats.
	for i, s := range g.shards {
		s.RunUntil(limit)
		g.stats[i].Events = s.Fired()
	}
}

// runWindow runs every shard until `until` (inclusive), in parallel when
// configured, and increments the per-shard window counters.
func (g *ShardGroup) runWindow(until Time) {
	if g.Parallel && len(g.shards) > 1 {
		g.ensureWorkers()
		for i := 1; i < len(g.shards); i++ {
			g.start[i] <- until
		}
		g.shards[0].RunUntil(until)
		g.finished[0] = time.Now()
		for i := 1; i < len(g.shards); i++ {
			<-g.done[i]
		}
		end := time.Now()
		for i := range g.shards {
			if w := end.Sub(g.finished[i]); w > 0 {
				g.stats[i].BarrierWait += w
			}
		}
	} else {
		for _, s := range g.shards {
			s.RunUntil(until)
		}
	}
	for i := range g.stats {
		g.stats[i].Windows++
	}
}

// ensureWorkers starts one goroutine per shard beyond shard 0 (which runs
// on the coordinator's goroutine). Workers live until Close.
func (g *ShardGroup) ensureWorkers() {
	if g.workers {
		return
	}
	g.workers = true
	g.start = make([]chan Time, len(g.shards))
	g.done = make([]chan struct{}, len(g.shards))
	g.finished = make([]time.Time, len(g.shards))
	for i := 1; i < len(g.shards); i++ {
		i := i
		g.start[i] = make(chan Time)
		g.done[i] = make(chan struct{})
		go func() {
			for until := range g.start[i] {
				g.shards[i].RunUntil(until)
				g.finished[i] = time.Now()
				g.done[i] <- struct{}{}
			}
		}()
	}
}

// Close stops the worker goroutines. The group remains usable in
// non-parallel mode; a later parallel run restarts the workers.
func (g *ShardGroup) Close() {
	if !g.workers {
		return
	}
	for i := 1; i < len(g.shards); i++ {
		close(g.start[i])
	}
	g.workers = false
}

// drainEdges files every posted envelope into its destination scheduler.
// All shards are quiescent here, so this is the safe point for cross-shard
// hand-off. Per destination, envelopes are filed in (at, akey, edge, post)
// order; the destination scheduler assigns its local seqs in that order, so
// together with the carried akey the firing order is independent of shard
// count and goroutine scheduling. Envelopes bound for different shards
// never interact — seq assignment is per-scheduler — so destinations are
// independent and, in parallel mode, each destination's sort-and-file runs
// on its own goroutine: with hundreds of envelopes per barrier the sort is
// the coordinator's dominant cost, and it parallelizes perfectly.
func (g *ShardGroup) drainEdges() {
	for _, fn := range g.barriers {
		fn()
	}
	if g.perDst == nil {
		g.perDst = make([][]envelope, len(g.shards))
	}
	total := 0
	for _, e := range g.edges {
		if len(e.buf) == 0 {
			continue
		}
		g.perDst[e.to] = append(g.perDst[e.to], e.buf...)
		total += len(e.buf)
		for i := range e.buf {
			e.buf[i].fn = nil
		}
		e.buf = e.buf[:0]
	}
	if total == 0 {
		return
	}
	if g.Parallel && len(g.shards) > 1 {
		var wg sync.WaitGroup
		for dst := range g.perDst {
			if len(g.perDst[dst]) == 0 {
				continue
			}
			wg.Add(1)
			go func(dst int) {
				defer wg.Done()
				g.fileInto(dst)
			}(dst)
		}
		wg.Wait()
	} else {
		for dst := range g.perDst {
			if len(g.perDst[dst]) > 0 {
				g.fileInto(dst)
			}
		}
	}
}

// fileInto sorts destination dst's drained envelopes and schedules them on
// its shard, clearing the scratch slice for the next round. Only state
// owned by dst is touched, so concurrent calls for distinct destinations
// are independent.
func (g *ShardGroup) fileInto(dst int) {
	all := g.perDst[dst]
	// No two envelopes compare equal (post is unique per edge), so this
	// total order makes the sort's stability irrelevant: the merged order
	// is the one a serial scheduler would have used, whatever the sort
	// algorithm. Each edge's buffer arrives pre-sorted (constant link delay
	// over a monotone source clock), a run pattern pdqsort detects cheaply.
	slices.SortFunc(all, func(a, b envelope) int {
		if c := cmp.Compare(a.at, b.at); c != 0 {
			return c
		}
		if c := cmp.Compare(a.akey, b.akey); c != 0 {
			return c
		}
		if c := cmp.Compare(a.edge, b.edge); c != 0 {
			return c
		}
		return cmp.Compare(a.post, b.post)
	})
	sched := g.shards[dst]
	for i := range all {
		sched.ScheduleKeyed(all[i].at, all[i].akey, all[i].fn)
		all[i].fn = nil
	}
	if len(all) > g.stats[dst].MailboxMax {
		g.stats[dst].MailboxMax = len(all)
	}
	g.perDst[dst] = all[:0]
}
