package sim

import (
	"container/heap"
	"fmt"
	"testing"
)

// refEvent is one pending entry of the reference scheduler: a plain binary
// heap ordered by (at, seq), exactly the contract the calendar queue must
// reproduce.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestSchedulerMatchesReferenceHeap drives randomized schedule/stop/reset
// workloads through the calendar-queue scheduler and a reference binary
// heap side by side, asserting the calendar queue pops every event in
// exactly the heap's (time, seq) order. The workload mixes slot-periodic
// bursts (the simulator's dominant pattern), uniform noise, far-future
// outliers (forcing day advances and width retunes), heavy mid-run
// cancellation, and reschedules — from inside firing callbacks, which is
// where cursor-rewind bugs live.
func TestSchedulerMatchesReferenceHeap(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 20260808} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := NewScheduler()
			rng := NewRNG(seed)

			ref := &refHeap{}
			dead := map[uint64]bool{} // seqs stopped or superseded by a reset
			timers := map[int]*Timer{}
			liveSeq := map[int]uint64{} // timer id → its pending seq
			pending := []int{}          // ids with a pending entry, selection pool
			nextID := 0
			total, fired, stopped := 0, 0, 0
			const maxEvents = 4000

			removePending := func(id int) {
				for i, p := range pending {
					if p == id {
						pending[i] = pending[len(pending)-1]
						pending = pending[:len(pending)-1]
						return
					}
				}
				t.Fatalf("id %d not in pending set", id)
			}

			// schedule arms a fresh timer at `at` on both structures.
			var schedule func(at Time)
			schedule = func(at Time) {
				id := nextID
				nextID++
				total++
				tm := s.NewTimer(func() {
					// The calendar queue chose to fire `id` now: the
					// reference heap must agree it is the minimum.
					for dead[(*ref)[0].seq] {
						delete(dead, (*ref)[0].seq)
						heap.Pop(ref)
					}
					top := heap.Pop(ref).(refEvent)
					if top.id != id || top.at != s.Now() {
						t.Fatalf("pop order diverged: calendar fired id=%d at %d, heap expected id=%d at %d",
							id, s.Now(), top.id, top.at)
					}
					removePending(id)
					delete(liveSeq, id)
					fired++

					// Mutate mid-run with the same deterministic stream.
					switch r := rng.IntN(10); {
					case r < 4 && total < maxEvents:
						// Slot-periodic burst: a cluster in the next "slot".
						slotStart := s.Now() + Time(Millisecond)
						for j := 0; j < 4 && total < maxEvents; j++ {
							schedule(slotStart + Time(rng.IntN(int(Millisecond))))
						}
					case r < 6 && total < maxEvents:
						// Far-future outlier: stresses day advance + retune.
						schedule(s.Now() + Time(1+rng.IntN(int(10*Second))))
					case r < 8 && len(pending) > 0:
						// Stop a random pending timer.
						victim := pending[rng.IntN(len(pending))]
						timers[victim].Stop()
						dead[liveSeq[victim]] = true
						removePending(victim)
						delete(liveSeq, victim)
						stopped++
					case len(pending) > 0:
						// Reset a random pending timer to a fresh time.
						victim := pending[rng.IntN(len(pending))]
						at := s.Now() + Time(1+rng.IntN(int(Second)))
						dead[liveSeq[victim]] = true
						timers[victim].ResetAt(at)
						seq := s.seq - 1 // seq the reset just consumed
						liveSeq[victim] = seq
						heap.Push(ref, refEvent{at: at, seq: seq, id: victim})
					}
				})
				timers[id] = tm
				tm.ResetAt(at)
				seq := s.seq - 1
				liveSeq[id] = seq
				pending = append(pending, id)
				heap.Push(ref, refEvent{at: at, seq: seq, id: id})
			}

			// Seed load: slot bursts plus uniform noise, including exact
			// time ties (same at, distinct seq) to pin the tie-break.
			for slot := 0; slot < 20; slot++ {
				base := Time(slot) * Time(5*Millisecond)
				for j := 0; j < 8; j++ {
					schedule(base + Time(rng.IntN(int(5*Millisecond))))
				}
				schedule(base) // deliberate tie with slot start
				schedule(base)
			}
			for i := 0; i < 100; i++ {
				schedule(Time(rng.IntN(int(2 * Second))))
			}

			s.Run()
			if len(pending) != 0 {
				t.Fatalf("%d timers never fired", len(pending))
			}
			live := 0
			for _, e := range *ref {
				if !dead[e.seq] {
					live++
				}
			}
			if live != 0 {
				t.Fatalf("reference heap still holds %d live events after drain", live)
			}
			if fired+stopped != total {
				t.Fatalf("fired %d + stopped %d != scheduled %d", fired, stopped, total)
			}
		})
	}
}

// BenchmarkSchedulerSlotPeriodic models the simulator's dominant load: many
// sessions, each burst-scheduling a slot's worth of events and draining
// them before the next slot. The calendar queue's day width tunes itself to
// the intra-slot spacing, making insert and pop O(1) amortized where the
// binary heap paid O(log n) per operation on the burst.
func BenchmarkSchedulerSlotPeriodic(b *testing.B) {
	const sessions = 16
	const perSlot = 64
	slotDur := Time(250 * Millisecond)
	spacing := slotDur / perSlot

	s := NewScheduler()
	n := 0
	var runSlot func(sess int)
	runSlot = func(sess int) {
		start := s.Now()
		for j := 0; j < perSlot; j++ {
			s.Schedule(start+Time(j)*spacing+Time(sess), func() { n++ })
		}
		if n < b.N {
			s.Schedule(start+slotDur, func() { runSlot(sess) })
		}
	}
	b.ResetTimer()
	for sess := 0; sess < sessions; sess++ {
		sess := sess
		s.Schedule(Time(sess)*(slotDur/sessions), func() { runSlot(sess) })
	}
	s.Run()
}
