package sim

import "testing"

// Regression for the Timer-staleness bug: a handle to a fired event whose
// event object has been recycled into a *different* timer must read as
// inactive — Stop must not cancel the new owner's event, and When must not
// leak its timestamp.
func TestTimerPoolReuseCollision(t *testing.T) {
	s := NewScheduler()
	stale := s.At(Second, func() {})
	s.Run()
	if s.FreeEvents() == 0 {
		t.Fatal("fired event was not recycled")
	}

	// The recycled event is reissued to an unrelated timer.
	fired := false
	fresh := s.At(5*Second, func() { fired = true })

	if stale.Active() {
		t.Fatal("stale handle reads recycled event as active")
	}
	if got := stale.When(); got != 0 {
		t.Fatalf("stale When = %v, want 0 (must not read the new owner's time)", got)
	}
	if stale.Stop() {
		t.Fatal("stale Stop reported a cancellation")
	}
	if !fresh.Active() {
		t.Fatal("stale Stop cancelled the recycled event's new owner")
	}
	s.Run()
	if !fired {
		t.Fatal("new owner's event never fired after stale Stop")
	}
}

func TestEventFreelistRecyclesFiredAndStopped(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 100; i++ {
		s.Schedule(Time(i)*Millisecond, func() {})
	}
	tm := s.At(Second, func() {})
	tm.Stop()
	if got := s.FreeEvents(); got != 1 {
		t.Fatalf("FreeEvents = %d after Stop, want 1", got)
	}
	s.Run()
	if got := s.FreeEvents(); got == 0 {
		t.Fatal("fired events were not recycled")
	}
	// A fresh burst must drain the freelist instead of allocating.
	before := s.FreeEvents()
	for i := 0; i < before; i++ {
		s.ScheduleAfter(Millisecond, func() {})
	}
	if got := s.FreeEvents(); got != 0 {
		t.Fatalf("FreeEvents = %d after reusing burst, want 0", got)
	}
	s.Run()
}

func TestTimerResetReschedulesInPlace(t *testing.T) {
	s := NewScheduler()
	var at []Time
	tick := s.NewTimer(func() {})
	tm := s.At(Second, func() { at = append(at, s.Now()) })
	_ = tick
	tm.Reset(3 * Second) // still pending: reschedule in place
	if got := tm.When(); got != 3*Second {
		t.Fatalf("When after Reset = %v, want 3s", got)
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending = %d after in-place Reset, want 1", got)
	}
	s.Run()
	if len(at) != 1 || at[0] != 3*Second {
		t.Fatalf("fired at %v, want [3s]", at)
	}

	// Re-arming after fire reuses the recycled event: no net allocation.
	free := s.FreeEvents()
	tm.Reset(Second)
	if got := s.FreeEvents(); got != free-1 {
		t.Fatalf("FreeEvents = %d after re-arm, want %d (event from freelist)", got, free-1)
	}
	s.Run()
	if len(at) != 2 {
		t.Fatalf("re-armed timer fired %d times, want 2", len(at))
	}
}

func TestPeriodicTimerReusesOneEvent(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tick *Timer
	tick = s.NewTimer(func() {
		n++
		if n < 50 {
			tick.Reset(Millisecond)
		}
	})
	tick.Reset(Millisecond)
	s.Run()
	if n != 50 {
		t.Fatalf("ticks = %d, want 50", n)
	}
	// The whole loop cycles a single event object through fire → recycle →
	// re-arm, so at most one recycled event remains.
	if got := s.FreeEvents(); got != 1 {
		t.Fatalf("FreeEvents = %d after periodic loop, want 1", got)
	}
}

func TestResetReservedPreservesTieOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	// Reserve early, schedule competing same-time events afterwards, then
	// arm the reserved timer last: it must still fire first, exactly as if
	// it had been scheduled at reservation time.
	res := s.Reserve()
	s.Schedule(Second, func() { got = append(got, 2) })
	s.Schedule(Second, func() { got = append(got, 3) })
	tm := s.NewTimer(func() { got = append(got, 1) })
	tm.ResetReserved(Second, res)
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

// Run and RunUntil must share pop/recycle/clock semantics: identical
// workloads leave identical fired counts, clocks, and freelists.
func TestRunMatchesRunUntil(t *testing.T) {
	build := func() *Scheduler {
		s := NewScheduler()
		for i := 1; i <= 10; i++ {
			i := i
			s.Schedule(Time(i)*Second, func() {
				if i == 5 {
					s.ScheduleAfter(500*Millisecond, func() {})
				}
			})
		}
		return s
	}
	a, b := build(), build()
	a.Run()
	b.RunUntil(1000 * Second)
	if a.Fired() != b.Fired() {
		t.Fatalf("Fired: Run=%d RunUntil=%d", a.Fired(), b.Fired())
	}
	if a.Now() != b.Now() {
		// Run leaves the clock at the last event; RunUntil advances to the
		// horizon — that asymmetry is documented, so only check event state.
		if b.Now() != 1000*Second {
			t.Fatalf("RunUntil clock = %v, want horizon", b.Now())
		}
	}
	if a.FreeEvents() != b.FreeEvents() {
		t.Fatalf("FreeEvents: Run=%d RunUntil=%d", a.FreeEvents(), b.FreeEvents())
	}
	if a.Pending() != 0 || b.Pending() != 0 {
		t.Fatalf("Pending: Run=%d RunUntil=%d, want 0", a.Pending(), b.Pending())
	}
}

func TestScheduleZeroAllocSteadyState(t *testing.T) {
	s := NewScheduler()
	f := func() {}
	// Prime the freelist.
	for i := 0; i < 64; i++ {
		s.Schedule(Time(i), f)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		s.Schedule(s.Now(), f)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Run allocates %.1f objects in steady state, want 0", allocs)
	}
}
