package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// shardHarness runs one randomized message-passing workload over M logical
// nodes, parameterized by how sends are routed — directly into one serial
// scheduler, or across a ShardGroup. Each node owns a seeded RNG and a
// trace of (time, value) activations; node behavior depends only on its
// own state and the arrival order of its messages, so every execution that
// preserves per-node arrival order must produce identical traces.
type shardNode struct {
	rng    *rand.Rand
	hash   uint64
	budget int // emissions left; bounds the supercritical branching
	trace  []string
}

const (
	shardTestNodes  = 12
	shardTestLook   = 50 * Microsecond
	shardTestLimit  = 20 * Millisecond
	shardTestBudget = 300
)

type shardHarness struct {
	nodes []*shardNode
	now   func(i int) Time
	send  func(from, to int, at Time, payload uint64)
	sched func(i int, at Time, fn func())
}

func newNodes(seed int64) []*shardNode {
	nodes := make([]*shardNode, shardTestNodes)
	for i := range nodes {
		nodes[i] = &shardNode{rng: rand.New(rand.NewSource(seed + int64(i))), budget: shardTestBudget}
	}
	return nodes
}

// activate is one node event: mix the payload, log it, and emit a bounded
// amount of follow-on work.
func (h *shardHarness) activate(i int, payload uint64) {
	n := h.nodes[i]
	now := h.now(i)
	n.hash = n.hash*1099511628211 + payload + uint64(now)
	n.trace = append(n.trace, fmt.Sprintf("%d@%d:%d", payload, now, n.hash))
	// Each activation spawns >1 follow-on event in expectation, so without a
	// bound the workload grows exponentially toward the horizon. The per-node
	// budget keeps it finite; it decrements in arrival order, which the
	// determinism contract makes identical across serial and sharded runs.
	if now > shardTestLimit-Millisecond || n.budget <= 0 {
		return // wind down near the horizon so the workload drains
	}
	n.budget--
	// A self event at a random offset.
	if n.rng.Intn(3) > 0 {
		d := Time(1+n.rng.Intn(100)) * Microsecond
		h.sched(i, now+d, func() { h.activate(i, payload+1) })
	}
	// A message to a random other node, at least one lookahead away.
	if n.rng.Intn(2) == 0 {
		to := n.rng.Intn(len(h.nodes) - 1)
		if to >= i {
			to++
		}
		at := now + shardTestLook + Time(n.rng.Int63n(int64(200*Microsecond)))
		v := n.rng.Uint64() % 1000
		h.send(i, to, at, v)
	}
}

func (h *shardHarness) seedInitial() {
	for i := range h.nodes {
		i := i
		t0 := Time(i+1) * 17 * Microsecond
		h.sched(i, t0, func() { h.activate(i, uint64(i)) })
	}
}

// runSerial executes the workload on one scheduler: the serial reference.
func runSerial(seed int64) []*shardNode {
	s := NewScheduler()
	h := &shardHarness{nodes: newNodes(seed)}
	h.now = func(int) Time { return s.Now() }
	h.sched = func(_ int, at Time, fn func()) { s.ScheduleKeyed(at, s.Now(), fn) }
	h.send = func(_, to int, at Time, payload uint64) {
		s.ScheduleKeyed(at, s.Now(), func() { h.activate(to, payload) })
	}
	h.seedInitial()
	s.RunUntil(shardTestLimit)
	return h.nodes
}

// runSharded executes the same workload over k shards (node i on shard
// i%k) with a full mesh of cross edges.
func runSharded(seed int64, k int, parallel bool) ([]*shardNode, *ShardGroup) {
	g := NewShardGroup(k)
	g.Parallel = parallel
	edges := make([][]*CrossEdge, k)
	for a := 0; a < k; a++ {
		edges[a] = make([]*CrossEdge, k)
		for b := 0; b < k; b++ {
			if a != b {
				edges[a][b] = g.AddEdge(a, b, shardTestLook)
			}
		}
	}
	shardOf := func(i int) int { return i % k }
	h := &shardHarness{nodes: newNodes(seed)}
	h.now = func(i int) Time { return g.Shard(shardOf(i)).Now() }
	h.sched = func(i int, at Time, fn func()) {
		s := g.Shard(shardOf(i))
		s.ScheduleKeyed(at, s.Now(), fn)
	}
	h.send = func(from, to int, at Time, payload uint64) {
		fs, ts := shardOf(from), shardOf(to)
		fn := func() { h.activate(to, payload) }
		if fs == ts {
			s := g.Shard(fs)
			s.ScheduleKeyed(at, s.Now(), fn)
			return
		}
		edges[fs][ts].Post(at, fn)
	}
	h.seedInitial()
	g.RunUntil(shardTestLimit)
	g.Close()
	return h.nodes, g
}

// TestShardGroupMatchesSerial is the randomized differential test: the
// same seeded workload must leave byte-identical per-node traces whether
// it runs on one serial scheduler or partitioned across 2, 3, or 4 shards,
// with and without goroutine parallelism.
func TestShardGroupMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 2003} {
		want := runSerial(seed)
		for _, k := range []int{2, 3, 4} {
			for _, parallel := range []bool{false, true} {
				got, _ := runSharded(seed, k, parallel)
				for i := range want {
					if want[i].hash != got[i].hash {
						t.Fatalf("seed %d shards %d parallel %v: node %d hash %d != serial %d\nserial trace: %v\nsharded trace: %v",
							seed, k, parallel, i, got[i].hash, want[i].hash, want[i].trace, got[i].trace)
					}
					for j := range want[i].trace {
						if j >= len(got[i].trace) || want[i].trace[j] != got[i].trace[j] {
							t.Fatalf("seed %d shards %d parallel %v: node %d trace diverges at %d", seed, k, parallel, i, j)
						}
					}
				}
			}
		}
	}
}

// TestShardGroupStats sanity-checks the per-shard observability counters.
func TestShardGroupStats(t *testing.T) {
	_, g := runSharded(42, 3, true)
	stats := g.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats len = %d, want 3", len(stats))
	}
	var events uint64
	for i, st := range stats {
		events += st.Events
		if st.Windows == 0 {
			t.Fatalf("shard %d ran no windows", i)
		}
	}
	if events == 0 {
		t.Fatal("no events fired across shards")
	}
	var total uint64
	for i := 0; i < g.Shards(); i++ {
		total += g.Shard(i).Fired()
	}
	if events != total {
		t.Fatalf("stats events %d != scheduler fired %d", events, total)
	}
}

// TestCrossEdgePostLookaheadViolation verifies the conservative contract
// is enforced, not assumed.
func TestCrossEdgePostLookaheadViolation(t *testing.T) {
	g := NewShardGroup(2)
	e := g.AddEdge(0, 1, Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("posting inside the lookahead horizon should panic")
		}
	}()
	e.Post(Microsecond, func() {})
}

// TestShardGroupSerialFallback: a one-shard group must behave exactly like
// its underlying scheduler.
func TestShardGroupSerialFallback(t *testing.T) {
	g := NewShardGroup(1)
	fired := 0
	g.Shard(0).Schedule(Millisecond, func() { fired++ })
	g.RunUntil(Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if got := g.Stats()[0].Events; got != 1 {
		t.Fatalf("stats events = %d, want 1", got)
	}
}

// TestShardGroupBarrierAccounting: parallel runs should record wall-clock
// barrier waits without perturbing results (smoke only — wall clock is
// nondeterministic).
func TestShardGroupBarrierAccounting(t *testing.T) {
	_, g := runSharded(7, 2, true)
	for _, st := range g.Stats() {
		if st.BarrierWait < 0 || st.BarrierWait > time.Minute {
			t.Fatalf("implausible barrier wait %v", st.BarrierWait)
		}
	}
}
