package sigma

import (
	"testing"

	"deltasigma/internal/delta"
	"deltasigma/internal/keys"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

const (
	slotDur = 100 * sim.Millisecond
	grp     = packet.MulticastBase
	nGroups = 4
)

type rig struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	fabric *mcast.Fabric
	src    *netsim.Host
	edge   *mcast.Router
	ctl    *Controller
	h1, h2 *netsim.Host
	sender *delta.LayeredSender
	ann    *Announcer
	keySrc *keys.Source
	slots  map[uint32]*delta.LayeredSlot
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(42)
	net := netsim.New(sched, rng)
	fabric := mcast.NewFabric(net)
	r := &rig{sched: sched, net: net, fabric: fabric, slots: make(map[uint32]*delta.LayeredSlot)}

	r.src = net.AddHost("src")
	r.edge = mcast.NewRouter(net, fabric, "edge")
	r.h1 = net.AddHost("h1")
	r.h2 = net.AddHost("h2")

	const rate, q = 10_000_000, 1 << 20
	net.Connect(r.src, r.edge, rate, 2*sim.Millisecond, q)
	net.Connect(r.edge, r.h1, rate, 2*sim.Millisecond, q)
	net.Connect(r.edge, r.h2, rate, 2*sim.Millisecond, q)
	net.ComputeRoutes()

	r.edge.AttachLocal(r.h1)
	r.edge.AttachLocal(r.h2)
	r.ctl = NewController(r.edge, DefaultConfig(slotDur))

	for g := 0; g < nGroups; g++ {
		fabric.SetSource(packet.Group(grp, g), r.src.ID())
	}
	r.keySrc = keys.NewSource(keys.DefaultBits, rng.Fork().Uint64)
	r.sender = delta.NewLayeredSender(nGroups, r.keySrc)
	r.ann = NewAnnouncer(r.src, 1, grp, nGroups, 2)
	return r
}

// makeSlot precomputes sender keys for slot s (no upgrades unless authTo>0)
// and announces them.
func (r *rig) makeSlot(s uint32, authTo int) *delta.LayeredSlot {
	auth := make([]bool, nGroups)
	for g := 2; g <= authTo; g++ {
		auth[g-1] = true
	}
	counts := make([]int, nGroups)
	for i := range counts {
		counts[i] = 2
	}
	ls := r.sender.BeginSlot(s, auth, counts)
	r.slots[s] = ls
	r.ann.Announce(s, ls.Keys.Tuples(grp))
	return ls
}

// sendData transmits the slot's scheduled packets for groups 1..upTo.
func (r *rig) sendData(s uint32, upTo int) {
	ls := r.slots[s]
	for g := 1; g <= upTo; g++ {
		for p := 1; p <= 2; p++ {
			comp, dec := ls.Fields(g)
			pkt := packet.New(r.src.Addr(), packet.Group(grp, g-1), 576, &packet.FLIDHeader{
				Session: 1, Group: uint8(g), Slot: s, Seq: uint16(p), Count: 2,
				HasDelta: true, Component: comp, Decrease: dec,
			})
			pkt.UID = r.net.NewUID()
			r.src.Send(pkt)
		}
	}
}

func flidCounter(h *netsim.Host) *int {
	n := new(int)
	h.Handle(packet.ProtoFLID, func(pkt *packet.Packet) { *n++ })
	return n
}

func TestAnnounceInterceptedAndStored(t *testing.T) {
	r := newRig(t)
	// Put the edge on the minimal group's tree via a session join.
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(0, func() { cl.SessionJoin(grp) })
	r.sched.At(10*sim.Millisecond, func() { r.makeSlot(2, 0) })
	r.sched.RunUntil(50 * sim.Millisecond)

	if !r.ctl.HasKeysFor(grp, 2) {
		t.Fatal("controller did not store announced keys")
	}
	if !r.ctl.HasKeysFor(grp+3, 2) {
		t.Fatal("tuples for higher groups missing")
	}
	// Repetition copies dedup: two packets sent, one logical announce.
	if r.ctl.AnnouncesIntercepted != 1 {
		t.Fatalf("intercepted %d logical announces, want 1", r.ctl.AnnouncesIntercepted)
	}
	if r.ann.PacketsSent != 2 {
		t.Fatalf("announcer sent %d packets, want z=2", r.ann.PacketsSent)
	}
}

func TestAnnounceSurvivesLossOfOneCopy(t *testing.T) {
	r := newRig(t)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(0, func() { cl.SessionJoin(grp) })
	// Drop the first copy by sending it before the edge joins the tree;
	// the second copy goes once joined.
	r.sched.At(10*sim.Millisecond, func() {
		ls := r.sender.BeginSlot(3, make([]bool, nGroups), []int{2, 2, 2, 2})
		r.slots[3] = ls
		tuples := ls.Keys.Tuples(grp)
		// Simulate FEC: only one of the two copies arrives (send just one).
		hdr := &packet.KeyAnnounce{Session: 1, Slot: 3, FECIndex: 1, FECTotal: 2, Tuples: tuples}
		pkt := packet.New(r.src.Addr(), grp, 0, hdr)
		pkt.Alert = true
		r.src.Send(pkt)
	})
	r.sched.RunUntil(50 * sim.Millisecond)
	if !r.ctl.HasKeysFor(grp, 3) {
		t.Fatal("a single surviving FEC copy should suffice")
	}
}

func TestSessionJoinGrantsGraceThenPenalty(t *testing.T) {
	r := newRig(t)
	got := flidCounter(r.h1)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(0, func() { cl.SessionJoin(grp) })

	// Data for the minimal group in every slot; the receiver never submits
	// a key.
	for s := uint32(0); s <= 6; s++ {
		s := s
		r.sched.At(sim.Time(s)*slotDur+30*sim.Millisecond, func() {
			r.makeSlot(s, 0)
			r.sendData(s, 1)
		})
	}
	r.sched.RunUntil(320 * sim.Millisecond)
	inGrace := *got
	if inGrace == 0 {
		t.Fatal("keyless new receiver should get the minimal group during grace")
	}
	r.sched.RunUntil(700 * sim.Millisecond)
	if *got != inGrace {
		t.Fatalf("keyless receiver still served after grace: %d -> %d", inGrace, *got)
	}
}

func TestValidKeyGrantsAccess(t *testing.T) {
	r := newRig(t)
	got := flidCounter(r.h1)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(0, func() { cl.SessionJoin(grp) })
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 0) })
	// Subscribe with the genuine top key for slot 5 of group 1.
	r.sched.At(20*sim.Millisecond, func() {
		cl.Subscribe(5, []packet.AddrKey{{Addr: grp, Key: r.slots[5].Keys.Top[0]}})
	})
	// Send minimal-group data during slot 5 (t in [500,600) ms).
	r.sched.At(530*sim.Millisecond, func() { r.sendData(5, 1) })
	r.sched.RunUntil(620 * sim.Millisecond)
	if *got != 2 {
		t.Fatalf("granted receiver got %d packets, want 2", *got)
	}
	if r.ctl.GrantsIssued == 0 {
		t.Fatal("no grant recorded")
	}
}

func TestGrantIsSlotScoped(t *testing.T) {
	r := newRig(t)
	got := flidCounter(r.h1)
	cl := NewClient(r.h1, r.edge.Addr())
	// No session-join: straight to a keyed grant, no grace in the way.
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 0); r.makeSlot(6, 0) })
	r.sched.At(20*sim.Millisecond, func() {
		cl.Subscribe(5, []packet.AddrKey{{Addr: grp, Key: r.slots[5].Keys.Top[0]}})
	})
	// The first packets ever delivered to this interface open the grace
	// window; burn it off during slots 0..4 with no traffic... grace opens
	// at first delivery, so instead verify: data in slot 5 delivered, data
	// in slot 8 (grace expired, no grant) blocked.
	r.sched.At(530*sim.Millisecond, func() { r.sendData(5, 1) })
	r.sched.RunUntil(620 * sim.Millisecond)
	inSlot5 := *got
	if inSlot5 != 2 {
		t.Fatalf("slot-5 delivery got %d, want 2", inSlot5)
	}
	r.sched.At(830*sim.Millisecond, func() { r.sendData(6, 1) }) // slot 8, grant only for 5
	r.sched.RunUntil(900 * sim.Millisecond)
	if *got != inSlot5 {
		t.Fatalf("packets delivered outside granted slot: %d -> %d", inSlot5, *got)
	}
}

func TestInvalidKeyDeniedAndTallied(t *testing.T) {
	r := newRig(t)
	got := flidCounter(r.h1)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 0) })
	r.sched.At(20*sim.Millisecond, func() {
		// Guess 20 distinct wrong keys for group 2.
		real := r.slots[5].Keys.Top[1]
		pairs := make([]packet.AddrKey, 0, 20)
		for i := 0; i < 20; i++ {
			k := keys.Key(i + 1)
			if k == real {
				k = keys.Key(40_000 + i)
			}
			pairs = append(pairs, packet.AddrKey{Addr: grp + 1, Key: k})
		}
		cl.Subscribe(5, pairs)
	})
	r.sched.At(530*sim.Millisecond, func() { r.sendData(5, 2) })
	r.sched.RunUntil(650 * sim.Millisecond)
	if *got != 0 {
		t.Fatalf("denied receiver got %d packets", *got)
	}
	if n := r.ctl.GuessCount(grp+1, r.h1.Addr()); n != 20 {
		t.Fatalf("guess tally = %d, want 20", n)
	}
	if r.ctl.InvalidKeys != 20 {
		t.Fatalf("InvalidKeys = %d, want 20", r.ctl.InvalidKeys)
	}
}

func TestSubscriptionAckedAndRetransmitUntilAck(t *testing.T) {
	r := newRig(t)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 0) })
	r.sched.At(20*sim.Millisecond, func() {
		cl.Subscribe(5, []packet.AddrKey{{Addr: grp, Key: r.slots[5].Keys.Top[0]}})
	})
	r.sched.RunUntil(300 * sim.Millisecond)
	if cl.AcksReceived != 1 {
		t.Fatalf("acks = %d, want 1", cl.AcksReceived)
	}
	if cl.Pending() != 0 {
		t.Fatal("pending subscription not cleared by ack")
	}
	if cl.Retransmits != 0 {
		t.Fatalf("retransmits = %d, want 0 on a clean path", cl.Retransmits)
	}
}

func TestRetransmitWithoutAckGivesUp(t *testing.T) {
	r := newRig(t)
	// Client pointed at a black-hole address: no acks ever come.
	cl := NewClient(r.h2, r.h1.Addr())
	cl.MaxTries = 3
	cl.RTO = 20 * sim.Millisecond
	r.sched.At(0, func() {
		cl.Subscribe(1, []packet.AddrKey{{Addr: grp, Key: 1}})
	})
	r.sched.RunUntil(sim.Second)
	if cl.Retransmits != 2 {
		t.Fatalf("retransmits = %d, want MaxTries-1 = 2", cl.Retransmits)
	}
	if cl.Pending() != 0 {
		t.Fatal("gave-up subscription should be dropped")
	}
}

func TestUnsubscribeDoesNotHarmOtherInterface(t *testing.T) {
	r := newRig(t)
	got1 := flidCounter(r.h1)
	got2 := flidCounter(r.h2)
	cl1 := NewClient(r.h1, r.edge.Addr())
	cl2 := NewClient(r.h2, r.edge.Addr())
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 0) })
	r.sched.At(20*sim.Millisecond, func() {
		key := r.slots[5].Keys.Top[0]
		cl1.Subscribe(5, []packet.AddrKey{{Addr: grp, Key: key}})
		cl2.Subscribe(5, []packet.AddrKey{{Addr: grp, Key: key}})
	})
	r.sched.At(520*sim.Millisecond, func() { cl1.Unsubscribe([]packet.Addr{grp}) })
	r.sched.At(560*sim.Millisecond, func() { r.sendData(5, 1) })
	r.sched.RunUntil(650 * sim.Millisecond)
	if *got1 != 0 {
		t.Fatalf("unsubscribed interface got %d packets", *got1)
	}
	if *got2 != 2 {
		t.Fatalf("other interface got %d packets, want 2", *got2)
	}
}

func TestDecreaseAndIncreaseKeysOpen(t *testing.T) {
	r := newRig(t)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 3) }) // upgrades authorized to group 3
	r.sched.At(20*sim.Millisecond, func() {
		ks := r.slots[5].Keys
		cl.Subscribe(5, []packet.AddrKey{
			{Addr: grp, Key: ks.Dec[0]},     // decrease key for group 1
			{Addr: grp + 1, Key: ks.Dec[1]}, // decrease key for group 2
			{Addr: grp + 2, Key: ks.Inc[2]}, // increase key for group 3
		})
	})
	r.sched.RunUntil(100 * sim.Millisecond)
	if r.ctl.GrantsIssued != 3 {
		t.Fatalf("grants = %d, want 3", r.ctl.GrantsIssued)
	}
}

func TestIncreaseKeyRejectedWithoutAuthorization(t *testing.T) {
	r := newRig(t)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 0) }) // no upgrades
	r.sched.At(20*sim.Millisecond, func() {
		ks := r.slots[5].Keys
		// ε_3 would be α_2; without authorization the tuple carries no
		// increase key, so α_2 must not open group 3.
		cl.Subscribe(5, []packet.AddrKey{{Addr: grp + 2, Key: ks.Top[1]}})
	})
	r.sched.RunUntil(100 * sim.Millisecond)
	if r.ctl.GrantsIssued != 0 {
		t.Fatal("unauthorized increase key granted access")
	}
}

func TestNewGroupGraceOpensOnFirstDelivery(t *testing.T) {
	r := newRig(t)
	got := flidCounter(r.h1)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 0) })
	r.sched.At(20*sim.Millisecond, func() {
		cl.Subscribe(5, []packet.AddrKey{{Addr: grp, Key: r.slots[5].Keys.Top[0]}})
	})
	// First delivery in slot 5 opens the grace window; data in slots 6 and
	// 7 still flows (grace covers the receiver's key-less catch-up), data
	// in slot 8 does not.
	r.sched.At(530*sim.Millisecond, func() { r.sendData(5, 1) })
	for s := uint32(6); s <= 8; s++ {
		s := s
		r.sched.At(sim.Time(s)*slotDur+30*sim.Millisecond, func() {
			r.makeSlot(s, 0)
			r.sendData(s, 1)
		})
	}
	r.sched.RunUntil(700 * sim.Millisecond)
	if *got != 4 {
		t.Fatalf("got %d packets during slot 5-6 window, want 4", *got)
	}
	r.sched.RunUntil(sim.Second)
	// Slot 7 data arrives at ~733ms, still within grace started ~537ms
	// (grace = 2 slots = 200ms → until ~737ms); slot 8 data at ~833ms is
	// blocked.
	if *got != 6 {
		t.Fatalf("got %d packets total, want 6", *got)
	}
}

func TestECNScrubOnLocalDelivery(t *testing.T) {
	r := newRig(t)
	r.ctl.EnableECNScrub(keys.NewSource(keys.DefaultBits, sim.NewRNG(77).Uint64))
	var comps []keys.Key
	r.h1.Handle(packet.ProtoFLID, func(pkt *packet.Packet) {
		comps = append(comps, pkt.Header.(*packet.FLIDHeader).Component)
	})
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(0, func() { cl.SessionJoin(grp) })
	r.sched.At(30*sim.Millisecond, func() {
		ls := r.makeSlot(0, 0)
		comp, _ := ls.Fields(1)
		pkt := packet.New(r.src.Addr(), grp, 576, &packet.FLIDHeader{
			Session: 1, Group: 1, Slot: 0, Seq: 1, Count: 2, HasDelta: true, Component: comp,
		})
		pkt.ECN = true // CE-marked upstream
		r.src.Send(pkt)
		comp2, _ := ls.Fields(1)
		pkt2 := packet.New(r.src.Addr(), grp, 576, &packet.FLIDHeader{
			Session: 1, Group: 1, Slot: 0, Seq: 2, Count: 2, HasDelta: true, Component: comp2,
		})
		r.src.Send(pkt2)
		r.slots[0] = ls
	})
	r.sched.RunUntil(200 * sim.Millisecond)
	if len(comps) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(comps))
	}
	// The XOR of delivered components must NOT reconstruct the top key,
	// because the marked packet's component was scrubbed.
	if keys.XOR(comps...) == r.slots[0].Keys.Top[0] {
		t.Fatal("scrub failed: receiver can still reconstruct the key")
	}
}

func TestInterfaceKeyingBlocksCollusion(t *testing.T) {
	r := newRig(t)
	ik := r.ctl.EnableInterfaceKeying(grp, nGroups, keys.NewSource(keys.DefaultBits, sim.NewRNG(88).Uint64))

	// Both hosts receive the minimal group during grace.
	var comps1, comps2 []keys.Key
	r.h1.Handle(packet.ProtoFLID, func(pkt *packet.Packet) {
		comps1 = append(comps1, pkt.Header.(*packet.FLIDHeader).Component)
	})
	r.h2.Handle(packet.ProtoFLID, func(pkt *packet.Packet) {
		comps2 = append(comps2, pkt.Header.(*packet.FLIDHeader).Component)
	})
	cl1 := NewClient(r.h1, r.edge.Addr())
	cl2 := NewClient(r.h2, r.edge.Addr())
	r.sched.At(0, func() { cl1.SessionJoin(grp); cl2.SessionJoin(grp) })
	r.sched.At(230*sim.Millisecond, func() {
		r.makeSlot(2, 0)
		r.sendData(2, 1)
	})
	r.sched.RunUntil(290 * sim.Millisecond)
	if len(comps1) != 2 || len(comps2) != 2 {
		t.Fatalf("deliveries: h1=%d h2=%d, want 2 each", len(comps1), len(comps2))
	}

	lower1 := keys.XOR(comps1...)
	lower2 := keys.XOR(comps2...)
	if lower1 == lower2 {
		t.Fatal("interfaces reconstructed identical lower keys; alteration inactive")
	}
	stored := storedKeys{top: r.slots[2].Keys.Top[0]}
	if !ik.Validate(r.h1.Addr(), grp, 2, lower1, stored) {
		t.Fatal("h1's own lower key rejected")
	}
	if ik.Validate(r.h2.Addr(), grp, 2, lower1, stored) {
		t.Fatal("collusion: h1's key accepted for h2")
	}
	if !ik.Validate(r.h2.Addr(), grp, 2, lower2, stored) {
		t.Fatal("h2's own lower key rejected")
	}
}

func TestControlIgnoresNonLocalHosts(t *testing.T) {
	r := newRig(t)
	outsider := r.net.AddHost("outsider")
	r.net.Connect(outsider, r.edge, 1_000_000, sim.Millisecond, 1<<20)
	r.net.ComputeRoutes()
	// outsider is connected but never attached as a local interface.
	cl := NewClient(outsider, r.edge.Addr())
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(5, 0) })
	r.sched.At(20*sim.Millisecond, func() {
		cl.Subscribe(5, []packet.AddrKey{{Addr: grp, Key: r.slots[5].Keys.Top[0]}})
	})
	r.sched.RunUntil(200 * sim.Millisecond)
	if r.ctl.GrantsIssued != 0 {
		t.Fatal("non-local host got a grant")
	}
}

func TestStaleSlotSubscriptionRejected(t *testing.T) {
	r := newRig(t)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(5*sim.Millisecond, func() { r.makeSlot(1, 0) })
	// Wait until slot 3, then submit the (correct) key for slot 1.
	r.sched.At(330*sim.Millisecond, func() {
		cl.Subscribe(1, []packet.AddrKey{{Addr: grp, Key: r.slots[1].Keys.Top[0]}})
	})
	r.sched.RunUntil(500 * sim.Millisecond)
	if r.ctl.GrantsIssued != 0 {
		t.Fatal("stale-slot key granted access")
	}
}

func TestSessionJoinRequiresMulticastAddr(t *testing.T) {
	r := newRig(t)
	cl := NewClient(r.h1, r.edge.Addr())
	r.sched.At(0, func() { cl.SessionJoin(packet.Addr(5)) }) // bogus
	r.sched.RunUntil(50 * sim.Millisecond)
	if len(r.ctl.ifaces) != 0 {
		ifc := r.ctl.ifaces[r.h1.Addr()]
		if ifc != nil && len(ifc.grants) != 0 {
			t.Fatal("unicast 'group' created a grant")
		}
	}
}
