package sigma

import (
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Client is the receiver-side SIGMA stub: it emits the Figure 6 messages to
// the local edge router and retransmits subscription messages until they
// are acknowledged (§3.2.2, "reliable subscription").
type Client struct {
	host   *netsim.Host
	router packet.Addr
	sched  *sim.Scheduler

	// RTO is the acknowledgment timeout before a subscription message is
	// retransmitted.
	RTO sim.Time
	// MaxTries bounds transmissions per subscription message.
	MaxTries int

	nextID  uint32
	pending map[uint32]*pendingSub

	// Retransmits counts subscription retransmissions.
	Retransmits uint64
	// AcksReceived counts acknowledgments.
	AcksReceived uint64

	// Tap, when set, observes every Subscribe before it is sent. A
	// colluding attacker pool installs it on its members' legitimate
	// clients to learn the real announced keys they submit; the engine's
	// own guess traffic mutes itself around its Subscribe calls so junk
	// guesses are never mistaken for decoded keys.
	Tap func(slot uint32, pairs []packet.AddrKey)
}

type pendingSub struct {
	pkt   *packet.Packet
	timer *sim.Timer
	tries int
}

// NewClient builds a SIGMA client on host talking to the edge router at
// routerAddr, and registers itself for SIGMA acknowledgments.
func NewClient(host *netsim.Host, routerAddr packet.Addr) *Client {
	c := &Client{
		host:     host,
		router:   routerAddr,
		sched:    host.Scheduler(),
		RTO:      60 * sim.Millisecond,
		MaxTries: 5,
		pending:  make(map[uint32]*pendingSub),
	}
	host.Handle(packet.ProtoSigma, c.onSigma)
	return c
}

func (c *Client) onSigma(pkt *packet.Packet) {
	hdr, ok := pkt.Header.(*packet.SigmaHeader)
	if !ok || hdr.Kind != packet.SigmaAck {
		return
	}
	if p := c.pending[hdr.AckID]; p != nil {
		p.timer.Stop()
		delete(c.pending, hdr.AckID)
		p.pkt.Release()
		c.AcksReceived++
	}
}

// send mints a pooled message and transmits it, fire-and-forget.
func (c *Client) send(hdr *packet.SigmaHeader) {
	c.host.Send(c.host.NewPacket(c.router, 0, hdr))
}

// SessionJoin asks for keyless admission into the session via its minimal
// group (Figure 6a).
func (c *Client) SessionJoin(minimal packet.Addr) {
	c.send(&packet.SigmaHeader{Kind: packet.SigmaSessionJoin, Minimal: minimal})
}

// Subscribe submits address-key pairs for a time slot (Figure 6b) and
// retransmits until acknowledged. It returns the message's ack identifier.
// The retransmission buffer holds its own reference on the pooled message
// (taken before the send, so a drop-tail drop cannot recycle it) and the
// same envelope is re-sent with Retain instead of cloned per try.
func (c *Client) Subscribe(slot uint32, pairs []packet.AddrKey) uint32 {
	if c.Tap != nil {
		c.Tap(slot, pairs)
	}
	c.nextID++
	id := c.nextID
	hdr := &packet.SigmaHeader{Kind: packet.SigmaSubscribe, Slot: slot, AckID: id, Pairs: pairs}
	pkt := c.host.NewPacket(c.router, 0, hdr)
	p := &pendingSub{pkt: pkt.Retain(), tries: 1}
	c.host.Send(pkt)
	c.pending[id] = p
	p.timer = c.sched.NewTimer(func() { c.retransmit(id, p) })
	p.timer.Reset(c.RTO)
	return id
}

// retransmit re-sends an unacknowledged subscription message, reusing the
// pending entry's timer and packet for the whole retry ladder.
func (c *Client) retransmit(id uint32, p *pendingSub) {
	if p.tries >= c.MaxTries {
		delete(c.pending, id)
		p.pkt.Release()
		return
	}
	p.tries++
	c.Retransmits++
	c.host.Send(p.pkt.Retain())
	p.timer.Reset(c.RTO)
}

// Unsubscribe abandons groups immediately (Figure 6c); it is fire-and-
// forget, since dynamic keys expire access anyway.
func (c *Client) Unsubscribe(addrs []packet.Addr) {
	c.send(&packet.SigmaHeader{Kind: packet.SigmaUnsubscribe, Addrs: addrs})
}

// Pending reports in-flight unacknowledged subscription messages.
func (c *Client) Pending() int { return len(c.pending) }
