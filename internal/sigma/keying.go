package sigma

import (
	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
)

// InterfaceKeying implements the §4.2 collusion hardening: the edge router
// randomly alters the component fields it forwards onto each local
// interface, so every interface reconstructs a different ("lower") key.
// Validation then demands the interface-specific lower key; keys passed
// between colluding receivers on different interfaces stop working.
//
// As the paper concedes, this extension is protocol-specific — the edge
// must know the session's layered structure (group addresses and their
// cumulative order) to relate altered components to submitted keys — and
// therefore "sacrifices the generality of SIGMA". It is provided as an
// optional mode for the layered instantiation.
type InterfaceKeying struct {
	src  *keys.Source
	base packet.Addr
	n    int
	// alt[iface][slot][g-1] is the cumulative XOR of alterations applied
	// to group g's components forwarded to iface during slot.
	alt map[packet.Addr]map[uint32][]keys.Key
}

// NewInterfaceKeying builds the alteration state for a layered session with
// n groups based at base, drawing alteration nonces from src.
func NewInterfaceKeying(base packet.Addr, n int, src *keys.Source) *InterfaceKeying {
	return &InterfaceKeying{
		src:  src,
		base: base,
		n:    n,
		alt:  make(map[packet.Addr]map[uint32][]keys.Key),
	}
}

func (ik *InterfaceKeying) groupIndex(addr packet.Addr) int {
	if addr < ik.base || addr >= ik.base+packet.Addr(ik.n) {
		return 0
	}
	return int(addr-ik.base) + 1
}

func (ik *InterfaceKeying) slotAlt(host packet.Addr, slot uint32) []keys.Key {
	slots := ik.alt[host]
	if slots == nil {
		slots = make(map[uint32][]keys.Key)
		ik.alt[host] = slots
	}
	a := slots[slot]
	if a == nil {
		a = make([]keys.Key, ik.n)
		slots[slot] = a
	}
	return a
}

// Alter rewrites the component of a layered data packet bound for host and
// records the perturbation. The returned header is a copy.
func (ik *InterfaceKeying) Alter(host packet.Addr, h *packet.FLIDHeader) *packet.FLIDHeader {
	g := int(h.Group)
	if g < 1 || g > ik.n {
		return h
	}
	x := ik.src.Nonce()
	a := ik.slotAlt(host, h.Slot)
	a[g-1] = keys.XOR(a[g-1], x)
	c := *h
	c.Component = keys.XOR(c.Component, x)
	return &c
}

// cum returns the cumulative alteration ⊕_{j≤g} A_j for the interface.
func (ik *InterfaceKeying) cum(host packet.Addr, slot uint32, g int) keys.Key {
	a := ik.alt[host][slot]
	if a == nil {
		return 0
	}
	var acc keys.Key
	for j := 0; j < g && j < len(a); j++ {
		acc = keys.XOR(acc, a[j])
	}
	return acc
}

// Validate checks a submitted key against the announced ("upper") keys,
// adjusted by the interface's recorded alterations: the lower top key is
// α_g ⊕ cum(g), the lower increase key is ε_g ⊕ cum(g−1), and decrease keys
// travel in decrease fields that the edge never alters.
func (ik *InterfaceKeying) Validate(host, group packet.Addr, slot uint32, submitted keys.Key, stored storedKeys) bool {
	g := ik.groupIndex(group)
	if g == 0 {
		return stored.matches(submitted)
	}
	if submitted == keys.XOR(stored.top, ik.cum(host, slot, g)) {
		return true
	}
	if stored.hasDec && submitted == stored.dec {
		return true
	}
	if stored.hasInc && submitted == keys.XOR(stored.inc, ik.cum(host, slot, g-1)) {
		return true
	}
	return false
}

// gc drops alteration state older than slot.
func (ik *InterfaceKeying) gc(olderThan uint32) {
	for _, slots := range ik.alt {
		for s := range slots {
			if s+1 < olderThan {
				delete(slots, s)
			}
		}
	}
}
