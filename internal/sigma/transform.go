package sigma

import (
	"deltasigma/internal/delta"
	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
)

// EnableECNScrub makes the controller alter the component field of every
// CE-marked packet it delivers onto a local interface (§3.1.2, "Congestion
// notification"): receivers of marked packets lose the ability to
// reconstruct their level's key, turning the mark into a key-denying
// congestion signal without dropping data.
func (c *Controller) EnableECNScrub(src *keys.Source) {
	c.scrubSrc = src
}

// EnableInterfaceKeying activates the §4.2 collusion hardening for a
// layered session with n groups based at base. See InterfaceKeying.
func (c *Controller) EnableInterfaceKeying(base packet.Addr, n int, src *keys.Source) *InterfaceKeying {
	c.alter = NewInterfaceKeying(base, n, src)
	return c.alter
}

// TransformLocal implements mcast.LocalTransformer: apply ECN scrubbing and
// interface keying to data packets bound for one local interface. Altering
// goes through Writable, so the shared multicast envelope is copied-on-write
// only on the rare mutating delivery.
func (c *Controller) TransformLocal(pkt *packet.Packet, host packet.Addr) *packet.Packet {
	out := pkt
	if c.scrubSrc != nil && pkt.ECN {
		out = out.Writable()
		out.Header = delta.ScrubComponent(out.Header, c.scrubSrc.Nonce())
	}
	if c.alter != nil {
		if h, ok := out.Header.(*packet.FLIDHeader); ok {
			altered := c.alter.Alter(host, h)
			if altered != h {
				out = out.Writable()
				out.Header = altered
			}
		}
	}
	return out
}
