package sigma

import (
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Announcer is the sender-side half of SIGMA's key distribution to edge
// routers (§3.2.1): once per time slot it multicasts the address-key tuples
// for a future slot inside router-alert ("special") packets that edge
// routers intercept and never deliver to hosts. Reliability comes from
// forward error correction; the default is a repetition code with expansion
// factor z = Repeat, which overcomes the paper's 50% loss target in
// expectation with z = 2 (duplicates are deduplicated at the edge by
// (session, slot, block) identity).
//
// Tuples travel on the session's minimal group: every legitimate
// subscription level of a cumulative layered session contains it, so every
// edge router with subscribers sits on its tree. Replicated sessions
// announce on every group instead (AnnounceAll).
type Announcer struct {
	host    *netsim.Host
	session uint16
	base    packet.Addr
	groups  int
	// Repeat is the FEC expansion factor z.
	Repeat int
	// Spacing staggers the coded copies in time so a full bottleneck queue
	// cannot drop the whole slot's key material in one burst (interleaving,
	// the standard companion of FEC). Zero sends copies back-to-back.
	Spacing sim.Time

	// Stats consumed by the §5.4 overhead accounting.
	PacketsSent uint64
	BytesSent   uint64
	HeaderBytes uint64 // common header + fixed KeyAnnounce preamble bytes
	TupleBytes  uint64
	SlotsDone   uint64
}

// NewAnnouncer builds an announcer for a session of n groups based at base,
// originating from host.
func NewAnnouncer(host *netsim.Host, session uint16, base packet.Addr, n, repeat int) *Announcer {
	if repeat < 1 {
		repeat = 1
	}
	return &Announcer{host: host, session: session, base: base, groups: n, Repeat: repeat}
}

// Announce multicasts the slot's tuples on the minimal group.
func (a *Announcer) Announce(slot uint32, tuples []packet.KeyTuple) {
	a.announceOn(a.base, slot, tuples)
	a.SlotsDone++
}

// AnnounceAll multicasts the slot's tuples on every group of the session,
// reaching edge routers of replicated sessions whose receivers subscribe to
// a single arbitrary group.
func (a *Announcer) AnnounceAll(slot uint32, tuples []packet.KeyTuple) {
	for g := 0; g < a.groups; g++ {
		a.announceOn(packet.Group(a.base, g), slot, tuples)
	}
	a.SlotsDone++
}

func (a *Announcer) announceOn(group packet.Addr, slot uint32, tuples []packet.KeyTuple) {
	for i := 0; i < a.Repeat; i++ {
		hdr := &packet.KeyAnnounce{
			Session:  a.session,
			Slot:     slot,
			FECIndex: uint8(i),
			FECTotal: uint8(a.Repeat),
			Tuples:   tuples,
		}
		pkt := a.host.Network().NewPacket(a.host.Addr(), group, 0, hdr)
		pkt.Alert = true
		a.PacketsSent++
		a.BytesSent += uint64(pkt.Size)
		a.HeaderBytes += uint64(packet.CommonWireLen + hdr.WireLen() - len(tuples)*29)
		a.TupleBytes += uint64(len(tuples) * 29)
		if a.Spacing > 0 && i > 0 {
			a.host.Scheduler().ScheduleAfter(sim.Time(i)*a.Spacing, func() { a.host.Send(pkt) })
		} else {
			a.host.Send(pkt)
		}
	}
}
