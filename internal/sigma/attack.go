package sigma

import (
	"deltasigma/internal/core"
	"deltasigma/internal/keys"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// GuessAttack is the shared engine of every inflated-subscription attacker
// against a SIGMA-protected session (§4.2): once inflated, it sends plain
// IGMP joins for every group (which a SIGMA edge ignores) and, late in
// each slot — after the edge holds the slot's announced keys, since
// guesses against an empty key store are wasted — submits GuessesPerSlot
// random key guesses per group above the attacker's entitled level.
// Protocol attackers embed a GuessAttack beside their legitimate receiver;
// entitled reports that receiver's current level (or group).
type GuessAttack struct {
	sess     *core.Session
	host     *netsim.Host
	client   *Client
	igmp     *mcast.Client
	entitled func() int
	rng      *sim.RNG
	timer    *sim.Timer // reusable per-slot guessing timer

	// GuessesPerSlot is y: how many random keys per group per slot the
	// attacker can afford to submit.
	GuessesPerSlot int

	inflated bool
	// GuessesSent counts submitted key guesses.
	GuessesSent uint64

	// pool, when non-nil, switches the guessing loop to the colluding
	// strategy: replay the cohort's learned real keys and deduplicate
	// random guesses across members. mute suppresses the pool's client
	// tap while the engine submits its own guess traffic.
	pool *Collusion
	mute bool
}

// Engine exposes the attack engine itself. Protocol attackers embed a
// GuessAttack, and facade wrappers embed those attackers, so the method
// promotes through the whole chain — a caller holding any wrapper can
// reach the engine with a one-method interface assertion.
func (a *GuessAttack) Engine() *GuessAttack { return a }

// NewGuessAttack builds the engine on host against the edge at routerAddr,
// submitting guesses through client on behalf of a receiver whose current
// entitlement entitled reports.
func NewGuessAttack(host *netsim.Host, sess *core.Session, routerAddr packet.Addr, client *Client, entitled func() int, rng *sim.RNG) *GuessAttack {
	a := &GuessAttack{
		sess:           sess,
		host:           host,
		client:         client,
		igmp:           mcast.NewClient(host, routerAddr),
		entitled:       entitled,
		rng:            rng,
		GuessesPerSlot: 16,
	}
	a.timer = host.Scheduler().NewTimer(a.attackSlot)
	return a
}

// Inflate begins the inflation attempts.
func (a *GuessAttack) Inflate() {
	if a.inflated {
		return
	}
	a.inflated = true
	// Plain IGMP joins: a SIGMA edge router confers nothing for them.
	for g := 1; g <= a.sess.Rates.N; g++ {
		a.igmp.Join(a.sess.GroupAddr(g))
	}
	a.attackSlot()
}

// Deflate calls the attack off (the dynamics layer's attacker-stop event):
// the plain-IGMP joins are withdrawn and the pending guessing-slot timer
// is cancelled — a later re-Inflate starts exactly one fresh loop instead
// of stacking a second chain on the leftover event. The embedded
// legitimate receiver is untouched — the former attacker keeps its
// entitled subscription.
func (a *GuessAttack) Deflate() {
	if !a.inflated {
		return
	}
	a.inflated = false
	a.timer.Stop()
	for g := 1; g <= a.sess.Rates.N; g++ {
		a.igmp.Leave(a.sess.GroupAddr(g))
	}
}

// Inflated reports whether the attack is active.
func (a *GuessAttack) Inflated() bool { return a.inflated }

// keyMask keeps guesses within the b-bit key space of the evaluation.
const keyMask = keys.Key(1)<<keys.DefaultBits - 1

func (a *GuessAttack) attackSlot() {
	if !a.inflated {
		return
	}
	sched := a.host.Scheduler()
	cur := a.sess.SlotAt(sched.Now())
	// Submit guessed keys for every group above the entitled level, for
	// the next access slot.
	target := core.AccessSlot(cur)
	if a.pool != nil {
		a.pooledSlot(cur, target)
	} else {
		pairs := make([]packet.AddrKey, 0, a.sess.Rates.N*a.GuessesPerSlot)
		for g := a.entitled() + 1; g <= a.sess.Rates.N; g++ {
			for i := 0; i < a.GuessesPerSlot; i++ {
				pairs = append(pairs, packet.AddrKey{
					Addr: a.sess.GroupAddr(g),
					Key:  keys.Key(a.rng.Uint64()) & keyMask,
				})
				a.GuessesSent++
			}
		}
		if len(pairs) > 0 {
			a.client.Subscribe(target, pairs)
		}
	}
	a.timer.ResetAt(a.sess.SlotStart(cur+1) + 7*a.sess.SlotDur/10)
}

// pooledSlot is the colluding variant of a guessing slot: replay every
// real key the cohort has learned for any still-subscribable slot — the
// controller accepts any slot at or ahead of the current one, and even a
// current-slot grant persists through the grace window — then spend the
// per-slot guess budget only on groups the pool has no real key for,
// deduplicated cohort-wide. Members' legitimate receivers subscribe one
// evaluation behind the attack's guess target, so the replayed slots trail
// target; that is exactly why they must be submitted separately.
func (a *GuessAttack) pooledSlot(cur, target uint32) {
	a.pool.gc(cur)
	for _, slot := range a.pool.slots() {
		var pairs []packet.AddrKey
		for g := a.entitled() + 1; g <= a.sess.Rates.N; g++ {
			addr := a.sess.GroupAddr(g)
			if k, ok := a.pool.sharedKey(slot, addr); ok {
				pairs = append(pairs, packet.AddrKey{Addr: addr, Key: k})
				a.pool.SharedSubmitted++
			}
		}
		if len(pairs) > 0 {
			a.mute = true
			a.client.Subscribe(slot, pairs)
			a.mute = false
		}
	}
	pairs := make([]packet.AddrKey, 0, a.sess.Rates.N*a.GuessesPerSlot)
	for g := a.entitled() + 1; g <= a.sess.Rates.N; g++ {
		addr := a.sess.GroupAddr(g)
		if _, ok := a.pool.sharedKey(target, addr); ok {
			continue
		}
		for i := 0; i < a.GuessesPerSlot; i++ {
			pairs = append(pairs, packet.AddrKey{Addr: addr, Key: a.pool.freshGuess(a.rng, target, addr)})
			a.GuessesSent++
		}
	}
	if len(pairs) > 0 {
		a.mute = true
		a.client.Subscribe(target, pairs)
		a.mute = false
	}
}
