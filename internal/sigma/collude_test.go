package sigma

import (
	"testing"

	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

func TestCollusionLearnsOnceAndGC(t *testing.T) {
	c := NewCollusion()
	g1, g2 := packet.Group(grp, 1), packet.Group(grp, 2)
	c.learn(5, []packet.AddrKey{{Addr: g1, Key: 11}, {Addr: g2, Key: 22}})
	c.learn(5, []packet.AddrKey{{Addr: g1, Key: 99}}) // later key for same slot/group ignored
	if c.KeysLearned != 2 {
		t.Fatalf("KeysLearned = %d, want 2 (duplicates must not re-count)", c.KeysLearned)
	}
	if k, ok := c.sharedKey(5, g1); !ok || k != 11 {
		t.Fatalf("sharedKey(5, g1) = %v, %v; want 11, true (first key wins)", k, ok)
	}
	if _, ok := c.sharedKey(6, g1); ok {
		t.Fatal("sharedKey leaked across slots")
	}
	c.gc(6)
	if _, ok := c.sharedKey(5, g1); ok {
		t.Fatal("gc(6) left slot 5 keys behind")
	}
}

func TestCollusionFreshGuessDeduplicates(t *testing.T) {
	c := NewCollusion()
	rng := sim.NewRNG(7)
	g := packet.Group(grp, 3)
	seen := make(map[keys.Key]bool)
	// Cohort-wide draws for one (slot, group) must be distinct: the redraw
	// loop makes a repeat need four consecutive collisions against a tiny
	// seen-set, which cannot happen in 64 draws over the b-bit space.
	for i := 0; i < 64; i++ {
		k := c.freshGuess(rng, 9, g)
		if seen[k] {
			t.Fatalf("draw %d repeated key %v", i, k)
		}
		seen[k] = true
	}
	// A different slot has its own dedup space.
	if len(c.guessed[9]) != 1 || len(c.guessed[9][g]) != 64 {
		t.Fatalf("guessed bookkeeping off: %d groups, %d keys", len(c.guessed[9]), len(c.guessed[9][g]))
	}
}

func TestCollusionTapMutedDuringOwnGuesses(t *testing.T) {
	c := NewCollusion()
	var prevCalls int
	cl := &Client{Tap: func(uint32, []packet.AddrKey) { prevCalls++ }}
	a := &GuessAttack{client: cl}
	c.Join(a)
	if c.Members() != 1 {
		t.Fatalf("Members = %d, want 1", c.Members())
	}
	g := packet.Group(grp, 1)

	cl.Tap(3, []packet.AddrKey{{Addr: g, Key: 42}}) // legit subscription observed
	if c.KeysLearned != 1 {
		t.Fatalf("unmuted tap learned %d keys, want 1", c.KeysLearned)
	}
	a.mute = true
	cl.Tap(3, []packet.AddrKey{{Addr: packet.Group(grp, 2), Key: 7}}) // own guess traffic
	if c.KeysLearned != 1 {
		t.Fatal("muted tap polluted the shared pool with guess traffic")
	}
	if prevCalls != 2 {
		t.Fatalf("pre-existing tap called %d times, want 2 (chaining must survive Join)", prevCalls)
	}
}
