// Package sigma implements SIGMA (Secure Internet Group Management
// Architecture), the paper's generic key-based group access control at edge
// routers (§3.2). The Controller is the edge-router side: it intercepts the
// sender's special key-announce packets, validates the keys receivers
// submit in subscription messages, and gates local-interface forwarding —
// all without knowing anything about the congestion control protocol whose
// keys it checks (Requirement 3). The Announcer is the sender side that
// distributes address-key tuples to edge routers, and the Client is the
// receiver-side stub speaking the Figure 6 messages.
package sigma

import (
	"deltasigma/internal/keys"
	"deltasigma/internal/mcast"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Config carries SIGMA's deployment parameters. Slot timing is part of
// SIGMA itself — the time slot is the atomic unit of access control
// (Figure 2) — and is assumed synchronized between sender and edge routers,
// the same assumption slotted protocols like FLID-DL already make.
type Config struct {
	// SlotDuration is the access-control time slot length.
	SlotDuration sim.Time
	// Epoch is the virtual time slot 0 begins.
	Epoch sim.Time
	// GraceSlots is how many complete slots of unconditional forwarding a
	// newly granted or newly joined group gets (the paper fixes 2).
	GraceSlots int
	// PenaltySlots is the minimum forwarding stop after a keyless
	// session-join grace expires (the paper fixes "at least one").
	PenaltySlots int
}

// DefaultConfig returns the paper's parameters for a given slot duration.
func DefaultConfig(slot sim.Time) Config {
	return Config{SlotDuration: slot, GraceSlots: 2, PenaltySlots: 1}
}

// storedKeys is one group's key tuple for one slot, as learned from a
// KeyAnnounce.
type storedKeys struct {
	top, dec, inc  keys.Key
	hasDec, hasInc bool
}

func (s storedKeys) matches(k keys.Key) bool {
	return k == s.top || (s.hasDec && k == s.dec) || (s.hasInc && k == s.inc)
}

// grant is the per-interface, per-group access state. The slots a valid key
// was presented for live in a 32-slot window bitmask anchored at slotBase:
// keys are only ever granted for the current or upcoming slots and expire
// every tick, so live slot numbers span at most a few slots — a mask makes
// the per-packet Deliver probe bit arithmetic instead of a map access, and
// grants allocate nothing beyond their own struct.
type grant struct {
	slotBase     uint32   // slot number of bit 0 of slotMask
	slotMask     uint32   // bit i set: a valid key was presented for slotBase+i
	graceUntil   sim.Time // unconditional forwarding window
	pendingGrace bool     // start the grace window at first delivery
	probation    bool     // admitted keyless via session-join
	penaltyUntil sim.Time // forwarding stopped until then
}

// setSlot records a valid key presentation for slot s.
func (g *grant) setSlot(s uint32) {
	if g.slotMask == 0 {
		g.slotBase, g.slotMask = s, 1
		return
	}
	if s < g.slotBase {
		d := g.slotBase - s
		if d >= 32 {
			// A grant more than a window behind the anchor; the anchored
			// slots would long since have expired — restart the window.
			g.slotBase, g.slotMask = s, 1
			return
		}
		g.slotMask = g.slotMask<<d | 1
		g.slotBase = s
		return
	}
	d := s - g.slotBase
	if d >= 32 {
		// Slide the window forward. The bits shifted out are ≥32 slots
		// older than the new grant and therefore already expired (expire
		// runs every slot tick).
		shift := d - 31
		g.slotMask >>= shift
		g.slotBase += shift
		d = 31
	}
	g.slotMask |= 1 << d
}

// expireBefore drops every slot older than cur.
func (g *grant) expireBefore(cur uint32) {
	if g.slotMask == 0 || cur <= g.slotBase {
		return
	}
	d := cur - g.slotBase
	if d >= 32 {
		g.slotMask = 0
	} else {
		g.slotMask >>= d
	}
	g.slotBase = cur
}

// hasSlot reports whether a valid key was presented for slot s.
func (g *grant) hasSlot(s uint32) bool {
	return s >= g.slotBase && s-g.slotBase < 32 && g.slotMask>>(s-g.slotBase)&1 == 1
}

// iface is the state of one local interface (one attached receiver host).
type iface struct {
	grants map[packet.Addr]*grant
	// guesses tallies distinct invalid keys per group, the §4.2 guessing-
	// attack indicator.
	guesses map[packet.Addr]map[keys.Key]bool
}

// Controller is the SIGMA gatekeeper installed on an edge router. It
// implements mcast.Gatekeeper.
type Controller struct {
	router *mcast.Router
	sched  *sim.Scheduler
	cfg    Config

	store     map[packet.Addr]map[uint32]storedKeys
	ifaces    map[packet.Addr]*iface
	grafted   map[packet.Addr]bool
	seen      map[[2]uint64]bool   // announce dedup: (session<<32|slot, fecIndex)
	tickTimer *sim.Timer           // reusable per-slot housekeeping timer
	inUse     map[packet.Addr]bool // tick scratch, cleared and reused each slot

	// alter, when non-nil, applies §4.2 interface keying; see keying.go.
	alter *InterfaceKeying
	// scrubSrc, when non-nil, scrubs components of CE-marked packets on
	// local delivery (ECN-driven protocols); see transform.go.
	scrubSrc *keys.Source

	// Stats.
	AnnouncesIntercepted uint64
	SubscribesProcessed  uint64
	GrantsIssued         uint64
	InvalidKeys          uint64
	Acked                uint64
}

// NewController installs a SIGMA controller as the gatekeeper of router.
func NewController(router *mcast.Router, cfg Config) *Controller {
	if cfg.SlotDuration <= 0 {
		panic("sigma: non-positive slot duration")
	}
	if cfg.GraceSlots <= 0 {
		cfg.GraceSlots = 2
	}
	if cfg.PenaltySlots <= 0 {
		cfg.PenaltySlots = 1
	}
	c := &Controller{
		router:  router,
		sched:   router.Network().Scheduler(),
		cfg:     cfg,
		store:   make(map[packet.Addr]map[uint32]storedKeys),
		ifaces:  make(map[packet.Addr]*iface),
		grafted: make(map[packet.Addr]bool),
		seen:    make(map[[2]uint64]bool),
	}
	router.SetGatekeeper(c)
	c.tickTimer = c.sched.NewTimer(c.onTick)
	c.tickTimer.Reset(c.cfg.SlotDuration)
	return c
}

// Router returns the edge router this controller guards.
func (c *Controller) Router() *mcast.Router { return c.router }

// CurrentSlot returns the slot number at the controller's clock.
func (c *Controller) CurrentSlot() uint32 {
	now := c.sched.Now()
	if now < c.cfg.Epoch {
		return 0
	}
	return uint32((now - c.cfg.Epoch) / c.cfg.SlotDuration)
}

// graceDeadline returns the end of the grace window opening now: the
// remainder of the current slot plus GraceSlots *complete* time slots
// (§3.2.2: "forwards them to the interface unconditionally for two complete
// time slots").
func (c *Controller) graceDeadline() sim.Time {
	nextBoundary := c.cfg.Epoch + sim.Time(c.CurrentSlot()+1)*c.cfg.SlotDuration
	return nextBoundary + sim.Time(c.cfg.GraceSlots)*c.cfg.SlotDuration
}

// onTick fires once per slot on the reusable housekeeping timer.
func (c *Controller) onTick() {
	c.tick()
	c.tickTimer.Reset(c.cfg.SlotDuration)
}

// tick runs once per slot: garbage-collects stale state and prunes groups
// no local interface is entitled to anymore.
func (c *Controller) tick() {
	cur := c.CurrentSlot()
	now := c.sched.Now()

	// Drop stored keys older than the previous slot.
	for group, slots := range c.store {
		for s := range slots {
			if s+1 < cur {
				delete(slots, s)
			}
		}
		if len(slots) == 0 {
			delete(c.store, group)
		}
	}

	// Expire grants and decide prunes.
	if c.inUse == nil {
		c.inUse = make(map[packet.Addr]bool)
	}
	clear(c.inUse)
	inUse := c.inUse
	for _, ifc := range c.ifaces {
		for group, g := range ifc.grants {
			g.expireBefore(cur)
			if g.probation && g.graceUntil <= now && g.graceUntil != 0 {
				// Keyless session-join grace expired: stop forwarding for
				// at least PenaltySlots (§3.2.2).
				g.probation = false
				g.graceUntil = 0
				g.penaltyUntil = now + sim.Time(c.cfg.PenaltySlots)*c.cfg.SlotDuration
			}
			active := g.graceUntil > now || g.pendingGrace || g.slotMask != 0
			if active {
				inUse[group] = true
			} else if g.penaltyUntil <= now {
				delete(ifc.grants, group)
			}
		}
		for group := range ifc.guesses {
			// Guess tallies are the attack indicator; retain them for as
			// long as the session's keys are live.
			if _, live := c.store[group]; !live {
				delete(ifc.guesses, group)
			}
		}
	}
	for group := range c.grafted {
		if !inUse[group] {
			c.router.Prune(group)
			delete(c.grafted, group)
		}
	}
	if c.alter != nil {
		c.alter.gc(cur)
	}
}

func (c *Controller) ifaceFor(host packet.Addr) *iface {
	ifc := c.ifaces[host]
	if ifc == nil {
		ifc = &iface{
			grants:  make(map[packet.Addr]*grant),
			guesses: make(map[packet.Addr]map[keys.Key]bool),
		}
		c.ifaces[host] = ifc
	}
	return ifc
}

func (c *Controller) grantFor(ifc *iface, group packet.Addr) *grant {
	g := ifc.grants[group]
	if g == nil {
		g = &grant{}
		ifc.grants[group] = g
	}
	return g
}

func (c *Controller) ensureGraft(group packet.Addr) {
	if !c.grafted[group] {
		c.grafted[group] = true
		c.router.Graft(group)
	}
}

// Intercept implements mcast.Gatekeeper: store the address-key tuples from
// a SIGMA special packet. Repetition-coded duplicates are idempotent.
func (c *Controller) Intercept(pkt *packet.Packet) {
	ann, ok := pkt.Header.(*packet.KeyAnnounce)
	if !ok {
		return
	}
	// Repetition copies carry identical content; one logical announce per
	// (session, slot) suffices.
	dedup := [2]uint64{uint64(ann.Session)<<32 | uint64(ann.Slot), 0}
	if c.seen[dedup] {
		return
	}
	c.seen[dedup] = true
	c.AnnouncesIntercepted++
	cur := c.CurrentSlot()
	if ann.Slot+1 < cur {
		return // stale
	}
	for _, t := range ann.Tuples {
		slots := c.store[t.Addr]
		if slots == nil {
			slots = make(map[uint32]storedKeys)
			c.store[t.Addr] = slots
		}
		slots[ann.Slot] = storedKeys{
			top: t.Top, dec: t.Dec, inc: t.Inc,
			hasDec: t.HasDec, hasInc: t.HasInc,
		}
	}
}

// HasKeysFor reports whether the controller holds keys for group at slot
// (test observability).
func (c *Controller) HasKeysFor(group packet.Addr, slot uint32) bool {
	_, ok := c.store[group][slot]
	return ok
}

// Control implements mcast.Gatekeeper: dispatch Figure 6 messages.
func (c *Controller) Control(pkt *packet.Packet, from packet.Addr) {
	if _, local := c.router.Locals()[from]; !local {
		return
	}
	hdr, ok := pkt.Header.(*packet.SigmaHeader)
	if !ok {
		return // plain IGMP join at a SIGMA router confers nothing
	}
	switch hdr.Kind {
	case packet.SigmaSessionJoin:
		c.sessionJoin(from, hdr)
	case packet.SigmaSubscribe:
		c.subscribe(from, hdr)
	case packet.SigmaUnsubscribe:
		c.unsubscribe(from, hdr)
	}
}

// sessionJoin admits a new receiver keylessly into the minimal group for
// GraceSlots complete slots (§3.2.2).
func (c *Controller) sessionJoin(from packet.Addr, hdr *packet.SigmaHeader) {
	if !hdr.Minimal.IsMulticast() {
		return
	}
	ifc := c.ifaceFor(from)
	g := c.grantFor(ifc, hdr.Minimal)
	now := c.sched.Now()
	if now < g.penaltyUntil {
		return // abusers wait the penalty out
	}
	if g.graceUntil > now || g.slotMask != 0 {
		return // already admitted; do not extend
	}
	g.probation = true
	g.pendingGrace = false
	g.graceUntil = c.graceDeadline()
	c.ensureGraft(hdr.Minimal)
}

// subscribe validates each address-key pair against the announced keys for
// the message's slot and grants matching groups (§3.2.2).
func (c *Controller) subscribe(from packet.Addr, hdr *packet.SigmaHeader) {
	c.SubscribesProcessed++
	ifc := c.ifaceFor(from)
	cur := c.CurrentSlot()
	if hdr.Slot >= cur {
		for _, pair := range hdr.Pairs {
			stored, ok := c.store[pair.Addr][hdr.Slot]
			if !ok {
				continue // keys not announced (yet); receiver retries
			}
			key := pair.Key
			valid := stored.matches(key)
			if c.alter != nil {
				valid = c.alter.Validate(from, pair.Addr, hdr.Slot, key, stored)
			}
			if !valid {
				c.InvalidKeys++
				gm := ifc.guesses[pair.Addr]
				if gm == nil {
					gm = make(map[keys.Key]bool)
					ifc.guesses[pair.Addr] = gm
				}
				gm[key] = true
				continue
			}
			g := c.grantFor(ifc, pair.Addr)
			if c.sched.Now() < g.penaltyUntil {
				continue
			}
			hadAccess := g.slotMask != 0 || g.graceUntil > c.sched.Now() || g.pendingGrace
			g.setSlot(hdr.Slot)
			g.probation = false
			if !hadAccess {
				// Newly granted group: once its packets start arriving,
				// forward unconditionally for GraceSlots complete slots —
				// the receiver cannot yet hold keys for the first slots it
				// never observed (§3.2.2 "expecting the group").
				g.pendingGrace = true
			}
			c.GrantsIssued++
			c.ensureGraft(pair.Addr)
		}
	}
	// Acknowledge the subscription message (reliable subscription).
	ack := c.router.Network().NewPacket(c.router.Addr(), from, 0, &packet.SigmaHeader{
		Kind: packet.SigmaAck, Slot: hdr.Slot, AckID: hdr.AckID,
	})
	c.Acked++
	c.router.SendLocal(ack)
}

// unsubscribe revokes the sender's own grants; other interfaces subscribed
// to the same groups are unaffected (§3.2.2).
func (c *Controller) unsubscribe(from packet.Addr, hdr *packet.SigmaHeader) {
	ifc := c.ifaceFor(from)
	for _, addr := range hdr.Addrs {
		delete(ifc.grants, addr)
	}
	// Prune any group nobody is entitled to anymore.
	for _, addr := range hdr.Addrs {
		stillUsed := false
		for _, other := range c.ifaces {
			if g := other.grants[addr]; g != nil {
				if g.graceUntil > c.sched.Now() || g.pendingGrace || g.slotMask != 0 {
					stillUsed = true
					break
				}
			}
		}
		if !stillUsed && c.grafted[addr] {
			c.router.Prune(addr)
			delete(c.grafted, addr)
		}
	}
}

// Deliver implements mcast.Gatekeeper: the per-packet forwarding decision.
func (c *Controller) Deliver(group, host packet.Addr) bool {
	ifc := c.ifaces[host]
	if ifc == nil {
		return false
	}
	g := ifc.grants[group]
	if g == nil {
		return false
	}
	now := c.sched.Now()
	if now < g.penaltyUntil {
		return false
	}
	if g.pendingGrace {
		g.pendingGrace = false
		g.graceUntil = c.graceDeadline()
	}
	if now < g.graceUntil {
		return true
	}
	return g.hasSlot(c.CurrentSlot())
}

// Entitled implements mcast.EntitlementReader: the same decision Deliver
// would make right now, but side-effect-free — a pending grace window is
// reported as entitlement without being armed, so the audit layer can poll
// mid-run without perturbing grace accounting.
func (c *Controller) Entitled(group, host packet.Addr) bool {
	ifc := c.ifaces[host]
	if ifc == nil {
		return false
	}
	g := ifc.grants[group]
	if g == nil {
		return false
	}
	now := c.sched.Now()
	if now < g.penaltyUntil {
		return false
	}
	if g.pendingGrace || now < g.graceUntil {
		return true
	}
	return g.hasSlot(c.CurrentSlot())
}

// GuessCount reports how many distinct invalid keys host has submitted for
// group — the §4.2 guessing-attack tally.
func (c *Controller) GuessCount(group, host packet.Addr) int {
	ifc := c.ifaces[host]
	if ifc == nil {
		return 0
	}
	return len(ifc.guesses[group])
}
