package sigma

import (
	"deltasigma/internal/core"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// ForgeAttack is the feedback-forging adversary. The paper's threat model
// (§2.2) assumes control-plane messages carry their true origin; SIGMA's
// edge controller trusts a packet's source address both to locate the
// arrival interface's neighbor and to decide whose grants an unsubscribe
// tears down. A forging receiver exploits that twice per slot: late in
// each slot — after honest receivers have re-subscribed for the upcoming
// access slot, so the teardown lands on fresh grants — it sends one
// spoofed SIGMA unsubscribe per victim on the same edge, evicting the
// victim's entire grant (grace window included) until the victim's own
// next subscription restores it; and it injects a bogus consolidated
// feedback report (huge receiver count, congested) toward the session
// source to poison any upstream consumer of the feedback plane.
type ForgeAttack struct {
	sess       *core.Session
	host       *netsim.Host
	router     packet.Addr
	feedbackTo packet.Addr
	timer      *sim.Timer

	inflated bool
	victims  []packet.Addr

	// ForgedUnsubscribes counts spoofed unsubscribe messages sent.
	ForgedUnsubscribes uint64
	// ForgedReports counts bogus feedback reports injected.
	ForgedReports uint64
}

// NewForgeAttack builds the forger on host against the edge at routerAddr,
// aiming bogus feedback at feedbackTo (the session source).
func NewForgeAttack(host *netsim.Host, sess *core.Session, routerAddr, feedbackTo packet.Addr) *ForgeAttack {
	f := &ForgeAttack{
		sess:       sess,
		host:       host,
		router:     routerAddr,
		feedbackTo: feedbackTo,
	}
	f.timer = host.Scheduler().NewTimer(f.forgeSlot)
	return f
}

// Arm sets the victim addresses whose grants the forger tears down —
// honest receivers attached to the same edge router, whose spoofed source
// addresses the controller will accept as local.
func (f *ForgeAttack) Arm(victims []packet.Addr) {
	f.victims = append(f.victims[:0], victims...)
}

// Inflate starts the per-slot forging loop.
func (f *ForgeAttack) Inflate() {
	if f.inflated {
		return
	}
	f.inflated = true
	f.forgeSlot()
}

// Deflate stops the forging loop; pending forgery for this slot is
// cancelled along with the timer.
func (f *ForgeAttack) Deflate() {
	if !f.inflated {
		return
	}
	f.inflated = false
	f.timer.Stop()
}

// Inflated reports whether the attack is active.
func (f *ForgeAttack) Inflated() bool { return f.inflated }

// forgedCount is the receiver population a single bogus feedback report
// claims to represent.
const forgedCount = 1 << 20

func (f *ForgeAttack) forgeSlot() {
	if !f.inflated {
		return
	}
	cur := f.sess.SlotAt(f.host.Scheduler().Now())
	addrs := f.sess.Addrs()
	for _, v := range f.victims {
		hdr := &packet.SigmaHeader{Kind: packet.SigmaUnsubscribe, Addrs: addrs}
		f.host.Send(f.host.NewPacketFrom(v, f.router, 0, hdr))
		f.ForgedUnsubscribes++
	}
	if f.feedbackTo != 0 {
		f.host.Send(f.host.NewPacket(f.feedbackTo, 0, &packet.FeedbackHeader{
			Session:   f.sess.ID,
			Slot:      cur,
			Count:     forgedCount,
			MaxLevel:  uint8(f.sess.Rates.N),
			Congested: true,
			Reports:   1,
		}))
		f.ForgedReports++
	}
	// 0.9 into the next slot: behind the honest ~0.8-slot re-subscribes,
	// so each teardown outlives the slot's legitimate grant refresh.
	f.timer.ResetAt(f.sess.SlotStart(cur+1) + 9*f.sess.SlotDur/10)
}
