package sigma

import (
	"sort"

	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Collusion is a shared key pool for a cohort of attackers working the
// same session. The paper's key-guessing analysis (§4.2) assumes each
// inflator guesses independently; a colluding cohort violates that in two
// ways. First, members tap their own legitimate receivers' subscription
// traffic, so every key any member decodes from the in-band announcements
// it is entitled to becomes available to the whole cohort — a member
// entitled to level k arms every other member with the real keys for
// groups 1..k. Second, random guesses are deduplicated across the cohort,
// so y colluders sample y·GuessesPerSlot distinct keys per group instead
// of overlapping draws.
type Collusion struct {
	members []*GuessAttack
	// shared maps slot → group address → a real key learned from a
	// member's legitimate subscription.
	shared map[uint32]map[packet.Addr]keys.Key
	// guessed maps slot → group address → the set of keys any member has
	// already burned a guess on.
	guessed map[uint32]map[packet.Addr]map[keys.Key]bool

	// KeysLearned counts real keys captured from members' legitimate
	// subscription traffic.
	KeysLearned uint64
	// SharedSubmitted counts learned keys replayed by members that were
	// not entitled to them.
	SharedSubmitted uint64
}

// NewCollusion builds an empty pool.
func NewCollusion() *Collusion {
	return &Collusion{
		shared:  make(map[uint32]map[packet.Addr]keys.Key),
		guessed: make(map[uint32]map[packet.Addr]map[keys.Key]bool),
	}
}

// Join enrolls an attack engine: the engine switches its guessing loop to
// the pooled strategy, and a tap on its SIGMA client captures the real
// keys its embedded legitimate receiver submits. The engine mutes the tap
// around its own guess submissions, so junk guesses never pollute the
// shared store.
func (c *Collusion) Join(a *GuessAttack) {
	a.pool = c
	c.members = append(c.members, a)
	prev := a.client.Tap
	a.client.Tap = func(slot uint32, pairs []packet.AddrKey) {
		if prev != nil {
			prev(slot, pairs)
		}
		if a.mute {
			return
		}
		c.learn(slot, pairs)
	}
}

// Members reports how many engines have joined the pool.
func (c *Collusion) Members() int { return len(c.members) }

// learn records real keys observed in a member's legitimate subscription.
func (c *Collusion) learn(slot uint32, pairs []packet.AddrKey) {
	bySlot := c.shared[slot]
	if bySlot == nil {
		bySlot = make(map[packet.Addr]keys.Key)
		c.shared[slot] = bySlot
	}
	for _, p := range pairs {
		if _, ok := bySlot[p.Addr]; !ok {
			bySlot[p.Addr] = p.Key
			c.KeysLearned++
		}
	}
}

// slots lists the slots the pool holds learned keys for, ascending — a
// deterministic replay order independent of map iteration.
func (c *Collusion) slots() []uint32 {
	out := make([]uint32, 0, len(c.shared))
	for slot := range c.shared {
		out = append(out, slot)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sharedKey returns the pooled real key for a group in a slot, if any
// member has decoded one.
func (c *Collusion) sharedKey(slot uint32, addr packet.Addr) (keys.Key, bool) {
	k, ok := c.shared[slot][addr]
	return k, ok
}

// freshGuess draws a random key the cohort has not guessed for this
// (slot, group) yet, with a bounded number of redraws so the per-slot
// work stays O(GuessesPerSlot) even when the unseen space thins out.
func (c *Collusion) freshGuess(rng *sim.RNG, slot uint32, addr packet.Addr) keys.Key {
	byAddr := c.guessed[slot]
	if byAddr == nil {
		byAddr = make(map[packet.Addr]map[keys.Key]bool)
		c.guessed[slot] = byAddr
	}
	seen := byAddr[addr]
	if seen == nil {
		seen = make(map[keys.Key]bool)
		byAddr[addr] = seen
	}
	k := keys.Key(rng.Uint64()) & keyMask
	for tries := 0; tries < 3 && seen[k]; tries++ {
		k = keys.Key(rng.Uint64()) & keyMask
	}
	seen[k] = true
	return k
}

// gc discards pooled state for slots that can no longer be subscribed.
// Map iteration order is irrelevant here: only entries strictly below cur
// are deleted, so the surviving state is order-independent.
func (c *Collusion) gc(cur uint32) {
	for slot := range c.shared {
		if slot < cur {
			delete(c.shared, slot)
		}
	}
	for slot := range c.guessed {
		if slot < cur {
			delete(c.guessed, slot)
		}
	}
}
