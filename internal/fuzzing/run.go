package fuzzing

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"deltasigma"
	"deltasigma/internal/campaign"
)

// Runner parameters: every generated scenario runs under the full audit —
// periodic sampling plus the end-of-run conservation checks — and gets a
// post-stop drain long enough for queued data, in-flight retransmissions
// and SIGMA control exchanges to terminate.
const (
	// AuditInterval is the during-run sampling period.
	AuditInterval = 250 * deltasigma.Millisecond
	// DrainGrace is the virtual time allowed for the network to drain
	// after StopTraffic before pool balance is asserted.
	DrainGrace = 10 * deltasigma.Second
)

// ShardRequest, when above 1 (or 0 for automatic), builds every scenario
// with WithShards. Fuzzed scenarios run under the full audit, which forces
// the serial fallback, so outcomes and fingerprints are identical to a
// plain campaign — the knob exists exactly to prove that: the golden
// corpus must not move however sharding is requested. Set it before
// Campaign; campaign workers read it concurrently.
var ShardRequest = -1

// Outcome is the result of running one spec: a pass/fail verdict, the
// scenario fingerprint, and the violations when the audit tripped. An
// Outcome is a pure function of its Spec, so a campaign's outcome list is
// identical at any worker count.
type Outcome struct {
	Seed uint64 `json:"seed"`
	// Fingerprint digests the spec and the typed result of the run; two
	// runs of the same spec must produce the same fingerprint, on any
	// machine, at any worker count — the reproducibility gauge the golden
	// corpus pins.
	Fingerprint string `json:"fingerprint"`
	Pass        bool   `json:"pass"`
	// Violations holds the audit diagnostics of a failing run.
	Violations []deltasigma.Violation `json:"violations,omitempty"`
	// Err records a build failure or panic instead of violations.
	Err string `json:"error,omitempty"`
}

// Failed reports whether the run tripped the audit or errored.
func (o Outcome) Failed() bool { return !o.Pass }

// Run executes one spec under full audit. pool may be nil (a fresh pool is
// used) or a campaign worker's reusable pool — pooling never changes the
// outcome, only where packet envelopes come from. Panics anywhere in the
// experiment are converted into a failing Outcome.
func Run(spec Spec, pool *deltasigma.PacketPool) (out Outcome) {
	out.Seed = spec.Seed
	specJSON, err := json.Marshal(spec)
	if err != nil {
		out.Err = fmt.Sprintf("marshal spec: %v", err)
		return out
	}
	defer func() {
		if r := recover(); r != nil {
			out.Pass = false
			out.Err = fmt.Sprintf("panic: %v", r)
			out.Fingerprint = fingerprint(specJSON, []byte(out.Err))
		}
	}()

	opts, err := spec.Options()
	if err != nil {
		out.Err = err.Error()
		out.Fingerprint = fingerprint(specJSON, []byte(out.Err))
		return out
	}
	auditOpts := []deltasigma.AuditOption{deltasigma.AuditEvery(AuditInterval)}
	if o := spec.Oracle; o != nil {
		auditOpts = append(auditOpts, deltasigma.AuditSuppression(deltasigma.SuppressionOracle{
			Session:   o.Session,
			From:      secs(o.FromSec),
			Factor:    o.Factor,
			FloorKbps: o.FloorKbps,
		}))
	}
	opts = append(opts, deltasigma.WithAudit(auditOpts...))
	if ShardRequest >= 0 {
		opts = append(opts, deltasigma.WithShards(ShardRequest))
	}
	if pool != nil {
		opts = append(opts, deltasigma.WithPacketPool(pool))
	}
	exp, err := deltasigma.New(opts...)
	if err != nil {
		out.Err = err.Error()
		out.Fingerprint = fingerprint(specJSON, []byte(out.Err))
		return out
	}
	spec.Wire(exp)

	res := exp.Run(spec.Duration())
	out.Violations = exp.DrainAndAudit(DrainGrace)
	out.Pass = len(out.Violations) == 0

	// The fingerprint pins what the simulation computed; how execution was
	// dispatched (the sharding request's disposition) is metadata and must
	// not move the corpus digest.
	res.Sharding = nil
	resJSON, err := json.Marshal(res)
	if err != nil {
		out.Err = fmt.Sprintf("marshal result: %v", err)
		out.Pass = false
	}
	out.Fingerprint = fingerprint(specJSON, resJSON)
	return out
}

// fingerprint digests the spec and the run's typed result into 16 hex
// characters (FNV-1a 64).
func fingerprint(specJSON, resultJSON []byte) string {
	h := fnv.New64a()
	h.Write(specJSON)
	h.Write([]byte{0})
	h.Write(resultJSON)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Campaign generates and runs n scenarios for seeds start..start+n-1 on a
// bounded worker pool (0 = one worker per CPU). Outcomes are indexed by
// seed offset, and each worker reuses one packet pool across its runs, so
// the returned slice is byte-identical for any worker count.
func Campaign(start uint64, n, workers int) []Outcome {
	outs := make([]Outcome, n)
	if n <= 0 {
		return outs
	}
	pools := make([]*deltasigma.PacketPool, campaign.EffectiveWorkers(n, workers))
	for i := range pools {
		pools[i] = &deltasigma.PacketPool{}
	}
	errs := campaign.Run(n, workers, func(w, i int) error {
		outs[i] = Run(Generate(start+uint64(i)), pools[w])
		return nil
	})
	// Run recovers panics itself, but the pool also contains panics raised
	// outside it (Generate, slice bookkeeping); without this backfill such
	// a job would leave a zero Outcome misattributed to seed 0.
	for i, err := range errs {
		if err != nil {
			outs[i] = Outcome{Seed: start + uint64(i), Err: err.Error()}
		}
	}
	return outs
}

// Summary is one line of the fuzz corpus digest — what the golden file
// pins per seed.
type Summary struct {
	Seed        uint64 `json:"seed"`
	Fingerprint string `json:"fingerprint"`
	Pass        bool   `json:"pass"`
}

// Summarize reduces campaign outcomes to their pinnable digest.
func Summarize(outs []Outcome) []Summary {
	sums := make([]Summary, len(outs))
	for i, o := range outs {
		sums[i] = Summary{Seed: o.Seed, Fingerprint: o.Fingerprint, Pass: o.Pass}
	}
	return sums
}

// ---------------------------------------------------------------------------
// Repro files.

// Repro is the self-contained reproducer written for a failing seed: the
// minimal spec the shrinker arrived at plus the outcome it produced.
type Repro struct {
	Spec    Spec    `json:"spec"`
	Outcome Outcome `json:"outcome"`
}

// WriteRepro writes a repro file as indented JSON.
func WriteRepro(path string, r Repro) error {
	js, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(js, '\n'), 0o644)
}

// ReadRepro loads a repro file. A bare Spec (hand-written reproducer) is
// accepted alongside the full Repro shape the fuzzer writes.
func ReadRepro(path string) (Repro, error) {
	js, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	var r Repro
	if err := json.Unmarshal(js, &r); err != nil {
		return Repro{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Spec.Sessions) == 0 {
		var sp Spec
		if err := json.Unmarshal(js, &sp); err == nil && len(sp.Sessions) > 0 {
			r = Repro{Spec: sp}
		}
	}
	return r, nil
}
