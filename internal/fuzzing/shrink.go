package fuzzing

import (
	"regexp"
	"sort"
	"strings"
)

// errDigits normalizes numbers out of error text, so "session 9 outside
// 1..2" and "session 8 outside 1..1" — the same bug class before and
// after the shrinker renumbers indices — key identically.
var errDigits = regexp.MustCompile(`[0-9]+`)

// failureKey digests which way an outcome failed: the sorted set of
// violated rules, or the digit-normalized error text for build failures
// and panics. The shrinker only keeps candidates with the same key as the
// original failure, so a repro never silently morphs into a different bug
// class while being minimized.
func failureKey(o Outcome) string {
	if o.Err != "" {
		return "error:" + errDigits.ReplaceAllString(o.Err, "#")
	}
	seen := map[string]bool{}
	var rules []string
	for _, v := range o.Violations {
		if !seen[v.Rule] {
			seen[v.Rule] = true
			rules = append(rules, v.Rule)
		}
	}
	sort.Strings(rules)
	return strings.Join(rules, ",")
}

// DefaultShrinkBudget bounds how many candidate runs a shrink may spend.
const DefaultShrinkBudget = 200

// shrinkProtocols orders the registered variants from plainest to most
// elaborate: the swap pass walks it left to right and keeps the first
// protocol that still reproduces the failure, so a bug that is not
// specific to a protected or competitor scheme is reported on the bare
// FLID-DL baseline.
var shrinkProtocols = []string{
	"flid-dl", "abr-cf", "dsc", "mfcc",
	"flid-ds", "flid-ds-threshold", "flid-ds-replicated",
}

// Shrink greedily minimizes a failing spec: it tries dropping timeline
// events, receivers, cross traffic and whole sessions one element at a
// time — plus swapping the protocol toward the plainest variant and
// halving the duration — re-running each candidate and keeping any that
// still fails. The result is the smallest spec the greedy walk
// reaches within budget (0 = DefaultShrinkBudget), together with its
// outcome; if the input spec does not actually fail it is returned as-is.
//
// Shrinking preserves validity: removing a receiver drops the events that
// referenced it and renumbers the rest, and removing a session does the
// same for session indices and the oracle.
func Shrink(spec Spec, budget int) (Spec, Outcome) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	out := Run(spec, nil)
	if !out.Failed() {
		return spec, out
	}
	key := failureKey(out)
	runs := 1
	try := func(cand Spec) (Outcome, bool) {
		if runs >= budget {
			return Outcome{}, false
		}
		runs++
		o := Run(cand, nil)
		return o, o.Failed() && failureKey(o) == key
	}

	for pass := 0; pass < 8; pass++ {
		shrunk := false

		// Drop events, last to first (later events depend on earlier ones
		// more often than the reverse — an up after a down, a stop after an
		// onset).
		for i := len(spec.Events) - 1; i >= 0; i-- {
			cand := clone(spec)
			cand.Events = append(cand.Events[:i], cand.Events[i+1:]...)
			if o, failed := try(cand); failed {
				spec, out, shrunk = cand, o, true
			}
		}

		// Drop receivers (attackers last, so the scenario keeps its shape
		// for as long as possible).
		for si := range spec.Sessions {
			for ri := len(spec.Sessions[si].Receivers) - 1; ri >= 0; ri-- {
				cand := removeReceiver(spec, si, ri)
				if o, failed := try(cand); failed {
					spec, out, shrunk = cand, o, true
				}
			}
		}

		// Drop cohorts outright, and when a cohort is load-bearing, collapse
		// it to the smallest member count that still reproduces: repeated
		// halving walks 500000 → 1 in twenty candidates, so a population bug
		// that survives at one member is reported at one member.
		for si := range spec.Sessions {
			for ci := len(spec.Sessions[si].Cohorts) - 1; ci >= 0; ci-- {
				cand := removeCohort(spec, si, ci)
				if o, failed := try(cand); failed {
					spec, out, shrunk = cand, o, true
					continue
				}
				for spec.Sessions[si].Cohorts[ci] > 1 {
					cand := clone(spec)
					cand.Sessions[si].Cohorts[ci] /= 2
					o, failed := try(cand)
					if !failed {
						break
					}
					spec, out, shrunk = cand, o, true
				}
			}
		}

		// Drop cross traffic.
		for spec.TCP > 0 {
			cand := clone(spec)
			cand.TCP--
			o, failed := try(cand)
			if !failed {
				break
			}
			spec, out, shrunk = cand, o, true
		}
		if spec.CBRFraction > 0 {
			cand := clone(spec)
			cand.CBRFraction = 0
			if o, failed := try(cand); failed {
				spec, out, shrunk = cand, o, true
			}
		}

		// Swap toward a plainer protocol that still reproduces. Candidates
		// that cannot host the spec — attackers on an attackerless scheme,
		// cohorts on a protocol with no layered aggregate — fail with a
		// different key and are rejected, so validity needs no special care.
		for _, name := range shrinkProtocols {
			if name == spec.Protocol {
				break // already at an equally plain or plainer variant
			}
			cand := clone(spec)
			cand.Protocol = name
			if o, failed := try(cand); failed {
				spec, out, shrunk = cand, o, true
				break
			}
		}

		// Drop whole sessions.
		for si := len(spec.Sessions) - 1; si >= 0 && len(spec.Sessions) > 1; si-- {
			cand := removeSession(spec, si)
			if o, failed := try(cand); failed {
				spec, out, shrunk = cand, o, true
			}
		}

		// Halve the duration (down to 2 s).
		if spec.DurationSec > 4 {
			cand := clone(spec)
			cand.DurationSec = round3(cand.DurationSec / 2)
			if o, failed := try(cand); failed {
				spec, out, shrunk = cand, o, true
			}
		}

		if !shrunk || runs >= budget {
			break
		}
	}
	return spec, out
}

// clone deep-copies a spec so candidate mutations never alias the original.
func clone(sp Spec) Spec {
	out := sp
	out.Topology.CapacitiesBps = append([]int64(nil), sp.Topology.CapacitiesBps...)
	out.Sessions = make([]SessionSpec, len(sp.Sessions))
	for i, ss := range sp.Sessions {
		out.Sessions[i].Receivers = append([]ReceiverSpec(nil), ss.Receivers...)
		out.Sessions[i].Cohorts = append([]int(nil), ss.Cohorts...)
	}
	out.Events = append([]EventSpec(nil), sp.Events...)
	if sp.Oracle != nil {
		o := *sp.Oracle
		out.Oracle = &o
	}
	return out
}

// eventReferencesReceiver reports whether ev names the given 1-based
// session/receiver pair explicitly.
func eventReferencesReceiver(ev EventSpec, session, receiver int) bool {
	switch ev.Kind {
	case EvJoin, EvLeave, EvOnset, EvStop:
		return ev.Session == session && ev.Receiver == receiver
	}
	return false
}

// removeReceiver deletes receiver ri (0-based) from session si (0-based),
// dropping events that referenced it and renumbering references to later
// receivers of the same session. Broadcast events (Receiver 0) survive
// unless the session loses its last matching population — onset/stop with
// no attackers left, churn with no honest receivers left — in which case
// they are dropped to keep the spec valid.
func removeReceiver(sp Spec, si, ri int) Spec {
	cand := clone(sp)
	ss := &cand.Sessions[si]
	ss.Receivers = append(ss.Receivers[:ri], ss.Receivers[ri+1:]...)
	honest, attackers := populations(*ss)

	var events []EventSpec
	for _, ev := range cand.Events {
		if eventReferencesReceiver(ev, si+1, ri+1) {
			continue
		}
		if ev.Session == si+1 {
			switch ev.Kind {
			case EvJoin, EvLeave, EvOnset, EvStop:
				if ev.Receiver > ri+1 {
					ev.Receiver--
				}
				if ev.Receiver == 0 && (ev.Kind == EvOnset || ev.Kind == EvStop) && attackers == 0 {
					continue // broadcast onset with nobody to inflate
				}
			case EvChurn:
				if honest == 0 && len(ss.Cohorts) == 0 {
					continue // churn needs well-behaved members
				}
			}
		}
		events = append(events, ev)
	}
	cand.Events = events
	if cand.Oracle != nil && cand.Oracle.Session == si+1 && (honest == 0 || attackers == 0) {
		cand.Oracle = nil
	}
	return cand
}

// removeCohort deletes cohort ci (0-based) from session si (0-based),
// dropping churn events that lose their last well-behaved members and the
// consolidation toggle when no cohort remains to consolidate.
func removeCohort(sp Spec, si, ci int) Spec {
	cand := clone(sp)
	ss := &cand.Sessions[si]
	ss.Cohorts = append(ss.Cohorts[:ci], ss.Cohorts[ci+1:]...)
	if honest, _ := populations(*ss); honest == 0 && len(ss.Cohorts) == 0 {
		var events []EventSpec
		for _, ev := range cand.Events {
			if ev.Kind == EvChurn && ev.Session == si+1 {
				continue
			}
			events = append(events, ev)
		}
		cand.Events = events
		if cand.Oracle != nil && cand.Oracle.Session == si+1 {
			cand.Oracle = nil // nobody honest left to measure
		}
	}
	if !cand.hasCohorts() {
		cand.NoConsolidation = false
	}
	return cand
}

// removeSession deletes session si (0-based), dropping its events and the
// oracle if it pointed there, and renumbering references to later sessions.
func removeSession(sp Spec, si int) Spec {
	cand := clone(sp)
	cand.Sessions = append(cand.Sessions[:si], cand.Sessions[si+1:]...)
	var events []EventSpec
	for _, ev := range cand.Events {
		if ev.Session == si+1 {
			continue
		}
		if ev.Session > si+1 {
			ev.Session--
		}
		events = append(events, ev)
	}
	cand.Events = events
	if cand.Oracle != nil {
		switch {
		case cand.Oracle.Session == si+1:
			cand.Oracle = nil
		case cand.Oracle.Session > si+1:
			cand.Oracle.Session--
		}
	}
	return cand
}
