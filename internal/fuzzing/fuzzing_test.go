package fuzzing

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"deltasigma"
)

// failingSpec is a handcrafted scenario that deterministically fails: the
// suppression oracle pointed at the unprotected FLID-DL baseline, where
// the inflated-subscription attack succeeds by design. The junk around it
// (second session, cross traffic, a harmless link-delay event) is what the
// shrinker should strip away.
func failingSpec() Spec {
	return Spec{
		Seed:        5,
		Protocol:    "flid-dl",
		Topology:    TopoSpec{Kind: "dumbbell", CapacitiesBps: []int64{600_000}},
		DurationSec: 10,
		Sessions: []SessionSpec{
			{Receivers: []ReceiverSpec{{}, {}, {Attacker: true}}},
			{Receivers: []ReceiverSpec{{}}},
		},
		TCP:         1,
		CBRFraction: 0.2,
		Events: []EventSpec{
			{Kind: EvOnset, AtSec: 2, Session: 1, Receiver: 3},
			{Kind: EvDelay, AtSec: 3, Link: 0, DelayMs: 25},
		},
		Oracle: &OracleSpec{Session: 1, FromSec: 6, Factor: 1.25, FloorKbps: 30},
	}
}

// A spec is a pure function of its seed, and it survives a JSON round trip
// field for field — the property repro files depend on.
func TestGenerateDeterministicAndSerializable(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic:\n%+v\n%+v", seed, a, b)
		}
		js, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(js, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, back) {
			t.Fatalf("seed %d: spec changed across JSON round trip:\n%+v\n%+v", seed, a, back)
		}
	}
}

// Generated specs build valid experiments: every option and timeline event
// must resolve (a generator that emits invalid specs would report build
// errors as fuzz findings and drown real ones).
func TestGeneratedSpecsAreValid(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		sp := Generate(seed)
		opts, err := sp.Options()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exp, err := deltasigma.New(opts...)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sp.Wire(exp)
		exp.Start() // panics on an unresolvable timeline
	}
}

// Same seed, same run: re-running a spec reproduces the fingerprint, with
// and without a warm shared pool.
func TestRunReproducible(t *testing.T) {
	sp := Generate(17)
	a := Run(sp, nil)
	pool := &deltasigma.PacketPool{}
	b := Run(sp, pool)
	c := Run(sp, pool) // the now-warm pool must not change the outcome
	if a.Fingerprint != b.Fingerprint || b.Fingerprint != c.Fingerprint {
		t.Fatalf("fingerprints diverge: %s / %s / %s", a.Fingerprint, b.Fingerprint, c.Fingerprint)
	}
	if !a.Pass {
		t.Fatalf("seed 17 unexpectedly fails: %+v", a.Violations)
	}
}

// Campaign outcomes are identical at any worker count — the property the
// fuzz-smoke CI job and the golden corpus rely on.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	serial := Campaign(1, 12, 1)
	parallel := Campaign(1, 12, 4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("campaign outcomes differ between workers=1 and workers=4:\n%+v\n%+v", serial, parallel)
	}
	for _, o := range serial {
		if o.Failed() {
			t.Errorf("seed %d failed: %+v %s", o.Seed, o.Violations, o.Err)
		}
	}
}

// The runner detects failures: the oracle on the unprotected baseline
// produces a suppression violation, typed and serializable.
func TestRunDetectsOracleFailure(t *testing.T) {
	out := Run(failingSpec(), nil)
	if !out.Failed() {
		t.Fatal("flid-dl attack under the oracle did not fail")
	}
	if len(out.Violations) == 0 || out.Violations[0].Rule != "suppression-oracle" {
		t.Fatalf("expected a suppression-oracle violation, got %+v (err %q)", out.Violations, out.Err)
	}
}

// A spec that cannot build reports through Err instead of panicking the
// campaign.
func TestRunContainsBuildErrors(t *testing.T) {
	sp := failingSpec()
	sp.Protocol = "no-such-protocol"
	out := Run(sp, nil)
	if !out.Failed() || out.Err == "" {
		t.Fatalf("bad protocol not surfaced: %+v", out)
	}
	sp = failingSpec()
	sp.Events = append(sp.Events, EventSpec{Kind: EvOnset, AtSec: 1, Session: 9})
	out = Run(sp, nil)
	if !out.Failed() || out.Err == "" {
		t.Fatalf("unresolvable timeline not surfaced: %+v", out)
	}
}

// Shrinking keeps the failure and strips the junk: the decoy session, the
// cross traffic and the irrelevant link event all go; the attacker, its
// onset and at least one honest receiver must survive (without them the
// oracle comparison is vacuous and the candidate passes, so the shrinker
// can never remove them).
func TestShrinkMinimizesFailingSpec(t *testing.T) {
	spec, out := Shrink(failingSpec(), 0)
	if !out.Failed() {
		t.Fatal("shrunk spec no longer fails")
	}
	if len(spec.Sessions) != 1 {
		t.Errorf("decoy session survived: %d sessions", len(spec.Sessions))
	}
	if spec.TCP != 0 || spec.CBRFraction != 0 {
		t.Errorf("cross traffic survived: tcp=%d cbr=%g", spec.TCP, spec.CBRFraction)
	}
	for _, ev := range spec.Events {
		if ev.Kind == EvDelay {
			t.Errorf("irrelevant delay event survived")
		}
	}
	honest, attackers := populations(spec.Sessions[0])
	if attackers == 0 || honest == 0 {
		t.Fatalf("shrink removed a load-bearing receiver: honest=%d attackers=%d", honest, attackers)
	}
	hasOnset := false
	for _, ev := range spec.Events {
		if ev.Kind == EvOnset {
			hasOnset = true
		}
	}
	if !hasOnset {
		t.Error("shrink removed the attack onset yet the spec still fails")
	}
	// The minimized spec must replay its own failure from serialized form.
	js, _ := json.Marshal(spec)
	var back Spec
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if re := Run(back, nil); !re.Failed() || re.Fingerprint != out.Fingerprint {
		t.Fatalf("serialized repro does not replay: pass=%v fp %s vs %s", re.Pass, re.Fingerprint, out.Fingerprint)
	}
}

// Repros minimize across protocol swaps: a suppression failure staged on
// the dsc competitor also reproduces on the plain FLID-DL baseline (both
// are unprotected, so the inflated subscription wins either way), and the
// shrinker must land there. A failure that only the original protocol
// exhibits keeps its protocol — swapping an attacker-carrying spec onto
// abr-cf trips the typed no-attacker panic, a different failure key, so
// the swap pass can never sneak one in.
func TestShrinkMinimizesAcrossProtocolSwaps(t *testing.T) {
	sp := failingSpec()
	sp.Protocol = "dsc"
	if out := Run(sp, nil); !out.Failed() {
		t.Fatalf("dsc attack under the oracle did not fail: %+v", out)
	}
	shrunk, out := Shrink(sp, 0)
	if !out.Failed() {
		t.Fatal("shrunk spec no longer fails")
	}
	if shrunk.Protocol != "flid-dl" {
		t.Errorf("repro not minimized across protocol swaps: protocol %q, want flid-dl", shrunk.Protocol)
	}
	if len(out.Violations) == 0 || out.Violations[0].Rule != "suppression-oracle" {
		t.Fatalf("swap changed the failure class: %+v (err %q)", out.Violations, out.Err)
	}
	honest, attackers := populations(shrunk.Sessions[0])
	if attackers == 0 || honest == 0 {
		t.Fatalf("swap pass lost a load-bearing receiver: honest=%d attackers=%d", honest, attackers)
	}
	// The swapped repro must replay its own failure from serialized form.
	js, _ := json.Marshal(shrunk)
	var back Spec
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if re := Run(back, nil); !re.Failed() || re.Fingerprint != out.Fingerprint {
		t.Fatalf("swapped repro does not replay: pass=%v fp %s vs %s", re.Pass, re.Fingerprint, out.Fingerprint)
	}
}

// A load-bearing cohort is collapsed to the smallest member count that
// still reproduces, not dropped: here the cohort is the attacked session's
// only honest population, so removing it makes the oracle vacuous and the
// candidate passes — the shrinker must instead halve the membership all the
// way down to one.
func TestShrinkCollapsesCohortToSmallestCount(t *testing.T) {
	sp := Spec{
		Seed:        9,
		Protocol:    "flid-dl",
		Topology:    TopoSpec{Kind: "dumbbell", CapacitiesBps: []int64{600_000}},
		DurationSec: 10,
		Sessions: []SessionSpec{{
			Receivers: []ReceiverSpec{{Attacker: true}},
			Cohorts:   []int{100_000},
		}},
		Events: []EventSpec{{Kind: EvOnset, AtSec: 2, Session: 1, Receiver: 1}},
		Oracle: &OracleSpec{Session: 1, FromSec: 6, Factor: 1.25, FloorKbps: 30},
	}
	if out := Run(sp, nil); !out.Failed() {
		t.Fatalf("cohort under attack did not trip the oracle: %+v", out)
	}
	shrunk, out := Shrink(sp, 0)
	if !out.Failed() {
		t.Fatal("shrunk spec no longer fails")
	}
	co := shrunk.Sessions[0].Cohorts
	if len(co) != 1 {
		t.Fatalf("load-bearing cohort removed: %v", co)
	}
	if co[0] != 1 {
		t.Errorf("cohort not collapsed to the minimal count: %d members", co[0])
	}
	if re := Run(shrunk, nil); !re.Failed() || re.Fingerprint != out.Fingerprint {
		t.Fatalf("collapsed repro does not replay: pass=%v", re.Pass)
	}
}

// Repro files round-trip and replay.
func TestReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repro_5.json")
	spec, out := Shrink(failingSpec(), 40)
	if err := WriteRepro(path, Repro{Spec: spec, Outcome: out}); err != nil {
		t.Fatal(err)
	}
	r, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Spec, spec) {
		t.Fatalf("repro spec changed on disk:\n%+v\n%+v", r.Spec, spec)
	}
	replay := Run(r.Spec, nil)
	if replay.Fingerprint != out.Fingerprint || !replay.Failed() {
		t.Fatalf("repro does not replay: %+v vs %+v", replay, out)
	}
}

// A bare Spec file (hand-written reproducer) loads too.
func TestReadBareSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	js, _ := json.Marshal(failingSpec())
	if err := writeFile(path, js); err != nil {
		t.Fatal(err)
	}
	r, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Spec, failingSpec()) {
		t.Fatalf("bare spec mangled: %+v", r.Spec)
	}
}

// writeFile is a tiny test helper (os.WriteFile with the repro mode).
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
