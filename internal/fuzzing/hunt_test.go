package fuzzing

import (
	"reflect"
	"testing"

	"deltasigma/internal/sim"
)

// huntSpecValid checks the structural guarantees repairHunt promises.
func huntSpecValid(t *testing.T, sp Spec) {
	t.Helper()
	if sp.Oracle == nil {
		t.Fatal("hunt spec without an oracle window")
	}
	if sp.Oracle.Session != 1 {
		t.Fatalf("oracle on session %d, want 1", sp.Oracle.Session)
	}
	if sp.DurationSec < huntMinDurSec || sp.DurationSec > huntMaxDurSec {
		t.Fatalf("duration %g outside [%g, %g]", sp.DurationSec, huntMinDurSec, huntMaxDurSec)
	}
	if sp.Oracle.FromSec >= sp.DurationSec-oracleMinWindow+1e-9 {
		t.Fatalf("oracle opens at %gs leaving no window before %gs", sp.Oracle.FromSec, sp.DurationSec)
	}
	honest, attackers := populations(sp.Sessions[0])
	if honest == 0 || attackers == 0 {
		t.Fatalf("session 1 has %d honest, %d attackers; want both populations", honest, attackers)
	}
	if _, err := sp.Options(); err != nil {
		t.Fatalf("spec does not build: %v", err)
	}
}

func TestGenerateHuntValidAndPure(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		sp := GenerateHunt(seed)
		huntSpecValid(t, sp)
		if again := GenerateHunt(seed); !reflect.DeepEqual(sp, again) {
			t.Fatalf("seed %d: GenerateHunt is not a pure function of its seed", seed)
		}
	}
}

func TestMutateKeepsSpecsValid(t *testing.T) {
	rng := sim.NewRNG(99)
	sp := GenerateHunt(1)
	// A long mutation chain must never leave the valid scenario space —
	// this is what lets Hunt evaluate children without re-validating.
	for i := 0; i < 300; i++ {
		sp = Mutate(sp, rng)
		huntSpecValid(t, sp)
	}
}

func TestEvaluateAdvantagePure(t *testing.T) {
	sp := GenerateHunt(3)
	a := EvaluateAdvantage(sp, nil)
	b := EvaluateAdvantage(sp, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec, different evals:\n%+v\n%+v", a, b)
	}
	if a.Err != "" {
		t.Fatalf("generated spec failed to evaluate: %s", a.Err)
	}
}

// TestHuntGenBestMonotone pins the elitism contract: with the best
// scenarios carried unchanged between generations, the per-generation
// best fitness can never regress on a fixed seed.
func TestHuntGenBestMonotone(t *testing.T) {
	report := Hunt(HuntConfig{Gens: 4, Pop: 8, Seed: 5, Workers: 2, ShrinkTop: -1})
	if len(report.GenBest) != 4 {
		t.Fatalf("GenBest has %d entries, want 4", len(report.GenBest))
	}
	for i := 1; i < len(report.GenBest); i++ {
		if report.GenBest[i] < report.GenBest[i-1] {
			t.Fatalf("best fitness regressed: gen %d %.3f < gen %d %.3f",
				i, report.GenBest[i], i-1, report.GenBest[i-1])
		}
	}
	if report.Best() != report.GenBest[len(report.GenBest)-1] {
		t.Fatalf("corpus best %.3f disagrees with final GenBest %.3f",
			report.Best(), report.GenBest[len(report.GenBest)-1])
	}
}

// TestShrinkHuntPreservesFitness pins the shrinker's hunt rule: the
// minimized spec must retain at least HuntShrinkSlack of the original
// advantage (where the invariant shrinker instead demands an identical
// failure key), and must never grow.
func TestShrinkHuntPreservesFitness(t *testing.T) {
	var spec Spec
	var orig HuntEval
	for seed := uint64(1); seed <= 30; seed++ {
		sp := GenerateHunt(seed)
		if ev := EvaluateAdvantage(sp, nil); ev.Err == "" && ev.Fitness > orig.Fitness {
			spec, orig = sp, ev
		}
	}
	if orig.Fitness <= 0 {
		t.Fatal("no seed in 1..30 produced positive advantage to shrink")
	}
	size := func(sp Spec) int {
		n := len(sp.Events) + sp.TCP
		for _, ss := range sp.Sessions {
			n += len(ss.Receivers) + len(ss.Cohorts)
		}
		return n
	}
	shrunk, ev := ShrinkHunt(spec, 40)
	if ev.Err != "" {
		t.Fatalf("shrunk spec fails to evaluate: %s", ev.Err)
	}
	if ev.Fitness < orig.Fitness*HuntShrinkSlack {
		t.Fatalf("shrunk fitness %.3f below the floor %.3f (%.0f%% of %.3f)",
			ev.Fitness, orig.Fitness*HuntShrinkSlack, 100*HuntShrinkSlack, orig.Fitness)
	}
	if size(shrunk) > size(spec) {
		t.Fatalf("shrinking grew the spec: %d -> %d elements", size(spec), size(shrunk))
	}
	huntSpecValid(t, shrunk)
}
