// Package fuzzing is the deterministic scenario fuzzer: a seeded generator
// that composes random-but-valid topologies, protocol variants, receiver
// and attacker populations, cross traffic and timelines into experiment
// specifications; a runner that executes each one under the full
// invariant-audit layer on the campaign worker pool; and a shrinker that
// reduces a failing specification to a minimal reproducer.
//
// The same Spec machinery also powers the adversarial attack optimizer
// behind `dsim hunt` (Hunt, GenerateHunt, Mutate, EvaluateAdvantage,
// ShrinkHunt): an elitist evolutionary search whose fitness is attacker
// advantage — best attacker throughput over honest median inside the
// suppression-oracle window — over mutations of timelines, topologies,
// populations, schedule depth and attacker strategy. Where the fuzzer
// samples the scenario space for invariant violations, the hunt climbs
// it for worst cases, and shrinks the winners into exhibit-sized repros.
//
// Everything is reproducible by construction: a Spec is a pure function of
// its seed, an Outcome is a pure function of its Spec (experiments are
// single-threaded and seeded), and campaign results are stored by seed
// index — so fuzz campaigns and hunt reports alike are byte-identical at
// any worker count, and a failure replays from its JSON repro file alone.
package fuzzing

import (
	"fmt"

	"deltasigma"
	"deltasigma/internal/sim"
)

// Spec is a fully serializable description of one generated scenario. It
// is the unit the fuzzer generates, runs, shrinks and writes into repro
// files; Options and Wire turn it back into a live experiment.
type Spec struct {
	// Seed drives the experiment's own randomness (topology RNG, DELTA
	// keys, churn draws) — for generated specs it equals the fuzz seed.
	Seed     uint64   `json:"seed"`
	Protocol string   `json:"protocol"`
	Topology TopoSpec `json:"topology"`
	// Groups overrides the rate schedule's group count (0 = the protocol
	// default schedule).
	Groups      int           `json:"groups,omitempty"`
	DurationSec float64       `json:"duration_sec"`
	Sessions    []SessionSpec `json:"sessions"`
	// TCP is the number of TCP Reno competitors (staggered starts).
	TCP int `json:"tcp,omitempty"`
	// CBRFraction, when positive, adds duty-cycled CBR cross traffic at
	// this fraction of the narrowest bottleneck.
	CBRFraction float64 `json:"cbr_fraction,omitempty"`
	// NoConsolidation disables hierarchical feedback consolidation, so
	// cohort scenarios exercise both the merged and the raw reporting path.
	NoConsolidation bool `json:"no_consolidation,omitempty"`
	// Events is the scripted timeline, in declaration order.
	Events []EventSpec `json:"events,omitempty"`
	// Oracle, when set, arms the suppression oracle for the run. The
	// generator only sets it for scenarios where the paper's claim is
	// expected to hold unconditionally (protected variant, attacked
	// session undisturbed by churn, stable links).
	Oracle *OracleSpec `json:"oracle,omitempty"`
}

// TopoSpec names a topology family and its per-bottleneck capacities.
type TopoSpec struct {
	// Kind is "dumbbell", "chain" or "star".
	Kind string `json:"kind"`
	// CapacitiesBps holds one capacity per bottleneck (dumbbell: one).
	CapacitiesBps []int64 `json:"capacities_bps"`
}

// SessionSpec is one multicast session's receiver population.
type SessionSpec struct {
	Receivers []ReceiverSpec `json:"receivers"`
	// Cohorts holds aggregated honest populations riding the fluid cohort
	// model, one member count per cohort. They join at time zero and churn
	// alongside the exact receivers.
	Cohorts []int `json:"cohorts,omitempty"`
}

// ReceiverSpec is one receiver (honest or attacker).
type ReceiverSpec struct {
	Attacker bool `json:"attacker,omitempty"`
	// Strategy selects the attacker strategy ("classic", "colluding",
	// "adaptive", "forging"; empty = classic). Only meaningful with
	// Attacker set; the hunt generator and mutator populate it.
	Strategy string `json:"strategy,omitempty"`
	// DelayMs is the access-link propagation delay (0 = topology default).
	DelayMs float64 `json:"delay_ms,omitempty"`
	// StartSec staggers the receiver's join (0 = joins at time zero).
	StartSec float64 `json:"start_sec,omitempty"`
}

// Event kinds, mirroring the facade's timeline events.
const (
	EvJoin  = "join"
	EvLeave = "leave"
	EvChurn = "churn"
	EvOnset = "onset"
	EvStop  = "stop"
	EvCap   = "capacity"
	EvDelay = "delay"
	EvDown  = "down"
	EvUp    = "up"
	EvFlap  = "flap"
)

// EventSpec is one serialized timeline event. Which fields matter depends
// on Kind; session/receiver/link indices follow the facade conventions
// (sessions and receivers 1-based, links 0-based).
type EventSpec struct {
	Kind     string  `json:"kind"`
	AtSec    float64 `json:"at_sec,omitempty"`
	Session  int     `json:"session,omitempty"`
	Receiver int     `json:"receiver,omitempty"`
	Link     int     `json:"link,omitempty"`
	// Rate is the churn rate in toggles/second.
	Rate float64 `json:"rate,omitempty"`
	// Bps is the new capacity for capacity events.
	Bps int64 `json:"bps,omitempty"`
	// DelayMs is the new propagation delay for delay events.
	DelayMs float64 `json:"delay_ms,omitempty"`
	// PeriodSec is the flap period (down a tenth of each period).
	PeriodSec float64 `json:"period_sec,omitempty"`
	// FromSec/ToSec bound windowed events (churn, flap).
	FromSec float64 `json:"from_sec,omitempty"`
	ToSec   float64 `json:"to_sec,omitempty"`
}

// OracleSpec serializes a suppression oracle.
type OracleSpec struct {
	Session   int     `json:"session"`
	FromSec   float64 `json:"from_sec"`
	Factor    float64 `json:"factor"`
	FloorKbps float64 `json:"floor_kbps"`
}

// Duration returns the scenario length in virtual time.
func (sp Spec) Duration() deltasigma.Time { return sim.Seconds(sp.DurationSec) }

// secs converts spec seconds to virtual time.
func secs(s float64) deltasigma.Time { return sim.Seconds(s) }

// Options renders the option-expressible part of the spec: protocol, seed,
// topology, schedule and timeline. Sessions and cross traffic are wired by
// Wire after New.
func (sp Spec) Options() ([]deltasigma.Option, error) {
	opts := []deltasigma.Option{
		deltasigma.WithProtocol(sp.Protocol),
		deltasigma.WithSeed(sp.Seed),
	}
	caps := sp.Topology.CapacitiesBps
	switch sp.Topology.Kind {
	case "dumbbell":
		if len(caps) != 1 {
			return nil, fmt.Errorf("fuzzing: dumbbell wants exactly one capacity, spec has %d", len(caps))
		}
		opts = append(opts, deltasigma.WithDumbbell(caps[0]))
	case "chain":
		opts = append(opts, deltasigma.WithChain(caps...))
	case "star":
		opts = append(opts, deltasigma.WithStar(caps...))
	default:
		return nil, fmt.Errorf("fuzzing: unknown topology kind %q", sp.Topology.Kind)
	}
	if sp.Groups > 0 {
		opts = append(opts, deltasigma.WithSchedule(deltasigma.RateSchedule{
			Base: 100_000, Mult: 1.5, N: sp.Groups,
		}))
	}
	if sp.NoConsolidation {
		opts = append(opts, deltasigma.WithFeedbackConsolidation(false))
	}
	events, err := sp.timeline()
	if err != nil {
		return nil, err
	}
	if len(events) > 0 {
		opts = append(opts, deltasigma.WithTimeline(events...))
	}
	return opts, nil
}

// timeline converts the serialized events into typed facade events.
func (sp Spec) timeline() ([]deltasigma.TimelineEvent, error) {
	var out []deltasigma.TimelineEvent
	for i, ev := range sp.Events {
		switch ev.Kind {
		case EvJoin:
			out = append(out, deltasigma.ReceiverJoin{At: secs(ev.AtSec), Session: ev.Session, Receiver: ev.Receiver})
		case EvLeave:
			out = append(out, deltasigma.ReceiverLeave{At: secs(ev.AtSec), Session: ev.Session, Receiver: ev.Receiver})
		case EvChurn:
			out = append(out, deltasigma.PoissonChurn{Session: ev.Session, Rate: ev.Rate, From: secs(ev.FromSec), To: secs(ev.ToSec)})
		case EvOnset:
			out = append(out, deltasigma.AttackerOnset{At: secs(ev.AtSec), Session: ev.Session, Receiver: ev.Receiver})
		case EvStop:
			out = append(out, deltasigma.AttackerStop{At: secs(ev.AtSec), Session: ev.Session, Receiver: ev.Receiver})
		case EvCap:
			out = append(out, deltasigma.LinkSetCapacity{At: secs(ev.AtSec), Link: ev.Link, Bps: ev.Bps})
		case EvDelay:
			out = append(out, deltasigma.LinkSetDelay{At: secs(ev.AtSec), Link: ev.Link, Delay: sim.Seconds(ev.DelayMs / 1000)})
		case EvDown:
			out = append(out, deltasigma.LinkDown{At: secs(ev.AtSec), Link: ev.Link})
		case EvUp:
			out = append(out, deltasigma.LinkUp{At: secs(ev.AtSec), Link: ev.Link})
		case EvFlap:
			out = append(out, deltasigma.LinkFlap{Link: ev.Link, Period: secs(ev.PeriodSec), From: secs(ev.FromSec), To: secs(ev.ToSec)})
		default:
			return nil, fmt.Errorf("fuzzing: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	return out, nil
}

// Wire attaches the spec's sessions, receivers and cross traffic to a
// freshly built experiment.
func (sp Spec) Wire(e *deltasigma.Experiment) {
	for _, ss := range sp.Sessions {
		s := e.AddSession(0)
		for _, rs := range ss.Receivers {
			var r *deltasigma.Receiver
			delay := deltasigma.DefaultDelay
			if rs.DelayMs > 0 {
				delay = sim.Seconds(rs.DelayMs / 1000)
			}
			if rs.Attacker && rs.Strategy != "" {
				r = s.AddAttackerStrategyAt(deltasigma.AttackerStrategy(rs.Strategy), e.Topo.AttachReceiver("", delay))
			} else if rs.Attacker {
				r = s.AddAttackerAt(e.Topo.AttachReceiver("", delay))
			} else {
				r = s.AddReceiverDelay(delay)
			}
			if rs.StartSec > 0 {
				r.StartAt(secs(rs.StartSec))
			}
		}
		for _, n := range ss.Cohorts {
			s.AddCohort(n)
		}
	}
	for i := 0; i < sp.TCP; i++ {
		e.AddTCP(deltasigma.Time(i) * 100 * deltasigma.Millisecond)
	}
	if sp.CBRFraction > 0 {
		narrowest := sp.Topology.CapacitiesBps[0]
		for _, c := range sp.Topology.CapacitiesBps {
			if c < narrowest {
				narrowest = c
			}
		}
		e.AddCBR(int64(sp.CBRFraction*float64(narrowest)), 2*deltasigma.Second, 2*deltasigma.Second)
	}
}
