package fuzzing

import (
	"encoding/json"
	"fmt"
	"sort"

	"deltasigma"
	"deltasigma/internal/campaign"
	"deltasigma/internal/sim"
)

// The hunt optimizer: where the fuzzer samples random-but-valid scenarios
// and checks invariants, the hunt searches the same scenario space for the
// configurations where an attacker wins. Fitness is attacker advantage —
// the best attacker's throughput over the honest median, measured over
// the suppression oracle's window — so whatever the hunt surfaces is
// exactly what the oracle would flag, with a repro spec attached.
//
// Everything is deterministic at any worker count, by the same
// construction as the fuzzer: specs are pure functions of seeds, fitness
// is a pure function of a spec, parallel evaluations are stored by index,
// and every random choice the search itself makes (parent selection,
// mutation draws) comes from one serial master RNG that is only advanced
// between generations — never inside worker code.

// Hunt calibration.
const (
	// huntSeedSalt decorrelates the hunt generator's stream from the plain
	// fuzzer's, so hunt seed k is not fuzz seed k wearing a new label.
	huntSeedSalt = 0x68756e74 // "hunt"
	// HuntShrinkSlack is the fraction of a scenario's fitness a shrunk
	// candidate must retain: the shrinker minimizes the spec under the
	// rule "still at least this share of the original advantage".
	HuntShrinkSlack = 0.9
	// DefaultHuntShrinkBudget bounds evaluation runs per shrink.
	DefaultHuntShrinkBudget = 60
	// Capacity bounds for mutated bottlenecks: the floor keeps slot clocks
	// and control exchanges viable, the cap bounds simulated work as the
	// search inflates capacity chasing raw attacker throughput.
	huntMinCapBps = 100_000
	huntMaxCapBps = 5_000_000
	// Duration bounds: the floor guarantees room for the latest allowed
	// onset plus convergence plus a measurable window.
	huntMinDurSec = 10.0
	huntMaxDurSec = 20.0
)

// Hunt generation menus.
var (
	huntProtocols = []string{
		"flid-ds", "flid-ds", // weight the headline variant
		"flid-ds-replicated", "flid-ds-threshold",
	}
	huntStrategies = []string{"classic", "colluding", "adaptive", "forging"}
)

// HuntConfig parameterizes a hunt. Zero fields take defaults; Workers is
// execution metadata and deliberately excluded from serialized reports,
// which must be byte-identical at any worker count.
type HuntConfig struct {
	// Gens is the number of generations (default 8).
	Gens int `json:"gens"`
	// Pop is the population per generation (default 24).
	Pop int `json:"pop"`
	// Seed drives the entire search (default 1).
	Seed uint64 `json:"seed"`
	// Workers is the evaluation pool size (0 = one per CPU).
	Workers int `json:"-"`
	// Elite is how many top scenarios survive unchanged into the next
	// generation (default max(2, Pop/6)) — elitism is also what makes the
	// per-generation best monotone.
	Elite int `json:"elite"`
	// Keep is how many ranked scenarios the report retains (default 8).
	Keep int `json:"keep"`
	// ShrinkTop is how many top scenarios get shrunk repro specs
	// (default 2).
	ShrinkTop int `json:"shrink_top"`
	// ShrinkBudget bounds evaluation runs per shrink (default
	// DefaultHuntShrinkBudget).
	ShrinkBudget int `json:"shrink_budget"`
}

func (cfg HuntConfig) withDefaults() HuntConfig {
	if cfg.Gens <= 0 {
		cfg.Gens = 8
	}
	if cfg.Pop <= 0 {
		cfg.Pop = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Elite <= 0 {
		cfg.Elite = cfg.Pop / 6
		if cfg.Elite < 2 {
			cfg.Elite = 2
		}
	}
	if cfg.Elite >= cfg.Pop {
		cfg.Elite = cfg.Pop - 1
		if cfg.Elite < 1 {
			cfg.Elite = 1
		}
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 8
	}
	if cfg.ShrinkTop < 0 {
		cfg.ShrinkTop = 0
	} else if cfg.ShrinkTop == 0 {
		cfg.ShrinkTop = 2
	}
	if cfg.ShrinkTop > cfg.Keep {
		cfg.ShrinkTop = cfg.Keep
	}
	if cfg.ShrinkBudget <= 0 {
		cfg.ShrinkBudget = DefaultHuntShrinkBudget
	}
	return cfg
}

// HuntEval is one scenario's measured fitness.
type HuntEval struct {
	deltasigma.Advantage
	// Fitness is the advantage ratio (0 for degenerate or failed runs).
	Fitness float64 `json:"fitness"`
	// Err records a build failure or panic; such scenarios score zero.
	Err string `json:"error,omitempty"`
}

// HuntScenario is one ranked entry of the worst-known-scenarios corpus.
type HuntScenario struct {
	Rank        int      `json:"rank"`
	Fitness     float64  `json:"fitness"`
	Gen         int      `json:"gen"` // generation first evaluated
	Fingerprint string   `json:"fingerprint"`
	Eval        HuntEval `json:"eval"`
	Spec        Spec     `json:"spec"`
	// Shrunk, when present, is the minimized repro retaining at least
	// HuntShrinkSlack of the fitness, with its own measured eval.
	Shrunk     *Spec     `json:"shrunk,omitempty"`
	ShrunkEval *HuntEval `json:"shrunk_eval,omitempty"`
}

// HuntReport is a full hunt result: the ranked corpus plus the search
// trajectory. Serialized reports are byte-identical at any worker count.
type HuntReport struct {
	Config HuntConfig `json:"config"`
	// GenBest is the best fitness known after each generation; elitism
	// makes it non-decreasing.
	GenBest   []float64      `json:"gen_best"`
	Evaluated int            `json:"evaluated"` // total fitness evaluations in the search loop
	Scenarios []HuntScenario `json:"scenarios"`
}

// Best returns the top-ranked fitness (0 for an empty corpus).
func (r HuntReport) Best() float64 {
	if len(r.Scenarios) == 0 {
		return 0
	}
	return r.Scenarios[0].Fitness
}

// GenerateHunt derives one attack-shaped scenario from a seed: protected
// protocols only, session 1 always carrying both honest receivers and
// attackers with randomly drawn strategies, onset schedules for the
// non-adaptive attackers and optional disturbances for the adaptive ones
// to react to. Like Generate it is a pure function of the seed.
func GenerateHunt(seed uint64) Spec {
	rng := sim.NewRNG(seed ^ huntSeedSalt)
	sp := Spec{
		Seed:        seed,
		Protocol:    huntProtocols[rng.IntN(len(huntProtocols))],
		DurationSec: float64(10 + rng.IntN(5)), // 10..14 s
	}

	// Topology: dumbbell or chain — both give every receiver the same
	// path, so the honest median is a meaningful yardstick.
	if rng.IntN(2) == 0 {
		sp.Topology = TopoSpec{Kind: "dumbbell", CapacitiesBps: []int64{genCaps[rng.IntN(len(genCaps))]}}
	} else {
		sp.Topology = TopoSpec{Kind: "chain", CapacitiesBps: capList(rng, 2+rng.IntN(2))}
	}

	if sp.Protocol == "flid-ds-replicated" {
		sp.Groups = 6
	} else if rng.Float64() < 0.4 {
		sp.Groups = 5 + rng.IntN(5)
	}

	// Session 1: the attacked, measured session.
	var ss SessionSpec
	honest := 2 + rng.IntN(3) // 2..4
	for i := 0; i < honest; i++ {
		ss.Receivers = append(ss.Receivers, ReceiverSpec{})
	}
	nAtk := 1 + rng.IntN(2) // 1..2
	for i := 0; i < nAtk; i++ {
		ss.Receivers = append(ss.Receivers, ReceiverSpec{
			Attacker: true,
			Strategy: huntStrategies[rng.IntN(len(huntStrategies))],
		})
	}
	sp.Sessions = append(sp.Sessions, ss)

	// Occasionally a second, honest-only session competing for the path.
	if rng.Float64() < 0.25 {
		var s2 SessionSpec
		for i := 0; i < 1+rng.IntN(3); i++ {
			s2.Receivers = append(s2.Receivers, ReceiverSpec{})
		}
		sp.Sessions = append(sp.Sessions, s2)
	}

	dur := sp.DurationSec
	// Onsets for the non-adaptive attackers (repairHunt owns clamping and
	// the adaptive exemption).
	for ri, rs := range sp.Sessions[0].Receivers {
		if !rs.Attacker || rs.Strategy == "adaptive" {
			continue
		}
		sp.Events = append(sp.Events, EventSpec{
			Kind: EvOnset, AtSec: round3(1 + rng.Float64()*dur/3), Session: 1, Receiver: ri + 1,
		})
		if rng.Float64() < 0.15 {
			sp.Events = append(sp.Events, EventSpec{
				Kind: EvStop, AtSec: round3(dur - 1 - rng.Float64()*2), Session: 1, Receiver: ri + 1,
			})
		}
	}

	// Disturbances: dice for everyone, guaranteed by repairHunt when an
	// adaptive attacker needs something to react to.
	if rng.Float64() < 0.4 {
		sp.Events = append(sp.Events, EventSpec{
			Kind: EvChurn, Session: 1,
			Rate:    round3(0.2 + 1.3*rng.Float64()),
			FromSec: 0.5, ToSec: round3(dur - 0.5),
		})
	}
	if rng.Float64() < 0.35 {
		link := rng.IntN(len(sp.Topology.CapacitiesBps))
		if rng.IntN(2) == 0 {
			sp.Events = append(sp.Events, EventSpec{
				Kind: EvFlap, Link: link,
				PeriodSec: round3(2 + 2*rng.Float64()),
				FromSec:   0.5, ToSec: round3(dur - 0.5),
			})
		} else {
			factor := 0.6 + 0.9*rng.Float64()
			sp.Events = append(sp.Events, EventSpec{
				Kind: EvCap, AtSec: round3(1 + rng.Float64()*(dur-3)),
				Link: link, Bps: int64(factor * float64(sp.Topology.CapacitiesBps[link])),
			})
		}
	}

	sp.TCP = rng.IntN(2)

	repairHunt(&sp)
	return sp
}

// huntAttackers lists session 1's attacker indices (0-based) and whether
// any of them is adaptive.
func huntAttackers(sp Spec) (idx []int, adaptive bool) {
	if len(sp.Sessions) == 0 {
		return nil, false
	}
	for ri, rs := range sp.Sessions[0].Receivers {
		if rs.Attacker {
			idx = append(idx, ri)
			if rs.Strategy == "adaptive" {
				adaptive = true
			}
		}
	}
	return idx, adaptive
}

// repairHunt normalizes a generated or mutated spec into a valid,
// measurable hunt scenario. It is deterministic (no randomness), so a
// mutated spec repairs identically wherever it is evaluated. The repair
// appends rather than inserts receivers, so surviving event references
// stay valid; invalid events are dropped rather than patched.
func repairHunt(sp *Spec) {
	// Bounds that everything later relies on.
	if sp.DurationSec < huntMinDurSec {
		sp.DurationSec = huntMinDurSec
	}
	if sp.DurationSec > huntMaxDurSec {
		sp.DurationSec = huntMaxDurSec
	}
	sp.DurationSec = round3(sp.DurationSec)
	for i, c := range sp.Topology.CapacitiesBps {
		if c < huntMinCapBps {
			sp.Topology.CapacitiesBps[i] = huntMinCapBps
		}
		if c > huntMaxCapBps {
			sp.Topology.CapacitiesBps[i] = huntMaxCapBps
		}
	}
	// The rate schedule is a search dimension (an attacker at the top of a
	// taller schedule takes more), but bounded: the replicated sender
	// carries every group's cumulative rate at once, so its schedule is
	// kept short.
	if sp.Protocol == "flid-ds-replicated" {
		if sp.Groups == 0 {
			sp.Groups = 6
		}
		if sp.Groups < 4 {
			sp.Groups = 4
		}
		if sp.Groups > 8 {
			sp.Groups = 8
		}
	} else if sp.Groups != 0 {
		if sp.Groups < 5 {
			sp.Groups = 5
		}
		if sp.Groups > 12 {
			sp.Groups = 12
		}
	}

	// Session 1 must exist and carry both populations.
	if len(sp.Sessions) == 0 {
		sp.Sessions = []SessionSpec{{}}
	}
	ss := &sp.Sessions[0]
	ss.Cohorts = nil // hunt medians compare exact receivers only
	if h, _ := populations(*ss); h == 0 {
		ss.Receivers = append(ss.Receivers, ReceiverSpec{})
	}
	if _, a := populations(*ss); a == 0 {
		ss.Receivers = append(ss.Receivers, ReceiverSpec{Attacker: true, Strategy: "classic"})
	}

	// Normalize strategies: unknown strings become classic, honest
	// receivers carry none, and a lone colluder recruits a second member
	// when the session has one to recruit (one-member collusion is just a
	// worse classic attacker).
	for si := range sp.Sessions {
		colluders, firstOther := 0, -1
		for ri := range sp.Sessions[si].Receivers {
			rs := &sp.Sessions[si].Receivers[ri]
			if !rs.Attacker {
				rs.Strategy = ""
				continue
			}
			switch rs.Strategy {
			case "classic", "colluding", "adaptive", "forging":
			default:
				rs.Strategy = "classic"
			}
			if rs.Strategy == "colluding" {
				colluders++
			} else if firstOther < 0 {
				firstOther = ri
			}
		}
		if colluders == 1 && firstOther >= 0 {
			sp.Sessions[si].Receivers[firstOther].Strategy = "colluding"
		}
	}

	dur := sp.DurationSec
	onsetBound := dur - oracleConverge - oracleMinWindow // >= 2 by the duration floor
	attackers, hasAdaptive := huntAttackers(*sp)

	// Event pass: drop anything invalid or out of scope, clamp the rest.
	var events []EventSpec
	onsetSeen := map[int]bool{} // session-1 receiver (1-based) -> has onset
	latestOnset := 0.0
	for _, ev := range sp.Events {
		switch ev.Kind {
		case EvOnset, EvStop:
			rs, ok := receiverOf(*sp, ev.Session, ev.Receiver)
			if !ok || !rs.Attacker || rs.Strategy == "adaptive" {
				continue // adaptive schedules are compiled, not scripted
			}
			if ev.Kind == EvOnset {
				if ev.AtSec < 1 {
					ev.AtSec = 1
				}
				if ev.AtSec > onsetBound {
					ev.AtSec = round3(onsetBound)
				}
				if ev.Session == 1 {
					onsetSeen[ev.Receiver] = true
					if ev.AtSec > latestOnset {
						latestOnset = ev.AtSec
					}
				}
			} else {
				if ev.AtSec < 1 {
					ev.AtSec = 1
				}
				if ev.AtSec > dur-0.5 {
					ev.AtSec = round3(dur - 0.5)
				}
			}
		case EvJoin, EvLeave:
			if _, ok := receiverOf(*sp, ev.Session, ev.Receiver); !ok {
				continue
			}
			if ev.AtSec < 0.5 || ev.AtSec > dur-0.5 {
				continue
			}
		case EvChurn:
			if ev.Session < 1 || ev.Session > len(sp.Sessions) || ev.Rate <= 0 {
				continue
			}
			if h, _ := populations(sp.Sessions[ev.Session-1]); h == 0 {
				continue
			}
			if ev.FromSec < 0.5 {
				ev.FromSec = 0.5
			}
			if ev.ToSec > dur-0.5 {
				ev.ToSec = round3(dur - 0.5)
			}
			if ev.ToSec <= ev.FromSec {
				continue
			}
		case EvCap:
			if ev.Link < 0 || ev.Link >= len(sp.Topology.CapacitiesBps) {
				continue
			}
			if ev.Bps < huntMinCapBps {
				ev.Bps = huntMinCapBps
			}
			if ev.Bps > huntMaxCapBps {
				ev.Bps = huntMaxCapBps
			}
			if ev.AtSec < 0.5 || ev.AtSec > dur-1 {
				continue
			}
		case EvDelay:
			if ev.Link < 0 || ev.Link >= len(sp.Topology.CapacitiesBps) {
				continue
			}
			if ev.DelayMs < 1 || ev.DelayMs > 100 {
				continue
			}
			if ev.AtSec < 0.5 || ev.AtSec > dur-1 {
				continue
			}
		case EvFlap:
			if ev.Link < 0 || ev.Link >= len(sp.Topology.CapacitiesBps) {
				continue
			}
			if ev.PeriodSec < 1 {
				ev.PeriodSec = 1
			}
			if ev.PeriodSec > 5 {
				ev.PeriodSec = 5
			}
			if ev.FromSec < 0.5 {
				ev.FromSec = 0.5
			}
			if ev.ToSec > dur-0.5 {
				ev.ToSec = round3(dur - 0.5)
			}
			if ev.ToSec-ev.FromSec <= ev.PeriodSec {
				continue // no cycle fits the window
			}
		default:
			continue // hunt specs carry no down/up or unknown events
		}
		events = append(events, ev)
	}

	// Every non-adaptive attacker in the measured session needs an onset.
	for _, ri := range attackers {
		rs := sp.Sessions[0].Receivers[ri]
		if rs.Strategy == "adaptive" || onsetSeen[ri+1] {
			continue
		}
		events = append(events, EventSpec{Kind: EvOnset, AtSec: 1, Session: 1, Receiver: ri + 1})
		if latestOnset < 1 {
			latestOnset = 1
		}
	}
	// An adaptive attacker with nothing scripted degrades to its early
	// fallback onset; give it a churn window to react to instead, so the
	// strategy stays meaningfully adaptive under mutation.
	if hasAdaptive && !hasDisturbance(events) {
		events = append(events, EventSpec{
			Kind: EvChurn, Session: 1, Rate: 0.5,
			FromSec: 0.5, ToSec: round3(dur - 0.5),
		})
	}
	sp.Events = events

	// The measurement window opens past every onset — adaptive ones
	// resolved through the same compilation the facade runs.
	from := latestOnset
	if hasAdaptive {
		if tl, err := sp.timeline(); err == nil {
			if ao := deltasigma.AdaptiveOnset(tl).Sec(); ao > from {
				from = ao
			}
		}
	}
	if from < 1 {
		from = 1
	}
	from += oracleConverge
	if max := dur - oracleMinWindow; from > max {
		from = max
	}
	sp.Oracle = &OracleSpec{
		Session:   1,
		FromSec:   round3(from),
		Factor:    oracleFactor,
		FloorKbps: oracleFloorKbps,
	}
}

// receiverOf resolves a 1-based (session, receiver) spec reference.
func receiverOf(sp Spec, session, receiver int) (ReceiverSpec, bool) {
	if session < 1 || session > len(sp.Sessions) {
		return ReceiverSpec{}, false
	}
	rs := sp.Sessions[session-1].Receivers
	if receiver < 1 || receiver > len(rs) {
		return ReceiverSpec{}, false
	}
	return rs[receiver-1], true
}

// hasDisturbance reports whether any event gives an adaptive attacker a
// trigger (matching the facade's adaptiveActions compilation).
func hasDisturbance(events []EventSpec) bool {
	for _, ev := range events {
		switch ev.Kind {
		case EvChurn, EvFlap, EvCap, EvDelay, EvJoin, EvLeave, EvUp:
			return true
		}
	}
	return false
}

// EvaluateAdvantage runs one hunt spec without the audit layer and
// measures attacker advantage over the spec's oracle window. pool may be
// nil or a campaign worker's reusable pool; pooling never changes the
// measurement. Panics become zero-fitness evals, mirroring Run.
func EvaluateAdvantage(sp Spec, pool *deltasigma.PacketPool) (ev HuntEval) {
	defer func() {
		if r := recover(); r != nil {
			ev = HuntEval{Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	if sp.Oracle == nil {
		ev.Err = "hunt spec has no oracle window"
		return ev
	}
	opts, err := sp.Options()
	if err != nil {
		ev.Err = err.Error()
		return ev
	}
	if pool != nil {
		opts = append(opts, deltasigma.WithPacketPool(pool))
	}
	exp, err := deltasigma.New(opts...)
	if err != nil {
		ev.Err = err.Error()
		return ev
	}
	sp.Wire(exp)
	exp.Advance(sp.Duration())
	exp.StopTraffic()
	ev.Advantage = exp.AttackerAdvantage(sp.Oracle.Session, secs(sp.Oracle.FromSec))
	ev.Fitness = ev.Ratio
	// Drain so a reused campaign pool gets its envelopes back.
	exp.Advance(exp.Now() + DrainGrace)
	return ev
}

// evalAll measures a population on the campaign worker pool, results
// stored by index — worker-count-independent like Campaign.
func evalAll(specs []Spec, workers int) []HuntEval {
	evals := make([]HuntEval, len(specs))
	if len(specs) == 0 {
		return evals
	}
	pools := make([]*deltasigma.PacketPool, campaign.EffectiveWorkers(len(specs), workers))
	for i := range pools {
		pools[i] = &deltasigma.PacketPool{}
	}
	errs := campaign.Run(len(specs), workers, func(w, i int) error {
		evals[i] = EvaluateAdvantage(specs[i], pools[w])
		return nil
	})
	for i, err := range errs {
		if err != nil {
			evals[i] = HuntEval{Err: err.Error()}
		}
	}
	return evals
}

// Mutate derives a child spec: one or two random moves from the mutation
// menu — onset jitter, capacity perturbation, strategy switches, attacker
// and honest population changes, disturbance edits, duration and seed
// perturbation — followed by the deterministic repair.
func Mutate(sp Spec, rng *sim.RNG) Spec {
	cand := clone(sp)
	moves := 1 + rng.IntN(2)
	for m := 0; m < moves; m++ {
		mutateOnce(&cand, rng)
	}
	repairHunt(&cand)
	return cand
}

func mutateOnce(sp *Spec, rng *sim.RNG) {
	ss := &sp.Sessions[0]
	attackers, _ := huntAttackers(*sp)
	switch rng.IntN(11) {
	case 10: // grow or shrink the rate schedule (repair clamps per protocol)
		if sp.Groups == 0 {
			sp.Groups = 10 // the layered default, now explicit and mutable
		}
		if rng.IntN(2) == 0 {
			sp.Groups++
		} else {
			sp.Groups--
		}
	case 0: // jitter an onset
		var onsets []int
		for i, ev := range sp.Events {
			if ev.Kind == EvOnset {
				onsets = append(onsets, i)
			}
		}
		if len(onsets) > 0 {
			ev := &sp.Events[onsets[rng.IntN(len(onsets))]]
			ev.AtSec = round3(ev.AtSec + (rng.Float64()-0.5)*4)
		}
	case 1: // perturb a bottleneck capacity
		link := rng.IntN(len(sp.Topology.CapacitiesBps))
		factor := 0.6 + 0.9*rng.Float64()
		sp.Topology.CapacitiesBps[link] = int64(factor * float64(sp.Topology.CapacitiesBps[link]))
	case 2: // switch an attacker's strategy
		if len(attackers) > 0 {
			ri := attackers[rng.IntN(len(attackers))]
			ss.Receivers[ri].Strategy = huntStrategies[rng.IntN(len(huntStrategies))]
		}
	case 3: // add an attacker
		if len(attackers) < 4 {
			ss.Receivers = append(ss.Receivers, ReceiverSpec{
				Attacker: true,
				Strategy: huntStrategies[rng.IntN(len(huntStrategies))],
			})
		}
	case 4: // remove the last attacker (repair re-adds one if none left)
		if len(attackers) > 1 {
			ri := attackers[len(attackers)-1]
			ss.Receivers = append(ss.Receivers[:ri], ss.Receivers[ri+1:]...)
			dropReceiverEvents(sp, 1, ri+1)
		}
	case 5: // add a disturbance
		link := rng.IntN(len(sp.Topology.CapacitiesBps))
		dur := sp.DurationSec
		switch rng.IntN(3) {
		case 0:
			sp.Events = append(sp.Events, EventSpec{
				Kind: EvFlap, Link: link,
				PeriodSec: round3(1 + 3*rng.Float64()),
				FromSec:   0.5, ToSec: round3(dur - 0.5),
			})
		case 1:
			factor := 0.6 + 0.9*rng.Float64()
			sp.Events = append(sp.Events, EventSpec{
				Kind: EvCap, AtSec: round3(1 + rng.Float64()*(dur-3)),
				Link: link, Bps: int64(factor * float64(sp.Topology.CapacitiesBps[link])),
			})
		default:
			sp.Events = append(sp.Events, EventSpec{
				Kind: EvDelay, AtSec: round3(1 + rng.Float64()*(dur-3)),
				Link: link, DelayMs: round3(2 + 48*rng.Float64()),
			})
		}
	case 6: // remove a non-onset event
		var drop []int
		for i, ev := range sp.Events {
			if ev.Kind != EvOnset {
				drop = append(drop, i)
			}
		}
		if len(drop) > 0 {
			i := drop[rng.IntN(len(drop))]
			sp.Events = append(sp.Events[:i], sp.Events[i+1:]...)
		}
	case 7: // toggle churn on the measured session
		had := false
		var events []EventSpec
		for _, ev := range sp.Events {
			if ev.Kind == EvChurn && ev.Session == 1 {
				had = true
				continue
			}
			events = append(events, ev)
		}
		if had {
			sp.Events = events
		} else {
			sp.Events = append(sp.Events, EventSpec{
				Kind: EvChurn, Session: 1,
				Rate:    round3(0.2 + 1.8*rng.Float64()),
				FromSec: 0.5, ToSec: round3(sp.DurationSec - 0.5),
			})
		}
	case 8: // grow or shrink the honest population (2..6)
		honest, _ := populations(*ss)
		if rng.IntN(2) == 0 && honest < 6 {
			ss.Receivers = append(ss.Receivers, ReceiverSpec{})
		} else if honest > 2 {
			for ri := len(ss.Receivers) - 1; ri >= 0; ri-- {
				if !ss.Receivers[ri].Attacker {
					ss.Receivers = append(ss.Receivers[:ri], ss.Receivers[ri+1:]...)
					dropReceiverEvents(sp, 1, ri+1)
					break
				}
			}
		}
	default: // perturb duration and the experiment's internal seed
		sp.DurationSec = round3(sp.DurationSec + (rng.Float64()-0.5)*4)
		if rng.IntN(2) == 0 {
			sp.Seed = rng.Uint64()
		}
	}
}

// directedChildren derives deterministic hill-climb neighbors of the
// current best scenario, pushing the dimensions that most directly raise
// attacker advantage: more bottleneck capacity (more throughput for a
// winning attacker to take), stronger strategies, earlier onsets. The
// tournament children explore; these exploit, so the search climbs even
// when random mutation rarely draws the improving move.
func directedChildren(best Spec) []Spec {
	capUp := clone(best)
	for i := range capUp.Topology.CapacitiesBps {
		capUp.Topology.CapacitiesBps[i] = int64(1.45 * float64(capUp.Topology.CapacitiesBps[i]))
	}
	repairHunt(&capUp)

	press := clone(best) // full-pressure attack: forge everywhere, from the start
	for si := range press.Sessions {
		for ri := range press.Sessions[si].Receivers {
			if press.Sessions[si].Receivers[ri].Attacker {
				press.Sessions[si].Receivers[ri].Strategy = "forging"
			}
		}
	}
	for i := range press.Events {
		if press.Events[i].Kind == EvOnset {
			press.Events[i].AtSec = 1
		}
	}
	repairHunt(&press)

	both := clone(capUp)
	for si := range both.Sessions {
		for ri := range both.Sessions[si].Receivers {
			if both.Sessions[si].Receivers[ri].Attacker {
				both.Sessions[si].Receivers[ri].Strategy = "forging"
			}
		}
	}
	for i := range both.Events {
		if both.Events[i].Kind == EvOnset {
			both.Events[i].AtSec = 1
		}
	}
	repairHunt(&both)

	tall := clone(both) // taller schedule: more rate at the top to take
	if tall.Groups == 0 {
		tall.Groups = 10
	}
	tall.Groups++
	repairHunt(&tall)

	return []Spec{capUp, press, both, tall}
}

// dropReceiverEvents removes events referencing a removed receiver and
// renumbers references to the receivers behind it (mirrors the shrinker's
// removeReceiver, on an in-place spec).
func dropReceiverEvents(sp *Spec, session, receiver int) {
	var events []EventSpec
	for _, ev := range sp.Events {
		if eventReferencesReceiver(ev, session, receiver) {
			continue
		}
		if ev.Session == session && ev.Receiver > receiver {
			switch ev.Kind {
			case EvJoin, EvLeave, EvOnset, EvStop:
				ev.Receiver--
			}
		}
		events = append(events, ev)
	}
	sp.Events = events
}

// specFingerprint digests a spec alone (no outcome), keying the archive.
func specFingerprint(sp Spec) string {
	js, err := json.Marshal(sp)
	if err != nil {
		return fmt.Sprintf("unmarshalable:%v", err)
	}
	return fingerprint(js, nil)
}

// scored pairs a spec with its measured eval inside the search loop.
type scored struct {
	spec Spec
	eval HuntEval
	fp   string
	gen  int
}

// rankScored orders by fitness descending, fingerprint ascending — a
// total order independent of evaluation scheduling.
func rankScored(s []scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].eval.Fitness != s[j].eval.Fitness {
			return s[i].eval.Fitness > s[j].eval.Fitness
		}
		return s[i].fp < s[j].fp
	})
}

// Hunt runs the fitness-guided search: a seeded initial population,
// then Gens generations of elitist selection — the Elite best survive
// with cached evals — and tournament-selected, mutated children evaluated
// on the campaign pool. The returned report ranks the best distinct
// scenarios ever seen and shrinks the top ones into minimal repros.
func Hunt(cfg HuntConfig) HuntReport {
	cfg = cfg.withDefaults()
	master := sim.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)

	pop := make([]Spec, cfg.Pop)
	for i := range pop {
		pop[i] = GenerateHunt(cfg.Seed + uint64(i))
	}

	report := HuntReport{Config: cfg}
	seen := map[string]scored{} // best-known eval per spec fingerprint
	var elites []scored

	for gen := 0; gen < cfg.Gens; gen++ {
		evals := evalAll(pop, cfg.Workers)
		report.Evaluated += len(pop)

		gener := make([]scored, 0, len(pop)+len(elites))
		for i, sp := range pop {
			s := scored{spec: sp, eval: evals[i], fp: specFingerprint(sp), gen: gen}
			if prev, ok := seen[s.fp]; !ok || s.eval.Fitness > prev.eval.Fitness {
				seen[s.fp] = s
			}
			gener = append(gener, s)
		}
		gener = append(gener, elites...)
		rankScored(gener)
		// Deduplicate by fingerprint, keeping the best-ranked instance.
		dedup := gener[:0]
		taken := map[string]bool{}
		for _, s := range gener {
			if taken[s.fp] {
				continue
			}
			taken[s.fp] = true
			dedup = append(dedup, s)
		}
		gener = dedup

		report.GenBest = append(report.GenBest, gener[0].eval.Fitness)
		if gen == cfg.Gens-1 {
			break
		}

		// Next generation: elites survive with cached evals; the rest are
		// tournament children. gener is sorted, so the better of two
		// uniform index draws is simply the smaller index.
		n := cfg.Elite
		if n > len(gener) {
			n = len(gener)
		}
		elites = append([]scored(nil), gener[:n]...)
		children := make([]Spec, 0, cfg.Pop-n)
		// Exploit first: deterministic hill-climb neighbors of the best.
		for _, c := range directedChildren(gener[0].spec) {
			if len(children) < cfg.Pop-n {
				children = append(children, c)
			}
		}
		for len(children) < cfg.Pop-n {
			i, j := master.IntN(len(gener)), master.IntN(len(gener))
			if j < i {
				i = j
			}
			childRNG := sim.NewRNG(master.Uint64())
			children = append(children, Mutate(gener[i].spec, childRNG))
		}
		pop = children
	}

	// Rank everything ever seen and keep the report's corpus.
	all := make([]scored, 0, len(seen))
	for _, s := range seen {
		all = append(all, s)
	}
	rankScored(all)
	if len(all) > cfg.Keep {
		all = all[:cfg.Keep]
	}
	for rank, s := range all {
		sc := HuntScenario{
			Rank:        rank + 1,
			Fitness:     s.eval.Fitness,
			Gen:         s.gen,
			Fingerprint: s.fp,
			Eval:        s.eval,
			Spec:        s.spec,
		}
		if rank < cfg.ShrinkTop && s.eval.Fitness > 0 {
			shrunk, ev := ShrinkHunt(s.spec, cfg.ShrinkBudget)
			sc.Shrunk = &shrunk
			sc.ShrunkEval = &ev
		}
		report.Scenarios = append(report.Scenarios, sc)
	}
	return report
}

// RandomBaseline evaluates n random hunt scenarios (seeds seed..seed+n-1,
// the exact draws an unguided fuzzer would sample) and returns the best
// eval — the yardstick the guided search must beat. First strictly-better
// fitness wins, so the result is worker-count-independent.
func RandomBaseline(seed uint64, n, workers int) HuntEval {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = GenerateHunt(seed + uint64(i))
	}
	var best HuntEval
	for _, ev := range evalAll(specs, workers) {
		if ev.Fitness > best.Fitness {
			best = ev
		}
	}
	return best
}

// ShrinkHunt greedily minimizes a hunt scenario under the fitness rule:
// every accepted candidate must retain at least HuntShrinkSlack of the
// original advantage (where the invariant shrinker demands the same
// failure key). Candidates whose repair loses the oracle or that fail to
// build are rejected outright. Returns the smallest accepted spec and its
// measured eval; budget 0 means DefaultHuntShrinkBudget.
func ShrinkHunt(spec Spec, budget int) (Spec, HuntEval) {
	if budget <= 0 {
		budget = DefaultHuntShrinkBudget
	}
	best := EvaluateAdvantage(spec, nil)
	if best.Err != "" || best.Fitness <= 0 {
		return spec, best
	}
	floor := best.Fitness * HuntShrinkSlack
	runs := 1
	try := func(cand Spec) (HuntEval, bool) {
		if runs >= budget || cand.Oracle == nil {
			return HuntEval{}, false
		}
		runs++
		ev := EvaluateAdvantage(cand, nil)
		return ev, ev.Err == "" && ev.Fitness >= floor
	}

	for pass := 0; pass < 6; pass++ {
		shrunk := false

		// Drop events, last to first.
		for i := len(spec.Events) - 1; i >= 0; i-- {
			cand := clone(spec)
			cand.Events = append(cand.Events[:i], cand.Events[i+1:]...)
			if ev, ok := try(cand); ok {
				spec, best, shrunk = cand, ev, true
			}
		}

		// Drop receivers, attackers last.
		for si := range spec.Sessions {
			for ri := len(spec.Sessions[si].Receivers) - 1; ri >= 0; ri-- {
				cand := removeReceiver(spec, si, ri)
				if ev, ok := try(cand); ok {
					spec, best, shrunk = cand, ev, true
				}
			}
		}

		// Drop cross traffic.
		for spec.TCP > 0 {
			cand := clone(spec)
			cand.TCP--
			ev, ok := try(cand)
			if !ok {
				break
			}
			spec, best, shrunk = cand, ev, true
		}
		if spec.CBRFraction > 0 {
			cand := clone(spec)
			cand.CBRFraction = 0
			if ev, ok := try(cand); ok {
				spec, best, shrunk = cand, ev, true
			}
		}

		// Drop extra sessions.
		for si := len(spec.Sessions) - 1; si >= 1; si-- {
			cand := removeSession(spec, si)
			if ev, ok := try(cand); ok {
				spec, best, shrunk = cand, ev, true
			}
		}

		if !shrunk || runs >= budget {
			break
		}
	}
	return spec, best
}
