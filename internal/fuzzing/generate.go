package fuzzing

import (
	"deltasigma"
	"deltasigma/internal/sim"
)

// Generation menus. Capacities stay modest so a corpus of hundreds of
// scenarios runs in seconds; durations stay long enough for slot clocks,
// graft latency and attack convergence to all play out.
var (
	genProtocols = []string{
		"flid-dl", "flid-ds", "flid-ds", // weight the paper's headline variant
		"flid-ds-replicated", "flid-ds-threshold",
		"mfcc", "dsc", "abr-cf", // the competitor suite fuzzes too
	}
	genCaps = []int64{250_000, 400_000, 600_000, 800_000, 1_000_000, 1_500_000}
	// genCohorts is the aggregated-population menu: the fluid model's cost
	// is count-independent, so large memberships are as cheap as small ones.
	genCohorts = []int{10, 100, 1_000, 25_000, 500_000}
)

// Oracle calibration: the suppression bound allows this factor over the
// honest median plus an absolute floor, and the measurement window opens
// this long after attack onset (SIGMA needs a few slot cycles to penalize
// the guessing attacker and the honest receivers a few more to re-climb).
const (
	oracleConverge  = 5.0  // seconds after onset before the window opens
	oracleMinWindow = 3.0  // seconds of measurement the window must keep
	oracleFactor    = 1.25 // slack over the honest median
	oracleFloorKbps = 30.0 // absolute grace floor
)

// Generate derives one random-but-valid scenario from a fuzz seed. The
// spec is a pure function of the seed: same seed, same spec, field for
// field — which is what makes campaign summaries worker-count-independent
// and repro files self-contained.
func Generate(seed uint64) Spec {
	rng := sim.NewRNG(seed)
	sp := Spec{
		Seed:        seed,
		Protocol:    genProtocols[rng.IntN(len(genProtocols))],
		DurationSec: float64(8 + rng.IntN(7)), // 8..14 s
	}

	// Topology: one of the three families, sized from the capacity menu.
	switch rng.IntN(3) {
	case 0:
		sp.Topology = TopoSpec{Kind: "dumbbell", CapacitiesBps: []int64{genCaps[rng.IntN(len(genCaps))]}}
	case 1:
		hops := 2 + rng.IntN(2)
		sp.Topology = TopoSpec{Kind: "chain", CapacitiesBps: capList(rng, hops)}
	default:
		spokes := 2 + rng.IntN(2)
		sp.Topology = TopoSpec{Kind: "star", CapacitiesBps: capList(rng, spokes)}
	}

	// Schedule: replicated senders transmit every group simultaneously, so
	// they always get the compact 6-group schedule; the cumulative variants
	// occasionally get a non-default group count.
	if sp.Protocol == "flid-ds-replicated" {
		sp.Groups = 6
	} else if rng.Float64() < 0.3 {
		sp.Groups = 5 + rng.IntN(5)
	}

	// Populations: one or two sessions, a handful of receivers, up to two
	// attackers spread across them. Schemes with no inflated-subscription
	// attack surface (ProtocolHasAttacker false) get none: Wire attaches
	// attackers through the panicking AddAttackerAt path, and a generator
	// that emitted them would drown real findings in sanctioned panics.
	nSessions := 1
	if rng.Float64() < 0.3 {
		nSessions = 2
	}
	attackBudget := rng.IntN(3) // 0..2 attackers in the whole scenario
	if !deltasigma.ProtocolHasAttacker(sp.Protocol) {
		attackBudget = 0
	}
	for s := 0; s < nSessions; s++ {
		var ss SessionSpec
		honest := 1 + rng.IntN(4)
		for i := 0; i < honest; i++ {
			rs := ReceiverSpec{}
			if rng.Float64() < 0.4 {
				rs.DelayMs = 2 + 48*rng.Float64()
			}
			if rng.Float64() < 0.15 {
				rs.StartSec = 0.5 + 1.5*rng.Float64()
			}
			ss.Receivers = append(ss.Receivers, rs)
		}
		nAtk := 0
		if attackBudget > 0 {
			nAtk = 1 + rng.IntN(attackBudget)
			attackBudget -= nAtk
		}
		for i := 0; i < nAtk; i++ {
			ss.Receivers = append(ss.Receivers, ReceiverSpec{Attacker: true})
		}
		sp.Sessions = append(sp.Sessions, ss)
	}

	// Cohorts: aggregated honest populations ride along only where the
	// protocol exposes a layered fluid aggregate for the cohort model to
	// observe — AddCohort rejects the replicated sender and the competitor
	// schemes alike, so the registry capability is the gate.
	if deltasigma.ProtocolSupportsCohorts(sp.Protocol) {
		for si := range sp.Sessions {
			if rng.Float64() < 0.3 {
				n := 1 + rng.IntN(2)
				for i := 0; i < n; i++ {
					sp.Sessions[si].Cohorts = append(sp.Sessions[si].Cohorts, genCohorts[rng.IntN(len(genCohorts))])
				}
			}
		}
		if sp.hasCohorts() && rng.Float64() < 0.4 {
			sp.NoConsolidation = true
		}
	}

	// Cross traffic.
	sp.TCP = rng.IntN(3)
	if rng.Float64() < 0.3 {
		sp.CBRFraction = 0.1 + 0.2*rng.Float64()
	}

	// Timeline. Attackers always get an onset; everything else is dice.
	dur := sp.DurationSec
	onsets := make([]float64, len(sp.Sessions)) // latest onset per session; 0 = none
	stops := make([]bool, len(sp.Sessions))
	for si, ss := range sp.Sessions {
		for ri, rs := range ss.Receivers {
			if !rs.Attacker {
				continue
			}
			at := 1 + rng.Float64()*dur/2
			sp.Events = append(sp.Events, EventSpec{Kind: EvOnset, AtSec: round3(at), Session: si + 1, Receiver: ri + 1})
			if at > onsets[si] {
				onsets[si] = at
			}
			if rng.Float64() < 0.25 && at+1 < dur-1 {
				stopAt := at + 1 + rng.Float64()*(dur-at-2)
				sp.Events = append(sp.Events, EventSpec{Kind: EvStop, AtSec: round3(stopAt), Session: si + 1, Receiver: ri + 1})
				stops[si] = true
			}
		}
	}
	churned := make([]bool, len(sp.Sessions))
	for si, ss := range sp.Sessions {
		honest := 0
		for _, rs := range ss.Receivers {
			if !rs.Attacker {
				honest++
			}
		}
		if honest == 0 && len(ss.Cohorts) == 0 {
			continue
		}
		if rng.Float64() < 0.3 {
			sp.Events = append(sp.Events, EventSpec{
				Kind: EvChurn, Session: si + 1,
				Rate:    round3(0.2 + 1.8*rng.Float64()),
				FromSec: 0.5, ToSec: round3(dur - 0.5),
			})
			churned[si] = true
		} else if honest > 0 && rng.Float64() < 0.25 {
			// A scripted leave, sometimes followed by a rejoin.
			ri := 1 + rng.IntN(honest) // honest receivers precede attackers
			leave := 1 + rng.Float64()*(dur-3)
			sp.Events = append(sp.Events, EventSpec{Kind: EvLeave, AtSec: round3(leave), Session: si + 1, Receiver: ri})
			if rng.Float64() < 0.6 {
				sp.Events = append(sp.Events, EventSpec{Kind: EvJoin, AtSec: round3(leave + 0.5 + 2*rng.Float64()), Session: si + 1, Receiver: ri})
			}
			churned[si] = true
		}
	}
	linkEvents := rng.IntN(3)
	linksTouched := linkEvents > 0
	nLinks := len(sp.Topology.CapacitiesBps)
	for i := 0; i < linkEvents; i++ {
		link := rng.IntN(nLinks)
		switch rng.IntN(4) {
		case 0:
			factor := 0.5 + 1.5*rng.Float64()
			bps := int64(factor * float64(sp.Topology.CapacitiesBps[link]))
			if bps < 100_000 {
				bps = 100_000
			}
			sp.Events = append(sp.Events, EventSpec{Kind: EvCap, AtSec: round3(1 + rng.Float64()*(dur-2)), Link: link, Bps: bps})
		case 1:
			sp.Events = append(sp.Events, EventSpec{Kind: EvDelay, AtSec: round3(1 + rng.Float64()*(dur-2)), Link: link, DelayMs: round3(2 + 48*rng.Float64())})
		case 2:
			down := 1 + rng.Float64()*(dur-3)
			up := down + 0.2 + 1.3*rng.Float64()
			sp.Events = append(sp.Events,
				EventSpec{Kind: EvDown, AtSec: round3(down), Link: link},
				EventSpec{Kind: EvUp, AtSec: round3(up), Link: link})
		default:
			period := 2 + 3*rng.Float64()
			to := dur - 0.5
			if period < to {
				sp.Events = append(sp.Events, EventSpec{Kind: EvFlap, Link: link, PeriodSec: round3(period), ToSec: round3(to)})
			}
		}
	}

	// Oracle: armed only where the paper's claim must hold unconditionally —
	// a protected variant, an attacked session with honest company that no
	// churn or scripted leave disturbs, no attacker stand-down, stable
	// links, a topology where attacker and honest receivers share a path
	// (a star round-robins receivers across spokes, so unequal spoke
	// capacities make unequal entitled shares — no claim to check), and
	// enough post-convergence runway to measure.
	if protocolProtected(sp.Protocol) && !linksTouched && sp.comparablePaths() {
		for si := range sp.Sessions {
			honest, atk := populations(sp.Sessions[si])
			if atk == 0 || honest == 0 || churned[si] || stops[si] {
				continue
			}
			// Cohorts sit behind their own private edge with default delay;
			// the oracle levels per-receiver RTTs to compare equals, which it
			// cannot do for an aggregate, so such sessions are not measured.
			if len(sp.Sessions[si].Cohorts) > 0 {
				continue
			}
			// The window opens oracleConverge after the session's LATEST
			// onset — every attacker must have had its convergence
			// allowance before measurement starts — and needs runway after
			// that; rather than discarding an otherwise eligible scenario,
			// pull late onsets early enough to fit (the generator owns the
			// scenario — an early attack is as valid as a late one).
			bound := dur - oracleConverge - oracleMinWindow
			if bound < 1 {
				continue // the run is too short for any measured attack
			}
			if onsets[si] > bound {
				for ei := range sp.Events {
					ev := &sp.Events[ei]
					if ev.Kind == EvOnset && ev.Session == si+1 && ev.AtSec > bound {
						ev.AtSec = round3(bound)
					}
				}
				onsets[si] = bound
			}
			from := onsets[si] + oracleConverge
			// The oracle compares equals: level the session's RTTs and joins.
			for ri := range sp.Sessions[si].Receivers {
				sp.Sessions[si].Receivers[ri].DelayMs = 0
				sp.Sessions[si].Receivers[ri].StartSec = 0
			}
			sp.Oracle = &OracleSpec{
				Session:   si + 1,
				FromSec:   round3(from),
				Factor:    oracleFactor,
				FloorKbps: oracleFloorKbps,
			}
			break
		}
	}
	return sp
}

// hasCohorts reports whether any session carries an aggregated population.
func (sp Spec) hasCohorts() bool {
	for _, ss := range sp.Sessions {
		if len(ss.Cohorts) > 0 {
			return true
		}
	}
	return false
}

// comparablePaths reports whether every default-egress receiver sees the
// same bottleneck capacity: always true for dumbbell and chain (one shared
// path), true for a star only when its spokes are equal.
func (sp Spec) comparablePaths() bool {
	if sp.Topology.Kind != "star" {
		return true
	}
	caps := sp.Topology.CapacitiesBps
	for _, c := range caps[1:] {
		if c != caps[0] {
			return false
		}
	}
	return true
}

// capList draws n capacities from the menu.
func capList(rng *sim.RNG, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = genCaps[rng.IntN(len(genCaps))]
	}
	return out
}

// populations counts honest receivers and attackers in a session.
func populations(ss SessionSpec) (honest, attackers int) {
	for _, rs := range ss.Receivers {
		if rs.Attacker {
			attackers++
		} else {
			honest++
		}
	}
	return
}

// protocolProtected reports whether the named registered variant runs
// behind SIGMA gatekeepers.
func protocolProtected(name string) bool {
	p, ok := deltasigma.LookupProtocol(name)
	return ok && p.Protected()
}

// round3 keeps generated times human-readable in repro files (and exactly
// representable, so a spec read back from JSON replays bit-identically).
func round3(f float64) float64 { return float64(int64(f*1000)) / 1000 }
