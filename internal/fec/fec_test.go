package fec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRepetitionRoundTrip(t *testing.T) {
	c := Repetition{Factor: 2}
	payload := []byte("address-key tuples for slot 42")
	blocks := c.Encode(payload)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	got, ok := c.Decode(blocks)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("decode failed: %q ok=%v", got, ok)
	}
}

func TestRepetitionSurvivesHalfLoss(t *testing.T) {
	c := Repetition{Factor: 2}
	payload := []byte("keys")
	blocks := c.Encode(payload)
	// Lose either copy: still decodes — the paper's 50% target.
	for drop := 0; drop < 2; drop++ {
		var kept []Block
		for i, b := range blocks {
			if i != drop {
				kept = append(kept, b)
			}
		}
		got, ok := c.Decode(kept)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("drop %d: decode failed", drop)
		}
	}
	if _, ok := c.Decode(nil); ok {
		t.Fatal("decoding nothing should fail")
	}
}

func TestRepetitionCopiesAreIndependent(t *testing.T) {
	c := Repetition{Factor: 3}
	payload := []byte{1, 2, 3}
	blocks := c.Encode(payload)
	blocks[0].Data[0] = 99 // corrupt one copy in place
	if payload[0] != 1 {
		t.Fatal("encode must copy the payload")
	}
	if blocks[1].Data[0] != 1 {
		t.Fatal("copies must not share backing arrays")
	}
}

func TestXORParityRoundTripNoLoss(t *testing.T) {
	c := XORParity{K: 3}
	payload := []byte("0123456789abcdefghij")
	blocks := c.Encode(payload)
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d, want k+1 = 4", len(blocks))
	}
	got, ok := c.Decode(blocks)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("decode failed: %q", got)
	}
}

func TestXORParityRecoversAnySingleLoss(t *testing.T) {
	c := XORParity{K: 4}
	payload := []byte("the quick brown fox jumps over the lazy dog")
	blocks := c.Encode(payload)
	for drop := 0; drop < len(blocks); drop++ {
		var kept []Block
		for i, b := range blocks {
			if i != drop {
				kept = append(kept, b)
			}
		}
		got, ok := c.Decode(kept)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("drop %d: decode failed (ok=%v)", drop, ok)
		}
	}
}

func TestXORParityFailsOnDoubleLoss(t *testing.T) {
	c := XORParity{K: 4}
	blocks := c.Encode([]byte("some payload bytes here"))
	if _, ok := c.Decode(blocks[2:]); ok {
		t.Fatal("double data loss must fail")
	}
}

func TestXORParityOddSizes(t *testing.T) {
	c := XORParity{K: 3}
	for size := 0; size < 40; size++ {
		payload := bytes.Repeat([]byte{byte(size + 1)}, size)
		got, ok := c.Decode(c.Encode(payload))
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("size %d: round trip failed", size)
		}
	}
}

func TestExpansionFactors(t *testing.T) {
	if (Repetition{Factor: 2}).Expansion() != 2 {
		t.Fatal("repetition z wrong")
	}
	if (XORParity{K: 4}).Expansion() != 1.25 {
		t.Fatal("parity z wrong")
	}
	if (Repetition{}).Expansion() != 1 || (XORParity{}).Expansion() != 2 {
		t.Fatal("degenerate expansions wrong")
	}
}

func TestForLossTarget(t *testing.T) {
	c, err := ForLossTarget(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(Repetition); !ok {
		t.Fatalf("50%% loss should pick repetition, got %T", c)
	}
	c, err = ForLossTarget(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(XORParity); !ok {
		t.Fatalf("10%% loss should pick parity, got %T", c)
	}
	if _, err := ForLossTarget(1.5); err == nil {
		t.Fatal("invalid loss rate accepted")
	}
	if _, err := ForLossTarget(-0.1); err == nil {
		t.Fatal("negative loss rate accepted")
	}
}

// Property: both codes round-trip arbitrary payloads with any single block
// dropped.
func TestSingleLossProperty(t *testing.T) {
	codes := []Code{Repetition{Factor: 2}, XORParity{K: 3}}
	f := func(payload []byte, dropRaw uint8) bool {
		for _, c := range codes {
			blocks := c.Encode(payload)
			drop := int(dropRaw) % len(blocks)
			var kept []Block
			for i, b := range blocks {
				if i != drop {
					kept = append(kept, b)
				}
			}
			got, ok := c.Decode(kept)
			if !ok || !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXORParityEncode(b *testing.B) {
	c := XORParity{K: 4}
	payload := bytes.Repeat([]byte{0xAB}, 580) // a 20-tuple announce
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(payload)
	}
}
