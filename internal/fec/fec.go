// Package fec provides the forward-error-correction codes SIGMA uses to
// deliver key material to edge routers reliably (§3.2.1): a repetition code
// (expansion z = factor, tolerates loss of all but one copy) and an
// XOR-parity code (expansion (k+1)/k, tolerates any single loss per
// generation). The §5.4 overhead model consumes only the expansion factor
// z; these encoders also actually recover the data, which the tests verify
// under the paper's 50% loss target.
package fec

import (
	"errors"
	"fmt"
)

// Block is one coded unit: Index identifies it within the generation of
// Total blocks.
type Block struct {
	Index int
	Total int
	Data  []byte
}

// Code expands a payload into coded blocks and recovers the payload from
// any sufficient subset.
type Code interface {
	// Encode splits/expands payload into blocks.
	Encode(payload []byte) []Block
	// Decode reconstructs the payload from the surviving blocks; ok is
	// false when too few survived.
	Decode(blocks []Block) (payload []byte, ok bool)
	// Expansion reports z, the ratio of coded bytes to payload bytes.
	Expansion() float64
}

// Repetition sends Factor identical copies; any one suffices. Expansion is
// Factor. With Factor 2 it overcomes 50% loss in expectation — the paper's
// setting.
type Repetition struct {
	Factor int
}

// Encode implements Code.
func (r Repetition) Encode(payload []byte) []Block {
	f := r.Factor
	if f < 1 {
		f = 1
	}
	out := make([]Block, f)
	for i := range out {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		out[i] = Block{Index: i, Total: f, Data: cp}
	}
	return out
}

// Decode implements Code.
func (r Repetition) Decode(blocks []Block) ([]byte, bool) {
	for _, b := range blocks {
		if b.Data != nil {
			return b.Data, true
		}
	}
	return nil, false
}

// Expansion implements Code.
func (r Repetition) Expansion() float64 {
	if r.Factor < 1 {
		return 1
	}
	return float64(r.Factor)
}

// XORParity splits the payload into K equal shards and appends one parity
// shard; any K of the K+1 blocks reconstruct. Expansion is (K+1)/K —
// cheaper than repetition but it only tolerates a single loss per
// generation.
type XORParity struct {
	K int
}

// Encode implements Code. The payload is length-prefixed and padded so the
// shards divide evenly.
func (x XORParity) Encode(payload []byte) []Block {
	k := x.K
	if k < 1 {
		k = 1
	}
	// Prefix the true length so padding strips cleanly.
	framed := make([]byte, 4+len(payload))
	framed[0] = byte(len(payload) >> 24)
	framed[1] = byte(len(payload) >> 16)
	framed[2] = byte(len(payload) >> 8)
	framed[3] = byte(len(payload))
	copy(framed[4:], payload)

	shard := (len(framed) + k - 1) / k
	if shard == 0 {
		shard = 1
	}
	blocks := make([]Block, k+1)
	parity := make([]byte, shard)
	for i := 0; i < k; i++ {
		d := make([]byte, shard)
		lo := i * shard
		if lo < len(framed) {
			hi := lo + shard
			if hi > len(framed) {
				hi = len(framed)
			}
			copy(d, framed[lo:hi])
		}
		for j, v := range d {
			parity[j] ^= v
		}
		blocks[i] = Block{Index: i, Total: k + 1, Data: d}
	}
	blocks[k] = Block{Index: k, Total: k + 1, Data: parity}
	return blocks
}

// Decode implements Code.
func (x XORParity) Decode(blocks []Block) ([]byte, bool) {
	k := x.K
	if k < 1 {
		k = 1
	}
	if len(blocks) == 0 {
		return nil, false
	}
	shard := len(blocks[0].Data)
	have := make([][]byte, k+1)
	n := 0
	for _, b := range blocks {
		if b.Index < 0 || b.Index > k || b.Data == nil {
			continue
		}
		if have[b.Index] == nil {
			have[b.Index] = b.Data
			n++
		}
	}
	if n < k {
		return nil, false
	}
	// Recover a single missing data shard from parity.
	missing := -1
	for i := 0; i < k; i++ {
		if have[i] == nil {
			missing = i
			break
		}
	}
	if missing >= 0 {
		if have[k] == nil {
			return nil, false
		}
		rec := make([]byte, shard)
		copy(rec, have[k])
		for i := 0; i < k; i++ {
			if i == missing {
				continue
			}
			for j, v := range have[i] {
				rec[j] ^= v
			}
		}
		have[missing] = rec
	}
	framed := make([]byte, 0, k*shard)
	for i := 0; i < k; i++ {
		framed = append(framed, have[i]...)
	}
	if len(framed) < 4 {
		return nil, false
	}
	length := int(framed[0])<<24 | int(framed[1])<<16 | int(framed[2])<<8 | int(framed[3])
	if length < 0 || 4+length > len(framed) {
		return nil, false
	}
	return framed[4 : 4+length], true
}

// Expansion implements Code.
func (x XORParity) Expansion() float64 {
	k := x.K
	if k < 1 {
		k = 1
	}
	return float64(k+1) / float64(k)
}

// ErrBadScheme reports an unusable configuration.
var ErrBadScheme = errors.New("fec: unusable scheme")

// ForLossTarget picks the cheapest of the two codes that still meets a
// tolerated per-block loss probability under independent losses: repetition
// with z = 2 for anything up to 50%, XOR parity for milder targets.
func ForLossTarget(lossRate float64) (Code, error) {
	switch {
	case lossRate < 0 || lossRate >= 1:
		return nil, fmt.Errorf("%w: loss rate %v", ErrBadScheme, lossRate)
	case lossRate <= 0.25:
		return XORParity{K: 2}, nil
	default:
		return Repetition{Factor: 2}, nil
	}
}
