// Package replicated implements a replicated multicast congestion control
// protocol (destination-set grouping in the style of Cheung & Ammar, the
// paper's §3.1.2 "Session structure" case) protected by the Figure 5 DELTA
// instantiation and SIGMA: each group of the session carries the *same*
// content at a different rate, and a receiver subscribes to exactly one
// group, switching down on loss and up on authorization.
package replicated

import (
	"deltasigma/internal/core"
	"deltasigma/internal/delta"
	"deltasigma/internal/keys"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// Sender transmits every rate group each slot and runs the Figure 5 key
// generation. Announces go to every group: a replicated receiver sits on
// only one tree.
type Sender struct {
	Sess   *core.Session
	host   *netsim.Host
	policy core.UpgradePolicy
	rng    *sim.RNG

	pacers []core.Pacer
	dsend  *delta.ReplicatedSender
	ann    *sigma.Announcer

	running bool
	scratch core.SlotScratch // per-slot auth/counts, reused every slot

	// PacketsSent counts data packets.
	PacketsSent uint64
}

// NewSender builds a protected replicated sender. Group g transmits at the
// session schedule's cumulative rate of level g (each group is a complete
// stream).
func NewSender(host *netsim.Host, sess *core.Session, policy core.UpgradePolicy, rng *sim.RNG, repeat int) *Sender {
	sess.Rates.Validate()
	s := &Sender{
		Sess: sess, host: host, policy: policy, rng: rng,
		pacers:  make([]core.Pacer, sess.Rates.N),
		scratch: core.NewSlotScratch(sess.Rates.N),
	}
	for i := range s.pacers {
		s.pacers[i].MinOne = true
	}
	src := keys.NewSource(keys.DefaultBits, rng.Fork().Uint64)
	s.dsend = delta.NewReplicatedSender(sess.Rates.N, src)
	s.ann = sigma.NewAnnouncer(host, sess.ID, sess.BaseAddr, sess.Rates.N, repeat)
	s.ann.Spacing = sess.SlotDur / 4
	return s
}

// Start begins the slot loop.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	sched := s.host.Scheduler()
	start := s.Sess.Epoch
	if start < sched.Now() {
		start = sched.Now()
	}
	sched.At(start, func() { s.runSlot(s.Sess.SlotAt(sched.Now())) })
}

// Stop halts the sender.
func (s *Sender) Stop() { s.running = false }

func (s *Sender) runSlot(slot uint32) {
	if !s.running {
		return
	}
	sched := s.host.Scheduler()
	n := s.Sess.Rates.N

	inc := s.policy.IncreaseTo(slot)
	if inc > n {
		inc = n
	}
	auth, counts := s.scratch.Begin()
	for g := 2; g <= inc; g++ {
		auth[g-1] = true
	}
	for g := 1; g <= n; g++ {
		counts[g-1] = s.pacers[g-1].Packets(s.Sess.Rates.Cumulative(g), s.Sess.SlotDur, s.Sess.PacketSize)
	}

	rs := s.dsend.BeginSlot(slot, auth, counts)
	s.ann.AnnounceAll(core.AccessSlot(slot), rs.Keys.Tuples(s.Sess.BaseAddr))

	slotStart := s.Sess.SlotStart(slot)
	for g := 1; g <= n; g++ {
		cnt := counts[g-1]
		spacing := s.Sess.SlotDur / sim.Time(cnt)
		for j := 1; j <= cnt; j++ {
			comp, dec := rs.Fields(g)
			hdr := &packet.ReplHeader{
				Session: s.Sess.ID, Group: uint8(g), Slot: slot,
				Seq: uint16(j), Count: uint16(cnt), IncreaseTo: uint8(inc),
				HasDelta: true, Component: comp, Decrease: dec,
			}
			at := slotStart + sim.Time(j-1)*spacing + s.rng.Jitter(spacing/2)
			if at < sched.Now() {
				at = sched.Now()
			}
			pkt := s.host.Network().NewPacket(s.host.Addr(), s.Sess.GroupAddr(g), s.Sess.PacketSize, hdr)
			sched.Schedule(at, func() {
				s.PacketsSent++
				s.host.Send(pkt)
			})
		}
	}
	sched.Schedule(s.Sess.SlotStart(slot+1), func() { s.runSlot(slot + 1) })
}

// Receiver subscribes to a single rate group and moves between groups per
// the Figure 5 subscription rules, through SIGMA keys.
type Receiver struct {
	Sess   *core.Session
	host   *netsim.Host
	client *sigma.Client

	group      int // current group; 0 = none
	recvs      map[uint32]*delta.ReplicatedReceiver
	groupAt    map[uint32]int
	joinedSlot uint32
	running    bool
	loop       *core.SlotLoop

	// Meter records delivered session bytes.
	Meter *stats.Meter
	// Switches counts group changes.
	Switches uint64
	// Rejoins counts keyless re-admissions.
	Rejoins uint64
}

// NewReceiver builds a replicated receiver.
func NewReceiver(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Receiver {
	r := &Receiver{
		Sess:    sess,
		host:    host,
		client:  sigma.NewClient(host, routerAddr),
		recvs:   make(map[uint32]*delta.ReplicatedReceiver),
		groupAt: make(map[uint32]int),
		Meter:   stats.NewMeter(sim.Second),
	}
	r.loop = core.NewSlotLoop(host.Scheduler(), sess, 8*sess.SlotDur/10, r.onEval)
	host.Handle(packet.ProtoRepl, r.onData)
	return r
}

// Group reports the current rate group.
func (r *Receiver) Group() int { return r.group }

// Start joins the session at the slowest group.
func (r *Receiver) Start() {
	if r.running {
		return
	}
	r.running = true
	cur := r.Sess.SlotAt(r.host.Scheduler().Now())
	r.group = 1
	r.groupAt[cur] = 1
	r.joinedSlot = cur + 1
	r.client.SessionJoin(r.Sess.BaseAddr)
	r.loop.Schedule(cur)
}

// Stop leaves the session.
func (r *Receiver) Stop() {
	r.running = false
	r.client.Unsubscribe(r.Sess.Addrs())
	r.group = 0
}

// onEval fires once per slot on the loop's reusable timer.
func (r *Receiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	r.evaluate(slot)
	return true
}

func (r *Receiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.ReplHeader)
	if !ok || h.Session != r.Sess.ID {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	dr := r.recvs[h.Slot]
	if dr == nil {
		dr = delta.NewReplicatedReceiver(r.Sess.Rates.N)
		dr.Begin(h.Slot)
		r.recvs[h.Slot] = dr
	}
	g := r.groupDuring(h.Slot)
	dr.Observe(h, g, pkt.ECN)
}

// groupDuring returns the group subscribed during a slot.
func (r *Receiver) groupDuring(slot uint32) int {
	for s := slot; ; s-- {
		if g, ok := r.groupAt[s]; ok {
			return g
		}
		if s == 0 || slot-s > 16 {
			return r.group
		}
	}
}

func (r *Receiver) evaluate(slot uint32) {
	dr := r.recvs[slot]
	delete(r.recvs, slot)
	for s := range r.recvs {
		if s+4 < slot {
			delete(r.recvs, s)
		}
	}
	for s := range r.groupAt {
		if s+8 < slot {
			delete(r.groupAt, s)
		}
	}
	g := r.groupDuring(slot)
	if g == 0 {
		g = 1
	}
	if r.joinedSlot > slot || dr == nil {
		if dr == nil && r.joinedSlot <= slot {
			r.rejoin(slot)
			return
		}
		// Carry the latest decision, not the group active during the
		// evaluated slot — mid-switch they differ.
		r.groupAt[core.AccessSlot(slot)] = r.group
		return
	}

	out := dr.Finish(g, false)
	if out.Next == 0 {
		r.rejoin(slot)
		return
	}
	pairs := make([]packet.AddrKey, 0, len(out.Keys))
	for gg, k := range out.Keys {
		pairs = append(pairs, packet.AddrKey{Addr: r.Sess.GroupAddr(gg), Key: k})
	}
	r.client.Subscribe(core.AccessSlot(slot), pairs)
	if out.Next != g {
		// Switching groups: abandon the old one right away (a replicated
		// receiver gains nothing from holding two copies, §3.1.2).
		r.client.Unsubscribe([]packet.Addr{r.Sess.GroupAddr(g)})
		r.Switches++
		r.joinedSlot = slot + 2
	}
	r.group = out.Next
	r.groupAt[core.AccessSlot(slot)] = out.Next
}

func (r *Receiver) rejoin(slot uint32) {
	r.Rejoins++
	r.group = 1
	r.groupAt[core.AccessSlot(slot)] = 1
	r.client.SessionJoin(r.Sess.BaseAddr)
}
