package replicated

import (
	"testing"

	"deltasigma/internal/core"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

func buildRig(capacity int64, seed uint64) (*topo.Dumbbell, *Sender, *Receiver) {
	d := topo.New(topo.PaperConfig(capacity, seed))
	src := d.AddSource("src")
	rcv := d.AddReceiver("rcv")
	d.Done()
	slot := 250 * sim.Millisecond
	sigma.NewController(d.Right, sigma.DefaultConfig(slot))

	sess := &core.Session{
		ID:         1,
		BaseAddr:   packet.MulticastBase,
		Rates:      core.RateSchedule{Base: 100_000, Mult: 1.5, N: 6},
		SlotDur:    slot,
		PacketSize: 576,
	}
	for _, a := range sess.Addrs() {
		d.Fabric.SetSource(a, src.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	snd := NewSender(src, sess, policy, d.RNG.Fork(), 2)
	r := NewReceiver(rcv, sess, d.Right.Addr())
	return d, snd, r
}

func TestReceiverClimbsToSustainableGroup(t *testing.T) {
	// 300 Kbps bottleneck: group 3 streams at 225 Kbps (sustainable),
	// group 4 at 337 Kbps (not).
	d, snd, r := buildRig(300_000, 1)
	d.Sched.At(0, func() { snd.Start(); r.Start() })
	d.Sched.RunUntil(60 * sim.Second)

	if r.Group() < 2 || r.Group() > 4 {
		t.Fatalf("group = %d, want near 3", r.Group())
	}
	avg := r.Meter.AvgKbps(30*sim.Second, 60*sim.Second)
	if avg < 120 || avg > 360 {
		t.Fatalf("throughput %.0f Kbps implausible for group %d", avg, r.Group())
	}
	if r.Switches == 0 {
		t.Fatal("receiver never switched groups")
	}
}

func TestReceiverHoldsSlowestOnTinyLink(t *testing.T) {
	// 120 Kbps bottleneck: only group 1 (100 Kbps) fits.
	d, snd, r := buildRig(120_000, 2)
	d.Sched.At(0, func() { snd.Start(); r.Start() })
	d.Sched.RunUntil(45 * sim.Second)

	if r.Group() > 2 {
		t.Fatalf("group = %d on a 120 Kbps link", r.Group())
	}
	avg := r.Meter.AvgKbps(25*sim.Second, 45*sim.Second)
	if avg < 50 {
		t.Fatalf("throughput %.0f Kbps: receiver starved", avg)
	}
}

func TestSingleGroupSubscription(t *testing.T) {
	// A replicated receiver must never hold more than one group's stream:
	// its delivered rate must track a single group's rate, not a sum.
	d, snd, r := buildRig(2_000_000, 3) // uncongested: climbs to the top
	d.Sched.At(0, func() { snd.Start(); r.Start() })
	d.Sched.RunUntil(60 * sim.Second)

	if r.Group() != 6 {
		t.Fatalf("group = %d, want top group 6 on an uncongested link", r.Group())
	}
	top := float64(759_375) / 1000 // C_6 in Kbps
	avg := r.Meter.AvgKbps(40*sim.Second, 60*sim.Second)
	if avg > 1.15*top {
		t.Fatalf("throughput %.0f Kbps exceeds one stream (%.0f): holding multiple groups", avg, top)
	}
	if avg < 0.7*top {
		t.Fatalf("throughput %.0f Kbps well under the top stream %.0f", avg, top)
	}
}
