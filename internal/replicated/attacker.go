package replicated

import (
	"deltasigma/internal/core"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
)

// Attacker attacks a protected replicated session: it keeps a legitimate
// receiver running on its entitled group (the attacker still wants the
// data) while running the shared sigma.GuessAttack engine against the
// faster streams — the §4.2 attack surface aimed at the Figure 5
// instantiation.
type Attacker struct {
	*Receiver
	*sigma.GuessAttack
}

// NewAttacker builds a replicated-session attacker on host.
func NewAttacker(host *netsim.Host, sess *core.Session, routerAddr packet.Addr, rng *sim.RNG) *Attacker {
	r := NewReceiver(host, sess, routerAddr)
	return &Attacker{
		Receiver:    r,
		GuessAttack: sigma.NewGuessAttack(host, sess, routerAddr, r.client, r.Group, rng),
	}
}
