package threshold

import (
	"testing"

	"deltasigma/internal/core"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

func buildRig(capacity int64, thresh []float64, seed uint64) (*topo.Dumbbell, *Sender, *Receiver) {
	d := topo.New(topo.PaperConfig(capacity, seed))
	src := d.AddSource("src")
	rcv := d.AddReceiver("rcv")
	d.Done()
	slot := 250 * sim.Millisecond
	sigma.NewController(d.Right, sigma.DefaultConfig(slot))

	sess := &core.Session{
		ID:         1,
		BaseAddr:   packet.MulticastBase,
		Rates:      core.RateSchedule{Base: 100_000, Mult: 1.5, N: 6},
		SlotDur:    slot,
		PacketSize: 576,
	}
	for _, a := range sess.Addrs() {
		d.Fabric.SetSource(a, src.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	snd := NewSender(src, sess, thresh, policy, d.RNG.Fork(), 2)
	r := NewReceiver(rcv, sess, thresh, d.Right.Addr())
	return d, snd, r
}

func TestThresholdReceiverFindsFairLevel(t *testing.T) {
	// 300 Kbps bottleneck with WEBRC-style graded tolerances: level 4
	// (337 Kbps) runs ~11% loss, inside its ~13% tolerance; level 5
	// (506 Kbps) would run ~40%, far outside. The graded thresholds define
	// a fair level for the loss rate (§3.1.2) — unlike flat-threshold RLM,
	// which oscillates (see TestFlatThresholdOscillates).
	d, snd, r := buildRig(300_000, GradedThresholds(6), 1)
	d.Sched.At(0, func() { snd.Start(); r.Start() })
	d.Sched.RunUntil(60 * sim.Second)

	if r.Level() < 2 || r.Level() > 5 {
		t.Fatalf("level = %d, want near the fair level 4", r.Level())
	}
	avg := r.Meter.AvgKbps(30*sim.Second, 60*sim.Second)
	if avg < 120 || avg > 400 {
		t.Fatalf("throughput %.0f Kbps implausible", avg)
	}
}

func TestFlatThresholdOscillates(t *testing.T) {
	// With RLM's flat 25% tolerance every level looks fine until the
	// receiver overshoots, then several level keys fail at once: the
	// classic RLM instability that motivated graded thresholds. The
	// receiver must keep cycling — never settle above the link, never die.
	d, snd, r := buildRig(300_000, RLMThresholds(6), 4)
	d.Sched.At(0, func() { snd.Start(); r.Start() })
	levels := map[int]bool{}
	for i := 1; i <= 60; i++ {
		d.Sched.RunUntil(sim.Time(i) * sim.Second)
		levels[r.Level()] = true
	}
	if len(levels) < 3 {
		t.Fatalf("flat thresholds settled on %v; expected oscillation", levels)
	}
	avg := r.Meter.AvgKbps(20*sim.Second, 60*sim.Second)
	if avg < 80 {
		t.Fatalf("throughput %.0f Kbps: oscillation starved the receiver", avg)
	}
}

func TestThresholdToleratesMildLoss(t *testing.T) {
	// At 240 Kbps capacity, level 3 (225 Kbps) plus control overhead loses
	// a small percentage — under the 25% tolerance the receiver should
	// hold level 3 rather than yo-yo like a single-loss protocol would.
	d, snd, r := buildRig(240_000, RLMThresholds(6), 2)
	d.Sched.At(0, func() { snd.Start(); r.Start() })
	d.Sched.RunUntil(60 * sim.Second)

	if r.Level() < 2 {
		t.Fatalf("level = %d: threshold protocol collapsed under mild loss", r.Level())
	}
	avg := r.Meter.AvgKbps(30*sim.Second, 60*sim.Second)
	if avg < 130 {
		t.Fatalf("throughput %.0f Kbps too low", avg)
	}
}

func TestGradedThresholdsAreTighterAtTop(t *testing.T) {
	th := GradedThresholds(6)
	if th[0] != 0.25 {
		t.Fatalf("level 1 tolerance = %v, want 0.25", th[0])
	}
	if th[5] >= th[0] {
		t.Fatal("top level must have a tighter tolerance")
	}
	for i := 1; i < len(th); i++ {
		if th[i] > th[i-1] {
			t.Fatal("tolerances must not increase with level")
		}
	}
}

func TestThresholdUncongestedClimbs(t *testing.T) {
	d, snd, r := buildRig(2_000_000, RLMThresholds(6), 3)
	d.Sched.At(0, func() { snd.Start(); r.Start() })
	d.Sched.RunUntil(60 * sim.Second)
	if r.Level() != 6 {
		t.Fatalf("level = %d, want 6 on an uncongested link", r.Level())
	}
	avg := r.Meter.AvgKbps(40*sim.Second, 60*sim.Second)
	if avg < 500 {
		t.Fatalf("throughput %.0f Kbps far below the ~759 Kbps top level", avg)
	}
}
