package threshold

import (
	"deltasigma/internal/core"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
)

// Attacker attacks a protected threshold session: it keeps a legitimate
// receiver running at its entitled level while running the shared
// sigma.GuessAttack engine above it. Against the Shamir instantiation a
// guess must hit the reconstructed level key exactly, so the success
// probability per guess is 2^−b just as for FLID-DS.
type Attacker struct {
	*Receiver
	*sigma.GuessAttack
}

// NewAttacker builds a threshold-protocol attacker on host; thresh must
// match the sender's.
func NewAttacker(host *netsim.Host, sess *core.Session, thresh []float64, routerAddr packet.Addr, rng *sim.RNG) *Attacker {
	r := NewReceiver(host, sess, thresh, routerAddr)
	return &Attacker{
		Receiver:    r,
		GuessAttack: sigma.NewGuessAttack(host, sess, routerAddr, r.client, r.Level, rng),
	}
}
