// Package threshold implements a loss-rate-threshold layered multicast
// congestion control protocol in the RLM/MLDA/WEBRC family (§3.1.2
// "Congested state"): a receiver of level g is congested only when its loss
// rate at the level exceeds the protocol's per-level threshold. Protection
// comes from the Shamir-sharing DELTA instantiation — the level key
// reconstructs exactly when the receiver's loss stayed within tolerance —
// plus SIGMA at the edge.
package threshold

import (
	"deltasigma/internal/core"
	"deltasigma/internal/delta"
	"deltasigma/internal/keys"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/shamir"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// RLMThresholds returns the flat 25% per-level tolerance RLM defaults to.
func RLMThresholds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.25
	}
	return out
}

// GradedThresholds returns WEBRC-style tolerances that tighten with the
// level: from 25% at level 1 down to 5% at level n.
func GradedThresholds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if n == 1 {
			out[i] = 0.25
			continue
		}
		out[i] = 0.25 - 0.20*float64(i)/float64(n-1)
	}
	return out
}

// Sender transmits cumulative layers and spreads each level's key over its
// group's packets as Shamir shares.
type Sender struct {
	Sess   *core.Session
	host   *netsim.Host
	policy core.UpgradePolicy
	rng    *sim.RNG

	pacers []core.Pacer
	tsend  *delta.ThresholdSender
	ann    *sigma.Announcer

	running bool
	scratch core.SlotScratch // per-slot auth/counts, reused every slot

	// PacketsSent counts data packets.
	PacketsSent uint64
}

// NewSender builds a protected threshold sender with the given per-level
// loss tolerances.
func NewSender(host *netsim.Host, sess *core.Session, thresh []float64, policy core.UpgradePolicy, rng *sim.RNG, repeat int) *Sender {
	sess.Rates.Validate()
	s := &Sender{
		Sess: sess, host: host, policy: policy, rng: rng,
		pacers:  make([]core.Pacer, sess.Rates.N),
		scratch: core.NewSlotScratch(sess.Rates.N),
	}
	for i := range s.pacers {
		s.pacers[i].MinOne = true
	}
	src := keys.NewSource(keys.DefaultBits, rng.Fork().Uint64)
	sp := shamir.NewSplitter(rng.Fork().Uint64)
	s.tsend = delta.NewThresholdSender(sess.Rates.N, thresh, src, sp)
	s.ann = sigma.NewAnnouncer(host, sess.ID, sess.BaseAddr, sess.Rates.N, repeat)
	s.ann.Spacing = sess.SlotDur / 4
	return s
}

// Start begins the slot loop.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	sched := s.host.Scheduler()
	start := s.Sess.Epoch
	if start < sched.Now() {
		start = sched.Now()
	}
	sched.At(start, func() { s.runSlot(s.Sess.SlotAt(sched.Now())) })
}

// Stop halts the sender.
func (s *Sender) Stop() { s.running = false }

func (s *Sender) runSlot(slot uint32) {
	if !s.running {
		return
	}
	sched := s.host.Scheduler()
	n := s.Sess.Rates.N

	inc := s.policy.IncreaseTo(slot)
	if inc > n {
		inc = n
	}
	auth, counts := s.scratch.Begin()
	for g := 2; g <= inc; g++ {
		auth[g-1] = true
	}
	for g := 1; g <= n; g++ {
		counts[g-1] = s.pacers[g-1].Packets(s.Sess.Rates.GroupRate(g), s.Sess.SlotDur, s.Sess.PacketSize)
	}

	ts, err := s.tsend.BeginSlot(slot, auth, counts)
	if err != nil {
		panic(err) // counts are >= 1 by construction
	}
	s.ann.Announce(core.AccessSlot(slot), ts.Keys.Tuples(s.Sess.BaseAddr))

	slotStart := s.Sess.SlotStart(slot)
	for g := 1; g <= n; g++ {
		cnt := counts[g-1]
		spacing := s.Sess.SlotDur / sim.Time(cnt)
		for j := 1; j <= cnt; j++ {
			share, up := ts.Shares(g)
			hdr := s.host.Network().Pool().FLIDHeader()
			hdr.Session, hdr.Group, hdr.Slot = s.Sess.ID, uint8(g), slot
			hdr.Seq, hdr.Count, hdr.IncreaseTo = uint16(j), uint16(cnt), uint8(inc)
			hdr.ShareX, hdr.ShareY = share.X, share.Y
			hdr.UpShareX, hdr.UpShareY = up.X, up.Y
			at := slotStart + sim.Time(j-1)*spacing + s.rng.Jitter(spacing/2)
			if at < sched.Now() {
				at = sched.Now()
			}
			pkt := s.host.Network().NewPacket(s.host.Addr(), s.Sess.GroupAddr(g), s.Sess.PacketSize, hdr)
			sched.Schedule(at, func() {
				s.PacketsSent++
				s.host.Send(pkt)
			})
		}
	}
	sched.Schedule(s.Sess.SlotStart(slot+1), func() { s.runSlot(slot + 1) })
}

// Receiver is a well-behaved threshold-protocol receiver.
type Receiver struct {
	Sess   *core.Session
	host   *netsim.Host
	client *sigma.Client
	thresh []float64

	level       int
	recvs       map[uint32]*delta.ThresholdReceiver
	levelBySlot map[uint32]int
	joinedSlot  []uint32
	running     bool
	loop        *core.SlotLoop

	// Meter records delivered session bytes.
	Meter *stats.Meter
	// Rejoins counts keyless re-admissions.
	Rejoins uint64
}

// NewReceiver builds a threshold receiver; thresh must match the sender's.
func NewReceiver(host *netsim.Host, sess *core.Session, thresh []float64, routerAddr packet.Addr) *Receiver {
	r := &Receiver{
		Sess:        sess,
		host:        host,
		client:      sigma.NewClient(host, routerAddr),
		thresh:      thresh,
		recvs:       make(map[uint32]*delta.ThresholdReceiver),
		levelBySlot: make(map[uint32]int),
		joinedSlot:  make([]uint32, sess.Rates.N+2),
		Meter:       stats.NewMeter(sim.Second),
	}
	r.loop = core.NewSlotLoop(host.Scheduler(), sess, 8*sess.SlotDur/10, r.onEval)
	host.Handle(packet.ProtoFLID, r.onData)
	return r
}

// Level reports the current subscription level.
func (r *Receiver) Level() int { return r.level }

// Start joins the session at the minimal level.
func (r *Receiver) Start() {
	if r.running {
		return
	}
	r.running = true
	cur := r.Sess.SlotAt(r.host.Scheduler().Now())
	r.level = 1
	r.levelBySlot[cur] = 1
	r.joinedSlot[1] = cur + 1
	r.client.SessionJoin(r.Sess.BaseAddr)
	r.loop.Schedule(cur)
}

// Stop leaves the session.
func (r *Receiver) Stop() {
	r.running = false
	r.client.Unsubscribe(r.Sess.Addrs())
	r.level = 0
}

// onEval fires once per slot on the loop's reusable timer.
func (r *Receiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	r.evaluate(slot)
	return true
}

func (r *Receiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != r.Sess.ID {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	dr := r.recvs[h.Slot]
	if dr == nil {
		dr = delta.NewThresholdReceiver(r.Sess.Rates.N, r.thresh)
		dr.Begin(h.Slot)
		r.recvs[h.Slot] = dr
	}
	dr.Observe(h)
}

func (r *Receiver) levelAt(slot uint32) int {
	for s := slot; ; s-- {
		if l, ok := r.levelBySlot[s]; ok {
			return l
		}
		if s == 0 || slot-s > 16 {
			return r.level
		}
	}
}

func (r *Receiver) evaluate(slot uint32) {
	dr := r.recvs[slot]
	delete(r.recvs, slot)
	for s := range r.recvs {
		if s+4 < slot {
			delete(r.recvs, s)
		}
	}
	for s := range r.levelBySlot {
		if s+8 < slot {
			delete(r.levelBySlot, s)
		}
	}

	lvl := r.levelAt(slot)
	if lvl == 0 {
		lvl = 1
	}
	effTop := 0
	for g := 1; g <= lvl; g++ {
		if r.joinedSlot[g] <= slot {
			effTop = g
		} else {
			break
		}
	}
	if effTop == 0 || dr == nil {
		if dr == nil && effTop > 0 {
			r.rejoin(slot)
			return
		}
		r.levelBySlot[core.AccessSlot(slot)] = r.level
		return
	}

	out := dr.Finish(effTop)
	if out.Next == 0 {
		r.rejoin(slot)
		return
	}
	pairs := make([]packet.AddrKey, 0, len(out.Keys))
	for g, k := range out.Keys {
		pairs = append(pairs, packet.AddrKey{Addr: r.Sess.GroupAddr(g), Key: k})
	}
	r.client.Subscribe(core.AccessSlot(slot), pairs)

	next := out.Next
	if out.Congested && next < lvl {
		addrs := make([]packet.Addr, 0, lvl-next)
		for g := next + 1; g <= lvl; g++ {
			addrs = append(addrs, r.Sess.GroupAddr(g))
		}
		r.client.Unsubscribe(addrs)
	} else if !out.Congested {
		if next > effTop {
			r.joinedSlot[next] = slot + 2
		}
		if lvl > next {
			next = lvl
		}
	}
	r.level = next
	r.levelBySlot[core.AccessSlot(slot)] = next
}

func (r *Receiver) rejoin(slot uint32) {
	r.Rejoins++
	r.level = 1
	r.levelBySlot[core.AccessSlot(slot)] = 1
	r.client.SessionJoin(r.Sess.BaseAddr)
}
