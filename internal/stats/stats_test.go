package stats

import (
	"math"
	"testing"
	"testing/quick"

	"deltasigma/internal/sim"
)

func TestMeterBinning(t *testing.T) {
	m := NewMeter(sim.Second)
	m.Add(100*sim.Millisecond, 1000)
	m.Add(900*sim.Millisecond, 1000)
	m.Add(1500*sim.Millisecond, 500)
	if m.Bins() != 2 {
		t.Fatalf("bins = %d, want 2", m.Bins())
	}
	// Bin 0 holds 2000 bytes → 16 Kbps over 1 s.
	if got := m.RateKbps(0); got != 16 {
		t.Fatalf("bin0 = %v Kbps, want 16", got)
	}
	if got := m.RateKbps(1); got != 4 {
		t.Fatalf("bin1 = %v Kbps, want 4", got)
	}
	if m.RateKbps(-1) != 0 || m.RateKbps(99) != 0 {
		t.Fatal("out-of-range bins must be 0")
	}
}

func TestMeterIgnoresNegativeTime(t *testing.T) {
	m := NewMeter(sim.Second)
	m.Add(-sim.Second, 1000)
	if m.Bins() != 0 {
		t.Fatal("negative timestamps must be ignored")
	}
}

func TestAvgKbps(t *testing.T) {
	m := NewMeter(sim.Second)
	for i := 0; i < 10; i++ {
		m.Add(sim.Time(i)*sim.Second+sim.Millisecond, 12500) // 100 Kbps
	}
	if got := m.AvgKbps(0, 10*sim.Second); math.Abs(got-100) > 0.01 {
		t.Fatalf("avg = %v, want 100", got)
	}
	if got := m.AvgKbps(5*sim.Second, 10*sim.Second); math.Abs(got-100) > 0.01 {
		t.Fatalf("half-window avg = %v, want 100", got)
	}
	if m.AvgKbps(5*sim.Second, 5*sim.Second) != 0 {
		t.Fatal("empty window must be 0")
	}
}

func TestSeriesSmoothing(t *testing.T) {
	m := NewMeter(sim.Second)
	// A single spike in bin 5, with empty bins through 8.
	m.Add(5*sim.Second+sim.Millisecond, 125000) // 1000 Kbps
	m.Add(8*sim.Second, 0)
	raw := m.Series(1)
	if raw[5].Kbps != 1000 {
		t.Fatalf("raw spike = %v", raw[5].Kbps)
	}
	smooth := m.Series(5)
	if smooth[5].Kbps >= raw[5].Kbps {
		t.Fatal("smoothing should spread the spike")
	}
	if smooth[3].Kbps == 0 || smooth[7].Kbps == 0 {
		t.Fatal("smoothing window should reach neighbours")
	}
	if smooth[0].T != 0 || smooth[5].T != 5 {
		t.Fatal("series timestamps wrong")
	}
}

func TestTotalBytes(t *testing.T) {
	m := NewMeter(sim.Second)
	m.Add(0, 10)
	m.Add(3*sim.Second, 20)
	if m.TotalBytes() != 30 {
		t.Fatalf("total = %v", m.TotalBytes())
	}
}

func TestJainIndex(t *testing.T) {
	if got := Jain([]float64{100, 100, 100}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v, want 1", got)
	}
	// One user hogging: index → 1/n.
	if got := Jain([]float64{300, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("hog: %v, want 1/3", got)
	}
	if Jain(nil) != 0 || Jain([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs must be 0")
	}
}

func TestJainBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		allZero := true
		for i, r := range raw {
			xs[i] = float64(r % 10000)
			if xs[i] != 0 {
				allZero = false
			}
		}
		if allZero {
			return Jain(xs) == 0
		}
		j := Jain(xs)
		return j >= 1.0/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if math.Abs(StdDev(xs)-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestMeterRejectsBadBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bin width should panic")
		}
	}()
	NewMeter(0)
}

func TestPercentile(t *testing.T) {
	xs := []float64{40, 10, 30, 20} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if xs[0] != 40 {
		t.Fatal("Percentile mutated its input")
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("Percentile(single) = %v, want 7", got)
	}
}
