package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randomSlice draws n values from a mix of scales so the properties are
// exercised on clustered, spread and duplicate-heavy data alike.
func randomSlice(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch rng.IntN(3) {
		case 0:
			xs[i] = rng.Float64() * 10
		case 1:
			xs[i] = rng.Float64() * 1e6
		default:
			xs[i] = float64(rng.IntN(5)) // duplicates
		}
	}
	return xs
}

// Quantiles are monotone in p: p10 ≤ p50 ≤ p90, and the extremes bracket
// everything.
func TestQuantileMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		xs := randomSlice(rng, 1+rng.IntN(40))
		p10 := Percentile(xs, 0.10)
		p50 := Percentile(xs, 0.50)
		p90 := Percentile(xs, 0.90)
		if !(p10 <= p50 && p50 <= p90) {
			t.Fatalf("trial %d: quantiles not monotone: p10=%g p50=%g p90=%g over %v", trial, p10, p50, p90, xs)
		}
		lo, hi := Percentile(xs, 0), Percentile(xs, 1)
		for _, x := range xs {
			if x < lo || x > hi {
				t.Fatalf("trial %d: extreme quantiles [%g,%g] do not bracket %g", trial, lo, hi, x)
			}
		}
		if p10 < lo || p90 > hi {
			t.Fatalf("trial %d: p10/p90 outside [min,max]", trial)
		}
	}
}

// The mean lies within [min, max] of its sample.
func TestMeanWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		xs := randomSlice(rng, 1+rng.IntN(40))
		m := Mean(xs)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		// One ulp-scale epsilon: summation error must not fail the property.
		eps := 1e-9 * math.Max(math.Abs(lo), math.Abs(hi))
		if m < lo-eps || m > hi+eps {
			t.Fatalf("trial %d: mean %g outside [%g,%g]", trial, m, lo, hi)
		}
	}
}

// Mean, quantiles and Jain are permutation-invariant: order of observation
// never changes a statistic.
func TestStatisticsStableUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 100; trial++ {
		xs := randomSlice(rng, 2+rng.IntN(30))
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
			if a, b := Percentile(xs, p), Percentile(shuffled, p); a != b {
				t.Fatalf("trial %d: P%.0f changed under permutation: %g vs %g", trial, p*100, a, b)
			}
		}
		if a, b := Jain(xs), Jain(shuffled); math.Abs(a-b) > 1e-12 {
			t.Fatalf("trial %d: Jain changed under permutation: %g vs %g", trial, a, b)
		}
		if a, b := Mean(xs), Mean(shuffled); math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
			t.Fatalf("trial %d: mean changed under permutation: %g vs %g", trial, a, b)
		}
	}
}

// Percentile must not modify its input; PercentileSorted must agree with
// Percentile on sorted data.
func TestPercentileLeavesInputAlone(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	xs := randomSlice(rng, 20)
	before := append([]float64(nil), xs...)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		Percentile(xs, p)
	}
	for i := range xs {
		if xs[i] != before[i] {
			t.Fatalf("Percentile reordered its input at %d", i)
		}
	}
}

// Degenerate inputs are defined, not panics.
func TestDegenerateInputs(t *testing.T) {
	if Percentile(nil, 0.5) != 0 || Mean(nil) != 0 || Jain(nil) != 0 {
		t.Fatal("empty inputs must yield zero")
	}
	one := []float64{42}
	for _, p := range []float64{0, 0.3, 1} {
		if got := Percentile(one, p); got != 42 {
			t.Fatalf("P%g of a singleton = %g, want 42", p, got)
		}
	}
	if Mean(one) != 42 {
		t.Fatal("mean of singleton")
	}
}
