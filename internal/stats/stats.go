// Package stats provides the measurement machinery behind every figure:
// time-binned throughput meters, smoothed rate series, interval averages,
// and the Jain fairness index used to assert fair allocations in tests.
package stats

import (
	"math"
	"sort"

	"deltasigma/internal/sim"
)

// Meter accumulates delivered bytes into fixed-width time bins.
type Meter struct {
	bin  sim.Time
	bins []float64 // bytes per bin
}

// NewMeter creates a meter with the given bin width (1 s in the figures).
func NewMeter(bin sim.Time) *Meter {
	if bin <= 0 {
		panic("stats: non-positive bin width")
	}
	return &Meter{bin: bin}
}

// Add records bytes delivered at virtual time t.
func (m *Meter) Add(t sim.Time, bytes int) {
	if t < 0 {
		return
	}
	idx := int(t / m.bin)
	for len(m.bins) <= idx {
		m.bins = append(m.bins, 0)
	}
	m.bins[idx] += float64(bytes)
}

// Bins reports how many bins hold data.
func (m *Meter) Bins() int { return len(m.bins) }

// RateKbps returns the throughput of one bin in Kbps.
func (m *Meter) RateKbps(idx int) float64 {
	if idx < 0 || idx >= len(m.bins) {
		return 0
	}
	return m.bins[idx] * 8 / m.bin.Sec() / 1000
}

// Point is one sample of a rate series.
type Point struct {
	T    float64 `json:"t"` // seconds
	Kbps float64 `json:"kbps"`
}

// Series renders the meter as a rate series smoothed with a centred moving
// average over `window` bins (the paper's curves are visibly smoothed;
// window 5 reproduces their look). Window <= 1 disables smoothing.
func (m *Meter) Series(window int) []Point {
	out := make([]Point, len(m.bins))
	for i := range m.bins {
		lo, hi := i, i
		if window > 1 {
			lo = i - window/2
			hi = i + window/2
		}
		if lo < 0 {
			lo = 0
		}
		if hi >= len(m.bins) {
			hi = len(m.bins) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += m.bins[j]
		}
		rate := sum / float64(hi-lo+1) * 8 / m.bin.Sec() / 1000
		out[i] = Point{T: float64(i) * m.bin.Sec(), Kbps: rate}
	}
	return out
}

// AvgKbps averages throughput over [from, to).
func (m *Meter) AvgKbps(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	var bytes float64
	for i := range m.bins {
		binStart := sim.Time(i) * m.bin
		if binStart >= from && binStart < to {
			bytes += m.bins[i]
		}
	}
	return bytes * 8 / (to - from).Sec() / 1000
}

// TotalBytes sums all recorded bytes.
func (m *Meter) TotalBytes() float64 {
	var s float64
	for _, b := range m.bins {
		s += b
	}
	return s
}

// Jain computes the Jain fairness index of the allocations: 1 is perfectly
// fair, 1/n maximally unfair.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-quantile (p in [0,1]) of xs with linear
// interpolation between order statistics. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile over an already ascending-sorted slice —
// sort once, then take as many quantiles as needed.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}
