package core

import "deltasigma/internal/sim"

// SlotDriver batches every slotted receiver that shares a slot clock —
// same epoch, slot duration and guard interval — behind one scheduler
// event per slot. Before it existed each receiver armed its own timer at
// the common guard point, so a slot boundary cost one event pop per
// receiver; now the driver pops once and walks its member list, which is
// also what lets protocol packages keep per-receiver state in
// struct-of-arrays batches and touch it in one contiguous pass.
//
// Ordering is preserved exactly: at a shared guard instant the old
// per-receiver timers fired in the order the timers had last been armed
// (their tie-break seqs were reserved in arming order, and every fire
// re-armed with a fresh seq, so the relative order was stable from round
// to round). The member list reproduces that order — joins append,
// re-scheduling an already-active member moves it to the back, and the
// walk runs front to back — so every seeded run replays the same receiver
// evaluation sequence the timer-per-receiver design produced.
type SlotDriver struct {
	sched   *sim.Scheduler
	epoch   sim.Time
	slotDur sim.Time
	guard   sim.Time

	timer     *sim.Timer
	members   []*SlotLoop
	armed     bool
	armedSlot uint32
	firing    bool
}

// slotClockKey anchors one driver per distinct slot clock on a scheduler.
type slotClockKey struct {
	epoch   sim.Time
	slotDur sim.Time
	guard   sim.Time
}

func driverFor(sched *sim.Scheduler, sess *Session, guard sim.Time) *SlotDriver {
	key := slotClockKey{epoch: sess.Epoch, slotDur: sess.SlotDur, guard: guard}
	return sched.Anchor(key, func() any {
		d := &SlotDriver{sched: sched, epoch: sess.Epoch, slotDur: sess.SlotDur, guard: guard}
		d.timer = sched.NewTimer(d.fire)
		return d
	}).(*SlotDriver)
}

// evalAt is the guard point of slot: a guard interval into the next slot.
func (d *SlotDriver) evalAt(slot uint32) sim.Time {
	return d.epoch + sim.Time(slot+1)*d.slotDur + d.guard
}

// join makes l an active member waiting on l.nextSlot. An already-active
// member moves to the back of the walk order, exactly as its re-armed
// timer would have drawn a fresh (later) tie-break seq.
func (d *SlotDriver) join(l *SlotLoop) {
	if l.active {
		if !d.firing {
			for i, m := range d.members {
				if m == l {
					copy(d.members[i:], d.members[i+1:])
					d.members[len(d.members)-1] = l
					break
				}
			}
		}
	} else {
		l.active = true
		d.members = append(d.members, l)
	}
	if !d.armed || l.nextSlot < d.armedSlot {
		d.armedSlot = l.nextSlot
		d.armed = true
		d.timer.ResetAt(d.evalAt(l.nextSlot))
	}
}

// fire evaluates every member waiting on the armed slot, front to back,
// compacting out the ones whose eval reports the loop should stop.
// Members joining mid-fire (an eval starting another receiver) wait on a
// later slot — the guard point lies inside the following slot, so a
// fresh Schedule targets at least that slot — and are simply carried.
func (d *SlotDriver) fire() {
	slot := d.armedSlot
	d.armed = false
	d.firing = true
	keep := 0
	for i := 0; i < len(d.members); i++ {
		l := d.members[i]
		if l.nextSlot != slot {
			d.members[keep] = l
			keep++
			continue
		}
		if l.eval(slot) {
			l.nextSlot = slot + 1
			d.members[keep] = l
			keep++
		} else {
			l.active = false
		}
	}
	d.firing = false
	for i := keep; i < len(d.members); i++ {
		d.members[i] = nil
	}
	d.members = d.members[:keep]
	if len(d.members) == 0 {
		return
	}
	next := d.members[0].nextSlot
	for _, m := range d.members[1:] {
		if m.nextSlot < next {
			next = m.nextSlot
		}
	}
	d.armedSlot = next
	d.armed = true
	d.timer.ResetAt(d.evalAt(next))
}
