package core

import "deltasigma/internal/sim"

// SlotLoop drives a receiver's once-per-slot evaluation: every slotted
// receiver (FLID-DL, FLID-DS, replicated, threshold, cohort) evaluates the
// finished slot a guard interval into the next one, then advances. A
// SlotLoop is a membership handle on the SlotDriver shared by every loop
// with the same slot clock — one scheduler event per slot drives them all
// — so a receiver's whole lifetime costs no timer of its own.
type SlotLoop struct {
	driver   *SlotDriver
	eval     func(slot uint32) bool
	nextSlot uint32
	active   bool
}

// NewSlotLoop builds a loop evaluating sess's slots with eval, which
// receives the finished slot number and reports whether the loop should
// continue — a stopped receiver returns false and the loop goes quiet until
// the next Schedule call.
func NewSlotLoop(sched *sim.Scheduler, sess *Session, guard sim.Time, eval func(slot uint32) bool) *SlotLoop {
	l := &SlotLoop{eval: eval}
	l.driver = driverFor(sched, sess, guard)
	return l
}

// Schedule arms evaluation of slot at its guard point by joining the
// shared driver. In the degenerate case where the guard point has already
// passed (never reached by Start or the loop itself, which always target
// the slot in progress or later), evaluation fires alone just past now,
// as the per-receiver timer it replaced did.
func (l *SlotLoop) Schedule(slot uint32) {
	d := l.driver
	if at := d.evalAt(slot); at <= d.sched.Now() && !l.active {
		d.sched.Schedule(d.sched.Now()+1, func() {
			if !l.active && l.eval(slot) {
				l.Schedule(slot + 1)
			}
		})
		return
	}
	l.nextSlot = slot
	d.join(l)
}

// SlotScratch is the reusable per-slot auth/counts pair every slotted
// sender fills at the top of its slot loop. Reusing the buffers is safe
// because every delta BeginSlot implementation copies what it keeps —
// a new instantiation that stored either slice would corrupt its previous
// slot's state the moment the next slot resets the scratch.
type SlotScratch struct {
	Auth   []bool
	Counts []int
}

// NewSlotScratch sizes the scratch for an n-group session.
func NewSlotScratch(n int) SlotScratch {
	return SlotScratch{Auth: make([]bool, n), Counts: make([]int, n)}
}

// Begin clears the authorization flags and returns both buffers for the
// slot; callers set Auth for authorized upgrades and overwrite every
// Counts entry.
func (s *SlotScratch) Begin() ([]bool, []int) {
	for i := range s.Auth {
		s.Auth[i] = false
	}
	return s.Auth, s.Counts
}
