package core

import "deltasigma/internal/sim"

// SlotLoop drives a receiver's once-per-slot evaluation on a single
// reusable timer: every slotted receiver (FLID-DL, FLID-DS, replicated,
// threshold) evaluates the finished slot a guard interval into the next
// one, then advances. One SlotLoop plus one recycled scheduler event serve
// the receiver's whole lifetime.
type SlotLoop struct {
	sched *sim.Scheduler
	sess  *Session
	guard sim.Time // how far into the following slot evaluation waits
	eval  func(slot uint32) bool
	timer *sim.Timer
	slot  uint32
}

// NewSlotLoop builds a loop evaluating sess's slots with eval, which
// receives the finished slot number and reports whether the loop should
// continue — a stopped receiver returns false and the loop goes quiet until
// the next Schedule call.
func NewSlotLoop(sched *sim.Scheduler, sess *Session, guard sim.Time, eval func(slot uint32) bool) *SlotLoop {
	l := &SlotLoop{sched: sched, sess: sess, guard: guard, eval: eval}
	l.timer = sched.NewTimer(l.fire)
	return l
}

// Schedule arms evaluation of slot at its guard point (clamped just past
// now when the guard point has already passed), rescheduling the reusable
// timer in place.
func (l *SlotLoop) Schedule(slot uint32) {
	at := l.sess.SlotStart(slot+1) + l.guard
	if at <= l.sched.Now() {
		at = l.sched.Now() + 1
	}
	l.slot = slot
	l.timer.ResetAt(at)
}

func (l *SlotLoop) fire() {
	slot := l.slot
	if l.eval(slot) {
		l.Schedule(slot + 1)
	}
}

// SlotScratch is the reusable per-slot auth/counts pair every slotted
// sender fills at the top of its slot loop. Reusing the buffers is safe
// because every delta BeginSlot implementation copies what it keeps —
// a new instantiation that stored either slice would corrupt its previous
// slot's state the moment the next slot resets the scratch.
type SlotScratch struct {
	Auth   []bool
	Counts []int
}

// NewSlotScratch sizes the scratch for an n-group session.
func NewSlotScratch(n int) SlotScratch {
	return SlotScratch{Auth: make([]bool, n), Counts: make([]int, n)}
}

// Begin clears the authorization flags and returns both buffers for the
// slot; callers set Auth for authorized upgrades and overwrite every
// Counts entry.
func (s *SlotScratch) Begin() ([]bool, []int) {
	for i := range s.Auth {
		s.Auth[i] = false
	}
	return s.Auth, s.Counts
}
