package core

import (
	"math"
	"testing"
	"testing/quick"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

func TestPaperScheduleRates(t *testing.T) {
	rs := PaperSchedule()
	if got := rs.Cumulative(1); got != 100_000 {
		t.Fatalf("C_1 = %d, want 100000", got)
	}
	if got := rs.Cumulative(2); got != 150_000 {
		t.Fatalf("C_2 = %d, want 150000", got)
	}
	// C_10 = 100k · 1.5^9 ≈ 3.844 Mbps.
	if got := rs.Cumulative(10); got < 3_840_000 || got > 3_850_000 {
		t.Fatalf("C_10 = %d, want ~3.84 Mbps", got)
	}
	// Group rates are increments and sum to the cumulative rate.
	var sum int64
	for g := 1; g <= 10; g++ {
		sum += rs.GroupRate(g)
	}
	if sum != rs.Cumulative(10) {
		t.Fatalf("group rates sum to %d, cumulative is %d", sum, rs.Cumulative(10))
	}
}

func TestCumulativeBounds(t *testing.T) {
	rs := PaperSchedule()
	if rs.Cumulative(0) != 0 || rs.Cumulative(-3) != 0 {
		t.Fatal("level <= 0 must have zero rate")
	}
	if rs.Cumulative(99) != rs.Cumulative(10) {
		t.Fatal("levels above N must clamp")
	}
}

func TestFairLevel(t *testing.T) {
	rs := PaperSchedule()
	cases := map[int64]int{
		50_000:    0, // below minimal
		100_000:   1,
		150_000:   2,
		250_000:   3, // C_3 = 225k fits, C_4 = 337.5k does not
		1_000_000: 6, // C_6 = 759k fits, C_7 = 1139k does not
	}
	for share, want := range cases {
		if got := rs.FairLevel(share); got != want {
			t.Fatalf("FairLevel(%d) = %d, want %d", share, got, want)
		}
	}
}

func TestScheduleForTotal(t *testing.T) {
	// §5.4 settings: R = 4 Mbps, r = 100 Kbps, N = 10 → m = 40^(1/9).
	rs := ScheduleForTotal(100_000, 4_000_000, 10)
	wantM := math.Pow(40, 1.0/9)
	if math.Abs(rs.Mult-wantM) > 1e-9 {
		t.Fatalf("m = %v, want %v", rs.Mult, wantM)
	}
	got := rs.Cumulative(10)
	if got < 3_999_000 || got > 4_001_000 {
		t.Fatalf("C_N = %d, want ~4 Mbps", got)
	}
}

func TestScheduleForTotalSingleGroup(t *testing.T) {
	rs := ScheduleForTotal(100_000, 100_000, 1)
	if rs.Cumulative(1) != 100_000 {
		t.Fatal("single-group schedule wrong")
	}
}

func TestSessionAddressing(t *testing.T) {
	s := &Session{ID: 1, BaseAddr: packet.MulticastBase, Rates: PaperSchedule()}
	if s.GroupAddr(1) != packet.MulticastBase {
		t.Fatal("group 1 address wrong")
	}
	if s.GroupIndex(s.GroupAddr(7)) != 7 {
		t.Fatal("GroupIndex round trip failed")
	}
	if s.GroupIndex(packet.MulticastBase+100) != 0 {
		t.Fatal("foreign address should map to 0")
	}
	if got := s.Addrs(); len(got) != 10 || got[9] != s.GroupAddr(10) {
		t.Fatalf("Addrs wrong: %v", got)
	}
}

func TestSessionSlotClock(t *testing.T) {
	s := &Session{SlotDur: 250 * sim.Millisecond, Epoch: sim.Second}
	if s.SlotAt(0) != 0 {
		t.Fatal("pre-epoch time must be slot 0")
	}
	if s.SlotAt(sim.Second) != 0 || s.SlotAt(1240*sim.Millisecond) != 0 {
		t.Fatal("first slot misnumbered")
	}
	if s.SlotAt(1250*sim.Millisecond) != 1 {
		t.Fatal("slot boundary misnumbered")
	}
	if s.SlotStart(4) != 2*sim.Second {
		t.Fatalf("SlotStart(4) = %v", s.SlotStart(4))
	}
}

func TestAccessSlotOffset(t *testing.T) {
	if AccessSlot(5) != 7 {
		t.Fatal("Figure 2 pipeline offset must be 2")
	}
}

func TestPeriodicUpgrades(t *testing.T) {
	p := PeriodicUpgrades{Factor: 2, N: 5}
	// period(2)=2, period(3)=4, period(4)=6, period(5)=8.
	wantPeriods := map[int]uint32{2: 2, 3: 4, 4: 6, 5: 8}
	for g, want := range wantPeriods {
		if got := p.Period(g); got != want {
			t.Fatalf("Period(%d) = %d, want %d", g, got, want)
		}
	}
	if p.Period(1) != 0 {
		t.Fatal("no upgrade period for the minimal group")
	}
	// Slot 0 authorizes everything.
	if p.IncreaseTo(0) != 5 {
		t.Fatalf("IncreaseTo(0) = %d, want 5", p.IncreaseTo(0))
	}
	// Slot 2 authorizes group 2 only; slot 8 authorizes up to 5.
	if p.IncreaseTo(2) != 2 {
		t.Fatalf("IncreaseTo(2) = %d, want 2", p.IncreaseTo(2))
	}
	if p.IncreaseTo(8) != 5 {
		t.Fatalf("IncreaseTo(8) = %d, want 5", p.IncreaseTo(8))
	}
	if p.IncreaseTo(1) != 0 {
		t.Fatalf("IncreaseTo(1) = %d, want 0", p.IncreaseTo(1))
	}
}

func TestPeriodicUpgradeFrequencyMatchesSchedule(t *testing.T) {
	p := PeriodicUpgrades{Factor: 2, N: 6}
	const slots = 10000
	counts := make([]int, p.N+1)
	for s := uint32(0); s < slots; s++ {
		for g := 2; g <= p.N; g++ {
			if s%p.Period(g) == 0 {
				counts[g]++
			}
		}
	}
	for g := 2; g <= p.N; g++ {
		got := float64(counts[g]) / slots
		want := p.Frequency(g)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("f_%d = %v, want %v", g, got, want)
		}
	}
	// Frequencies must decrease with the level.
	for g := 3; g <= p.N; g++ {
		if p.Frequency(g) > p.Frequency(g-1) {
			t.Fatalf("f_%d > f_%d: upgrades must thin out at higher levels", g, g-1)
		}
	}
}

func TestPacerLongRunRateExact(t *testing.T) {
	var p Pacer
	const rate = 100_000 // bits/s
	const pktBytes = 576
	slot := 250 * sim.Millisecond
	total := 0
	const slots = 4000 // 1000 seconds
	for i := 0; i < slots; i++ {
		total += p.Packets(rate, slot, pktBytes)
	}
	wantPkts := float64(rate) * 1000 / 8 / pktBytes
	if math.Abs(float64(total)-wantPkts) > 1 {
		t.Fatalf("paced %d packets, want ~%.1f", total, wantPkts)
	}
}

func TestPacerMinOne(t *testing.T) {
	p := Pacer{MinOne: true}
	// 1 Kbps in 250 ms slots is far below one packet per slot, but MinOne
	// still guarantees one; the borrowed credit keeps long-run rate sane.
	for i := 0; i < 10; i++ {
		if got := p.Packets(1000, 250*sim.Millisecond, 576); got != 1 {
			t.Fatalf("slot %d: %d packets, want 1", i, got)
		}
	}
}

func TestPacerZeroWithoutMinOne(t *testing.T) {
	var p Pacer
	if got := p.Packets(1000, 250*sim.Millisecond, 576); got != 0 {
		t.Fatalf("got %d packets, want 0", got)
	}
}

// Property: pacing never goes negative and credit stays bounded by one
// packet when MinOne is off.
func TestPacerProperty(t *testing.T) {
	f := func(rates []uint32) bool {
		var p Pacer
		for _, r := range rates {
			rate := int64(r % 10_000_000)
			if rate == 0 {
				rate = 1
			}
			n := p.Packets(rate, 250*sim.Millisecond, 576)
			if n < 0 {
				return false
			}
			if p.credit >= 576 || p.credit < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePanics(t *testing.T) {
	bad := []RateSchedule{
		{Base: 0, Mult: 1.5, N: 10},
		{Base: 100, Mult: 0.5, N: 10},
		{Base: 100, Mult: 1.5, N: 0},
	}
	for _, rs := range bad {
		func() {
			defer func() { recover() }()
			rs.Validate()
			t.Fatalf("Validate(%+v) should panic", rs)
		}()
	}
	PaperSchedule().Validate() // must not panic
}
