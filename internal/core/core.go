// Package core assembles the paper's contribution into a reusable frame:
// session descriptors with the multiplicative layered rate schedule of
// §5.1, the slotted timeline of Figure 2 (keys distributed during data slot
// s guard access during slot s+2), and the upgrade-authorization policy
// that multi-group protocols plug into. The concrete protocols
// (internal/flid, internal/replicated, internal/threshold) build on these
// types; DELTA (internal/delta) and SIGMA (internal/sigma) consume them.
package core

import (
	"fmt"
	"math"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// PipelineOffset is the Figure 2 timeline distance between a data slot and
// the access slot its in-band keys guard: keys distributed during slot s
// control access during slot s+2, leaving slot s+1 for receivers to
// reconstruct and submit them.
const PipelineOffset = 2

// AccessSlot maps a data slot to the slot its keys guard.
func AccessSlot(dataSlot uint32) uint32 { return dataSlot + PipelineOffset }

// RateSchedule is the cumulative multiplicative layering of §5.1: the
// minimal group transmits at Base bits/s and the cumulative rate of a
// subscription level grows by factor Mult per group.
type RateSchedule struct {
	// Base is the transmission rate of group 1 in bits/s.
	Base int64
	// Mult is the cumulative growth factor per group (1.5 in §5.1).
	Mult float64
	// N is the number of groups in the session.
	N int
}

// PaperSchedule returns the evaluation settings: 10 groups, 100 Kbps
// minimal group, factor 1.5.
func PaperSchedule() RateSchedule { return RateSchedule{Base: 100_000, Mult: 1.5, N: 10} }

// Check reports nonsensical parameters.
func (r RateSchedule) Check() error {
	if r.Base <= 0 || r.Mult < 1 || r.N < 1 || r.N > 255 {
		return fmt.Errorf("core: invalid rate schedule %+v", r)
	}
	return nil
}

// Validate panics on nonsensical parameters.
func (r RateSchedule) Validate() {
	if err := r.Check(); err != nil {
		panic(err)
	}
}

// Cumulative returns the total rate of subscription level g (groups 1..g)
// in bits/s; level 0 is zero.
func (r RateSchedule) Cumulative(g int) int64 {
	if g <= 0 {
		return 0
	}
	if g > r.N {
		g = r.N
	}
	return int64(float64(r.Base) * math.Pow(r.Mult, float64(g-1)))
}

// GroupRate returns group g's own rate: the increment its layer adds.
func (r RateSchedule) GroupRate(g int) int64 {
	return r.Cumulative(g) - r.Cumulative(g-1)
}

// FairLevel returns the highest subscription level whose cumulative rate
// fits within share bits/s (0 when even the minimal group does not fit).
func (r RateSchedule) FairLevel(share int64) int {
	level := 0
	for g := 1; g <= r.N; g++ {
		if r.Cumulative(g) <= share {
			level = g
		} else {
			break
		}
	}
	return level
}

// ScheduleForTotal derives the multiplier m from a target cumulative rate
// R = Base·m^(N−1) (Eq. 10), as the §5.4 overhead experiments require.
func ScheduleForTotal(base, total int64, n int) RateSchedule {
	if n < 2 {
		return RateSchedule{Base: base, Mult: 1, N: n}
	}
	m := math.Pow(float64(total)/float64(base), 1/float64(n-1))
	return RateSchedule{Base: base, Mult: m, N: n}
}

// Session describes one multicast session: its identity, its block of
// contiguous group addresses, its rate schedule, and its slot clock.
type Session struct {
	ID         uint16
	BaseAddr   packet.Addr
	Src        packet.Addr // unicast address of the session source (0 until wired)
	Rates      RateSchedule
	SlotDur    sim.Time
	Epoch      sim.Time // when slot 0 begins
	PacketSize int      // wire bytes per data packet (576 in §5.1)
}

// GroupAddr returns the address of group g (1-based).
func (s *Session) GroupAddr(g int) packet.Addr {
	return packet.Group(s.BaseAddr, g-1)
}

// GroupIndex resolves an address back to its group number, or 0.
func (s *Session) GroupIndex(a packet.Addr) int {
	if a < s.BaseAddr || a >= s.BaseAddr+packet.Addr(s.Rates.N) {
		return 0
	}
	return int(a-s.BaseAddr) + 1
}

// SlotAt returns the slot number active at virtual time t.
func (s *Session) SlotAt(t sim.Time) uint32 {
	if t < s.Epoch {
		return 0
	}
	return uint32((t - s.Epoch) / s.SlotDur)
}

// SlotStart returns when a slot begins.
func (s *Session) SlotStart(slot uint32) sim.Time {
	return s.Epoch + sim.Time(slot)*s.SlotDur
}

// Addrs returns every group address of the session, minimal first.
func (s *Session) Addrs() []packet.Addr {
	out := make([]packet.Addr, s.Rates.N)
	for g := 1; g <= s.Rates.N; g++ {
		out[g-1] = s.GroupAddr(g)
	}
	return out
}

// UpgradePolicy decides, per slot, the highest group receivers are
// authorized to upgrade to (the FLID increase signal). Zero means no
// upgrade this slot. Implementations must be deterministic in the slot
// number so sender and analysis agree.
type UpgradePolicy interface {
	IncreaseTo(slot uint32) int
}

// PeriodicUpgrades authorizes an upgrade to group g every period(g) =
// max(1, ceil(Factor·(g−1))) slots: upgrade opportunities thin out at
// higher levels, the same qualitative shape as FLID-DL's increase-signal
// schedule (higher layers take longer to reach, keeping high-rate receivers
// from thrashing). The observed per-group frequency f_g feeds the §5.4
// overhead model.
type PeriodicUpgrades struct {
	// Factor stretches the period per level; 2.0 by default.
	Factor float64
	// N is the number of groups.
	N int
}

// Period returns the authorization period of group g in slots.
func (p PeriodicUpgrades) Period(g int) uint32 {
	if g < 2 {
		return 0
	}
	f := p.Factor
	if f <= 0 {
		f = 2.0
	}
	per := uint32(math.Ceil(f * float64(g-1)))
	if per < 1 {
		per = 1
	}
	return per
}

// IncreaseTo implements UpgradePolicy: the highest group whose period
// divides the slot number.
func (p PeriodicUpgrades) IncreaseTo(slot uint32) int {
	best := 0
	for g := 2; g <= p.N; g++ {
		if slot%p.Period(g) == 0 {
			best = g
		}
	}
	return best
}

// Frequency returns f_g, the long-run fraction of slots that authorize an
// upgrade to group g (for the overhead accounting this counts slots where
// the tuple for g carries an increase key, i.e. the signal reaches at
// least g... the tuple carries ε_g exactly when g itself is authorized).
func (p PeriodicUpgrades) Frequency(g int) float64 {
	if g < 2 || g > p.N {
		return 0
	}
	return 1 / float64(p.Period(g))
}

// Pacer converts a per-slot byte budget into integral packet counts,
// carrying the fractional remainder across slots so the long-run rate is
// exact. DELTA requires at least one packet per group per slot so key
// components can travel; MinOne enforces that.
type Pacer struct {
	// MinOne guarantees a packet even when the budget is short.
	MinOne bool
	credit float64
}

// Packets returns how many packets of size pktBytes fit the slot budget of
// rate·slotDur, accumulating the remainder.
func (p *Pacer) Packets(rate int64, slotDur sim.Time, pktBytes int) int {
	p.credit += float64(rate) * slotDur.Sec() / 8
	n := int(p.credit / float64(pktBytes))
	if n < 0 {
		n = 0
	}
	p.credit -= float64(n * pktBytes)
	if n == 0 && p.MinOne {
		n = 1
		p.credit -= float64(pktBytes) // borrow against future slots
	}
	return n
}
