package campaign

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestGridEnumeratesRowMajor(t *testing.T) {
	g, err := NewGrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 6 || g.Axes() != 2 {
		t.Fatalf("Size = %d, Axes = %d", g.Size(), g.Axes())
	}
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for i, w := range want {
		got := g.Coords(i)
		if len(got) != 2 || got[0] != w[0] || got[1] != w[1] {
			t.Fatalf("Coords(%d) = %v, want %v", i, got, w)
		}
		if back := g.Index(got); back != i {
			t.Fatalf("Index(Coords(%d)) = %d", i, back)
		}
	}
}

func TestGridRoundTripsManyAxes(t *testing.T) {
	g, err := NewGrid(3, 1, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3*1*4*2*5 {
		t.Fatalf("Size = %d", g.Size())
	}
	seen := make(map[string]bool)
	for i := 0; i < g.Size(); i++ {
		c := g.Coords(i)
		key := fmt.Sprint(c)
		if seen[key] {
			t.Fatalf("duplicate coords %v", c)
		}
		seen[key] = true
		if g.Index(c) != i {
			t.Fatalf("round trip failed at %d: %v", i, c)
		}
	}
}

func TestGridRejectsEmptyAxis(t *testing.T) {
	if _, err := NewGrid(2, 0, 3); err == nil {
		t.Fatal("NewGrid accepted a zero-length axis")
	}
	if _, err := NewGrid(-1); err == nil {
		t.Fatal("NewGrid accepted a negative axis")
	}
}

func TestGridZeroAxesIsSinglePoint(t *testing.T) {
	g, err := NewGrid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 1 {
		t.Fatalf("empty product should have one point, got %d", g.Size())
	}
	if len(g.Coords(0)) != 0 {
		t.Fatalf("Coords(0) = %v, want empty", g.Coords(0))
	}
}

func TestRunExecutesEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		counts := make([]atomic.Int64, n)
		errs := Run(n, workers, func(_, i int) error {
			counts[i].Add(1)
			return nil
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d: job %d unexpected error %v", workers, i, errs[i])
			}
		}
	}
}

func TestRunKeepsErrorsByIndex(t *testing.T) {
	boom := errors.New("boom")
	errs := Run(10, 4, func(_, i int) error {
		if i%3 == 0 {
			return fmt.Errorf("job %d: %w", i, boom)
		}
		return nil
	})
	for i, err := range errs {
		if i%3 == 0 {
			if !errors.Is(err, boom) {
				t.Fatalf("job %d error = %v, want wrapped boom", i, err)
			}
		} else if err != nil {
			t.Fatalf("job %d error = %v, want nil", i, err)
		}
	}
}

// A panicking job must be captured as an error without wedging the pool —
// the remaining jobs all still run.
func TestRunRecoversPanicsWithoutDeadlock(t *testing.T) {
	n := 50
	var ran atomic.Int64
	errs := Run(n, 4, func(_, i int) error {
		if i == 17 {
			panic("grid point exploded")
		}
		ran.Add(1)
		return nil
	})
	if got := ran.Load(); got != int64(n-1) {
		t.Fatalf("ran %d healthy jobs, want %d", got, n-1)
	}
	if errs[17] == nil {
		t.Fatal("panicking job produced no error")
	}
	for i, err := range errs {
		if i != 17 && err != nil {
			t.Fatalf("healthy job %d got error %v", i, err)
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if errs := Run(0, 8, func(int, int) error { t.Fatal("job ran"); return nil }); len(errs) != 0 {
		t.Fatalf("errs = %v, want empty", errs)
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	var ran atomic.Int64
	Run(25, 0, func(int, int) error { ran.Add(1); return nil })
	if ran.Load() != 25 {
		t.Fatalf("ran %d jobs with default workers, want 25", ran.Load())
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := EffectiveWorkers(100, 8); got != 8 {
		t.Fatalf("EffectiveWorkers(100, 8) = %d", got)
	}
	if got := EffectiveWorkers(3, 8); got != 3 {
		t.Fatalf("EffectiveWorkers(3, 8) = %d (never exceeds n)", got)
	}
	if got := EffectiveWorkers(10, 0); got != DefaultWorkers() && got != 10 {
		t.Fatalf("EffectiveWorkers(10, 0) = %d", got)
	}
}

// The worker index must stay in [0, EffectiveWorkers) and each worker must
// run its jobs sequentially — per-worker state (packet pools) relies on it.
func TestRunWorkerIndexIsolation(t *testing.T) {
	n, workers := 200, 5
	eff := EffectiveWorkers(n, workers)
	busy := make([]atomic.Int64, eff)
	errs := Run(n, workers, func(w, i int) error {
		if w < 0 || w >= eff {
			return fmt.Errorf("worker index %d outside [0,%d)", w, eff)
		}
		if busy[w].Add(1) != 1 {
			return fmt.Errorf("worker %d ran two jobs concurrently", w)
		}
		defer busy[w].Add(-1)
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}
