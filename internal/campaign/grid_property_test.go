package campaign

import (
	"math/rand/v2"
	"testing"
)

// The mixed-radix encoding is a bijection for arbitrary grid shapes:
// Index(Coords(i)) == i for every point, Coords stays within the axis
// lengths, enumeration covers exactly Size() distinct coordinate tuples,
// and the first axis varies slowest (row-major order).
func TestGridBijectionRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 150; trial++ {
		nAxes := 1 + rng.IntN(5)
		dims := make([]int, nAxes)
		size := 1
		for i := range dims {
			dims[i] = 1 + rng.IntN(5)
			size *= dims[i]
		}
		g, err := NewGrid(dims...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.Size() != size {
			t.Fatalf("trial %d: Size() = %d, want %d", trial, g.Size(), size)
		}

		seen := make(map[string]bool, size)
		prev := make([]int, nAxes)
		for i := 0; i < size; i++ {
			coords := g.Coords(i)
			// Bounds.
			key := ""
			for a, c := range coords {
				if c < 0 || c >= dims[a] {
					t.Fatalf("trial %d: point %d coordinate %d out of range on axis %d (len %d)", trial, i, c, a, dims[a])
				}
				key += string(rune('0' + c))
			}
			// Injectivity (with size points, also surjectivity).
			if seen[key] {
				t.Fatalf("trial %d: coordinates %v repeat at point %d", trial, coords, i)
			}
			seen[key] = true
			// Round trip.
			if back := g.Index(coords); back != i {
				t.Fatalf("trial %d: Index(Coords(%d)) = %d", trial, i, back)
			}
			// Row-major (first axis slowest): re-reading i and i-1 as
			// mixed-radix numbers, i's value is exactly one greater.
			if i > 0 {
				val, prevVal := 0, 0
				for a := 0; a < nAxes; a++ {
					val = val*dims[a] + coords[a]
					prevVal = prevVal*dims[a] + prev[a]
				}
				if val != prevVal+1 {
					t.Fatalf("trial %d: enumeration not row-major at %d: %v after %v", trial, i, coords, prev)
				}
			}
			copy(prev, coords)
		}
	}
}

// Out-of-range lookups panic rather than aliasing a wrong point.
func TestGridBoundsPanics(t *testing.T) {
	g, err := NewGrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"negative index":  func() { g.Coords(-1) },
		"index past end":  func() { g.Coords(6) },
		"coord too large": func() { g.Index([]int{1, 3}) },
		"negative coord":  func() { g.Index([]int{-1, 0}) },
		"axis mismatch":   func() { g.Index([]int{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
