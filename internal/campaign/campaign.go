// Package campaign is the deterministic parallel-execution layer under
// deltasigma.Sweep: a mixed-radix Grid that enumerates the cartesian
// product of sweep axes, and a bounded worker pool (Run) that fans
// independent jobs across goroutines while results stay addressed by grid
// index — so campaign output is byte-identical whatever the worker count.
//
// Nothing here knows about experiments; the package is plain concurrency
// machinery so it can be tested exhaustively without simulating a packet.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Grid indexes the cartesian product of axes by length. Index 0 is all
// first values; the first axis varies slowest (row-major), so enumeration
// order matches nested for-loops over the axes in declaration order.
type Grid struct {
	dims []int
	size int
}

// NewGrid builds a grid over axes of the given lengths. Axes of length
// zero or less are rejected: a sweep normalizes empty axes to a single
// default value before building its grid.
func NewGrid(dims ...int) (Grid, error) {
	size := 1
	for i, d := range dims {
		if d <= 0 {
			return Grid{}, fmt.Errorf("campaign: axis %d has non-positive length %d", i, d)
		}
		if size > 1<<30/d {
			return Grid{}, fmt.Errorf("campaign: grid larger than 2^30 points")
		}
		size *= d
	}
	return Grid{dims: append([]int(nil), dims...), size: size}, nil
}

// Size returns the number of grid points.
func (g Grid) Size() int { return g.size }

// Axes returns the number of axes.
func (g Grid) Axes() int { return len(g.dims) }

// Coords decodes a point index into one coordinate per axis.
func (g Grid) Coords(index int) []int {
	if index < 0 || index >= g.size {
		panic(fmt.Sprintf("campaign: index %d outside grid of %d points", index, g.size))
	}
	coords := make([]int, len(g.dims))
	for i := len(g.dims) - 1; i >= 0; i-- {
		coords[i] = index % g.dims[i]
		index /= g.dims[i]
	}
	return coords
}

// Index encodes coordinates back into a point index (the inverse of
// Coords).
func (g Grid) Index(coords []int) int {
	if len(coords) != len(g.dims) {
		panic(fmt.Sprintf("campaign: %d coordinates for %d axes", len(coords), len(g.dims)))
	}
	index := 0
	for i, c := range coords {
		if c < 0 || c >= g.dims[i] {
			panic(fmt.Sprintf("campaign: coordinate %d out of range for axis %d (length %d)", c, i, g.dims[i]))
		}
		index = index*g.dims[i] + c
	}
	return index
}

// DefaultWorkers is the worker count used when a caller passes 0: one per
// logical CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// EffectiveWorkers resolves the worker count Run will actually use for n
// jobs: callers that keep per-worker state (packet pools, scratch arenas)
// size their state slice with it.
func EffectiveWorkers(n, workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes jobs 0..n-1 across at most `workers` goroutines (0 means
// DefaultWorkers, and the pool never exceeds n). Jobs pull indices from a
// shared atomic counter, so scheduling is dynamic but the caller's view is
// not: the returned slice holds job i's error at position i regardless of
// which worker ran it or when. A panicking job is recovered into its error
// slot and the pool keeps draining — one failing grid point can never
// deadlock or abort a campaign.
//
// Each invocation of job receives the index of the worker goroutine running
// it, in [0, EffectiveWorkers(n, workers)). A worker runs its jobs strictly
// sequentially, so per-worker state — a reusable packet pool, a scratch
// buffer — is safe to index by worker without locking; results must never
// depend on it, since which jobs land on which worker is scheduling-
// dependent.
func Run(n, workers int, job func(worker, index int) error) []error {
	errs := make([]error, n)
	if n <= 0 {
		return errs
	}
	workers = EffectiveWorkers(n, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = protect(job, w, i)
			}
		}(w)
	}
	wg.Wait()
	return errs
}

// protect runs one job, converting a panic into an error so the worker
// survives.
func protect(job func(int, int) error, w, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: job %d panicked: %v", i, r)
		}
	}()
	return job(w, i)
}
