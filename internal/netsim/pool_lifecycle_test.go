package netsim

import (
	"testing"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Every reference issued by the pool must come back: delivery releases at
// the host, drop-tail releases at the queue. After the network drains, the
// pool balance is exactly zero.
func TestPoolBalancedAfterDrainAndDrops(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	// A queue that holds ~2 packets: most of the burst is dropped.
	ab, _ := n.Connect(a, b, 1_000_000, 5*sim.Millisecond, 2100)
	n.ComputeRoutes()

	const burst = 20
	sched.At(0, func() {
		for i := 0; i < burst; i++ {
			a.Send(n.NewPacket(a.Addr(), b.Addr(), 1000, nil))
		}
	})
	sched.Run()

	if ab.Queue.Dropped == 0 {
		t.Fatal("test needs drops to exercise the release-on-drop path")
	}
	if got := b.Received[packet.ProtoNone]; got+ab.Queue.Dropped != burst {
		t.Fatalf("delivered %d + dropped %d != sent %d", got, ab.Queue.Dropped, burst)
	}
	if out := n.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d after drain, want 0 (leak)", out)
	}
	if n.Pool().Issued != burst {
		t.Fatalf("pool Issued = %d, want %d", n.Pool().Issued, burst)
	}
}

// ECN marking must copy-on-write a shared envelope and mark a sole owner in
// place.
func TestQueueMarkingCopyOnWrite(t *testing.T) {
	var pl packet.Pool
	q := Queue{MarkAt: 1}
	// Prime occupancy past MarkAt so the next pushes mark.
	if !q.push(pl.Get(1, 2, 100, nil)) {
		t.Fatal("priming push failed")
	}

	shared := pl.Get(1, 2, 100, nil)
	shared.Retain() // a second branch holds it (multicast fan-out)
	if !q.push(shared) {
		t.Fatal("push of shared packet failed")
	}
	sole := pl.Get(1, 2, 100, nil)
	if !q.push(sole) { // occupancy still past MarkAt
		t.Fatal("push of sole-owned packet failed")
	}

	q.pop().Release() // priming packet
	marked := q.pop()
	if marked == shared {
		t.Fatal("shared packet was marked in place instead of copied")
	}
	if !marked.ECN {
		t.Fatal("queued copy not CE-marked")
	}
	if shared.ECN {
		t.Fatal("mark leaked into the shared original")
	}
	marked.Release()
	shared.Release() // the fan-out branch's reference

	got := q.pop()
	if got != sole || !got.ECN {
		t.Fatalf("sole owner should be marked in place (same envelope): got %p want %p, ECN=%v", got, sole, got.ECN)
	}
	got.Release()
	if out := pl.Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d, want 0", out)
	}
}

// The steady-state unicast hot path — mint, queue, serialize, propagate,
// deliver, release — must allocate nothing once the pool and scheduler
// freelists are warm.
func TestLinkSteadyStateZeroAlloc(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	n.Connect(a, b, 10_000_000, sim.Millisecond, 1<<20)
	n.ComputeRoutes()

	send := func() {
		sched.Schedule(sched.Now(), func() {
			a.Send(n.NewPacket(a.Addr(), b.Addr(), 576, nil))
		})
		sched.Run()
	}
	for i := 0; i < 16; i++ {
		send() // warm the freelists
	}
	if allocs := testing.AllocsPerRun(50, send); allocs > 1 {
		// The emission closure itself may allocate; the packet, events and
		// timers must not.
		t.Fatalf("steady-state send+deliver allocates %.1f objects, want <= 1", allocs)
	}
	if out := n.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d, want 0", out)
	}
}
