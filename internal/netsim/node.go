// Package netsim models the network itself: nodes joined by unidirectional
// rate/delay links with drop-tail queues, unicast shortest-path routing, and
// hosts that hand received packets to protocol agents. Together with
// internal/sim it fills the role NS-2 plays in the paper.
package netsim

import (
	"fmt"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// NodeID identifies a node within one Network.
type NodeID int

// Node is anything packets can arrive at: hosts, core routers, edge routers.
type Node interface {
	// ID returns the node's network-unique identifier.
	ID() NodeID
	// Name returns the human-readable label used in traces.
	Name() string
	// Receive handles a packet arriving over from (nil when injected
	// locally by an agent on this node).
	Receive(pkt *packet.Packet, from *Link)
}

// Handler consumes packets delivered to a host.
type Handler func(pkt *packet.Packet)

// Host is an end system. Protocol agents attach per-protocol handlers; a
// host never forwards traffic.
type Host struct {
	id       NodeID
	name     string
	addr     packet.Addr
	net      *Network
	access   *Link // cached single outgoing link (hosts are single-homed)
	handlers [16]Handler
	anyProto Handler

	// Sharded execution: a migrated host runs its agents on its shard's
	// scheduler and mints from its shard's pool. Zero values mean the host
	// lives on the network's main scheduler/pool (shard 0).
	sched *sim.Scheduler
	pool  *packet.Pool
	shard int

	// Received counts packets delivered to this host, by protocol.
	Received [16]uint64
	// RecvBytes counts bytes delivered to this host.
	RecvBytes uint64
}

// ID implements Node.
func (h *Host) ID() NodeID { return h.id }

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Addr returns the host's unicast address.
func (h *Host) Addr() packet.Addr { return h.addr }

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// Handle registers fn for packets of protocol p delivered to the host.
func (h *Host) Handle(p packet.Proto, fn Handler) { h.handlers[p] = fn }

// HandleAll registers fn to observe every delivered packet, after the
// per-protocol handler.
func (h *Host) HandleAll(fn Handler) { h.anyProto = fn }

// Receive implements Node: account the delivery, dispatch to handlers, and
// release the delivery reference — a handler that keeps the packet beyond
// its return must Retain it.
func (h *Host) Receive(pkt *packet.Packet, from *Link) {
	h.Received[pkt.Proto]++
	h.RecvBytes += uint64(pkt.Size)
	if fn := h.handlers[pkt.Proto]; fn != nil {
		fn(pkt)
	}
	if h.anyProto != nil {
		h.anyProto(pkt)
	}
	pkt.Release()
}

// Send transmits pkt from this host toward pkt.Dst over the host's access
// link (hosts are single-homed; multihomed hosts are not needed by any
// experiment). Multicast destinations are handed to the access router too:
// group delivery is the router's job.
func (h *Host) Send(pkt *packet.Packet) {
	link := h.access
	if link == nil {
		link = h.net.accessLink(h.id)
		if link == nil {
			panic(fmt.Sprintf("netsim: host %s has no access link", h.name))
		}
		h.access = link // links are never removed; the first out-link is stable
	}
	link.Send(pkt)
}

// Scheduler exposes the simulation clock to agents running on the host —
// the host's shard scheduler when the experiment is sharded, the network's
// main scheduler otherwise. Agents must capture it after any migration
// (experiments migrate hosts before constructing agents).
func (h *Host) Scheduler() *sim.Scheduler {
	if h.sched != nil {
		return h.sched
	}
	return h.net.sched
}

// Shard reports which shard the host runs on (0 unless migrated).
func (h *Host) Shard() int { return h.shard }

// NewPacket mints a packet originated by this host, drawing from the
// host's shard pool so agents on migrated hosts never touch the shared
// pool mid-run. Agents that run on hosts (protocol receivers, membership
// clients) must mint through this instead of Network.NewPacket.
func (h *Host) NewPacket(dst packet.Addr, size int, hdr packet.Header) *packet.Packet {
	return h.NewPacketFrom(h.addr, dst, size, hdr)
}

// NewPacketFrom mints a packet with an explicit (possibly spoofed) source
// address through the host's shard pool. Nothing in the data plane
// validates Src against the sending host, which is exactly the gap the
// feedback-forging adversary exploits; keeping the mint on the host keeps
// shard pool accounting honest even for forged traffic.
func (h *Host) NewPacketFrom(src, dst packet.Addr, size int, hdr packet.Header) *packet.Packet {
	if h.pool == nil {
		return h.net.NewPacket(src, dst, size, hdr)
	}
	p := h.pool.Get(src, dst, size, hdr)
	p.UID = h.net.shardUID(h.shard)
	return p
}
