package netsim

// ring is a head-indexed FIFO over a growable circular buffer: a
// continuously busy consumer cycles elements through a fixed backing array
// instead of creeping down an ever-growing slice. Both the drop-tail Queue
// and the Link's in-flight delivery pipeline build on it.
type ring[T any] struct {
	buf   []T // circular storage; len is the current capacity
	head  int // index of the oldest element
	count int
}

// len reports the number of queued elements.
func (r *ring[T]) len() int { return r.count }

// capacity reports the current backing-array size (test observability for
// the no-growth-when-busy regression).
func (r *ring[T]) capacity() int { return len(r.buf) }

// push appends v, doubling (and unwrapping) the buffer when full. The
// capacity is always a power of two (it starts at 8 and doubles), so index
// wrapping is a mask, not a division — push/pop sit on the per-packet path.
func (r *ring[T]) push(v T) {
	if r.count == len(r.buf) {
		n := 2 * len(r.buf)
		if n == 0 {
			n = 8
		}
		next := make([]T, n)
		for i := 0; i < r.count; i++ {
			next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = next
		r.head = 0
	}
	r.buf[(r.head+r.count)&(len(r.buf)-1)] = v
	r.count++
}

// pop removes and returns the oldest element; the vacated slot is zeroed so
// the ring pins no references. Popping an empty ring returns the zero value.
func (r *ring[T]) pop() T {
	var zero T
	if r.count == 0 {
		return zero
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.count--
	return v
}

// peek returns the oldest element without removing it. Valid only when
// len() > 0.
func (r *ring[T]) peek() T { return r.buf[r.head] }
