package netsim

import (
	"testing"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// fwd is a minimal unicast router used to exercise the substrate before the
// real multicast router (internal/mcast) exists.
type fwd struct {
	id   NodeID
	name string
	net  *Network
}

func (f *fwd) ID() NodeID   { return f.id }
func (f *fwd) Name() string { return f.name }
func (f *fwd) Receive(pkt *packet.Packet, from *Link) {
	if l := f.net.NextHopLink(f.id, pkt.Dst); l != nil {
		l.Send(pkt)
	}
}

func addFwd(n *Network, name string) *fwd {
	f := &fwd{name: name, net: n}
	n.Add(func(id NodeID) Node { f.id = id; return f })
	return f
}

func newNet() (*sim.Scheduler, *Network) {
	sched := sim.NewScheduler()
	return sched, New(sched, sim.NewRNG(1))
}

func TestHostAddressesAreUniqueUnicast(t *testing.T) {
	_, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	if a.Addr() == b.Addr() {
		t.Fatal("hosts share an address")
	}
	if a.Addr().IsMulticast() || b.Addr().IsMulticast() {
		t.Fatal("host got a multicast address")
	}
	if id, ok := n.HostByAddr(a.Addr()); !ok || id != a.ID() {
		t.Fatal("HostByAddr lookup failed")
	}
}

func TestLinkDeliversWithSerializationAndPropagation(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	// 1 Mbps, 10 ms: a 1000-byte packet serializes in 8 ms, arrives at 18 ms.
	n.Connect(a, b, 1_000_000, 10*sim.Millisecond, 1<<20)
	n.ComputeRoutes()

	var arrived sim.Time
	b.Handle(packet.ProtoNone, func(pkt *packet.Packet) { arrived = sched.Now() })
	sched.At(0, func() { a.Send(packet.New(a.Addr(), b.Addr(), 1000, nil)) })
	sched.Run()
	want := 18 * sim.Millisecond
	if arrived != want {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	n.Connect(a, b, 1_000_000, 0, 1<<20)
	n.ComputeRoutes()

	var arrivals []sim.Time
	b.Handle(packet.ProtoNone, func(pkt *packet.Packet) { arrivals = append(arrivals, sched.Now()) })
	sched.At(0, func() {
		for i := 0; i < 3; i++ {
			a.Send(packet.New(a.Addr(), b.Addr(), 1000, nil))
		}
	})
	sched.Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d, want 3", len(arrivals))
	}
	// Each packet serializes in 8 ms; deliveries at 8, 16, 24 ms.
	for i, at := range arrivals {
		want := sim.Time(i+1) * 8 * sim.Millisecond
		if at != want {
			t.Fatalf("packet %d at %v, want %v", i, at, want)
		}
	}
}

func TestQueueDropTail(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	ab, _ := n.Connect(a, b, 1_000_000, 0, 2500) // room for ~2 packets beyond the one in service
	n.ComputeRoutes()

	delivered := 0
	b.Handle(packet.ProtoNone, func(pkt *packet.Packet) { delivered++ })
	sched.At(0, func() {
		for i := 0; i < 10; i++ {
			a.Send(packet.New(a.Addr(), b.Addr(), 1000, nil))
		}
	})
	sched.Run()
	// First packet dequeues instantly leaving queue empty, then packets fill
	// the 2500-byte queue (2 packets); subsequent sends drop. As the line
	// drains one more packet fits per dequeue... but all sends happen at
	// t=0, so: 1 in service + 2 queued = 3 delivered, 7 dropped.
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3", delivered)
	}
	if ab.Queue.Dropped != 7 {
		t.Fatalf("dropped %d, want 7", ab.Queue.Dropped)
	}
}

// Regression: a continuously busy queue (never fully drains) must cycle
// packets through a fixed ring rather than creep down an ever-growing
// backing array. The old q.pkts = q.pkts[1:] advance only released memory
// on a full drain, which a saturated bottleneck never reaches.
func TestQueueRingDoesNotGrowWhenBusy(t *testing.T) {
	var q Queue
	const depth = 4
	// Prime the queue to its working depth, then push/pop in lockstep for
	// far more than 10× that capacity, never letting it drain.
	for i := 0; i < depth; i++ {
		if !q.push(packet.New(1, 2, 100, nil)) {
			t.Fatal("push failed on unbounded queue")
		}
	}
	ringCap := q.ring.capacity()
	for i := 0; i < 100*depth; i++ {
		if q.pop() == nil {
			t.Fatalf("pop %d returned nil from non-empty queue", i)
		}
		if !q.push(packet.New(1, 2, 100, nil)) {
			t.Fatalf("push %d failed", i)
		}
		if got := q.ring.capacity(); got != ringCap {
			t.Fatalf("ring grew from %d to %d after %d steady-state cycles", ringCap, got, i+1)
		}
	}
	if q.Len() != depth {
		t.Fatalf("Len = %d, want %d", q.Len(), depth)
	}
	if q.Bytes() != depth*100 {
		t.Fatalf("Bytes = %d, want %d", q.Bytes(), depth*100)
	}
}

// The ring must preserve FIFO order across growth (wrap-around unwrapping)
// and interleaved push/pop.
func TestQueueRingFIFOAcrossGrowth(t *testing.T) {
	var q Queue
	next, want := 0, 0
	push := func() {
		pkt := packet.New(1, 2, 100, nil)
		pkt.UID = uint64(next)
		next++
		q.push(pkt)
	}
	popCheck := func() {
		pkt := q.pop()
		if pkt == nil {
			t.Fatalf("pop returned nil, want seq %d", want)
		}
		if int(pkt.UID) != want {
			t.Fatalf("pop = uid %d, want %d", pkt.UID, want)
		}
		want++
	}
	// Offset the head so the first growth has to unwrap a wrapped ring.
	for i := 0; i < 6; i++ {
		push()
	}
	for i := 0; i < 5; i++ {
		popCheck()
	}
	// Grow through several doublings with a wrapped head.
	for i := 0; i < 100; i++ {
		push()
	}
	for q.Len() > 0 {
		popCheck()
	}
	if want != next {
		t.Fatalf("popped %d packets, pushed %d", want, next)
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue must return nil")
	}
}

func TestQueueECNMarking(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	ab, _ := n.Connect(a, b, 1_000_000, 0, 1<<20)
	ab.Queue.MarkAt = 1500
	n.ComputeRoutes()

	var marks, total int
	b.Handle(packet.ProtoNone, func(pkt *packet.Packet) {
		total++
		if pkt.ECN {
			marks++
		}
	})
	sched.At(0, func() {
		for i := 0; i < 5; i++ {
			a.Send(packet.New(a.Addr(), b.Addr(), 1000, nil))
		}
	})
	sched.Run()
	if total != 5 {
		t.Fatalf("delivered %d, want 5", total)
	}
	// Packet 0 enters service (queue empty). Packets 1,2 enqueue below the
	// 1500B threshold crossing... occupancy when pushing pkt2 is 1000 -> no
	// mark; pkt3 sees 2000 >= 1500 -> marked; pkt4 sees 3000 -> marked.
	if marks != 2 {
		t.Fatalf("marked %d, want 2", marks)
	}
	if ab.Queue.Marked != 2 {
		t.Fatalf("queue.Marked = %d, want 2", ab.Queue.Marked)
	}
}

func TestECNMarkDoesNotMutateSharedPacket(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	ab, _ := n.Connect(a, b, 1_000_000, 0, 1<<20)
	ab.Queue.MarkAt = 1
	n.ComputeRoutes()

	orig := packet.New(a.Addr(), b.Addr(), 1000, nil)
	sched.At(0, func() {
		a.Send(packet.New(a.Addr(), b.Addr(), 1000, nil)) // fills service
		a.Send(orig)                                      // enqueued, marked
	})
	sched.Run()
	if orig.ECN {
		t.Fatal("marking mutated the sender's packet instead of a clone")
	}
}

func TestRoutingPrefersLowDelayPath(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	r1 := addFwd(n, "r1")
	r2 := addFwd(n, "r2")
	// Two paths a->r1->b (fast) and a->r2->b (slow).
	n.Connect(a, r1, 10_000_000, 1*sim.Millisecond, 1<<20)
	n.Connect(r1, b, 10_000_000, 1*sim.Millisecond, 1<<20)
	n.Connect(a, r2, 10_000_000, 50*sim.Millisecond, 1<<20)
	n.Connect(r2, b, 10_000_000, 50*sim.Millisecond, 1<<20)
	n.ComputeRoutes()

	// Host access link is its first link (to r1 here), but routing from r1
	// onward must pick the direct r1->b link.
	path := n.Path(a.ID(), b.ID())
	if len(path) != 3 || path[1] != r1.ID() {
		t.Fatalf("path = %v, want a->r1->b", path)
	}
	d, ok := n.PathDelay(a.ID(), b.ID())
	if !ok || d != 2*sim.Millisecond {
		t.Fatalf("PathDelay = %v ok=%v, want 2ms", d, ok)
	}

	got := 0
	b.Handle(packet.ProtoNone, func(pkt *packet.Packet) { got++ })
	sched.At(0, func() { a.Send(packet.New(a.Addr(), b.Addr(), 100, nil)) })
	sched.Run()
	if got != 1 {
		t.Fatal("packet not delivered through router")
	}
}

func TestRoutingMultiHopChain(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	r1 := addFwd(n, "r1")
	r2 := addFwd(n, "r2")
	r3 := addFwd(n, "r3")
	n.Connect(a, r1, 10_000_000, sim.Millisecond, 1<<20)
	n.Connect(r1, r2, 10_000_000, sim.Millisecond, 1<<20)
	n.Connect(r2, r3, 10_000_000, sim.Millisecond, 1<<20)
	n.Connect(r3, b, 10_000_000, sim.Millisecond, 1<<20)
	n.ComputeRoutes()

	got := 0
	b.Handle(packet.ProtoNone, func(pkt *packet.Packet) { got++ })
	sched.At(0, func() { a.Send(packet.New(a.Addr(), b.Addr(), 100, nil)) })
	sched.Run()
	if got != 1 {
		t.Fatal("packet lost on multi-hop chain")
	}
	if p := n.Path(a.ID(), b.ID()); len(p) != 5 {
		t.Fatalf("path length %d, want 5", len(p))
	}
}

func TestUnreachableDestination(t *testing.T) {
	_, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b") // never connected
	n.Connect(a, addFwd(n, "r"), 1_000_000, 0, 1<<20)
	n.ComputeRoutes()
	if l := n.NextHopLink(a.ID(), b.Addr()); l != nil {
		// a's access link exists but b is unreachable from r; from a the
		// first hop may exist, so check from the router instead.
		t.Log("first hop exists; checking router")
	}
	if _, ok := n.PathDelay(a.ID(), b.ID()); ok {
		t.Fatal("PathDelay should fail for unreachable node")
	}
	if p := n.Path(a.ID(), b.ID()); p != nil {
		t.Fatalf("Path should be nil, got %v", p)
	}
}

func TestHostHandlerDispatchByProto(t *testing.T) {
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	n.Connect(a, b, 1_000_000, 0, 1<<20)
	n.ComputeRoutes()

	var tcp, all int
	b.Handle(packet.ProtoTCP, func(pkt *packet.Packet) { tcp++ })
	b.HandleAll(func(pkt *packet.Packet) { all++ })
	sched.At(0, func() {
		a.Send(packet.New(a.Addr(), b.Addr(), 576, &packet.TCPHeader{Flow: 1, Seq: 0, Len: 536}))
		a.Send(packet.New(a.Addr(), b.Addr(), 576, &packet.CBRHeader{Flow: 1}))
	})
	sched.Run()
	if tcp != 1 {
		t.Fatalf("tcp handler fired %d times, want 1", tcp)
	}
	if all != 2 {
		t.Fatalf("catch-all fired %d times, want 2", all)
	}
	if b.Received[packet.ProtoCBR] != 1 || b.RecvBytes != 1152 {
		t.Fatalf("accounting wrong: %v recvBytes=%d", b.Received, b.RecvBytes)
	}
}

func TestNewUIDMonotone(t *testing.T) {
	_, n := newNet()
	prev := n.NewUID()
	for i := 0; i < 100; i++ {
		u := n.NewUID()
		if u <= prev {
			t.Fatal("UIDs must increase")
		}
		prev = u
	}
}

func TestConnectRejectsZeroRate(t *testing.T) {
	_, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	defer func() {
		if recover() == nil {
			t.Fatal("Connect with rate 0 should panic")
		}
	}()
	n.Connect(a, b, 0, 0, 0)
}

func TestAccessRouter(t *testing.T) {
	_, n := newNet()
	a := n.AddHost("a")
	r := addFwd(n, "r")
	n.Connect(a, r, 1_000_000, 0, 1<<20)
	if got := n.AccessRouter(a); got == nil || got.ID() != r.ID() {
		t.Fatal("AccessRouter should return r")
	}
	orphan := n.AddHost("orphan")
	if n.AccessRouter(orphan) != nil {
		t.Fatal("orphan host should have no access router")
	}
}

func TestThroughputMatchesLinkRate(t *testing.T) {
	// Saturate a 1 Mbps link for 10 simulated seconds; delivered bytes must
	// match the line rate within one packet.
	sched, n := newNet()
	a := n.AddHost("a")
	b := n.AddHost("b")
	n.Connect(a, b, 1_000_000, 5*sim.Millisecond, 10_000)
	n.ComputeRoutes()

	const pktSize = 1000
	var send func()
	send = func() {
		a.Send(packet.New(a.Addr(), b.Addr(), pktSize, nil))
		// Offer 2 Mbps so the link stays saturated.
		sched.After(4*sim.Millisecond, send)
	}
	sched.At(0, send)
	sched.RunUntil(10 * sim.Second)

	gotBits := float64(b.RecvBytes) * 8
	wantBits := 1_000_000 * 10.0
	if gotBits < wantBits*0.98 || gotBits > wantBits*1.01 {
		t.Fatalf("throughput %v bits over 10s, want ~%v", gotBits, wantBits)
	}
}

func BenchmarkLinkSaturation(b *testing.B) {
	sched, n := newNet()
	a := n.AddHost("a")
	dst := n.AddHost("b")
	n.Connect(a, dst, 100_000_000, sim.Millisecond, 1<<20)
	n.ComputeRoutes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(packet.New(a.Addr(), dst.Addr(), 576, nil))
		if i%1000 == 0 {
			sched.RunUntil(sched.Now() + sim.Millisecond)
		}
	}
	sched.Run()
}
