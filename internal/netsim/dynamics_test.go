package netsim

import (
	"testing"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// twoHosts builds a minimal a→b network for link-mutation tests.
func twoHosts(t *testing.T, rate int64, delay sim.Time, qcap int) (*sim.Scheduler, *Network, *Host, *Host, *Link) {
	t.Helper()
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	ab, _ := n.Connect(a, b, rate, delay, qcap)
	n.ComputeRoutes()
	return sched, n, a, b, ab
}

// Down must cancel the in-progress serialization, the propagation FIFO and
// the queue, releasing every held reference exactly once — the pool balance
// is zero immediately, with no freelist corruption when traffic resumes.
func TestLinkDownReleasesEverythingHeld(t *testing.T) {
	sched, n, a, b, ab := twoHosts(t, 1_000_000, 10*sim.Millisecond, 1<<20)

	const burst = 10
	sched.At(0, func() {
		for i := 0; i < burst; i++ {
			a.Send(n.NewPacket(a.Addr(), b.Addr(), 1000, nil))
		}
	})
	// Each 1000-byte packet serializes in 8 ms and propagates for 10 ms: at
	// 20 ms packet 1 has delivered (18 ms), packet 2 is in propagation,
	// packet 3 is mid-serialization, the rest still queued.
	sched.At(20*sim.Millisecond, func() {
		if ab.flights.len() == 0 || ab.Queue.Len() == 0 {
			t.Errorf("want in-flight and queued packets at the Down instant, have %d/%d",
				ab.flights.len(), ab.Queue.Len())
		}
		ab.Down()
		if out := n.Pool().Outstanding(); out != 0 {
			t.Errorf("pool Outstanding = %d right after Down, want 0", out)
		}
		if !ab.IsDown() {
			t.Error("IsDown false after Down")
		}
	})
	// Sends while down are discarded on arrival at the link.
	sched.At(30*sim.Millisecond, func() {
		a.Send(n.NewPacket(a.Addr(), b.Addr(), 1000, nil))
	})
	sched.Run()

	delivered := b.Received[0]
	if delivered == 0 {
		t.Fatal("nothing delivered before the Down")
	}
	if delivered+ab.DroppedDown != burst+1 {
		t.Fatalf("delivered %d + droppedDown %d != sent %d", delivered, ab.DroppedDown, burst+1)
	}
	if out := n.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d after drain, want 0 (leak)", out)
	}

	// Bring the link back; recycled envelopes must deliver cleanly.
	ab.Up()
	before := b.Received[0]
	sched.Schedule(sched.Now(), func() {
		for i := 0; i < burst; i++ {
			a.Send(n.NewPacket(a.Addr(), b.Addr(), 1000, nil))
		}
	})
	sched.Run()
	if got := b.Received[0] - before; got != burst {
		t.Fatalf("delivered %d of %d after Up", got, burst)
	}
	if out := n.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d after post-Up drain, want 0", out)
	}
}

// Down and Up are idempotent, and Down on an idle link is a no-op beyond
// the state flip.
func TestLinkDownUpIdempotent(t *testing.T) {
	_, n, _, _, ab := twoHosts(t, 1_000_000, sim.Millisecond, 1<<20)
	ab.Down()
	ab.Down()
	if ab.DroppedDown != 0 {
		t.Fatalf("DroppedDown = %d on an idle link, want 0", ab.DroppedDown)
	}
	ab.Up()
	ab.Up()
	if ab.IsDown() {
		t.Fatal("link still down after Up")
	}
	if out := n.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d, want 0", out)
	}
}

// SetRate mid-run speeds up subsequent serializations without disturbing
// the packet already on the wire.
func TestLinkSetRateAffectsSubsequentPackets(t *testing.T) {
	sched, n, a, b, ab := twoHosts(t, 1_000_000, 0, 1<<20)

	var deliveries []sim.Time
	ab.OnDeliver = func(pkt *packet.Packet) { deliveries = append(deliveries, sched.Now()) }

	sched.At(0, func() {
		a.Send(n.NewPacket(a.Addr(), b.Addr(), 1000, nil)) // 8 ms at 1 Mbps
		a.Send(n.NewPacket(a.Addr(), b.Addr(), 1000, nil))
	})
	// Mid-serialization of packet 1: the rate change must not touch it.
	sched.At(2*sim.Millisecond, func() { ab.SetRate(8_000_000) }) // 1 ms per packet
	sched.Run()

	if len(deliveries) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(deliveries))
	}
	if deliveries[0] != 8*sim.Millisecond {
		t.Fatalf("first delivery at %v, want 8ms (old rate honored)", deliveries[0])
	}
	if deliveries[1] != 9*sim.Millisecond {
		t.Fatalf("second delivery at %v, want 9ms (new rate)", deliveries[1])
	}
}

// Lowering the delay mid-run must not reorder the FIFO pipeline: a packet
// entering propagation under the new, shorter delay still delivers after
// the older in-flight packet.
func TestLinkSetDelayKeepsFIFOOrder(t *testing.T) {
	sched, n, a, b, ab := twoHosts(t, 8_000_000, 100*sim.Millisecond, 1<<20)

	var order []uint64
	ab.OnDeliver = func(pkt *packet.Packet) { order = append(order, pkt.UID) }

	sched.At(0, func() {
		a.Send(n.NewPacket(a.Addr(), b.Addr(), 1000, nil)) // UID 1, delivers at 101 ms
	})
	sched.At(2*sim.Millisecond, func() {
		ab.SetDelay(sim.Millisecond)
		a.Send(n.NewPacket(a.Addr(), b.Addr(), 1000, nil)) // UID 2, would deliver at 4 ms alone
	})
	sched.Run()

	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order %v, want [1 2] (FIFO preserved)", order)
	}
	if ab.Delivered != 2 {
		t.Fatalf("Delivered = %d, want 2", ab.Delivered)
	}
	if out := n.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d, want 0", out)
	}
}

// CapacityBits integrates rate over up-time, so utilization denominators
// stay truthful across SetRate and Down/Up windows.
func TestLinkCapacityIntegral(t *testing.T) {
	sched, _, _, _, ab := twoHosts(t, 1_000_000, sim.Millisecond, 1<<20)
	sched.Schedule(sim.Second, func() { ab.SetRate(500_000) })
	sched.Schedule(2*sim.Second, func() { ab.Down() })
	sched.Schedule(3*sim.Second, func() { ab.Up() })
	sched.Schedule(4*sim.Second, func() {})
	sched.Run()
	// 1 Mbps for 1 s + 500 Kbps for 1 s + down for 1 s + 500 Kbps for 1 s.
	want := 1_000_000.0 + 500_000 + 0 + 500_000
	if got := ab.CapacityBits(); got != want {
		t.Fatalf("CapacityBits = %v, want %v", got, want)
	}
	// A never-mutated link matches the plain rate x seconds product the
	// static utilization formula used, bit for bit.
	sched2, _, _, _, cd := twoHosts(t, 750_000, sim.Millisecond, 1<<20)
	sched2.Schedule(7*sim.Second, func() {})
	sched2.Run()
	if got, want := cd.CapacityBits(), float64(cd.Rate)*(7*sim.Second).Sec(); got != want {
		t.Fatalf("static CapacityBits = %v, want %v", got, want)
	}
}

// Invalid re-parameterization panics rather than silently wedging a link.
func TestLinkMutationValidation(t *testing.T) {
	_, _, _, _, ab := twoHosts(t, 1_000_000, sim.Millisecond, 1<<20)
	for name, fn := range map[string]func(){
		"SetRate(0)":   func() { ab.SetRate(0) },
		"SetDelay(-1)": func() { ab.SetDelay(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
