package netsim

import (
	"fmt"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Queue is a drop-tail FIFO bounded in bytes, with optional threshold ECN
// marking for the ECN-driven protocol variant (§3.1.2 "Congestion
// notification"). Storage is a head-indexed ring: a continuously busy
// bottleneck cycles packets through a fixed backing array instead of
// creeping down an ever-growing slice.
type Queue struct {
	CapBytes  int // maximum queued bytes; <=0 means unbounded
	MarkAt    int // ECN-mark packets enqueued beyond this many bytes; 0 disables
	bytes     int
	ring      []*packet.Packet // ring storage; len is the current capacity
	head      int              // index of the oldest packet
	count     int              // packets queued
	Dropped   uint64
	Marked    uint64
	MaxFilled int
}

// Len reports the number of queued packets.
func (q *Queue) Len() int { return q.count }

// Bytes reports the queued byte total.
func (q *Queue) Bytes() int { return q.bytes }

// push appends pkt if it fits, returning false on a drop-tail drop. When the
// queue is in marking mode and occupancy exceeds MarkAt, the packet is
// CE-marked instead of dropped (marking replaces loss as the congestion
// signal; capacity still backstops).
func (q *Queue) push(pkt *packet.Packet) bool {
	if q.CapBytes > 0 && q.bytes+pkt.Size > q.CapBytes {
		q.Dropped++
		return false
	}
	if q.MarkAt > 0 && q.bytes >= q.MarkAt {
		pkt = pkt.Clone()
		pkt.ECN = true
		q.Marked++
	}
	if q.count == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.count)%len(q.ring)] = pkt
	q.count++
	q.bytes += pkt.Size
	if q.bytes > q.MaxFilled {
		q.MaxFilled = q.bytes
	}
	return true
}

// grow doubles the ring, unwrapping the queued packets to the front.
func (q *Queue) grow() {
	n := 2 * len(q.ring)
	if n == 0 {
		n = 8
	}
	next := make([]*packet.Packet, n)
	for i := 0; i < q.count; i++ {
		next[i] = q.ring[(q.head+i)%len(q.ring)]
	}
	q.ring = next
	q.head = 0
}

// pop removes and returns the head packet, or nil when empty.
func (q *Queue) pop() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	pkt := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	q.bytes -= pkt.Size
	return pkt
}

// Link is a unidirectional rate/delay pipe with an attached queue. A duplex
// connection is a pair of Links. Transmission serializes packets at Rate;
// after serialization the packet propagates for Delay and is delivered to
// the destination node.
type Link struct {
	src, dst Node
	Rate     int64    // bits per second
	Delay    sim.Time // propagation delay
	Queue    Queue
	sched    *sim.Scheduler
	busy     bool

	// Delivered counts packets handed to dst.
	Delivered uint64
	// SentBytes counts bytes that completed serialization.
	SentBytes uint64
	// OnDeliver, when set, observes every delivery (tracing hook).
	OnDeliver func(pkt *packet.Packet)
}

// From returns the upstream node.
func (l *Link) From() Node { return l.src }

// To returns the downstream node.
func (l *Link) To() Node { return l.dst }

// String labels the link for traces.
func (l *Link) String() string {
	return fmt.Sprintf("%s->%s", l.src.Name(), l.dst.Name())
}

// txTime returns the serialization time of size bytes at the link rate.
func (l *Link) txTime(size int) sim.Time {
	return sim.Time(int64(size) * 8 * int64(sim.Second) / l.Rate)
}

// Send enqueues pkt for transmission, dropping it if the queue is full.
func (l *Link) Send(pkt *packet.Packet) {
	if !l.Queue.push(pkt) {
		return
	}
	if !l.busy {
		l.startTransmission()
	}
}

func (l *Link) startTransmission() {
	pkt := l.Queue.pop()
	if pkt == nil {
		l.busy = false
		return
	}
	l.busy = true
	tx := l.txTime(pkt.Size)
	l.sched.After(tx, func() {
		l.SentBytes += uint64(pkt.Size)
		// Propagation is pipelined: the next packet starts serializing
		// immediately while this one is in flight.
		l.sched.After(l.Delay, func() {
			l.Delivered++
			if l.OnDeliver != nil {
				l.OnDeliver(pkt)
			}
			l.dst.Receive(pkt, l)
		})
		l.startTransmission()
	})
}
