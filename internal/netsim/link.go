package netsim

import (
	"fmt"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Queue is a drop-tail FIFO bounded in bytes, with optional threshold ECN
// marking for the ECN-driven protocol variant (§3.1.2 "Congestion
// notification"). Storage is a head-indexed ring: a continuously busy
// bottleneck cycles packets through a fixed backing array instead of
// creeping down an ever-growing slice.
//
// The queue participates in the pooled packet lifecycle: it owns one
// reference to every queued packet, releases it on a drop-tail drop, and
// hands it onward on pop. ECN marking goes through Writable, so a shared
// multicast envelope is copied-on-write while a sole owner is marked in
// place.
type Queue struct {
	CapBytes  int // maximum queued bytes; <=0 means unbounded
	MarkAt    int // ECN-mark packets enqueued beyond this many bytes; 0 disables
	bytes     int
	ring      ring[*packet.Packet]
	Dropped   uint64
	Marked    uint64
	MaxFilled int
}

// Len reports the number of queued packets.
func (q *Queue) Len() int { return q.ring.len() }

// Bytes reports the queued byte total.
func (q *Queue) Bytes() int { return q.bytes }

// push appends pkt if it fits, returning false on a drop-tail drop (the
// dropped packet's reference is released). When the queue is in marking mode
// and occupancy exceeds MarkAt, the packet is CE-marked instead of dropped
// (marking replaces loss as the congestion signal; capacity still backstops).
func (q *Queue) push(pkt *packet.Packet) bool {
	if q.CapBytes > 0 && q.bytes+pkt.Size > q.CapBytes {
		q.Dropped++
		pkt.Release()
		return false
	}
	if q.MarkAt > 0 && q.bytes >= q.MarkAt {
		pkt = pkt.Writable()
		pkt.ECN = true
		q.Marked++
	}
	q.ring.push(pkt)
	q.bytes += pkt.Size
	if q.bytes > q.MaxFilled {
		q.MaxFilled = q.bytes
	}
	return true
}

// pop removes and returns the head packet, or nil when empty.
func (q *Queue) pop() *packet.Packet {
	pkt := q.ring.pop()
	if pkt != nil {
		q.bytes -= pkt.Size
	}
	return pkt
}

// flight is one packet in propagation: serialization finished, delivery
// pending at `at`. seq is the tie-break sequence reserved when the flight
// was created, so the single reusable delivery timer fires each flight
// exactly where an individually scheduled event would have.
type flight struct {
	pkt *packet.Packet
	at  sim.Time
	seq uint64
}

// Link is a unidirectional rate/delay pipe with an attached queue. A duplex
// connection is a pair of Links. Transmission serializes packets at Rate;
// after serialization the packet propagates for Delay and is delivered to
// the destination node.
//
// The steady-state transmission path allocates nothing: one reusable timer
// tracks the serialization of the head packet, a second walks the FIFO of
// in-flight packets (propagation delay is constant per link, so deliveries
// are strictly FIFO), and the in-flight ring recycles its backing array.
type Link struct {
	src, dst Node
	Rate     int64    // bits per second
	Delay    sim.Time // propagation delay
	Queue    Queue
	sched    *sim.Scheduler
	busy     bool

	cur          *packet.Packet // packet currently serializing
	txTimer      sim.Timer      // fires when cur finishes serializing
	deliverTimer sim.Timer      // fires at the head flight's delivery time
	flights      ring[flight]   // FIFO of packets in propagation

	// Delivered counts packets handed to dst.
	Delivered uint64
	// SentBytes counts bytes that completed serialization.
	SentBytes uint64
	// OnDeliver, when set, observes every delivery (tracing hook). The
	// packet is released after delivery; observers must not retain it
	// without Retain.
	OnDeliver func(pkt *packet.Packet)
}

// init wires the link's reusable timers; called once by Connect.
func (l *Link) init() {
	l.txTimer = l.sched.MakeTimer(l.onTxDone)
	l.deliverTimer = l.sched.MakeTimer(l.onDeliver)
}

// From returns the upstream node.
func (l *Link) From() Node { return l.src }

// To returns the downstream node.
func (l *Link) To() Node { return l.dst }

// String labels the link for traces.
func (l *Link) String() string {
	return fmt.Sprintf("%s->%s", l.src.Name(), l.dst.Name())
}

// txTime returns the serialization time of size bytes at the link rate.
func (l *Link) txTime(size int) sim.Time {
	return sim.Time(int64(size) * 8 * int64(sim.Second) / l.Rate)
}

// Send enqueues pkt for transmission, taking ownership of one reference;
// a drop-tail drop releases it.
func (l *Link) Send(pkt *packet.Packet) {
	if !l.Queue.push(pkt) {
		return
	}
	if !l.busy {
		l.startTransmission()
	}
}

func (l *Link) startTransmission() {
	pkt := l.Queue.pop()
	if pkt == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.cur = pkt
	l.txTimer.Reset(l.txTime(pkt.Size))
}

// onTxDone finishes serializing the current packet: it enters propagation
// (pipelined — the next packet starts serializing immediately) and is
// delivered Delay later by the delivery timer.
func (l *Link) onTxDone() {
	pkt := l.cur
	l.cur = nil
	l.SentBytes += uint64(pkt.Size)
	f := flight{pkt: pkt, at: l.sched.Now() + l.Delay, seq: l.sched.ReserveSeq()}
	wasEmpty := l.flights.len() == 0
	l.flights.push(f)
	if wasEmpty {
		l.deliverTimer.ResetReserved(f.at, f.seq)
	}
	l.startTransmission()
}

// onDeliver hands the head in-flight packet to the destination node and
// re-arms for the next one. Receive takes over the packet's reference.
func (l *Link) onDeliver() {
	f := l.flights.pop()
	l.Delivered++
	if l.OnDeliver != nil {
		l.OnDeliver(f.pkt)
	}
	l.dst.Receive(f.pkt, l)
	if l.flights.len() > 0 {
		next := l.flights.peek()
		at := next.at
		if at < l.sched.Now() {
			// Delay was lowered mid-run while older flights were still in
			// propagation; the FIFO pipeline then delivers the newer packet
			// as soon as the older one is out rather than rewinding time.
			at = l.sched.Now()
		}
		l.deliverTimer.ResetReserved(at, next.seq)
	}
}
