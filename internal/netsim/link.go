package netsim

import (
	"fmt"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Queue is a drop-tail FIFO bounded in bytes, with optional threshold ECN
// marking for the ECN-driven protocol variant (§3.1.2 "Congestion
// notification"). Storage is a head-indexed ring: a continuously busy
// bottleneck cycles packets through a fixed backing array instead of
// creeping down an ever-growing slice.
//
// The queue participates in the pooled packet lifecycle: it owns one
// reference to every queued packet, releases it on a drop-tail drop, and
// hands it onward on pop. ECN marking goes through Writable, so a shared
// multicast envelope is copied-on-write while a sole owner is marked in
// place.
type Queue struct {
	CapBytes  int // maximum queued bytes; <=0 means unbounded
	MarkAt    int // ECN-mark packets enqueued beyond this many bytes; 0 disables
	bytes     int
	ring      ring[*packet.Packet]
	Dropped   uint64
	Marked    uint64
	MaxFilled int
}

// Len reports the number of queued packets.
func (q *Queue) Len() int { return q.ring.len() }

// Bytes reports the queued byte total.
func (q *Queue) Bytes() int { return q.bytes }

// push appends pkt if it fits, returning false on a drop-tail drop (the
// dropped packet's reference is released). When the queue is in marking mode
// and occupancy exceeds MarkAt, the packet is CE-marked instead of dropped
// (marking replaces loss as the congestion signal; capacity still backstops).
func (q *Queue) push(pkt *packet.Packet) bool {
	if q.CapBytes > 0 && q.bytes+pkt.Size > q.CapBytes {
		q.Dropped++
		pkt.Release()
		return false
	}
	if q.MarkAt > 0 && q.bytes >= q.MarkAt {
		pkt = pkt.Writable()
		pkt.ECN = true
		q.Marked++
	}
	q.ring.push(pkt)
	q.bytes += pkt.Size
	if q.bytes > q.MaxFilled {
		q.MaxFilled = q.bytes
	}
	return true
}

// pop removes and returns the head packet, or nil when empty.
func (q *Queue) pop() *packet.Packet {
	pkt := q.ring.pop()
	if pkt != nil {
		q.bytes -= pkt.Size
	}
	return pkt
}

// flight is one packet in propagation: serialization finished, delivery
// pending at `at`. res is the tie-break reservation made when the flight
// was created, so the single reusable delivery timer fires each flight
// exactly where an individually scheduled event would have.
type flight struct {
	pkt *packet.Packet
	at  sim.Time
	res sim.Reservation
}

// Link is a unidirectional rate/delay pipe with an attached queue. A duplex
// connection is a pair of Links. Transmission serializes packets at Rate;
// after serialization the packet propagates for Delay and is delivered to
// the destination node.
//
// The steady-state transmission path allocates nothing: one reusable timer
// tracks the serialization of the head packet, a second walks the FIFO of
// in-flight packets (propagation delay is constant per link, so deliveries
// are strictly FIFO), and the in-flight ring recycles its backing array.
type Link struct {
	src, dst Node
	Rate     int64    // bits per second; mutate via SetRate only
	Delay    sim.Time // propagation delay; mutate via SetDelay only
	Queue    Queue
	sched    *sim.Scheduler
	busy     bool
	down     bool

	cur          *packet.Packet // packet currently serializing
	txTimer      sim.Timer      // fires when cur finishes serializing
	deliverTimer sim.Timer      // fires at the head flight's delivery time
	flights      ring[flight]   // FIFO of packets in propagation
	cut          *cutPort       // non-nil when this link crosses a shard boundary

	// capBits integrates available capacity — Rate while up, zero while
	// down — in bits from time zero to lastAccrue, so utilization stays
	// correct when SetRate/Down/Up re-parameterize the link mid-run.
	capBits    float64
	lastAccrue sim.Time

	// Arrived counts every packet handed to Send, whatever its fate —
	// the left-hand side of the link conservation law the invariant layer
	// audits: Arrived == Delivered + Queue.Dropped + DroppedDown +
	// Queue.Len() + InFlight() + Serializing().
	Arrived uint64
	// Delivered counts packets handed to dst.
	Delivered uint64
	// SentBytes counts bytes that completed serialization.
	SentBytes uint64
	// MaxPacketBytes is the largest packet that entered serialization; the
	// utilization invariant allows this much slack per rate change.
	MaxPacketBytes int
	// RateChanges counts SetRate calls. Each downward re-rate can let the
	// packet serializing at that moment finish on the old (faster) timing,
	// so the capacity-integral bound on SentBytes carries one packet of
	// slack per change.
	RateChanges uint64
	// DroppedDown counts packets discarded because the link was down:
	// arrivals while down plus queued and in-flight packets flushed by the
	// Down transition itself.
	DroppedDown uint64
	// OnDeliver, when set, observes every delivery (tracing hook). The
	// packet is released after delivery; observers must not retain it
	// without Retain.
	OnDeliver func(pkt *packet.Packet)
}

// init wires the link's reusable timers; called once by Connect.
func (l *Link) init() {
	l.txTimer = l.sched.MakeTimer(l.onTxDone)
	l.deliverTimer = l.sched.MakeTimer(l.onDeliver)
}

// From returns the upstream node.
func (l *Link) From() Node { return l.src }

// To returns the downstream node.
func (l *Link) To() Node { return l.dst }

// String labels the link for traces.
func (l *Link) String() string {
	return fmt.Sprintf("%s->%s", l.src.Name(), l.dst.Name())
}

// txTime returns the serialization time of size bytes at the link rate.
func (l *Link) txTime(size int) sim.Time {
	return sim.Time(int64(size) * 8 * int64(sim.Second) / l.Rate)
}

// Send enqueues pkt for transmission, taking ownership of one reference;
// a drop-tail drop — or a down link — releases it.
func (l *Link) Send(pkt *packet.Packet) {
	l.Arrived++
	if l.down {
		l.DroppedDown++
		pkt.Release()
		return
	}
	if !l.Queue.push(pkt) {
		return
	}
	if !l.busy {
		l.startTransmission()
	}
}

func (l *Link) startTransmission() {
	pkt := l.Queue.pop()
	if pkt == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.cur = pkt
	if pkt.Size > l.MaxPacketBytes {
		l.MaxPacketBytes = pkt.Size
	}
	l.txTimer.Reset(l.txTime(pkt.Size))
}

// onTxDone finishes serializing the current packet: it enters propagation
// (pipelined — the next packet starts serializing immediately) and is
// delivered Delay later by the delivery timer.
func (l *Link) onTxDone() {
	pkt := l.cur
	l.cur = nil
	l.SentBytes += uint64(pkt.Size)
	if l.cut != nil {
		// Cross-shard propagation: the packet leaves this shard. Park the
		// original for the barrier hand-off and post the delivery into the
		// destination shard at the usual arrival time — the link's delay is
		// the cut's lookahead, so the post always satisfies the conservative
		// contract exactly.
		l.cut.xfer.push(pkt)
		l.cut.edge.Post(l.sched.Now()+l.Delay, l.cut.deliver)
		l.startTransmission()
		return
	}
	f := flight{pkt: pkt, at: l.sched.Now() + l.Delay, res: l.sched.Reserve()}
	wasEmpty := l.flights.len() == 0
	l.flights.push(f)
	if wasEmpty {
		l.deliverTimer.ResetReserved(f.at, f.res)
	}
	l.startTransmission()
}

// onDeliver hands the head in-flight packet to the destination node and
// re-arms for the next one. Receive takes over the packet's reference.
func (l *Link) onDeliver() {
	f := l.flights.pop()
	l.Delivered++
	if l.OnDeliver != nil {
		l.OnDeliver(f.pkt)
	}
	l.dst.Receive(f.pkt, l)
	if l.flights.len() > 0 {
		next := l.flights.peek()
		at := next.at
		if at < l.sched.Now() {
			// Delay was lowered mid-run while older flights were still in
			// propagation; the FIFO pipeline then delivers the newer packet
			// as soon as the older one is out rather than rewinding time.
			at = l.sched.Now()
		}
		l.deliverTimer.ResetReserved(at, next.res)
	}
}

// ---------------------------------------------------------------------------
// Live re-parameterization (the dynamics layer's link events). All four
// mutators are safe mid-run: they preserve the pooled-packet ownership
// discipline — every reference the link holds is either carried forward or
// released exactly once — and never disturb the FIFO delivery pipeline's
// determinism guarantees.

// accrue folds the capacity available since the last accrual into capBits:
// Rate while up, nothing while down. Called before every parameter change
// and by CapacityBits.
func (l *Link) accrue() {
	now := l.sched.Now()
	if now > l.lastAccrue {
		if !l.down {
			l.capBits += float64(l.Rate) * (float64(now-l.lastAccrue) / float64(sim.Second))
		}
		l.lastAccrue = now
	}
}

// CapacityBits reports the integral of available link capacity in bits
// from time zero to now — the correct utilization denominator for links
// whose rate or up/down state changed mid-run (for a never-mutated link it
// equals Rate × elapsed seconds exactly).
func (l *Link) CapacityBits() float64 {
	l.accrue()
	return l.capBits
}

// SetRate changes the link rate for subsequent transmissions. A packet
// already serializing completes on the old timing (its tx timer is armed);
// re-arming it would entangle the change with serialization phase and buy
// nothing observable one packet later.
func (l *Link) SetRate(rate int64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: SetRate(%d) on %s must be positive", rate, l))
	}
	l.guardCut("SetRate")
	l.accrue()
	l.Rate = rate
	l.RateChanges++
}

// SetDelay changes the propagation delay for packets entering propagation
// from now on. Packets already in flight keep their delivery times; when
// the delay is lowered, the FIFO pipeline clamps newer deliveries behind
// older ones (see onDeliver) instead of reordering.
func (l *Link) SetDelay(d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: SetDelay(%v) on %s is negative", d, l))
	}
	l.guardCut("SetDelay")
	l.Delay = d
}

// InFlight reports how many packets are in propagation (serialization
// finished, delivery pending) — an audit observability hook. On a cut link
// the propagating packets sit in the hand-off rings instead of the flight
// FIFO: originals awaiting the barrier copy plus copies awaiting delivery.
func (l *Link) InFlight() int {
	if l.cut != nil {
		return l.cut.xfer.len() + l.cut.handoff.len()
	}
	return l.flights.len()
}

// Serializing reports whether a packet is currently being serialized.
func (l *Link) Serializing() bool { return l.cur != nil }

// IsDown reports whether the link is administratively down.
func (l *Link) IsDown() bool { return l.down }

// Down takes the link down: the in-progress serialization is abandoned,
// pending deliveries are cancelled, and every packet the link holds — the
// one serializing, the propagation FIFO, the queue — is released back to
// the pool and counted in DroppedDown. Packets sent while down are
// discarded on arrival. Idempotent.
func (l *Link) Down() {
	if l.down {
		return
	}
	l.guardCut("Down")
	l.accrue() // capacity counted up to the outage instant
	l.down = true
	l.txTimer.Stop()
	if l.cur != nil {
		l.cur.Release()
		l.cur = nil
		l.DroppedDown++
	}
	l.busy = false
	l.deliverTimer.Stop()
	for l.flights.len() > 0 {
		f := l.flights.pop()
		f.pkt.Release()
		l.DroppedDown++
	}
	for {
		pkt := l.Queue.pop()
		if pkt == nil {
			break
		}
		pkt.Release()
		l.DroppedDown++
	}
}

// Up brings the link back. The queue is empty at this point (Down drained
// it and Send discarded while down), so transmission resumes with the next
// arriving packet; the guard covers callers that pushed state in between.
// Idempotent.
func (l *Link) Up() {
	if !l.down {
		return
	}
	l.accrue() // the downtime contributes zero capacity
	l.down = false
	if !l.busy && l.Queue.Len() > 0 {
		l.startTransmission()
	}
}
