package netsim

import (
	"container/heap"
	"fmt"
	"math"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// hostAddrBase is where unicast host addresses are allocated from
// (10.0.0.1 onward).
const hostAddrBase packet.Addr = 0x0A000001

// Network assembles nodes and links, allocates addresses, and computes
// unicast shortest-path routes. It is the substrate every scenario builds
// its topology on.
type Network struct {
	sched *sim.Scheduler
	rng   *sim.RNG
	pool  *packet.Pool

	nodes  []Node
	out    map[NodeID][]*Link
	linkTo map[NodeID]map[NodeID]*Link
	addrOf map[packet.Addr]NodeID

	nextAddr packet.Addr
	nextHop  [][]*Link // nextHop[from][dstNode]; nil = unreachable
	uid      uint64

	// shard is non-nil when the network executes across a ShardGroup; see
	// shard.go.
	shard *shardState
}

// New creates an empty network driven by sched, drawing any randomness from
// rng (components fork their own sub-streams). The network owns a fresh
// packet pool; SetPool swaps in a shared one before traffic starts.
func New(sched *sim.Scheduler, rng *sim.RNG) *Network {
	return &Network{
		sched:    sched,
		rng:      rng,
		pool:     &packet.Pool{},
		out:      make(map[NodeID][]*Link),
		linkTo:   make(map[NodeID]map[NodeID]*Link),
		addrOf:   make(map[packet.Addr]NodeID),
		nextAddr: hostAddrBase,
	}
}

// Scheduler returns the simulation clock driving this network.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// RNG returns the network's randomness source.
func (n *Network) RNG() *sim.RNG { return n.rng }

// Pool returns the packet pool every agent on this network draws from.
func (n *Network) Pool() *packet.Pool { return n.pool }

// SetPool replaces the network's packet pool — campaign workers inject a
// worker-local pool here so consecutive grid points reuse one warm freelist.
// Must be called before any traffic is generated.
func (n *Network) SetPool(p *packet.Pool) {
	if p != nil {
		n.pool = p
	}
}

// NewUID issues a unique packet identifier for tracing.
func (n *Network) NewUID() uint64 {
	n.uid++
	return n.uid
}

// NewPacket builds a pooled packet with a fresh trace UID — the standard
// way agents mint traffic. The caller owns the returned reference and
// transfers it by sending.
func (n *Network) NewPacket(src, dst packet.Addr, size int, hdr packet.Header) *packet.Packet {
	p := n.pool.Get(src, dst, size, hdr)
	p.UID = n.NewUID()
	return p
}

// Add registers a node constructed by make with a freshly assigned ID.
// Router types in other packages use this to join the network.
func (n *Network) Add(make func(id NodeID) Node) Node {
	id := NodeID(len(n.nodes))
	node := make(id)
	n.nodes = append(n.nodes, node)
	return node
}

// AddHost creates a host with the given name and a fresh unicast address.
func (n *Network) AddHost(name string) *Host {
	h := &Host{name: name, net: n, addr: n.nextAddr}
	n.nextAddr++
	n.Add(func(id NodeID) Node { h.id = id; return h })
	n.addrOf[h.addr] = h.id
	return h
}

// AssignAddr allocates a unicast address for a non-host node (routers need
// addresses so receivers can send them control messages).
func (n *Network) AssignAddr(node Node) packet.Addr {
	a := n.nextAddr
	n.nextAddr++
	n.addrOf[a] = node.ID()
	return a
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// NodeCount reports how many nodes are registered.
func (n *Network) NodeCount() int { return len(n.nodes) }

// HostByAddr resolves a unicast address to its host node ID.
func (n *Network) HostByAddr(a packet.Addr) (NodeID, bool) {
	id, ok := n.addrOf[a]
	return id, ok
}

// Connect joins a and b with a duplex pair of links, each with the given
// rate (bits/s), propagation delay, and queue capacity in bytes. It returns
// the a→b and b→a links.
func (n *Network) Connect(a, b Node, rate int64, delay sim.Time, qcap int) (*Link, *Link) {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %d on %s-%s", rate, a.Name(), b.Name()))
	}
	ab := &Link{src: a, dst: b, Rate: rate, Delay: delay, sched: n.sched, Queue: Queue{CapBytes: qcap}}
	ba := &Link{src: b, dst: a, Rate: rate, Delay: delay, sched: n.sched, Queue: Queue{CapBytes: qcap}}
	ab.init()
	ba.init()
	n.registerLink(ab)
	n.registerLink(ba)
	return ab, ba
}

func (n *Network) registerLink(l *Link) {
	from, to := l.src.ID(), l.dst.ID()
	n.out[from] = append(n.out[from], l)
	if n.linkTo[from] == nil {
		n.linkTo[from] = make(map[NodeID]*Link)
	}
	n.linkTo[from][to] = l
}

// OutLinks returns the outgoing links of a node.
func (n *Network) OutLinks(id NodeID) []*Link { return n.out[id] }

// Links returns every directed link in deterministic order (nodes by ID,
// each node's out-links in registration order) — the audit layer iterates
// this, and violation order must not depend on map iteration.
func (n *Network) Links() []*Link {
	var all []*Link
	for id := range n.nodes {
		all = append(all, n.out[NodeID(id)]...)
	}
	return all
}

// LinkBetween returns the directed link from a to b, or nil.
func (n *Network) LinkBetween(a, b NodeID) *Link {
	return n.linkTo[a][b]
}

// accessLink returns a host's single outgoing link.
func (n *Network) accessLink(id NodeID) *Link {
	links := n.out[id]
	if len(links) == 0 {
		return nil
	}
	return links[0]
}

// AccessRouter returns the node at the far end of a host's access link.
func (n *Network) AccessRouter(h *Host) Node {
	l := n.accessLink(h.id)
	if l == nil {
		return nil
	}
	return l.dst
}

// ComputeRoutes runs Dijkstra from every node with link propagation delay
// as the cost (plus a small per-hop term so equal-delay paths prefer fewer
// hops). Must be called after topology construction and before traffic.
func (n *Network) ComputeRoutes() {
	const hopEpsilon = int64(sim.Microsecond)
	count := len(n.nodes)
	n.nextHop = make([][]*Link, count)
	for src := 0; src < count; src++ {
		n.nextHop[src] = n.dijkstra(NodeID(src), hopEpsilon)
	}
}

type pqItem struct {
	node NodeID
	dist int64
	idx  int
}

type pq []*pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i]; p[i].idx = i; p[j].idx = j }
func (p *pq) Push(x any)        { it := x.(*pqItem); it.idx = len(*p); *p = append(*p, it) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// dijkstra returns, for every destination, the first link out of src on a
// shortest path toward it.
func (n *Network) dijkstra(src NodeID, hopEpsilon int64) []*Link {
	count := len(n.nodes)
	dist := make([]int64, count)
	first := make([]*Link, count) // first hop link from src toward node
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	dist[src] = 0
	q := &pq{}
	heap.Push(q, &pqItem{node: src})
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, l := range n.out[it.node] {
			to := l.dst.ID()
			d := it.dist + int64(l.Delay) + hopEpsilon
			if d < dist[to] {
				dist[to] = d
				if it.node == src {
					first[to] = l
				} else {
					first[to] = first[it.node]
				}
				heap.Push(q, &pqItem{node: to, dist: d})
			}
		}
	}
	return first
}

// NextHopLink returns the link a packet at node from should take toward the
// node that owns dst, or nil when dst is unknown or unreachable.
func (n *Network) NextHopLink(from NodeID, dst packet.Addr) *Link {
	id, ok := n.addrOf[dst]
	if !ok {
		return nil
	}
	return n.NextHopTo(from, id)
}

// NextHopTo returns the first link on the shortest path from one node to
// another, or nil.
func (n *Network) NextHopTo(from, to NodeID) *Link {
	if n.nextHop == nil {
		panic("netsim: ComputeRoutes not called")
	}
	if from == to {
		return nil
	}
	return n.nextHop[from][to]
}

// PathDelay sums propagation delays on the shortest path between two nodes.
// It returns false when no path exists.
func (n *Network) PathDelay(from, to NodeID) (sim.Time, bool) {
	var total sim.Time
	cur := from
	for cur != to {
		l := n.NextHopTo(cur, to)
		if l == nil {
			return 0, false
		}
		total += l.Delay
		cur = l.dst.ID()
	}
	return total, true
}

// Path returns the node sequence of the shortest path, inclusive of both
// endpoints, or nil when unreachable.
func (n *Network) Path(from, to NodeID) []NodeID {
	path := []NodeID{from}
	cur := from
	for cur != to {
		l := n.NextHopTo(cur, to)
		if l == nil {
			return nil
		}
		cur = l.dst.ID()
		path = append(path, cur)
	}
	return path
}
