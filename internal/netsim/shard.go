package netsim

// This file binds a Network to sharded execution (internal/sim's
// ShardGroup). The partition is host-granular and deliberately narrow: only
// single-homed hosts whose access links have positive propagation delay can
// migrate off the main shard, because
//
//   - the access-link delay is the conservative lookahead of the cut, and a
//     zero-delay cut would force zero-width windows;
//   - everything else — routers, the multicast fabric, unicast routes, the
//     address map — is shared mutable state that must stay on one shard
//     (shard 0) to keep graft/prune and forwarding decisions instantaneous
//     and deterministic.
//
// A migrated host's two access links become "cut" links. The upstream link
// (host→router) moves entirely to the host's shard — its queue and
// serialization belong to the sender side — and posts deliveries into shard
// 0; the downstream link stays on shard 0 and posts deliveries into the
// host's shard. Packets crossing a cut are copied between the shard-local
// pools at window barriers (all shards quiescent), so each pool's balance
// closes independently and no packet object is ever touched by two shards.
//
// Determinism: cross-shard deliveries carry the sender-side reservation
// instant and are merged in (time, akey, edge, post) order (see
// sim.ShardGroup). Cut edges are created in host-migration order, which
// experiments arrange to be receiver attachment order — the same order
// routers fan out local deliveries and receivers answer them — so ties
// across links resolve exactly as the serial scheduler's arming order
// would, and results are byte-identical to a one-shard run.

import (
	"fmt"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// cutPort is the shard-boundary attachment of a cut link: the sim-level
// cross edge plus the two packet hand-off FIFOs.
type cutPort struct {
	edge    *sim.CrossEdge
	dstPool *packet.Pool
	xfer    ring[*packet.Packet] // originals parked by the source side
	handoff ring[*packet.Packet] // destination-pool copies awaiting delivery
	deliver func()               // the posted delivery closure (one per link)
}

// shardState is the network's sharding mode.
type shardState struct {
	group *sim.ShardGroup
	pools []*packet.Pool
	uids  []uint64 // per-shard UID counters (disjoint namespaces)
}

// EnableSharding binds the network to a shard group whose shard 0 is the
// network's own scheduler. Call once, after construction and before any
// host migrates. The network's main pool becomes shard 0's pool; fresh
// pools back the other shards.
func (n *Network) EnableSharding(group *sim.ShardGroup) {
	if group.Shard(0) != n.sched {
		panic("netsim: shard group's shard 0 must be the network scheduler")
	}
	if n.shard != nil {
		panic("netsim: sharding already enabled")
	}
	pools := make([]*packet.Pool, group.Shards())
	pools[0] = n.pool
	for i := 1; i < len(pools); i++ {
		pools[i] = &packet.Pool{}
	}
	n.shard = &shardState{group: group, pools: pools, uids: make([]uint64, group.Shards())}
}

// Sharded reports whether the network runs in sharded mode.
func (n *Network) Sharded() bool { return n.shard != nil }

// ShardPools returns the per-shard packet pools (index 0 is the main
// pool), or nil when sharding is off — the audit layer rolls pool balance
// up across them.
func (n *Network) ShardPools() []*packet.Pool {
	if n.shard == nil {
		return nil
	}
	return n.shard.pools
}

// shardUID mints a trace UID from shard s's namespace: the shard index in
// the top byte keeps per-shard counters collision-free without sharing a
// counter across goroutines. UIDs never influence protocol behaviour or
// results — they exist for tracing only — so the sharded namespace is
// allowed to differ from serial numbering.
func (n *Network) shardUID(s int) uint64 {
	n.shard.uids[s]++
	return uint64(s)<<56 | n.shard.uids[s]
}

// CanMigrate reports whether h could move to a non-zero shard: sharding
// enabled, the host single-homed behind an access link pair with positive
// delay in both directions.
func (n *Network) CanMigrate(h *Host) bool {
	if n.shard == nil || h.sched != nil {
		return false
	}
	up := n.accessLink(h.id)
	if up == nil || up.Delay <= 0 {
		return false
	}
	down := n.linkTo[up.dst.ID()][h.id]
	return down != nil && down.Delay > 0
}

// MigrateHost moves h onto shard s: its agents will schedule on shard s's
// scheduler and mint from shard s's pool, its upstream access link runs on
// shard s, and both access links become cut links. Must be called before
// any agent is constructed on the host (agents capture the scheduler) and
// before traffic starts. Callers migrate hosts in attachment order so cut
// edge IDs replay the serial tie-break order.
func (n *Network) MigrateHost(h *Host, s int) {
	if n.shard == nil {
		panic("netsim: MigrateHost without EnableSharding")
	}
	if s <= 0 || s >= len(n.shard.pools) {
		panic(fmt.Sprintf("netsim: MigrateHost to invalid shard %d", s))
	}
	if !n.CanMigrate(h) {
		panic(fmt.Sprintf("netsim: host %s cannot migrate (zero-delay or missing access links)", h.name))
	}
	up := n.accessLink(h.id)
	down := n.linkTo[up.dst.ID()][h.id]

	h.sched = n.shard.group.Shard(s)
	h.pool = n.shard.pools[s]
	h.shard = s

	// The upstream link's queue and serialization belong to the host side:
	// the whole link moves to shard s and re-arms its timers there. Its cut
	// posts deliveries to shard 0. The downstream link keeps the router-side
	// scheduler and posts deliveries to shard s. Edge order (up before down)
	// is fixed; what matters for determinism is that successive migrations
	// allocate monotonically increasing edge IDs.
	up.sched = h.sched
	up.init()
	attachCut(up, n.shard.group.AddEdge(s, 0, up.Delay), n.shard.pools[0], n.shard.group)
	attachCut(down, n.shard.group.AddEdge(0, s, down.Delay), n.shard.pools[s], n.shard.group)
}

// attachCut wires a link to its cross edge and registers the barrier-time
// packet hand-off.
func attachCut(l *Link, edge *sim.CrossEdge, dstPool *packet.Pool, g *sim.ShardGroup) {
	c := &cutPort{edge: edge, dstPool: dstPool}
	c.deliver = func() {
		// Runs on the destination shard at the arrival time. The barrier
		// hand-off ran before this envelope could fire, so the copy is
		// always at the head of the ring; per-link FIFO order is preserved
		// because cut links are never re-parameterized (guardCut).
		pkt := c.handoff.pop()
		l.Delivered++
		if l.OnDeliver != nil {
			l.OnDeliver(pkt)
		}
		l.dst.Receive(pkt, l)
	}
	l.cut = c
	g.AtBarrier(func() { drainCut(l, c) })
}

// drainCut runs at window barriers (every shard quiescent): each parked
// original is copied into the destination shard's pool and released back
// to its own, in post order.
func drainCut(l *Link, c *cutPort) {
	for c.xfer.len() > 0 {
		orig := c.xfer.pop()
		c.handoff.push(c.dstPool.AdoptCopy(orig))
		orig.Release()
	}
}

// guardCut panics when a live mutator touches a cut link: sharded
// experiments exclude link dynamics (the serial fallback handles them), and
// re-parameterizing a cut mid-run would break both the lookahead contract
// (delay) and the FIFO hand-off (down/up flushing).
func (l *Link) guardCut(op string) {
	if l.cut != nil {
		panic(fmt.Sprintf("netsim: %s on cut link %s (sharded runs exclude link dynamics)", op, l))
	}
}
