// Package tcp implements TCP Reno over the simulator: slow start,
// congestion avoidance, 3-dupack fast retransmit, fast recovery, and an
// RFC 6298-style retransmission timer. It plays the role NS-2's
// Agent/TCP/Reno + Agent/TCPSink pair plays in the paper's experiments:
// well-behaved elastic cross traffic competing with the multicast sessions.
//
// Sequence and acknowledgment numbers are segment-granular (as in NS-2's
// packet-based TCP): Seq is the segment index, Ack the next expected
// segment. The sender is a greedy (FTP-like) source with unbounded data.
package tcp

import (
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Config tunes a Reno sender.
type Config struct {
	// SegmentSize is the wire size of a data segment in bytes (the paper
	// uses 576-byte packets for all data traffic).
	SegmentSize int
	// AckSize is the wire size of a pure acknowledgment.
	AckSize int
	// MaxWindow caps the congestion window in segments (receiver window).
	MaxWindow float64
	// InitialRTO is the retransmission timeout before any RTT sample.
	InitialRTO sim.Time
	// MinRTO floors the retransmission timeout.
	MinRTO sim.Time
}

// DefaultConfig matches the paper's data-packet size.
func DefaultConfig() Config {
	return Config{
		SegmentSize: 576,
		AckSize:     40,
		MaxWindow:   128,
		InitialRTO:  1 * sim.Second,
		MinRTO:      200 * sim.Millisecond,
	}
}

// Sender is one Reno connection endpoint.
type Sender struct {
	host *netsim.Host
	dst  packet.Addr
	flow uint32
	cfg  Config

	sndNxt         uint32 // next segment to (re)transmit; rewound to sndUna on RTO
	sndUna         uint32 // oldest unacknowledged segment
	maxSent        uint32 // highest segment ever transmitted + 1
	cwnd           float64
	ssthresh       float64
	dupAcks        int
	inFastRecovery bool

	// RTT estimation (RFC 6298).
	srtt, rttvar sim.Time
	rto          sim.Time
	timedSeq     uint32
	timedAt      sim.Time
	timing       bool
	backoff      int

	rtoTimer *sim.Timer
	started  bool
	stopped  bool

	// Stats.
	SegmentsSent    uint64
	Retransmissions uint64
	Timeouts        uint64
	FastRecoveries  uint64
}

// NewSender creates a Reno sender on host targeting the receiver at dst.
// Each (flow, host-pair) is an independent connection.
func NewSender(host *netsim.Host, dst packet.Addr, flow uint32, cfg Config) *Sender {
	s := &Sender{
		host: host, dst: dst, flow: flow, cfg: cfg,
		cwnd: 1, ssthresh: cfg.MaxWindow / 2, rto: cfg.InitialRTO,
	}
	s.rtoTimer = host.Scheduler().NewTimer(s.onTimeout)
	host.Handle(packet.ProtoTCP, s.onAck)
	return s
}

// Start begins transmitting at the scheduler's current time.
func (s *Sender) Start() {
	if s.started || s.stopped {
		return
	}
	s.started = true
	s.trySend()
}

// Stop halts the connection: no further segments are transmitted (acks for
// segments already in flight still update state) and the retransmission
// timer is cancelled, so a stopped sender lets the network drain instead of
// retransmitting forever. Permanent — a stopped connection cannot restart.
func (s *Sender) Stop() {
	s.stopped = true
	s.rtoTimer.Stop()
}

// Cwnd reports the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// flight is the number of outstanding segments the sender currently
// accounts against its window. After a timeout the send pointer rewinds to
// the hole (go-back-N), so flight restarts from zero.
func (s *Sender) flight() uint32 { return s.sndNxt - s.sndUna }

func (s *Sender) window() float64 {
	if s.cwnd > s.cfg.MaxWindow {
		return s.cfg.MaxWindow
	}
	return s.cwnd
}

func (s *Sender) sched() *sim.Scheduler { return s.host.Scheduler() }

// trySend transmits segments from the send pointer while the window allows;
// after a rewind these are retransmissions of the lost middle of the window.
func (s *Sender) trySend() {
	if s.stopped {
		return
	}
	for float64(s.flight()) < s.window() {
		s.transmit(s.sndNxt)
		s.sndNxt++
	}
}

func (s *Sender) transmit(seq uint32) {
	if s.stopped {
		return
	}
	hdr := s.host.Network().Pool().TCPHeader()
	hdr.Flow, hdr.Seq, hdr.Len = s.flow, seq, uint32(s.cfg.SegmentSize)
	pkt := s.host.Network().NewPacket(s.host.Addr(), s.dst, s.cfg.SegmentSize, hdr)
	s.host.Send(pkt)
	s.SegmentsSent++
	if seq < s.maxSent {
		s.Retransmissions++
		// Karn's algorithm: never time retransmitted segments.
		if s.timing && s.timedSeq == seq {
			s.timing = false
		}
	} else {
		s.maxSent = seq + 1
		if !s.timing {
			s.timing = true
			s.timedSeq = seq
			s.timedAt = s.sched().Now()
		}
	}
	if !s.rtoTimer.Active() {
		s.armRTO()
	}
}

// armRTO (re)schedules the retransmission timeout in place: one timer and
// one recycled event serve the connection's whole lifetime.
func (s *Sender) armRTO() {
	if s.stopped {
		return
	}
	d := s.rto << uint(s.backoff)
	if max := 60 * sim.Second; d > max {
		d = max
	}
	s.rtoTimer.Reset(d)
}

func (s *Sender) onTimeout() {
	if s.flight() == 0 || s.stopped {
		return
	}
	s.Timeouts++
	// Multiplicative decrease, then go-back-N: rewind the send pointer to
	// the hole and slow-start from there.
	fl := float64(s.flight())
	s.ssthresh = maxf(fl/2, 2)
	s.cwnd = 1
	s.dupAcks = 0
	s.inFastRecovery = false
	s.backoff++
	s.timing = false
	s.sndNxt = s.sndUna
	s.trySend()
	s.armRTO()
}

func (s *Sender) onAck(pkt *packet.Packet) {
	hdr, ok := pkt.Header.(*packet.TCPHeader)
	if !ok || !hdr.IsAck || hdr.Flow != s.flow {
		return
	}
	ack := hdr.Ack
	switch {
	case ack > s.sndUna:
		s.newAck(ack)
	case ack == s.sndUna && s.flight() > 0:
		s.dupAck()
	}
	s.trySend()
}

func (s *Sender) newAck(ack uint32) {
	acked := float64(ack - s.sndUna)
	s.sndUna = ack
	if s.sndNxt < ack {
		// The receiver's buffer covered rewound segments; skip past them.
		s.sndNxt = ack
	}
	s.backoff = 0

	// RTT sample (only for never-retransmitted, timed segments).
	if s.timing && ack > s.timedSeq {
		s.sample(s.sched().Now() - s.timedAt)
		s.timing = false
	}

	if s.inFastRecovery {
		// Reno deflates on the first new ACK covering the retransmission.
		s.inFastRecovery = false
		s.cwnd = s.ssthresh
		s.dupAcks = 0
	} else {
		s.dupAcks = 0
		if s.cwnd < s.ssthresh {
			s.cwnd += acked // slow start
		} else {
			s.cwnd += acked / s.cwnd // congestion avoidance
		}
		if s.cwnd > s.cfg.MaxWindow {
			s.cwnd = s.cfg.MaxWindow
		}
	}

	if s.flight() == 0 {
		s.rtoTimer.Stop()
	} else {
		s.armRTO()
	}
}

func (s *Sender) dupAck() {
	s.dupAcks++
	switch {
	case s.inFastRecovery:
		s.cwnd++ // window inflation per extra dupack
	case s.dupAcks == 3:
		s.FastRecoveries++
		s.ssthresh = maxf(float64(s.flight())/2, 2)
		s.transmit(s.sndUna) // fast retransmit
		s.cwnd = s.ssthresh + 3
		s.inFastRecovery = true
		s.armRTO()
	}
}

// sample folds an RTT measurement into SRTT/RTTVAR (RFC 6298 §2).
func (s *Sender) sample(rtt sim.Time) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Receiver is the TCP sink: it acknowledges every segment cumulatively and
// counts goodput.
type Receiver struct {
	host *netsim.Host
	flow uint32
	cfg  Config

	nextExpected uint32
	outOfOrder   map[uint32]bool

	// GoodputBytes counts in-order payload bytes delivered.
	GoodputBytes uint64
	// OnDeliver, when set, observes every in-order segment delivery.
	OnDeliver func(bytes int)
}

// NewReceiver creates a sink on host for the given flow.
func NewReceiver(host *netsim.Host, flow uint32, cfg Config) *Receiver {
	r := &Receiver{host: host, flow: flow, cfg: cfg, outOfOrder: make(map[uint32]bool)}
	host.Handle(packet.ProtoTCP, r.onData)
	return r
}

func (r *Receiver) onData(pkt *packet.Packet) {
	hdr, ok := pkt.Header.(*packet.TCPHeader)
	if !ok || hdr.IsAck || hdr.Flow != r.flow {
		return
	}
	if hdr.Seq == r.nextExpected {
		r.advance(int(hdr.Len))
		for r.outOfOrder[r.nextExpected] {
			delete(r.outOfOrder, r.nextExpected)
			r.advance(r.cfg.SegmentSize)
		}
	} else if hdr.Seq > r.nextExpected {
		r.outOfOrder[hdr.Seq] = true
	}
	ack := r.host.Network().Pool().TCPHeader()
	ack.Flow, ack.Ack, ack.IsAck = r.flow, r.nextExpected, true
	r.host.Send(r.host.Network().NewPacket(r.host.Addr(), pkt.Src, r.cfg.AckSize, ack))
}

func (r *Receiver) advance(bytes int) {
	r.nextExpected++
	r.GoodputBytes += uint64(bytes)
	if r.OnDeliver != nil {
		r.OnDeliver(bytes)
	}
}
