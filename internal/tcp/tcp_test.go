package tcp

import (
	"testing"

	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// fwd is a minimal unicast forwarder.
type fwd struct {
	id   netsim.NodeID
	name string
	net  *netsim.Network
}

func (f *fwd) ID() netsim.NodeID { return f.id }
func (f *fwd) Name() string      { return f.name }
func (f *fwd) Receive(pkt *packet.Packet, from *netsim.Link) {
	if l := f.net.NextHopLink(f.id, pkt.Dst); l != nil {
		l.Send(pkt)
	}
}

// dumbbell builds src hosts and dst hosts joined through two routers with a
// single bottleneck in the middle.
func dumbbell(n int, bottleneckBps int64, qBytes int) (*sim.Scheduler, []*netsim.Host, []*netsim.Host) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(3))
	r1 := &fwd{name: "r1", net: net}
	net.Add(func(id netsim.NodeID) netsim.Node { r1.id = id; return r1 })
	r2 := &fwd{name: "r2", net: net}
	net.Add(func(id netsim.NodeID) netsim.Node { r2.id = id; return r2 })
	net.Connect(r1, r2, bottleneckBps, 20*sim.Millisecond, qBytes)

	var srcs, dsts []*netsim.Host
	for i := 0; i < n; i++ {
		s := net.AddHost("s")
		d := net.AddHost("d")
		net.Connect(s, r1, 10_000_000, 10*sim.Millisecond, 1<<20)
		net.Connect(r2, d, 10_000_000, 10*sim.Millisecond, 1<<20)
		srcs = append(srcs, s)
		dsts = append(dsts, d)
	}
	net.ComputeRoutes()
	return sched, srcs, dsts
}

func TestSingleFlowFillsBottleneck(t *testing.T) {
	sched, srcs, dsts := dumbbell(1, 1_000_000, 20_000)
	cfg := DefaultConfig()
	recv := NewReceiver(dsts[0], 1, cfg)
	send := NewSender(srcs[0], dsts[0].Addr(), 1, cfg)
	sched.At(0, func() { send.Start() })
	sched.RunUntil(30 * sim.Second)

	gotBps := float64(recv.GoodputBytes) * 8 / 30
	if gotBps < 0.80*1_000_000 {
		t.Fatalf("goodput %.0f bps, want >= 80%% of the 1 Mbps bottleneck", gotBps)
	}
	if gotBps > 1_000_000 {
		t.Fatalf("goodput %.0f bps exceeds link capacity", gotBps)
	}
}

func TestSlowStartDoublesWindow(t *testing.T) {
	sched, srcs, dsts := dumbbell(1, 10_000_000, 1<<20)
	cfg := DefaultConfig()
	NewReceiver(dsts[0], 1, cfg)
	send := NewSender(srcs[0], dsts[0].Addr(), 1, cfg)
	sched.At(0, func() { send.Start() })
	// RTT is 80 ms; after the first ack (~80 ms) cwnd=2, then 4, 8...
	sched.RunUntil(90 * sim.Millisecond)
	if send.Cwnd() < 2 {
		t.Fatalf("cwnd = %.1f after one RTT, want >= 2", send.Cwnd())
	}
	sched.RunUntil(180 * sim.Millisecond)
	if send.Cwnd() < 4 {
		t.Fatalf("cwnd = %.1f after two RTTs, want >= 4", send.Cwnd())
	}
}

func TestLossTriggersFastRecovery(t *testing.T) {
	// Small bottleneck queue forces drops once the window outgrows the
	// pipe; Reno must recover via fast retransmit, not stall.
	sched, srcs, dsts := dumbbell(1, 500_000, 5_000)
	cfg := DefaultConfig()
	recv := NewReceiver(dsts[0], 1, cfg)
	send := NewSender(srcs[0], dsts[0].Addr(), 1, cfg)
	sched.At(0, func() { send.Start() })
	sched.RunUntil(30 * sim.Second)

	if send.FastRecoveries == 0 {
		t.Fatal("no fast recovery despite forced drops")
	}
	gotBps := float64(recv.GoodputBytes) * 8 / 30
	if gotBps < 0.6*500_000 {
		t.Fatalf("goodput %.0f bps after losses, want >= 60%% of bottleneck", gotBps)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	sched, srcs, dsts := dumbbell(2, 1_000_000, 20_000)
	cfg := DefaultConfig()
	r1 := NewReceiver(dsts[0], 1, cfg)
	r2 := NewReceiver(dsts[1], 2, cfg)
	s1 := NewSender(srcs[0], dsts[0].Addr(), 1, cfg)
	s2 := NewSender(srcs[1], dsts[1].Addr(), 2, cfg)
	sched.At(0, func() { s1.Start() })
	sched.At(100*sim.Millisecond, func() { s2.Start() })
	sched.RunUntil(60 * sim.Second)

	g1 := float64(r1.GoodputBytes)
	g2 := float64(r2.GoodputBytes)
	total := (g1 + g2) * 8 / 60
	if total < 0.8*1_000_000 {
		t.Fatalf("aggregate %.0f bps, want >= 80%% of bottleneck", total)
	}
	ratio := g1 / g2
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("unfair share: %.0f vs %.0f bytes (ratio %.2f)", g1, g2, ratio)
	}
}

func TestRetransmissionTimeoutRecovers(t *testing.T) {
	// A queue so small that bursts lose several segments including
	// retransmissions → RTO path must eventually fire and recover.
	sched, srcs, dsts := dumbbell(1, 200_000, 1_200)
	cfg := DefaultConfig()
	recv := NewReceiver(dsts[0], 1, cfg)
	send := NewSender(srcs[0], dsts[0].Addr(), 1, cfg)
	sched.At(0, func() { send.Start() })
	sched.RunUntil(60 * sim.Second)

	if recv.GoodputBytes == 0 {
		t.Fatal("connection starved")
	}
	gotBps := float64(recv.GoodputBytes) * 8 / 60
	if gotBps < 0.4*200_000 {
		t.Fatalf("goodput %.0f bps, want >= 40%% of a lossy bottleneck", gotBps)
	}
}

func TestReceiverReordersOutOfOrderSegments(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(4))
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, b, 10_000_000, sim.Millisecond, 1<<20)
	net.ComputeRoutes()

	cfg := DefaultConfig()
	recv := NewReceiver(b, 9, cfg)
	// Hand-deliver segments 1,2,0: goodput must only advance at 0 and then
	// absorb the buffered ones.
	mk := func(seq uint32) *packet.Packet {
		return packet.New(a.Addr(), b.Addr(), cfg.SegmentSize,
			&packet.TCPHeader{Flow: 9, Seq: seq, Len: uint32(cfg.SegmentSize)})
	}
	sched.At(0, func() { a.Send(mk(1)); a.Send(mk(2)) })
	sched.At(10*sim.Millisecond, func() {
		if recv.GoodputBytes != 0 {
			t.Error("goodput advanced before the hole filled")
		}
		a.Send(mk(0))
	})
	sched.Run()
	want := uint64(3 * cfg.SegmentSize)
	if recv.GoodputBytes != want {
		t.Fatalf("goodput %d, want %d", recv.GoodputBytes, want)
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	sched, srcs, dsts := dumbbell(1, 10_000_000, 1<<20)
	cfg := DefaultConfig()
	NewReceiver(dsts[0], 1, cfg)
	send := NewSender(srcs[0], dsts[0].Addr(), 1, cfg)
	sched.At(0, func() { send.Start() })
	sched.RunUntil(5 * sim.Second)
	// Path RTT is 80 ms plus small serialization; SRTT must be close.
	if send.srtt < 75*sim.Millisecond || send.srtt > 120*sim.Millisecond {
		t.Fatalf("srtt = %v, want ~80ms", send.srtt)
	}
	if send.rto < cfg.MinRTO {
		t.Fatalf("rto %v below floor", send.rto)
	}
}

func TestSenderIgnoresForeignFlows(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(5))
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, b, 10_000_000, sim.Millisecond, 1<<20)
	net.ComputeRoutes()
	cfg := DefaultConfig()
	send := NewSender(a, b.Addr(), 1, cfg)
	sched.At(0, func() { send.Start() })
	// Inject a bogus ACK for another flow; it must not advance the window.
	sched.At(5*sim.Millisecond, func() {
		b.Send(packet.New(b.Addr(), a.Addr(), cfg.AckSize,
			&packet.TCPHeader{Flow: 99, Ack: 1000, IsAck: true}))
	})
	sched.RunUntil(20 * sim.Millisecond)
	if send.sndUna != 0 {
		t.Fatal("foreign-flow ack advanced sndUna")
	}
}
