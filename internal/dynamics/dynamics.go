// Package dynamics is the time-dynamics layer of the simulator: a
// deterministic Timeline of scripted mid-run events plus generators —
// Poisson membership churn and periodic link flapping — that drive
// reusable sim timers. The facade's typed events (receiver join/leave,
// attacker onset/stop, link re-parameterization) all resolve down to the
// primitives in this package, so there is exactly one mechanism for
// anything that happens after an experiment starts.
//
// Determinism rules (see DESIGN.md "Dynamics"):
//   - Timeline events are installed in declaration order; the scheduler's
//     insertion-stable tie-break then fires same-timestamp events in the
//     order they were declared.
//   - Generators draw all randomness from an RNG handed to them at
//     construction (forked from the experiment RNG at a fixed point), and
//     draw in a fixed per-fire order — target first, next gap second — so
//     a seeded run replays byte-identically whatever else the experiment
//     contains.
package dynamics

import (
	"fmt"

	"deltasigma/internal/sim"
)

// item is one scripted timeline entry.
type item struct {
	at sim.Time
	do func()
}

// Timeline accumulates scripted events before a run and installs them on
// the scheduler when the experiment starts. Events at the same virtual
// time fire in declaration order (the scheduler breaks timestamp ties by
// insertion order). A Timeline is single-use: Install panics when called
// twice, since re-installing would double-fire every event.
type Timeline struct {
	items     []item
	installed bool
}

// Add schedules do at virtual time at (clamped to zero when negative).
func (t *Timeline) Add(at sim.Time, do func()) {
	if at < 0 {
		at = 0
	}
	t.items = append(t.items, item{at: at, do: do})
}

// Len reports how many events the timeline carries.
func (t *Timeline) Len() int { return len(t.items) }

// Install schedules every accumulated event on sched, in declaration
// order, and marks the timeline installed.
func (t *Timeline) Install(sched *sim.Scheduler) {
	if t.installed {
		panic("dynamics: Timeline installed twice")
	}
	t.installed = true
	for _, it := range t.items {
		at := it.at
		if at < sched.Now() {
			at = sched.Now()
		}
		sched.Schedule(at, it.do)
	}
}

// Churn is a Poisson membership-churn generator: toggle events arrive as a
// Poisson process at Rate events per second across a set of n targets, and
// each event toggles one uniformly chosen target. The facade points toggle
// at a receiver's join/leave pair; the generator itself knows nothing
// about receivers.
type Churn struct {
	sched  *sim.Scheduler
	rng    *sim.RNG
	rate   float64 // expected toggles per second across the whole set
	until  sim.Time
	n      int
	toggle func(i int)
	timer  *sim.Timer

	// Events counts toggles fired so far.
	Events uint64
}

// NewChurn builds a churn generator over n targets firing toggle at Rate
// events per second until the until horizon. It panics on a non-positive
// rate or target count — a silent zero-event generator would make a sweep
// point lie about its churn axis.
func NewChurn(sched *sim.Scheduler, rng *sim.RNG, rate float64, until sim.Time, n int, toggle func(i int)) *Churn {
	if rate <= 0 {
		panic(fmt.Sprintf("dynamics: churn rate %v must be positive", rate))
	}
	if n <= 0 {
		panic(fmt.Sprintf("dynamics: churn over %d targets", n))
	}
	c := &Churn{sched: sched, rng: rng, rate: rate, until: until, n: n, toggle: toggle}
	c.timer = sched.NewTimer(c.fire)
	return c
}

// Stop halts the generator: the pending toggle (if any) is cancelled and no
// further events fire. StopTraffic uses this so a drain is not re-seeded by
// churn whose window outlives the stop.
func (c *Churn) Stop() { c.timer.Stop() }

// gap draws the next exponential interarrival.
func (c *Churn) gap() sim.Time {
	g := sim.Seconds(c.rng.ExpFloat64() / c.rate)
	if g < 1 {
		g = 1 // keep virtual time strictly advancing
	}
	return g
}

// Start arms the first event at from plus one exponential gap. Events past
// the until horizon are not fired.
func (c *Churn) Start(from sim.Time) {
	if from < c.sched.Now() {
		from = c.sched.Now()
	}
	at := from + c.gap()
	if at > c.until {
		return
	}
	c.timer.ResetAt(at)
}

// fire toggles one uniformly drawn target and re-arms. Draw order is
// fixed — target first, next gap second — for seeded reproducibility.
func (c *Churn) fire() {
	i := c.rng.IntN(c.n)
	c.Events++
	c.toggle(i)
	at := c.sched.Now() + c.gap()
	if at > c.until {
		return
	}
	c.timer.ResetAt(at)
}

// Flapper drives periodic down/up cycles on anything with a two-state
// lifecycle — the facade points it at a link's Down/Up pair. Each period
// the target goes down at the period boundary and comes back up DownFor
// later. The up transition always fires, even past the horizon, so a
// flapped link is never left dangling down at the end of a run.
type Flapper struct {
	sched   *sim.Scheduler
	period  sim.Time
	downFor sim.Time
	until   sim.Time
	down    func()
	up      func()
	timer   *sim.Timer
	isDown  bool

	// Flaps counts completed down transitions.
	Flaps uint64
}

// NewFlapper builds a flapper cycling with the given period, staying down
// for downFor each cycle, until the until horizon. It panics unless
// 0 < downFor < period.
func NewFlapper(sched *sim.Scheduler, period, downFor, until sim.Time, down, up func()) *Flapper {
	if period <= 0 || downFor <= 0 || downFor >= period {
		panic(fmt.Sprintf("dynamics: flap downFor %v must be inside period %v", downFor, period))
	}
	f := &Flapper{sched: sched, period: period, downFor: downFor, until: until, down: down, up: up}
	f.timer = sched.NewTimer(f.fire)
	return f
}

// Start arms the first down transition one period after from.
func (f *Flapper) Start(from sim.Time) {
	if from < f.sched.Now() {
		from = f.sched.Now()
	}
	at := from + f.period
	if at > f.until {
		return
	}
	f.timer.ResetAt(at)
}

// FlapInstants computes, without running anything, the exact down and up
// transition times a Flapper with the same parameters would fire when
// started at from. The adaptive-attacker scheduler uses it to time
// inflation bursts to flap recoveries; keeping it next to Flapper.fire
// makes the two trivially comparable, and a unit test pins that they
// agree. Mirrors Flapper semantics exactly: the first down lands one full
// period after from, downs past the until horizon are dropped, and every
// fired down's matching up is included even when it falls past until.
func FlapInstants(period, downFor, from, until sim.Time) (downs, ups []sim.Time) {
	if downFor <= 0 || period <= 0 || downFor >= period {
		return nil, nil
	}
	for t := from + period; t <= until; t += period {
		downs = append(downs, t)
		ups = append(ups, t+downFor)
	}
	return downs, ups
}

// fire alternates down and up transitions on the single reusable timer.
func (f *Flapper) fire() {
	if !f.isDown {
		f.isDown = true
		f.Flaps++
		f.down()
		// The matching up is unconditional: never strand the target down.
		f.timer.Reset(f.downFor)
		return
	}
	f.isDown = false
	f.up()
	at := f.sched.Now() + f.period - f.downFor
	if at > f.until {
		return
	}
	f.timer.ResetAt(at)
}
