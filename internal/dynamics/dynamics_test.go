package dynamics

import (
	"testing"

	"deltasigma/internal/sim"
)

func TestTimelineFiresInDeclarationOrder(t *testing.T) {
	sched := sim.NewScheduler()
	var tl Timeline
	var got []int
	// Two events at the same timestamp plus one earlier one declared last:
	// firing order must be timestamp-major, declaration-minor.
	tl.Add(5, func() { got = append(got, 1) })
	tl.Add(5, func() { got = append(got, 2) })
	tl.Add(3, func() { got = append(got, 3) })
	tl.Add(-1, func() { got = append(got, 4) }) // negative clamps to zero
	if tl.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tl.Len())
	}
	tl.Install(sched)
	sched.Run()
	want := []int{4, 3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestTimelineDoubleInstallPanics(t *testing.T) {
	sched := sim.NewScheduler()
	var tl Timeline
	tl.Add(1, func() {})
	tl.Install(sched)
	defer func() {
		if recover() == nil {
			t.Fatal("second Install did not panic")
		}
	}()
	tl.Install(sched)
}

func TestChurnIsSeededDeterministic(t *testing.T) {
	run := func(seed uint64) ([]sim.Time, []int) {
		sched := sim.NewScheduler()
		var times []sim.Time
		var targets []int
		c := NewChurn(sched, sim.NewRNG(seed), 5, 10*sim.Second, 4, func(i int) {
			times = append(times, sched.Now())
			targets = append(targets, i)
		})
		c.Start(0)
		sched.Run()
		if c.Events != uint64(len(times)) {
			t.Fatalf("Events = %d, fired %d", c.Events, len(times))
		}
		return times, targets
	}
	t1, g1 := run(42)
	t2, g2 := run(42)
	if len(t1) == 0 {
		t.Fatal("churn fired no events over 10 s at rate 5/s")
	}
	for i := range t1 {
		if t1[i] != t2[i] || g1[i] != g2[i] {
			t.Fatalf("same seed diverged at event %d: (%v,%d) vs (%v,%d)", i, t1[i], g1[i], t2[i], g2[i])
		}
	}
	t3, _ := run(43)
	same := len(t3) == len(t1)
	if same {
		for i := range t1 {
			if t1[i] != t3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical event trains")
	}
	// Every event respects the horizon.
	for _, at := range t1 {
		if at > 10*sim.Second {
			t.Fatalf("event at %v past the 10s horizon", at)
		}
	}
}

func TestFlapperAlwaysComesBackUp(t *testing.T) {
	sched := sim.NewScheduler()
	downs, ups := 0, 0
	f := NewFlapper(sched, 2*sim.Second, 500*sim.Millisecond, 7*sim.Second,
		func() { downs++ }, func() { ups++ })
	f.Start(0)
	sched.Run()
	if downs == 0 {
		t.Fatal("flapper never went down")
	}
	if downs != ups {
		t.Fatalf("downs %d != ups %d: target stranded down", downs, ups)
	}
	if f.Flaps != uint64(downs) {
		t.Fatalf("Flaps = %d, want %d", f.Flaps, downs)
	}
	// Down at 2s, up at 2.5s, down at 4s, up at 4.5s, down at 6s, up at
	// 6.5s; the 8s down is past the horizon.
	if downs != 3 {
		t.Fatalf("downs = %d, want 3", downs)
	}
}

func TestFlapperValidation(t *testing.T) {
	sched := sim.NewScheduler()
	for _, bad := range []struct{ period, downFor sim.Time }{
		{0, 1}, {2, 0}, {2, 2}, {2, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFlapper(period=%v, downFor=%v) did not panic", bad.period, bad.downFor)
				}
			}()
			NewFlapper(sched, bad.period, bad.downFor, 10, func() {}, func() {})
		}()
	}
}

// TestFlapInstantsMatchFlapper pins the static schedule computation to
// the live generator: FlapInstants must predict exactly the down and up
// transitions a running Flapper fires, since the adaptive attacker times
// its bursts off the prediction while the links obey the generator.
func TestFlapInstantsMatchFlapper(t *testing.T) {
	const (
		period  = 3 * sim.Second
		downFor = sim.Second / 2
		from    = 2 * sim.Second
		until   = 20 * sim.Second
	)
	sched := sim.NewScheduler()
	var downs, ups []sim.Time
	f := NewFlapper(sched, period, downFor, until,
		func() { downs = append(downs, sched.Now()) },
		func() { ups = append(ups, sched.Now()) })
	f.Start(from)
	sched.Run()

	wantDowns, wantUps := FlapInstants(period, downFor, from, until)
	if len(wantDowns) == 0 {
		t.Fatal("test window produced no flaps")
	}
	if len(downs) != len(wantDowns) || len(ups) != len(wantUps) {
		t.Fatalf("fired %d downs / %d ups, predicted %d / %d", len(downs), len(ups), len(wantDowns), len(wantUps))
	}
	for i := range wantDowns {
		if downs[i] != wantDowns[i] || ups[i] != wantUps[i] {
			t.Fatalf("cycle %d: fired down %v up %v, predicted %v %v", i, downs[i], ups[i], wantDowns[i], wantUps[i])
		}
	}
	if f.Flaps != uint64(len(wantDowns)) {
		t.Fatalf("Flaps = %d, want %d", f.Flaps, len(wantDowns))
	}

	// Degenerate parameters predict nothing rather than panicking.
	if d, u := FlapInstants(0, downFor, from, until); d != nil || u != nil {
		t.Fatal("zero period should predict no transitions")
	}
	if d, u := FlapInstants(period, period, from, until); d != nil || u != nil {
		t.Fatal("downFor >= period should predict no transitions")
	}
}
