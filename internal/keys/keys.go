// Package keys implements the dynamic group-key algebra that every DELTA
// instantiation is built from (paper §3.1, Figure 3).
//
// A Key is a b-bit value (b = 16 in the paper's evaluation, §5.4). The
// sender composes keys from per-packet nonces with XOR: a receiver that
// holds every component of a key — and only such a receiver — can
// reconstruct it. The XOR composition models the paper's requirement that
// the combining functions F and H be one-way: with any component missing the
// key is information-theoretically undetermined, because the missing nonce
// is uniform and independent.
package keys

import "fmt"

// Key is a dynamic group key or one of its nonce components. Keys are b-bit
// values stored in a uint64; the active width is set by the Source that
// minted them.
type Key uint64

// String renders the key in fixed-width hex.
func (k Key) String() string { return fmt.Sprintf("%#016x", uint64(k)) }

// XOR combines any number of keys or components. XOR is the ⊕ of equations
// (3)–(6) in the paper.
func XOR(ks ...Key) Key {
	var acc Key
	for _, k := range ks {
		acc ^= k
	}
	return acc
}

// Source mints nonces of a fixed bit width from a deterministic stream.
// One Source belongs to one sender; edge routers and receivers never mint,
// they only combine.
type Source struct {
	bits uint
	mask Key
	next func() uint64
}

// DefaultBits is the key width used throughout the paper's evaluation.
const DefaultBits = 16

// NewSource returns a nonce source of the given width, drawing raw entropy
// from next (typically sim.RNG's Uint64). Widths outside [1,64] panic.
func NewSource(bits uint, next func() uint64) *Source {
	if bits < 1 || bits > 64 {
		panic(fmt.Sprintf("keys: width %d out of [1,64]", bits))
	}
	var mask Key
	if bits == 64 {
		mask = ^Key(0)
	} else {
		mask = Key(1)<<bits - 1
	}
	return &Source{bits: bits, mask: mask, next: next}
}

// Bits reports the key width in bits.
func (s *Source) Bits() uint { return s.bits }

// Mask returns the width mask; any externally supplied key must be reduced
// with it before comparison.
func (s *Source) Mask() Key { return s.mask }

// Nonce mints a fresh uniform key-sized nonce.
func (s *Source) Nonce() Key { return Key(s.next()) & s.mask }

// Accumulator incrementally XOR-folds components, the streaming form the
// sender uses while generating packets in real time (the C_g variable of
// Figure 4). The zero value is ready to use.
type Accumulator struct {
	acc Key
	n   int
}

// Add folds one component into the accumulator.
func (a *Accumulator) Add(k Key) {
	a.acc ^= k
	a.n++
}

// Sum returns the XOR of everything added so far.
func (a *Accumulator) Sum() Key { return a.acc }

// Count reports how many components were folded in.
func (a *Accumulator) Count() int { return a.n }

// Reset clears the accumulator for the next time slot.
func (a *Accumulator) Reset() { a.acc = 0; a.n = 0 }
