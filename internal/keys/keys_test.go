package keys

import (
	"testing"
	"testing/quick"

	"deltasigma/internal/sim"
)

func newTestSource(bits uint) *Source {
	rng := sim.NewRNG(99)
	return NewSource(bits, rng.Uint64)
}

func TestXOREmpty(t *testing.T) {
	if XOR() != 0 {
		t.Fatal("empty XOR should be 0")
	}
}

func TestXORSelfInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Key(a), Key(b)
		return XOR(x, y, y) == x && XOR(x, x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := Key(a), Key(b), Key(c)
		return XOR(x, y, z) == XOR(z, y, x) && XOR(XOR(x, y), z) == XOR(x, XOR(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourceWidth(t *testing.T) {
	for _, bits := range []uint{1, 8, 16, 32, 63, 64} {
		s := newTestSource(bits)
		for i := 0; i < 100; i++ {
			n := s.Nonce()
			if n&^s.Mask() != 0 {
				t.Fatalf("bits=%d: nonce %v exceeds mask %v", bits, n, s.Mask())
			}
		}
	}
}

func TestSourceBadWidthPanics(t *testing.T) {
	for _, bits := range []uint{0, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSource(%d) should panic", bits)
				}
			}()
			newTestSource(bits)
		}()
	}
}

func TestSource16BitMask(t *testing.T) {
	s := newTestSource(DefaultBits)
	if s.Mask() != 0xffff {
		t.Fatalf("16-bit mask = %v, want 0xffff", s.Mask())
	}
	if s.Bits() != 16 {
		t.Fatalf("Bits = %d", s.Bits())
	}
}

func TestSource64BitMask(t *testing.T) {
	s := newTestSource(64)
	if s.Mask() != ^Key(0) {
		t.Fatalf("64-bit mask = %v", s.Mask())
	}
}

func TestNonceSpread(t *testing.T) {
	// 16-bit nonces over 4096 draws should hit many distinct values; a
	// degenerate source would repeat.
	s := newTestSource(16)
	seen := map[Key]bool{}
	for i := 0; i < 4096; i++ {
		seen[s.Nonce()] = true
	}
	if len(seen) < 3500 {
		t.Fatalf("only %d distinct nonces in 4096 draws", len(seen))
	}
}

func TestAccumulatorMatchesXOR(t *testing.T) {
	f := func(vals []uint64) bool {
		var a Accumulator
		ks := make([]Key, len(vals))
		for i, v := range vals {
			ks[i] = Key(v)
			a.Add(ks[i])
		}
		return a.Sum() == XOR(ks...) && a.Count() == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorReset(t *testing.T) {
	var a Accumulator
	a.Add(5)
	a.Add(9)
	a.Reset()
	if a.Sum() != 0 || a.Count() != 0 {
		t.Fatal("Reset should zero the accumulator")
	}
}

// Property at the heart of DELTA's security argument: removing any single
// component from a key's composition leaves the XOR of the rest different
// from the key whenever the removed component is nonzero. A receiver missing
// one nonce therefore cannot name the key (short of guessing).
func TestMissingComponentChangesKey(t *testing.T) {
	s := newTestSource(16)
	for trial := 0; trial < 200; trial++ {
		n := 2 + trial%20
		comps := make([]Key, n)
		for i := range comps {
			comps[i] = s.Nonce()
		}
		full := XOR(comps...)
		for i, c := range comps {
			if c == 0 {
				continue // zero nonce removal is undetectable by design of XOR
			}
			rest := XOR(full, c) // XOR-ing out = removing
			if rest == full {
				t.Fatalf("trial %d: removing nonzero component %d did not change key", trial, i)
			}
		}
	}
}

func TestKeyString(t *testing.T) {
	if got := Key(0xabcd).String(); got != "0x000000000000abcd" {
		t.Fatalf("String = %q", got)
	}
}

func BenchmarkNonce(b *testing.B) {
	s := newTestSource(16)
	for i := 0; i < b.N; i++ {
		_ = s.Nonce()
	}
}

func BenchmarkAccumulator(b *testing.B) {
	var a Accumulator
	for i := 0; i < b.N; i++ {
		a.Add(Key(i))
	}
}
