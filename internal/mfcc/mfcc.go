// Package mfcc implements a network-assisted multi-flow congestion control
// scheme after Thomas et al. (PAPERS.md), as a competitor to the paper's
// DELTA/SIGMA-protected protocols:
//
//   - edge routers periodically divide their upstream bottleneck capacity
//     by the number of local subscribers and advertise the resulting
//     per-receiver fair share downstream (packet.ShareHeader);
//   - receivers translate the advertised share into a layered subscription
//     level through the session's rate schedule and adjust one group per
//     slot toward it, with drop-on-loss as a backstop;
//   - the data plane is the plain FLID-DL layered sender over IGMP.
//
// The scheme is network-assisted but not network-enforced: routers compute
// shares, receivers are trusted to honor them, and membership is plain
// IGMP. The inflated-subscription attacker therefore simply ignores the
// advertisements and joins every group — advertisement without enforcement
// buys no robustness, which is exactly the comparison the shoot-out
// campaign measures.
package mfcc

import (
	"sort"

	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// guardFraction mirrors the FLID receiver's evaluation guard: how far into
// the next slot a receiver waits before judging a slot, so queue-delayed
// packets still count.
const guardFraction = 0.8

// tallyW is the per-receiver tally window in slots; evaluation lags
// arrival by at most one slot, so a small power-of-two ring suffices.
const tallyW = 4

// EdgeAgent is the router-resident half of the scheme: once per slot it
// divides the router's upstream bottleneck capacity by the local
// subscriber count of each session and unicasts the resulting fair share
// to every subscriber.
type EdgeAgent struct {
	router   *mcast.Router
	sessions []*core.Session
	running  bool

	// SharesSent counts advertisement packets emitted.
	SharesSent uint64
}

// NewEdgeAgent builds the advertiser for one gatekept edge router serving
// the given sessions.
func NewEdgeAgent(r *mcast.Router, sessions []*core.Session) *EdgeAgent {
	return &EdgeAgent{router: r, sessions: sessions}
}

// Start begins the per-slot advertisement loop, phase-shifted half a slot
// so receivers hear a fresh share before each slot-end evaluation.
func (a *EdgeAgent) Start() {
	if a.running || len(a.sessions) == 0 {
		return
	}
	a.running = true
	period := a.sessions[0].SlotDur
	sched := a.router.Network().Scheduler()
	sched.At(sched.Now()+period/2, func() { a.advertise(period) })
}

// Stop halts the advertisement loop.
func (a *EdgeAgent) Stop() { a.running = false }

func (a *EdgeAgent) advertise(period sim.Time) {
	if !a.running {
		return
	}
	net := a.router.Network()
	up := a.uplinkBps()
	for _, sess := range a.sessions {
		subs := a.subscribers(sess)
		if len(subs) == 0 {
			continue
		}
		share := up / int64(len(subs))
		for _, dst := range subs {
			hdr := &packet.ShareHeader{
				Session:     sess.ID,
				ShareBps:    share,
				Subscribers: uint32(len(subs)),
			}
			a.router.SendLocal(net.NewPacket(a.router.Addr(), dst, 0, hdr))
			a.SharesSent++
		}
	}
	sched := net.Scheduler()
	sched.Schedule(sched.Now()+period, func() { a.advertise(period) })
}

// uplinkBps is the capacity the router divides among subscribers: the
// slowest link feeding it from the network core (access links from local
// hosts do not count). Re-read every period so capacity timeline events
// show up in the next advertisement.
func (a *EdgeAgent) uplinkBps() int64 {
	net := a.router.Network()
	var min int64
	for _, l := range net.Links() {
		if l.To().ID() != a.router.ID() {
			continue
		}
		if _, isHost := l.From().(*netsim.Host); isHost {
			continue
		}
		if min == 0 || l.Rate < min {
			min = l.Rate
		}
	}
	return min
}

// subscribers lists the local hosts currently entitled to the session's
// minimal group, in address order for determinism.
func (a *EdgeAgent) subscribers(sess *core.Session) []packet.Addr {
	gate := a.router.Gatekeeper()
	if gate == nil {
		return nil
	}
	g1 := sess.GroupAddr(1)
	var out []packet.Addr
	for addr := range a.router.Locals() {
		if gate.Deliver(g1, addr) {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Receiver is a well-behaved mfcc receiver: it follows the advertised fair
// share, moving one group per slot toward the level the share affords, and
// drops a group on any lossy slot regardless of the advertisement.
type Receiver struct {
	Sess *core.Session
	host *netsim.Host
	igmp *mcast.Client

	running bool
	level   int
	target  int // fair level from the latest advertisement (0 before any)
	loop    *core.SlotLoop

	tags   [tallyW]uint32
	got    []uint16 // tallyW rows of N groups
	expect []uint16
	joined []uint32 // joined[g-1]: first fully observed slot of group g

	// Meter records delivered session bytes.
	Meter *stats.Meter
	// Decreases and Increases count subscription moves; SharesHeard counts
	// advertisements consumed.
	Decreases, Increases uint64
	SharesHeard          uint64
}

// NewReceiver builds an mfcc receiver on host, managing membership through
// the edge router at routerAddr.
func NewReceiver(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Receiver {
	n := sess.Rates.N
	r := &Receiver{
		Sess:   sess,
		host:   host,
		igmp:   mcast.NewClient(host, routerAddr),
		got:    make([]uint16, tallyW*n),
		expect: make([]uint16, tallyW*n),
		joined: make([]uint32, n),
		Meter:  stats.NewMeter(sim.Second),
	}
	r.loop = core.NewSlotLoop(host.Scheduler(), sess,
		sim.Time(guardFraction*float64(sess.SlotDur)), r.onEval)
	host.Handle(packet.ProtoFLID, r.onData)
	host.Handle(packet.ProtoShare, r.onShare)
	return r
}

// Level reports the current subscription level.
func (r *Receiver) Level() int { return r.level }

// Start joins the session at the minimal level.
func (r *Receiver) Start() {
	if r.running {
		return
	}
	r.running = true
	cur := r.Sess.SlotAt(r.host.Scheduler().Now())
	r.level = 1
	r.joined[0] = cur + 1
	r.igmp.Join(r.Sess.GroupAddr(1))
	r.loop.Schedule(cur)
}

// Stop leaves every group and halts evaluation.
func (r *Receiver) Stop() {
	if !r.running {
		return
	}
	r.running = false
	for g := 1; g <= r.level; g++ {
		r.igmp.Leave(r.Sess.GroupAddr(g))
	}
	r.level = 0
	r.target = 0
}

func (r *Receiver) onShare(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.ShareHeader)
	if !ok || h.Session != r.Sess.ID || !r.running {
		return
	}
	r.SharesHeard++
	t := r.Sess.Rates.FairLevel(h.ShareBps)
	if t < 1 {
		t = 1 // the minimal group is the session floor
	}
	if t > r.Sess.Rates.N {
		t = r.Sess.Rates.N
	}
	r.target = t
}

func (r *Receiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != r.Sess.ID {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	g := int(h.Group)
	if g < 1 || g > r.Sess.Rates.N {
		return
	}
	idx := int(h.Slot) & (tallyW - 1)
	if r.tags[idx] != h.Slot {
		r.tags[idx] = h.Slot
		row := r.got[idx*r.Sess.Rates.N : (idx+1)*r.Sess.Rates.N]
		for i := range row {
			row[i] = 0
		}
	}
	r.got[idx*r.Sess.Rates.N+g-1]++
	r.expect[idx*r.Sess.Rates.N+g-1] = h.Count
}

func (r *Receiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	r.evaluate(slot)
	return true
}

// evaluate judges the finished slot: loss drops the top group (and caps
// the target until the next advertisement raises it again); a clean slot
// moves one group toward the advertised fair level.
func (r *Receiver) evaluate(slot uint32) {
	if r.level == 0 {
		return
	}
	n := r.Sess.Rates.N
	idx := int(slot) & (tallyW - 1)
	has := r.tags[idx] == slot
	loss := false
	for g := 1; g <= r.level; g++ {
		if r.joined[g-1] > slot {
			continue // not yet a full member for this slot
		}
		got := r.got[idx*n+g-1]
		if !has || got == 0 || got < r.expect[idx*n+g-1] {
			loss = true
			break
		}
	}
	switch {
	case loss && r.level > 1:
		r.igmp.Leave(r.Sess.GroupAddr(r.level))
		r.level--
		r.Decreases++
		if r.target > r.level {
			r.target = r.level
		}
	case loss:
		// At the minimal level the receiver stays subscribed.
	case r.target > r.level && r.level < n:
		r.level++
		r.joined[r.level-1] = slot + 2
		r.igmp.Join(r.Sess.GroupAddr(r.level))
		r.Increases++
	}
}

// Attacker is the inflated-subscription misbehaver against mfcc: the
// advertised shares are advice, membership is plain IGMP, so the attacker
// ignores both and joins every group — structurally the same attack as
// against FLID-DL.
type Attacker struct {
	*Receiver
	igmpAtk  *mcast.Client
	inflated bool
}

// NewAttacker builds an mfcc attacker on host.
func NewAttacker(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Attacker {
	return &Attacker{
		Receiver: NewReceiver(host, sess, routerAddr),
		igmpAtk:  mcast.NewClient(host, routerAddr),
	}
}

// Inflate switches to full-subscription misbehaviour.
func (a *Attacker) Inflate() {
	if a.inflated {
		return
	}
	a.inflated = true
	a.Receiver.Stop()
	for g := 1; g <= a.Sess.Rates.N; g++ {
		a.igmpAtk.Join(a.Sess.GroupAddr(g))
	}
}

// Deflate withdraws the attack and resumes well-behaved control.
func (a *Attacker) Deflate() {
	if !a.inflated {
		return
	}
	a.inflated = false
	for g := 1; g <= a.Sess.Rates.N; g++ {
		a.igmpAtk.Leave(a.Sess.GroupAddr(g))
	}
	a.Receiver.Start()
}

// Inflated reports whether the attack is active.
func (a *Attacker) Inflated() bool { return a.inflated }
