// Package flid implements the FLID-DL congestion control protocol of Byers
// et al. (the paper's protected protocol) and FLID-DS, its DELTA+SIGMA
// hardened derivative (§5.1):
//
//   - a slotted sender transmitting cumulative layers at multiplicative
//     rates with per-slot increase signals;
//   - a well-behaved receiver that drops its top group on any loss in a
//     slot and adds a group when the slot's increase signal authorizes it;
//   - an inflated-subscription attacker for both variants.
//
// In DL mode group membership is plain IGMP — which is exactly what the
// attacker abuses. In DS mode the sender runs the Figure 4 DELTA key
// generation and announces tuples to edge routers via SIGMA; receivers
// reconstruct keys and subscribe per the Figure 2 pipeline.
//
// Dynamic layering is modelled as zero-latency leave (see DESIGN.md): DL's
// layer-rotation machinery exists to let receivers shed rate without IGMP
// leave latency, so granting immediate leave exercises identical congestion
// control dynamics.
package flid

import (
	"deltasigma/internal/core"
	"deltasigma/internal/delta"
	"deltasigma/internal/keys"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
)

// Mode selects the protocol variant.
type Mode int

// Protocol variants.
const (
	// DL is plain FLID-DL over IGMP (vulnerable baseline).
	DL Mode = iota
	// DS is FLID-DS: FLID-DL integrated with DELTA and SIGMA.
	DS
)

// String names the mode.
func (m Mode) String() string {
	if m == DS {
		return "FLID-DS"
	}
	return "FLID-DL"
}

// Sender is the session source: it transmits every group's layer according
// to the rate schedule, embeds the slot's increase signal, and — in DS mode
// — generates and announces the DELTA keys.
type Sender struct {
	Sess   *core.Session
	host   *netsim.Host
	mode   Mode
	policy core.UpgradePolicy
	rng    *sim.RNG

	pacers   []core.Pacer
	emitters []groupEmitter
	dsend    *delta.LayeredSender
	ann      *sigma.Announcer

	running bool
	// scratch holds the per-slot auth/counts buffers, reused every slot so
	// the slot loop allocates only packet headers and emission closures.
	scratch core.SlotScratch

	// Stats.
	PacketsSent uint64
	BytesSent   uint64
	SlotsRun    uint64
	// PacketsPerGroup[g-1] counts data packets transmitted to group g.
	PacketsPerGroup []uint64
	// AuthCount[g-1] counts slots that authorized an upgrade to group g
	// (the f_g measurements of §5.4).
	AuthCount []uint64
}

// NewSender builds a session source on host. In DS mode, keySrc mints the
// DELTA nonces and announceRepeat is SIGMA's FEC expansion factor z.
func NewSender(host *netsim.Host, sess *core.Session, mode Mode, policy core.UpgradePolicy, rng *sim.RNG, keySrc *keys.Source, announceRepeat int) *Sender {
	sess.Rates.Validate()
	s := &Sender{
		Sess: sess, host: host, mode: mode, policy: policy, rng: rng,
		pacers:          make([]core.Pacer, sess.Rates.N),
		scratch:         core.NewSlotScratch(sess.Rates.N),
		AuthCount:       make([]uint64, sess.Rates.N),
		PacketsPerGroup: make([]uint64, sess.Rates.N),
	}
	for i := range s.pacers {
		s.pacers[i].MinOne = true
	}
	s.emitters = make([]groupEmitter, sess.Rates.N)
	for i := range s.emitters {
		e := &s.emitters[i]
		e.s, e.g = s, i+1
		e.timer = host.Scheduler().NewTimer(e.fire)
	}
	if mode == DS {
		if keySrc == nil {
			keySrc = keys.NewSource(keys.DefaultBits, rng.Fork().Uint64)
		}
		s.dsend = delta.NewLayeredSender(sess.Rates.N, keySrc)
		s.ann = sigma.NewAnnouncer(host, sess.ID, sess.BaseAddr, sess.Rates.N, announceRepeat)
		s.ann.Spacing = sess.SlotDur / 4
	}
	return s
}

// Announcer exposes the SIGMA announcer (DS mode) for overhead accounting.
func (s *Sender) Announcer() *sigma.Announcer { return s.ann }

// Start begins the slot loop at the session epoch (or immediately if the
// epoch has passed).
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	sched := s.host.Scheduler()
	start := s.Sess.Epoch
	if start < sched.Now() {
		start = sched.Now()
	}
	sched.At(start, func() { s.runSlot(s.Sess.SlotAt(sched.Now())) })
}

// Stop halts the sender after the current slot.
func (s *Sender) Stop() { s.running = false }

func (s *Sender) runSlot(slot uint32) {
	if !s.running {
		return
	}
	s.SlotsRun++
	sched := s.host.Scheduler()
	n := s.Sess.Rates.N

	inc := s.policy.IncreaseTo(slot)
	if inc > n {
		inc = n
	}
	auth, counts := s.scratch.Begin()
	for g := 2; g <= inc; g++ {
		auth[g-1] = true
		s.AuthCount[g-1]++
	}
	for g := 1; g <= n; g++ {
		counts[g-1] = s.pacers[g-1].Packets(s.Sess.Rates.GroupRate(g), s.Sess.SlotDur, s.Sess.PacketSize)
	}

	var ds *delta.LayeredSlot
	if s.mode == DS {
		ds = s.dsend.BeginSlot(slot, auth, counts)
		// Announce the keys these components distribute: they guard the
		// access slot two ahead (Figure 2).
		s.ann.Announce(core.AccessSlot(slot), ds.Keys.Tuples(s.Sess.BaseAddr))
	}

	// Schedule the slot's packets, evenly spaced per group with a deter-
	// ministic per-packet jitter to avoid cross-group phase locking.
	// Headers come from the pool's typed freelist: after the first few
	// slots the loop allocates nothing.
	slotStart := s.Sess.SlotStart(slot)
	pool := s.host.Network().Pool()
	for g := 1; g <= n; g++ {
		cnt := counts[g-1]
		spacing := s.Sess.SlotDur / sim.Time(cnt)
		for j := 1; j <= cnt; j++ {
			hdr := pool.FLIDHeader()
			hdr.Session, hdr.Group, hdr.Slot = s.Sess.ID, uint8(g), slot
			hdr.Seq, hdr.Count, hdr.IncreaseTo = uint16(j), uint16(cnt), uint8(inc)
			if ds != nil {
				comp, dec := ds.Fields(g)
				hdr.HasDelta = true
				hdr.Component = comp
				hdr.Decrease = dec
			}
			at := slotStart + sim.Time(j-1)*spacing + s.rng.Jitter(spacing/2)
			if at < sched.Now() {
				at = sched.Now()
			}
			pkt := s.host.Network().NewPacket(s.host.Addr(), s.Sess.GroupAddr(g), s.Sess.PacketSize, hdr)
			s.emitters[g-1].push(pkt, at, sched.Reserve())
		}
	}

	sched.Schedule(s.Sess.SlotStart(slot+1), func() { s.runSlot(slot + 1) })
}

// groupEmitter drains one group's slot emissions through a single
// reusable timer and a FIFO ring (the netsim.Link flight-ring pattern):
// per-packet jitter never exceeds half the intra-group spacing, so a
// group's emission times are strictly increasing and a FIFO suffices.
// Each packet's tie-break reservation is made at queue time and fired via
// ResetReserved, so every emission happens at exactly the (time, key) an
// individually scheduled closure would have used — without allocating a
// closure and an event per packet.
type groupEmitter struct {
	s     *Sender
	g     int
	timer *sim.Timer
	ring  []emission
	head  int
}

type emission struct {
	pkt *packet.Packet
	at  sim.Time
	res sim.Reservation
}

func (e *groupEmitter) push(pkt *packet.Packet, at sim.Time, res sim.Reservation) {
	if e.head == len(e.ring) {
		// Fully drained (every slot drains before the next is scheduled):
		// rewind so the backing array is reused instead of creeping.
		e.ring = e.ring[:0]
		e.head = 0
	}
	e.ring = append(e.ring, emission{pkt: pkt, at: at, res: res})
	if len(e.ring)-e.head == 1 {
		e.timer.ResetReserved(at, res)
	}
}

func (e *groupEmitter) fire() {
	em := e.ring[e.head]
	e.ring[e.head].pkt = nil
	e.head++
	s := e.s
	s.PacketsSent++
	s.PacketsPerGroup[e.g-1]++
	s.BytesSent += uint64(em.pkt.Size)
	s.host.Send(em.pkt)
	if e.head < len(e.ring) {
		next := e.ring[e.head]
		e.timer.ResetReserved(next.at, next.res)
	}
}

// ObservedFrequency returns the measured f_g over the slots run so far.
func (s *Sender) ObservedFrequency(g int) float64 {
	if s.SlotsRun == 0 || g < 2 || g > len(s.AuthCount) {
		return 0
	}
	return float64(s.AuthCount[g-1]) / float64(s.SlotsRun)
}
