package flid

import (
	"testing"

	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

// session builds the §5.1 paper session descriptor.
func session(id uint16, slot sim.Time) *core.Session {
	return &core.Session{
		ID:         id,
		BaseAddr:   packet.MulticastBase + packet.Addr(int(id)*32),
		Rates:      core.PaperSchedule(),
		SlotDur:    slot,
		PacketSize: 576,
	}
}

func TestSingleDLReceiverConvergesToFairLevel(t *testing.T) {
	d := topo.New(topo.PaperConfig(250_000, 1))
	srcHost := d.AddSource("src")
	rcv := d.AddReceiver("rcv")
	d.Done()
	mcast.NewIGMP(d.Right)

	sess := session(1, 500*sim.Millisecond)
	for _, a := range sess.Addrs() {
		d.Fabric.SetSource(a, srcHost.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	snd := NewSender(srcHost, sess, DL, policy, d.RNG.Fork(), nil, 0)
	r := NewReceiver(rcv, sess, d.Right.Addr())

	d.Sched.At(0, func() { snd.Start(); r.Start() })
	d.Sched.RunUntil(60 * sim.Second)

	// Fair level for 250 Kbps is 3 (C_3 = 225 Kbps).
	if r.Level() < 2 || r.Level() > 4 {
		t.Fatalf("level = %d, want near fair level 3", r.Level())
	}
	avg := r.Meter.AvgKbps(30*sim.Second, 60*sim.Second)
	if avg < 130 || avg > 260 {
		t.Fatalf("steady throughput %.0f Kbps, want roughly the 225 Kbps fair level", avg)
	}
	if r.Increases == 0 {
		t.Fatal("receiver never climbed")
	}
}

func TestSingleDSReceiverConvergesToFairLevel(t *testing.T) {
	d := topo.New(topo.PaperConfig(250_000, 2))
	srcHost := d.AddSource("src")
	rcv := d.AddReceiver("rcv")
	d.Done()
	slot := 250 * sim.Millisecond
	sigma.NewController(d.Right, sigma.DefaultConfig(slot))

	sess := session(1, slot)
	for _, a := range sess.Addrs() {
		d.Fabric.SetSource(a, srcHost.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	snd := NewSender(srcHost, sess, DS, policy, d.RNG.Fork(), nil, 2)
	r := NewDSReceiver(rcv, sess, d.Right.Addr())

	d.Sched.At(0, func() { snd.Start(); r.Start() })
	d.Sched.RunUntil(60 * sim.Second)

	if r.Level() < 2 || r.Level() > 4 {
		t.Fatalf("level = %d, want near fair level 3", r.Level())
	}
	avg := r.Meter.AvgKbps(30*sim.Second, 60*sim.Second)
	if avg < 130 || avg > 260 {
		t.Fatalf("steady throughput %.0f Kbps, want roughly the 225 Kbps fair level", avg)
	}
}

func TestDLAndDSComparableThroughput(t *testing.T) {
	run := func(mode Mode, seed uint64) float64 {
		d := topo.New(topo.PaperConfig(250_000, seed))
		srcHost := d.AddSource("src")
		rcv := d.AddReceiver("rcv")
		d.Done()
		var slot sim.Time
		if mode == DL {
			slot = 500 * sim.Millisecond
			mcast.NewIGMP(d.Right)
		} else {
			slot = 250 * sim.Millisecond
			sigma.NewController(d.Right, sigma.DefaultConfig(slot))
		}
		sess := session(1, slot)
		for _, a := range sess.Addrs() {
			d.Fabric.SetSource(a, srcHost.ID())
		}
		policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
		snd := NewSender(srcHost, sess, mode, policy, d.RNG.Fork(), nil, 2)
		var meter interface {
			AvgKbps(from, to sim.Time) float64
		}
		if mode == DL {
			r := NewReceiver(rcv, sess, d.Right.Addr())
			d.Sched.At(0, func() { snd.Start(); r.Start() })
			meter = r.Meter
		} else {
			r := NewDSReceiver(rcv, sess, d.Right.Addr())
			d.Sched.At(0, func() { snd.Start(); r.Start() })
			meter = r.Meter
		}
		d.Sched.RunUntil(60 * sim.Second)
		return meter.AvgKbps(30*sim.Second, 60*sim.Second)
	}
	dl := run(DL, 11)
	ds := run(DS, 11)
	if dl == 0 || ds == 0 {
		t.Fatalf("dead session: dl=%.0f ds=%.0f", dl, ds)
	}
	ratio := ds / dl
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("FLID-DS throughput %.0f vs FLID-DL %.0f Kbps: protection should not change throughput", ds, dl)
	}
}

func TestInflatedSubscriptionBoostsDLAttacker(t *testing.T) {
	// Two FLID-DL sessions on a 500 Kbps bottleneck; receiver 1 inflates
	// at t=30 s and must grab most of the link.
	d := topo.New(topo.PaperConfig(500_000, 3))
	src1 := d.AddSource("src1")
	src2 := d.AddSource("src2")
	r1h := d.AddReceiver("r1")
	r2h := d.AddReceiver("r2")
	d.Done()
	mcast.NewIGMP(d.Right)

	s1 := session(1, 500*sim.Millisecond)
	s2 := session(2, 500*sim.Millisecond)
	for _, a := range s1.Addrs() {
		d.Fabric.SetSource(a, src1.ID())
	}
	for _, a := range s2.Addrs() {
		d.Fabric.SetSource(a, src2.ID())
	}
	policy1 := core.PeriodicUpgrades{Factor: 2, N: s1.Rates.N}
	snd1 := NewSender(src1, s1, DL, policy1, d.RNG.Fork(), nil, 0)
	snd2 := NewSender(src2, s2, DL, policy1, d.RNG.Fork(), nil, 0)
	atk := NewAttacker(r1h, s1, d.Right.Addr())
	good := NewReceiver(r2h, s2, d.Right.Addr())

	d.Sched.At(0, func() { snd1.Start(); snd2.Start(); atk.Start(); good.Start() })
	d.Sched.At(30*sim.Second, func() { atk.Inflate() })
	d.Sched.RunUntil(90 * sim.Second)

	atkBefore := atk.Meter.AvgKbps(15*sim.Second, 30*sim.Second)
	atkAfter := atk.Meter.AvgKbps(60*sim.Second, 90*sim.Second)
	goodAfter := good.Meter.AvgKbps(60*sim.Second, 90*sim.Second)

	if atkAfter < 1.5*atkBefore {
		t.Fatalf("attack ineffective: %.0f -> %.0f Kbps", atkBefore, atkAfter)
	}
	if atkAfter < 2*goodAfter {
		t.Fatalf("attacker %.0f Kbps vs victim %.0f Kbps: attacker should dominate", atkAfter, goodAfter)
	}
}

func TestDSPreventsInflatedSubscription(t *testing.T) {
	// Same scenario, FLID-DS: the attacker's inflation attempts must not
	// raise its throughput above its fair share.
	d := topo.New(topo.PaperConfig(500_000, 4))
	src1 := d.AddSource("src1")
	src2 := d.AddSource("src2")
	r1h := d.AddReceiver("r1")
	r2h := d.AddReceiver("r2")
	d.Done()
	slot := 250 * sim.Millisecond
	ctl := sigma.NewController(d.Right, sigma.DefaultConfig(slot))

	s1 := session(1, slot)
	s2 := session(2, slot)
	for _, a := range s1.Addrs() {
		d.Fabric.SetSource(a, src1.ID())
	}
	for _, a := range s2.Addrs() {
		d.Fabric.SetSource(a, src2.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: s1.Rates.N}
	snd1 := NewSender(src1, s1, DS, policy, d.RNG.Fork(), nil, 2)
	snd2 := NewSender(src2, s2, DS, policy, d.RNG.Fork(), nil, 2)
	atk := NewDSAttacker(r1h, s1, d.Right.Addr(), d.RNG.Fork())
	good := NewDSReceiver(r2h, s2, d.Right.Addr())

	d.Sched.At(0, func() { snd1.Start(); snd2.Start(); atk.Start(); good.Start() })
	d.Sched.At(30*sim.Second, func() { atk.Inflate() })
	d.Sched.RunUntil(90 * sim.Second)

	atkAfter := atk.Meter.AvgKbps(60*sim.Second, 90*sim.Second)
	goodAfter := good.Meter.AvgKbps(60*sim.Second, 90*sim.Second)

	// Fair share is 250 Kbps each → fair level 3 = 225 Kbps. The attacker
	// must stay near it and must not dominate the victim.
	if atkAfter > 350 {
		t.Fatalf("attacker exceeded fair share: %.0f Kbps", atkAfter)
	}
	if goodAfter < 100 {
		t.Fatalf("victim starved at %.0f Kbps despite protection", goodAfter)
	}
	if atkAfter > 2*goodAfter {
		t.Fatalf("attacker %.0f Kbps vs victim %.0f: protection failed", atkAfter, goodAfter)
	}
	if atk.GuessesSent == 0 {
		t.Fatal("attacker never attacked")
	}
	// The guess tally should have registered the attack on some group.
	tallied := false
	for g := 1; g <= s1.Rates.N; g++ {
		if ctl.GuessCount(s1.GroupAddr(g), r1h.Addr()) > 0 {
			tallied = true
			break
		}
	}
	if !tallied {
		t.Fatal("guessing attack left no tally")
	}
}

func TestTwoDSReceiversConvergeTogether(t *testing.T) {
	d := topo.New(topo.PaperConfig(250_000, 5))
	srcHost := d.AddSource("src")
	r1h := d.AddReceiver("r1")
	r2h := d.AddReceiver("r2")
	d.Done()
	slot := 250 * sim.Millisecond
	sigma.NewController(d.Right, sigma.DefaultConfig(slot))

	sess := session(1, slot)
	for _, a := range sess.Addrs() {
		d.Fabric.SetSource(a, srcHost.ID())
	}
	policy := core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
	snd := NewSender(srcHost, sess, DS, policy, d.RNG.Fork(), nil, 2)
	r1 := NewDSReceiver(r1h, sess, d.Right.Addr())
	r2 := NewDSReceiver(r2h, sess, d.Right.Addr())

	d.Sched.At(0, func() { snd.Start(); r1.Start() })
	d.Sched.At(10*sim.Second, func() { r2.Start() })
	d.Sched.RunUntil(60 * sim.Second)

	if r1.Level() != r2.Level() {
		t.Fatalf("receivers did not converge: %d vs %d", r1.Level(), r2.Level())
	}
	a1 := r1.Meter.AvgKbps(40*sim.Second, 60*sim.Second)
	a2 := r2.Meter.AvgKbps(40*sim.Second, 60*sim.Second)
	if a1 == 0 || a2 == 0 {
		t.Fatalf("dead receivers: %.0f / %.0f", a1, a2)
	}
	diff := a1 - a2
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.25*a1 {
		t.Fatalf("throughputs diverge: %.0f vs %.0f Kbps", a1, a2)
	}
}
