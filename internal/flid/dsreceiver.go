package flid

import (
	"deltasigma/internal/core"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// DSReceiver is a well-behaved FLID-DS receiver: it runs the Figure 4
// DELTA receiver algorithm over each data slot, derives the keys its
// congestion state entitles it to, and subscribes through SIGMA for the
// corresponding access slot (data slot + 2, Figure 2). Congestion control
// decisions are exactly FLID-DL's — decrease on loss, increase on signal —
// but enacted through keys instead of trust. Like the DL receiver, its
// per-slot state lives in the session's struct-of-arrays batch; the DELTA
// accumulators themselves are reusable ring entries reset in place.
type DSReceiver struct {
	Sess   *core.Session
	host   *netsim.Host
	client *sigma.Client

	b       *dsBatch
	mi      int
	running bool
	loop    *core.SlotLoop

	// Meter records delivered session bytes.
	Meter *stats.Meter
	// Decreases, Increases, Rejoins count subscription moves.
	Decreases, Increases, Rejoins uint64
}

// NewDSReceiver builds a FLID-DS receiver on host against the SIGMA edge
// router at routerAddr.
func NewDSReceiver(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *DSReceiver {
	r := &DSReceiver{
		Sess:   sess,
		host:   host,
		client: sigma.NewClient(host, routerAddr),
		b:      dsBatchFor(host.Scheduler(), sess),
		Meter:  stats.NewMeter(sim.Second),
	}
	r.mi = r.b.join()
	r.loop = core.NewSlotLoop(host.Scheduler(), sess,
		sim.Time(guardFraction*float64(sess.SlotDur)), r.onEval)
	host.Handle(packet.ProtoFLID, r.onData)
	return r
}

// Level reports the latest decided subscription level.
func (r *DSReceiver) Level() int { return int(r.b.level[r.mi]) }

// Client exposes the SIGMA client (attacker subclassing and tests).
func (r *DSReceiver) Client() *sigma.Client { return r.client }

// Start admits the receiver into the session via a SIGMA session-join.
func (r *DSReceiver) Start() {
	if r.running {
		return
	}
	r.running = true
	sched := r.host.Scheduler()
	cur := r.Sess.SlotAt(sched.Now())
	r.b.level[r.mi] = 1
	r.b.setLevelAt(r.mi, cur, 1)
	r.b.joined[r.mi*(r.b.n+2)+1] = cur + 1
	r.client.SessionJoin(r.Sess.BaseAddr)
	r.loop.Schedule(cur)
}

// Stop leaves the session.
func (r *DSReceiver) Stop() {
	if !r.running {
		return
	}
	r.running = false
	r.client.Unsubscribe(r.Sess.Addrs())
	r.b.level[r.mi] = 0
}

// onEval fires once per slot, batched behind the session's slot driver.
func (r *DSReceiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	r.evaluate(slot)
	return true
}

func (r *DSReceiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != r.Sess.ID {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	if h.Slot < r.b.evalFloor[r.mi] {
		return // stray from an already evaluated slot; never read
	}
	r.b.deltaFor(r.mi, h.Slot).Observe(h, pkt.ECN)
}

// evaluate runs the DELTA receiver conclusion for the finished data slot
// and subscribes for the access slot it guards.
func (r *DSReceiver) evaluate(slot uint32) {
	b, mi := r.b, r.mi
	dr := b.finished(mi, slot)
	b.evalFloor[mi] = slot + 1
	b.gcLevels(mi, slot)

	lvl := b.levelAt(mi, slot)
	if lvl == 0 {
		lvl = 1
	}
	// Only groups fully observed for the whole slot count toward the
	// evaluation; newer grants are still covered by SIGMA's grace window.
	joined := b.joined[mi*(b.n+2):]
	effTop := 0
	for g := 1; g <= lvl; g++ {
		if joined[g] <= slot {
			effTop = g
		} else {
			break
		}
	}
	if effTop == 0 || dr == nil {
		// Nothing fully observed yet (just joined): wait for a full slot.
		if dr == nil && effTop > 0 {
			// A full slot passed with zero packets: the session may be
			// idle or access lost entirely — rejoin from the floor.
			r.rejoin(slot)
			return
		}
		// Carry the latest decision, not the level active during the
		// evaluated slot — mid-upgrade they differ.
		b.setLevelAt(mi, core.AccessSlot(slot), int(b.level[mi]))
		return
	}

	out := dr.Finish(effTop, false)
	if out.Next == 0 {
		r.rejoin(slot)
		return
	}

	pairs := make([]packet.AddrKey, 0, len(out.Keys))
	for g, k := range out.Keys {
		pairs = append(pairs, packet.AddrKey{Addr: r.Sess.GroupAddr(g), Key: k})
	}
	r.client.Subscribe(core.AccessSlot(slot), pairs)

	next := out.Next
	if out.Congested {
		// Abandon anything above the entitled level, including pending
		// upgrades, and tell the router immediately.
		if next < lvl {
			addrs := make([]packet.Addr, 0, lvl-next)
			for g := next + 1; g <= lvl; g++ {
				addrs = append(addrs, r.Sess.GroupAddr(g))
			}
			r.client.Unsubscribe(addrs)
			r.Decreases++
		}
	} else {
		if next > effTop {
			// Upgrade: packets will start flowing in the next slot; count
			// the group fully from the slot after that.
			joined[next] = slot + 2
			r.Increases++
		}
		// A pending (granted but not yet fully observed) group stays.
		if lvl > next {
			next = lvl
		}
	}
	b.level[mi] = int32(next)
	b.setLevelAt(mi, core.AccessSlot(slot), next)
}

// rejoin re-enters the session keylessly from the minimal group. The
// receiver may still be receiving group 1 under the session-join grace
// window, so joined is left alone: the very next clean slot yields a
// fresh key and clears probation before the grace expires — an isolated
// loss at the minimal level costs nothing, while sustained congestion still
// runs into the §3.2.2 penalty.
func (r *DSReceiver) rejoin(slot uint32) {
	r.Rejoins++
	r.b.level[r.mi] = 1
	r.b.setLevelAt(r.mi, core.AccessSlot(slot), 1)
	r.client.SessionJoin(r.Sess.BaseAddr)
}
