package flid

import (
	"deltasigma/internal/core"
	"deltasigma/internal/delta"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// DSReceiver is a well-behaved FLID-DS receiver: it runs the Figure 4
// DELTA receiver algorithm over each data slot, derives the keys its
// congestion state entitles it to, and subscribes through SIGMA for the
// corresponding access slot (data slot + 2, Figure 2). Congestion control
// decisions are exactly FLID-DL's — decrease on loss, increase on signal —
// but enacted through keys instead of trust.
type DSReceiver struct {
	Sess   *core.Session
	host   *netsim.Host
	client *sigma.Client

	recvs       map[uint32]*delta.LayeredReceiver
	levelBySlot map[uint32]int
	level       int      // latest decided level
	joinedSlot  []uint32 // first fully observed data slot per group
	running     bool
	loop        *core.SlotLoop

	// Meter records delivered session bytes.
	Meter *stats.Meter
	// Decreases, Increases, Rejoins count subscription moves.
	Decreases, Increases, Rejoins uint64
}

// NewDSReceiver builds a FLID-DS receiver on host against the SIGMA edge
// router at routerAddr.
func NewDSReceiver(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *DSReceiver {
	r := &DSReceiver{
		Sess:        sess,
		host:        host,
		client:      sigma.NewClient(host, routerAddr),
		recvs:       make(map[uint32]*delta.LayeredReceiver),
		levelBySlot: make(map[uint32]int),
		joinedSlot:  make([]uint32, sess.Rates.N+2),
		Meter:       stats.NewMeter(sim.Second),
	}
	r.loop = core.NewSlotLoop(host.Scheduler(), sess,
		sim.Time(guardFraction*float64(sess.SlotDur)), r.onEval)
	host.Handle(packet.ProtoFLID, r.onData)
	return r
}

// Level reports the latest decided subscription level.
func (r *DSReceiver) Level() int { return r.level }

// Client exposes the SIGMA client (attacker subclassing and tests).
func (r *DSReceiver) Client() *sigma.Client { return r.client }

// Start admits the receiver into the session via a SIGMA session-join.
func (r *DSReceiver) Start() {
	if r.running {
		return
	}
	r.running = true
	sched := r.host.Scheduler()
	cur := r.Sess.SlotAt(sched.Now())
	r.level = 1
	r.levelBySlot[cur] = 1
	r.joinedSlot[1] = cur + 1
	r.client.SessionJoin(r.Sess.BaseAddr)
	r.loop.Schedule(cur)
}

// Stop leaves the session.
func (r *DSReceiver) Stop() {
	if !r.running {
		return
	}
	r.running = false
	r.client.Unsubscribe(r.Sess.Addrs())
	r.level = 0
}

// onEval fires once per slot on the loop's reusable timer.
func (r *DSReceiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	r.evaluate(slot)
	return true
}

func (r *DSReceiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != r.Sess.ID {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	dr := r.recvs[h.Slot]
	if dr == nil {
		dr = delta.NewLayeredReceiver(r.Sess.Rates.N)
		dr.Begin(h.Slot)
		r.recvs[h.Slot] = dr
	}
	dr.Observe(h, pkt.ECN)
}

// levelAt returns the subscription level in force during a data slot,
// walking back to the most recent decision.
func (r *DSReceiver) levelAt(slot uint32) int {
	for s := slot; ; s-- {
		if l, ok := r.levelBySlot[s]; ok {
			return l
		}
		if s == 0 {
			return 1
		}
		if slot-s > 16 {
			return r.level
		}
	}
}

// evaluate runs the DELTA receiver conclusion for the finished data slot
// and subscribes for the access slot it guards.
func (r *DSReceiver) evaluate(slot uint32) {
	dr := r.recvs[slot]
	delete(r.recvs, slot)
	for s := range r.recvs {
		if s+4 < slot {
			delete(r.recvs, s)
		}
	}
	for s := range r.levelBySlot {
		if s+8 < slot {
			delete(r.levelBySlot, s)
		}
	}

	lvl := r.levelAt(slot)
	if lvl == 0 {
		lvl = 1
	}
	// Only groups fully observed for the whole slot count toward the
	// evaluation; newer grants are still covered by SIGMA's grace window.
	effTop := 0
	for g := 1; g <= lvl; g++ {
		if r.joinedSlot[g] <= slot {
			effTop = g
		} else {
			break
		}
	}
	if effTop == 0 || dr == nil {
		// Nothing fully observed yet (just joined): wait for a full slot.
		if dr == nil && effTop > 0 {
			// A full slot passed with zero packets: the session may be
			// idle or access lost entirely — rejoin from the floor.
			r.rejoin(slot)
			return
		}
		// Carry the latest decision, not the level active during the
		// evaluated slot — mid-upgrade they differ.
		r.levelBySlot[core.AccessSlot(slot)] = r.level
		return
	}

	out := dr.Finish(effTop, false)
	if out.Next == 0 {
		r.rejoin(slot)
		return
	}

	pairs := make([]packet.AddrKey, 0, len(out.Keys))
	for g, k := range out.Keys {
		pairs = append(pairs, packet.AddrKey{Addr: r.Sess.GroupAddr(g), Key: k})
	}
	r.client.Subscribe(core.AccessSlot(slot), pairs)

	next := out.Next
	if out.Congested {
		// Abandon anything above the entitled level, including pending
		// upgrades, and tell the router immediately.
		if next < lvl {
			addrs := make([]packet.Addr, 0, lvl-next)
			for g := next + 1; g <= lvl; g++ {
				addrs = append(addrs, r.Sess.GroupAddr(g))
			}
			r.client.Unsubscribe(addrs)
			r.Decreases++
		}
	} else {
		if next > effTop {
			// Upgrade: packets will start flowing in the next slot; count
			// the group fully from the slot after that.
			r.joinedSlot[next] = slot + 2
			r.Increases++
		}
		// A pending (granted but not yet fully observed) group stays.
		if lvl > next {
			next = lvl
		}
	}
	r.level = next
	r.levelBySlot[core.AccessSlot(slot)] = next
}

// rejoin re-enters the session keylessly from the minimal group. The
// receiver may still be receiving group 1 under the session-join grace
// window, so joinedSlot is left alone: the very next clean slot yields a
// fresh key and clears probation before the grace expires — an isolated
// loss at the minimal level costs nothing, while sustained congestion still
// runs into the §3.2.2 penalty.
func (r *DSReceiver) rejoin(slot uint32) {
	r.Rejoins++
	r.level = 1
	r.levelBySlot[core.AccessSlot(slot)] = 1
	r.client.SessionJoin(r.Sess.BaseAddr)
}
