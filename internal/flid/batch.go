package flid

import (
	"deltasigma/internal/core"
	"deltasigma/internal/delta"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// This file holds the struct-of-arrays state shared by every FLID receiver
// of one session. A receiver used to own a map of per-slot tally objects,
// so the per-packet path hashed a slot number and chased a pointer, and
// the per-slot path allocated, deleted and garbage-collected map entries.
// Now each session anchors one batch on its scheduler (sim.Scheduler
// Anchor, so concurrently running experiments never share state) and each
// receiver is an index into parallel slices: subscription levels, probation
// clocks and per-slot tallies live in flat arrays, per-slot storage is a
// fixed ring of tallyW slots wide, and the shared SlotDriver evaluates all
// members of a slot clock in one pass over adjacent rows.
//
// Ring correctness: an entry is claimed by writing the full 32-bit slot
// number into its tag, so a stale entry can never be mistaken for another
// slot — lookups compare the exact slot, not slot mod tallyW. Two live
// (received-but-not-yet-evaluated) slots could only collide if they were
// tallyW apart, and the live span is at most four slots: senders emit only
// the slot in progress, packets arrive within a slot or early in the next,
// and evaluation lags the clock by two slots at most. Observations for
// slots before evalFloor (already evaluated) are dropped; the map-based
// code accumulated them into entries its evaluator, which reads only the
// exact finished slot, never looked at.
const tallyW = 8 // per-slot tally ring width, power of two
const lvlW = 16  // FLID-DS level-by-slot ring width, power of two

// dlBatch is the struct-of-arrays state of every FLID-DL receiver attached
// to one session (on one scheduler).
type dlBatch struct {
	n int // groups

	// Per member (index mi):
	level     []int32  // current subscription level
	evalFloor []uint32 // first slot not yet evaluated; older data is stray
	// joined, stride n+1: the data slot from which each group is fully
	// counted — the probation clock of the two-slot join pipeline.
	joined []uint32

	// Per member and ring entry (index mi*tallyW + slot%tallyW):
	tag []uint32 // slot the entry currently tallies
	inc []int32  // highest increase-to signal seen in the slot
	// got and expect, stride tallyW*n: per-group receptions and the
	// per-group expected count announced in headers.
	got    []int32
	expect []int32
}

type dlKey struct{ sess *core.Session }

func dlBatchFor(sched *sim.Scheduler, sess *core.Session) *dlBatch {
	return sched.Anchor(dlKey{sess}, func() any {
		return &dlBatch{n: sess.Rates.N}
	}).(*dlBatch)
}

// join adds one member and returns its index. Zero state is valid: level 0
// (not subscribed), empty probation clocks, and every ring entry reading
// as an empty tally for slot 0 — exactly what a missing map entry meant.
func (b *dlBatch) join() int {
	mi := len(b.level)
	b.level = append(b.level, 0)
	b.evalFloor = append(b.evalFloor, 0)
	b.joined = append(b.joined, make([]uint32, b.n+1)...)
	b.tag = append(b.tag, make([]uint32, tallyW)...)
	b.inc = append(b.inc, make([]int32, tallyW)...)
	b.got = append(b.got, make([]int32, tallyW*b.n)...)
	b.expect = append(b.expect, make([]int32, tallyW*b.n)...)
	return mi
}

// observe tallies one data packet for member mi.
func (b *dlBatch) observe(mi int, h *packet.FLIDHeader) {
	g := int(h.Group)
	if g < 1 || g > b.n {
		return
	}
	slot := h.Slot
	if slot < b.evalFloor[mi] {
		return // stray from an already evaluated slot; never read
	}
	ri := mi*tallyW + int(slot&(tallyW-1))
	base := ri * b.n
	if b.tag[ri] != slot {
		b.tag[ri] = slot
		b.inc[ri] = 0
		clear(b.got[base : base+b.n])
		clear(b.expect[base : base+b.n])
	}
	b.got[base+g-1]++
	b.expect[base+g-1] = int32(h.Count)
	if int32(h.IncreaseTo) > b.inc[ri] {
		b.inc[ri] = int32(h.IncreaseTo)
	}
}

// dsBatch is the struct-of-arrays state of every FLID-DS receiver attached
// to one session. The tally ring holds reusable DELTA layered receivers
// (Begin resets one in place); the level ring replaces the level-by-slot
// map with full-slot tags, where tag slot+1 distinguishes a recorded slot
// 0 from an empty entry.
type dsBatch struct {
	n int

	// Per member:
	level     []int32
	evalFloor []uint32
	joined    []uint32 // stride n+2, as the map-based receiver sized it

	// DELTA receiver ring, stride tallyW; dtag is slot+1, 0 when empty.
	dtag  []uint32
	drecv []*delta.LayeredReceiver

	// Level-in-force ring, stride lvlW; ltag is slot+1, 0 when empty.
	ltag []uint32
	lval []int32
}

type dsKey struct{ sess *core.Session }

func dsBatchFor(sched *sim.Scheduler, sess *core.Session) *dsBatch {
	return sched.Anchor(dsKey{sess}, func() any {
		return &dsBatch{n: sess.Rates.N}
	}).(*dsBatch)
}

func (b *dsBatch) join() int {
	mi := len(b.level)
	b.level = append(b.level, 0)
	b.evalFloor = append(b.evalFloor, 0)
	b.joined = append(b.joined, make([]uint32, b.n+2)...)
	b.dtag = append(b.dtag, make([]uint32, tallyW)...)
	b.drecv = append(b.drecv, make([]*delta.LayeredReceiver, tallyW)...)
	b.ltag = append(b.ltag, make([]uint32, lvlW)...)
	b.lval = append(b.lval, make([]int32, lvlW)...)
	return mi
}

// deltaFor returns member mi's accumulating DELTA receiver for slot,
// claiming (and resetting) the ring entry on first contact.
func (b *dsBatch) deltaFor(mi int, slot uint32) *delta.LayeredReceiver {
	ri := mi*tallyW + int(slot&(tallyW-1))
	dr := b.drecv[ri]
	if b.dtag[ri] != slot+1 {
		b.dtag[ri] = slot + 1
		if dr == nil {
			dr = delta.NewLayeredReceiver(b.n)
			b.drecv[ri] = dr
		}
		dr.Begin(slot)
	}
	return dr
}

// finished returns the DELTA receiver that accumulated slot, or nil when
// no packet of the slot arrived — the signal the evaluator reads as a
// fully lost slot.
func (b *dsBatch) finished(mi int, slot uint32) *delta.LayeredReceiver {
	ri := mi*tallyW + int(slot&(tallyW-1))
	if b.dtag[ri] != slot+1 {
		return nil
	}
	return b.drecv[ri]
}

// setLevelAt records the subscription level in force from data slot slot.
func (b *dsBatch) setLevelAt(mi int, slot uint32, lvl int) {
	li := mi*lvlW + int(slot&(lvlW-1))
	b.ltag[li] = slot + 1
	b.lval[li] = int32(lvl)
}

// gcLevels drops level records older than the walk horizon, mirroring the
// map-based receiver's per-evaluate garbage collection (delete s+8 < slot)
// so levelAt can never resurrect a record the map would have discarded.
func (b *dsBatch) gcLevels(mi int, slot uint32) {
	base := mi * lvlW
	for i := base; i < base+lvlW; i++ {
		if t := b.ltag[i]; t != 0 && t-1+8 < slot {
			b.ltag[i] = 0
		}
	}
}

// levelAt returns the subscription level in force during a data slot,
// walking back to the most recent decision exactly as the map-based
// receiver did: sixteen slots of history, then the latest decided level.
func (b *dsBatch) levelAt(mi int, slot uint32) int {
	base := mi * lvlW
	for s := slot; ; s-- {
		if b.ltag[base+int(s&(lvlW-1))] == s+1 {
			return int(b.lval[base+int(s&(lvlW-1))])
		}
		if s == 0 {
			return 1
		}
		if slot-s > 16 {
			return int(b.level[mi])
		}
	}
}
