package flid

import (
	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sigma"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// Attacker is the inflated-subscription misbehaver of §2.1 against plain
// FLID-DL: it behaves like a normal receiver until Inflate is called, then
// joins every group of the session through IGMP and ignores congestion
// forever after — the Figure 1 attack.
type Attacker struct {
	*Receiver
	igmpAtk  *mcast.Client
	inflated bool
}

// NewAttacker builds a DL attacker on host.
func NewAttacker(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Attacker {
	return &Attacker{
		Receiver: NewReceiver(host, sess, routerAddr),
		igmpAtk:  mcast.NewClient(host, routerAddr),
	}
}

// Inflate switches the receiver to full-subscription misbehaviour.
func (a *Attacker) Inflate() {
	if a.inflated {
		return
	}
	a.inflated = true
	// Stop the well-behaved control loop, then grab everything. Stop()
	// leaves the current groups; rejoin them all unconditionally.
	a.Receiver.Stop()
	for g := 1; g <= a.Sess.Rates.N; g++ {
		a.igmpAtk.Join(a.Sess.GroupAddr(g))
	}
}

// Deflate calls the attack off (the dynamics layer's attacker-stop event):
// every full-subscription join is withdrawn and the well-behaved control
// loop restarts from the minimal level.
func (a *Attacker) Deflate() {
	if !a.inflated {
		return
	}
	a.inflated = false
	for g := 1; g <= a.Sess.Rates.N; g++ {
		a.igmpAtk.Leave(a.Sess.GroupAddr(g))
	}
	a.Receiver.Start()
}

// Inflated reports whether the attack is active.
func (a *Attacker) Inflated() bool { return a.inflated }

// DSAttacker attacks a DELTA+SIGMA-protected session: it keeps a legitimate
// FLID-DS receiver running (its fair share — the attacker still wants the
// data) while running the shared sigma.GuessAttack engine — guessed keys
// for every higher group each slot plus plain IGMP joins the SIGMA router
// ignores (§4.2, protection against attacks on SIGMA).
type DSAttacker struct {
	*DSReceiver
	*sigma.GuessAttack
}

// NewDSAttacker builds a DS attacker on host.
func NewDSAttacker(host *netsim.Host, sess *core.Session, routerAddr packet.Addr, rng *sim.RNG) *DSAttacker {
	r := NewDSReceiver(host, sess, routerAddr)
	return &DSAttacker{
		DSReceiver:  r,
		GuessAttack: sigma.NewGuessAttack(host, sess, routerAddr, r.Client(), r.Level, rng),
	}
}

// NewMeterOnly attaches a pure throughput meter for session data on host.
func NewMeterOnly(host *netsim.Host, sess *core.Session) *stats.Meter {
	m := stats.NewMeter(sim.Second)
	host.HandleAll(func(pkt *packet.Packet) {
		if h, ok := pkt.Header.(*packet.FLIDHeader); ok && h.Session == sess.ID {
			m.Add(host.Scheduler().Now(), pkt.Size)
		}
	})
	return m
}
