package flid

import (
	"deltasigma/internal/core"
	"deltasigma/internal/keys"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// Attacker is the inflated-subscription misbehaver of §2.1 against plain
// FLID-DL: it behaves like a normal receiver until Inflate is called, then
// joins every group of the session through IGMP and ignores congestion
// forever after — the Figure 1 attack.
type Attacker struct {
	*Receiver
	igmpAtk  *mcast.Client
	inflated bool
}

// NewAttacker builds a DL attacker on host.
func NewAttacker(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Attacker {
	return &Attacker{
		Receiver: NewReceiver(host, sess, routerAddr),
		igmpAtk:  mcast.NewClient(host, routerAddr),
	}
}

// Inflate switches the receiver to full-subscription misbehaviour.
func (a *Attacker) Inflate() {
	if a.inflated {
		return
	}
	a.inflated = true
	// Stop the well-behaved control loop, then grab everything. Stop()
	// leaves the current groups; rejoin them all unconditionally.
	a.Receiver.Stop()
	for g := 1; g <= a.Sess.Rates.N; g++ {
		a.igmpAtk.Join(a.Sess.GroupAddr(g))
	}
}

// Inflated reports whether the attack is active.
func (a *Attacker) Inflated() bool { return a.inflated }

// DSAttacker attacks a DELTA+SIGMA-protected session: it keeps a legitimate
// FLID-DS receiver running (its fair share — the attacker still wants the
// data) while trying to inflate by submitting guessed keys for every higher
// group each slot and by sending plain IGMP joins the SIGMA router ignores
// (§4.2, protection against attacks on SIGMA).
type DSAttacker struct {
	*DSReceiver
	igmpAtk *mcast.Client
	rng     *sim.RNG

	// GuessesPerSlot is y: how many random keys per group per slot the
	// attacker can afford to submit.
	GuessesPerSlot int

	inflated bool
	// Meters for the attack traffic are shared with the receiver's Meter.
	GuessesSent uint64
}

// NewDSAttacker builds a DS attacker on host.
func NewDSAttacker(host *netsim.Host, sess *core.Session, routerAddr packet.Addr, rng *sim.RNG) *DSAttacker {
	return &DSAttacker{
		DSReceiver:     NewDSReceiver(host, sess, routerAddr),
		igmpAtk:        mcast.NewClient(host, routerAddr),
		rng:            rng,
		GuessesPerSlot: 16,
	}
}

// Inflate begins the inflation attempts.
func (a *DSAttacker) Inflate() {
	if a.inflated {
		return
	}
	a.inflated = true
	// Plain IGMP joins: a SIGMA edge router confers nothing for them.
	for g := 1; g <= a.Sess.Rates.N; g++ {
		a.igmpAtk.Join(a.Sess.GroupAddr(g))
	}
	a.attackSlot()
}

// Inflated reports whether the attack is active.
func (a *DSAttacker) Inflated() bool { return a.inflated }

func (a *DSAttacker) attackSlot() {
	if !a.inflated {
		return
	}
	sched := a.host.Scheduler()
	cur := a.Sess.SlotAt(sched.Now())
	// Submit guessed keys for every group above the fair level, for the
	// next access slot.
	target := core.AccessSlot(cur)
	pairs := make([]packet.AddrKey, 0, a.Sess.Rates.N*a.GuessesPerSlot)
	for g := a.Level() + 1; g <= a.Sess.Rates.N; g++ {
		for i := 0; i < a.GuessesPerSlot; i++ {
			pairs = append(pairs, packet.AddrKey{
				Addr: a.Sess.GroupAddr(g),
				Key:  keys.Key(a.rng.Uint64()) & 0xffff,
			})
			a.GuessesSent++
		}
	}
	if len(pairs) > 0 {
		a.Client().Subscribe(target, pairs)
	}
	// Guess late in each slot, after the edge has the slot's announced keys
	// to check against (guesses against an empty key store are wasted).
	sched.At(a.Sess.SlotStart(cur+1)+7*a.Sess.SlotDur/10, func() { a.attackSlot() })
}

// NewMeterOnly attaches a pure throughput meter for session data on host.
func NewMeterOnly(host *netsim.Host, sess *core.Session) *stats.Meter {
	m := stats.NewMeter(sim.Second)
	host.HandleAll(func(pkt *packet.Packet) {
		if h, ok := pkt.Header.(*packet.FLIDHeader); ok && h.Session == sess.ID {
			m.Add(host.Scheduler().Now(), pkt.Size)
		}
	})
	return m
}
