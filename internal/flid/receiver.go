package flid

import (
	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// guardFraction is how far into the next slot a receiver waits before
// evaluating a slot, so in-flight and queue-delayed packets of the slot can
// still arrive. It must cover the worst-case bottleneck queueing delay (two
// bandwidth-RTT products ≈ 160 ms at §5.1 settings) or queue-delayed
// packets read as losses, yet leave enough of the slot for the subscription
// message to reach the edge before the access slot starts (Figure 2): 0.8
// of a 250 ms FLID-DS slot leaves ~40 ms for the local round trip.
const guardFraction = 0.8

// slotTally accumulates per-group receptions for one data slot.
type slotTally struct {
	got    []int
	expect []int
	inc    int
}

func newSlotTally(n int) *slotTally {
	return &slotTally{got: make([]int, n), expect: make([]int, n)}
}

func (t *slotTally) observe(h *packet.FLIDHeader) {
	g := int(h.Group)
	if g < 1 || g > len(t.got) {
		return
	}
	t.got[g-1]++
	t.expect[g-1] = int(h.Count)
	if int(h.IncreaseTo) > t.inc {
		t.inc = int(h.IncreaseTo)
	}
}

// lost reports whether group g (1-based) is missing packets.
func (t *slotTally) lost(g int) bool {
	return t.got[g-1] == 0 || t.got[g-1] < t.expect[g-1]
}

// Receiver is a well-behaved FLID-DL receiver: plain IGMP membership,
// decrease-on-loss, increase-on-signal (§3.1.1's subscription rules).
type Receiver struct {
	Sess *core.Session
	host *netsim.Host
	igmp *mcast.Client

	level      int
	joinedSlot []uint32 // data slot from which each group is fully counted
	tallies    map[uint32]*slotTally
	running    bool
	loop       *core.SlotLoop

	// Meter records delivered session bytes (the figures' throughput).
	Meter *stats.Meter
	// Decreases and Increases count subscription moves.
	Decreases, Increases uint64
}

// NewReceiver builds a FLID-DL receiver on host, managing membership
// through the edge router at routerAddr.
func NewReceiver(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Receiver {
	r := &Receiver{
		Sess:       sess,
		host:       host,
		igmp:       mcast.NewClient(host, routerAddr),
		joinedSlot: make([]uint32, sess.Rates.N+1),
		tallies:    make(map[uint32]*slotTally),
		Meter:      stats.NewMeter(sim.Second),
	}
	r.loop = core.NewSlotLoop(host.Scheduler(), sess,
		sim.Time(guardFraction*float64(sess.SlotDur)), r.onEval)
	host.Handle(packet.ProtoFLID, r.onData)
	return r
}

// Level reports the current subscription level.
func (r *Receiver) Level() int { return r.level }

// Start joins the session at the minimal level.
func (r *Receiver) Start() {
	if r.running {
		return
	}
	r.running = true
	cur := r.Sess.SlotAt(r.host.Scheduler().Now())
	r.level = 1
	r.joinedSlot[1] = cur + 1 // first fully observed slot
	r.igmp.Join(r.Sess.GroupAddr(1))
	r.loop.Schedule(cur)
}

// Stop leaves every group and halts evaluation.
func (r *Receiver) Stop() {
	if !r.running {
		return
	}
	r.running = false
	for g := 1; g <= r.level; g++ {
		r.igmp.Leave(r.Sess.GroupAddr(g))
	}
	r.level = 0
}

// onEval fires once per slot on the loop's reusable timer.
func (r *Receiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	r.evaluate(slot)
	return true
}

func (r *Receiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != r.Sess.ID {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	t := r.tallies[h.Slot]
	if t == nil {
		t = newSlotTally(r.Sess.Rates.N)
		r.tallies[h.Slot] = t
	}
	t.observe(h)
}

// evaluate applies the subscription rules to the finished slot.
func (r *Receiver) evaluate(slot uint32) {
	t := r.tallies[slot]
	delete(r.tallies, slot)
	for s := range r.tallies {
		if s+4 < slot {
			delete(r.tallies, s) // GC strays
		}
	}
	if r.level == 0 {
		return
	}
	if t == nil {
		t = newSlotTally(r.Sess.Rates.N)
	}

	loss := false
	for g := 1; g <= r.level; g++ {
		if r.joinedSlot[g] > slot {
			continue // not yet a full member for this slot
		}
		if t.lost(g) {
			loss = true
			break
		}
	}

	switch {
	case loss && r.level > 1:
		// Rule 2: a congested receiver of g groups must drop group g.
		r.igmp.Leave(r.Sess.GroupAddr(r.level))
		r.level--
		r.Decreases++
	case loss:
		// At the minimal level the receiver stays: the base layer is the
		// session's floor.
	case t.inc >= r.level+1 && r.level < r.Sess.Rates.N:
		// Rule 3: an authorized uncongested receiver adds one group.
		r.level++
		r.joinedSlot[r.level] = slot + 2 // join mid-slot+1: first full slot
		r.igmp.Join(r.Sess.GroupAddr(r.level))
		r.Increases++
	}
}
