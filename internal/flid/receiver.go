package flid

import (
	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// guardFraction is how far into the next slot a receiver waits before
// evaluating a slot, so in-flight and queue-delayed packets of the slot can
// still arrive. It must cover the worst-case bottleneck queueing delay (two
// bandwidth-RTT products ≈ 160 ms at §5.1 settings) or queue-delayed
// packets read as losses, yet leave enough of the slot for the subscription
// message to reach the edge before the access slot starts (Figure 2): 0.8
// of a 250 ms FLID-DS slot leaves ~40 ms for the local round trip.
const guardFraction = 0.8

// Receiver is a well-behaved FLID-DL receiver: plain IGMP membership,
// decrease-on-loss, increase-on-signal (§3.1.1's subscription rules). Its
// per-slot state — subscription level, probation clocks, tallies — lives
// in the session's shared struct-of-arrays batch (see batch.go); the
// receiver itself is the index into it plus the pieces that stay per
// receiver: membership client, meter, move counters.
type Receiver struct {
	Sess *core.Session
	host *netsim.Host
	igmp *mcast.Client

	b       *dlBatch
	mi      int
	running bool
	loop    *core.SlotLoop

	// Meter records delivered session bytes (the figures' throughput).
	Meter *stats.Meter
	// Decreases and Increases count subscription moves.
	Decreases, Increases uint64
}

// NewReceiver builds a FLID-DL receiver on host, managing membership
// through the edge router at routerAddr.
func NewReceiver(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Receiver {
	r := &Receiver{
		Sess:  sess,
		host:  host,
		igmp:  mcast.NewClient(host, routerAddr),
		b:     dlBatchFor(host.Scheduler(), sess),
		Meter: stats.NewMeter(sim.Second),
	}
	r.mi = r.b.join()
	r.loop = core.NewSlotLoop(host.Scheduler(), sess,
		sim.Time(guardFraction*float64(sess.SlotDur)), r.onEval)
	host.Handle(packet.ProtoFLID, r.onData)
	return r
}

// Level reports the current subscription level.
func (r *Receiver) Level() int { return int(r.b.level[r.mi]) }

// Start joins the session at the minimal level.
func (r *Receiver) Start() {
	if r.running {
		return
	}
	r.running = true
	cur := r.Sess.SlotAt(r.host.Scheduler().Now())
	r.b.level[r.mi] = 1
	r.b.joined[r.mi*(r.b.n+1)+1] = cur + 1 // first fully observed slot
	r.igmp.Join(r.Sess.GroupAddr(1))
	r.loop.Schedule(cur)
}

// Stop leaves every group and halts evaluation.
func (r *Receiver) Stop() {
	if !r.running {
		return
	}
	r.running = false
	for g := 1; g <= int(r.b.level[r.mi]); g++ {
		r.igmp.Leave(r.Sess.GroupAddr(g))
	}
	r.b.level[r.mi] = 0
}

// onEval fires once per slot, batched behind the session's slot driver.
func (r *Receiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	r.evaluate(slot)
	return true
}

func (r *Receiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != r.Sess.ID {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	r.b.observe(r.mi, h)
}

// evaluate applies the subscription rules to the finished slot.
func (r *Receiver) evaluate(slot uint32) {
	b, mi := r.b, r.mi
	ri := mi*tallyW + int(slot&(tallyW-1))
	base := ri * b.n
	has := b.tag[ri] == slot // any packet of the slot tallied (slot 0: zero state reads as an empty tally, like a missing map entry)
	b.evalFloor[mi] = slot + 1

	lvl := int(b.level[mi])
	if lvl == 0 {
		return
	}

	joined := b.joined[mi*(b.n+1):]
	loss := false
	for g := 1; g <= lvl; g++ {
		if joined[g] > slot {
			continue // not yet a full member for this slot
		}
		if !has || b.got[base+g-1] == 0 || b.got[base+g-1] < b.expect[base+g-1] {
			loss = true
			break
		}
	}
	inc := 0
	if has {
		inc = int(b.inc[ri])
	}

	switch {
	case loss && lvl > 1:
		// Rule 2: a congested receiver of g groups must drop group g.
		r.igmp.Leave(r.Sess.GroupAddr(lvl))
		b.level[mi]--
		r.Decreases++
	case loss:
		// At the minimal level the receiver stays: the base layer is the
		// session's floor.
	case inc >= lvl+1 && lvl < b.n:
		// Rule 3: an authorized uncongested receiver adds one group.
		lvl++
		b.level[mi] = int32(lvl)
		joined[lvl] = slot + 2 // join mid-slot+1: first full slot
		r.igmp.Join(r.Sess.GroupAddr(lvl))
		r.Increases++
	}
}
