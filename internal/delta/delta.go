// Package delta implements DELTA (Distribution of ELigibility To Access),
// the paper's in-band key distribution method (§3.1): the sender spreads
// dynamic group keys over the data packets of a time slot so that a
// receiver can reconstruct exactly the keys its congestion state entitles
// it to under the protocol's subscription rules:
//
//  1. an uncongested receiver obtains updated keys for its current
//     subscription level,
//  2. a congested receiver obtains updated keys for a lower level, and
//  3. when authorized, an uncongested receiver obtains an updated key for
//     a higher level.
//
// Three instantiations are provided, mirroring §3.1.1–3.1.2:
//
//   - LayeredSender/LayeredReceiver — cumulative layered multicast where a
//     single packet loss means congestion (FLID-DL, RLC); Figure 4.
//   - ReplicatedSender/ReplicatedReceiver — replicated multicast where each
//     level is a single group (destination-set grouping); Figure 5.
//   - ThresholdSender/ThresholdReceiver — loss-rate-threshold protocols
//     (RLM, MLDA, WEBRC) using Shamir (k,n) sharing; equations 7–9.
//
// The ECN adaptation (edge routers scrub the component field of marked
// packets) lives in ScrubComponent.
package delta

import (
	"fmt"

	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
)

// SlotKeys holds every key guarding one session's groups for one time slot:
// the Figure 3 table. Indexing is 1-based group number g mapped to slice
// index g−1.
type SlotKeys struct {
	Slot uint32
	// Top[g-1] is α_g: XOR of the component fields of all packets of the
	// subscription level (Eq. 3 layered, Eq. 6 replicated).
	Top []keys.Key
	// Dec[g-1] is δ_g, the decrease key opening group g, carried in the
	// decrease field of every group-(g+1) packet (Eq. 4). Defined for
	// g = 1..N−1.
	Dec []keys.Key
	// Inc[g-1] is ε_g, the increase key opening group g, reconstructable
	// from the components of the level below (Eq. 5). Meaningful only
	// where Auth[g-1] is set; defined for g = 2..N.
	Inc []keys.Key
	// Auth[g-1] reports whether the protocol authorized an upgrade to
	// group g during this slot.
	Auth []bool
}

// Groups reports N, the number of groups in the session.
func (k *SlotKeys) Groups() int { return len(k.Top) }

// Opens reports whether key opens group g (1-based) in this slot: it must
// match the top key, the decrease key, or — when an upgrade to g was
// authorized — the increase key. This is the validation edge routers run.
func (k *SlotKeys) Opens(g int, key keys.Key) bool {
	if g < 1 || g > len(k.Top) {
		return false
	}
	if key == k.Top[g-1] {
		return true
	}
	if g-1 < len(k.Dec) && key == k.Dec[g-1] {
		return true
	}
	if g >= 2 && k.Auth[g-1] && key == k.Inc[g-1] {
		return true
	}
	return false
}

// Tuples renders the slot's keys as SIGMA address-key tuples for a session
// whose group g has address base+g−1 (§3.2.1).
func (k *SlotKeys) Tuples(base packet.Addr) []packet.KeyTuple {
	n := len(k.Top)
	out := make([]packet.KeyTuple, n)
	for g := 1; g <= n; g++ {
		t := packet.KeyTuple{Addr: packet.Group(base, g-1), Top: k.Top[g-1]}
		if g-1 < len(k.Dec) {
			t.Dec = k.Dec[g-1]
			t.HasDec = true
		}
		if g >= 2 && k.Auth[g-1] {
			t.Inc = k.Inc[g-1]
			t.HasInc = true
		}
		out[g-1] = t
	}
	return out
}

// Outcome is what a receiver-side DELTA instantiation concludes at the end
// of a time slot: the next subscription level the receiver is entitled to
// and the keys proving it.
type Outcome struct {
	Slot uint32
	// Congested reports whether the protocol's congestion predicate held
	// during the slot.
	Congested bool
	// Next is the entitled next top group (1-based). Zero means the
	// receiver could not even keep the minimal group and must rejoin the
	// session from scratch.
	Next int
	// Keys maps each group of the entitled subscription to the
	// reconstructed key that opens it.
	Keys map[int]keys.Key
}

func checkGroupCount(n int) {
	if n < 1 || n > 255 {
		panic(fmt.Sprintf("delta: session with %d groups out of [1,255]", n))
	}
}
