package delta

import (
	"fmt"

	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
)

// LayeredSender implements the sender half of the Figure 4 DELTA
// instantiation for cumulative layered multicast protocols that define
// congestion as a single packet loss (FLID-DL, RLC).
//
// Per time slot the sender precomputes every key before transmitting a
// single packet (the property that lets SIGMA announce keys to edge routers
// ahead of the data), then generates component fields in real time:
// each non-final packet of group g carries a fresh nonce, and the final
// packet carries the closing value that makes the XOR of all of group g's
// components equal the group's secret X_g. Top keys are prefix XORs of the
// X_g, increase keys are the next-lower top key, and decrease keys are
// dedicated nonces carried in the decrease field one group up.
type LayeredSender struct {
	n   int
	src *keys.Source
}

// NewLayeredSender builds a sender-side instantiation for a session with n
// groups, minting nonces from src.
func NewLayeredSender(n int, src *keys.Source) *LayeredSender {
	checkGroupCount(n)
	return &LayeredSender{n: n, src: src}
}

// Groups reports the session's group count.
func (s *LayeredSender) Groups() int { return s.n }

// LayeredSlot is the per-slot state of a LayeredSender: the precomputed
// keys plus the real-time component generators.
type LayeredSlot struct {
	Keys SlotKeys

	src       *keys.Source
	accum     []keys.Key // C_g of Figure 4: the running closing value
	remaining []int      // packets left to emit per group
	counts    []int
}

// BeginSlot precomputes the keys for one slot. auth[g-1] declares whether
// the protocol authorizes an upgrade to group g this slot (auth[0] is
// ignored: there is no upgrade to the minimal group). counts[g-1] is the
// number of packets group g will transmit this slot; every group must send
// at least one packet so its key components can travel.
func (s *LayeredSender) BeginSlot(slot uint32, auth []bool, counts []int) *LayeredSlot {
	if len(auth) != s.n || len(counts) != s.n {
		panic(fmt.Sprintf("delta: BeginSlot with %d auth / %d counts for %d groups", len(auth), len(counts), s.n))
	}
	ls := &LayeredSlot{
		src:       s.src,
		accum:     make([]keys.Key, s.n),
		remaining: make([]int, s.n),
		counts:    make([]int, s.n),
	}
	ls.Keys = SlotKeys{
		Slot: slot,
		Top:  make([]keys.Key, s.n),
		Dec:  make([]keys.Key, max(s.n-1, 0)),
		Inc:  make([]keys.Key, s.n),
		Auth: make([]bool, s.n),
	}
	for g := 1; g <= s.n; g++ {
		if counts[g-1] < 1 {
			panic(fmt.Sprintf("delta: group %d scheduled %d packets; need >= 1", g, counts[g-1]))
		}
		ls.remaining[g-1] = counts[g-1]
		ls.counts[g-1] = counts[g-1]
		// C_g ← nonce; this initial nonce is the group secret X_g, because
		// the closing component cancels every later nonce folded into C_g.
		ls.accum[g-1] = s.src.Nonce()
		if g == 1 {
			ls.Keys.Top[0] = ls.accum[0]
		} else {
			ls.Keys.Top[g-1] = keys.XOR(ls.Keys.Top[g-2], ls.accum[g-1])
			ls.Keys.Dec[g-2] = s.src.Nonce() // δ_{g-1}, carried as d_g
			if auth[g-1] {
				ls.Keys.Auth[g-1] = true
				ls.Keys.Inc[g-1] = ls.Keys.Top[g-2] // ε_g = α_{g-1}
			}
		}
	}
	return ls
}

// Fields returns the component and decrease fields for the next packet of
// group g (1-based). It must be called exactly counts[g-1] times per slot
// per group; the final call emits the closing component. The decrease field
// d_g is δ_{g-1} for g ≥ 2 and zero for the minimal group.
func (ls *LayeredSlot) Fields(g int) (component, decrease keys.Key) {
	idx := g - 1
	if ls.remaining[idx] <= 0 {
		panic(fmt.Sprintf("delta: group %d exceeded its %d scheduled packets", g, ls.counts[idx]))
	}
	ls.remaining[idx]--
	if g >= 2 {
		decrease = ls.Keys.Dec[g-2]
	}
	if ls.remaining[idx] == 0 {
		// Last packet carries the accumulated closing value C_g.
		return ls.accum[idx], decrease
	}
	c := ls.src.Nonce()
	ls.accum[idx] = keys.XOR(ls.accum[idx], c)
	return c, decrease
}

// Done reports whether every scheduled packet of every group has had its
// fields generated.
func (ls *LayeredSlot) Done() bool {
	for _, r := range ls.remaining {
		if r != 0 {
			return false
		}
	}
	return true
}

// LayeredReceiver implements the receiver half of Figure 4: it accumulates
// the component and decrease fields observed during a slot and, at slot
// end, derives the receiver's entitled next level and the keys for it.
type LayeredReceiver struct {
	n    int
	slot uint32

	comp      []keys.Accumulator // XOR of received component fields per group
	got       []int              // packets received per group
	expect    []int              // Count field per group (0 = never seen)
	dec       []keys.Key         // δ_{g-1} seen in group-g packets (index g-1)
	haveDec   []bool
	increase  int  // highest group an upgrade was authorized to (from headers)
	sawMarked bool // an ECN CE mark counts as congestion for ECN-driven protocols
}

// NewLayeredReceiver builds the receiver-side instantiation for a session
// with n groups.
func NewLayeredReceiver(n int) *LayeredReceiver {
	checkGroupCount(n)
	r := &LayeredReceiver{n: n}
	r.alloc()
	return r
}

func (r *LayeredReceiver) alloc() {
	r.comp = make([]keys.Accumulator, r.n)
	r.got = make([]int, r.n)
	r.expect = make([]int, r.n)
	r.dec = make([]keys.Key, r.n)
	r.haveDec = make([]bool, r.n)
	r.increase = 0
	r.sawMarked = false
}

// Begin resets the receiver for a new slot.
func (r *LayeredReceiver) Begin(slot uint32) {
	r.slot = slot
	clear(r.comp)
	clear(r.got)
	clear(r.expect)
	clear(r.dec)
	clear(r.haveDec)
	r.increase = 0
	r.sawMarked = false
}

// Slot reports the slot currently being accumulated.
func (r *LayeredReceiver) Slot() uint32 { return r.slot }

// Observe folds one received data packet into the slot state. Packets from
// other slots are ignored (they belong to the neighbouring slot's
// accumulator). marked reports an ECN CE mark on the packet.
func (r *LayeredReceiver) Observe(h *packet.FLIDHeader, marked bool) {
	if h.Slot != r.slot {
		return
	}
	g := int(h.Group)
	if g < 1 || g > r.n {
		return
	}
	r.got[g-1]++
	r.expect[g-1] = int(h.Count)
	r.comp[g-1].Add(h.Component)
	if g >= 2 {
		r.dec[g-1] = h.Decrease
		r.haveDec[g-1] = true
	}
	if int(h.IncreaseTo) > r.increase {
		r.increase = int(h.IncreaseTo)
	}
	if marked {
		r.sawMarked = true
	}
}

// Received reports how many packets arrived for group g this slot.
func (r *LayeredReceiver) Received(g int) int { return r.got[g-1] }

// lost reports whether group g (1-based) lost at least one packet this
// slot. A group from which nothing arrived counts as lossy: the sender
// guarantees at least one packet per group per slot.
func (r *LayeredReceiver) lost(g int) bool {
	if r.got[g-1] == 0 {
		return true
	}
	return r.got[g-1] < r.expect[g-1]
}

// Finish concludes the slot for a receiver whose current subscription is
// groups 1..top and returns its entitlement. ecnMode makes CE marks count
// as congestion (the ECN-driven protocol family of §3.1.2).
func (r *LayeredReceiver) Finish(top int, ecnMode bool) Outcome {
	if top < 1 {
		panic("delta: Finish with no current subscription")
	}
	if top > r.n {
		top = r.n
	}
	out := Outcome{Slot: r.slot, Keys: make(map[int]keys.Key)}

	lossy := -1 // highest lossy group ≤ top; -1 = none
	nLossy := 0
	for g := 1; g <= top; g++ {
		if r.lost(g) {
			lossy = g
			nLossy++
		}
	}
	congested := nLossy > 0 || (ecnMode && r.sawMarked)

	// lowerKeys fills out.Keys[1..m] from decrease fields; the key for
	// group j travels in group j+1's packets, so it is available only while
	// packets from each group above kept arriving.
	lowerKeys := func(m int) int {
		for j := 1; j <= m; j++ {
			if !r.haveDec[j] { // note: haveDec[j] ⇔ a packet of group j+1 arrived
				return j - 1
			}
			out.Keys[j] = r.dec[j]
		}
		return m
	}

	if !congested {
		out.Congested = false
		// u_g: XOR of every component of groups 1..top = α_top.
		var alpha keys.Key
		for g := 1; g <= top; g++ {
			alpha = keys.XOR(alpha, r.comp[g-1].Sum())
		}
		reach := lowerKeys(top - 1)
		if reach == top-1 {
			out.Keys[top] = alpha
			out.Next = top
			if top < r.n && r.increase >= top+1 {
				// ε_{top+1} = α_top: the same value opens the next group.
				out.Keys[top+1] = alpha
				out.Next = top + 1
			}
		} else {
			// No loss, yet a decrease field is missing — can only happen
			// when a group legitimately sent zero... the sender forbids
			// that, so treat as congestion-equivalent demotion.
			out.Next = reach
		}
		return out
	}

	out.Congested = true

	// Contradiction resolution (§3.1.1): when the only lossy group is the
	// top one and the protocol authorized an upgrade *to* the top group,
	// the receiver reconstructs ε_top = α_{top-1} from the clean lower
	// groups and keeps its subscription — this also synchronizes receivers
	// behind a shared bottleneck.
	if nLossy == 1 && lossy == top && top >= 2 && r.increase >= top && !(ecnMode && r.sawMarked) {
		var alpha keys.Key
		for g := 1; g < top; g++ {
			alpha = keys.XOR(alpha, r.comp[g-1].Sum())
		}
		reach := lowerKeys(top - 1)
		if reach == top-1 {
			out.Keys[top] = alpha
			out.Next = top
			return out
		}
		// Fall through to the plain congested path with partial keys.
		out.Keys = make(map[int]keys.Key)
	}

	// Plain decrease: entitled to groups 1..top−1, bounded by how far the
	// decrease-field chain reaches (a group that lost *all* packets breaks
	// the chain below it — "forced to reduce by more than one group").
	out.Next = lowerKeys(top - 1)
	return out
}
