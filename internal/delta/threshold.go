package delta

import (
	"fmt"
	"math"

	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
	"deltasigma/internal/shamir"
)

// ThresholdSender implements the §3.1.2 DELTA instantiation for protocols
// that declare a receiver congested only when its loss rate exceeds a
// per-level threshold (RLM's 25%, MLDA/WEBRC's level-graded thresholds).
//
// The key for level g is Shamir-shared over the n_g packets the level's
// group transmits during the slot with threshold k_g = ⌈(1−thresh_g)·n_g⌉:
// a receiver reconstructs the key exactly when its loss rate at that level
// stayed within the protocol's tolerance (equations 7–9). When the protocol
// authorizes an upgrade to level g+1, the increase key ε_{g+1} is shared
// over level g's packets the same way.
//
// Lower levels need no dedicated decrease key: their own shared keys are
// already loss-tolerant, so a congested receiver reconstructs the keys of
// every level whose threshold it still meets.
//
// The paper notes that sharing components *across* cumulative levels (so a
// level-g key could reuse lower-group packets) is an open problem; like the
// paper, each level's shares ride only on its own group's packets, and the
// rejected all-levels-per-packet design is quantified analytically in the
// overhead benchmarks.
type ThresholdSender struct {
	n        int
	src      *keys.Source
	splitter *shamir.Splitter
	thresh   []float64 // loss-rate threshold per level, e.g. 0.25
}

// NewThresholdSender builds a sender for n levels with the given per-level
// loss-rate thresholds (thresh[g-1] ∈ [0,1)).
func NewThresholdSender(n int, thresh []float64, src *keys.Source, splitter *shamir.Splitter) *ThresholdSender {
	checkGroupCount(n)
	if len(thresh) != n {
		panic(fmt.Sprintf("delta: %d thresholds for %d levels", len(thresh), n))
	}
	for g, th := range thresh {
		if th < 0 || th >= 1 {
			panic(fmt.Sprintf("delta: threshold %v for level %d out of [0,1)", th, g+1))
		}
	}
	return &ThresholdSender{n: n, src: src, splitter: splitter, thresh: thresh}
}

// ShareThreshold returns k_g for a level transmitting count packets:
// the number of packets a receiver must catch to reconstruct the key.
func (s *ThresholdSender) ShareThreshold(g, count int) int {
	k := int(math.Ceil((1 - s.thresh[g-1]) * float64(count)))
	if k < 1 {
		k = 1
	}
	if k > count {
		k = count
	}
	return k
}

// ThresholdSlot is the per-slot state: sampled polynomials per level plus
// emission cursors.
type ThresholdSlot struct {
	Keys SlotKeys

	sender *ThresholdSender
	polys  []*shamir.Polynomial // level key polynomials
	ups    []*shamir.Polynomial // ups[g-1]: ε_{g+1} shared over level g packets (nil unless authorized)
	seq    []uint32             // next share index per level
	counts []int
}

// BeginSlot samples the slot's polynomials. auth[g-1] authorizes an upgrade
// to level g; counts[g-1] is the packet count of level g this slot.
func (s *ThresholdSender) BeginSlot(slot uint32, auth []bool, counts []int) (*ThresholdSlot, error) {
	if len(auth) != s.n || len(counts) != s.n {
		panic(fmt.Sprintf("delta: BeginSlot with %d auth / %d counts for %d levels", len(auth), len(counts), s.n))
	}
	ts := &ThresholdSlot{
		sender: s,
		polys:  make([]*shamir.Polynomial, s.n),
		ups:    make([]*shamir.Polynomial, s.n),
		seq:    make([]uint32, s.n),
		// Copy: callers reuse their counts scratch across slots, and the
		// sibling Layered/Replicated BeginSlot implementations copy too.
		counts: append([]int(nil), counts...),
	}
	ts.Keys = SlotKeys{
		Slot: slot,
		Top:  make([]keys.Key, s.n),
		Dec:  make([]keys.Key, max(s.n-1, 0)), // unused: zero-valued, never submitted
		Inc:  make([]keys.Key, s.n),
		Auth: make([]bool, s.n),
	}
	for g := 1; g <= s.n; g++ {
		if counts[g-1] < 1 {
			return nil, fmt.Errorf("delta: level %d scheduled %d packets", g, counts[g-1])
		}
		secret := s.src.Nonce()
		ts.Keys.Top[g-1] = secret
		poly, err := s.splitter.Sample(uint64(secret), s.ShareThreshold(g, counts[g-1]))
		if err != nil {
			return nil, err
		}
		ts.polys[g-1] = poly
	}
	for g := 2; g <= s.n; g++ {
		if !auth[g-1] {
			continue
		}
		ts.Keys.Auth[g-1] = true
		ts.Keys.Inc[g-1] = s.src.Nonce()
		// ε_g rides on level g−1's packets with level g−1's threshold.
		poly, err := s.splitter.Sample(uint64(ts.Keys.Inc[g-1]), s.ShareThreshold(g-1, counts[g-2]))
		if err != nil {
			return nil, err
		}
		ts.ups[g-2] = poly
	}
	return ts, nil
}

// Shares returns the level-key share and (possibly zero) upgrade-key share
// for the next packet of level g. Must be called once per scheduled packet.
func (ts *ThresholdSlot) Shares(g int) (share, upShare shamir.Share) {
	idx := g - 1
	if int(ts.seq[idx]) >= ts.counts[idx] {
		panic(fmt.Sprintf("delta: level %d exceeded its %d scheduled packets", g, ts.counts[idx]))
	}
	ts.seq[idx]++
	x := ts.seq[idx] // 1-based share coordinate
	share = ts.polys[idx].ShareAt(x)
	if ts.ups[idx] != nil {
		upShare = ts.ups[idx].ShareAt(x)
	}
	return share, upShare
}

// ThresholdReceiver accumulates shares per level and reconstructs the keys
// the receiver's loss rates entitle it to.
type ThresholdReceiver struct {
	n      int
	thresh []float64
	slot   uint32

	shares   [][]shamir.Share
	upShares [][]shamir.Share
	got      []int
	expect   []int
	increase int
}

// NewThresholdReceiver builds a receiver for n levels with the protocol's
// per-level loss thresholds (which receivers know a priori).
func NewThresholdReceiver(n int, thresh []float64) *ThresholdReceiver {
	checkGroupCount(n)
	if len(thresh) != n {
		panic(fmt.Sprintf("delta: %d thresholds for %d levels", len(thresh), n))
	}
	r := &ThresholdReceiver{n: n, thresh: thresh}
	r.Begin(0)
	return r
}

// Begin resets the receiver for a new slot.
func (r *ThresholdReceiver) Begin(slot uint32) {
	r.slot = slot
	r.shares = make([][]shamir.Share, r.n)
	r.upShares = make([][]shamir.Share, r.n)
	r.got = make([]int, r.n)
	r.expect = make([]int, r.n)
	r.increase = 0
}

// Observe folds one received packet into the slot state.
func (r *ThresholdReceiver) Observe(h *packet.FLIDHeader) {
	if h.Slot != r.slot {
		return
	}
	g := int(h.Group)
	if g < 1 || g > r.n {
		return
	}
	idx := g - 1
	r.got[idx]++
	r.expect[idx] = int(h.Count)
	if h.ShareX != 0 {
		r.shares[idx] = append(r.shares[idx], shamir.Share{X: h.ShareX, Y: h.ShareY})
	}
	if h.UpShareX != 0 {
		r.upShares[idx] = append(r.upShares[idx], shamir.Share{X: h.UpShareX, Y: h.UpShareY})
	}
	if int(h.IncreaseTo) > r.increase {
		r.increase = int(h.IncreaseTo)
	}
}

// need returns k_g given the expected count for the level.
func (r *ThresholdReceiver) need(g int) int {
	k := int(math.Ceil((1 - r.thresh[g-1]) * float64(r.expect[g-1])))
	if k < 1 {
		k = 1
	}
	return k
}

// reconstruct attempts to recover the key of level g from the first k
// shares gathered.
func (r *ThresholdReceiver) reconstruct(g int, up bool) (keys.Key, bool) {
	idx := g - 1
	pool := r.shares[idx]
	if up {
		pool = r.upShares[idx]
	}
	if r.expect[idx] == 0 {
		return 0, false
	}
	k := r.need(g)
	if len(pool) < k {
		return 0, false
	}
	secret, err := shamir.Reconstruct(pool[:k])
	if err != nil {
		return 0, false
	}
	return keys.Key(secret), true
}

// Finish concludes the slot for a receiver subscribed to levels 1..top.
// The receiver is congested when level top's loss rate exceeded its
// threshold; its entitled next level is the highest contiguous prefix of
// levels whose keys it reconstructed, plus one more when an upgrade was
// authorized and the upgrade key came through.
func (r *ThresholdReceiver) Finish(top int) Outcome {
	if top < 1 || top > r.n {
		panic(fmt.Sprintf("delta: threshold Finish with top %d of %d", top, r.n))
	}
	out := Outcome{Slot: r.slot, Keys: make(map[int]keys.Key)}
	out.Congested = r.got[top-1] < r.need(top) || r.expect[top-1] == 0

	reach := 0
	for g := 1; g <= top; g++ {
		key, ok := r.reconstruct(g, false)
		if !ok {
			break
		}
		out.Keys[g] = key
		reach = g
	}
	out.Next = reach
	if reach == top && !out.Congested && top < r.n && r.increase >= top+1 {
		if up, ok := r.reconstruct(top, true); ok {
			out.Keys[top+1] = up
			out.Next = top + 1
		}
	}
	// Trim keys above the entitled level (a break in the middle leaves
	// stale higher keys out already; this guards the upgrade path).
	for g := range out.Keys {
		if g > out.Next {
			delete(out.Keys, g)
		}
	}
	return out
}
