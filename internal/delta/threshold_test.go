package delta

import (
	"testing"

	"deltasigma/internal/packet"
	"deltasigma/internal/shamir"
	"deltasigma/internal/sim"
)

func newThresholdPair(n int, thresh []float64, seed uint64) (*ThresholdSender, *ThresholdReceiver) {
	rng := sim.NewRNG(seed)
	src := newSource(seed)
	s := NewThresholdSender(n, thresh, src, shamir.NewSplitter(rng.Uint64))
	r := NewThresholdReceiver(n, thresh)
	return s, r
}

func emitThresholdSlot(t *testing.T, s *ThresholdSender, slot uint32, auth []bool, counts []int) (*ThresholdSlot, [][]*packet.FLIDHeader) {
	t.Helper()
	ts, err := s.BeginSlot(slot, auth, counts)
	if err != nil {
		t.Fatal(err)
	}
	inc := uint8(0)
	for a := len(auth); a >= 2; a-- {
		if auth[a-1] {
			inc = uint8(a)
			break
		}
	}
	headers := make([][]*packet.FLIDHeader, len(counts))
	for g := 1; g <= len(counts); g++ {
		for p := 1; p <= counts[g-1]; p++ {
			share, up := ts.Shares(g)
			headers[g-1] = append(headers[g-1], &packet.FLIDHeader{
				Session: 1, Group: uint8(g), Slot: slot,
				Seq: uint16(p), Count: uint16(counts[g-1]), IncreaseTo: inc,
				ShareX: share.X, ShareY: share.Y,
				UpShareX: up.X, UpShareY: up.Y,
			})
		}
	}
	return ts, headers
}

func rlmThresholds(n int) []float64 {
	th := make([]float64, n)
	for i := range th {
		th[i] = 0.25 // RLM's default per-level threshold (§3.1.2)
	}
	return th
}

func TestShareThresholdMath(t *testing.T) {
	s, _ := newThresholdPair(3, rlmThresholds(3), 50)
	// 25% tolerance over 20 packets: need 15.
	if k := s.ShareThreshold(1, 20); k != 15 {
		t.Fatalf("k = %d, want 15", k)
	}
	if k := s.ShareThreshold(1, 1); k != 1 {
		t.Fatalf("k = %d, want 1", k)
	}
	if k := s.ShareThreshold(1, 4); k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
}

func TestThresholdLossWithinToleranceKeepsKey(t *testing.T) {
	s, r := newThresholdPair(3, rlmThresholds(3), 51)
	ts, headers := emitThresholdSlot(t, s, 1, auths(3, 0), countsOf(3, 20))
	r.Begin(1)
	// Drop 4 of 20 packets (20% < 25%) at the top level; lower levels clean.
	for g, hs := range headers {
		for i, h := range hs {
			if g == 2 && i%5 == 0 {
				continue
			}
			r.Observe(h)
		}
	}
	out := r.Finish(3)
	if out.Congested {
		t.Fatal("20% loss under a 25% threshold should not be congestion")
	}
	if out.Next != 3 {
		t.Fatalf("Next = %d, want 3", out.Next)
	}
	for g := 1; g <= 3; g++ {
		if !ts.Keys.Opens(g, out.Keys[g]) {
			t.Fatalf("key for level %d invalid", g)
		}
	}
}

func TestThresholdLossAboveToleranceDeniesKey(t *testing.T) {
	s, r := newThresholdPair(3, rlmThresholds(3), 52)
	ts, headers := emitThresholdSlot(t, s, 1, auths(3, 0), countsOf(3, 20))
	r.Begin(1)
	// Drop 8 of 20 (40% > 25%) at level 3.
	for g, hs := range headers {
		for i, h := range hs {
			if g == 2 && i < 8 {
				continue
			}
			r.Observe(h)
		}
	}
	out := r.Finish(3)
	if !out.Congested {
		t.Fatal("40% loss over a 25% threshold must be congestion")
	}
	if out.Next != 2 {
		t.Fatalf("Next = %d, want 2", out.Next)
	}
	if k, ok := out.Keys[3]; ok && ts.Keys.Opens(3, k) {
		t.Fatal("receiver above threshold still got the level key")
	}
	for g := 1; g <= 2; g++ {
		if !ts.Keys.Opens(g, out.Keys[g]) {
			t.Fatalf("lower key for level %d invalid", g)
		}
	}
}

func TestThresholdUpgradeKey(t *testing.T) {
	s, r := newThresholdPair(3, rlmThresholds(3), 53)
	ts, headers := emitThresholdSlot(t, s, 1, auths(3, 3), countsOf(3, 20))
	r.Begin(1)
	for g, hs := range headers {
		if g >= 2 {
			break // receiver subscribed to levels 1..2
		}
		for _, h := range hs {
			r.Observe(h)
		}
	}
	out := r.Finish(2)
	if out.Next != 3 {
		t.Fatalf("Next = %d, want upgrade to 3", out.Next)
	}
	if !ts.Keys.Opens(3, out.Keys[3]) {
		t.Fatal("upgrade key invalid")
	}
}

func TestThresholdUpgradeDeniedWhenLossy(t *testing.T) {
	s, r := newThresholdPair(3, rlmThresholds(3), 54)
	ts, headers := emitThresholdSlot(t, s, 1, auths(3, 3), countsOf(3, 20))
	r.Begin(1)
	for g, hs := range headers {
		if g >= 2 {
			break
		}
		for i, h := range hs {
			if g == 1 && i < 8 { // 40% loss at level 2
				continue
			}
			r.Observe(h)
		}
	}
	out := r.Finish(2)
	if out.Next != 1 {
		t.Fatalf("Next = %d, want 1", out.Next)
	}
	if k, ok := out.Keys[3]; ok && ts.Keys.Opens(3, k) {
		t.Fatal("lossy receiver obtained the upgrade key")
	}
}

func TestThresholdGradedPerLevel(t *testing.T) {
	// WEBRC-style: tighter thresholds at higher levels. A 15% loss rate is
	// tolerable at level 1 (25%) but congestion at level 3 (10%).
	th := []float64{0.25, 0.15, 0.10}
	s, r := newThresholdPair(3, th, 55)
	ts, headers := emitThresholdSlot(t, s, 1, auths(3, 0), countsOf(3, 20))
	r.Begin(1)
	for g, hs := range headers {
		for i, h := range hs {
			if i < 3 && g <= 2 { // 15% loss at every subscribed level
				continue
			}
			_ = g
			r.Observe(h)
		}
	}
	out := r.Finish(3)
	if !out.Congested {
		t.Fatal("15% loss over the 10% level-3 threshold must be congestion")
	}
	if out.Next != 2 {
		t.Fatalf("Next = %d, want 2", out.Next)
	}
	for g := 1; g <= 2; g++ {
		if !ts.Keys.Opens(g, out.Keys[g]) {
			t.Fatalf("key for level %d invalid", g)
		}
	}
}

func TestThresholdNothingReceived(t *testing.T) {
	s, r := newThresholdPair(2, rlmThresholds(2), 56)
	_, _ = emitThresholdSlot(t, s, 1, auths(2, 0), countsOf(2, 10))
	r.Begin(1)
	out := r.Finish(2)
	if out.Next != 0 || len(out.Keys) != 0 {
		t.Fatalf("outcome %+v, want nothing", out)
	}
}

func TestThresholdValidation(t *testing.T) {
	rng := sim.NewRNG(57)
	src := newSource(57)
	sp := shamir.NewSplitter(rng.Uint64)
	for _, tc := range []struct {
		n  int
		th []float64
	}{
		{2, []float64{0.25}},       // wrong length
		{2, []float64{0.25, 1.0}},  // threshold out of range
		{2, []float64{-0.1, 0.25}}, // negative
	} {
		func() {
			defer func() { recover() }()
			NewThresholdSender(tc.n, tc.th, src, sp)
			t.Fatalf("NewThresholdSender(%d,%v) should panic", tc.n, tc.th)
		}()
	}
	s := NewThresholdSender(2, rlmThresholds(2), src, sp)
	if _, err := s.BeginSlot(1, auths(2, 0), []int{5, 0}); err == nil {
		t.Fatal("zero-count level should be rejected")
	}
}

func TestThresholdSharesPanicOnOveremission(t *testing.T) {
	s, _ := newThresholdPair(2, rlmThresholds(2), 58)
	ts, err := s.BeginSlot(1, auths(2, 0), countsOf(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	ts.Shares(1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-emission should panic")
		}
	}()
	ts.Shares(1)
}

func BenchmarkThresholdSenderSlot(b *testing.B) {
	rng := sim.NewRNG(60)
	src := newSource(60)
	s := NewThresholdSender(5, rlmThresholds(5), src, shamir.NewSplitter(rng.Uint64))
	auth := auths(5, 3)
	counts := countsOf(5, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts, err := s.BeginSlot(uint32(i), auth, counts)
		if err != nil {
			b.Fatal(err)
		}
		for g := 1; g <= 5; g++ {
			for p := 0; p < 20; p++ {
				ts.Shares(g)
			}
		}
	}
}
