package delta

import (
	"testing"

	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
)

func emitReplSlot(t *testing.T, s *ReplicatedSender, slot uint32, auth []bool, counts []int) (*ReplicatedSlot, [][]*packet.ReplHeader) {
	t.Helper()
	rs := s.BeginSlot(slot, auth, counts)
	inc := uint8(0)
	for a := len(auth); a >= 2; a-- {
		if auth[a-1] {
			inc = uint8(a)
			break
		}
	}
	headers := make([][]*packet.ReplHeader, s.Groups())
	for g := 1; g <= s.Groups(); g++ {
		for p := 1; p <= counts[g-1]; p++ {
			comp, dec := rs.Fields(g)
			headers[g-1] = append(headers[g-1], &packet.ReplHeader{
				Session: 1, Group: uint8(g), Slot: slot,
				Seq: uint16(p), Count: uint16(counts[g-1]), IncreaseTo: inc,
				HasDelta: true, Component: comp, Decrease: dec,
			})
		}
	}
	if !rs.Done() {
		t.Fatal("sender slot not done")
	}
	return rs, headers
}

func TestReplicatedTopKeyIsPerGroup(t *testing.T) {
	s := NewReplicatedSender(4, newSource(30))
	rs, headers := emitReplSlot(t, s, 1, auths(4, 0), countsOf(4, 3))
	for g := 1; g <= 4; g++ {
		var acc keys.Key
		for _, h := range headers[g-1] {
			acc = keys.XOR(acc, h.Component)
		}
		if acc != rs.Keys.Top[g-1] {
			t.Fatalf("group %d: components XOR to %v, α_%d is %v", g, acc, g, rs.Keys.Top[g-1])
		}
	}
	// Unlike the layered case, α_2 must NOT include group 1's components.
	var crossAcc keys.Key
	for _, h := range headers[0] {
		crossAcc = keys.XOR(crossAcc, h.Component)
	}
	for _, h := range headers[1] {
		crossAcc = keys.XOR(crossAcc, h.Component)
	}
	if crossAcc == rs.Keys.Top[1] {
		t.Fatal("replicated top key looks cumulative")
	}
}

func TestReplicatedUncongestedStays(t *testing.T) {
	s := NewReplicatedSender(3, newSource(31))
	rs, headers := emitReplSlot(t, s, 1, auths(3, 0), countsOf(3, 4))
	r := NewReplicatedReceiver(3)
	r.Begin(1)
	for _, h := range headers[1] { // receiver of group 2
		r.Observe(h, 2, false)
	}
	out := r.Finish(2, false)
	if out.Congested || out.Next != 2 {
		t.Fatalf("outcome %+v, want uncongested stay at 2", out)
	}
	if !rs.Keys.Opens(2, out.Keys[2]) {
		t.Fatal("key does not open group 2")
	}
}

func TestReplicatedUpgradeSwitchesUp(t *testing.T) {
	s := NewReplicatedSender(3, newSource(32))
	rs, headers := emitReplSlot(t, s, 1, auths(3, 3), countsOf(3, 4))
	r := NewReplicatedReceiver(3)
	r.Begin(1)
	for _, h := range headers[1] {
		r.Observe(h, 2, false)
	}
	out := r.Finish(2, false)
	if out.Next != 3 {
		t.Fatalf("Next = %d, want 3", out.Next)
	}
	if !rs.Keys.Opens(3, out.Keys[3]) {
		t.Fatal("upgrade key does not open group 3")
	}
	// ε_3 = α_2: the same reconstructed value.
	if out.Keys[3] != out.Keys[2] {
		t.Fatal("replicated upgrade key should equal the current top key")
	}
}

func TestReplicatedCongestedStepsDown(t *testing.T) {
	s := NewReplicatedSender(3, newSource(33))
	rs, headers := emitReplSlot(t, s, 1, auths(3, 0), countsOf(3, 4))
	r := NewReplicatedReceiver(3)
	r.Begin(1)
	for i, h := range headers[2] { // group 3, drop one packet
		if i == 1 {
			continue
		}
		r.Observe(h, 3, false)
	}
	out := r.Finish(3, false)
	if !out.Congested || out.Next != 2 {
		t.Fatalf("outcome %+v, want congested step down to 2", out)
	}
	if !rs.Keys.Opens(2, out.Keys[2]) {
		t.Fatal("decrease key does not open group 2")
	}
	if k, ok := out.Keys[3]; ok && rs.Keys.Opens(3, k) {
		t.Fatal("congested receiver still opened its group")
	}
}

func TestReplicatedCongestedAtMinimalLeaves(t *testing.T) {
	s := NewReplicatedSender(3, newSource(34))
	_, headers := emitReplSlot(t, s, 1, auths(3, 0), countsOf(3, 4))
	r := NewReplicatedReceiver(3)
	r.Begin(1)
	for i, h := range headers[0] {
		if i == 0 {
			continue
		}
		r.Observe(h, 1, false)
	}
	out := r.Finish(1, false)
	if out.Next != 0 {
		t.Fatalf("Next = %d, want 0", out.Next)
	}
}

func TestReplicatedTotalLossLeavesSession(t *testing.T) {
	s := NewReplicatedSender(3, newSource(35))
	_, _ = emitReplSlot(t, s, 1, auths(3, 0), countsOf(3, 4))
	r := NewReplicatedReceiver(3)
	r.Begin(1)
	out := r.Finish(3, false) // nothing received: no decrease field either
	if out.Next != 0 {
		t.Fatalf("Next = %d, want 0 (no decrease key available)", out.Next)
	}
}

func TestReplicatedECNMode(t *testing.T) {
	s := NewReplicatedSender(3, newSource(36))
	rs, headers := emitReplSlot(t, s, 1, auths(3, 0), countsOf(3, 4))
	r := NewReplicatedReceiver(3)
	r.Begin(1)
	nonce := newSource(97).Nonce()
	for i, h := range headers[1] {
		if i == 0 {
			r.Observe(ScrubComponent(h, nonce).(*packet.ReplHeader), 2, true)
			continue
		}
		r.Observe(h, 2, false)
	}
	out := r.Finish(2, true)
	if !out.Congested || out.Next != 1 {
		t.Fatalf("outcome %+v, want ECN-congested step down", out)
	}
	if !rs.Keys.Opens(1, out.Keys[1]) {
		t.Fatal("decrease key invalid after ECN scrub")
	}
}

func TestReplicatedObserveFiltersGroupAndSlot(t *testing.T) {
	s := NewReplicatedSender(3, newSource(37))
	_, headers := emitReplSlot(t, s, 1, auths(3, 0), countsOf(3, 4))
	r := NewReplicatedReceiver(3)
	r.Begin(1)
	for _, h := range headers[0] {
		r.Observe(h, 2, false) // receiver is in group 2; group 1 ignored
	}
	out := r.Finish(2, false)
	if !out.Congested {
		t.Fatal("receiver should look congested: none of its group's packets arrived")
	}
}

func TestReplicatedFinishValidation(t *testing.T) {
	r := NewReplicatedReceiver(3)
	r.Begin(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Finish(0) should panic")
		}
	}()
	r.Finish(0, false)
}
