package delta

import (
	"fmt"

	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
)

// ReplicatedSender implements the Figure 5 DELTA instantiation for
// replicated multicast protocols, where each subscription level is a single
// group carrying the full content at its own rate (destination-set
// grouping). The key structure collapses relative to the layered case:
// the top key of group g is the XOR of group g's own components only, and
// the increase key for group g is group g−1's top key (Eq. 6).
type ReplicatedSender struct {
	n   int
	src *keys.Source
}

// NewReplicatedSender builds the sender-side instantiation for a session
// with n rate groups.
func NewReplicatedSender(n int, src *keys.Source) *ReplicatedSender {
	checkGroupCount(n)
	return &ReplicatedSender{n: n, src: src}
}

// Groups reports the session's group count.
func (s *ReplicatedSender) Groups() int { return s.n }

// ReplicatedSlot is the per-slot state of a ReplicatedSender.
type ReplicatedSlot struct {
	Keys SlotKeys

	src       *keys.Source
	accum     []keys.Key
	remaining []int
	counts    []int
}

// BeginSlot precomputes the slot's keys; see LayeredSender.BeginSlot for
// the argument contract.
func (s *ReplicatedSender) BeginSlot(slot uint32, auth []bool, counts []int) *ReplicatedSlot {
	if len(auth) != s.n || len(counts) != s.n {
		panic(fmt.Sprintf("delta: BeginSlot with %d auth / %d counts for %d groups", len(auth), len(counts), s.n))
	}
	rs := &ReplicatedSlot{
		src:       s.src,
		accum:     make([]keys.Key, s.n),
		remaining: make([]int, s.n),
		counts:    make([]int, s.n),
	}
	rs.Keys = SlotKeys{
		Slot: slot,
		Top:  make([]keys.Key, s.n),
		Dec:  make([]keys.Key, max(s.n-1, 0)),
		Inc:  make([]keys.Key, s.n),
		Auth: make([]bool, s.n),
	}
	for g := 1; g <= s.n; g++ {
		if counts[g-1] < 1 {
			panic(fmt.Sprintf("delta: group %d scheduled %d packets; need >= 1", g, counts[g-1]))
		}
		rs.remaining[g-1] = counts[g-1]
		rs.counts[g-1] = counts[g-1]
		rs.accum[g-1] = s.src.Nonce()
		rs.Keys.Top[g-1] = rs.accum[g-1] // α_g = XOR of group g components only
		if g >= 2 {
			rs.Keys.Dec[g-2] = s.src.Nonce()
			if auth[g-1] {
				rs.Keys.Auth[g-1] = true
				rs.Keys.Inc[g-1] = rs.Keys.Top[g-2] // ε_g = α_{g-1}
			}
		}
	}
	return rs
}

// Fields returns the component and decrease fields for the next packet of
// group g; the contract matches LayeredSlot.Fields.
func (rs *ReplicatedSlot) Fields(g int) (component, decrease keys.Key) {
	idx := g - 1
	if rs.remaining[idx] <= 0 {
		panic(fmt.Sprintf("delta: group %d exceeded its %d scheduled packets", g, rs.counts[idx]))
	}
	rs.remaining[idx]--
	if g >= 2 {
		decrease = rs.Keys.Dec[g-2]
	}
	if rs.remaining[idx] == 0 {
		return rs.accum[idx], decrease
	}
	c := rs.src.Nonce()
	rs.accum[idx] = keys.XOR(rs.accum[idx], c)
	return c, decrease
}

// Done reports whether every scheduled packet has had its fields generated.
func (rs *ReplicatedSlot) Done() bool {
	for _, r := range rs.remaining {
		if r != 0 {
			return false
		}
	}
	return true
}

// ReplicatedReceiver implements the receiver half of Figure 5 for a
// receiver subscribed to a single rate group.
type ReplicatedReceiver struct {
	n    int
	slot uint32

	comp     keys.Accumulator
	got      int
	expect   int
	dec      keys.Key
	haveDec  bool
	increase int
	marked   bool
}

// NewReplicatedReceiver builds the receiver-side instantiation for a
// session with n groups.
func NewReplicatedReceiver(n int) *ReplicatedReceiver {
	checkGroupCount(n)
	return &ReplicatedReceiver{n: n}
}

// Begin resets the receiver for a new slot.
func (r *ReplicatedReceiver) Begin(slot uint32) {
	r.slot = slot
	r.comp.Reset()
	r.got, r.expect = 0, 0
	r.haveDec = false
	r.increase = 0
	r.marked = false
}

// Observe folds one received packet of the receiver's current group.
func (r *ReplicatedReceiver) Observe(h *packet.ReplHeader, current int, marked bool) {
	if h.Slot != r.slot || int(h.Group) != current {
		return
	}
	r.got++
	r.expect = int(h.Count)
	r.comp.Add(h.Component)
	if current >= 2 {
		r.dec = h.Decrease
		r.haveDec = true
	}
	if int(h.IncreaseTo) > r.increase {
		r.increase = int(h.IncreaseTo)
	}
	if marked {
		r.marked = true
	}
}

// Finish concludes the slot for a receiver currently in group g.
func (r *ReplicatedReceiver) Finish(g int, ecnMode bool) Outcome {
	if g < 1 || g > r.n {
		panic(fmt.Sprintf("delta: replicated Finish with group %d of %d", g, r.n))
	}
	out := Outcome{Slot: r.slot, Keys: make(map[int]keys.Key)}
	lost := r.got == 0 || r.got < r.expect
	congested := lost || (ecnMode && r.marked)
	if congested {
		out.Congested = true
		if g == 1 || !r.haveDec {
			out.Next = 0 // n ← null: rejoin through the minimal group
			return out
		}
		out.Next = g - 1
		out.Keys[g-1] = r.dec
		return out
	}
	alpha := r.comp.Sum()
	out.Keys[g] = alpha
	out.Next = g
	if g < r.n && r.increase >= g+1 {
		// ε_{g+1} = α_g: the receiver may switch up using the same value.
		out.Keys[g+1] = alpha
		out.Next = g + 1
	}
	return out
}
