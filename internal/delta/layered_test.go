package delta

import (
	"testing"
	"testing/quick"

	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

func newSource(seed uint64) *keys.Source {
	return keys.NewSource(keys.DefaultBits, sim.NewRNG(seed).Uint64)
}

// emitSlot runs a full sender slot and returns the generated headers, one
// per packet, ordered group by group.
func emitSlot(t *testing.T, s *LayeredSender, slot uint32, auth []bool, counts []int) (*LayeredSlot, [][]*packet.FLIDHeader) {
	t.Helper()
	ls := s.BeginSlot(slot, auth, counts)
	headers := make([][]*packet.FLIDHeader, s.Groups())
	for g := 1; g <= s.Groups(); g++ {
		inc := uint8(0)
		for a := len(auth); a >= 2; a-- {
			if auth[a-1] {
				inc = uint8(a)
				break
			}
		}
		for p := 1; p <= counts[g-1]; p++ {
			comp, dec := ls.Fields(g)
			headers[g-1] = append(headers[g-1], &packet.FLIDHeader{
				Session: 1, Group: uint8(g), Slot: slot,
				Seq: uint16(p), Count: uint16(counts[g-1]), IncreaseTo: inc,
				HasDelta: true, Component: comp, Decrease: dec,
			})
		}
	}
	if !ls.Done() {
		t.Fatal("sender slot not done after emitting all packets")
	}
	return ls, headers
}

// deliver feeds headers to a receiver, dropping (group,seq) pairs in drop.
func deliver(r *LayeredReceiver, headers [][]*packet.FLIDHeader, drop map[[2]int]bool) {
	for g, hs := range headers {
		for _, h := range hs {
			if drop[[2]int{g + 1, int(h.Seq)}] {
				continue
			}
			r.Observe(h, false)
		}
	}
}

func auths(n int, upTo int) []bool {
	a := make([]bool, n)
	for g := 2; g <= upTo && g <= n; g++ {
		a[g-1] = true
	}
	return a
}

func countsOf(n int, c int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// verifyKeys asserts every key in the outcome opens its group.
func verifyKeys(t *testing.T, sk *SlotKeys, out Outcome) {
	t.Helper()
	for g, k := range out.Keys {
		if !sk.Opens(g, k) {
			t.Fatalf("outcome key for group %d (%v) does not open the group", g, k)
		}
	}
	for g := 1; g <= out.Next; g++ {
		if _, ok := out.Keys[g]; !ok {
			t.Fatalf("entitled to group %d but no key provided", g)
		}
	}
}

func TestSenderComponentAlgebra(t *testing.T) {
	s := NewLayeredSender(5, newSource(1))
	ls, headers := emitSlot(t, s, 7, auths(5, 0), countsOf(5, 4))
	// XOR of all components of groups 1..g must equal α_g (Eq. 3).
	var acc keys.Key
	for g := 1; g <= 5; g++ {
		for _, h := range headers[g-1] {
			acc = keys.XOR(acc, h.Component)
		}
		if acc != ls.Keys.Top[g-1] {
			t.Fatalf("α_%d mismatch: components XOR to %v, key is %v", g, acc, ls.Keys.Top[g-1])
		}
	}
	// Every packet of group g carries d_g = δ_{g-1}.
	for g := 2; g <= 5; g++ {
		for _, h := range headers[g-1] {
			if h.Decrease != ls.Keys.Dec[g-2] {
				t.Fatalf("group %d decrease field %v != δ_%d %v", g, h.Decrease, g-1, ls.Keys.Dec[g-2])
			}
		}
	}
	// Group 1 carries no decrease field.
	for _, h := range headers[0] {
		if h.Decrease != 0 {
			t.Fatalf("group 1 decrease field should be zero, got %v", h.Decrease)
		}
	}
}

func TestIncreaseKeyIsLowerTopKey(t *testing.T) {
	s := NewLayeredSender(4, newSource(2))
	ls, _ := emitSlot(t, s, 1, auths(4, 4), countsOf(4, 3))
	for g := 2; g <= 4; g++ {
		if !ls.Keys.Auth[g-1] {
			t.Fatalf("upgrade to %d should be authorized", g)
		}
		if ls.Keys.Inc[g-1] != ls.Keys.Top[g-2] {
			t.Fatalf("ε_%d != α_%d", g, g-1)
		}
	}
}

func TestUncongestedReceiverKeepsLevel(t *testing.T) {
	s := NewLayeredSender(5, newSource(3))
	ls, headers := emitSlot(t, s, 1, auths(5, 0), countsOf(5, 4))
	r := NewLayeredReceiver(5)
	r.Begin(1)
	deliver(r, headers[:3], nil) // subscribed to 3 groups, receives all
	out := r.Finish(3, false)
	if out.Congested {
		t.Fatal("lossless receiver reported congested")
	}
	if out.Next != 3 {
		t.Fatalf("Next = %d, want 3", out.Next)
	}
	verifyKeys(t, &ls.Keys, out)
	// The top-group key must be the real top key, not a decrease key.
	if out.Keys[3] != ls.Keys.Top[2] {
		t.Fatalf("top key %v != α_3 %v", out.Keys[3], ls.Keys.Top[2])
	}
}

func TestAuthorizedUpgrade(t *testing.T) {
	s := NewLayeredSender(5, newSource(4))
	ls, headers := emitSlot(t, s, 1, auths(5, 4), countsOf(5, 4))
	r := NewLayeredReceiver(5)
	r.Begin(1)
	deliver(r, headers[:3], nil)
	out := r.Finish(3, false)
	if out.Next != 4 {
		t.Fatalf("Next = %d, want upgrade to 4", out.Next)
	}
	verifyKeys(t, &ls.Keys, out)
	if out.Keys[4] != ls.Keys.Inc[3] {
		t.Fatalf("upgrade key %v != ε_4 %v", out.Keys[4], ls.Keys.Inc[3])
	}
}

func TestUpgradeNotAuthorizedStays(t *testing.T) {
	s := NewLayeredSender(5, newSource(5))
	ls, headers := emitSlot(t, s, 1, auths(5, 0), countsOf(5, 4))
	r := NewLayeredReceiver(5)
	r.Begin(1)
	deliver(r, headers[:3], nil)
	out := r.Finish(3, false)
	if out.Next != 3 {
		t.Fatalf("Next = %d, want 3 without authorization", out.Next)
	}
	if _, ok := out.Keys[4]; ok {
		t.Fatal("receiver obtained a key for group 4 without authorization")
	}
	verifyKeys(t, &ls.Keys, out)
}

func TestUpgradeOnlyToNextGroup(t *testing.T) {
	// Authorization to group 5 does not let a receiver of 2 groups jump to
	// 5: it can only add group 3 (if authorized) — with auth set for
	// groups up to 5, the receiver of 2 groups may add group 3 only.
	s := NewLayeredSender(5, newSource(6))
	ls, headers := emitSlot(t, s, 1, auths(5, 5), countsOf(5, 4))
	r := NewLayeredReceiver(5)
	r.Begin(1)
	deliver(r, headers[:2], nil)
	out := r.Finish(2, false)
	if out.Next != 3 {
		t.Fatalf("Next = %d, want 3", out.Next)
	}
	if _, ok := out.Keys[4]; ok {
		t.Fatal("receiver skipped a level")
	}
	verifyKeys(t, &ls.Keys, out)
}

func TestCongestedReceiverDropsTopGroup(t *testing.T) {
	s := NewLayeredSender(5, newSource(7))
	ls, headers := emitSlot(t, s, 1, auths(5, 0), countsOf(5, 4))
	r := NewLayeredReceiver(5)
	r.Begin(1)
	deliver(r, headers[:4], map[[2]int]bool{{2, 3}: true}) // lose one packet of group 2
	out := r.Finish(4, false)
	if !out.Congested {
		t.Fatal("loss not detected")
	}
	if out.Next != 3 {
		t.Fatalf("Next = %d, want 3", out.Next)
	}
	verifyKeys(t, &ls.Keys, out)
	// The congested receiver must NOT hold a key that opens group 4.
	if k, ok := out.Keys[4]; ok && ls.Keys.Opens(4, k) {
		t.Fatal("congested receiver obtained a key for its lossy level")
	}
}

func TestCongestedCannotReconstructTopKey(t *testing.T) {
	// An attacker that lost a packet tries the naive move: XOR everything
	// it received. That value must not open the top group.
	s := NewLayeredSender(4, newSource(8))
	ls, headers := emitSlot(t, s, 1, auths(4, 0), countsOf(4, 5))
	r := NewLayeredReceiver(4)
	r.Begin(1)
	deliver(r, headers[:4], map[[2]int]bool{{4, 2}: true})
	var naive keys.Key
	for g := 1; g <= 4; g++ {
		naive = keys.XOR(naive, r.comp[g-1].Sum())
	}
	if ls.Keys.Opens(4, naive) {
		t.Fatal("naive XOR of a lossy trace opened the top group")
	}
}

func TestResolutionKeepsTopWhenOnlyTopLossyAndAuthorized(t *testing.T) {
	// §3.1.1 contradiction resolution: loss only in group 4, upgrade to 4
	// authorized, groups 1..3 clean → the receiver keeps group 4 via ε_4.
	s := NewLayeredSender(5, newSource(9))
	ls, headers := emitSlot(t, s, 1, auths(5, 4), countsOf(5, 4))
	r := NewLayeredReceiver(5)
	r.Begin(1)
	deliver(r, headers[:4], map[[2]int]bool{{4, 1}: true})
	out := r.Finish(4, false)
	if !out.Congested {
		t.Fatal("loss not detected")
	}
	if out.Next != 4 {
		t.Fatalf("Next = %d, want 4 (resolution case)", out.Next)
	}
	verifyKeys(t, &ls.Keys, out)
	if out.Keys[4] != ls.Keys.Inc[3] {
		t.Fatalf("resolution key %v != ε_4 %v", out.Keys[4], ls.Keys.Inc[3])
	}
}

func TestResolutionRequiresAuthorization(t *testing.T) {
	s := NewLayeredSender(5, newSource(10))
	ls, headers := emitSlot(t, s, 1, auths(5, 3), countsOf(5, 4)) // auth up to 3 only
	r := NewLayeredReceiver(5)
	r.Begin(1)
	deliver(r, headers[:4], map[[2]int]bool{{4, 1}: true})
	out := r.Finish(4, false)
	if out.Next != 3 {
		t.Fatalf("Next = %d, want 3 (no auth to 4)", out.Next)
	}
	verifyKeys(t, &ls.Keys, out)
}

func TestResolutionRequiresCleanLowerGroups(t *testing.T) {
	s := NewLayeredSender(5, newSource(11))
	ls, headers := emitSlot(t, s, 1, auths(5, 4), countsOf(5, 4))
	r := NewLayeredReceiver(5)
	r.Begin(1)
	deliver(r, headers[:4], map[[2]int]bool{{4, 1}: true, {2, 2}: true})
	out := r.Finish(4, false)
	if out.Next != 3 {
		t.Fatalf("Next = %d, want 3 (lower group also lossy)", out.Next)
	}
	verifyKeys(t, &ls.Keys, out)
}

func TestTotalLossOfGroupForcesMultiLevelDrop(t *testing.T) {
	// Group 3 loses all its packets. The key for group 2 rides in group 3's
	// decrease fields (Eq. 4), so it is unobtainable; subscription levels
	// are contiguous stacks, hence the receiver of 4 groups falls all the
	// way to level 1 — "forced to reduce its subscription by more than one
	// group" (§3.1.1).
	s := NewLayeredSender(5, newSource(12))
	ls, headers := emitSlot(t, s, 1, auths(5, 0), countsOf(5, 3))
	r := NewLayeredReceiver(5)
	r.Begin(1)
	drop := map[[2]int]bool{{3, 1}: true, {3, 2}: true, {3, 3}: true}
	deliver(r, headers[:4], drop)
	out := r.Finish(4, false)
	if out.Next != 1 {
		t.Fatalf("Next = %d, want 1", out.Next)
	}
	verifyKeys(t, &ls.Keys, out)
}

func TestCongestedAtMinimalLeavesSession(t *testing.T) {
	s := NewLayeredSender(3, newSource(13))
	_, headers := emitSlot(t, s, 1, auths(3, 0), countsOf(3, 3))
	r := NewLayeredReceiver(3)
	r.Begin(1)
	deliver(r, headers[:1], map[[2]int]bool{{1, 2}: true})
	out := r.Finish(1, false)
	if out.Next != 0 {
		t.Fatalf("Next = %d, want 0 (null)", out.Next)
	}
	if len(out.Keys) != 0 {
		t.Fatalf("receiver with nothing should hold no keys, has %v", out.Keys)
	}
}

func TestSingleGroupSession(t *testing.T) {
	s := NewLayeredSender(1, newSource(14))
	ls, headers := emitSlot(t, s, 1, auths(1, 0), countsOf(1, 5))
	r := NewLayeredReceiver(1)
	r.Begin(1)
	deliver(r, headers, nil)
	out := r.Finish(1, false)
	if out.Next != 1 || out.Keys[1] != ls.Keys.Top[0] {
		t.Fatalf("single-group session outcome wrong: %+v", out)
	}
}

func TestObserveIgnoresWrongSlot(t *testing.T) {
	s := NewLayeredSender(2, newSource(15))
	_, headers := emitSlot(t, s, 5, auths(2, 0), countsOf(2, 2))
	r := NewLayeredReceiver(2)
	r.Begin(6) // different slot
	deliver(r, headers, nil)
	if r.Received(1) != 0 {
		t.Fatal("receiver accumulated packets from a different slot")
	}
}

func TestObserveIgnoresOutOfRangeGroup(t *testing.T) {
	r := NewLayeredReceiver(2)
	r.Begin(1)
	r.Observe(&packet.FLIDHeader{Group: 9, Slot: 1, Count: 1}, false)
	r.Observe(&packet.FLIDHeader{Group: 0, Slot: 1, Count: 1}, false)
	if r.Received(1) != 0 && r.Received(2) != 0 {
		t.Fatal("out-of-range groups should be ignored")
	}
}

func TestECNMarkActsAsCongestion(t *testing.T) {
	s := NewLayeredSender(3, newSource(16))
	ls, headers := emitSlot(t, s, 1, auths(3, 0), countsOf(3, 3))
	r := NewLayeredReceiver(3)
	r.Begin(1)
	// All packets arrive, one is CE-marked with a scrubbed component.
	nonce := newSource(99).Nonce()
	for g, hs := range headers {
		if g >= 3 {
			break
		}
		for i, h := range hs {
			if g == 2 && i == 0 {
				scrubbed := ScrubComponent(h, nonce).(*packet.FLIDHeader)
				r.Observe(scrubbed, true)
				continue
			}
			r.Observe(h, false)
		}
	}
	out := r.Finish(3, true)
	if !out.Congested {
		t.Fatal("ECN mark not treated as congestion")
	}
	if out.Next != 2 {
		t.Fatalf("Next = %d, want 2", out.Next)
	}
	verifyKeys(t, &ls.Keys, out)
}

func TestScrubbedComponentDeniesTopKeyEvenWithoutECNMode(t *testing.T) {
	// Even if the receiver ignores the CE mark (misbehaving loss-driven
	// stack), the scrubbed component makes the reconstructed top key wrong.
	s := NewLayeredSender(3, newSource(17))
	ls, headers := emitSlot(t, s, 1, auths(3, 0), countsOf(3, 3))
	r := NewLayeredReceiver(3)
	r.Begin(1)
	nonce := newSource(98).Nonce()
	for g, hs := range headers {
		for i, h := range hs {
			if g == 2 && i == 1 {
				r.Observe(ScrubComponent(h, nonce).(*packet.FLIDHeader), false) // mark ignored
				continue
			}
			r.Observe(h, false)
		}
	}
	out := r.Finish(3, false) // loss-driven mode: no loss seen, "uncongested"
	if out.Congested {
		t.Fatal("expected nominally uncongested outcome")
	}
	if ls.Keys.Opens(3, out.Keys[3]) {
		t.Fatal("scrubbed component still yielded a valid top key")
	}
}

func TestFieldsPanicsOnOveremission(t *testing.T) {
	s := NewLayeredSender(2, newSource(18))
	ls := s.BeginSlot(1, auths(2, 0), countsOf(2, 1))
	ls.Fields(1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-emission should panic")
		}
	}()
	ls.Fields(1)
}

func TestBeginSlotValidation(t *testing.T) {
	s := NewLayeredSender(2, newSource(19))
	for _, tc := range []struct {
		auth   []bool
		counts []int
	}{
		{auths(1, 0), countsOf(2, 1)},
		{auths(2, 0), countsOf(1, 1)},
		{auths(2, 0), []int{1, 0}},
	} {
		func() {
			defer func() { recover() }()
			s.BeginSlot(1, tc.auth, tc.counts)
			t.Fatalf("BeginSlot(%v,%v) should panic", tc.auth, tc.counts)
		}()
	}
}

func TestTuplesMatchOpens(t *testing.T) {
	s := NewLayeredSender(4, newSource(20))
	ls, _ := emitSlot(t, s, 1, auths(4, 3), countsOf(4, 2))
	base := packet.MulticastBase
	tuples := ls.Keys.Tuples(base)
	if len(tuples) != 4 {
		t.Fatalf("%d tuples, want 4", len(tuples))
	}
	for g := 1; g <= 4; g++ {
		tp := tuples[g-1]
		if tp.Addr != packet.Group(base, g-1) {
			t.Fatalf("tuple %d addr %v", g, tp.Addr)
		}
		if !ls.Keys.Opens(g, tp.Top) {
			t.Fatalf("top key of tuple %d does not open", g)
		}
		if tp.HasDec != (g < 4) {
			t.Fatalf("tuple %d HasDec = %v", g, tp.HasDec)
		}
		if tp.HasDec && !ls.Keys.Opens(g, tp.Dec) {
			t.Fatalf("dec key of tuple %d does not open", g)
		}
		wantInc := g >= 2 && g <= 3
		if tp.HasInc != wantInc {
			t.Fatalf("tuple %d HasInc = %v, want %v", g, tp.HasInc, wantInc)
		}
		if tp.HasInc && !ls.Keys.Opens(g, tp.Inc) {
			t.Fatalf("inc key of tuple %d does not open", g)
		}
	}
}

func TestOpensRejectsForeignKeys(t *testing.T) {
	s := NewLayeredSender(3, newSource(21))
	ls, _ := emitSlot(t, s, 1, auths(3, 0), countsOf(3, 2))
	src := newSource(22)
	misses := 0
	for i := 0; i < 1000; i++ {
		if !ls.Keys.Opens(2, src.Nonce()) {
			misses++
		}
	}
	// 16-bit keys: random guesses succeed with probability ~2/65536 per
	// try (top + dec). Allow a couple of lucky hits.
	if misses < 995 {
		t.Fatalf("random keys opened the group %d/1000 times", 1000-misses)
	}
	if ls.Keys.Opens(0, 0) || ls.Keys.Opens(9, 0) {
		t.Fatal("out-of-range groups must never open")
	}
}

// The central security property, randomized: whatever the loss pattern, the
// receiver's outcome never exceeds its entitlement under the subscription
// rules, and every key it outputs is genuinely valid.
func TestEntitlementProperty(t *testing.T) {
	f := func(seed uint64, topRaw, authRaw uint8, dropMask uint16) bool {
		const n = 5
		const perGroup = 3
		top := int(topRaw%n) + 1                    // 1..5
		authTo := int(authRaw % (n + 1))            // 0..5
		s := NewLayeredSender(n, newSource(seed|1)) // nonzero seed
		rng := sim.NewRNG(seed ^ 0xabcdef)

		ls := s.BeginSlot(1, auths(n, authTo), countsOf(n, perGroup))
		r := NewLayeredReceiver(n)
		r.Begin(1)
		lossIn := make([]bool, n+1)
		allLost := make([]bool, n+1)
		pkt := 0
		for g := 1; g <= n; g++ {
			lost := 0
			for p := 1; p <= perGroup; p++ {
				comp, dec := ls.Fields(g)
				h := &packet.FLIDHeader{
					Group: uint8(g), Slot: 1, Seq: uint16(p),
					Count: perGroup, IncreaseTo: uint8(authTo),
					HasDelta: true, Component: comp, Decrease: dec,
				}
				dropThis := g <= top && (dropMask>>(pkt%16))&1 == 1 && rng.Float64() < 0.5
				pkt++
				if dropThis {
					lost++
					continue
				}
				r.Observe(h, false)
			}
			if g <= top && lost > 0 {
				lossIn[g] = true
			}
			if g <= top && lost == perGroup {
				allLost[g] = true
			}
		}
		out := r.Finish(top, false)

		// 1. Every emitted key must be valid.
		for g, k := range out.Keys {
			if !ls.Keys.Opens(g, k) {
				return false
			}
		}
		// 2. Entitlement ceiling.
		anyLoss := false
		onlyTopLossy := true
		for g := 1; g <= top; g++ {
			if lossIn[g] {
				anyLoss = true
				if g != top {
					onlyTopLossy = false
				}
			}
		}
		switch {
		case !anyLoss:
			limit := top
			if authTo >= top+1 && top < n {
				limit = top + 1
			}
			if out.Next > limit {
				return false
			}
		case onlyTopLossy && authTo >= top:
			if out.Next > top {
				return false
			}
		default:
			if out.Next > top-1 {
				return false
			}
		}
		// 3. A group that lost everything breaks the chain below it.
		for g := 2; g <= top; g++ {
			if allLost[g] && out.Next >= g-1 && g-1 >= 1 {
				// key for g-1 requires a packet from g
				if _, ok := out.Keys[g-1]; ok && allLost[g] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLayeredSenderSlot(b *testing.B) {
	s := NewLayeredSender(10, newSource(1))
	auth := auths(10, 5)
	counts := countsOf(10, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := s.BeginSlot(uint32(i), auth, counts)
		for g := 1; g <= 10; g++ {
			for p := 0; p < 20; p++ {
				ls.Fields(g)
			}
		}
	}
}

func BenchmarkLayeredReceiverSlot(b *testing.B) {
	s := NewLayeredSender(10, newSource(1))
	auth := auths(10, 5)
	counts := countsOf(10, 20)
	ls := s.BeginSlot(1, auth, counts)
	var hs []*packet.FLIDHeader
	for g := 1; g <= 10; g++ {
		for p := 1; p <= 20; p++ {
			comp, dec := ls.Fields(g)
			hs = append(hs, &packet.FLIDHeader{
				Group: uint8(g), Slot: 1, Seq: uint16(p), Count: 20,
				HasDelta: true, Component: comp, Decrease: dec,
			})
		}
	}
	r := NewLayeredReceiver(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Begin(1)
		for _, h := range hs {
			r.Observe(h, false)
		}
		_ = r.Finish(10, false)
	}
}
