package delta

import (
	"deltasigma/internal/keys"
	"deltasigma/internal/packet"
)

// ScrubComponent adapts DELTA to ECN-driven congestion control (§3.1.2,
// "Congestion notification"): instead of relying on packet loss, routers
// mark forwarded packets, and the edge router alters the content of the
// component field in each marked packet before delivering it onto a local
// interface. The receiver still gets the data, but the altered component
// makes the top key irreconstructable — marking becomes exactly as
// key-denying as a loss, while the decrease field is left intact so the
// receiver can still move down.
//
// The returned header is a fresh copy; the shared original is never
// mutated (multicast replication shares header values).
func ScrubComponent(h packet.Header, nonce keys.Key) packet.Header {
	switch t := h.(type) {
	case *packet.FLIDHeader:
		c := *t
		c.Component = nonce
		// Shamir shares are the threshold instantiation's components:
		// scrub them too so marked packets deny threshold keys as well.
		if c.ShareX != 0 {
			c.ShareY = uint32(nonce)
		}
		if c.UpShareX != 0 {
			c.UpShareY = uint32(nonce >> 16)
		}
		return &c
	case *packet.ReplHeader:
		c := *t
		c.Component = nonce
		return &c
	default:
		return h
	}
}
