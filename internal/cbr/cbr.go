// Package cbr provides constant-bit-rate traffic sources, including the
// on-off variant the paper uses as inelastic cross traffic (§5.1: a CBR
// session that alternates 5-second on and off periods at 10% of the
// bottleneck capacity, and the 800 Kbps burst of the responsiveness
// experiment).
package cbr

import (
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Source emits fixed-size packets at a constant bit rate, optionally gated
// by an on-off cycle.
type Source struct {
	host *netsim.Host
	dst  packet.Addr
	flow uint32

	// Rate is the transmission rate in bits/s while on.
	Rate int64
	// PacketSize is the wire size of each packet in bytes.
	PacketSize int
	// OnPeriod and OffPeriod define the duty cycle; both zero means
	// always-on.
	OnPeriod, OffPeriod sim.Time

	on      bool
	running bool
	seq     uint32

	emitTimer   *sim.Timer // reusable inter-packet timer
	toggleTimer *sim.Timer // reusable on-off cycle timer

	// PacketsSent counts emissions.
	PacketsSent uint64
}

// New creates a CBR source on host targeting dst.
func New(host *netsim.Host, dst packet.Addr, flow uint32, rate int64, pktSize int) *Source {
	s := &Source{host: host, dst: dst, flow: flow, Rate: rate, PacketSize: pktSize}
	s.emitTimer = host.Scheduler().NewTimer(s.emit)
	s.toggleTimer = host.Scheduler().NewTimer(s.toggle)
	return s
}

// interval is the inter-packet gap at Rate.
func (s *Source) interval() sim.Time {
	return sim.Time(int64(s.PacketSize) * 8 * int64(sim.Second) / s.Rate)
}

// Start begins emission (and the on-off cycle, if configured) now.
func (s *Source) Start() {
	if s.running {
		return
	}
	s.running = true
	s.on = true
	if s.OnPeriod > 0 {
		s.scheduleToggle()
	}
	s.emit()
}

// Stop halts the source permanently.
func (s *Source) Stop() { s.running = false }

func (s *Source) scheduleToggle() {
	period := s.OnPeriod
	if !s.on {
		period = s.OffPeriod
	}
	s.toggleTimer.Reset(period)
}

func (s *Source) toggle() {
	if !s.running {
		return
	}
	s.on = !s.on
	s.scheduleToggle()
	if s.on {
		s.emit()
	}
}

func (s *Source) emit() {
	if !s.running || !s.on {
		return
	}
	s.seq++
	pkt := s.host.Network().NewPacket(s.host.Addr(), s.dst, s.PacketSize, &packet.CBRHeader{Flow: s.flow, Seq: s.seq})
	s.host.Send(pkt)
	s.PacketsSent++
	s.emitTimer.Reset(s.interval())
}
