package cbr

import (
	"testing"

	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

func pair() (*sim.Scheduler, *netsim.Host, *netsim.Host) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(1))
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, b, 10_000_000, sim.Millisecond, 1<<20)
	net.ComputeRoutes()
	return sched, a, b
}

func TestConstantRate(t *testing.T) {
	sched, a, b := pair()
	s := New(a, b.Addr(), 1, 800_000, 576)
	sched.At(0, func() { s.Start() })
	sched.RunUntil(10 * sim.Second)
	gotBits := float64(b.RecvBytes) * 8
	want := 800_000 * 10.0
	if gotBits < 0.99*want || gotBits > 1.01*want {
		t.Fatalf("delivered %.0f bits over 10s, want ~%.0f", gotBits, want)
	}
}

func TestOnOffDutyCycle(t *testing.T) {
	sched, a, b := pair()
	s := New(a, b.Addr(), 1, 1_000_000, 576)
	s.OnPeriod = 5 * sim.Second
	s.OffPeriod = 5 * sim.Second
	sched.At(0, func() { s.Start() })
	sched.RunUntil(20 * sim.Second)
	// Two full cycles: 10s on of 20s → half the always-on volume.
	gotBits := float64(b.RecvBytes) * 8
	want := 1_000_000 * 10.0
	if gotBits < 0.98*want || gotBits > 1.02*want {
		t.Fatalf("delivered %.0f bits, want ~%.0f (50%% duty)", gotBits, want)
	}
}

func TestOffPeriodIsSilent(t *testing.T) {
	sched, a, b := pair()
	s := New(a, b.Addr(), 1, 1_000_000, 576)
	s.OnPeriod = 1 * sim.Second
	s.OffPeriod = 1 * sim.Second
	sched.At(0, func() { s.Start() })
	sched.RunUntil(1100 * sim.Millisecond)
	atOffStart := b.RecvBytes
	sched.RunUntil(1900 * sim.Millisecond)
	if b.RecvBytes != atOffStart {
		t.Fatalf("packets delivered during off period: %d -> %d", atOffStart, b.RecvBytes)
	}
	sched.RunUntil(2500 * sim.Millisecond)
	if b.RecvBytes == atOffStart {
		t.Fatal("source did not resume after off period")
	}
}

func TestStopHaltsEmission(t *testing.T) {
	sched, a, b := pair()
	s := New(a, b.Addr(), 1, 1_000_000, 576)
	sched.At(0, func() { s.Start() })
	sched.At(sim.Second, func() { s.Stop() })
	sched.RunUntil(5 * sim.Second)
	gotBits := float64(b.RecvBytes) * 8
	if gotBits > 1_100_000 {
		t.Fatalf("source kept sending after Stop: %.0f bits", gotBits)
	}
	if s.PacketsSent == 0 {
		t.Fatal("source never sent")
	}
}

func TestStartIdempotent(t *testing.T) {
	sched, a, b := pair()
	s := New(a, b.Addr(), 1, 100_000, 576)
	sched.At(0, func() { s.Start(); s.Start(); s.Start() })
	sched.RunUntil(sim.Second)
	gotBits := float64(b.RecvBytes) * 8
	if gotBits > 110_000 {
		t.Fatalf("double Start doubled the rate: %.0f bits in 1s", gotBits)
	}
}

func TestHeaderFields(t *testing.T) {
	sched, a, b := pair()
	var flows []uint32
	b.Handle(packet.ProtoCBR, func(pkt *packet.Packet) {
		flows = append(flows, pkt.Header.(*packet.CBRHeader).Flow)
	})
	s := New(a, b.Addr(), 7, 1_000_000, 576)
	sched.At(0, func() { s.Start() })
	sched.RunUntil(10 * sim.Millisecond)
	if len(flows) == 0 || flows[0] != 7 {
		t.Fatalf("flow id not carried: %v", flows)
	}
}
