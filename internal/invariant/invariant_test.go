package invariant

import (
	"encoding/json"
	"strings"
	"testing"

	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// testNet builds a two-host network with one middle link pair and returns
// the forward link.
func testNet(t *testing.T, qBytes int) (*netsim.Network, *netsim.Host, *netsim.Host, *netsim.Link) {
	t.Helper()
	sched := sim.NewScheduler()
	n := netsim.New(sched, sim.NewRNG(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	fwd, _ := n.Connect(a, b, 1_000_000, 10*sim.Millisecond, qBytes)
	n.ComputeRoutes()
	return n, a, b, fwd
}

func send(n *netsim.Network, a, b *netsim.Host, size int) {
	n.Scheduler().Schedule(n.Scheduler().Now(), func() {
		a.Send(n.NewPacket(a.Addr(), b.Addr(), size, nil))
	})
}

// A clean run satisfies every link law, both mid-run and after drain.
func TestCleanLinkPassesAllChecks(t *testing.T) {
	n, a, b, fwd := testNet(t, 2000)
	for i := 0; i < 50; i++ {
		send(n, a, b, 576)
	}
	n.Scheduler().RunUntil(100 * sim.Millisecond)

	var aud Auditor
	aud.CheckLink(n.Scheduler().Now(), fwd)
	aud.CheckLinkDrained(n.Scheduler().Now(), fwd)
	aud.CheckPoolBalance(n.Scheduler().Now(), n.Pool(), 0)
	if !aud.Ok() {
		t.Fatalf("clean run reported violations: %v", aud.Err())
	}
	if fwd.Queue.Dropped == 0 {
		t.Fatal("test burst did not overflow the queue — drop accounting untested")
	}
}

// Mid-run, with packets still queued and in flight, conservation must hold
// with the in-transit terms.
func TestConservationHoldsMidRun(t *testing.T) {
	n, a, b, fwd := testNet(t, 1<<20)
	for i := 0; i < 20; i++ {
		send(n, a, b, 576)
	}
	// Stop mid-flight: some packets queued, one serializing, some propagating.
	n.Scheduler().RunUntil(3 * sim.Millisecond)
	if fwd.Queue.Len() == 0 && fwd.InFlight() == 0 && !fwd.Serializing() {
		t.Fatal("nothing in transit — mid-run check is vacuous")
	}
	var aud Auditor
	aud.CheckLink(n.Scheduler().Now(), fwd)
	if !aud.Ok() {
		t.Fatalf("mid-run conservation violated: %v", aud.Err())
	}
}

// Regression for the acceptance criterion: an intentionally injected
// accounting bug — a drop that forgets its bookkeeping, here simulated by
// un-counting a delivery — must be caught by the conservation law.
func TestInjectedAccountingBugIsCaught(t *testing.T) {
	n, a, b, fwd := testNet(t, 1<<20)
	for i := 0; i < 10; i++ {
		send(n, a, b, 576)
	}
	n.Scheduler().RunUntil(sim.Second)

	fwd.Delivered-- // the injected bug: one delivery vanishes from the books

	var aud Auditor
	aud.CheckLink(n.Scheduler().Now(), fwd)
	if aud.Ok() {
		t.Fatal("injected conservation bug went undetected")
	}
	if aud.Violations()[0].Rule != RuleLinkConservation {
		t.Fatalf("wrong rule: %v", aud.Violations()[0])
	}
}

// A leaked pool reference (the skip-a-Release-on-drop class of bug) trips
// pool balance.
func TestLeakedReferenceIsCaught(t *testing.T) {
	pool := &packet.Pool{}
	p := pool.Get(1, 2, 100, nil)
	q := pool.Get(1, 2, 100, nil)
	p.Release()
	_ = q // q is never released: the injected leak

	var aud Auditor
	aud.CheckPoolBalance(sim.Second, pool, 0)
	if aud.Ok() {
		t.Fatal("leaked reference went undetected")
	}
	v := aud.Violations()[0]
	if v.Rule != RulePoolBalance || v.Got != 1 {
		t.Fatalf("wrong diagnostic: %v", v)
	}
}

// Pool balance is measured against a baseline, so an experiment sharing a
// pool with an earlier leaky one is not blamed for inherited imbalance.
func TestPoolBalanceBaseline(t *testing.T) {
	pool := &packet.Pool{}
	pool.Get(1, 2, 100, nil) // inherited leak from a previous run
	base := pool.Outstanding()

	p := pool.Get(1, 2, 100, nil)
	p.Release()
	var aud Auditor
	aud.CheckPoolBalance(0, pool, base)
	if !aud.Ok() {
		t.Fatalf("baseline not honored: %v", aud.Err())
	}
}

func TestQueueOccupancyViolation(t *testing.T) {
	_, _, _, fwd := testNet(t, 1000)
	fwd.Queue.MaxFilled = 2000 // injected: high-water mark above capacity
	var aud Auditor
	aud.CheckLink(0, fwd)
	found := false
	for _, v := range aud.Violations() {
		if v.Rule == RuleQueueOccupancy {
			found = true
		}
	}
	if !found {
		t.Fatalf("occupancy breach undetected: %v", aud.Violations())
	}
}

func TestUtilizationBoundViolation(t *testing.T) {
	n, a, b, fwd := testNet(t, 1<<20)
	for i := 0; i < 5; i++ {
		send(n, a, b, 576)
	}
	n.Scheduler().RunUntil(sim.Second)
	fwd.SentBytes += 10_000_000 // injected: bits from nowhere
	var aud Auditor
	aud.CheckLink(n.Scheduler().Now(), fwd)
	found := false
	for _, v := range aud.Violations() {
		if v.Rule == RuleUtilizationBound {
			found = true
		}
	}
	if !found {
		t.Fatalf("utilization breach undetected: %v", aud.Violations())
	}
}

func TestMonotonicTime(t *testing.T) {
	var aud Auditor
	last := sim.Time(0)
	aud.CheckMonotonicTime(&last, 5*sim.Second)
	aud.CheckMonotonicTime(&last, 5*sim.Second) // equal is fine
	if !aud.Ok() {
		t.Fatalf("monotonic samples flagged: %v", aud.Err())
	}
	aud.CheckMonotonicTime(&last, 4*sim.Second)
	if aud.Ok() {
		t.Fatal("clock rewind undetected")
	}
}

// Graft consistency: an IGMP member implies a fabric graft; forcing the two
// views apart must be detected.
func TestGraftConsistency(t *testing.T) {
	sched := sim.NewScheduler()
	n := netsim.New(sched, sim.NewRNG(1))
	fabric := mcast.NewFabric(n)
	left := mcast.NewRouter(n, fabric, "left")
	right := mcast.NewRouter(n, fabric, "right")
	n.Connect(left, right, 1_000_000, sim.Millisecond, 1<<20)
	src := n.AddHost("src")
	n.Connect(src, left, 10_000_000, sim.Millisecond, 1<<20)
	rcv := n.AddHost("rcv")
	n.Connect(rcv, right, 10_000_000, sim.Millisecond, 1<<20)
	right.AttachLocal(rcv)
	n.ComputeRoutes()

	group := packet.MulticastBase + 1
	fabric.SetSource(group, src.ID())
	igmp := mcast.NewIGMP(right)
	cli := mcast.NewClient(rcv, right.Addr())
	sched.Schedule(0, func() { cli.Join(group) })
	sched.RunUntil(100 * sim.Millisecond)

	if !igmp.Entitled(group, rcv.Addr()) {
		t.Fatal("receiver not entitled after join — setup broken")
	}
	edges := []*mcast.Router{right}
	groups := []packet.Addr{group}

	var aud Auditor
	aud.CheckGraftConsistency(sched.Now(), fabric, edges, groups)
	if !aud.Ok() {
		t.Fatalf("consistent state flagged: %v", aud.Err())
	}

	// Injected divergence: prune the fabric behind the gatekeeper's back.
	fabric.Prune(group, right.ID())
	aud = Auditor{}
	aud.CheckGraftConsistency(sched.Now(), fabric, edges, groups)
	if aud.Ok() {
		t.Fatal("entitlement without graft undetected")
	}
	if aud.Violations()[0].Rule != RuleGraftConsistency {
		t.Fatalf("wrong rule: %v", aud.Violations()[0])
	}
}

// Violations serialize to JSON (the fuzz repro files embed them) and the
// auditor caps storage while still counting.
func TestViolationSerializationAndLimit(t *testing.T) {
	aud := Auditor{Limit: 2}
	for i := 0; i < 5; i++ {
		aud.Reportf(RulePoolBalance, "s", sim.Second, 1, 0, "leak %d", i)
	}
	if len(aud.Violations()) != 2 || aud.Total != 5 {
		t.Fatalf("limit broken: recorded %d, total %d", len(aud.Violations()), aud.Total)
	}
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "3 more not recorded") {
		t.Fatalf("Err missing overflow note: %v", err)
	}
	js, err := json.Marshal(aud.Violations())
	if err != nil {
		t.Fatal(err)
	}
	var back []Violation
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back[0] != aud.Violations()[0] {
		t.Fatalf("round trip changed the violation: %+v vs %+v", back[0], aud.Violations()[0])
	}
}
