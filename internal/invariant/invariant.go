// Package invariant is the runtime audit layer of the simulator: a set of
// conservation laws and consistency checks that any experiment must satisfy
// at any instant (and a few more that must hold once traffic has stopped
// and the network drained), together with an Auditor that collects typed,
// serializable diagnostics when one is violated.
//
// The checks are deliberately expressed over the engine-layer types
// (packet.Pool, netsim.Link, mcast.Fabric) rather than over experiments, so
// they can be asserted from unit tests of any layer; the deltasigma facade
// wires them onto a whole Experiment via WithAudit, and internal/fuzzing
// runs every machine-generated scenario under them.
//
// The laws, and why they hold (see DESIGN.md "Validation"):
//
//   - Pool balance: every pooled packet reference that is issued is
//     eventually released exactly once, so after traffic stops and the
//     network drains, Pool.Outstanding() returns to its pre-experiment
//     value. A violation is a reference leak (or double release, which
//     panics earlier).
//   - Link conservation: every packet handed to Link.Send is in exactly one
//     place — delivered, drop-tail dropped, outage-discarded, queued, in
//     propagation, or serializing. The counters on both sides are updated
//     by disjoint code paths, so the equation catches a lost or
//     double-counted packet whichever path miscounts.
//   - Utilization bound: a link cannot deliver more bits than its capacity
//     integral (rate over up-time) admits, with one packet of slack per
//     rate change for the packet mid-serialization when the rate drops.
//   - Queue occupancy: a bounded queue never holds more bytes than its
//     capacity — push enforces it, so a violation means accounting drift.
//   - Time monotonicity: the virtual clock never rewinds between samples.
//   - Graft consistency: a gatekeeper that would forward a group onto a
//     local interface implies a live graft for that group at its edge
//     router — entitlement changes call Graft/Prune synchronously.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Violation is one detected invariant breach: a typed, serializable
// diagnostic carrying the rule that failed, the subject it failed on, the
// virtual time of detection and the observed-versus-required quantities.
type Violation struct {
	// Rule names the invariant, e.g. "pool-balance" or "link-conservation".
	Rule string `json:"rule"`
	// Subject locates the breach (a link label, a receiver label); empty
	// for experiment-global rules.
	Subject string `json:"subject,omitempty"`
	// AtSec is the virtual time of detection in seconds.
	AtSec float64 `json:"at_sec"`
	// Got and Want are the observed and required quantities of the rule's
	// comparison (for equality rules Want is the exact value, for bound
	// rules the bound).
	Got  float64 `json:"got"`
	Want float64 `json:"want"`
	// Detail is the human-readable diagnostic.
	Detail string `json:"detail"`
}

// String renders the violation for logs and test failures.
func (v Violation) String() string {
	s := fmt.Sprintf("[%s]", v.Rule)
	if v.Subject != "" {
		s += " " + v.Subject
	}
	return fmt.Sprintf("%s at %.3fs: %s (got %g, want %g)", s, v.AtSec, v.Detail, v.Got, v.Want)
}

// Rule names, exported so callers can filter violations by kind.
const (
	RulePoolBalance      = "pool-balance"
	RuleLinkConservation = "link-conservation"
	RuleUtilizationBound = "utilization-bound"
	RuleQueueOccupancy   = "queue-occupancy"
	RuleLinkDrained      = "link-drained"
	RuleTimeMonotonic    = "time-monotonic"
	RuleGraftConsistency = "graft-consistency"
	RuleLevelBounds      = "level-bounds"
	// RuleCohortConservation is member conservation for aggregated receiver
	// populations: online plus offline members always equals the configured
	// count — churn toggles move members between the two pools, never
	// create or destroy them.
	RuleCohortConservation = "cohort-conservation"
	RuleSuppressionOracle  = "suppression-oracle"
	// RuleOracleWindow flags a mis-specified oracle (its measurement window
	// never opened) — distinct from a genuine suppression failure so
	// shrinking and triage never conflate the two.
	RuleOracleWindow = "oracle-window"
)

// DefaultLimit caps how many violations an Auditor records; a systematically
// broken invariant would otherwise flood a periodic audit with thousands of
// identical reports.
const DefaultLimit = 64

// Auditor accumulates violations. The zero value is ready to use.
type Auditor struct {
	// Limit caps recorded violations (0 = DefaultLimit). Detection keeps
	// counting past the cap — only storage stops.
	Limit int
	// Total counts every violation observed, recorded or not.
	Total int

	vs []Violation
}

// Report records a violation (subject to Limit).
func (a *Auditor) Report(v Violation) {
	a.Total++
	limit := a.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	if len(a.vs) < limit {
		a.vs = append(a.vs, v)
	}
}

// Reportf builds and records a violation.
func (a *Auditor) Reportf(rule, subject string, at sim.Time, got, want float64, format string, args ...any) {
	a.Report(Violation{
		Rule:    rule,
		Subject: subject,
		AtSec:   at.Sec(),
		Got:     got,
		Want:    want,
		Detail:  fmt.Sprintf(format, args...),
	})
}

// Violations returns the recorded violations in detection order.
func (a *Auditor) Violations() []Violation { return a.vs }

// Ok reports whether no violation has been observed.
func (a *Auditor) Ok() bool { return a.Total == 0 }

// Err returns nil when the audit is clean, or an error describing every
// recorded violation.
func (a *Auditor) Err() error {
	if a.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s)", a.Total)
	for _, v := range a.vs {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if a.Total > len(a.vs) {
		fmt.Fprintf(&b, "\n  ... %d more not recorded", a.Total-len(a.vs))
	}
	return fmt.Errorf("%s", b.String())
}

// ---------------------------------------------------------------------------
// Checks.

// CheckPoolBalance asserts the pool's outstanding-reference gauge is back at
// baseline (the value snapshotted before the experiment issued its first
// packet — campaign workers reuse one pool across runs, so absolute zero
// would blame a leak on whichever later experiment happened to share the
// pool). Call only after traffic has stopped and the network drained.
func (a *Auditor) CheckPoolBalance(at sim.Time, pool *packet.Pool, baseline uint64) {
	if out := pool.Outstanding(); out != baseline {
		// Report the per-experiment delta only: the pool's cumulative
		// counters reflect every earlier run that shared it on this worker,
		// so embedding them would make a failing diagnostic depend on
		// worker-pool history and break outcome byte-identity across
		// worker counts.
		leaked := int64(out) - int64(baseline)
		a.Reportf(RulePoolBalance, "", at, float64(leaked), 0,
			"%d pooled packet references unreleased after drain", leaked)
	}
}

// CheckLink asserts the instantaneous per-link laws: packet conservation,
// the capacity-integral bound on serialized bytes, and queue occupancy.
// Safe to call at any virtual time, running or drained.
func (a *Auditor) CheckLink(at sim.Time, l *netsim.Link) {
	label := l.String()

	// Conservation: every arrival is in exactly one place.
	serializing := uint64(0)
	if l.Serializing() {
		serializing = 1
	}
	accounted := l.Delivered + l.Queue.Dropped + l.DroppedDown +
		uint64(l.Queue.Len()) + uint64(l.InFlight()) + serializing
	if l.Arrived != accounted {
		a.Reportf(RuleLinkConservation, label, at, float64(accounted), float64(l.Arrived),
			"arrived %d != delivered %d + dropped %d + dropped-down %d + queued %d + in-flight %d + serializing %d",
			l.Arrived, l.Delivered, l.Queue.Dropped, l.DroppedDown,
			l.Queue.Len(), l.InFlight(), serializing)
	}

	// Utilization: serialized bits never exceed the capacity integral, with
	// one max-sized packet of slack per rate change (a packet already
	// serializing completes on the old timing when the rate drops).
	capBits := l.CapacityBits()
	slack := float64(8*l.MaxPacketBytes) * float64(1+l.RateChanges)
	if sent := float64(l.SentBytes) * 8; sent > capBits+slack {
		a.Reportf(RuleUtilizationBound, label, at, sent, capBits+slack,
			"serialized %.0f bits exceeds capacity integral %.0f + slack %.0f", sent, capBits, slack)
	}

	// Occupancy: a bounded queue stays within its byte capacity.
	if limit := l.Queue.CapBytes; limit > 0 {
		if b := l.Queue.Bytes(); b > limit {
			a.Reportf(RuleQueueOccupancy, label, at, float64(b), float64(limit),
				"queue holds %d bytes over its %d-byte capacity", b, limit)
		}
		if l.Queue.MaxFilled > limit {
			a.Reportf(RuleQueueOccupancy, label, at, float64(l.Queue.MaxFilled), float64(limit),
				"queue high-water mark %d exceeded its %d-byte capacity", l.Queue.MaxFilled, limit)
		}
	}
}

// CheckLinkDrained asserts the link holds no packets — queue empty, nothing
// serializing, nothing in propagation. Call only after traffic has stopped
// and the drain grace elapsed.
func (a *Auditor) CheckLinkDrained(at sim.Time, l *netsim.Link) {
	if held := l.Queue.Len() + l.InFlight(); held > 0 || l.Serializing() {
		s := 0
		if l.Serializing() {
			s = 1
		}
		a.Reportf(RuleLinkDrained, l.String(), at, float64(held+s), 0,
			"link still holds packets after drain: %d queued, %d in flight, %d serializing",
			l.Queue.Len(), l.InFlight(), s)
	}
}

// CheckMonotonicTime asserts the virtual clock did not rewind since the
// previous sample and advances *last to now.
func (a *Auditor) CheckMonotonicTime(last *sim.Time, now sim.Time) {
	if now < *last {
		a.Reportf(RuleTimeMonotonic, "", now, now.Sec(), last.Sec(),
			"virtual clock rewound from %v to %v", *last, now)
		return
	}
	*last = now
}

// CheckGraftConsistency asserts, for every edge router whose gatekeeper
// exposes the read-only entitlement view, that an entitled (group, local
// interface) pair implies a live graft for that group at the router:
// gatekeepers call Graft synchronously when the first interface becomes
// entitled and Prune only after the last one stops being, so a forwarding
// decision with no graft behind it means the two views have diverged.
func (a *Auditor) CheckGraftConsistency(at sim.Time, fabric *mcast.Fabric, edges []*mcast.Router, groups []packet.Addr) {
	for _, edge := range edges {
		reader, ok := edge.Gatekeeper().(mcast.EntitlementReader)
		if !ok {
			continue
		}
		// Locals is a map; sort the addresses so violation order (and with
		// it any fingerprint of the audit) is deterministic.
		hosts := make([]packet.Addr, 0, len(edge.Locals()))
		for host := range edge.Locals() {
			hosts = append(hosts, host)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		for _, host := range hosts {
			for _, g := range groups {
				if reader.Entitled(g, host) && !fabric.Joined(g, edge.ID()) {
					a.Reportf(RuleGraftConsistency, edge.Name(), at, 1, 0,
						"host %v entitled to group %v but the edge holds no graft", host, g)
				}
			}
		}
	}
}
