package shamir

import (
	"testing"
	"testing/quick"

	"deltasigma/internal/sim"
)

func testSplitter() *Splitter {
	return NewSplitter(sim.NewRNG(1234).Uint64)
}

func TestRoundTripExactThreshold(t *testing.T) {
	s := testSplitter()
	for _, k := range []int{1, 2, 3, 5, 10} {
		secret := uint64(0xbeef) + uint64(k)
		poly, err := s.Sample(secret, k)
		if err != nil {
			t.Fatal(err)
		}
		shares := make([]Share, k)
		for i := range shares {
			shares[i] = poly.ShareAt(uint32(i + 1))
		}
		got, err := Reconstruct(shares)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Fatalf("k=%d: reconstructed %#x, want %#x", k, got, secret)
		}
	}
}

func TestRoundTripAnySubsetOfShares(t *testing.T) {
	s := testSplitter()
	const k, n = 4, 12
	secret := uint64(0x1a2b)
	poly, err := s.Sample(secret, k)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]Share, n)
	for i := range all {
		all[i] = poly.ShareAt(uint32(i + 1))
	}
	// Every sliding window of k shares reconstructs.
	for start := 0; start+k <= n; start++ {
		got, err := Reconstruct(all[start : start+k])
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Fatalf("window at %d: got %#x, want %#x", start, got, secret)
		}
	}
	// More than k shares also reconstruct (over-determined but consistent).
	got, err := Reconstruct(all)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("all shares: got %#x, want %#x", got, secret)
	}
}

func TestFewerThanThresholdHidesSecret(t *testing.T) {
	s := testSplitter()
	const k = 5
	secret := uint64(0x7777)
	misses := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		poly, err := s.Sample(secret, k)
		if err != nil {
			t.Fatal(err)
		}
		shares := make([]Share, k-1)
		for i := range shares {
			shares[i] = poly.ShareAt(uint32(i + 1))
		}
		got, err := Reconstruct(shares)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			misses++
		}
	}
	// With k−1 shares the interpolated value is a uniform field element;
	// hitting the secret has probability ~2^-31 per trial.
	if misses < trials-1 {
		t.Fatalf("secret leaked with k-1 shares in %d/%d trials", trials-misses, trials)
	}
}

func TestReconstructRejectsDuplicates(t *testing.T) {
	s := testSplitter()
	poly, _ := s.Sample(42, 2)
	sh := poly.ShareAt(3)
	if _, err := Reconstruct([]Share{sh, sh}); err == nil {
		t.Fatal("duplicate shares should be rejected")
	}
}

func TestReconstructRejectsEmpty(t *testing.T) {
	if _, err := Reconstruct(nil); err == nil {
		t.Fatal("empty share list should be rejected")
	}
}

func TestReconstructRejectsXZero(t *testing.T) {
	if _, err := Reconstruct([]Share{{X: 0, Y: 1}}); err == nil {
		t.Fatal("share at x=0 should be rejected")
	}
}

func TestShareAtZeroPanics(t *testing.T) {
	s := testSplitter()
	poly, _ := s.Sample(42, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("ShareAt(0) should panic")
		}
	}()
	poly.ShareAt(0)
}

func TestSampleRejectsBadThreshold(t *testing.T) {
	s := testSplitter()
	if _, err := s.Sample(1, 0); err == nil {
		t.Fatal("k=0 should be rejected")
	}
	if _, err := s.Sample(1, -3); err == nil {
		t.Fatal("k<0 should be rejected")
	}
}

func TestThresholdOneIsConstant(t *testing.T) {
	s := testSplitter()
	poly, _ := s.Sample(99, 1)
	for x := uint32(1); x < 10; x++ {
		if poly.ShareAt(x).Y != 99 {
			t.Fatal("k=1 polynomial should be the constant secret")
		}
	}
}

func TestSecretReducedModPrime(t *testing.T) {
	s := testSplitter()
	poly, _ := s.Sample(Prime+5, 3)
	shares := []Share{poly.ShareAt(1), poly.ShareAt(2), poly.ShareAt(3)}
	got, err := Reconstruct(shares)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("got %d, want secret mod Prime = 5", got)
	}
}

// Property: split/reconstruct round-trips for arbitrary secrets, thresholds,
// and share positions.
func TestRoundTripProperty(t *testing.T) {
	s := testSplitter()
	f := func(secretRaw uint64, kRaw uint8, offset uint16) bool {
		k := int(kRaw%8) + 1
		secret := secretRaw % Prime
		poly, err := s.Sample(secret, k)
		if err != nil {
			return false
		}
		shares := make([]Share, k)
		for i := range shares {
			shares[i] = poly.ShareAt(uint32(offset) + uint32(i) + 1)
		}
		got, err := Reconstruct(shares)
		return err == nil && got == secret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestModInverse(t *testing.T) {
	for _, a := range []uint64{1, 2, 3, 65537, Prime - 1} {
		inv := modInverse(a)
		if a*inv%Prime != 1 {
			t.Fatalf("inverse of %d wrong: %d", a, inv)
		}
	}
}

func BenchmarkShareAt(b *testing.B) {
	s := testSplitter()
	poly, _ := s.Sample(0xabcd, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = poly.ShareAt(uint32(i%1000) + 1)
	}
}

func BenchmarkReconstructK8(b *testing.B) {
	s := testSplitter()
	poly, _ := s.Sample(0xabcd, 8)
	shares := make([]Share, 8)
	for i := range shares {
		shares[i] = poly.ShareAt(uint32(i + 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(shares); err != nil {
			b.Fatal(err)
		}
	}
}
