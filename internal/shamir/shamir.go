// Package shamir implements Shamir's (k,n) threshold secret-sharing scheme
// over a prime field, as required by the DELTA instantiation for
// threshold-based multicast protocols (paper §3.1.2, equations 7–9).
//
// The sender picks a random polynomial q of degree k−1 with q(0) = key,
// and places the share (p, q(p)) into packet p of the subscription level.
// A receiver that obtains at least k of the n packets interpolates q and
// recovers the key as q(0); with fewer than k shares the key remains
// information-theoretically hidden. This lets a protocol like RLM or WEBRC
// declare a receiver "uncongested at level g" exactly when its loss rate at
// that level stays under 1 − k/n.
package shamir

import (
	"errors"
	"fmt"
)

// Prime is the field modulus: 2^31 − 1 (a Mersenne prime), comfortably
// larger than the 16-bit keys of the paper while keeping all arithmetic in
// uint64 without overflow.
const Prime uint64 = 1<<31 - 1

// Share is one point (X, q(X)) of the secret polynomial; X is never zero.
type Share struct {
	X uint32
	Y uint32
}

// ErrInsufficient reports reconstruction attempted with fewer shares than
// the threshold used at split time cannot be detected locally; this error is
// returned only for structurally invalid inputs (no shares, duplicates).
var ErrInsufficient = errors.New("shamir: not enough distinct shares")

// Splitter emits shares of secrets using externally supplied randomness so
// simulations stay deterministic.
type Splitter struct {
	next func() uint64
}

// NewSplitter returns a Splitter drawing coefficients from next.
func NewSplitter(next func() uint64) *Splitter {
	return &Splitter{next: next}
}

// Polynomial is a sampled secret polynomial; it can emit any number of
// shares, which is how the sender spreads one key over all n packets of a
// time slot without knowing n in advance.
type Polynomial struct {
	coeff []uint64 // coeff[0] = secret, degree k-1
}

// Sample picks a uniform polynomial of degree k−1 with q(0) = secret mod
// Prime. k must be at least 1.
func (s *Splitter) Sample(secret uint64, k int) (*Polynomial, error) {
	if k < 1 {
		return nil, fmt.Errorf("shamir: threshold k=%d must be >= 1", k)
	}
	coeff := make([]uint64, k)
	coeff[0] = secret % Prime
	for i := 1; i < k; i++ {
		coeff[i] = s.next() % Prime
	}
	return &Polynomial{coeff: coeff}, nil
}

// Threshold reports k, the number of shares needed for reconstruction.
func (p *Polynomial) Threshold() int { return len(p.coeff) }

// ShareAt evaluates the polynomial at x (x ≥ 1) and returns the share that
// packet number x carries. x = 0 would disclose the secret and panics.
func (p *Polynomial) ShareAt(x uint32) Share {
	if x == 0 {
		panic("shamir: share at x=0 would be the secret itself")
	}
	return Share{X: x, Y: uint32(p.eval(uint64(x)))}
}

// eval computes q(x) mod Prime by Horner's rule.
func (p *Polynomial) eval(x uint64) uint64 {
	x %= Prime
	var acc uint64
	for i := len(p.coeff) - 1; i >= 0; i-- {
		acc = (acc*x + p.coeff[i]) % Prime
	}
	return acc
}

// Reconstruct interpolates the unique degree ≤ len(shares)−1 polynomial
// through the given shares and returns its value at zero. When called with
// at least Threshold() genuine shares of one polynomial the result is the
// secret; with fewer, the result is an unrelated field element — exactly the
// security property DELTA relies on. Duplicate X coordinates are rejected.
func Reconstruct(shares []Share) (uint64, error) {
	if len(shares) == 0 {
		return 0, ErrInsufficient
	}
	seen := make(map[uint32]bool, len(shares))
	for _, sh := range shares {
		if sh.X == 0 {
			return 0, fmt.Errorf("shamir: invalid share x=0")
		}
		if seen[sh.X] {
			return 0, ErrInsufficient
		}
		seen[sh.X] = true
	}
	// Lagrange interpolation at x = 0:
	//   q(0) = Σ_i y_i · Π_{j≠i} x_j / (x_j − x_i)  (mod Prime)
	var secret uint64
	for i, si := range shares {
		num, den := uint64(1), uint64(1)
		xi := uint64(si.X) % Prime
		for j, sj := range shares {
			if j == i {
				continue
			}
			xj := uint64(sj.X) % Prime
			num = num * xj % Prime
			den = den * ((xj + Prime - xi) % Prime) % Prime
		}
		term := uint64(si.Y) % Prime * num % Prime * modInverse(den) % Prime
		secret = (secret + term) % Prime
	}
	return secret, nil
}

// modInverse computes a^(Prime−2) mod Prime by Fermat's little theorem.
func modInverse(a uint64) uint64 {
	return modPow(a%Prime, Prime-2)
}

func modPow(base, exp uint64) uint64 {
	result := uint64(1)
	base %= Prime
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % Prime
		}
		base = base * base % Prime
		exp >>= 1
	}
	return result
}
