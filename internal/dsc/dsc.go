// Package dsc implements dynamic source channels after Lucas et al.
// (PAPERS.md), as a competitor to the paper's DELTA/SIGMA-protected
// protocols: the sender owns the layer rates and adapts them to aggregated
// receiver feedback instead of leaving all adaptation to receivers.
//
//   - receivers follow the FLID subscription rules (drop the top group on
//     a lossy slot, add a group on the slot's increase signal) and unicast
//     a per-slot status report toward the source (packet.FeedbackHeader);
//   - routers running hierarchical consolidation merge the reports on the
//     way up, so the source sees one digest per slot per subtree;
//   - the sender scales every layer down multiplicatively while any report
//     says congested, and recovers slowly after consecutive clean slots.
//
// Membership stays plain IGMP, so the inflated-subscription attacker joins
// every group exactly as against FLID-DL — and by silencing its own
// feedback while honest receivers keep reporting loss, it drives the
// source's rates down for everyone while keeping the whole (reduced)
// session for itself.
package dsc

import (
	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// guardFraction mirrors the FLID receiver's slot-evaluation guard.
const guardFraction = 0.8

// tallyW is the receiver's slot tally window (a power of two).
const tallyW = 4

// Source-rate adaptation constants: one congested slot scales every layer
// by cutFactor; recoverAfter consecutive clean slots scale it back by
// raiseFactor, never above the schedule (multiplier 1) and never below
// minMult.
const (
	cutFactor    = 0.875
	raiseFactor  = 1.0625
	recoverAfter = 2
	minMult      = 0.25
)

// Sender is the session source: a slotted layered sender whose per-group
// rates are the schedule's scaled by a feedback-driven multiplier.
type Sender struct {
	Sess   *core.Session
	host   *netsim.Host
	policy core.UpgradePolicy
	rng    *sim.RNG

	pacers  []core.Pacer
	mult    float64
	clean   int
	congest bool // any congested report since the last slot began
	running bool

	// Stats.
	PacketsSent, BytesSent, SlotsRun uint64
	// FeedbackReports counts reports consumed (consolidated ones via their
	// merged Reports field); RateCuts and RateRaises count multiplier moves.
	FeedbackReports      uint64
	RateCuts, RateRaises uint64
}

// NewSender builds a dsc source on host.
func NewSender(host *netsim.Host, sess *core.Session, policy core.UpgradePolicy, rng *sim.RNG) *Sender {
	sess.Rates.Validate()
	s := &Sender{
		Sess: sess, host: host, policy: policy, rng: rng,
		pacers: make([]core.Pacer, sess.Rates.N),
		mult:   1,
	}
	for i := range s.pacers {
		s.pacers[i].MinOne = true
	}
	host.Handle(packet.ProtoFeedback, s.onFeedback)
	return s
}

// Mult returns the current rate multiplier applied to every layer.
func (s *Sender) Mult() float64 { return s.mult }

// Start begins the slot loop at the session epoch.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	sched := s.host.Scheduler()
	start := s.Sess.Epoch
	if start < sched.Now() {
		start = sched.Now()
	}
	sched.At(start, func() { s.runSlot(s.Sess.SlotAt(sched.Now())) })
}

// Stop halts the sender after the current slot.
func (s *Sender) Stop() { s.running = false }

func (s *Sender) onFeedback(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FeedbackHeader)
	if !ok || h.Session != s.Sess.ID {
		return
	}
	n := uint64(h.Reports)
	if n == 0 {
		n = 1
	}
	s.FeedbackReports += n
	if h.Congested {
		s.congest = true
	}
}

func (s *Sender) runSlot(slot uint32) {
	if !s.running {
		return
	}
	s.SlotsRun++
	sched := s.host.Scheduler()
	n := s.Sess.Rates.N

	// Adapt the multiplier to the feedback gathered during the last slot.
	if s.congest {
		s.congest = false
		s.clean = 0
		if s.mult > minMult {
			s.mult *= cutFactor
			if s.mult < minMult {
				s.mult = minMult
			}
			s.RateCuts++
		}
	} else if s.clean++; s.clean >= recoverAfter && s.mult < 1 {
		s.mult *= raiseFactor
		if s.mult > 1 {
			s.mult = 1
		}
		s.RateRaises++
	}

	inc := s.policy.IncreaseTo(slot)
	if inc > n {
		inc = n
	}

	slotStart := s.Sess.SlotStart(slot)
	pool := s.host.Network().Pool()
	for g := 1; g <= n; g++ {
		rate := int64(s.mult * float64(s.Sess.Rates.GroupRate(g)))
		cnt := s.pacers[g-1].Packets(rate, s.Sess.SlotDur, s.Sess.PacketSize)
		if cnt == 0 {
			continue
		}
		spacing := s.Sess.SlotDur / sim.Time(cnt)
		for j := 1; j <= cnt; j++ {
			hdr := pool.FLIDHeader()
			hdr.Session, hdr.Group, hdr.Slot = s.Sess.ID, uint8(g), slot
			hdr.Seq, hdr.Count, hdr.IncreaseTo = uint16(j), uint16(cnt), uint8(inc)
			at := slotStart + sim.Time(j-1)*spacing + s.rng.Jitter(spacing/2)
			if at < sched.Now() {
				at = sched.Now()
			}
			pkt := s.host.Network().NewPacket(s.host.Addr(), s.Sess.GroupAddr(g), s.Sess.PacketSize, hdr)
			sched.Schedule(at, func() { s.emit(pkt) })
		}
	}

	sched.Schedule(s.Sess.SlotStart(slot+1), func() { s.runSlot(slot + 1) })
}

func (s *Sender) emit(pkt *packet.Packet) {
	s.PacketsSent++
	s.BytesSent += uint64(pkt.Size)
	s.host.Send(pkt)
}

// Receiver is a well-behaved dsc receiver: FLID subscription rules plus a
// per-slot unicast status report toward the session source.
type Receiver struct {
	Sess *core.Session
	host *netsim.Host
	igmp *mcast.Client

	running bool
	level   int
	loop    *core.SlotLoop

	tags   [tallyW]uint32
	got    []uint16
	expect []uint16
	incs   [tallyW]uint8
	joined []uint32

	// Meter records delivered session bytes.
	Meter *stats.Meter
	// Decreases and Increases count subscription moves; ReportsSent counts
	// feedback packets emitted.
	Decreases, Increases uint64
	ReportsSent          uint64
}

// NewReceiver builds a dsc receiver on host, managing membership through
// the edge router at routerAddr.
func NewReceiver(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Receiver {
	n := sess.Rates.N
	r := &Receiver{
		Sess:   sess,
		host:   host,
		igmp:   mcast.NewClient(host, routerAddr),
		got:    make([]uint16, tallyW*n),
		expect: make([]uint16, tallyW*n),
		joined: make([]uint32, n),
		Meter:  stats.NewMeter(sim.Second),
	}
	r.loop = core.NewSlotLoop(host.Scheduler(), sess,
		sim.Time(guardFraction*float64(sess.SlotDur)), r.onEval)
	host.Handle(packet.ProtoFLID, r.onData)
	return r
}

// Level reports the current subscription level.
func (r *Receiver) Level() int { return r.level }

// Start joins the session at the minimal level.
func (r *Receiver) Start() {
	if r.running {
		return
	}
	r.running = true
	cur := r.Sess.SlotAt(r.host.Scheduler().Now())
	r.level = 1
	r.joined[0] = cur + 1
	r.igmp.Join(r.Sess.GroupAddr(1))
	r.loop.Schedule(cur)
}

// Stop leaves every group and halts evaluation (and with it the feedback
// stream — a stopped receiver reports nothing).
func (r *Receiver) Stop() {
	if !r.running {
		return
	}
	r.running = false
	for g := 1; g <= r.level; g++ {
		r.igmp.Leave(r.Sess.GroupAddr(g))
	}
	r.level = 0
}

func (r *Receiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != r.Sess.ID {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	g := int(h.Group)
	n := r.Sess.Rates.N
	if g < 1 || g > n {
		return
	}
	idx := int(h.Slot) & (tallyW - 1)
	if r.tags[idx] != h.Slot {
		r.tags[idx] = h.Slot
		row := r.got[idx*n : (idx+1)*n]
		for i := range row {
			row[i] = 0
		}
		r.incs[idx] = 0
	}
	r.got[idx*n+g-1]++
	r.expect[idx*n+g-1] = h.Count
	if h.IncreaseTo > r.incs[idx] {
		r.incs[idx] = h.IncreaseTo
	}
}

func (r *Receiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	r.evaluate(slot)
	return true
}

func (r *Receiver) evaluate(slot uint32) {
	if r.level == 0 {
		return
	}
	n := r.Sess.Rates.N
	idx := int(slot) & (tallyW - 1)
	has := r.tags[idx] == slot
	loss := false
	for g := 1; g <= r.level; g++ {
		if r.joined[g-1] > slot {
			continue
		}
		got := r.got[idx*n+g-1]
		if !has || got == 0 || got < r.expect[idx*n+g-1] {
			loss = true
			break
		}
	}
	inc := 0
	if has {
		inc = int(r.incs[idx])
	}

	switch {
	case loss && r.level > 1:
		r.igmp.Leave(r.Sess.GroupAddr(r.level))
		r.level--
		r.Decreases++
	case loss:
		// The minimal group is the session floor.
	case inc >= r.level+1 && r.level < n:
		r.level++
		r.joined[r.level-1] = slot + 2
		r.igmp.Join(r.Sess.GroupAddr(r.level))
		r.Increases++
	}
	r.report(slot, loss)
}

// report unicasts the slot's status toward the session source; routers
// running consolidation merge it with sibling reports on the way up.
func (r *Receiver) report(slot uint32, congested bool) {
	if r.Sess.Src == 0 {
		return
	}
	hdr := &packet.FeedbackHeader{
		Session:   r.Sess.ID,
		Slot:      slot,
		Count:     1,
		MaxLevel:  uint8(r.level),
		Congested: congested,
		Reports:   1,
	}
	r.host.Send(r.host.NewPacket(r.Sess.Src, 0, hdr))
	r.ReportsSent++
}

// Attacker is the inflated-subscription misbehaver against dsc: it joins
// every group through plain IGMP and goes silent on the feedback channel,
// so the honest receivers' loss reports throttle the source while the
// attacker keeps the full (reduced) session.
type Attacker struct {
	*Receiver
	igmpAtk  *mcast.Client
	inflated bool
}

// NewAttacker builds a dsc attacker on host.
func NewAttacker(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Attacker {
	return &Attacker{
		Receiver: NewReceiver(host, sess, routerAddr),
		igmpAtk:  mcast.NewClient(host, routerAddr),
	}
}

// Inflate switches to full-subscription misbehaviour.
func (a *Attacker) Inflate() {
	if a.inflated {
		return
	}
	a.inflated = true
	a.Receiver.Stop()
	for g := 1; g <= a.Sess.Rates.N; g++ {
		a.igmpAtk.Join(a.Sess.GroupAddr(g))
	}
}

// Deflate withdraws the attack and resumes well-behaved control.
func (a *Attacker) Deflate() {
	if !a.inflated {
		return
	}
	a.inflated = false
	for g := 1; g <= a.Sess.Rates.N; g++ {
		a.igmpAtk.Leave(a.Sess.GroupAddr(g))
	}
	a.Receiver.Start()
}

// Inflated reports whether the attack is active.
func (a *Attacker) Inflated() bool { return a.inflated }
