package cohort

import (
	"testing"

	"deltasigma/internal/core"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/topo"
)

// testAgent assembles a minimal dumbbell with one cohort of n members hanging
// off the right edge, without running the scheduler: the white-box tests
// below drive the aggregate's slot machinery directly.
func testAgent(t *testing.T, n uint64) (*topo.Dumbbell, *core.Session, *Agent) {
	t.Helper()
	d := topo.New(topo.PaperConfig(250_000, 1))
	src := d.AddSource("src")
	p := d.AttachCohort("cohort", -1)
	d.Done()
	sess := &core.Session{
		ID:         1,
		BaseAddr:   packet.MulticastBase,
		Rates:      core.PaperSchedule(),
		SlotDur:    500 * sim.Millisecond,
		PacketSize: 576,
	}
	for _, addr := range sess.Addrs() {
		d.Fabric.SetSource(addr, src.ID())
	}
	return d, sess, New(p.Host, p.Edge, sess, n)
}

// fullTally builds a tally where groups 1..upTo were fully received and the
// sender signalled an increase to level inc.
func fullTally(sess *core.Session, upTo, inc int) *slotTally {
	tl := newSlotTally(sess.Rates.N)
	for g := 1; g <= upTo; g++ {
		tl.got[g-1] = 2
		tl.expect[g-1] = 2
	}
	tl.inc = inc
	return tl
}

func TestPendingEqualNormalizesPastDeadlines(t *testing.T) {
	mk := func(level int, deadlines map[int]uint32) *bucket {
		b := &bucket{count: 1, level: level, joinedSlot: make([]uint32, 16)}
		for g, s := range deadlines {
			b.joinedSlot[g] = s
		}
		return b
	}
	const slot = 10
	// A deadline at or before slot+1 is already satisfied, so it must compare
	// equal to a zero deadline.
	a := mk(3, map[int]uint32{2: slot + 1, 3: slot})
	b := mk(3, map[int]uint32{})
	if !a.pendingEqual(b, slot) || !b.pendingEqual(a, slot) {
		t.Fatal("past probation deadlines should normalize to zero")
	}
	// A still-pending deadline is behavioural state and must keep buckets apart.
	c := mk(3, map[int]uint32{3: slot + 2})
	if a.pendingEqual(c, slot) {
		t.Fatal("future probation deadline compared equal to a satisfied one")
	}
	// Different levels never merge.
	if a.pendingEqual(mk(2, nil), slot) {
		t.Fatal("buckets at different levels compared equal")
	}
}

func TestAdmitMergesEquivalentBuckets(t *testing.T) {
	_, sess, a := testAgent(t, 100)
	// Fresh joiners are always level-1 with an immediately-satisfiable
	// probation deadline, and Rule 2 never fires below level 2, so level-1
	// admissions coalesce into one bucket no matter when they arrive.
	a.admit(40, 5)
	a.admit(10, 7)
	if len(a.buckets) != 1 || a.buckets[0].count != 50 {
		t.Fatalf("level-1 admissions: %d buckets, first count %d", len(a.buckets), a.buckets[0].count)
	}
	// Once a bucket has climbed, new joiners at level 1 must split off.
	a.buckets[0].level = 3
	a.admit(25, 9)
	if len(a.buckets) != 2 {
		t.Fatalf("admission against a climbed bucket should split: %d buckets", len(a.buckets))
	}
	a.admit(5, 9) // ...and further admissions land in the level-1 bucket
	if len(a.buckets) != 2 || a.buckets[1].count != 30 {
		t.Fatalf("repeat admission: %d buckets, level-1 count %d", len(a.buckets), a.buckets[1].count)
	}
	// Buckets whose pending state has converged merge back on evaluation.
	a.buckets[1].level = 3
	a.buckets[1].joinedSlot = make([]uint32, sess.Rates.N+1)
	a.mergeBuckets(20)
	if len(a.buckets) != 1 || a.buckets[0].count != 80 {
		t.Fatalf("post-probation merge: %d buckets, first count %d", len(a.buckets), a.buckets[0].count)
	}
}

func TestLevelsMeanLevelSubscribers(t *testing.T) {
	_, sess, a := testAgent(t, 100)
	a.offline = 40
	a.buckets = []*bucket{
		{count: 50, level: 1, joinedSlot: make([]uint32, sess.Rates.N+1)},
		{count: 10, level: 3, joinedSlot: make([]uint32, sess.Rates.N+1)},
	}
	lv := a.Levels()
	if lv[0] != 40 || lv[1] != 50 || lv[3] != 10 {
		t.Fatalf("Levels() = %v", lv)
	}
	if a.Level() != 3 {
		t.Fatalf("Level() = %d, want 3", a.Level())
	}
	if got, want := a.MeanLevel(), (50*1+10*3)/100.0; got != want {
		t.Fatalf("MeanLevel() = %v, want %v", got, want)
	}
	if a.subscribers(1) != 60 || a.subscribers(2) != 10 || a.subscribers(4) != 0 {
		t.Fatalf("subscribers: %d/%d/%d", a.subscribers(1), a.subscribers(2), a.subscribers(4))
	}
	if a.Online() != 60 || a.Offline() != 40 || a.Accounted() != 100 {
		t.Fatalf("online/offline/accounted: %d/%d/%d", a.Online(), a.Offline(), a.Accounted())
	}
}

// TestToggleConservesMembers drives a long pseudo-random toggle sequence and
// checks the conservation invariant the auditor enforces: every member is
// always accounted for, online or offline, no matter the churn history.
func TestToggleConservesMembers(t *testing.T) {
	const n = 1000
	_, _, a := testAgent(t, n)
	a.Start()
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		a.Toggle(x % n)
		if got := a.Accounted(); got != n {
			t.Fatalf("after %d toggles: accounted %d of %d", i+1, got, n)
		}
	}
	if a.Online() > n {
		t.Fatalf("online %d exceeds membership", a.Online())
	}
	// Out-of-range indexes are ignored, not misaccounted.
	a.Toggle(n)
	a.Toggle(n + 12345)
	if a.Accounted() != n {
		t.Fatalf("out-of-range toggle broke conservation: %d", a.Accounted())
	}
}

func TestEvaluateRuleDecreaseOnLoss(t *testing.T) {
	_, sess, a := testAgent(t, 80)
	a.buckets = []*bucket{{count: 80, level: 3, joinedSlot: make([]uint32, sess.Rates.N+1)}}
	a.subTop = 3
	// Group 3 saw half its packets: loss, so Rule 2 drops the bucket to 2.
	tl := fullTally(sess, 2, 0)
	tl.got[2] = 1
	tl.expect[2] = 2
	a.tallies[9] = tl
	a.evaluate(9)
	if a.buckets[0].level != 2 || a.Decreases != 80 {
		t.Fatalf("level %d, decreases %d; want 2, 80", a.buckets[0].level, a.Decreases)
	}
	// A level-1 bucket under loss holds at 1: a receiver never leaves its
	// last group on congestion (Rule 2 applies only above the base layer).
	a.buckets[0].level = 1
	a.tallies[10] = newSlotTally(sess.Rates.N) // nothing received: total loss
	a.evaluate(10)
	if a.buckets[0].level != 1 {
		t.Fatalf("base level dropped to %d", a.buckets[0].level)
	}
}

func TestEvaluateRuleIncreaseOnSignal(t *testing.T) {
	_, sess, a := testAgent(t, 60)
	a.buckets = []*bucket{{count: 60, level: 2, joinedSlot: make([]uint32, sess.Rates.N+1)}}
	a.subTop = 2
	// Clean slot with an increase signal to level 3: Rule 3 climbs and arms
	// the new group's two-slot join probation.
	a.tallies[7] = fullTally(sess, 2, 3)
	a.evaluate(7)
	b := a.buckets[0]
	if b.level != 3 || a.Increases != 60 {
		t.Fatalf("level %d, increases %d; want 3, 60", b.level, a.Increases)
	}
	if b.joinedSlot[3] != 9 {
		t.Fatalf("probation deadline %d, want slot+2 = 9", b.joinedSlot[3])
	}
	if a.subTop != 3 {
		t.Fatalf("edge subscription %d not reconciled to 3", a.subTop)
	}
	// The probationary group is exempt from the loss rule until its deadline:
	// a slot with group 3 missing entirely must not demote the bucket.
	a.tallies[8] = fullTally(sess, 2, 0)
	a.evaluate(8)
	if a.buckets[0].level != 3 {
		t.Fatalf("probationary group loss demoted bucket to %d", a.buckets[0].level)
	}
}

func TestEvaluateMissingTallyIsTotalLoss(t *testing.T) {
	_, sess, a := testAgent(t, 10)
	a.buckets = []*bucket{{count: 10, level: 4, joinedSlot: make([]uint32, sess.Rates.N+1)}}
	a.subTop = 4
	a.evaluate(42) // no tally recorded for slot 42 at all
	if a.buckets[0].level != 3 || a.Decreases != 10 {
		t.Fatalf("level %d, decreases %d; want 3, 10", a.buckets[0].level, a.Decreases)
	}
}

func TestEvaluateGarbageCollectsStrayTallies(t *testing.T) {
	_, sess, a := testAgent(t, 10)
	a.buckets = []*bucket{{count: 10, level: 1, joinedSlot: make([]uint32, sess.Rates.N+1)}}
	a.tallies[1] = newSlotTally(sess.Rates.N)
	a.tallies[8] = newSlotTally(sess.Rates.N)
	a.tallies[10] = fullTally(sess, 1, 0)
	a.evaluate(10)
	if _, ok := a.tallies[1]; ok {
		t.Fatal("stale tally for slot 1 survived GC")
	}
	if _, ok := a.tallies[8]; !ok {
		t.Fatal("recent tally for slot 8 collected too early")
	}
}

// TestStartStopLifecycle checks the bulk lifecycle against the subscription
// diff: Start brings the whole population online at the base level with one
// graft, Stop leaves every group and parks the members offline.
func TestStartStopLifecycle(t *testing.T) {
	d, _, a := testAgent(t, 500)
	d.Sched.At(0, a.Start)
	d.Sched.RunUntil(100 * sim.Millisecond)
	if a.Online() != 500 || a.Level() != 1 || a.subTop != 1 {
		t.Fatalf("after Start: online %d level %d subTop %d", a.Online(), a.Level(), a.subTop)
	}
	a.Stop()
	if a.Online() != 0 || a.Offline() != 500 || a.subTop != 0 || a.Joined() {
		t.Fatalf("after Stop: online %d offline %d subTop %d", a.Online(), a.Offline(), a.subTop)
	}
	if a.Accounted() != 500 {
		t.Fatalf("lifecycle broke conservation: %d", a.Accounted())
	}
}
