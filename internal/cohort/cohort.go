// Package cohort models a homogeneous population of well-behaved layered
// receivers behind one shared edge as a fluid aggregate: a subscription-level
// distribution plus a member count, instead of N per-packet receiver objects.
//
// The aggregate advances with exactly the FLID-DL/DS slot rules individual
// receivers run (internal/flid: decrease on loss, increase on signal, join
// probation of two slots), applied to buckets of members that share a level
// and probation state. Because multicast delivers one copy of each group per
// edge regardless of how many receivers sit behind it, per-slot work is
// O(groups + buckets) — independent of the member count — which is what
// makes million-receiver sessions simulable. Attackers and receivers on
// contested paths stay exact per-packet objects; cohorts coexist with them
// in the same experiment and share the same bottlenecks, graft machinery and
// slot clock.
package cohort

import (
	"fmt"

	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// guardFraction matches internal/flid: evaluation waits 0.8 of a slot into
// the following slot so queue-delayed packets of the slot still count.
const guardFraction = 0.8

// slotTally accumulates per-group receptions for one data slot, shared by
// every member of the cohort (they all sit behind the same delivery point).
type slotTally struct {
	got    []int
	expect []int
	inc    int
}

func newSlotTally(n int) *slotTally {
	return &slotTally{got: make([]int, n), expect: make([]int, n)}
}

func (t *slotTally) observe(h *packet.FLIDHeader) {
	g := int(h.Group)
	if g < 1 || g > len(t.got) {
		return
	}
	t.got[g-1]++
	t.expect[g-1] = int(h.Count)
	if int(h.IncreaseTo) > t.inc {
		t.inc = int(h.IncreaseTo)
	}
}

// lost reports whether group g (1-based) is missing packets.
func (t *slotTally) lost(g int) bool {
	return t.got[g-1] == 0 || t.got[g-1] < t.expect[g-1]
}

// bucket is a set of members sharing one subscription level and one join
// history. Absent churn the whole cohort is a single bucket moving in
// lockstep; churn splits off fresh level-1 buckets that climb back up and
// merge again once their probation state coincides with an existing bucket.
type bucket struct {
	count      uint64
	level      int
	joinedSlot []uint32 // first fully counted data slot per group
}

// pendingEqual reports whether two buckets will behave identically from the
// next slot on: same level and the same probation deadline for every group
// whose join is not yet fully observed. Past deadlines are irrelevant.
func (b *bucket) pendingEqual(o *bucket, slot uint32) bool {
	if b.level != o.level {
		return false
	}
	for g := 1; g <= b.level; g++ {
		bp, op := b.joinedSlot[g], o.joinedSlot[g]
		if bp <= slot+1 {
			bp = 0
		}
		if op <= slot+1 {
			op = 0
		}
		if bp != op {
			return false
		}
	}
	return true
}

// Agent is the running aggregate: it manages the cohort's group membership
// through the private edge's plain-IGMP gatekeeper (the cohort models
// honest receivers, so key enforcement against it is moot), tallies the
// per-edge delivery of each slot once, and advances the level distribution.
type Agent struct {
	Sess *core.Session
	host *netsim.Host
	edge *mcast.Router
	igmp *mcast.Client

	members uint64 // configured population
	offline uint64 // members currently left
	buckets []*bucket
	subTop  int // highest group subscribed at the edge
	running bool
	loop    *core.SlotLoop
	tallies map[uint32]*slotTally

	// feedbackDst, when nonzero, is the unicast address (the session
	// source) the cohort reports its slot status to — one FeedbackHeader
	// per slot, the leaf input of hierarchical consolidation.
	feedbackDst packet.Addr

	// Meter records delivered session bytes summed across members: each
	// arriving packet counts once per member subscribed to its group.
	Meter *stats.Meter
	// Decreases and Increases total per-member subscription moves.
	Decreases, Increases uint64
	// ReportsSent counts feedback reports emitted.
	ReportsSent uint64
}

// New builds a cohort of n members on host behind the private edge router.
// The edge gets a plain-IGMP gatekeeper installed; the agent owns all
// graft/prune activity on it.
func New(host *netsim.Host, edge *mcast.Router, sess *core.Session, n uint64) *Agent {
	if n == 0 {
		panic("cohort: member count must be positive")
	}
	if sess.Rates.N < 1 {
		panic(fmt.Sprintf("cohort: invalid session schedule %+v", sess.Rates))
	}
	mcast.NewIGMP(edge)
	a := &Agent{
		Sess:    sess,
		host:    host,
		edge:    edge,
		igmp:    mcast.NewClient(host, edge.Addr()),
		members: n,
		offline: n,
		tallies: make(map[uint32]*slotTally),
		Meter:   stats.NewMeter(sim.Second),
	}
	a.loop = core.NewSlotLoop(host.Scheduler(), sess,
		sim.Time(guardFraction*float64(sess.SlotDur)), a.onEval)
	host.Handle(packet.ProtoFLID, a.onData)
	return a
}

// SetFeedbackDst aims the cohort's per-slot feedback reports at dst
// (normally the session source's unicast address); zero disables reporting.
func (a *Agent) SetFeedbackDst(dst packet.Addr) { a.feedbackDst = dst }

// Edge returns the cohort's private edge router.
func (a *Agent) Edge() *mcast.Router { return a.edge }

// Host returns the cohort's delivery host.
func (a *Agent) Host() *netsim.Host { return a.host }

// Members returns the configured population size.
func (a *Agent) Members() uint64 { return a.members }

// Online returns how many members are currently joined.
func (a *Agent) Online() uint64 {
	var n uint64
	for _, b := range a.buckets {
		n += b.count
	}
	return n
}

// Offline returns how many members are currently left.
func (a *Agent) Offline() uint64 { return a.offline }

// Accounted returns Online()+Offline(); the cohort-conservation invariant
// requires it to equal Members() at all times.
func (a *Agent) Accounted() uint64 { return a.Online() + a.offline }

// Level reports the highest occupied subscription level (0 when every
// member is offline), the cohort analogue of ReceiverAgent.Level.
func (a *Agent) Level() int {
	top := 0
	for _, b := range a.buckets {
		if b.level > top {
			top = b.level
		}
	}
	return top
}

// Levels returns the member count per subscription level; index 0 holds the
// offline members and index g the members subscribed to groups 1..g.
func (a *Agent) Levels() []uint64 {
	out := make([]uint64, a.Sess.Rates.N+1)
	out[0] = a.offline
	for _, b := range a.buckets {
		if b.level >= 1 && b.level < len(out) {
			out[b.level] += b.count
		}
	}
	return out
}

// MeanLevel returns the average subscription level across all members,
// offline members counting as level 0.
func (a *Agent) MeanLevel() float64 {
	var sum uint64
	for _, b := range a.buckets {
		sum += b.count * uint64(b.level)
	}
	return float64(sum) / float64(a.members)
}

// Joined reports whether any member is currently online.
func (a *Agent) Joined() bool { return len(a.buckets) > 0 }

// Start brings every offline member online at the minimal level, exactly an
// individual receiver's Start scaled by the member count.
func (a *Agent) Start() {
	cur := a.Sess.SlotAt(a.host.Scheduler().Now())
	if !a.running {
		a.running = true
		a.loop.Schedule(cur)
	}
	if a.offline == 0 {
		return
	}
	a.admit(a.offline, cur)
	a.offline = 0
	a.resubscribe(cur)
}

// Stop takes every member offline and leaves every subscribed group.
func (a *Agent) Stop() {
	if !a.running {
		return
	}
	a.running = false
	a.offline = a.members
	a.buckets = a.buckets[:0]
	for g := 1; g <= a.subTop; g++ {
		a.igmp.Leave(a.Sess.GroupAddr(g))
	}
	a.subTop = 0
}

// Toggle flips one member between joined and left; idx must be uniform in
// [0, Members()). Members are exchangeable, so mapping low indexes to the
// offline pool and the rest across buckets by cumulative count makes a
// uniform idx a uniform member choice — the cohort analogue of PoissonChurn
// toggling one uniformly chosen individual receiver.
func (a *Agent) Toggle(idx uint64) {
	if idx >= a.members {
		return
	}
	cur := a.Sess.SlotAt(a.host.Scheduler().Now())
	if idx < a.offline {
		if !a.running {
			a.running = true
			a.loop.Schedule(cur)
		}
		a.offline--
		a.admit(1, cur)
		a.resubscribe(cur)
		return
	}
	idx -= a.offline
	for i, b := range a.buckets {
		if idx < b.count {
			b.count--
			if b.count == 0 {
				a.buckets = append(a.buckets[:i], a.buckets[i+1:]...)
			}
			a.offline++
			a.resubscribe(cur)
			return
		}
		idx -= b.count
	}
}

// admit adds n members at the minimal level with fresh join probation,
// merging into an equivalent bucket when one exists.
func (a *Agent) admit(n uint64, cur uint32) {
	nb := &bucket{count: n, level: 1, joinedSlot: make([]uint32, a.Sess.Rates.N+1)}
	nb.joinedSlot[1] = cur + 1
	for _, b := range a.buckets {
		if b.pendingEqual(nb, cur) {
			b.count += n
			return
		}
	}
	a.buckets = append(a.buckets, nb)
}

// resubscribe diffs the edge subscription against the distribution's top
// level, issuing bulk joins/leaves through the IGMP client — the cohort's
// whole population rides one graft per group.
func (a *Agent) resubscribe(cur uint32) {
	top := a.Level()
	for g := a.subTop + 1; g <= top; g++ {
		a.igmp.Join(a.Sess.GroupAddr(g))
	}
	for g := a.subTop; g > top; g-- {
		a.igmp.Leave(a.Sess.GroupAddr(g))
	}
	a.subTop = top
}

// onEval fires once per slot on the loop's reusable timer.
func (a *Agent) onEval(slot uint32) bool {
	if !a.running {
		return false
	}
	a.evaluate(slot)
	return true
}

// subscribers returns how many members are subscribed to group g.
func (a *Agent) subscribers(g int) uint64 {
	var n uint64
	for _, b := range a.buckets {
		if b.level >= g {
			n += b.count
		}
	}
	return n
}

func (a *Agent) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != a.Sess.ID {
		return
	}
	// One wire packet stands in for a delivery to every member subscribed
	// to its group: the aggregate meter advances by count × size.
	if n := a.subscribers(int(h.Group)); n > 0 {
		a.Meter.Add(a.host.Scheduler().Now(), int(n)*pkt.Size)
	}
	t := a.tallies[h.Slot]
	if t == nil {
		t = newSlotTally(a.Sess.Rates.N)
		a.tallies[h.Slot] = t
	}
	t.observe(h)
}

// evaluate applies the FLID subscription rules to the finished slot, bucket
// by bucket, then reconciles the edge subscription and reports upstream.
func (a *Agent) evaluate(slot uint32) {
	t := a.tallies[slot]
	delete(a.tallies, slot)
	for s := range a.tallies {
		if s+4 < slot {
			delete(a.tallies, s) // GC strays
		}
	}
	if len(a.buckets) == 0 {
		return
	}
	if t == nil {
		t = newSlotTally(a.Sess.Rates.N)
	}

	congested := false
	for _, b := range a.buckets {
		loss := false
		for g := 1; g <= b.level; g++ {
			if b.joinedSlot[g] > slot {
				continue // not yet a full member for this slot
			}
			if t.lost(g) {
				loss = true
				break
			}
		}
		switch {
		case loss && b.level > 1:
			// Rule 2: a congested receiver of g groups must drop group g.
			b.level--
			a.Decreases += b.count
			congested = true
		case loss:
			congested = true
		case t.inc >= b.level+1 && b.level < a.Sess.Rates.N:
			// Rule 3: an authorized uncongested receiver adds one group.
			b.level++
			b.joinedSlot[b.level] = slot + 2
			a.Increases += b.count
		}
	}
	a.mergeBuckets(slot)
	a.resubscribe(slot)
	a.report(slot, congested)
}

// mergeBuckets coalesces buckets that have become behaviourally identical,
// keeping the bucket list bounded regardless of churn history.
func (a *Agent) mergeBuckets(slot uint32) {
	out := a.buckets[:0]
	for _, b := range a.buckets {
		merged := false
		for _, o := range out {
			if o.pendingEqual(b, slot) {
				o.count += b.count
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, b)
		}
	}
	a.buckets = out
}

// report emits the cohort's per-slot feedback leaf report.
func (a *Agent) report(slot uint32, congested bool) {
	online := a.Online()
	if a.feedbackDst == 0 || online == 0 {
		return
	}
	a.host.Send(a.host.Network().NewPacket(a.host.Addr(), a.feedbackDst, 0, &packet.FeedbackHeader{
		Session:   a.Sess.ID,
		Slot:      slot,
		Count:     online,
		MaxLevel:  uint8(a.Level()),
		Congested: congested,
		Reports:   1,
	}))
	a.ReportsSent++
}
