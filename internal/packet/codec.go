package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"deltasigma/internal/keys"
)

// Wire format: a 24-byte common header (magic, version, proto, flags, src,
// dst, size, uid), the typed protocol header, then zero padding up to the
// declared size. All integers are big-endian.

const (
	wireMagic   = 0xD5
	wireVersion = 1

	flagECN   = 1 << 0
	flagAlert = 1 << 1
)

// Encode serializes the packet to its wire representation. The result is
// exactly p.Size bytes.
func Encode(p *Packet) ([]byte, error) {
	hdrLen := CommonWireLen
	if p.Header != nil {
		hdrLen += p.Header.WireLen()
	}
	if p.Size < hdrLen {
		return nil, fmt.Errorf("packet: size %d smaller than headers %d", p.Size, hdrLen)
	}
	buf := make([]byte, p.Size)
	buf[0] = wireMagic
	buf[1] = wireVersion
	buf[2] = byte(p.Proto)
	var flags byte
	if p.ECN {
		flags |= flagECN
	}
	if p.Alert {
		flags |= flagAlert
	}
	buf[3] = flags
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[8:], uint32(p.Dst))
	binary.BigEndian.PutUint32(buf[12:], uint32(p.Size))
	binary.BigEndian.PutUint64(buf[16:], p.UID)
	if p.Header != nil {
		if err := encodeHeader(buf[CommonWireLen:], p.Header); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Decode parses a wire representation produced by Encode.
func Decode(data []byte) (*Packet, error) {
	if len(data) < CommonWireLen {
		return nil, errors.New("packet: short common header")
	}
	if data[0] != wireMagic {
		return nil, fmt.Errorf("packet: bad magic %#x", data[0])
	}
	if data[1] != wireVersion {
		return nil, fmt.Errorf("packet: unsupported version %d", data[1])
	}
	p := &Packet{
		Proto: Proto(data[2]),
		ECN:   data[3]&flagECN != 0,
		Alert: data[3]&flagAlert != 0,
		Src:   Addr(binary.BigEndian.Uint32(data[4:])),
		Dst:   Addr(binary.BigEndian.Uint32(data[8:])),
		Size:  int(binary.BigEndian.Uint32(data[12:])),
		UID:   binary.BigEndian.Uint64(data[16:]),
		refs:  1,
	}
	if p.Size != len(data) {
		return nil, fmt.Errorf("packet: declared size %d but %d bytes on wire", p.Size, len(data))
	}
	if p.Proto >= protoMax {
		return nil, fmt.Errorf("packet: unknown protocol %d", p.Proto)
	}
	if p.Proto != ProtoNone {
		hdr, err := decodeHeader(p.Proto, data[CommonWireLen:])
		if err != nil {
			return nil, err
		}
		p.Header = hdr
	}
	return p, nil
}

func encodeHeader(buf []byte, h Header) error {
	if len(buf) < h.WireLen() {
		return errors.New("packet: buffer too small for header")
	}
	switch t := h.(type) {
	case *FLIDHeader:
		binary.BigEndian.PutUint16(buf[0:], t.Session)
		buf[2] = t.Group
		binary.BigEndian.PutUint32(buf[3:], t.Slot)
		binary.BigEndian.PutUint16(buf[7:], t.Seq)
		binary.BigEndian.PutUint16(buf[9:], t.Count)
		buf[11] = t.IncreaseTo
		buf[12] = b2u8(t.HasDelta)
		binary.BigEndian.PutUint64(buf[13:], uint64(t.Component))
		binary.BigEndian.PutUint64(buf[21:], uint64(t.Decrease))
		binary.BigEndian.PutUint32(buf[29:], t.ShareX)
		binary.BigEndian.PutUint32(buf[33:], t.ShareY)
		binary.BigEndian.PutUint32(buf[37:], t.UpShareX)
		binary.BigEndian.PutUint32(buf[41:], t.UpShareY)
	case *ReplHeader:
		binary.BigEndian.PutUint16(buf[0:], t.Session)
		buf[2] = t.Group
		binary.BigEndian.PutUint32(buf[3:], t.Slot)
		binary.BigEndian.PutUint16(buf[7:], t.Seq)
		binary.BigEndian.PutUint16(buf[9:], t.Count)
		buf[11] = t.IncreaseTo
		buf[12] = b2u8(t.HasDelta)
		binary.BigEndian.PutUint64(buf[13:], uint64(t.Component))
		binary.BigEndian.PutUint64(buf[21:], uint64(t.Decrease))
	case *TCPHeader:
		binary.BigEndian.PutUint32(buf[0:], t.Flow)
		binary.BigEndian.PutUint32(buf[4:], t.Seq)
		binary.BigEndian.PutUint32(buf[8:], t.Len)
		binary.BigEndian.PutUint32(buf[12:], t.Ack)
		buf[16] = b2u8(t.IsAck)
	case *CBRHeader:
		binary.BigEndian.PutUint32(buf[0:], t.Flow)
		binary.BigEndian.PutUint32(buf[4:], t.Seq)
	case *SigmaHeader:
		buf[0] = byte(t.Kind)
		binary.BigEndian.PutUint32(buf[1:], t.Slot)
		binary.BigEndian.PutUint32(buf[5:], uint32(t.Minimal))
		binary.BigEndian.PutUint32(buf[9:], t.AckID)
		binary.BigEndian.PutUint16(buf[13:], uint16(len(t.Pairs)))
		off := 15
		for _, pr := range t.Pairs {
			binary.BigEndian.PutUint32(buf[off:], uint32(pr.Addr))
			binary.BigEndian.PutUint64(buf[off+4:], uint64(pr.Key))
			off += 12
		}
		binary.BigEndian.PutUint16(buf[off:], uint16(len(t.Addrs)))
		off += 2
		for _, a := range t.Addrs {
			binary.BigEndian.PutUint32(buf[off:], uint32(a))
			off += 4
		}
	case *KeyAnnounce:
		binary.BigEndian.PutUint16(buf[0:], t.Session)
		binary.BigEndian.PutUint32(buf[2:], t.Slot)
		buf[6] = t.FECIndex
		buf[7] = t.FECTotal
		binary.BigEndian.PutUint16(buf[8:], uint16(len(t.Tuples)))
		off := 10
		for _, tp := range t.Tuples {
			binary.BigEndian.PutUint32(buf[off:], uint32(tp.Addr))
			binary.BigEndian.PutUint64(buf[off+4:], uint64(tp.Top))
			binary.BigEndian.PutUint64(buf[off+12:], uint64(tp.Dec))
			binary.BigEndian.PutUint64(buf[off+20:], uint64(tp.Inc))
			var fl byte
			if tp.HasDec {
				fl |= 1
			}
			if tp.HasInc {
				fl |= 2
			}
			buf[off+28] = fl
			off += 29
		}
	case *IGMPHeader:
		buf[0] = byte(t.Op)
		binary.BigEndian.PutUint32(buf[1:], uint32(t.Group))
	case *FeedbackHeader:
		binary.BigEndian.PutUint16(buf[0:], t.Session)
		binary.BigEndian.PutUint32(buf[2:], t.Slot)
		binary.BigEndian.PutUint64(buf[6:], t.Count)
		buf[14] = t.MaxLevel
		buf[15] = b2u8(t.Congested)
		binary.BigEndian.PutUint32(buf[16:], t.Reports)
	case *ShareHeader:
		binary.BigEndian.PutUint16(buf[0:], t.Session)
		binary.BigEndian.PutUint64(buf[2:], uint64(t.ShareBps))
		binary.BigEndian.PutUint32(buf[10:], t.Subscribers)
	default:
		return fmt.Errorf("packet: cannot encode header type %T", h)
	}
	return nil
}

func decodeHeader(proto Proto, buf []byte) (Header, error) {
	switch proto {
	case ProtoFLID:
		var t FLIDHeader
		if len(buf) < t.WireLen() {
			return nil, errors.New("packet: short FLID header")
		}
		t.Session = binary.BigEndian.Uint16(buf[0:])
		t.Group = buf[2]
		t.Slot = binary.BigEndian.Uint32(buf[3:])
		t.Seq = binary.BigEndian.Uint16(buf[7:])
		t.Count = binary.BigEndian.Uint16(buf[9:])
		t.IncreaseTo = buf[11]
		t.HasDelta = buf[12] != 0
		t.Component = keys.Key(binary.BigEndian.Uint64(buf[13:]))
		t.Decrease = keys.Key(binary.BigEndian.Uint64(buf[21:]))
		t.ShareX = binary.BigEndian.Uint32(buf[29:])
		t.ShareY = binary.BigEndian.Uint32(buf[33:])
		t.UpShareX = binary.BigEndian.Uint32(buf[37:])
		t.UpShareY = binary.BigEndian.Uint32(buf[41:])
		return &t, nil
	case ProtoRepl:
		var t ReplHeader
		if len(buf) < t.WireLen() {
			return nil, errors.New("packet: short repl header")
		}
		t.Session = binary.BigEndian.Uint16(buf[0:])
		t.Group = buf[2]
		t.Slot = binary.BigEndian.Uint32(buf[3:])
		t.Seq = binary.BigEndian.Uint16(buf[7:])
		t.Count = binary.BigEndian.Uint16(buf[9:])
		t.IncreaseTo = buf[11]
		t.HasDelta = buf[12] != 0
		t.Component = keys.Key(binary.BigEndian.Uint64(buf[13:]))
		t.Decrease = keys.Key(binary.BigEndian.Uint64(buf[21:]))
		return &t, nil
	case ProtoTCP:
		var t TCPHeader
		if len(buf) < t.WireLen() {
			return nil, errors.New("packet: short TCP header")
		}
		t.Flow = binary.BigEndian.Uint32(buf[0:])
		t.Seq = binary.BigEndian.Uint32(buf[4:])
		t.Len = binary.BigEndian.Uint32(buf[8:])
		t.Ack = binary.BigEndian.Uint32(buf[12:])
		t.IsAck = buf[16] != 0
		return &t, nil
	case ProtoCBR:
		var t CBRHeader
		if len(buf) < t.WireLen() {
			return nil, errors.New("packet: short CBR header")
		}
		t.Flow = binary.BigEndian.Uint32(buf[0:])
		t.Seq = binary.BigEndian.Uint32(buf[4:])
		return &t, nil
	case ProtoSigma:
		var t SigmaHeader
		if len(buf) < 15 {
			return nil, errors.New("packet: short SIGMA header")
		}
		t.Kind = SigmaKind(buf[0])
		t.Slot = binary.BigEndian.Uint32(buf[1:])
		t.Minimal = Addr(binary.BigEndian.Uint32(buf[5:]))
		t.AckID = binary.BigEndian.Uint32(buf[9:])
		nPairs := int(binary.BigEndian.Uint16(buf[13:]))
		off := 15
		if len(buf) < off+nPairs*12+2 {
			return nil, errors.New("packet: truncated SIGMA pairs")
		}
		if nPairs > 0 {
			t.Pairs = make([]AddrKey, nPairs)
			for i := range t.Pairs {
				t.Pairs[i].Addr = Addr(binary.BigEndian.Uint32(buf[off:]))
				t.Pairs[i].Key = keys.Key(binary.BigEndian.Uint64(buf[off+4:]))
				off += 12
			}
		}
		nAddrs := int(binary.BigEndian.Uint16(buf[off:]))
		off += 2
		if len(buf) < off+nAddrs*4 {
			return nil, errors.New("packet: truncated SIGMA addrs")
		}
		if nAddrs > 0 {
			t.Addrs = make([]Addr, nAddrs)
			for i := range t.Addrs {
				t.Addrs[i] = Addr(binary.BigEndian.Uint32(buf[off:]))
				off += 4
			}
		}
		return &t, nil
	case ProtoKeyAnnounce:
		var t KeyAnnounce
		if len(buf) < 10 {
			return nil, errors.New("packet: short key-announce header")
		}
		t.Session = binary.BigEndian.Uint16(buf[0:])
		t.Slot = binary.BigEndian.Uint32(buf[2:])
		t.FECIndex = buf[6]
		t.FECTotal = buf[7]
		n := int(binary.BigEndian.Uint16(buf[8:]))
		if len(buf) < 10+n*29 {
			return nil, errors.New("packet: truncated key-announce tuples")
		}
		off := 10
		if n > 0 {
			t.Tuples = make([]KeyTuple, n)
			for i := range t.Tuples {
				tp := &t.Tuples[i]
				tp.Addr = Addr(binary.BigEndian.Uint32(buf[off:]))
				tp.Top = keys.Key(binary.BigEndian.Uint64(buf[off+4:]))
				tp.Dec = keys.Key(binary.BigEndian.Uint64(buf[off+12:]))
				tp.Inc = keys.Key(binary.BigEndian.Uint64(buf[off+20:]))
				tp.HasDec = buf[off+28]&1 != 0
				tp.HasInc = buf[off+28]&2 != 0
				off += 29
			}
		}
		return &t, nil
	case ProtoIGMP:
		var t IGMPHeader
		if len(buf) < t.WireLen() {
			return nil, errors.New("packet: short IGMP header")
		}
		t.Op = IGMPOp(buf[0])
		t.Group = Addr(binary.BigEndian.Uint32(buf[1:]))
		return &t, nil
	case ProtoFeedback:
		var t FeedbackHeader
		if len(buf) < t.WireLen() {
			return nil, errors.New("packet: short feedback header")
		}
		t.Session = binary.BigEndian.Uint16(buf[0:])
		t.Slot = binary.BigEndian.Uint32(buf[2:])
		t.Count = binary.BigEndian.Uint64(buf[6:])
		t.MaxLevel = buf[14]
		t.Congested = buf[15] != 0
		t.Reports = binary.BigEndian.Uint32(buf[16:])
		return &t, nil
	case ProtoShare:
		var t ShareHeader
		if len(buf) < t.WireLen() {
			return nil, errors.New("packet: short share header")
		}
		t.Session = binary.BigEndian.Uint16(buf[0:])
		t.ShareBps = int64(binary.BigEndian.Uint64(buf[2:]))
		t.Subscribers = binary.BigEndian.Uint32(buf[10:])
		return &t, nil
	default:
		return nil, fmt.Errorf("packet: cannot decode protocol %v", proto)
	}
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}
