package packet

import (
	"reflect"
	"testing"
	"testing/quick"

	"deltasigma/internal/keys"
)

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	data, err := Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(data) != p.Size {
		t.Fatalf("wire length %d != size %d", len(data), p.Size)
	}
	q, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return q
}

func TestRoundTripFLID(t *testing.T) {
	p := New(Addr(10), Group(MulticastBase, 4), 576, &FLIDHeader{
		Session: 7, Group: 5, Slot: 1234, Seq: 9, Count: 27, IncreaseTo: 6,
		HasDelta: true, Component: keys.Key(0xabcd), Decrease: keys.Key(0x1122),
		ShareX: 3, ShareY: 99, UpShareX: 4, UpShareY: 100,
	})
	p.UID = 42
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestRoundTripRepl(t *testing.T) {
	p := New(Addr(10), Group(MulticastBase, 2), 576, &ReplHeader{
		Session: 3, Group: 2, Slot: 55, Seq: 1, Count: 14, IncreaseTo: 3,
		HasDelta: true, Component: keys.Key(0x77), Decrease: keys.Key(0x88),
	})
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestRoundTripTCP(t *testing.T) {
	p := New(Addr(1), Addr(2), 576, &TCPHeader{
		Flow: 8, Seq: 100000, Len: 536, Ack: 0,
	})
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
	ack := New(Addr(2), Addr(1), 40, &TCPHeader{Flow: 8, Ack: 100536, IsAck: true})
	q2 := roundTrip(t, ack)
	if !reflect.DeepEqual(ack, q2) {
		t.Fatalf("ack round trip mismatch:\n got %+v\nwant %+v", q2, ack)
	}
}

func TestRoundTripCBR(t *testing.T) {
	p := New(Addr(5), Addr(6), 576, &CBRHeader{Flow: 2, Seq: 919})
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestRoundTripSigmaVariants(t *testing.T) {
	cases := []*SigmaHeader{
		{Kind: SigmaSessionJoin, Minimal: Group(MulticastBase, 0)},
		{Kind: SigmaSubscribe, Slot: 12, AckID: 77, Pairs: []AddrKey{
			{Addr: Group(MulticastBase, 0), Key: keys.Key(0x1111)},
			{Addr: Group(MulticastBase, 1), Key: keys.Key(0x2222)},
			{Addr: Group(MulticastBase, 2), Key: keys.Key(0x3333)},
		}},
		{Kind: SigmaUnsubscribe, Addrs: []Addr{Group(MulticastBase, 3), Group(MulticastBase, 4)}},
		{Kind: SigmaAck, Slot: 12, AckID: 77},
	}
	for _, h := range cases {
		p := New(Addr(9), Addr(1), 0, h)
		q := roundTrip(t, p)
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("%v round trip mismatch:\n got %+v\nwant %+v", h.Kind, q.Header, h)
		}
	}
}

func TestRoundTripKeyAnnounce(t *testing.T) {
	h := &KeyAnnounce{
		Session: 2, Slot: 900, FECIndex: 1, FECTotal: 2,
		Tuples: []KeyTuple{
			{Addr: Group(MulticastBase, 0), Top: 0xaaaa, Dec: 0xbbbb, HasDec: true},
			{Addr: Group(MulticastBase, 1), Top: 0xcccc, Dec: 0xdddd, Inc: 0xeeee, HasDec: true, HasInc: true},
			{Addr: Group(MulticastBase, 2), Top: 0xffff},
		},
	}
	p := New(Addr(9), MulticastBase, 0, h)
	p.Alert = true
	q := roundTrip(t, p)
	if !q.Alert {
		t.Fatal("alert flag lost")
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q.Header, h)
	}
}

func TestRoundTripIGMP(t *testing.T) {
	for _, op := range []IGMPOp{IGMPJoin, IGMPLeave} {
		p := New(Addr(3), Addr(1), 0, &IGMPHeader{Op: op, Group: Group(MulticastBase, 7)})
		q := roundTrip(t, p)
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("IGMP round trip mismatch: %+v vs %+v", q.Header, p.Header)
		}
	}
}

func TestRoundTripFeedback(t *testing.T) {
	p := New(Addr(44), Addr(1), 0, &FeedbackHeader{
		Session: 3, Slot: 812, Count: 1_000_000, MaxLevel: 7, Congested: true, Reports: 42,
	})
	q := roundTrip(t, p)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("feedback round trip mismatch:\n got %+v\nwant %+v", q.Header, p.Header)
	}
}

func TestECNFlagSurvives(t *testing.T) {
	p := New(Addr(1), Addr(2), 100, &CBRHeader{})
	p.ECN = true
	q := roundTrip(t, p)
	if !q.ECN {
		t.Fatal("ECN flag lost in round trip")
	}
}

func TestEncodeRejectsUndersizedPacket(t *testing.T) {
	h := &FLIDHeader{}
	p := &Packet{Src: 1, Dst: 2, Proto: ProtoFLID, Size: 10, Header: h}
	if _, err := Encode(p); err == nil {
		t.Fatal("Encode should reject size smaller than headers")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := New(Addr(1), Addr(2), 576, &FLIDHeader{Session: 1})
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}

	short := data[:10]
	if _, err := Decode(short); err == nil {
		t.Fatal("short packet accepted")
	}

	badMagic := append([]byte(nil), data...)
	badMagic[0] = 0x00
	if _, err := Decode(badMagic); err == nil {
		t.Fatal("bad magic accepted")
	}

	badVersion := append([]byte(nil), data...)
	badVersion[1] = 9
	if _, err := Decode(badVersion); err == nil {
		t.Fatal("bad version accepted")
	}

	badProto := append([]byte(nil), data...)
	badProto[2] = 250
	if _, err := Decode(badProto); err == nil {
		t.Fatal("unknown proto accepted")
	}

	truncated := data[:len(data)-400]
	if _, err := Decode(truncated); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// Property: FLID headers round-trip for arbitrary field values.
func TestRoundTripFLIDProperty(t *testing.T) {
	f := func(sess uint16, grp uint8, slot uint32, seq, count uint16, inc uint8, comp, dec uint64, sx, sy uint32, ecn bool) bool {
		h := &FLIDHeader{
			Session: sess, Group: grp, Slot: slot, Seq: seq, Count: count,
			IncreaseTo: inc, HasDelta: true,
			Component: keys.Key(comp), Decrease: keys.Key(dec),
			ShareX: sx, ShareY: sy,
		}
		p := New(Addr(1), Group(MulticastBase, int(grp)), 576, h)
		p.ECN = ecn
		data, err := Encode(p)
		if err != nil {
			return false
		}
		q, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SIGMA subscribe messages with arbitrary pair lists round-trip.
func TestRoundTripSigmaProperty(t *testing.T) {
	f := func(slot, ackID uint32, rawPairs []uint32) bool {
		if len(rawPairs) > 64 {
			rawPairs = rawPairs[:64]
		}
		pairs := make([]AddrKey, len(rawPairs))
		for i, r := range rawPairs {
			pairs[i] = AddrKey{Addr: Group(MulticastBase, i), Key: keys.Key(r)}
		}
		h := &SigmaHeader{Kind: SigmaSubscribe, Slot: slot, AckID: ackID}
		if len(pairs) > 0 {
			h.Pairs = pairs
		}
		p := New(Addr(3), Addr(4), 0, h)
		data, err := Encode(p)
		if err != nil {
			return false
		}
		q, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeFLID(b *testing.B) {
	p := New(Addr(1), MulticastBase, 576, &FLIDHeader{
		Session: 1, Group: 3, Slot: 100, Seq: 5, Count: 20, HasDelta: true,
		Component: 0xabcd, Decrease: 0x1234,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFLID(b *testing.B) {
	p := New(Addr(1), MulticastBase, 576, &FLIDHeader{Session: 1, HasDelta: true})
	data, err := Encode(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
