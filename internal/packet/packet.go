// Package packet defines the packet model shared by every protocol in the
// simulator, in the spirit of gopacket's layer architecture: a fixed common
// header plus one typed protocol header, each with a binary wire encoding
// that round-trips through Encode/Decode.
//
// Inside the simulator packets travel as *Packet values for speed; the wire
// codec exists so that header formats are concrete (the paper's Figure 6
// message formats and the DELTA component/decrease fields are real bytes
// with real sizes, which the §5.4 overhead accounting measures).
package packet

import (
	"fmt"
)

// Addr is a network address. The top nibble 0xE marks multicast group
// addresses, mirroring IPv4's 224.0.0.0/4.
type Addr uint32

// MulticastBase is the first multicast group address.
const MulticastBase Addr = 0xE0000000

// IsMulticast reports whether the address denotes a multicast group.
func (a Addr) IsMulticast() bool { return a >= MulticastBase }

// String renders the address dotted-quad style.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Group returns the i-th multicast address of a session whose groups start
// at base. Sessions allocate contiguous blocks.
func Group(base Addr, i int) Addr { return base + Addr(i) }

// Proto discriminates the typed header a packet carries.
type Proto uint8

// Protocol identifiers.
const (
	ProtoNone        Proto = iota // bare payload, no typed header
	ProtoFLID                     // layered multicast data (FLID-DL / FLID-DS)
	ProtoTCP                      // TCP segment (data or ACK)
	ProtoCBR                      // constant-bit-rate filler
	ProtoSigma                    // SIGMA control message (Figure 6)
	ProtoKeyAnnounce              // SIGMA special packet: address-key tuples for routers
	ProtoRepl                     // replicated multicast data (Figure 5 protocol)
	ProtoIGMP                     // plain IGMP join/leave (the insecure baseline)
	ProtoFeedback                 // consolidated receiver feedback report
	ProtoShare                    // network-assisted fair-share advertisement (mfcc)
	protoMax
)

var protoNames = [...]string{"none", "flid", "tcp", "cbr", "sigma", "keyann", "repl", "igmp", "feedback", "share"}

// String names the protocol.
func (p Proto) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Header is a typed protocol header. Implementations live in headers.go and
// marshal to/from the wire format in codec.go.
type Header interface {
	// HeaderProto identifies the concrete header type.
	HeaderProto() Proto
	// WireLen is the encoded length of the header in bytes; it is part of
	// the packet's on-the-wire size accounting.
	WireLen() int
}

// Packet is one simulated datagram. Size is the total wire size in bytes
// (headers plus payload padding) and is what links and queues account.
//
// Packets are reference-counted (see pool.go): multicast fan-out shares one
// envelope across branches via Retain/Release, and pooled packets return to
// their Pool's freelist on the last Release. Header contents are immutable
// once sent; a hop that must alter the envelope or replace the header calls
// Writable first (copy-on-write).
type Packet struct {
	Src, Dst Addr
	Proto    Proto
	Size     int
	ECN      bool // congestion-experienced mark (ECN-driven variant)
	Alert    bool // router-alert: edge routers intercept, never forward to hosts
	UID      uint64
	Header   Header

	refs int32
	pool *Pool
}

// CommonWireLen is the encoded length of the common header.
const CommonWireLen = 24

// init fills a zeroed envelope: one reference, proto derived from the
// header, and Size floored at the encoded header bytes. Shared by New and
// Pool.Get so pooled and un-pooled packets can never disagree on sizing.
func (p *Packet) init(src, dst Addr, size int, hdr Header) {
	p.refs = 1
	p.Src, p.Dst, p.Size, p.Header = src, dst, size, hdr
	if hdr != nil {
		p.Proto = hdr.HeaderProto()
		if min := CommonWireLen + hdr.WireLen(); p.Size < min {
			p.Size = min
		}
	} else if p.Size < CommonWireLen {
		p.Size = CommonWireLen
	}
}

// New builds a packet around hdr, sizing it to max(size, header bytes). The
// packet is heap-allocated and never pooled; hot paths use Pool.Get instead.
func New(src, dst Addr, size int, hdr Header) *Packet {
	p := &Packet{}
	p.init(src, dst, size, hdr)
	return p
}

// Clone returns an independent un-pooled shallow copy; headers are immutable
// by convention once a packet is sent, so cloning copies the envelope only.
// The simulator's replication paths use Retain/Writable instead — Clone
// remains for callers outside the pooled lifecycle (tests, one-shot tools).
func (p *Packet) Clone() *Packet {
	q := *p
	q.refs = 1
	q.pool = nil
	q.Header = cloneHeaderHeap(p.Header)
	return &q
}

// cloneHeaderHeap copies a pool-recyclable header onto the GC heap so an
// un-pooled copy never aliases a header the original's Release will recycle.
// Non-recyclable headers remain shared (immutable by convention).
func cloneHeaderHeap(h Header) Header {
	switch t := h.(type) {
	case *FLIDHeader:
		c := *t
		return &c
	case *TCPHeader:
		c := *t
		return &c
	}
	return h
}

// String summarizes the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s->%s %dB", p.Proto, p.Src, p.Dst, p.Size)
}
