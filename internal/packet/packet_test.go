package packet

import (
	"testing"
)

func TestAddrMulticast(t *testing.T) {
	if Addr(0x0a000001).IsMulticast() {
		t.Fatal("unicast address classified multicast")
	}
	if !MulticastBase.IsMulticast() {
		t.Fatal("multicast base not classified multicast")
	}
	if !Group(MulticastBase, 9).IsMulticast() {
		t.Fatal("group address not classified multicast")
	}
}

func TestGroupAllocation(t *testing.T) {
	base := MulticastBase + 0x100
	for i := 0; i < 10; i++ {
		if Group(base, i) != base+Addr(i) {
			t.Fatalf("Group(%d) = %v", i, Group(base, i))
		}
	}
}

func TestAddrString(t *testing.T) {
	if got := Addr(0xE0000001).String(); got != "224.0.0.1" {
		t.Fatalf("String = %q, want 224.0.0.1", got)
	}
}

func TestProtoString(t *testing.T) {
	cases := map[Proto]string{
		ProtoFLID: "flid", ProtoTCP: "tcp", ProtoSigma: "sigma",
		ProtoKeyAnnounce: "keyann", ProtoRepl: "repl", ProtoNone: "none",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("Proto(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
	if Proto(200).String() != "proto(200)" {
		t.Fatalf("unknown proto string = %q", Proto(200).String())
	}
}

func TestNewSizesUpToHeaders(t *testing.T) {
	h := &FLIDHeader{Session: 1}
	p := New(1, 2, 10, h) // 10 bytes is smaller than headers
	if p.Size != CommonWireLen+h.WireLen() {
		t.Fatalf("Size = %d, want %d", p.Size, CommonWireLen+h.WireLen())
	}
	p2 := New(1, 2, 576, h)
	if p2.Size != 576 {
		t.Fatalf("Size = %d, want 576", p2.Size)
	}
	if p2.Proto != ProtoFLID {
		t.Fatalf("Proto = %v", p2.Proto)
	}
	bare := New(1, 2, 4, nil)
	if bare.Size != CommonWireLen {
		t.Fatalf("bare Size = %d", bare.Size)
	}
}

func TestCloneIsIndependentCopy(t *testing.T) {
	p := New(1, 2, 576, &FLIDHeader{Group: 3})
	q := p.Clone()
	q.ECN = true
	if p.ECN {
		t.Fatal("clone mutation leaked into original")
	}
	// Recyclable headers are copied by value: the clone must not alias a
	// header that the original's pool lifecycle may recycle.
	if q.Header == p.Header {
		t.Fatal("clone should deep-copy a recyclable header")
	}
	if *(q.Header.(*FLIDHeader)) != *(p.Header.(*FLIDHeader)) {
		t.Fatal("cloned header differs in value")
	}
	// Non-recyclable headers stay shared (immutable by convention).
	s := New(1, 2, 100, &SigmaHeader{})
	if c := s.Clone(); c.Header != s.Header {
		t.Fatal("non-recyclable header should stay shared")
	}
}

func TestPacketString(t *testing.T) {
	p := New(Addr(0x0a000001), MulticastBase, 576, &FLIDHeader{})
	if got := p.String(); got == "" {
		t.Fatal("empty String")
	}
}
