package packet

import (
	"deltasigma/internal/keys"
)

// FLIDHeader is the data-packet header for layered multicast sessions
// (FLID-DL and FLID-DS). Count lets a receiver detect loss at slot end even
// when the lost packet is the last of the slot; IncreaseTo carries the
// slot's upgrade authorization (paper §3.1.1: "when authorized"). The DELTA
// in-band key fields ride along when the session is protected: Component is
// the c_{g,p} nonce of Figure 4 and Decrease is the d_g nonce. ShareX/ShareY
// carry a Shamir share for the threshold instantiation (§3.1.2, Eq. 8).
type FLIDHeader struct {
	Session    uint16
	Group      uint8  // 1-based group index within the session
	Slot       uint32 // time-slot number
	Seq        uint16 // 1-based sequence within (slot, group)
	Count      uint16 // total packets this group transmits this slot
	IncreaseTo uint8  // 0: no upgrade authorized; g: upgrade to group g authorized

	HasDelta  bool // component/decrease fields are meaningful
	Component keys.Key
	Decrease  keys.Key

	// Shamir shares for the threshold instantiation (§3.1.2): the share of
	// this level's key, and — when an upgrade is authorized — the share of
	// the next level's increase key. Zero when unused.
	ShareX, ShareY     uint32
	UpShareX, UpShareY uint32
}

// HeaderProto implements Header.
func (*FLIDHeader) HeaderProto() Proto { return ProtoFLID }

// WireLen implements Header.
func (*FLIDHeader) WireLen() int { return 2 + 1 + 4 + 2 + 2 + 1 + 1 + 8 + 8 + 4 + 4 + 4 + 4 }

// ReplHeader is the data-packet header for replicated multicast sessions
// (the Figure 5 protocol): each group carries the full content at its own
// rate, so there is no cumulative layering, but slotted loss detection and
// the DELTA fields are the same shape as in the layered case.
type ReplHeader struct {
	Session    uint16
	Group      uint8
	Slot       uint32
	Seq        uint16
	Count      uint16
	IncreaseTo uint8

	HasDelta  bool
	Component keys.Key
	Decrease  keys.Key
}

// HeaderProto implements Header.
func (*ReplHeader) HeaderProto() Proto { return ProtoRepl }

// WireLen implements Header.
func (*ReplHeader) WireLen() int { return 2 + 1 + 4 + 2 + 2 + 1 + 1 + 8 + 8 }

// TCPHeader is the minimal Reno segment header: byte-granularity sequence
// and cumulative acknowledgment numbers.
type TCPHeader struct {
	Flow  uint32 // connection identifier
	Seq   uint32 // first payload byte carried by this segment
	Len   uint32 // payload bytes carried (0 for pure ACKs)
	Ack   uint32 // next byte expected by the sender of this segment
	IsAck bool
}

// HeaderProto implements Header.
func (*TCPHeader) HeaderProto() Proto { return ProtoTCP }

// WireLen implements Header.
func (*TCPHeader) WireLen() int { return 4 + 4 + 4 + 4 + 1 }

// CBRHeader identifies constant-bit-rate filler traffic.
type CBRHeader struct {
	Flow uint32
	Seq  uint32
}

// HeaderProto implements Header.
func (*CBRHeader) HeaderProto() Proto { return ProtoCBR }

// WireLen implements Header.
func (*CBRHeader) WireLen() int { return 8 }

// SigmaKind discriminates the SIGMA receiver→router messages of Figure 6
// plus the router→receiver acknowledgment.
type SigmaKind uint8

// SIGMA message kinds.
const (
	SigmaSessionJoin SigmaKind = iota + 1 // Figure 6(a)
	SigmaSubscribe                        // Figure 6(b)
	SigmaUnsubscribe                      // Figure 6(c)
	SigmaAck                              // router acknowledgment of a subscription
)

var sigmaKindNames = [...]string{"", "session-join", "subscribe", "unsubscribe", "ack"}

// String names the message kind.
func (k SigmaKind) String() string {
	if int(k) < len(sigmaKindNames) {
		return sigmaKindNames[k]
	}
	return "sigma(?)"
}

// AddrKey binds a group address to the key submitted for it, the unit of
// the Figure 6(b) subscription message.
type AddrKey struct {
	Addr Addr
	Key  keys.Key
}

// SigmaHeader is a SIGMA control message between a receiver and its local
// edge router. Exactly the fields for Kind are meaningful.
type SigmaHeader struct {
	Kind    SigmaKind
	Slot    uint32    // subscription / ack: the time slot keys apply to
	Minimal Addr      // session-join: address of the session's minimal group
	Pairs   []AddrKey // subscribe: requested groups with keys
	Addrs   []Addr    // unsubscribe: abandoned groups
	AckID   uint32    // correlates a subscribe with its ack
}

// HeaderProto implements Header.
func (*SigmaHeader) HeaderProto() Proto { return ProtoSigma }

// WireLen implements Header.
func (h *SigmaHeader) WireLen() int {
	return 1 + 4 + 4 + 4 + 2 + len(h.Pairs)*12 + 2 + len(h.Addrs)*4
}

// IGMPOp is the operation of an IGMP message.
type IGMPOp uint8

// IGMP operations.
const (
	IGMPJoin  IGMPOp = 1
	IGMPLeave IGMPOp = 2
)

// IGMPHeader is a plain group-management message: the unrestricted
// membership protocol (RFC 2236 behaviourally) that SIGMA replaces. A
// misbehaving receiver abuses exactly this interface — IGMP never verifies
// eligibility, so any host can join any group it can name (§2.2).
type IGMPHeader struct {
	Op    IGMPOp
	Group Addr
}

// HeaderProto implements Header.
func (*IGMPHeader) HeaderProto() Proto { return ProtoIGMP }

// WireLen implements Header.
func (*IGMPHeader) WireLen() int { return 5 }

// FeedbackHeader is a per-slot receiver-status report travelling upstream
// toward the session source. Routers running hierarchical consolidation
// (Fahmy-style, PAPERS.md) merge the reports of their children and forward
// one consolidated report per (session, slot) upstream, so feedback volume
// at the root scales with tree fan-out rather than receiver population.
type FeedbackHeader struct {
	Session   uint16
	Slot      uint32
	Count     uint64 // receivers represented by this report
	MaxLevel  uint8  // highest subscription level among them
	Congested bool   // any represented receiver saw loss this slot
	Reports   uint32 // raw reports merged into this one (1 at the leaf)
}

// HeaderProto implements Header.
func (*FeedbackHeader) HeaderProto() Proto { return ProtoFeedback }

// WireLen implements Header.
func (*FeedbackHeader) WireLen() int { return 2 + 4 + 8 + 1 + 1 + 4 }

// ShareHeader is a network-assisted fair-share advertisement (the mfcc
// scheme after Thomas et al., PAPERS.md): the edge router divides its
// upstream bottleneck capacity by the subscribers it currently serves and
// unicasts the resulting per-receiver share downstream. Receivers translate
// the share into a subscription level; nothing enforces that they do.
type ShareHeader struct {
	Session     uint16
	ShareBps    int64  // advertised fair share in bits/s
	Subscribers uint32 // local subscribers the router divided capacity by
}

// HeaderProto implements Header.
func (*ShareHeader) HeaderProto() Proto { return ProtoShare }

// WireLen implements Header.
func (*ShareHeader) WireLen() int { return 2 + 8 + 4 }

// KeyTuple binds a group address to the keys that open it for one time
// slot: the top key always, the decrease key for groups 2..N (it unlocks
// the group below), and the increase key when the protocol authorized an
// upgrade to this group (paper §3.2.1).
type KeyTuple struct {
	Addr   Addr
	Top    keys.Key
	Dec    keys.Key
	Inc    keys.Key
	HasDec bool
	HasInc bool
}

// KeyAnnounce is the SIGMA special packet carrying address-key tuples from
// the sender to edge routers. Its Alert bit instructs edge routers to
// intercept it; FECIndex/FECTotal implement the forward-error-corrected
// delivery (§3.2.1, "to ensure reliable delivery ... SIGMA uses forward
// error correction").
type KeyAnnounce struct {
	Session  uint16
	Slot     uint32
	FECIndex uint8 // which repetition/parity block this copy is
	FECTotal uint8 // total blocks emitted for the slot
	Tuples   []KeyTuple
}

// HeaderProto implements Header.
func (*KeyAnnounce) HeaderProto() Proto { return ProtoKeyAnnounce }

// WireLen implements Header.
func (h *KeyAnnounce) WireLen() int { return 2 + 4 + 1 + 1 + 2 + len(h.Tuples)*29 }
