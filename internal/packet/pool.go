package packet

// Pool recycles Packet envelopes through a reference-counted lifecycle so
// the simulation hot path allocates no packets in steady state. One Pool
// belongs to one experiment (one scheduler); everything is single-threaded
// within an experiment, so counts are plain ints.
//
// Ownership rules (see DESIGN.md "Memory model"):
//   - Get returns a packet holding one reference, owned by the caller.
//   - Sending a packet transfers that reference to the network: the link
//     queue owns it while queued and in flight, and Release is called by
//     whoever terminates delivery — the queue on a drop-tail drop, the host
//     after its handlers return, the router after replicating.
//   - A component that keeps a packet beyond the transfer (retransmission
//     buffers) or replicates it (multicast fan-out) takes its own reference
//     with Retain and Releases it when done.
//   - A hop that must alter a shared packet (ECN marking, component
//     scrubbing) calls Writable first: sole owners are mutated in place,
//     shared packets are copied-on-write into a fresh pooled envelope.
type Pool struct {
	free []*Packet

	// Typed header freelists. FLID and TCP data packets dominate steady
	// state and each carries a fresh header, so the pool recycles those two
	// header types alongside envelopes. A recyclable header's lifetime is
	// tied 1:1 to its envelope: the final Release parks it, and Writable's
	// copy-on-write branch clones it so two envelopes never share one.
	flidFree []*FLIDHeader
	tcpFree  []*TCPHeader

	// Issued counts packets handed out (fresh or recycled); Recycled counts
	// envelopes returned to the freelist; Fresh counts heap allocations.
	Issued   uint64
	Recycled uint64
	Fresh    uint64
}

// FLIDHeader returns a zeroed FLID header, recycled when possible. The
// header must be installed on a packet built from this pool; the packet's
// final Release returns it to the freelist.
func (pl *Pool) FLIDHeader() *FLIDHeader {
	if n := len(pl.flidFree); n > 0 {
		h := pl.flidFree[n-1]
		pl.flidFree[n-1] = nil
		pl.flidFree = pl.flidFree[:n-1]
		*h = FLIDHeader{}
		return h
	}
	return &FLIDHeader{}
}

// TCPHeader returns a zeroed TCP header, recycled when possible, under the
// same lifecycle as FLIDHeader.
func (pl *Pool) TCPHeader() *TCPHeader {
	if n := len(pl.tcpFree); n > 0 {
		h := pl.tcpFree[n-1]
		pl.tcpFree[n-1] = nil
		pl.tcpFree = pl.tcpFree[:n-1]
		*h = TCPHeader{}
		return h
	}
	return &TCPHeader{}
}

// cloneHeader copies a recyclable header through the pool freelists so the
// copy-on-write path never leaves two envelopes pointing at one recyclable
// header (which the two final Releases would then park twice). Other header
// types stay shared — they are immutable and GC-owned.
func (pl *Pool) cloneHeader(h Header) Header {
	switch t := h.(type) {
	case *FLIDHeader:
		c := pl.FLIDHeader()
		*c = *t
		return c
	case *TCPHeader:
		c := pl.TCPHeader()
		*c = *t
		return c
	}
	return h
}

// envelope pops a recycled envelope (or heap-allocates a fresh one) and
// counts it as issued. Callers must fully initialize every field.
func (pl *Pool) envelope() *Packet {
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
	} else {
		p = &Packet{}
		pl.Fresh++
	}
	pl.Issued++
	return p
}

// Get returns a packet owned by the caller (reference count 1), built
// exactly like New but drawing the envelope from the pool when possible.
func (pl *Pool) Get(src, dst Addr, size int, hdr Header) *Packet {
	p := pl.envelope()
	*p = Packet{pool: pl}
	p.init(src, dst, size, hdr)
	return p
}

// AdoptCopy duplicates p into an envelope owned by this pool and returns
// the copy with one reference. Recyclable headers (FLID, TCP) are cloned
// through this pool's freelists so the copy's final Release parks them
// here; other header types are immutable and stay shared. This is the
// cross-shard hand-off primitive: a packet crossing a shard boundary is
// copied into the destination shard's pool at a quiescent point, and the
// original is released back to its own pool — each pool's balance closes
// independently.
func (pl *Pool) AdoptCopy(p *Packet) *Packet {
	q := pl.envelope()
	*q = *p
	q.pool = pl
	q.refs = 1
	q.Header = pl.cloneHeader(p.Header)
	return q
}

// Outstanding reports how many issued packets have not been released back —
// the leak gauge experiments assert on after draining their traffic.
func (pl *Pool) Outstanding() uint64 { return pl.Issued - pl.Recycled }

// FreePackets reports the freelist depth (test observability).
func (pl *Pool) FreePackets() int { return len(pl.free) }

// Retain takes an additional reference on the packet and returns it, so
// multicast fan-out shares one immutable envelope across all downstream
// branches instead of cloning per branch. Packets built with New (no pool)
// are reference-counted too — they just never return to a freelist.
func (p *Packet) Retain() *Packet {
	p.refs++
	return p
}

// Release drops one reference; the last release returns a pooled envelope
// to its freelist. Releasing more times than retained is a lifecycle bug
// and panics rather than corrupting the pool.
func (p *Packet) Release() {
	p.refs--
	if p.refs > 0 {
		return
	}
	if p.refs < 0 {
		panic("packet: Release without matching Retain/Get")
	}
	if p.pool == nil {
		return // un-pooled packet: the GC owns it
	}
	pl := p.pool
	pl.Recycled++
	switch h := p.Header.(type) {
	case *FLIDHeader:
		pl.flidFree = append(pl.flidFree, h)
	case *TCPHeader:
		pl.tcpFree = append(pl.tcpFree, h)
	}
	p.Header = nil // drop the header reference while parked
	pl.free = append(pl.free, p)
}

// Refs reports the current reference count (test observability).
func (p *Packet) Refs() int { return int(p.refs) }

// Writable prepares the packet for mutation under the copy-on-write rule:
// a sole owner is returned as-is, while a shared packet is copied into a
// fresh envelope (pooled when possible) and the caller's reference on the
// original is released. The caller must continue with the returned packet.
// Both branches are full struct copies, so every Packet field — present
// and future — survives the CoW identically to Clone.
func (p *Packet) Writable() *Packet {
	if p.refs <= 1 {
		return p
	}
	var q *Packet
	if pl := p.pool; pl != nil {
		q = pl.envelope()
		*q = *p
		q.Header = pl.cloneHeader(p.Header)
	} else {
		c := *p
		q = &c
		q.Header = cloneHeaderHeap(p.Header)
	}
	q.refs = 1
	p.Release()
	return q
}
