package packet

import "testing"

func TestPoolGetRecyclesEnvelopes(t *testing.T) {
	var pl Pool
	p := pl.Get(1, 2, 100, nil)
	if p.Refs() != 1 {
		t.Fatalf("Refs = %d, want 1", p.Refs())
	}
	p.Release()
	if pl.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after release, want 0", pl.Outstanding())
	}
	q := pl.Get(3, 4, 200, nil)
	if q != p {
		t.Fatal("Get did not reuse the released envelope")
	}
	if q.Src != 3 || q.Dst != 4 || q.Size != 200 || q.Header != nil || q.ECN {
		t.Fatalf("recycled envelope kept stale fields: %+v", q)
	}
	if pl.Fresh != 1 {
		t.Fatalf("Fresh = %d, want 1 (second Get must come from the freelist)", pl.Fresh)
	}
	q.Release()
}

func TestRetainReleaseFanOut(t *testing.T) {
	var pl Pool
	p := pl.Get(1, MulticastBase, 576, nil)
	// Fan out to 3 branches: each takes its own reference.
	for i := 0; i < 3; i++ {
		p.Retain()
	}
	p.Release() // the replicating hop drops its incoming reference
	if p.Refs() != 3 {
		t.Fatalf("Refs = %d after fan-out, want 3", p.Refs())
	}
	for i := 0; i < 3; i++ {
		if pl.Outstanding() != 1 {
			t.Fatalf("Outstanding = %d mid-fan-out, want 1", pl.Outstanding())
		}
		p.Release()
	}
	if pl.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after all branches released, want 0", pl.Outstanding())
	}
	if pl.FreePackets() != 1 {
		t.Fatalf("FreePackets = %d, want 1", pl.FreePackets())
	}
}

func TestWritableCopiesOnlyWhenShared(t *testing.T) {
	var pl Pool
	sole := pl.Get(1, 2, 100, nil)
	if got := sole.Writable(); got != sole {
		t.Fatal("sole owner should be mutated in place, not copied")
	}

	shared := pl.Get(1, 2, 100, nil)
	shared.UID = 42
	shared.Retain()
	cow := shared.Writable()
	if cow == shared {
		t.Fatal("shared packet must be copied on write")
	}
	if cow.Refs() != 1 || shared.Refs() != 1 {
		t.Fatalf("refs after CoW: copy=%d orig=%d, want 1/1", cow.Refs(), shared.Refs())
	}
	if cow.UID != 42 || cow.Src != 1 || cow.Dst != 2 || cow.Size != 100 {
		t.Fatalf("CoW copy lost fields: %+v", cow)
	}
	cow.ECN = true
	if shared.ECN {
		t.Fatal("mutating the CoW copy leaked into the shared original")
	}
	sole.Release()
	cow.Release()
	shared.Release()
	if pl.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after full drain, want %d", pl.Outstanding(), 0)
	}
}

func TestWritableUnpooledPacket(t *testing.T) {
	p := New(1, 2, 100, nil)
	p.Retain()
	q := p.Writable()
	if q == p {
		t.Fatal("shared un-pooled packet must still copy on write")
	}
	if p.Refs() != 1 || q.Refs() != 1 {
		t.Fatalf("refs after un-pooled CoW: orig=%d copy=%d", p.Refs(), q.Refs())
	}
	p.Release() // no-op for the GC-owned envelope, must not panic
	q.Release()
}

func TestOverReleasePanics(t *testing.T) {
	var pl Pool
	p := pl.Get(1, 2, 100, nil)
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release should panic")
		}
	}()
	p.Release()
}
