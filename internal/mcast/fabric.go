// Package mcast provides the IP-multicast substrate: group distribution
// trees with realistic per-hop graft latency, packet replication at routers,
// edge-router local-interface management, and the plain-IGMP membership
// behaviour that SIGMA replaces.
//
// Routing is source-rooted shortest-path (the role DVMRP/PIM plays under
// NS-2 in the paper): when an edge router acquires its first interested
// local interface for a group, a graft propagates hop-by-hop toward the
// session source and activates the branch; when the last interface goes
// away the branch is pruned. Prune latency is configurable and defaults to
// zero, which models FLID-DL's dynamic layering — the entire point of DL is
// that receivers reduce their rate without waiting on IGMP leave latency
// (see DESIGN.md, substitution table).
package mcast

import (
	"fmt"

	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Fabric tracks the distribution tree of every multicast group: which
// directed links currently carry the group, reference-counted by the edge
// routers whose graft paths use them.
type Fabric struct {
	net *netsim.Network

	// PruneDelayPerPath, when positive, delays branch deactivation after a
	// prune (models IGMP leave latency; zero models dynamic layering).
	PruneDelayPerPath sim.Time

	sources map[packet.Addr]netsim.NodeID        // group → source node
	refs    map[packet.Addr]map[*netsim.Link]int // group → link → edge count
	grafts  map[graftKey]*graftState

	// version counts tree mutations (graft applications and prune
	// deactivations). Routers stamp their per-group forward caches with it
	// and rebuild on mismatch, so the per-packet replication path probes a
	// cached slice instead of the refs maps.
	version uint64

	// Grafts counts graft operations (test observability).
	Grafts uint64
	// Prunes counts prune operations.
	Prunes uint64
}

type graftKey struct {
	group packet.Addr
	edge  netsim.NodeID
}

type graftState struct {
	joined  bool
	applied bool
	timer   *sim.Timer
	path    []*netsim.Link // links incremented when the graft applied
}

// NewFabric creates a fabric over net.
func NewFabric(net *netsim.Network) *Fabric {
	return &Fabric{
		net:     net,
		sources: make(map[packet.Addr]netsim.NodeID),
		refs:    make(map[packet.Addr]map[*netsim.Link]int),
		grafts:  make(map[graftKey]*graftState),
	}
}

// SetSource registers the node that originates traffic for group. Sessions
// call this once per group before any graft.
func (f *Fabric) SetSource(group packet.Addr, src netsim.NodeID) {
	if !group.IsMulticast() {
		panic(fmt.Sprintf("mcast: %v is not a multicast group", group))
	}
	f.sources[group] = src
}

// Source returns the registered source of a group.
func (f *Fabric) Source(group packet.Addr) (netsim.NodeID, bool) {
	id, ok := f.sources[group]
	return id, ok
}

// Graft requests that group traffic start flowing to edge router edge. The
// branch activates after the graft message has propagated hop-by-hop from
// the edge to the nearest on-tree router (or the source). Idempotent while
// joined.
func (f *Fabric) Graft(group packet.Addr, edge netsim.NodeID) {
	key := graftKey{group, edge}
	st := f.grafts[key]
	if st == nil {
		st = &graftState{}
		f.grafts[key] = st
	}
	if st.joined {
		return
	}
	src, ok := f.sources[group]
	if !ok {
		panic(fmt.Sprintf("mcast: graft for group %v with no source", group))
	}
	st.joined = true
	f.Grafts++

	path := f.downstreamPath(src, edge)
	if path == nil {
		// No route; stay joined so a later prune is a no-op, but never apply.
		return
	}
	delay := f.graftDelay(group, path)
	st.timer = f.net.Scheduler().After(delay, func() {
		if !st.joined {
			return // pruned while the graft was in flight
		}
		st.applied = true
		st.path = path
		r := f.groupRefs(group)
		for _, l := range path {
			r[l]++
		}
		f.version++
	})
}

// Prune requests that group traffic stop flowing to edge. With
// PruneDelayPerPath zero the branch deactivates immediately.
func (f *Fabric) Prune(group packet.Addr, edge netsim.NodeID) {
	st := f.grafts[graftKey{group, edge}]
	if st == nil || !st.joined {
		return
	}
	st.joined = false
	f.Prunes++
	if !st.applied {
		st.timer.Stop()
		return
	}
	st.applied = false
	path := st.path
	st.path = nil
	deactivate := func() {
		r := f.groupRefs(group)
		for _, l := range path {
			if r[l] > 0 {
				r[l]--
			}
		}
		f.version++
	}
	if f.PruneDelayPerPath > 0 {
		f.net.Scheduler().After(f.PruneDelayPerPath, deactivate)
	} else {
		deactivate()
	}
}

// EntitlementReader is the side-effect-free twin of Gatekeeper.Deliver,
// implemented by gatekeepers whose forwarding decision can be read without
// perturbing it (Deliver may arm grace windows and other per-delivery
// state). The invariant-audit layer uses it to cross-check gatekeeper
// entitlement against the fabric's graft state mid-run: an entitled local
// interface implies a live graft at its edge router.
type EntitlementReader interface {
	// Entitled reports whether a packet of group would currently be
	// forwarded onto the local interface of host, with no side effects.
	Entitled(group, host packet.Addr) bool
}

// Joined reports whether edge currently has a (possibly still propagating)
// graft for group.
func (f *Fabric) Joined(group packet.Addr, edge netsim.NodeID) bool {
	st := f.grafts[graftKey{group, edge}]
	return st != nil && st.joined
}

// ShouldForward reports whether a packet of group arriving at l.From()
// should be replicated onto l.
func (f *Fabric) ShouldForward(group packet.Addr, l *netsim.Link) bool {
	return f.refs[group][l] > 0
}

// ForwardSet returns the group's live link reference counts (nil when the
// group has no active branches). Routers resolve it once per packet and
// probe their out-links against it, instead of re-hashing the group
// address for every link.
func (f *Fabric) ForwardSet(group packet.Addr) map[*netsim.Link]int {
	return f.refs[group]
}

// Version reports the current tree-mutation counter; any change in any
// group's forward set changes it.
func (f *Fabric) Version() uint64 { return f.version }

// ActiveLinks reports how many links currently carry the group, an
// observability hook for tests.
func (f *Fabric) ActiveLinks(group packet.Addr) int {
	n := 0
	for _, c := range f.refs[group] {
		if c > 0 {
			n++
		}
	}
	return n
}

func (f *Fabric) groupRefs(group packet.Addr) map[*netsim.Link]int {
	r := f.refs[group]
	if r == nil {
		r = make(map[*netsim.Link]int)
		f.refs[group] = r
	}
	return r
}

// downstreamPath lists the directed links from src to edge along the
// shortest path.
func (f *Fabric) downstreamPath(src, edge netsim.NodeID) []*netsim.Link {
	nodes := f.net.Path(src, edge)
	if nodes == nil {
		return nil
	}
	links := make([]*netsim.Link, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		l := f.net.LinkBetween(nodes[i], nodes[i+1])
		if l == nil {
			return nil
		}
		links = append(links, l)
	}
	return links
}

// graftDelay is the time for a graft originating at the edge to reach the
// nearest router that is already on the group's tree, walking the
// downstream path in reverse and summing the reverse-direction link delays.
func (f *Fabric) graftDelay(group packet.Addr, downstream []*netsim.Link) sim.Time {
	r := f.refs[group]
	var delay sim.Time
	// Walk from the edge end upward. Stop as soon as the node at the head
	// of the remaining path is on-tree: a node is on-tree when some link
	// into it carries the group (or it is the source, i.e. the path start).
	for i := len(downstream) - 1; i >= 0; i-- {
		l := downstream[i]
		// The graft travels the reverse direction of l.
		rev := f.net.LinkBetween(l.To().ID(), l.From().ID())
		if rev != nil {
			delay += rev.Delay
		} else {
			delay += l.Delay
		}
		if i == 0 {
			break // reached the source
		}
		// Is the node feeding l already on the tree?
		feeder := downstream[i-1]
		if r[feeder] > 0 {
			break
		}
	}
	return delay
}
