package mcast

import (
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Gatekeeper decides which local interfaces may receive a multicast group's
// packets, and consumes the control messages that drive those decisions.
// The plain-IGMP gatekeeper accepts everything (the insecure baseline);
// SIGMA's controller enforces key-based access. The interface is the
// embodiment of Requirement 3: the router below is identical for every
// congestion control protocol — all protocol awareness lives behind it.
type Gatekeeper interface {
	// Deliver reports whether a packet of group may be forwarded onto the
	// local interface of host.
	Deliver(group packet.Addr, host packet.Addr) bool
	// Control handles a group-management message (IGMP or SIGMA) sent by a
	// local host to this router.
	Control(pkt *packet.Packet, from packet.Addr)
	// Intercept consumes a router-alert packet (SIGMA special packet).
	Intercept(pkt *packet.Packet)
}

// LocalTransformer is an optional Gatekeeper extension: rewrite a packet
// just before delivery onto a specific local interface. SIGMA uses it for
// ECN component scrubbing and §4.2 interface keying.
//
// The packet arrives with one caller-owned reference. Implementations that
// need to alter it must go through Packet.Writable (copy-on-write) and
// return the resulting packet; the caller continues with — and owns — the
// returned reference.
type LocalTransformer interface {
	TransformLocal(pkt *packet.Packet, host packet.Addr) *packet.Packet
}

// Router is a multicast-capable router node. Core and edge routers run the
// same code; a router acts as an edge exactly where hosts are attached.
// Its multicast behaviour is protocol-independent: distribution-tree
// forwarding comes from the Fabric, and local-interface policy from the
// Gatekeeper.
type Router struct {
	id     netsim.NodeID
	name   string
	addr   packet.Addr
	net    *netsim.Network
	fabric *Fabric

	locals map[packet.Addr]*netsim.Host // local interfaces by host address
	// localOrder lists the local interfaces sorted by address. Delivery
	// iterates this, not the map: map order is random per process, and
	// although per-receiver state makes delivery order invisible in
	// results, it showed up as a ±1 allocs/op flutter in the benchmark
	// gate (consolidation-capable routers grew their feedback map on
	// different packets). The slice also caches each interface's delivery
	// link, saving a LinkBetween lookup per local delivery.
	localOrder []localIf
	localGen   uint64 // bumped by AttachLocal; invalidates cached indices
	gate       Gatekeeper

	// fwdDense memoizes, per group, the out-links to replicate on (stamped
	// by the fabric's tree version) and — when the gatekeeper declares its
	// Deliver side-effect free via DeliverVersion — the entitled local
	// interfaces (stamped by the gatekeeper's membership version). The
	// per-packet replication path then iterates two slices instead of
	// probing the fabric's refs maps and re-asking the gatekeeper per
	// interface. Sessions allocate contiguous group blocks just above
	// MulticastBase, so the cache is a dense slice indexed by the group's
	// offset; fwdWide catches any out-of-range stragglers.
	fwdDense []*fwdEntry
	fwdWide  map[packet.Addr]*fwdEntry

	// ForwardedMcast counts multicast packets replicated downstream.
	ForwardedMcast uint64
	// DeliveredLocal counts multicast packets delivered onto local interfaces.
	DeliveredLocal uint64

	// Hierarchical feedback consolidation (Fahmy-style, PAPERS.md): when
	// enabled the router absorbs upstream-bound ProtoFeedback unicasts,
	// merges them per (session, slot, destination), and forwards one
	// consolidated report after fbHold. Control traffic then scales with
	// tree fan-out instead of receiver population.
	consolidate bool
	fbHold      sim.Time
	fbPending   map[fbKey]*fbEntry
	// FeedbackAbsorbed counts feedback reports merged into pending state.
	FeedbackAbsorbed uint64
	// FeedbackForwarded counts consolidated reports sent upstream.
	FeedbackForwarded uint64
}

// localIf is one sorted-order local interface with its delivery link,
// resolved lazily because a host may attach before its link exists.
type localIf struct {
	addr packet.Addr
	host *netsim.Host
	link *netsim.Link
}

// fwdEntry is one group's cached forwarding decision.
type fwdEntry struct {
	fabricVer uint64
	gateVer   uint64
	localGen  uint64
	hasLocals bool // locals slice is valid (versioned gatekeeper)
	out       []*netsim.Link
	locals    []int32 // indices into localOrder entitled to the group
}

// deliverVersioner marks a gatekeeper whose Deliver is side-effect free
// and cacheable until the returned version changes.
type deliverVersioner interface{ DeliverVersion() uint64 }

// fbKey identifies one consolidation bucket.
type fbKey struct {
	session uint16
	slot    uint32
	dst     packet.Addr
}

// fbEntry accumulates the reports absorbed for one bucket.
type fbEntry struct {
	count     uint64
	maxLevel  uint8
	congested bool
	reports   uint32
}

// NewRouter creates a router attached to net and fabric.
func NewRouter(net *netsim.Network, fabric *Fabric, name string) *Router {
	r := &Router{name: name, net: net, fabric: fabric, locals: make(map[packet.Addr]*netsim.Host)}
	net.Add(func(id netsim.NodeID) netsim.Node { r.id = id; return r })
	r.addr = net.AssignAddr(r)
	return r
}

// ID implements netsim.Node.
func (r *Router) ID() netsim.NodeID { return r.id }

// Name implements netsim.Node.
func (r *Router) Name() string { return r.name }

// Addr returns the router's control address; local receivers send their
// IGMP/SIGMA messages here.
func (r *Router) Addr() packet.Addr { return r.addr }

// Fabric returns the multicast fabric this router forwards from.
func (r *Router) Fabric() *Fabric { return r.fabric }

// Network returns the underlying network.
func (r *Router) Network() *netsim.Network { return r.net }

// AttachLocal declares host as a local interface of this (edge) router.
// The caller is responsible for having connected the host to the router.
func (r *Router) AttachLocal(h *netsim.Host) {
	addr := h.Addr()
	r.locals[addr] = h
	for i := range r.localOrder {
		if r.localOrder[i].addr == addr {
			r.localOrder[i] = localIf{addr: addr, host: h}
			return
		}
	}
	at := len(r.localOrder)
	for at > 0 && r.localOrder[at-1].addr > addr {
		at--
	}
	r.localOrder = append(r.localOrder, localIf{})
	copy(r.localOrder[at+1:], r.localOrder[at:])
	r.localOrder[at] = localIf{addr: addr, host: h}
	r.localGen++
}

// fwdDenseMax bounds the dense forward-cache size; group offsets beyond it
// (never produced by the session allocator) fall back to a map.
const fwdDenseMax = 1 << 16

// fwdOf returns the group's forward cache, rebuilding the stale halves.
func (r *Router) fwdOf(group packet.Addr) *fwdEntry {
	var e *fwdEntry
	if off := int(group - packet.MulticastBase); off < fwdDenseMax {
		if off < len(r.fwdDense) {
			e = r.fwdDense[off]
		}
		if e == nil {
			if off >= len(r.fwdDense) {
				grown := make([]*fwdEntry, off+1)
				copy(grown, r.fwdDense)
				r.fwdDense = grown
			}
			e = &fwdEntry{fabricVer: ^uint64(0), gateVer: ^uint64(0)}
			r.fwdDense[off] = e
		}
	} else {
		e = r.fwdWide[group]
		if e == nil {
			if r.fwdWide == nil {
				r.fwdWide = make(map[packet.Addr]*fwdEntry)
			}
			e = &fwdEntry{fabricVer: ^uint64(0), gateVer: ^uint64(0)}
			r.fwdWide[group] = e
		}
	}
	if fv := r.fabric.Version(); e.fabricVer != fv {
		e.fabricVer = fv
		e.out = e.out[:0]
		if fwd := r.fabric.ForwardSet(group); len(fwd) > 0 {
			for _, out := range r.net.OutLinks(r.id) {
				if fwd[out] > 0 {
					e.out = append(e.out, out)
				}
			}
		}
	}
	if dv, ok := r.gate.(deliverVersioner); ok {
		if gv := dv.DeliverVersion(); !e.hasLocals || e.gateVer != gv || e.localGen != r.localGen {
			e.hasLocals = true
			e.gateVer = gv
			e.localGen = r.localGen
			e.locals = e.locals[:0]
			for i := range r.localOrder {
				if r.gate.Deliver(group, r.localOrder[i].addr) {
					e.locals = append(e.locals, int32(i))
				}
			}
		}
	} else {
		e.hasLocals = false
	}
	return e
}

// Locals returns the attached local hosts keyed by address.
func (r *Router) Locals() map[packet.Addr]*netsim.Host { return r.locals }

// SetGatekeeper installs the local-interface policy. Installing the IGMP
// gatekeeper models a legacy router; installing SIGMA's controller makes
// this an access-controlled edge (§3.2.3 incremental deployment: each
// router chooses independently).
func (r *Router) SetGatekeeper(g Gatekeeper) { r.gate = g }

// Gatekeeper returns the installed policy.
func (r *Router) Gatekeeper() Gatekeeper { return r.gate }

// EnableConsolidation turns on hierarchical feedback consolidation at this
// router: upstream-bound feedback reports are held for hold, merged per
// (session, slot, destination), and re-emitted as a single consolidated
// report. Enabling on every router of a tree makes feedback volume at the
// root proportional to the root's fan-out, not the leaf population.
func (r *Router) EnableConsolidation(hold sim.Time) {
	if hold <= 0 {
		hold = sim.Millisecond
	}
	r.consolidate = true
	r.fbHold = hold
	if r.fbPending == nil {
		r.fbPending = make(map[fbKey]*fbEntry)
	}
}

// ConsolidationEnabled reports whether the router merges feedback.
func (r *Router) ConsolidationEnabled() bool { return r.consolidate }

// absorbFeedback merges one report into the pending bucket, arming the
// bucket's flush timer on first contact. Timers are armed in packet-arrival
// order, so seeded runs replay exactly.
func (r *Router) absorbFeedback(fb *packet.FeedbackHeader, dst packet.Addr) {
	k := fbKey{session: fb.Session, slot: fb.Slot, dst: dst}
	e := r.fbPending[k]
	if e == nil {
		e = &fbEntry{}
		r.fbPending[k] = e
		r.net.Scheduler().After(r.fbHold, func() { r.flushFeedback(k) })
	}
	e.count += fb.Count
	if fb.MaxLevel > e.maxLevel {
		e.maxLevel = fb.MaxLevel
	}
	e.congested = e.congested || fb.Congested
	e.reports += fb.Reports
	r.FeedbackAbsorbed++
}

// flushFeedback emits one consolidated report for the bucket and clears it.
func (r *Router) flushFeedback(k fbKey) {
	e := r.fbPending[k]
	if e == nil {
		return
	}
	delete(r.fbPending, k)
	out := r.net.NewPacket(r.addr, k.dst, 0, &packet.FeedbackHeader{
		Session:   k.session,
		Slot:      k.slot,
		Count:     e.count,
		MaxLevel:  e.maxLevel,
		Congested: e.congested,
		Reports:   e.reports,
	})
	r.FeedbackForwarded++
	if next := r.net.NextHopLink(r.id, k.dst); next != nil {
		next.Send(out)
	} else {
		out.Release()
	}
}

// Graft asks the fabric to extend the group's tree to this router. The
// gatekeeper calls this when a local interface becomes entitled to a group.
func (r *Router) Graft(group packet.Addr) { r.fabric.Graft(group, r.id) }

// Prune asks the fabric to cut this router off the group's tree.
func (r *Router) Prune(group packet.Addr) { r.fabric.Prune(group, r.id) }

// SendLocal transmits a packet directly onto the local interface of the
// addressed host (used for SIGMA acknowledgments). It consumes the caller's
// reference even when no local link exists.
func (r *Router) SendLocal(pkt *packet.Packet) {
	if id, ok := r.net.HostByAddr(pkt.Dst); ok {
		if l := r.net.LinkBetween(r.id, id); l != nil {
			l.Send(pkt)
			return
		}
	}
	pkt.Release()
}

// Receive implements netsim.Node. Routing logic:
//   - unicast to the router itself → control message for the gatekeeper;
//   - unicast elsewhere → forward along the shortest path;
//   - multicast → replicate along the group tree, intercept router-alert
//     packets at the gatekeeper, and deliver onto entitled local interfaces.
//
// The router owns the delivery reference it receives. Multicast fan-out
// shares the envelope: every downstream branch and local delivery takes its
// own reference with Retain instead of cloning, and the incoming reference
// is released when replication is done.
func (r *Router) Receive(pkt *packet.Packet, from *netsim.Link) {
	if !pkt.Dst.IsMulticast() {
		if pkt.Dst == r.addr {
			if r.gate != nil {
				r.gate.Control(pkt, pkt.Src)
			}
			pkt.Release()
			return
		}
		if r.consolidate && pkt.Proto == packet.ProtoFeedback {
			if fb, ok := pkt.Header.(*packet.FeedbackHeader); ok {
				r.absorbFeedback(fb, pkt.Dst)
				pkt.Release()
				return
			}
		}
		if next := r.net.NextHopLink(r.id, pkt.Dst); next != nil {
			next.Send(pkt)
		} else {
			pkt.Release()
		}
		return
	}

	group := pkt.Dst

	// Replicate downstream along the distribution tree, iterating the
	// cached forward list — identical order to probing OutLinks against
	// the fabric's forward set, which is how the cache is built.
	var fromRev netsim.NodeID = -1
	if from != nil {
		fromRev = from.From().ID()
	}
	c := r.fwdOf(group)
	for _, out := range c.out {
		if out.To().ID() == fromRev {
			continue // never reflect back upstream
		}
		out.Send(pkt.Retain())
		r.ForwardedMcast++
	}

	// Router-alert packets are intercepted by edge gatekeepers and never
	// delivered onto local interfaces (§3.2.1).
	if pkt.Alert {
		if r.gate != nil && len(r.locals) > 0 {
			r.gate.Intercept(pkt)
		}
		pkt.Release()
		return
	}

	// Local delivery, subject to the gatekeeper, in sorted address order.
	transformer, _ := r.gate.(LocalTransformer)
	if c.hasLocals {
		// Versioned gatekeeper: the entitled-interface list is cached in
		// the same sorted order the fallback loop walks.
		for _, idx := range c.locals {
			r.deliverLocal(pkt, &r.localOrder[idx], transformer)
		}
		pkt.Release()
		return
	}
	for i := range r.localOrder {
		li := &r.localOrder[i]
		if r.gate == nil || !r.gate.Deliver(group, li.addr) {
			continue
		}
		r.deliverLocal(pkt, li, transformer)
	}
	pkt.Release()
}

// deliverLocal pushes one retained reference onto a local interface,
// applying the gatekeeper's transform when present.
func (r *Router) deliverLocal(pkt *packet.Packet, li *localIf, transformer LocalTransformer) {
	if li.link == nil {
		li.link = r.net.LinkBetween(r.id, li.host.ID())
		if li.link == nil {
			return
		}
	}
	out := pkt.Retain()
	if transformer != nil {
		out = transformer.TransformLocal(out, li.addr)
	}
	li.link.Send(out)
	r.DeliveredLocal++
}
