package mcast

import (
	"testing"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// Multicast fan-out shares one envelope per replicated hop: the routers
// retain per downstream branch and release the incoming reference, hosts
// release on delivery, gatekeeper-denied interfaces never take a reference.
// Whatever the tree shape, the pool must balance when traffic drains.
func TestPoolBalancedUnderFanOut(t *testing.T) {
	tb := newTestbed(t)
	c1 := counter(tb.h1)
	c2 := counter(tb.h2)
	c3 := counter(tb.h3)

	cl1 := NewClient(tb.h1, tb.e1.Addr())
	cl2 := NewClient(tb.h2, tb.e1.Addr())
	cl3 := NewClient(tb.h3, tb.e2.Addr())
	tb.sched.At(0, func() { cl1.Join(grp); cl2.Join(grp); cl3.Join(grp) })
	tb.sched.At(sim.Second, func() { tb.sendPooled(grp, 10) })
	tb.sched.Run()

	if *c1 != 10 || *c2 != 10 || *c3 != 10 {
		t.Fatalf("deliveries h1=%d h2=%d h3=%d, want 10 each", *c1, *c2, *c3)
	}
	if out := tb.net.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d after full fan-out drain, want 0", out)
	}
}

// A branch that never grafts (h3 stays out) and an interface the gatekeeper
// denies (h2 never joins) must not leak the references they never took.
func TestPoolBalancedWithDeniedBranches(t *testing.T) {
	tb := newTestbed(t)
	cl1 := NewClient(tb.h1, tb.e1.Addr())
	tb.sched.At(0, func() { cl1.Join(grp) })
	tb.sched.At(sim.Second, func() { tb.sendPooled(grp, 7) })
	tb.sched.Run()

	if got := tb.h1.Received[packet.ProtoFLID]; got != 7 {
		t.Fatalf("h1 received %d, want 7", got)
	}
	if got := tb.h2.Received[packet.ProtoFLID] + tb.h3.Received[packet.ProtoFLID]; got != 0 {
		t.Fatalf("non-members received %d packets", got)
	}
	if out := tb.net.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool Outstanding = %d, want 0", out)
	}
}

// sendPooled mints pooled session packets from the testbed source.
func (tb *testbed) sendPooled(g packet.Addr, n int) {
	for i := 0; i < n; i++ {
		tb.src.Send(tb.net.NewPacket(tb.src.Addr(), g, 576,
			&packet.FLIDHeader{Group: 1, Seq: uint16(i + 1)}))
	}
}
