package mcast

import (
	"testing"

	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

// testbed is a small multicast topology:
//
//	src --- core --- e1 --- h1, h2
//	           \---- e2 --- h3
type testbed struct {
	sched      *sim.Scheduler
	net        *netsim.Network
	fabric     *Fabric
	src        *netsim.Host
	core       *Router
	e1, e2     *Router
	h1, h2, h3 *netsim.Host
	g1, g2     *IGMP
}

const grp = packet.MulticastBase

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(7))
	fabric := NewFabric(net)
	tb := &testbed{sched: sched, net: net, fabric: fabric}

	tb.src = net.AddHost("src")
	tb.core = NewRouter(net, fabric, "core")
	tb.e1 = NewRouter(net, fabric, "e1")
	tb.e2 = NewRouter(net, fabric, "e2")
	tb.h1 = net.AddHost("h1")
	tb.h2 = net.AddHost("h2")
	tb.h3 = net.AddHost("h3")

	const r = 10_000_000
	const q = 1 << 20
	net.Connect(tb.src, tb.core, r, 10*sim.Millisecond, q)
	net.Connect(tb.core, tb.e1, r, 10*sim.Millisecond, q)
	net.Connect(tb.core, tb.e2, r, 10*sim.Millisecond, q)
	net.Connect(tb.e1, tb.h1, r, 5*sim.Millisecond, q)
	net.Connect(tb.e1, tb.h2, r, 5*sim.Millisecond, q)
	net.Connect(tb.e2, tb.h3, r, 5*sim.Millisecond, q)
	net.ComputeRoutes()

	tb.e1.AttachLocal(tb.h1)
	tb.e1.AttachLocal(tb.h2)
	tb.e2.AttachLocal(tb.h3)
	tb.g1 = NewIGMP(tb.e1)
	tb.g2 = NewIGMP(tb.e2)

	fabric.SetSource(grp, tb.src.ID())
	fabric.SetSource(grp+1, tb.src.ID())
	return tb
}

func (tb *testbed) sendGroup(g packet.Addr, n int) {
	for i := 0; i < n; i++ {
		pkt := packet.New(tb.src.Addr(), g, 576, &packet.FLIDHeader{Group: 1, Seq: uint16(i + 1)})
		pkt.UID = tb.net.NewUID()
		tb.src.Send(pkt)
	}
}

func counter(h *netsim.Host) *int {
	n := new(int)
	h.Handle(packet.ProtoFLID, func(pkt *packet.Packet) { *n++ })
	return n
}

func TestDeliveryOnlyToMembers(t *testing.T) {
	tb := newTestbed(t)
	c1 := counter(tb.h1)
	c2 := counter(tb.h2)
	c3 := counter(tb.h3)

	cl1 := NewClient(tb.h1, tb.e1.Addr())
	tb.sched.At(0, func() { cl1.Join(grp) })
	tb.sched.At(sim.Second, func() { tb.sendGroup(grp, 5) })
	tb.sched.Run()

	if *c1 != 5 {
		t.Fatalf("h1 got %d packets, want 5", *c1)
	}
	if *c2 != 0 || *c3 != 0 {
		t.Fatalf("non-members received packets: h2=%d h3=%d", *c2, *c3)
	}
}

func TestReplicationSingleCopyPerLink(t *testing.T) {
	tb := newTestbed(t)
	c1 := counter(tb.h1)
	c2 := counter(tb.h2)

	NewClient(tb.h1, tb.e1.Addr()).Join(grp)
	NewClient(tb.h2, tb.e1.Addr()).Join(grp)
	tb.sched.RunUntil(sim.Second)

	up, _ := tb.net.LinkBetween(tb.core.ID(), tb.e1.ID()), 0
	before := up.Delivered
	tb.sendGroup(grp, 10)
	tb.sched.Run()

	if *c1 != 10 || *c2 != 10 {
		t.Fatalf("deliveries h1=%d h2=%d, want 10 each", *c1, *c2)
	}
	// Both receivers sit behind e1: the core→e1 link must carry exactly one
	// copy of each packet.
	if got := up.Delivered - before; got != 10 {
		t.Fatalf("core->e1 carried %d copies, want 10", got)
	}
}

func TestGraftLatency(t *testing.T) {
	tb := newTestbed(t)
	// h3 joins: graft must travel h3->e2 (IGMP, 5ms) then e2->core (10ms)
	// and core is fed directly by src. The tree is then live, so a packet
	// sent well after that arrives; one sent immediately is lost.
	c3 := counter(tb.h3)
	NewClient(tb.h3, tb.e2.Addr()).Join(grp)

	tb.sched.At(1*sim.Millisecond, func() { tb.sendGroup(grp, 1) }) // too early: tree not built
	tb.sched.At(100*sim.Millisecond, func() { tb.sendGroup(grp, 1) })
	tb.sched.Run()
	if *c3 != 1 {
		t.Fatalf("h3 got %d packets, want exactly the late one", *c3)
	}
}

func TestSecondGraftFasterThanFirst(t *testing.T) {
	tb := newTestbed(t)
	// With h1 already on the tree, h2 joining on the same edge requires no
	// new grafting above e1 and activates after just the IGMP hop.
	NewClient(tb.h1, tb.e1.Addr()).Join(grp)
	tb.sched.RunUntil(sim.Second)
	if !tb.fabric.Joined(grp, tb.e1.ID()) {
		t.Fatal("e1 should be on the tree")
	}
	links := tb.fabric.ActiveLinks(grp)

	NewClient(tb.h2, tb.e1.Addr()).Join(grp)
	tb.sched.RunUntil(2 * sim.Second)
	if got := tb.fabric.ActiveLinks(grp); got != links {
		t.Fatalf("same-edge join changed active links %d -> %d", links, got)
	}
}

func TestLeavePrunesAndStopsDelivery(t *testing.T) {
	tb := newTestbed(t)
	c1 := counter(tb.h1)
	cl := NewClient(tb.h1, tb.e1.Addr())
	cl.Join(grp)
	tb.sched.RunUntil(sim.Second)
	tb.sendGroup(grp, 3)
	tb.sched.RunUntil(2 * sim.Second)
	cl.Leave(grp)
	tb.sched.RunUntil(3 * sim.Second)
	tb.sendGroup(grp, 3)
	tb.sched.Run()

	if *c1 != 3 {
		t.Fatalf("h1 got %d packets, want only the 3 pre-leave", *c1)
	}
	if tb.fabric.ActiveLinks(grp) != 0 {
		t.Fatal("tree should be fully pruned")
	}
}

func TestLeaveOfOneMemberKeepsOtherServed(t *testing.T) {
	tb := newTestbed(t)
	c1 := counter(tb.h1)
	c2 := counter(tb.h2)
	cl1 := NewClient(tb.h1, tb.e1.Addr())
	cl2 := NewClient(tb.h2, tb.e1.Addr())
	cl1.Join(grp)
	cl2.Join(grp)
	tb.sched.RunUntil(sim.Second)
	cl1.Leave(grp)
	tb.sched.RunUntil(2 * sim.Second)
	tb.sendGroup(grp, 4)
	tb.sched.Run()
	if *c1 != 0 {
		t.Fatalf("h1 left but got %d packets", *c1)
	}
	if *c2 != 4 {
		t.Fatalf("h2 got %d packets, want 4", *c2)
	}
}

func TestPruneBeforeGraftCompletes(t *testing.T) {
	tb := newTestbed(t)
	cl := NewClient(tb.h3, tb.e2.Addr())
	// Join and leave within the graft propagation window.
	tb.sched.At(0, func() { cl.Join(grp) })
	tb.sched.At(6*sim.Millisecond, func() { cl.Leave(grp) }) // after IGMP hop, before graft applies
	tb.sched.RunUntil(sim.Second)
	if tb.fabric.ActiveLinks(grp) != 0 {
		t.Fatal("cancelled graft left active links")
	}
	c3 := counter(tb.h3)
	tb.sendGroup(grp, 2)
	tb.sched.Run()
	if *c3 != 0 {
		t.Fatalf("h3 received %d packets after cancelled join", *c3)
	}
}

func TestIndependentGroups(t *testing.T) {
	tb := newTestbed(t)
	c1 := counter(tb.h1)
	NewClient(tb.h1, tb.e1.Addr()).Join(grp)
	tb.sched.RunUntil(sim.Second)
	tb.sendGroup(grp+1, 5) // different group: h1 is not a member
	tb.sched.Run()
	if *c1 != 0 {
		t.Fatalf("h1 received %d packets of a group it never joined", *c1)
	}
}

func TestAlertPacketsInterceptedNotDelivered(t *testing.T) {
	tb := newTestbed(t)
	intercepted := 0
	tb.e1.SetGatekeeper(&hookGate{
		IGMP:      NewIGMP(tb.e1),
		intercept: func(pkt *packet.Packet) { intercepted++ },
	})
	// Re-register membership through the hook gate.
	hg := tb.e1.Gatekeeper().(*hookGate)
	_ = hg

	cl := NewClient(tb.h1, tb.e1.Addr())
	cl.Join(grp)
	tb.sched.RunUntil(sim.Second)

	got := 0
	tb.h1.Handle(packet.ProtoKeyAnnounce, func(pkt *packet.Packet) { got++ })
	pkt := packet.New(tb.src.Addr(), grp, 100, &packet.KeyAnnounce{Session: 1, Slot: 1})
	pkt.Alert = true
	tb.src.Send(pkt)
	tb.sched.Run()

	if intercepted != 1 {
		t.Fatalf("intercepted %d, want 1", intercepted)
	}
	if got != 0 {
		t.Fatal("alert packet leaked onto a local interface")
	}
}

// hookGate wraps IGMP, overriding interception.
type hookGate struct {
	*IGMP
	intercept func(pkt *packet.Packet)
}

func (h *hookGate) Intercept(pkt *packet.Packet) { h.intercept(pkt) }

func TestAlertPacketsStillForwardDownTree(t *testing.T) {
	tb := newTestbed(t)
	// h3 behind e2 joins; alert packet from src must transit core and reach
	// e2's gatekeeper even though e1 has no members.
	intercepted := 0
	tb.e2.SetGatekeeper(&hookGate{
		IGMP:      NewIGMP(tb.e2),
		intercept: func(pkt *packet.Packet) { intercepted++ },
	})
	NewClient(tb.h3, tb.e2.Addr()).Join(grp)
	tb.sched.RunUntil(sim.Second)

	pkt := packet.New(tb.src.Addr(), grp, 100, &packet.KeyAnnounce{Session: 1, Slot: 2})
	pkt.Alert = true
	tb.src.Send(pkt)
	tb.sched.Run()
	if intercepted != 1 {
		t.Fatalf("e2 intercepted %d, want 1", intercepted)
	}
}

func TestIGMPIgnoresNonLocalJoin(t *testing.T) {
	tb := newTestbed(t)
	// h3 is not local to e1; a forged join addressed to e1 must be ignored.
	cl := NewClient(tb.h3, tb.e1.Addr())
	cl.Join(grp)
	tb.sched.Run()
	if tb.g1.Members(grp) != 0 {
		t.Fatal("non-local host joined through e1")
	}
}

func TestJoinIdempotent(t *testing.T) {
	tb := newTestbed(t)
	cl := NewClient(tb.h1, tb.e1.Addr())
	cl.Join(grp)
	cl.Join(grp)
	cl.Join(grp)
	tb.sched.RunUntil(sim.Second)
	if tb.g1.Members(grp) != 1 {
		t.Fatalf("members = %d, want 1", tb.g1.Members(grp))
	}
	if tb.fabric.Grafts != 1 {
		t.Fatalf("grafts = %d, want 1", tb.fabric.Grafts)
	}
}

func TestLeaveWithoutJoinHarmless(t *testing.T) {
	tb := newTestbed(t)
	NewClient(tb.h1, tb.e1.Addr()).Leave(grp)
	tb.sched.Run()
	if tb.fabric.Prunes != 0 {
		t.Fatal("phantom prune executed")
	}
}

func TestPruneDelayModelsLeaveLatency(t *testing.T) {
	tb := newTestbed(t)
	tb.fabric.PruneDelayPerPath = 200 * sim.Millisecond
	cl := NewClient(tb.h1, tb.e1.Addr())
	cl.Join(grp)
	tb.sched.RunUntil(sim.Second)
	active := tb.fabric.ActiveLinks(grp)
	if active == 0 {
		t.Fatal("tree should be active before leave")
	}
	cl.Leave(grp)
	// During the leave-latency window the branch still carries traffic
	// toward the edge (the bandwidth cost dynamic layering was designed to
	// avoid); after the window it is pruned.
	tb.sched.RunUntil(1100 * sim.Millisecond)
	if got := tb.fabric.ActiveLinks(grp); got != active {
		t.Fatalf("tree pruned during the latency window: %d links, want %d", got, active)
	}
	tb.sched.RunUntil(5 * sim.Second)
	if got := tb.fabric.ActiveLinks(grp); got != 0 {
		t.Fatalf("tree not pruned after the latency window: %d links", got)
	}
}

func TestSourceUnregisteredPanics(t *testing.T) {
	tb := newTestbed(t)
	defer func() {
		if recover() == nil {
			t.Fatal("graft without source should panic")
		}
	}()
	tb.fabric.Graft(packet.MulticastBase+99, tb.e1.ID())
}

func TestSetSourceRejectsUnicast(t *testing.T) {
	tb := newTestbed(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SetSource with unicast addr should panic")
		}
	}()
	tb.fabric.SetSource(packet.Addr(5), tb.src.ID())
}

func TestUnicastForwardingThroughRouters(t *testing.T) {
	tb := newTestbed(t)
	got := 0
	tb.h3.Handle(packet.ProtoCBR, func(pkt *packet.Packet) { got++ })
	pkt := packet.New(tb.h1.Addr(), tb.h3.Addr(), 576, &packet.CBRHeader{Flow: 1})
	tb.sched.At(0, func() { tb.h1.Send(pkt) })
	tb.sched.Run()
	if got != 1 {
		t.Fatal("unicast packet not forwarded host-to-host across routers")
	}
}
