package mcast

import (
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
)

// IGMP is the unrestricted gatekeeper: any host may join any group it can
// name, exactly the RFC 2236 behaviour the paper identifies as the attack
// surface (§2.2: "IGMP does not restrict the ability of receivers to
// subscribe to multicast groups"). It is both the baseline for the FLID-DL
// experiments and the legacy-router behaviour in the incremental-deployment
// story (§3.2.3).
type IGMP struct {
	router  *Router
	members map[packet.Addr]map[packet.Addr]bool // group → member host addrs
	version uint64                               // membership-mutation counter

	// Joins and Leaves count processed messages.
	Joins, Leaves uint64
}

// NewIGMP installs a plain-IGMP gatekeeper on r and returns it.
func NewIGMP(r *Router) *IGMP {
	g := &IGMP{router: r, members: make(map[packet.Addr]map[packet.Addr]bool)}
	r.SetGatekeeper(g)
	return g
}

// Deliver implements Gatekeeper: membership is sufficient.
func (g *IGMP) Deliver(group, host packet.Addr) bool {
	return g.members[group][host]
}

// Entitled implements EntitlementReader: for plain IGMP the read-only view
// coincides with Deliver.
func (g *IGMP) Entitled(group, host packet.Addr) bool {
	return g.members[group][host]
}

// DeliverVersion reports the membership-mutation counter. Its presence
// declares Deliver side-effect free, letting the router cache per-group
// delivery lists until membership changes (see Router.fwdOf).
func (g *IGMP) DeliverVersion() uint64 { return g.version }

// Members reports the current member count of a group (test observability).
func (g *IGMP) Members(group packet.Addr) int { return len(g.members[group]) }

// Control implements Gatekeeper: process join/leave messages from local
// hosts. Joins from hosts that are not local interfaces are ignored.
func (g *IGMP) Control(pkt *packet.Packet, from packet.Addr) {
	hdr, ok := pkt.Header.(*packet.IGMPHeader)
	if !ok {
		return // SIGMA messages to a legacy router are ignored
	}
	if _, local := g.router.Locals()[from]; !local {
		return
	}
	switch hdr.Op {
	case packet.IGMPJoin:
		g.Joins++
		m := g.members[hdr.Group]
		if m == nil {
			m = make(map[packet.Addr]bool)
			g.members[hdr.Group] = m
		}
		if !m[from] {
			m[from] = true
			g.version++
			if len(m) == 1 {
				g.router.Graft(hdr.Group)
			}
		}
	case packet.IGMPLeave:
		g.Leaves++
		m := g.members[hdr.Group]
		if m != nil && m[from] {
			delete(m, from)
			g.version++
			if len(m) == 0 {
				g.router.Prune(hdr.Group)
			}
		}
	}
}

// Intercept implements Gatekeeper: legacy routers ignore SIGMA special
// packets.
func (g *IGMP) Intercept(pkt *packet.Packet) {}

// Client is the host-side group-management stub speaking plain IGMP to the
// local edge router. Both well-behaved FLID-DL receivers and the inflated-
// subscription attacker use it — that symmetry is the vulnerability.
type Client struct {
	host   *netsim.Host
	router packet.Addr
}

// NewClient returns an IGMP client for host talking to the edge router at
// routerAddr.
func NewClient(host *netsim.Host, routerAddr packet.Addr) *Client {
	return &Client{host: host, router: routerAddr}
}

// Join subscribes the host to group.
func (c *Client) Join(group packet.Addr) {
	c.send(packet.IGMPJoin, group)
}

// Leave unsubscribes the host from group.
func (c *Client) Leave(group packet.Addr) {
	c.send(packet.IGMPLeave, group)
}

func (c *Client) send(op packet.IGMPOp, group packet.Addr) {
	c.host.Send(c.host.NewPacket(c.router, 0, &packet.IGMPHeader{Op: op, Group: group}))
}
