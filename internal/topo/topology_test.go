package topo

import (
	"testing"

	"deltasigma/internal/sim"
)

func TestDumbbellImplementsTopology(t *testing.T) {
	var topo Topology = New(PaperConfig(1_000_000, 1))
	src := topo.AttachSource("s")
	port := topo.AttachReceiver("r", 0)
	topo.Finish()
	topo.Finish() // idempotent

	if port.Edge == nil || port.Host == nil {
		t.Fatal("port incomplete")
	}
	if edges := topo.Edges(); len(edges) != 1 || edges[0] != port.Edge {
		t.Fatalf("edges %v", edges)
	}
	if bn := topo.Bottlenecks(); len(bn) != 1 {
		t.Fatalf("want 1 bottleneck, got %d", len(bn))
	}
	if path := topo.Network().Path(src.ID(), port.Host.ID()); len(path) != 4 {
		t.Fatalf("path length %d, want src-left-right-dst", len(path))
	}
}

func TestChainShape(t *testing.T) {
	c := NewChain(ChainConfig{Bottlenecks: []int64{1_000_000, 500_000, 250_000}, Seed: 1})
	if c.Hops() != 3 || len(c.Routers) != 4 {
		t.Fatalf("hops=%d routers=%d", c.Hops(), len(c.Routers))
	}
	src := c.AttachSource("s")
	far := c.AttachReceiver("far", 0) // default egress: behind all hops
	near := c.AttachReceiverAt(1, "near", 0)
	c.Finish()

	// Far path crosses every router: src, R0..R3, dst = 6 nodes.
	if path := c.Net.Path(src.ID(), far.Host.ID()); len(path) != 6 {
		t.Fatalf("far path length %d, want 6", len(path))
	}
	if path := c.Net.Path(src.ID(), near.Host.ID()); len(path) != 4 {
		t.Fatalf("near path length %d, want 4", len(path))
	}
	if far.Edge != c.Routers[3] || near.Edge != c.Routers[1] {
		t.Fatal("receivers gatekept by wrong routers")
	}
	if edges := c.Edges(); len(edges) != 2 {
		t.Fatalf("want 2 edges with receivers, got %d", len(edges))
	}
	if len(c.Bottlenecks()) != 3 {
		t.Fatalf("want 3 bottlenecks, got %d", len(c.Bottlenecks()))
	}
	// Each hop's queue follows the two-BDP rule on the end-to-end RTT.
	rtt := c.RTT()
	if rtt != 2*(10+3*20+10)*sim.Millisecond {
		t.Fatalf("RTT %v", rtt)
	}
	wantQ := int(2 * 1_000_000 * rtt.Sec() / 8)
	if got := c.Forward[0].Queue.CapBytes; got != wantQ {
		t.Fatalf("hop-0 queue %d, want %d", got, wantQ)
	}
}

func TestChainReceiverLocalToItsEdge(t *testing.T) {
	c := NewChain(ChainConfig{Bottlenecks: []int64{1_000_000, 500_000}, Seed: 1})
	p := c.AttachReceiverAt(1, "r", 0)
	c.Finish()
	if _, ok := c.Routers[1].Locals()[p.Host.Addr()]; !ok {
		t.Fatal("receiver not a local interface of its chain edge")
	}
	if _, ok := c.Routers[2].Locals()[p.Host.Addr()]; ok {
		t.Fatal("receiver leaked onto the far edge")
	}
}

func TestChainBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty chain should panic")
		}
	}()
	NewChain(ChainConfig{})
}

func TestStarShape(t *testing.T) {
	s := NewStar(StarConfig{Spokes: []int64{600_000, 150_000}, Seed: 1})
	if s.Spokes() != 2 || len(s.EdgeRouters) != 2 {
		t.Fatalf("spokes=%d edges=%d", s.Spokes(), len(s.EdgeRouters))
	}
	src := s.AttachSource("s")
	// Round-robin placement alternates spokes.
	r0 := s.AttachReceiver("a", 0)
	r1 := s.AttachReceiver("b", 0)
	r2 := s.AttachReceiver("c", 0)
	s.Finish()

	if r0.Edge != s.EdgeRouters[0] || r1.Edge != s.EdgeRouters[1] || r2.Edge != s.EdgeRouters[0] {
		t.Fatal("round-robin placement wrong")
	}
	// src → hub → edge → dst.
	if path := s.Net.Path(src.ID(), r1.Host.ID()); len(path) != 4 {
		t.Fatalf("path length %d, want 4", len(path))
	}
	if edges := s.Edges(); len(edges) != 2 {
		t.Fatalf("want 2 gatekeeping edges, got %d", len(edges))
	}
	if len(s.Bottlenecks()) != 2 {
		t.Fatalf("want 2 bottlenecks, got %d", len(s.Bottlenecks()))
	}
	if s.Forward[0].Rate != 600_000 || s.Forward[1].Rate != 150_000 {
		t.Fatal("spoke rates wrong")
	}
}

func TestStarExplicitPlacementPanicsOutOfRange(t *testing.T) {
	s := NewStar(StarConfig{Spokes: []int64{100_000}, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range spoke should panic")
		}
	}()
	s.AttachReceiverAt(1, "r", 0)
}
