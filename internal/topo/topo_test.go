package topo

import (
	"testing"

	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
)

func TestPaperConfigDefaults(t *testing.T) {
	cfg := PaperConfig(1_000_000, 1)
	if cfg.BottleneckDelay != 20*sim.Millisecond || cfg.SideDelay != 10*sim.Millisecond {
		t.Fatalf("delays wrong: %+v", cfg)
	}
	if cfg.SideRate != 10_000_000 || cfg.BDPFactor != 2 {
		t.Fatalf("rates wrong: %+v", cfg)
	}
}

func TestDumbbellQueueSizing(t *testing.T) {
	d := New(PaperConfig(1_000_000, 1))
	// 2 × 1 Mbps × 80 ms RTT / 8 = 20000 bytes.
	if got := d.Forward.Queue.CapBytes; got != 20000 {
		t.Fatalf("bottleneck queue = %d bytes, want 20000", got)
	}
	if d.RTT() != 80*sim.Millisecond {
		t.Fatalf("RTT = %v, want 80ms", d.RTT())
	}
}

func TestDumbbellPathCrossesBottleneck(t *testing.T) {
	d := New(PaperConfig(1_000_000, 1))
	src := d.AddSource("s")
	dst := d.AddReceiver("r")
	d.Done()

	path := d.Net.Path(src.ID(), dst.ID())
	if len(path) != 4 {
		t.Fatalf("path length %d, want src-left-right-dst", len(path))
	}
	if path[1] != d.Left.ID() || path[2] != d.Right.ID() {
		t.Fatalf("path %v does not cross the bottleneck", path)
	}
	delay, ok := d.Net.PathDelay(src.ID(), dst.ID())
	if !ok || delay != 40*sim.Millisecond {
		t.Fatalf("one-way delay %v, want 40ms", delay)
	}
}

func TestReceiverDelayVariants(t *testing.T) {
	d := New(PaperConfig(1_000_000, 1))
	src := d.AddSource("s")
	fast := d.AddReceiverDelay("fast", 1*sim.Millisecond)
	slow := d.AddReceiverDelay("slow", 80*sim.Millisecond)
	d.Done()

	fd, _ := d.Net.PathDelay(src.ID(), fast.ID())
	sd, _ := d.Net.PathDelay(src.ID(), slow.ID())
	if fd != 31*sim.Millisecond {
		t.Fatalf("fast path delay %v, want 31ms", fd)
	}
	if sd != 110*sim.Millisecond {
		t.Fatalf("slow path delay %v, want 110ms", sd)
	}
}

func TestReceiversAreLocalInterfaces(t *testing.T) {
	d := New(PaperConfig(1_000_000, 1))
	r := d.AddReceiver("r")
	d.Done()
	if _, ok := d.Right.Locals()[r.Addr()]; !ok {
		t.Fatal("receiver not attached as a local interface of the edge")
	}
}

func TestSourceNotLocalToEdge(t *testing.T) {
	d := New(PaperConfig(1_000_000, 1))
	s := d.AddSource("s")
	d.Done()
	if _, ok := d.Right.Locals()[s.Addr()]; ok {
		t.Fatal("source must not be a local interface of the right edge")
	}
}

func TestExplicitQueueOverride(t *testing.T) {
	cfg := PaperConfig(1_000_000, 1)
	cfg.QueueBytes = 12345
	d := New(cfg)
	if d.Forward.Queue.CapBytes != 12345 {
		t.Fatalf("queue = %d, want override 12345", d.Forward.Queue.CapBytes)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bottleneck should panic")
		}
	}()
	New(Config{})
}

func TestHostNaming(t *testing.T) {
	d := New(PaperConfig(1_000_000, 1))
	a := d.AddSource("")
	b := d.AddReceiver("")
	if a.Name() == "" || b.Name() == "" || a.Name() == b.Name() {
		t.Fatalf("auto names wrong: %q %q", a.Name(), b.Name())
	}
	if a.Addr() == b.Addr() || a.Addr().IsMulticast() {
		t.Fatal("host addressing wrong")
	}
	_ = packet.Addr(0)
}
