// Package topo builds the paper's experimental topology (§5.1): a single
// bottleneck link in the middle of every session's three-link path.
// Sources attach to the left router, receivers to the right edge router;
// the bottleneck carries 20 ms of delay and the experiment's capacity,
// side links carry 10 ms and 10 Mbps each.
//
// The paper sets "buffer space for each link equal to two bandwidth-delay
// products" without fixing which delay; this builder uses the end-to-end
// round-trip (80 ms for the default delays) times the link rate, the
// reading that yields NS-2-like queue depths (≈34 packets of 576 B on a
// 1 Mbps bottleneck).
package topo

import (
	"fmt"

	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/sim"
)

// Config parameterizes a dumbbell.
type Config struct {
	// BottleneckRate is the middle link's capacity in bits/s.
	BottleneckRate int64
	// BottleneckDelay is the middle link's propagation delay (20 ms).
	BottleneckDelay sim.Time
	// SideRate is each access link's capacity (10 Mbps).
	SideRate int64
	// SideDelay is each access link's propagation delay (10 ms).
	SideDelay sim.Time
	// QueueBytes overrides the bottleneck queue size; 0 derives two
	// bandwidth-RTT products.
	QueueBytes int
	// BDPFactor scales the derived queue (2 per §5.1).
	BDPFactor float64
	// Seed drives all experiment randomness.
	Seed uint64
}

// PaperConfig returns the §5.1 defaults for a given bottleneck capacity.
func PaperConfig(bottleneck int64, seed uint64) Config {
	return Config{
		BottleneckRate:  bottleneck,
		BottleneckDelay: 20 * sim.Millisecond,
		SideRate:        10_000_000,
		SideDelay:       10 * sim.Millisecond,
		BDPFactor:       2,
		Seed:            seed,
	}
}

// Dumbbell is the assembled topology.
type Dumbbell struct {
	Sched  *sim.Scheduler
	RNG    *sim.RNG
	Net    *netsim.Network
	Fabric *mcast.Fabric
	Left   *mcast.Router
	Right  *mcast.Router
	// Forward is the left→right bottleneck link (the congested one).
	Forward *netsim.Link
	// Reverse is the right→left bottleneck link (ACK path).
	Reverse *netsim.Link

	cfg      Config
	nHosts   int
	finished bool
}

// Dumbbell implements Topology.
var _ Topology = (*Dumbbell)(nil)

// Scheduler implements Topology.
func (d *Dumbbell) Scheduler() *sim.Scheduler { return d.Sched }

// Rand implements Topology.
func (d *Dumbbell) Rand() *sim.RNG { return d.RNG }

// Network implements Topology.
func (d *Dumbbell) Network() *netsim.Network { return d.Net }

// Multicast implements Topology.
func (d *Dumbbell) Multicast() *mcast.Fabric { return d.Fabric }

// AttachSource implements Topology.
func (d *Dumbbell) AttachSource(name string) *netsim.Host { return d.AddSource(name) }

// AttachReceiver implements Topology: receivers live behind the right edge
// router.
func (d *Dumbbell) AttachReceiver(name string, delay sim.Time) Port {
	if delay < 0 {
		delay = d.cfg.SideDelay
	}
	return Port{Host: d.AddReceiverDelay(name, delay), Edge: d.Right}
}

// AttachCohort implements Topology: the cohort's private edge hangs off the
// right router.
func (d *Dumbbell) AttachCohort(name string, delay sim.Time) Port {
	if delay < 0 {
		delay = d.cfg.SideDelay
	}
	d.nHosts++
	if name == "" {
		name = fmt.Sprintf("cohort%d", d.nHosts)
	}
	rtt := 2 * (d.cfg.SideDelay + d.cfg.BottleneckDelay + delay)
	return attachCohortEdge(d.Net, d.Fabric, name, d.Right, d.cfg.SideRate, delay, rtt, d.cfg.BDPFactor)
}

// Edges implements Topology: the right router gatekeeps every receiver.
func (d *Dumbbell) Edges() []*mcast.Router { return []*mcast.Router{d.Right} }

// Bottlenecks implements Topology: the forward middle link.
func (d *Dumbbell) Bottlenecks() []*netsim.Link { return []*netsim.Link{d.Forward} }

// Finish implements Topology (idempotent Done).
func (d *Dumbbell) Finish() {
	if d.finished {
		return
	}
	d.finished = true
	d.Done()
}

// RTT returns the end-to-end round-trip propagation time for default-delay
// hosts.
func (d *Dumbbell) RTT() sim.Time {
	return 2 * (d.cfg.SideDelay + d.cfg.BottleneckDelay + d.cfg.SideDelay)
}

// New builds the dumbbell.
func New(cfg Config) *Dumbbell {
	if cfg.BottleneckRate <= 0 {
		panic("topo: bottleneck rate must be positive")
	}
	if cfg.SideRate <= 0 {
		cfg.SideRate = 10_000_000
	}
	if cfg.BDPFactor <= 0 {
		cfg.BDPFactor = 2
	}
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	net := netsim.New(sched, rng)
	fabric := mcast.NewFabric(net)
	d := &Dumbbell{Sched: sched, RNG: rng, Net: net, Fabric: fabric, cfg: cfg}

	d.Left = mcast.NewRouter(net, fabric, "left")
	d.Right = mcast.NewRouter(net, fabric, "right")

	qBytes := cfg.QueueBytes
	if qBytes == 0 {
		rtt := 2 * (cfg.SideDelay + cfg.BottleneckDelay + cfg.SideDelay)
		qBytes = int(cfg.BDPFactor * float64(cfg.BottleneckRate) * rtt.Sec() / 8)
	}
	d.Forward, d.Reverse = net.Connect(d.Left, d.Right, cfg.BottleneckRate, cfg.BottleneckDelay, qBytes)
	return d
}

// sideQueue sizes an access-link queue by the same BDP rule.
func (d *Dumbbell) sideQueue(delay sim.Time) int {
	rtt := 2 * (d.cfg.SideDelay + d.cfg.BottleneckDelay + delay)
	q := int(d.cfg.BDPFactor * float64(d.cfg.SideRate) * rtt.Sec() / 8)
	if q < 1<<16 {
		q = 1 << 16
	}
	return q
}

// AddSource attaches a sender host on the left side.
func (d *Dumbbell) AddSource(name string) *netsim.Host {
	d.nHosts++
	if name == "" {
		name = fmt.Sprintf("src%d", d.nHosts)
	}
	h := d.Net.AddHost(name)
	d.Net.Connect(h, d.Left, d.cfg.SideRate, d.cfg.SideDelay, d.sideQueue(d.cfg.SideDelay))
	return h
}

// AddReceiver attaches a receiver host behind the right edge router with
// the default access delay.
func (d *Dumbbell) AddReceiver(name string) *netsim.Host {
	return d.AddReceiverDelay(name, d.cfg.SideDelay)
}

// AddReceiverDelay attaches a receiver host with a custom access delay
// (the heterogeneous-RTT experiment, Figure 8f).
func (d *Dumbbell) AddReceiverDelay(name string, delay sim.Time) *netsim.Host {
	d.nHosts++
	if name == "" {
		name = fmt.Sprintf("rcv%d", d.nHosts)
	}
	h := d.Net.AddHost(name)
	d.Net.Connect(h, d.Right, d.cfg.SideRate, delay, d.sideQueue(delay))
	d.Right.AttachLocal(h)
	return h
}

// Done finishes topology construction; call after all hosts are added.
func (d *Dumbbell) Done() {
	d.Net.ComputeRoutes()
}
