package topo

import (
	"fmt"

	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/sim"
)

// StarConfig parameterizes a star.
type StarConfig struct {
	// Spokes holds the capacity in bits/s of each hub→edge link; one edge
	// router (and one potential SIGMA gatekeeper) per entry.
	Spokes []int64
	// SpokeDelay is each hub→edge link's propagation delay (default 20 ms).
	SpokeDelay sim.Time
	// SideRate is each access link's capacity (default 10 Mbps).
	SideRate int64
	// SideDelay is each access link's propagation delay (default 10 ms).
	SideDelay sim.Time
	// BDPFactor scales the derived queues (default 2 per §5.1).
	BDPFactor float64
	// Seed drives all experiment randomness.
	Seed uint64
}

func (c *StarConfig) defaults() {
	sideDefaults(&c.SpokeDelay, &c.SideRate, &c.SideDelay, &c.BDPFactor)
}

// Star is a hub-and-spoke topology: sources feed a central hub router, and
// each spoke is an independent bottleneck link down to its own edge router
// with its own gatekeeper. Receivers attach behind the edges (round-robin
// by default), so one multicast transmission fans out across spokes of
// different capacities — each edge enforces SIGMA independently, the
// incremental-deployment picture of §3.2.3.
type Star struct {
	Sched  *sim.Scheduler
	RNG    *sim.RNG
	Net    *netsim.Network
	Fabric *mcast.Fabric
	// Hub is the central router sources feed.
	Hub *mcast.Router
	// EdgeRouters holds one edge router per spoke.
	EdgeRouters []*mcast.Router
	// Forward holds the hub→edge bottleneck links, spoke order.
	Forward []*netsim.Link

	cfg      StarConfig
	nHosts   int
	next     int // round-robin spoke for AttachReceiver
	edges    edgeSet
	finished bool
}

var _ Topology = (*Star)(nil)

// NewStar builds the star.
func NewStar(cfg StarConfig) *Star {
	if len(cfg.Spokes) == 0 {
		panic("topo: star needs at least one spoke")
	}
	for _, r := range cfg.Spokes {
		if r <= 0 {
			panic("topo: star spoke rates must be positive")
		}
	}
	cfg.defaults()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	net := netsim.New(sched, rng)
	s := &Star{Sched: sched, RNG: rng, Net: net, Fabric: mcast.NewFabric(net), cfg: cfg}
	s.Hub = mcast.NewRouter(net, s.Fabric, "hub")
	rtt := s.RTT()
	for i, rate := range cfg.Spokes {
		edge := mcast.NewRouter(net, s.Fabric, fmt.Sprintf("edge%d", i))
		s.EdgeRouters = append(s.EdgeRouters, edge)
		q := bdpQueue(cfg.BDPFactor, rate, rtt, 0)
		fwd, _ := net.Connect(s.Hub, edge, rate, cfg.SpokeDelay, q)
		s.Forward = append(s.Forward, fwd)
	}
	return s
}

// Spokes returns the number of spokes.
func (s *Star) Spokes() int { return len(s.Forward) }

// RTT returns the round-trip propagation time between a default-delay
// source and a default-delay receiver.
func (s *Star) RTT() sim.Time {
	return 2 * (s.cfg.SideDelay + s.cfg.SpokeDelay + s.cfg.SideDelay)
}

// Scheduler implements Topology.
func (s *Star) Scheduler() *sim.Scheduler { return s.Sched }

// Rand implements Topology.
func (s *Star) Rand() *sim.RNG { return s.RNG }

// Network implements Topology.
func (s *Star) Network() *netsim.Network { return s.Net }

// Multicast implements Topology.
func (s *Star) Multicast() *mcast.Fabric { return s.Fabric }

// AttachSource implements Topology: sources feed the hub.
func (s *Star) AttachSource(name string) *netsim.Host {
	s.nHosts++
	if name == "" {
		name = fmt.Sprintf("src%d", s.nHosts)
	}
	return attachHost(s.Net, name, s.Hub, s.cfg.SideRate, s.cfg.SideDelay, s.RTT(), s.cfg.BDPFactor)
}

// AttachReceiver implements Topology: receivers round-robin across spokes.
func (s *Star) AttachReceiver(name string, delay sim.Time) Port {
	spoke := s.next
	s.next = (s.next + 1) % s.Spokes()
	return s.AttachReceiverAt(spoke, name, delay)
}

// AttachReceiverAt adds a receiver behind the edge router of spoke
// (0 … Spokes()−1).
func (s *Star) AttachReceiverAt(spoke int, name string, delay sim.Time) Port {
	if spoke < 0 || spoke >= s.Spokes() {
		panic(fmt.Sprintf("topo: star spoke %d out of range 0..%d", spoke, s.Spokes()-1))
	}
	if delay < 0 {
		delay = s.cfg.SideDelay
	}
	s.nHosts++
	if name == "" {
		name = fmt.Sprintf("rcv%d", s.nHosts)
	}
	edge := s.EdgeRouters[spoke]
	h := attachHost(s.Net, name, edge, s.cfg.SideRate, delay, s.RTT(), s.cfg.BDPFactor)
	edge.AttachLocal(h)
	s.edges.add(edge)
	return Port{Host: h, Edge: edge}
}

// AttachCohort implements Topology: cohorts round-robin across spokes like
// individual receivers, each behind its own private edge.
func (s *Star) AttachCohort(name string, delay sim.Time) Port {
	spoke := s.next
	s.next = (s.next + 1) % s.Spokes()
	if delay < 0 {
		delay = s.cfg.SideDelay
	}
	s.nHosts++
	if name == "" {
		name = fmt.Sprintf("cohort%d", s.nHosts)
	}
	return attachCohortEdge(s.Net, s.Fabric, name, s.EdgeRouters[spoke], s.cfg.SideRate, delay, s.RTT(), s.cfg.BDPFactor)
}

// Edges implements Topology: every edge router with attached receivers.
func (s *Star) Edges() []*mcast.Router { return s.edges.list }

// Bottlenecks implements Topology.
func (s *Star) Bottlenecks() []*netsim.Link { return s.Forward }

// Finish implements Topology.
func (s *Star) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.Net.ComputeRoutes()
}
