package topo

import (
	"fmt"

	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/sim"
)

// ChainConfig parameterizes a chain.
type ChainConfig struct {
	// Bottlenecks holds the capacity in bits/s of each inter-router link,
	// ingress to egress. len(Bottlenecks) >= 1.
	Bottlenecks []int64
	// BottleneckDelay is each inter-router link's propagation delay
	// (default 20 ms).
	BottleneckDelay sim.Time
	// SideRate is each access link's capacity (default 10 Mbps).
	SideRate int64
	// SideDelay is each access link's propagation delay (default 10 ms).
	SideDelay sim.Time
	// BDPFactor scales the derived queues (default 2 per §5.1).
	BDPFactor float64
	// Seed drives all experiment randomness.
	Seed uint64
}

func (c *ChainConfig) defaults() {
	sideDefaults(&c.BottleneckDelay, &c.SideRate, &c.SideDelay, &c.BDPFactor)
}

// Chain is a multi-bottleneck parking-lot topology: routers R0 … Rk joined
// by k inter-router links, each an independent bottleneck with its own
// capacity and drop-tail queue. Sources attach at R0; receivers attach
// behind any of R1 … Rk (the far end by default), so a far receiver's
// traffic crosses every bottleneck while a near receiver competes only on
// the first hops.
type Chain struct {
	Sched  *sim.Scheduler
	RNG    *sim.RNG
	Net    *netsim.Network
	Fabric *mcast.Fabric
	// Routers holds R0 … Rk, ingress first.
	Routers []*mcast.Router
	// Forward holds the k ingress→egress inter-router links (the
	// bottlenecks), in hop order.
	Forward []*netsim.Link

	cfg      ChainConfig
	nHosts   int
	edges    edgeSet
	finished bool
}

var _ Topology = (*Chain)(nil)

// NewChain builds the chain.
func NewChain(cfg ChainConfig) *Chain {
	if len(cfg.Bottlenecks) == 0 {
		panic("topo: chain needs at least one bottleneck")
	}
	for _, r := range cfg.Bottlenecks {
		if r <= 0 {
			panic("topo: chain bottleneck rates must be positive")
		}
	}
	cfg.defaults()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	net := netsim.New(sched, rng)
	c := &Chain{Sched: sched, RNG: rng, Net: net, Fabric: mcast.NewFabric(net), cfg: cfg}
	for i := 0; i <= len(cfg.Bottlenecks); i++ {
		c.Routers = append(c.Routers, mcast.NewRouter(net, c.Fabric, fmt.Sprintf("r%d", i)))
	}
	// End-to-end RTT over all hops (c.RTT() would see zero hops here).
	rtt := 2 * (cfg.SideDelay + sim.Time(len(cfg.Bottlenecks))*cfg.BottleneckDelay + cfg.SideDelay)
	for i, rate := range cfg.Bottlenecks {
		q := bdpQueue(cfg.BDPFactor, rate, rtt, 0)
		fwd, _ := net.Connect(c.Routers[i], c.Routers[i+1], rate, cfg.BottleneckDelay, q)
		c.Forward = append(c.Forward, fwd)
	}
	return c
}

// Hops returns the number of bottleneck links.
func (c *Chain) Hops() int { return len(c.Forward) }

// RTT returns the end-to-end round-trip propagation time for default-delay
// hosts at the far end.
func (c *Chain) RTT() sim.Time {
	return 2 * (c.cfg.SideDelay + sim.Time(c.Hops())*c.cfg.BottleneckDelay + c.cfg.SideDelay)
}

// Scheduler implements Topology.
func (c *Chain) Scheduler() *sim.Scheduler { return c.Sched }

// Rand implements Topology.
func (c *Chain) Rand() *sim.RNG { return c.RNG }

// Network implements Topology.
func (c *Chain) Network() *netsim.Network { return c.Net }

// Multicast implements Topology.
func (c *Chain) Multicast() *mcast.Fabric { return c.Fabric }

// AttachSource implements Topology: sources feed the ingress router.
func (c *Chain) AttachSource(name string) *netsim.Host {
	c.nHosts++
	if name == "" {
		name = fmt.Sprintf("src%d", c.nHosts)
	}
	return attachHost(c.Net, name, c.Routers[0], c.cfg.SideRate, c.cfg.SideDelay, c.RTT(), c.cfg.BDPFactor)
}

// AttachReceiver implements Topology: the default egress is the far-end
// router, downstream of every bottleneck.
func (c *Chain) AttachReceiver(name string, delay sim.Time) Port {
	return c.AttachReceiverAt(c.Hops(), name, delay)
}

// AttachReceiverAt adds a receiver behind router `hop` (1 … Hops()), i.e.
// downstream of the first `hop` bottlenecks.
func (c *Chain) AttachReceiverAt(hop int, name string, delay sim.Time) Port {
	if hop < 1 || hop > c.Hops() {
		panic(fmt.Sprintf("topo: chain hop %d out of range 1..%d", hop, c.Hops()))
	}
	if delay < 0 {
		delay = c.cfg.SideDelay
	}
	c.nHosts++
	if name == "" {
		name = fmt.Sprintf("rcv%d", c.nHosts)
	}
	edge := c.Routers[hop]
	h := attachHost(c.Net, name, edge, c.cfg.SideRate, delay, c.RTT(), c.cfg.BDPFactor)
	edge.AttachLocal(h)
	c.edges.add(edge)
	return Port{Host: h, Edge: edge}
}

// AttachCohort implements Topology: the cohort's private edge hangs off the
// far-end router, downstream of every bottleneck.
func (c *Chain) AttachCohort(name string, delay sim.Time) Port {
	if delay < 0 {
		delay = c.cfg.SideDelay
	}
	c.nHosts++
	if name == "" {
		name = fmt.Sprintf("cohort%d", c.nHosts)
	}
	return attachCohortEdge(c.Net, c.Fabric, name, c.Routers[c.Hops()], c.cfg.SideRate, delay, c.RTT(), c.cfg.BDPFactor)
}

// Edges implements Topology: every router with attached receivers.
func (c *Chain) Edges() []*mcast.Router { return c.edges.list }

// Bottlenecks implements Topology.
func (c *Chain) Bottlenecks() []*netsim.Link { return c.Forward }

// Finish implements Topology.
func (c *Chain) Finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.Net.ComputeRoutes()
}
