package topo

import (
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/sim"
)

// DefaultDelay passed as an access delay selects the topology's default
// side delay; zero is a genuine zero-delay link.
const DefaultDelay sim.Time = -1

// Port is a receiver attachment point: the host plus the edge router that
// gatekeeps its local interface. Every SIGMA/IGMP control exchange of the
// receiver goes to Edge.Addr().
type Port struct {
	Host *netsim.Host
	Edge *mcast.Router
}

// Topology abstracts an assembled simulated network so experiments can run
// unchanged on any shape: the paper's dumbbell, a multi-bottleneck chain, a
// star with per-edge gatekeepers, or anything a caller builds. A topology
// owns the scheduler, RNG, network and multicast fabric; experiments attach
// hosts through it and never wire links themselves.
type Topology interface {
	// Scheduler returns the virtual clock everything runs on.
	Scheduler() *sim.Scheduler
	// Rand returns the topology's root RNG (fork it per agent).
	Rand() *sim.RNG
	// Network returns the underlying link-level network.
	Network() *netsim.Network
	// Multicast returns the group-distribution fabric.
	Multicast() *mcast.Fabric
	// AttachSource adds a sender host at the topology's ingress.
	AttachSource(name string) *netsim.Host
	// AttachReceiver adds a receiver host at the topology's default egress
	// with the given access-link delay (negative — DefaultDelay — selects
	// the topology default) and returns it together with its gatekeeping
	// edge router.
	AttachReceiver(name string, delay sim.Time) Port
	// AttachCohort adds an aggregated-receiver attachment point at the
	// topology's default egress: a private edge router reached over an
	// access link with the given delay (negative selects the topology
	// default), plus the cohort's host behind it. The private edge is
	// deliberately absent from Edges() — the cohort installs its own
	// gatekeeper, so graft/prune state on that edge belongs to the cohort
	// alone and bulk join/leave never disturbs exact receivers sharing the
	// upstream router.
	AttachCohort(name string, delay sim.Time) Port
	// Edges lists every router that gatekeeps at least one attached
	// receiver; experiments install one gatekeeper (SIGMA controller or
	// IGMP) per edge.
	Edges() []*mcast.Router
	// Bottlenecks lists the congested forward links, for utilization and
	// loss accounting.
	Bottlenecks() []*netsim.Link
	// Finish completes construction (routing tables); idempotent, called
	// once all hosts are attached.
	Finish()
}

// bdpQueue sizes a queue as factor × rate × rtt (the §5.1 two-BDP rule),
// with a floor so access links never bottleneck on buffer space.
func bdpQueue(factor float64, rate int64, rtt sim.Time, floor int) int {
	q := int(factor * float64(rate) * rtt.Sec() / 8)
	if q < floor {
		q = floor
	}
	return q
}

// sideDefaults fills the §5.1 access-link and queue defaults shared by the
// multi-router topology configs; hopDelay is the inter-router link delay.
func sideDefaults(hopDelay *sim.Time, sideRate *int64, sideDelay *sim.Time, factor *float64) {
	if *hopDelay <= 0 {
		*hopDelay = 20 * sim.Millisecond
	}
	if *sideRate <= 0 {
		*sideRate = 10_000_000
	}
	if *sideDelay <= 0 {
		*sideDelay = 10 * sim.Millisecond
	}
	if *factor <= 0 {
		*factor = 2
	}
}

// edgeSet tracks the routers that gatekeep attached receivers, in
// attachment order.
type edgeSet struct {
	list []*mcast.Router
	seen map[*mcast.Router]bool
}

func (e *edgeSet) add(r *mcast.Router) {
	if e.seen == nil {
		e.seen = make(map[*mcast.Router]bool)
	}
	if !e.seen[r] {
		e.seen[r] = true
		e.list = append(e.list, r)
	}
}

// attachHost creates a host and connects it to router over an access link
// with a BDP-sized queue.
func attachHost(net *netsim.Network, name string, router *mcast.Router, rate int64, delay, rtt sim.Time, factor float64) *netsim.Host {
	h := net.AddHost(name)
	net.Connect(h, router, rate, delay, bdpQueue(factor, rate, rtt, 1<<16))
	return h
}

// cohortStubRate is the private-edge→cohort-host stub link rate: fast
// enough that the extra hop adds negligible serialization skew relative to
// a host attached directly to the shared edge.
const cohortStubRate int64 = 100_000_000_000

// attachCohortEdge builds a cohort attachment point behind parent: a
// private edge router reached over a dedicated access link carrying the
// cohort's delay, with the cohort's single host on a zero-delay stub
// behind it.
func attachCohortEdge(net *netsim.Network, fabric *mcast.Fabric, name string, parent *mcast.Router, rate int64, delay, rtt sim.Time, factor float64) Port {
	edge := mcast.NewRouter(net, fabric, name+"-edge")
	net.Connect(parent, edge, rate, delay, bdpQueue(factor, rate, rtt, 1<<16))
	h := net.AddHost(name)
	net.Connect(h, edge, cohortStubRate, 0, 1<<20)
	edge.AttachLocal(h)
	return Port{Host: h, Edge: edge}
}
