// Package abrcf implements an ABR-style single dynamic channel with
// consolidated feedback after Fahmy et al. (PAPERS.md), as a baseline
// competitor to the paper's layered protocols:
//
//   - the session carries one group whose rate the source adapts AIMD-
//     style: multiplicative decrease while any receiver reports a lossy
//     slot, additive increase otherwise;
//   - every receiver subscribes to that single group and unicasts a
//     per-slot status report toward the source (packet.FeedbackHeader),
//     which routers running hierarchical consolidation merge on the way
//     up — the point-to-multipoint consolidation algorithm the PR 6
//     router path models.
//
// There is no inflated-subscription attack surface: a subscription to the
// single channel is already maximal, so joining "more" is structurally
// impossible. The facade reports this as a typed not-applicable error —
// the interesting negative result of the shoot-out: the scheme resists
// inflation by having nothing to inflate, at the cost of degrading every
// receiver to the slowest path's rate.
package abrcf

import (
	"deltasigma/internal/core"
	"deltasigma/internal/mcast"
	"deltasigma/internal/netsim"
	"deltasigma/internal/packet"
	"deltasigma/internal/sim"
	"deltasigma/internal/stats"
)

// guardFraction mirrors the FLID receiver's slot-evaluation guard.
const guardFraction = 0.8

// tallyW is the receiver's slot tally window (a power of two): evaluation
// of a slot happens after the next slot's packets have begun arriving, so
// tallies of adjacent slots must not clobber each other.
const tallyW = 4

// cutFactor is the multiplicative decrease applied to the channel rate on
// a congested slot; the additive increase on a clean slot is the schedule
// base rate over raiseDivisor.
const (
	cutFactor    = 0.9
	raiseDivisor = 4
)

// Sender is the session source: one group, one AIMD rate controller fed by
// (consolidated) receiver reports. The session's rate schedule bounds the
// controller: the base rate is the floor, the schedule's full cumulative
// rate the ceiling.
type Sender struct {
	Sess *core.Session
	host *netsim.Host
	rng  *sim.RNG

	pacer   core.Pacer
	rate    int64
	congest bool
	running bool

	// Stats.
	PacketsSent, BytesSent, SlotsRun uint64
	FeedbackReports                  uint64
	RateCuts, RateRaises             uint64
}

// NewSender builds an abr-cf source on host.
func NewSender(host *netsim.Host, sess *core.Session, rng *sim.RNG) *Sender {
	sess.Rates.Validate()
	s := &Sender{Sess: sess, host: host, rng: rng, rate: sess.Rates.Cumulative(1)}
	s.pacer.MinOne = true
	host.Handle(packet.ProtoFeedback, s.onFeedback)
	return s
}

// Rate returns the channel's current transmission rate in bits/s.
func (s *Sender) Rate() int64 { return s.rate }

// Start begins the slot loop at the session epoch.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	sched := s.host.Scheduler()
	start := s.Sess.Epoch
	if start < sched.Now() {
		start = sched.Now()
	}
	sched.At(start, func() { s.runSlot(s.Sess.SlotAt(sched.Now())) })
}

// Stop halts the sender after the current slot.
func (s *Sender) Stop() { s.running = false }

func (s *Sender) onFeedback(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FeedbackHeader)
	if !ok || h.Session != s.Sess.ID {
		return
	}
	n := uint64(h.Reports)
	if n == 0 {
		n = 1
	}
	s.FeedbackReports += n
	if h.Congested {
		s.congest = true
	}
}

func (s *Sender) runSlot(slot uint32) {
	if !s.running {
		return
	}
	s.SlotsRun++
	sched := s.host.Scheduler()

	floor := s.Sess.Rates.Cumulative(1)
	ceil := s.Sess.Rates.Cumulative(s.Sess.Rates.N)
	if s.congest {
		s.congest = false
		if s.rate > floor {
			s.rate = int64(float64(s.rate) * cutFactor)
			if s.rate < floor {
				s.rate = floor
			}
			s.RateCuts++
		}
	} else if s.rate < ceil {
		s.rate += s.Sess.Rates.Base / raiseDivisor
		if s.rate > ceil {
			s.rate = ceil
		}
		s.RateRaises++
	}

	cnt := s.pacer.Packets(s.rate, s.Sess.SlotDur, s.Sess.PacketSize)
	if cnt > 0 {
		slotStart := s.Sess.SlotStart(slot)
		pool := s.host.Network().Pool()
		spacing := s.Sess.SlotDur / sim.Time(cnt)
		for j := 1; j <= cnt; j++ {
			hdr := pool.FLIDHeader()
			hdr.Session, hdr.Group, hdr.Slot = s.Sess.ID, 1, slot
			hdr.Seq, hdr.Count, hdr.IncreaseTo = uint16(j), uint16(cnt), 0
			at := slotStart + sim.Time(j-1)*spacing + s.rng.Jitter(spacing/2)
			if at < sched.Now() {
				at = sched.Now()
			}
			pkt := s.host.Network().NewPacket(s.host.Addr(), s.Sess.GroupAddr(1), s.Sess.PacketSize, hdr)
			sched.Schedule(at, func() { s.emit(pkt) })
		}
	}

	sched.Schedule(s.Sess.SlotStart(slot+1), func() { s.runSlot(slot + 1) })
}

func (s *Sender) emit(pkt *packet.Packet) {
	s.PacketsSent++
	s.BytesSent += uint64(pkt.Size)
	s.host.Send(pkt)
}

// Receiver is an abr-cf receiver: it subscribes to the single channel and
// reports each slot's status toward the source. There are no subscription
// levels to move between — Level is 1 while subscribed.
type Receiver struct {
	Sess *core.Session
	host *netsim.Host
	igmp *mcast.Client

	running  bool
	loop     *core.SlotLoop
	fromSlot uint32 // first fully observed slot

	tags   [tallyW]uint32
	got    [tallyW]uint16
	expect [tallyW]uint16

	// Meter records delivered session bytes.
	Meter *stats.Meter
	// ReportsSent counts feedback packets emitted; LossSlots counts slots
	// judged congested.
	ReportsSent uint64
	LossSlots   uint64
}

// NewReceiver builds an abr-cf receiver on host, managing membership
// through the edge router at routerAddr.
func NewReceiver(host *netsim.Host, sess *core.Session, routerAddr packet.Addr) *Receiver {
	r := &Receiver{
		Sess:  sess,
		host:  host,
		igmp:  mcast.NewClient(host, routerAddr),
		Meter: stats.NewMeter(sim.Second),
	}
	r.loop = core.NewSlotLoop(host.Scheduler(), sess,
		sim.Time(guardFraction*float64(sess.SlotDur)), r.onEval)
	host.Handle(packet.ProtoFLID, r.onData)
	return r
}

// Level reports 1 while subscribed, 0 otherwise.
func (r *Receiver) Level() int {
	if r.running {
		return 1
	}
	return 0
}

// Start joins the channel.
func (r *Receiver) Start() {
	if r.running {
		return
	}
	r.running = true
	cur := r.Sess.SlotAt(r.host.Scheduler().Now())
	r.fromSlot = cur + 1
	r.igmp.Join(r.Sess.GroupAddr(1))
	r.loop.Schedule(cur)
}

// Stop leaves the channel and halts evaluation.
func (r *Receiver) Stop() {
	if !r.running {
		return
	}
	r.running = false
	r.igmp.Leave(r.Sess.GroupAddr(1))
}

func (r *Receiver) onData(pkt *packet.Packet) {
	h, ok := pkt.Header.(*packet.FLIDHeader)
	if !ok || h.Session != r.Sess.ID || h.Group != 1 {
		return
	}
	r.Meter.Add(r.host.Scheduler().Now(), pkt.Size)
	idx := int(h.Slot) & (tallyW - 1)
	if r.tags[idx] != h.Slot {
		r.tags[idx] = h.Slot
		r.got[idx] = 0
	}
	r.got[idx]++
	r.expect[idx] = h.Count
}

func (r *Receiver) onEval(slot uint32) bool {
	if !r.running {
		return false
	}
	if slot < r.fromSlot {
		return true // not yet a full member for this slot
	}
	idx := int(slot) & (tallyW - 1)
	has := r.tags[idx] == slot
	loss := !has || r.got[idx] == 0 || r.got[idx] < r.expect[idx]
	if loss {
		r.LossSlots++
	}
	r.report(slot, loss)
	return true
}

// report unicasts the slot's status toward the session source.
func (r *Receiver) report(slot uint32, congested bool) {
	if r.Sess.Src == 0 {
		return
	}
	hdr := &packet.FeedbackHeader{
		Session:   r.Sess.ID,
		Slot:      slot,
		Count:     1,
		MaxLevel:  1,
		Congested: congested,
		Reports:   1,
	}
	r.host.Send(r.host.NewPacket(r.Sess.Src, 0, hdr))
	r.ReportsSent++
}
