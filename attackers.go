package deltasigma

import (
	"fmt"

	"deltasigma/internal/sigma"
)

// AttackerStrategy selects how an attacker added through
// AddAttackerStrategy behaves. Every strategy rides on the protocol's
// inflated-subscription attacker; the non-classic ones layer a capability
// the paper's threat model (§2.2) does not grant a lone receiver — see
// docs/ADVERSARIES.md for the catalog.
type AttackerStrategy string

const (
	// StrategyClassic is the paper's §4.2 attacker: plain-IGMP inflation
	// plus independent random key guessing. AddAttacker is shorthand for
	// this strategy.
	StrategyClassic AttackerStrategy = "classic"
	// StrategyColluding enrolls the attacker in a per-session cohort that
	// shares decoded keys and deduplicates guesses (see sigma.Collusion).
	StrategyColluding AttackerStrategy = "colluding"
	// StrategyAdaptive times inflation bursts to the experiment's
	// scripted disturbances — churn windows, link flaps, capacity and
	// membership changes — instead of attacking continuously.
	StrategyAdaptive AttackerStrategy = "adaptive"
	// StrategyForging spoofs control-plane traffic: per-slot forged SIGMA
	// unsubscribes that evict co-located honest receivers' grants, plus
	// bogus consolidated feedback toward the source (sigma.ForgeAttack).
	StrategyForging AttackerStrategy = "forging"
)

// valid reports whether the strategy is one of the defined constants.
func (st AttackerStrategy) valid() bool {
	switch st {
	case StrategyClassic, StrategyColluding, StrategyAdaptive, StrategyForging:
		return true
	}
	return false
}

// AttackerStrategies lists the defined strategy names in catalog order,
// for validation messages and sweep axes.
func AttackerStrategies() []AttackerStrategy {
	return []AttackerStrategy{StrategyClassic, StrategyColluding, StrategyAdaptive, StrategyForging}
}

// guessEngine is satisfied by every protected protocol's attacker: the
// embedded sigma.GuessAttack promotes Engine through the protocol attacker
// and its facade wrapper alike.
type guessEngine interface {
	Engine() *sigma.GuessAttack
}

// AddAttackerStrategy attaches an attacker with the given strategy at the
// topology's default egress.
func (s *ExperimentSession) AddAttackerStrategy(st AttackerStrategy) *Receiver {
	return s.AddAttackerStrategyAt(st, s.exp.Topo.AttachReceiver("", DefaultDelay))
}

// AddAttackerStrategyAt attaches an attacker with the given strategy at an
// explicit port. An empty strategy means classic. On unprotected variants
// (no SIGMA control plane to collude against or forge into) colluding and
// forging degrade to the classic inflator — which already wins outright
// there; adaptive keeps its timing behavior everywhere.
//
// Non-classic strategies force serial execution on sharded experiments:
// collusion taps and adaptive timeline entries touch cross-shard state.
// Like AddEvents, the downgrade panics once receivers have migrated — add
// strategy attackers before plain receivers, or skip WithShards.
func (s *ExperimentSession) AddAttackerStrategyAt(st AttackerStrategy, port Port) *Receiver {
	r, err := s.TryAddAttackerStrategyAt(st, port)
	if err != nil {
		panic(err)
	}
	return r
}

// TryAddAttackerStrategy is AddAttackerStrategy returning the protocol's
// attacker-availability error — e.g. *NoAttackerError — instead of
// panicking.
func (s *ExperimentSession) TryAddAttackerStrategy(st AttackerStrategy) (*Receiver, error) {
	return s.TryAddAttackerStrategyAt(st, s.exp.Topo.AttachReceiver("", DefaultDelay))
}

// TryAddAttackerStrategyAt is AddAttackerStrategyAt returning the
// protocol's attacker-availability error instead of panicking. An unknown
// strategy name still panics: it is caller error, not a protocol property.
func (s *ExperimentSession) TryAddAttackerStrategyAt(st AttackerStrategy, port Port) (*Receiver, error) {
	if st == "" {
		st = StrategyClassic
	}
	if !st.valid() {
		panic(fmt.Sprintf("deltasigma: unknown attacker strategy %q", st))
	}
	if st != StrategyClassic {
		s.exp.downgradeSharding("AddAttackerStrategy",
			fmt.Sprintf("attacker strategy %q: collusion and adaptive scheduling mutate cross-shard state", st))
	}
	r, err := s.TryAddAttackerAt(port)
	if err != nil {
		return nil, err
	}
	r.strategy = st
	if !s.exp.Protocol.Protected() && (st == StrategyColluding || st == StrategyForging) {
		r.strategy = StrategyClassic
		return r, nil
	}
	switch st {
	case StrategyColluding:
		eng, ok := r.agent.(guessEngine)
		if !ok {
			r.strategy = StrategyClassic
			return r, nil
		}
		if s.collusion == nil {
			s.collusion = sigma.NewCollusion()
		}
		s.collusion.Join(eng.Engine())
	case StrategyForging:
		r.forge = sigma.NewForgeAttack(r.host, s.Sess, r.edge, s.src.Addr())
	}
	return r, nil
}

// Strategy reports the attacker strategy this receiver runs (empty for
// well-behaved receivers and plain AddAttacker attackers; a degraded
// strategy reports what actually runs, i.e. classic).
func (r *Receiver) Strategy() AttackerStrategy { return r.strategy }

// Inflated reports whether this receiver's inflation attack is currently
// active (always false for well-behaved receivers). Adaptive attackers
// toggle this as their compiled disturbance windows open and close.
func (r *Receiver) Inflated() bool {
	if i, ok := r.agent.(interface{ Inflated() bool }); ok {
		return i.Inflated()
	}
	return false
}

// Forge exposes the forging engine of a StrategyForging attacker (nil
// otherwise) for its spoofed-message counters.
func (r *Receiver) Forge() *sigma.ForgeAttack { return r.forge }

// Collusion returns the session's shared attacker key pool, non-nil once
// any StrategyColluding attacker has been added.
func (s *ExperimentSession) Collusion() *sigma.Collusion { return s.collusion }

// victimAddrs lists the honest receivers a forging attacker can evict:
// same session, attached through the same edge gatekeeper (the controller
// only accepts control traffic whose claimed source is local to it), in
// attach order for determinism.
func (s *ExperimentSession) victimAddrs(atk *Receiver) []Addr {
	var out []Addr
	for _, r := range s.Receivers {
		if r == atk || r.Attacker() || r.host == nil || r.edge != atk.edge {
			continue
		}
		out = append(out, r.host.Addr())
	}
	return out
}

// downgradeSharding forces serial execution for wiring whose runtime
// behavior crosses shard boundaries, recording reason for Result.Sharding.
// Mirrors the AddEvents downgrade: a no-op when sharding is off, a panic
// once receivers have migrated (their schedulers are already pinned).
func (e *Experiment) downgradeSharding(op, reason string) {
	if e.shardGroup == nil {
		return
	}
	if e.shardMigrated > 0 {
		panic("deltasigma: " + op + " on a sharded experiment with migrated receivers; wire strategies before receivers or drop WithShards")
	}
	e.shardGroup = nil
	e.shardFallback = reason
}
