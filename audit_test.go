package deltasigma_test

import (
	"testing"

	"deltasigma"
	"deltasigma/internal/packet"
)

// A protected experiment under full audit — periodic sampling, suppression
// oracle, final drain checks — must be violation-free: this is the paper's
// core scenario run against every conservation law at once.
func TestAuditCleanProtectedAttackRun(t *testing.T) {
	exp := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithSeed(7),
		deltasigma.WithAudit(
			deltasigma.AuditEvery(200*deltasigma.Millisecond),
			deltasigma.AuditSuppression(deltasigma.SuppressionOracle{
				From:      8 * deltasigma.Second,
				FloorKbps: 20,
			}),
		),
		deltasigma.WithTimeline(deltasigma.AttackerOnset{At: 2 * deltasigma.Second, Session: 1}),
	)
	sess := exp.AddSession(2)
	sess.AddAttacker()
	exp.Advance(14 * deltasigma.Second)

	if vs := exp.DrainAndAudit(10 * deltasigma.Second); len(vs) > 0 {
		t.Fatalf("clean protected run reported %d violations:\n%v", len(vs), exp.Audit().Err())
	}
}

// The acceptance-criterion regression at experiment level: an intentionally
// injected accounting bug — a delivery observer that takes a reference and
// never releases it, the skip-a-Release class of lifecycle bug — must be
// caught by the audit layer's pool-balance law.
func TestAuditCatchesInjectedReferenceLeak(t *testing.T) {
	exp := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-dl"),
		deltasigma.WithSeed(5),
		deltasigma.WithAudit(),
	)
	exp.AddSession(1)
	leaked := 0
	exp.Topo.Bottlenecks()[0].OnDeliver = func(pkt *packet.Packet) {
		if leaked < 3 { // the injected bug: three references never come back
			pkt.Retain()
			leaked++
		}
	}
	exp.Advance(3 * deltasigma.Second)
	vs := exp.DrainAndAudit(8 * deltasigma.Second)
	if len(vs) == 0 {
		t.Fatal("injected reference leak went undetected")
	}
	found := false
	for _, v := range vs {
		if v.Rule == "pool-balance" && v.Got == float64(leaked) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a pool-balance violation for %d leaked refs, got:\n%v", leaked, exp.Audit().Err())
	}
}

// The suppression oracle is a real oracle: pointed at the unprotected
// baseline — where the inflated-subscription attack succeeds — it must
// flag the attacker.
func TestOracleFlagsUnprotectedAttack(t *testing.T) {
	exp := deltasigma.MustNew(
		deltasigma.WithProtocol("flid-dl"),
		deltasigma.WithSeed(9),
		deltasigma.WithAudit(deltasigma.AuditSuppression(deltasigma.SuppressionOracle{
			From: 7 * deltasigma.Second,
		})),
		deltasigma.WithTimeline(deltasigma.AttackerOnset{At: 2 * deltasigma.Second, Session: 1}),
	)
	sess := exp.AddSession(1)
	sess.AddAttacker()
	exp.Advance(12 * deltasigma.Second)
	exp.StopTraffic()
	exp.Advance(exp.Now() + 8*deltasigma.Second)

	violated := false
	for _, v := range exp.Audit().Finish() {
		if v.Rule == "suppression-oracle" {
			violated = true
		}
	}
	if !violated {
		t.Fatal("oracle did not flag the successful FLID-DL attack")
	}
}

// Without WithAudit the audit handle is nil but the structural drain check
// still works — the shared facade test helper relies on this.
func TestCheckDrainedWithoutAudit(t *testing.T) {
	exp := deltasigma.MustNew(deltasigma.WithProtocol("flid-ds"), deltasigma.WithSeed(3))
	if exp.Audit() != nil {
		t.Fatal("audit attached without WithAudit")
	}
	exp.AddSession(2)
	exp.Advance(3 * deltasigma.Second)
	if vs := exp.DrainAndAudit(8 * deltasigma.Second); len(vs) > 0 {
		t.Fatalf("structural drain check failed on a clean run: %v", vs)
	}
}
