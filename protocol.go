package deltasigma

import (
	"sort"

	"deltasigma/internal/core"
	"deltasigma/internal/flid"
	"deltasigma/internal/replicated"
	"deltasigma/internal/stats"
	"deltasigma/internal/threshold"
)

// SenderAgent is a running protocol source: Start begins its slot loop at
// the session epoch, Stop halts it after the current slot.
type SenderAgent interface {
	Start()
	Stop()
}

// ReceiverAgent is a running protocol receiver.
type ReceiverAgent interface {
	Start()
	Stop()
	// Level reports the current subscription level (for replicated
	// sessions, the current group).
	Level() int
	// Meter returns the receiver's delivered-bytes meter.
	Meter() *Meter
}

// Inflater is implemented by attacker agents: Inflate launches the
// inflated-subscription attack.
type Inflater interface {
	Inflate()
}

// Deflater is implemented by attacker agents that can call the attack off
// mid-run (the AttackerStop timeline event): Deflate withdraws the
// inflation and reverts to well-behaved congestion control. All built-in
// attackers implement it.
type Deflater interface {
	Deflate()
}

// Unwrapper exposes the concrete protocol agent behind a facade wrapper
// (e.g. *flid.DSAttacker) for callers that need protocol-specific
// statistics.
type Unwrapper interface {
	Unwrap() any
}

// Protocol builds the agents of one congestion control variant. The four
// paper variants — "flid-dl", "flid-ds", "flid-ds-replicated",
// "flid-ds-threshold" — and the competitor suite — "mfcc", "dsc",
// "abr-cf" (see rivals.go) — are registered at init; RegisterProtocol adds
// custom ones. Protocols may additionally implement the optional
// EdgeAssisted, FeedbackDriven, CohortCapable and AttackerCapable
// interfaces to hook router participation, feedback consolidation, cohort
// aggregation and attacker availability.
type Protocol interface {
	// Name is the registry key.
	Name() string
	// Protected reports whether the variant needs SIGMA gatekeepers at
	// the edges (false selects plain IGMP, the vulnerable baseline).
	Protected() bool
	// DefaultSlot is the paper's slot duration for the variant.
	DefaultSlot() Time
	// NewSender builds the session source on host.
	NewSender(host *Host, sess *Session, rng *RNG) SenderAgent
	// NewReceiver builds a well-behaved receiver on host against the
	// gatekeeper at edge.
	NewReceiver(host *Host, sess *Session, edge Addr) ReceiverAgent
	// NewAttacker builds an inflated-subscription attacker, or errors if
	// the variant has none. The returned agent implements Inflater.
	NewAttacker(host *Host, sess *Session, edge Addr, rng *RNG) (ReceiverAgent, error)
}

// announceRepeat is z, SIGMA's announcement FEC expansion factor (§5.4).
const announceRepeat = 2

// upgradePolicy is the standard increase-signal policy every built-in
// sender runs: periods stretching with the level, factor 2.
func upgradePolicy(sess *Session) core.UpgradePolicy {
	return core.PeriodicUpgrades{Factor: 2, N: sess.Rates.N}
}

// ---------------------------------------------------------------------------
// Registry.

var registry = map[string]Protocol{}

// RegisterProtocol adds p under p.Name(), replacing any previous entry.
func RegisterProtocol(p Protocol) { registry[p.Name()] = p }

// LookupProtocol resolves a registered protocol by name.
func LookupProtocol(name string) (Protocol, bool) {
	p, ok := registry[name]
	return p, ok
}

// Protocols lists the registered protocol names, sorted.
func Protocols() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterProtocol(FLIDProtocol{})
	RegisterProtocol(FLIDProtocol{DS: true})
	RegisterProtocol(ReplicatedProtocol{})
	RegisterProtocol(ThresholdProtocol{})
}

// ---------------------------------------------------------------------------
// FLID-DL / FLID-DS.

// FLIDProtocol is FLID-DL (DS false: plain IGMP, the vulnerable baseline)
// or FLID-DS (DS true: FLID-DL hardened with DELTA layered keying and
// SIGMA edge enforcement).
type FLIDProtocol struct {
	// DS selects the protected variant.
	DS bool
}

func (p FLIDProtocol) mode() flid.Mode {
	if p.DS {
		return flid.DS
	}
	return flid.DL
}

// Name implements Protocol.
func (p FLIDProtocol) Name() string {
	if p.DS {
		return "flid-ds"
	}
	return "flid-dl"
}

// Protected implements Protocol.
func (p FLIDProtocol) Protected() bool { return p.DS }

// DefaultSlot implements Protocol: 500 ms FLID-DL slots, 250 ms FLID-DS
// slots (§5.1; SIGMA's two-slot enforcement keeps the 500 ms control
// granularity).
func (p FLIDProtocol) DefaultSlot() Time {
	if p.DS {
		return 250 * Millisecond
	}
	return 500 * Millisecond
}

// NewSender implements Protocol.
func (p FLIDProtocol) NewSender(host *Host, sess *Session, rng *RNG) SenderAgent {
	return flid.NewSender(host, sess, p.mode(), upgradePolicy(sess), rng, nil, announceRepeat)
}

// NewReceiver implements Protocol.
func (p FLIDProtocol) NewReceiver(host *Host, sess *Session, edge Addr) ReceiverAgent {
	if p.DS {
		return dsReceiver{flid.NewDSReceiver(host, sess, edge)}
	}
	return dlReceiver{flid.NewReceiver(host, sess, edge)}
}

// NewAttacker implements Protocol.
func (p FLIDProtocol) NewAttacker(host *Host, sess *Session, edge Addr, rng *RNG) (ReceiverAgent, error) {
	if p.DS {
		return dsAttacker{flid.NewDSAttacker(host, sess, edge, rng)}, nil
	}
	return dlAttacker{flid.NewAttacker(host, sess, edge)}, nil
}

type dlReceiver struct{ *flid.Receiver }

func (r dlReceiver) Meter() *stats.Meter { return r.Receiver.Meter }
func (r dlReceiver) Unwrap() any         { return r.Receiver }

type dsReceiver struct{ *flid.DSReceiver }

func (r dsReceiver) Meter() *stats.Meter { return r.DSReceiver.Meter }
func (r dsReceiver) Unwrap() any         { return r.DSReceiver }

type dlAttacker struct{ *flid.Attacker }

func (a dlAttacker) Meter() *stats.Meter { return a.Attacker.Meter }
func (a dlAttacker) Unwrap() any         { return a.Attacker }

type dsAttacker struct{ *flid.DSAttacker }

func (a dsAttacker) Meter() *stats.Meter { return a.DSAttacker.Meter }
func (a dsAttacker) Unwrap() any         { return a.DSAttacker }

// ---------------------------------------------------------------------------
// Replicated multicast (Figure 5 instantiation).

// ReplicatedProtocol is destination-set-grouping multicast protected by
// the Figure 5 DELTA instantiation: every group carries the same content
// at a different rate and a receiver subscribes to exactly one group,
// switching with keys. Level() reports the current group.
//
// A replicated sender transmits every group at its cumulative rate, so the
// summed stream rates must fit the source's access link; the paper's
// 10-group schedule sums to ≈11.3 Mbps and overflows the default 10 Mbps
// access links — pair this variant with a smaller schedule (e.g.
// WithSchedule(RateSchedule{Base: 100_000, Mult: 1.5, N: 6})).
type ReplicatedProtocol struct{}

// Name implements Protocol.
func (ReplicatedProtocol) Name() string { return "flid-ds-replicated" }

// Protected implements Protocol.
func (ReplicatedProtocol) Protected() bool { return true }

// DefaultSlot implements Protocol.
func (ReplicatedProtocol) DefaultSlot() Time { return 250 * Millisecond }

// NewSender implements Protocol.
func (ReplicatedProtocol) NewSender(host *Host, sess *Session, rng *RNG) SenderAgent {
	return replicated.NewSender(host, sess, upgradePolicy(sess), rng, announceRepeat)
}

// NewReceiver implements Protocol.
func (ReplicatedProtocol) NewReceiver(host *Host, sess *Session, edge Addr) ReceiverAgent {
	return replReceiver{replicated.NewReceiver(host, sess, edge)}
}

// NewAttacker implements Protocol.
func (ReplicatedProtocol) NewAttacker(host *Host, sess *Session, edge Addr, rng *RNG) (ReceiverAgent, error) {
	return replAttacker{replicated.NewAttacker(host, sess, edge, rng)}, nil
}

// SupportsCohorts implements CohortCapable: replicated sessions carry
// ProtoRepl data the layered fluid aggregate never observes.
func (ReplicatedProtocol) SupportsCohorts() bool { return false }

type replReceiver struct{ *replicated.Receiver }

func (r replReceiver) Level() int          { return r.Group() }
func (r replReceiver) Meter() *stats.Meter { return r.Receiver.Meter }
func (r replReceiver) Unwrap() any         { return r.Receiver }

type replAttacker struct{ *replicated.Attacker }

func (a replAttacker) Level() int          { return a.Group() }
func (a replAttacker) Meter() *stats.Meter { return a.Attacker.Meter }
func (a replAttacker) Unwrap() any         { return a.Attacker }

// ---------------------------------------------------------------------------
// Loss-rate-threshold protocol (Shamir instantiation).

// ThresholdProtocol is the RLM/WEBRC-family layered protocol whose
// receivers are congested only when per-level loss exceeds a tolerance,
// protected by the Shamir-sharing DELTA instantiation. A nil Thresholds
// uses WEBRC-style graded tolerances sized to the session's group count.
type ThresholdProtocol struct {
	// Thresholds holds the per-level loss tolerances; nil derives graded
	// defaults from the rate schedule.
	Thresholds []float64
}

func (p ThresholdProtocol) thresholds(sess *Session) []float64 {
	if p.Thresholds != nil {
		return p.Thresholds
	}
	return threshold.GradedThresholds(sess.Rates.N)
}

// Name implements Protocol.
func (ThresholdProtocol) Name() string { return "flid-ds-threshold" }

// Protected implements Protocol.
func (ThresholdProtocol) Protected() bool { return true }

// DefaultSlot implements Protocol.
func (ThresholdProtocol) DefaultSlot() Time { return 250 * Millisecond }

// NewSender implements Protocol.
func (p ThresholdProtocol) NewSender(host *Host, sess *Session, rng *RNG) SenderAgent {
	return threshold.NewSender(host, sess, p.thresholds(sess), upgradePolicy(sess), rng, announceRepeat)
}

// NewReceiver implements Protocol.
func (p ThresholdProtocol) NewReceiver(host *Host, sess *Session, edge Addr) ReceiverAgent {
	return threshReceiver{threshold.NewReceiver(host, sess, p.thresholds(sess), edge)}
}

// NewAttacker implements Protocol.
func (p ThresholdProtocol) NewAttacker(host *Host, sess *Session, edge Addr, rng *RNG) (ReceiverAgent, error) {
	return threshAttacker{threshold.NewAttacker(host, sess, p.thresholds(sess), edge, rng)}, nil
}

type threshReceiver struct{ *threshold.Receiver }

func (r threshReceiver) Meter() *stats.Meter { return r.Receiver.Meter }
func (r threshReceiver) Unwrap() any         { return r.Receiver }

type threshAttacker struct{ *threshold.Attacker }

func (a threshAttacker) Meter() *stats.Meter { return a.Attacker.Meter }
func (a threshAttacker) Unwrap() any         { return a.Attacker }
