package deltasigma

import (
	"sort"

	"deltasigma/internal/stats"
)

// Advantage is the attacker-advantage measurement the hunt optimizer
// maximizes: the best attacker's delivered throughput relative to the
// honest receivers' median share over the suppression oracle's window.
// A Ratio at or below ~1 means the protection held (the attacker got no
// more than an honest receiver's share); the optimizer hunts for
// scenarios pushing it above.
type Advantage struct {
	// Attacker labels the best attacker (e.g. "S1R3(attacker)"); empty
	// when the window or populations were degenerate.
	Attacker string `json:"attacker,omitempty"`
	// AttackerKbps is that attacker's average over the window.
	AttackerKbps float64 `json:"attacker_kbps"`
	// HonestMedianKbps is the honest receivers' median average.
	HonestMedianKbps float64 `json:"honest_median_kbps"`
	// Ratio is AttackerKbps over the floored honest median.
	Ratio float64 `json:"ratio"`
}

// advantageFloorKbps floors the denominator so a fully starved honest
// population (median ~0) yields a large-but-finite ratio instead of
// dividing by zero — total starvation is the strongest possible attack
// and must compare meaningfully across scenarios.
const advantageFloorKbps = 1.0

// AttackerAdvantage measures attacker advantage over [from, stop-of-
// traffic) — or [from, now) while traffic still flows — using the same
// per-session gathering as the suppression oracle. Session selects one
// session (1-based); 0 scans every session and returns the best ratio,
// first attacker winning ties. A zero Advantage (empty Attacker) means no
// session had both populations or the window was empty.
func (e *Experiment) AttackerAdvantage(session int, from Time) Advantage {
	until := e.stoppedAt
	if until == 0 {
		until = e.Now()
	}
	var best Advantage
	if from >= until {
		return best
	}
	for _, s := range e.sessions {
		if session != 0 && s.index != session {
			continue
		}
		honest, attackers := sessionRates(s, from, until)
		if len(attackers) == 0 || len(honest) == 0 {
			continue
		}
		sort.Float64s(honest)
		median := stats.PercentileSorted(honest, 0.5)
		denom := median
		if denom < advantageFloorKbps {
			denom = advantageFloorKbps
		}
		for _, r := range attackers {
			got := r.Meter().AvgKbps(from, until)
			if ratio := got / denom; best.Attacker == "" || ratio > best.Ratio {
				best = Advantage{
					Attacker:         r.Label(),
					AttackerKbps:     got,
					HonestMedianKbps: median,
					Ratio:            ratio,
				}
			}
		}
	}
	return best
}
