package deltasigma

// resultWindow is the moving-average window (in one-second bins) applied
// to result time series, matching the paper's 5-second smoothing.
const resultWindow = 5

// ReceiverResult is one receiver's view of a run.
type ReceiverResult struct {
	// Session and Index locate the receiver (both 1-based).
	Session int `json:"session"`
	Index   int `json:"index"`
	// Label is S<session>R<index>, suffixed for attackers.
	Label string `json:"label"`
	// Attacker marks receivers added with AddAttacker.
	Attacker bool `json:"attacker,omitempty"`
	// Level is the subscription level (replicated: group) at run end.
	Level int `json:"level"`
	// AvgKbps is the delivered throughput averaged over the whole run.
	AvgKbps float64 `json:"avg_kbps"`
	// Series is the smoothed per-second throughput time series.
	Series []Point `json:"series,omitempty"`
}

// CohortResult is one aggregated receiver population's view of a run.
type CohortResult struct {
	// Session and Index locate the cohort (both 1-based).
	Session int `json:"session"`
	Index   int `json:"index"`
	// Label is S<session>C<index>.
	Label string `json:"label"`
	// Members is the configured population size; Online how many were
	// joined at run end.
	Members uint64 `json:"members"`
	Online  uint64 `json:"online"`
	// Level is the highest occupied subscription level at run end.
	Level int `json:"level"`
	// MeanLevel is the population-average subscription level at run end,
	// offline members counting as level 0.
	MeanLevel float64 `json:"mean_level"`
	// Levels is the member count per level; index 0 holds offline members.
	Levels []uint64 `json:"levels"`
	// AvgKbps is the aggregate delivered throughput (summed across
	// members) averaged over the whole run; PerMemberKbps divides it by
	// the population.
	AvgKbps       float64 `json:"avg_kbps"`
	PerMemberKbps float64 `json:"per_member_kbps"`
	// Series is the smoothed aggregate throughput time series.
	Series []Point `json:"series,omitempty"`
}

// CrossResult is one cross-traffic flow's view of a run.
type CrossResult struct {
	// Label is tcp<n> or cbr<n>.
	Label string `json:"label"`
	// AvgKbps is the delivered throughput averaged over the whole run.
	AvgKbps float64 `json:"avg_kbps"`
	// Series is the smoothed per-second throughput time series.
	Series []Point `json:"series,omitempty"`
}

// LinkResult is one bottleneck link's view of a run.
type LinkResult struct {
	// Label names the link (upstream->downstream).
	Label string `json:"label"`
	// CapacityBps is the link rate in bits/s.
	CapacityBps int64 `json:"capacity_bps"`
	// Utilization is delivered bits over capacity·duration, in [0,1].
	Utilization float64 `json:"utilization"`
	// SentBytes counts bytes that completed serialization.
	SentBytes uint64 `json:"sent_bytes"`
	// Delivered counts packets handed to the downstream node.
	Delivered uint64 `json:"delivered"`
	// Dropped counts drop-tail losses at the link queue.
	Dropped uint64 `json:"dropped"`
	// DroppedDown counts packets destroyed by link outages (arrivals
	// while down plus packets flushed by the down transition).
	DroppedDown uint64 `json:"dropped_down,omitempty"`
	// Marked counts ECN CE marks at the link queue.
	Marked uint64 `json:"marked"`
}

// Result is the typed outcome of Run: everything measured from virtual
// time zero to Until.
type Result struct {
	// Protocol is the variant's registry name.
	Protocol string `json:"protocol"`
	// Until is the virtual end time of the run.
	Until Time `json:"until"`
	// Seconds is Until in seconds, for human-facing output.
	Seconds float64 `json:"seconds"`
	// Receivers holds one entry per multicast receiver, session by
	// session in attachment order, attackers included.
	Receivers []ReceiverResult `json:"receivers"`
	// Cohorts holds one entry per aggregated receiver population, session
	// by session in attachment order.
	Cohorts []CohortResult `json:"cohorts,omitempty"`
	// Cross holds one entry per TCP flow, then per CBR source.
	Cross []CrossResult `json:"cross,omitempty"`
	// Bottlenecks holds one entry per congested link.
	Bottlenecks []LinkResult `json:"bottlenecks"`
	// LostPackets totals packets lost at the bottlenecks: drop-tail drops
	// plus outage (down-link) discards.
	LostPackets uint64 `json:"lost_packets"`
	// Sharding describes sharded execution when WithShards was requested
	// (nil otherwise): shard count, per-shard event counts, barrier waits
	// and mailbox high-water marks, or the reason the run fell back to
	// serial. Wall-clock fields vary run to run; every other Result field
	// is byte-identical whatever the shard count.
	Sharding *ShardingResult `json:"sharding,omitempty"`
}

// Receiver returns the result entry for session s, receiver i (both
// 1-based), or nil.
func (r *Result) Receiver(s, i int) *ReceiverResult {
	for k := range r.Receivers {
		if r.Receivers[k].Session == s && r.Receivers[k].Index == i {
			return &r.Receivers[k]
		}
	}
	return nil
}

// Cohort returns the result entry for session s, cohort i (both 1-based),
// or nil.
func (r *Result) Cohort(s, i int) *CohortResult {
	for k := range r.Cohorts {
		if r.Cohorts[k].Session == s && r.Cohorts[k].Index == i {
			return &r.Cohorts[k]
		}
	}
	return nil
}

// Utilization returns the mean utilization across the bottlenecks.
func (r *Result) Utilization() float64 {
	if len(r.Bottlenecks) == 0 {
		return 0
	}
	var sum float64
	for _, l := range r.Bottlenecks {
		sum += l.Utilization
	}
	return sum / float64(len(r.Bottlenecks))
}

// result snapshots the experiment state into a Result.
func (e *Experiment) result(until Time) *Result {
	res := &Result{
		Protocol: e.Protocol.Name(),
		Until:    until,
		Seconds:  until.Sec(),
	}
	for _, s := range e.sessions {
		for _, r := range s.Receivers {
			res.Receivers = append(res.Receivers, ReceiverResult{
				Session:  r.session,
				Index:    r.index,
				Label:    r.Label(),
				Attacker: r.Attacker(),
				Level:    r.Level(),
				AvgKbps:  r.Meter().AvgKbps(0, until),
				Series:   r.Meter().Series(resultWindow),
			})
		}
	}
	for _, s := range e.sessions {
		for _, c := range s.Cohorts {
			avg := c.Meter().AvgKbps(0, until)
			res.Cohorts = append(res.Cohorts, CohortResult{
				Session:       c.session,
				Index:         c.index,
				Label:         c.Label(),
				Members:       c.Members(),
				Online:        c.Online(),
				Level:         c.Level(),
				MeanLevel:     c.MeanLevel(),
				Levels:        c.Levels(),
				AvgKbps:       avg,
				PerMemberKbps: avg / float64(c.Members()),
				Series:        c.Meter().Series(resultWindow),
			})
		}
	}
	for _, f := range e.tcps {
		res.Cross = append(res.Cross, CrossResult{
			Label:   f.Label(),
			AvgKbps: f.Meter().AvgKbps(0, until),
			Series:  f.Meter().Series(resultWindow),
		})
	}
	for _, c := range e.cbrs {
		res.Cross = append(res.Cross, CrossResult{
			Label:   c.Label(),
			AvgKbps: c.Meter().AvgKbps(0, until),
			Series:  c.Meter().Series(resultWindow),
		})
	}
	for _, l := range e.Topo.Bottlenecks() {
		lr := LinkResult{
			Label:       l.String(),
			CapacityBps: l.Rate,
			SentBytes:   l.SentBytes,
			Delivered:   l.Delivered,
			Dropped:     l.Queue.Dropped,
			DroppedDown: l.DroppedDown,
			Marked:      l.Queue.Marked,
		}
		// The capacity integral (rate over up-time) keeps utilization
		// truthful when the link was re-rated, downed or flapped mid-run.
		if capBits := l.CapacityBits(); capBits > 0 {
			lr.Utilization = float64(lr.SentBytes) * 8 / capBits
		}
		res.Bottlenecks = append(res.Bottlenecks, lr)
		res.LostPackets += lr.Dropped + lr.DroppedDown
	}
	res.Sharding = e.shardingResult()
	return res
}
