package deltasigma_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltasigma"
	"deltasigma/internal/scenario"
)

// shootoutSweep is the canned competitor campaign pinned by
// testdata/shootout_golden.json: every registered protocol — the paper
// variants and the competitor suite alike — against three attacker models,
// at the scaled-down grid the CI determinism job replays.
func shootoutSweep() deltasigma.Sweep {
	c, ok := scenario.LookupCampaign("shootout")
	if !ok {
		panic("shootout campaign not registered")
	}
	return c.Build(scenario.Options{Scale: 0.2, Seed: 2003})
}

// TestShootoutGolden locks the head-to-head robustness shoot-out: the full
// protocol registry under classic, adaptive and forging attackers must
// produce byte-identical campaign JSON across worker counts, pinned
// against testdata/shootout_golden.json. Attackerless protocols (abr-cf)
// fail their attacker points with the typed no-attacker reason — the
// interesting structural result — and every other point must succeed.
func TestShootoutGolden(t *testing.T) {
	sw := shootoutSweep()
	res1, err := sw.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	js1, err := res1.JSON()
	if err != nil {
		t.Fatal(err)
	}

	resN, err := sw.Run(*sweepWorkers)
	if err != nil {
		t.Fatal(err)
	}
	jsN, err := resN.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, jsN) {
		t.Fatalf("shootout JSON differs between -workers=1 and -workers=%d", *sweepWorkers)
	}

	// Structure check: only attackerless protocols may fail, and each of
	// their points must carry the typed no-attacker reason; every protocol
	// with an attacker must post a suppression reading.
	suppressed := map[string]bool{}
	for _, p := range res1.Points {
		hasAtk := deltasigma.ProtocolHasAttacker(p.Point.Protocol)
		switch {
		case !hasAtk && p.Error == "":
			t.Errorf("point %s: attackerless protocol ran an attacker point without error", p.Point)
		case !hasAtk && !strings.Contains(p.Error, "no inflated-subscription attacker"):
			t.Errorf("point %s: error %q is not the typed no-attacker reason", p.Point, p.Error)
		case hasAtk && p.Error != "":
			t.Errorf("point %s failed: %s", p.Point, p.Error)
		case hasAtk && p.Suppression > 0:
			suppressed[p.Point.Protocol] = true
		}
	}
	for _, name := range deltasigma.Protocols() {
		if deltasigma.ProtocolHasAttacker(name) && !suppressed[name] {
			t.Errorf("protocol %s posted no suppression reading — shoot-out is vacuous for it", name)
		}
	}

	path := filepath.Join("testdata", "shootout_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, js1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(js1, want) {
		t.Errorf("shootout JSON diverged from golden file %s:\ngot:\n%s\nwant:\n%s", path, js1, want)
	}
}
