package deltasigma_test

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"deltasigma"
)

// testSweep is a small but multi-axis grid kept short enough for unit
// tests: 2 protocols × 2 receiver counts × 2 attacker counts = 8 points.
func testSweep() deltasigma.Sweep {
	return deltasigma.Sweep{
		Name:      "unit",
		Protocols: []string{"flid-dl", "flid-ds"},
		Receivers: []int{1, 2},
		Attackers: []int{0, 1},
		Duration:  4 * deltasigma.Second,
		Seeds:     []uint64{7},
	}
}

func TestSweepGridOrderAndDefaults(t *testing.T) {
	sw := testSweep()
	if got := sw.Size(); got != 8 {
		t.Fatalf("Size = %d, want 8", got)
	}
	pts, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	// First axis (protocol) varies slowest: the first half is all flid-dl.
	for i, p := range pts {
		wantProto := "flid-dl"
		if i >= 4 {
			wantProto = "flid-ds"
		}
		if p.Protocol != wantProto {
			t.Fatalf("point %d protocol = %q, want %q", i, p.Protocol, wantProto)
		}
		if p.Topology != "dumbbell" {
			t.Fatalf("point %d topology = %q, want default dumbbell", i, p.Topology)
		}
		if p.BottleneckBps != 1_000_000 {
			t.Fatalf("point %d bottleneck = %d, want default 1M", i, p.BottleneckBps)
		}
		if p.Seed != 7 {
			t.Fatalf("point %d seed = %d, want 7", i, p.Seed)
		}
	}
}

// The campaign contract: the same sweep run serially and in parallel must
// serialize to byte-identical JSON and CSV.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	sw := testSweep()
	serial, err := sw.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sw.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	js1, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	js8, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js8) {
		t.Fatalf("JSON differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", js1, js8)
	}
	var csv1, csv8 bytes.Buffer
	if err := serial.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteCSV(&csv8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv8.Bytes()) {
		t.Fatal("CSV differs between workers=1 and workers=8")
	}
	if serial.Failures != 0 {
		t.Fatalf("unexpected failures: %d", serial.Failures)
	}
	// The run must have produced real data, not deterministic zeros.
	for i, p := range serial.Points {
		if p.GoodMeanKbps <= 0 {
			t.Fatalf("point %d (%v) has no good throughput", i, p.Point)
		}
		if p.Utilization <= 0 {
			t.Fatalf("point %d (%v) has no utilization", i, p.Point)
		}
	}
}

// A failing grid point (unknown protocol) reports through its
// PointResult.Error; the pool neither deadlocks nor poisons the healthy
// points.
func TestSweepFailingPointDoesNotPoisonCampaign(t *testing.T) {
	sw := deltasigma.Sweep{
		Protocols: []string{"flid-ds", "no-such-protocol"},
		Duration:  2 * deltasigma.Second,
	}
	res, err := sw.Run(runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	healthy, failed := res.Points[0], res.Points[1]
	if healthy.Error != "" || healthy.GoodMeanKbps <= 0 {
		t.Fatalf("healthy point corrupted: %+v", healthy)
	}
	if failed.Error == "" || !strings.Contains(failed.Error, "no-such-protocol") {
		t.Fatalf("failed point error = %q, want mention of the unknown protocol", failed.Error)
	}
	if failed.Point.Protocol != "no-such-protocol" {
		t.Fatalf("failed point lost its identity: %+v", failed.Point)
	}
	// The failure must also survive serialization.
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "no-such-protocol") {
		t.Fatal("CSV lost the failed point")
	}
}

// A panic inside a point's Configure hook is contained to that point.
func TestSweepPanickingPointIsContained(t *testing.T) {
	sw := deltasigma.Sweep{
		Receivers: []int{1, 2},
		Duration:  2 * deltasigma.Second,
		Configure: func(p deltasigma.SweepPoint, e *deltasigma.Experiment) error {
			if p.Receivers == 2 {
				panic("configure exploded")
			}
			return nil
		},
	}
	res, err := sw.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	if res.Points[0].Error != "" || res.Points[0].GoodMeanKbps <= 0 {
		t.Fatalf("healthy point corrupted: %+v", res.Points[0])
	}
	if !strings.Contains(res.Points[1].Error, "configure exploded") {
		t.Fatalf("error = %q, want the panic message", res.Points[1].Error)
	}
	if res.Points[1].Point.Receivers != 2 {
		t.Fatalf("panicked point lost its identity: %+v", res.Points[1].Point)
	}
}

// Attackers actually run: under unprotected FLID-DL an inflating attacker
// out-earns the well-behaved mean (suppression < 0.5); under FLID-DS the
// attack is suppressed (suppression >= 0.5).
func TestSweepAttackerSuppressionMetric(t *testing.T) {
	sw := deltasigma.Sweep{
		Protocols: []string{"flid-dl", "flid-ds"},
		Receivers: []int{1},
		Attackers: []int{1},
		Duration:  30 * deltasigma.Second,
		AttackAt:  5 * deltasigma.Second,
		Seeds:     []uint64{3},
	}
	res, err := sw.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("failures: %+v", res.Points)
	}
	dl, ds := res.Points[0], res.Points[1]
	if dl.AttackerMeanKbps <= dl.GoodMeanKbps {
		t.Fatalf("FLID-DL attacker (%0.f Kbps) should out-earn the victim (%.0f Kbps)",
			dl.AttackerMeanKbps, dl.GoodMeanKbps)
	}
	if dl.Suppression >= 0.4 {
		t.Fatalf("FLID-DL suppression = %.3f, want well under 0.5 (attack succeeds)", dl.Suppression)
	}
	// Under FLID-DS the attacker is held to roughly the well-behaved mean:
	// suppression sits near the fair 0.5, far above the defeated baseline.
	if ds.Suppression < 0.45 {
		t.Fatalf("FLID-DS suppression = %.3f, want ~0.5 (attack defeated)", ds.Suppression)
	}
	if ds.Suppression <= dl.Suppression {
		t.Fatalf("FLID-DS suppression %.3f should exceed FLID-DL %.3f", ds.Suppression, dl.Suppression)
	}
}

// Custom topologies, slots and delay spreads flow through to the points.
func TestSweepCustomAxes(t *testing.T) {
	sw := deltasigma.Sweep{
		Topologies:   []deltasigma.TopologySpec{deltasigma.ChainSpec(2), deltasigma.StarSpec(2)},
		Receivers:    []int{2},
		Slots:        []deltasigma.Time{250 * deltasigma.Millisecond},
		DelaySpreads: []deltasigma.Time{0, 100 * deltasigma.Millisecond},
		Bottlenecks:  []int64{500_000},
		Duration:     3 * deltasigma.Second,
	}
	res, err := sw.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	names := []string{"chain2", "chain2", "star2", "star2"}
	for i, p := range res.Points {
		if p.Error != "" {
			t.Fatalf("point %d failed: %s", i, p.Error)
		}
		if p.Point.Topology != names[i] {
			t.Fatalf("point %d topology = %q, want %q", i, p.Point.Topology, names[i])
		}
		if p.Point.SlotNs != 250*deltasigma.Millisecond {
			t.Fatalf("point %d slot = %v", i, p.Point.SlotNs)
		}
		if p.GoodMeanKbps <= 0 {
			t.Fatalf("point %d produced no throughput", i)
		}
	}
}

// Invalid sweep declarations fail Run upfront rather than per point.
func TestSweepValidation(t *testing.T) {
	bad := []deltasigma.Sweep{
		{Receivers: []int{-1}},
		{Attackers: []int{-2}},
		{Bottlenecks: []int64{0}},
		{Slots: []deltasigma.Time{-deltasigma.Second}},
		{DelaySpreads: []deltasigma.Time{-1}},
		{Duration: 10 * deltasigma.Second, Warmup: 10 * deltasigma.Second},
		{Attackers: []int{1}, Duration: 10 * deltasigma.Second, AttackAt: 10 * deltasigma.Second},
		{Topologies: []deltasigma.TopologySpec{{Name: "hollow"}}},
	}
	// An out-of-range attack time is fine when no point has attackers.
	ok := deltasigma.Sweep{Duration: 2 * deltasigma.Second, AttackAt: 5 * deltasigma.Second}
	if _, err := ok.Run(1); err != nil {
		t.Fatalf("attacker-free sweep rejected: %v", err)
	}
	for i, sw := range bad {
		if _, err := sw.Run(1); err == nil {
			t.Fatalf("sweep %d should have failed validation", i)
		}
	}
}
