package deltasigma

import (
	"sort"

	"deltasigma/internal/dynamics"
)

// adaptiveHold is how long an adaptive attacker stays inflated after an
// instantaneous disturbance trigger: long enough to span the gatekeeper's
// grace slots plus a round of key announcements, so the burst lands while
// honest receivers and the protection are still re-converging.
const adaptiveHold = 3 * Second

// adaptiveFallbackOnset is when an adaptive attacker inflates if the
// experiment scripts no disturbances at all — with nothing to react to it
// degrades to an early classic onset rather than staying idle.
const adaptiveFallbackOnset = 1 * Second

// adaptiveAction is one half of a compiled disturbance window.
type adaptiveAction struct {
	At Time
	On bool
}

// adaptiveActions compiles a declared timeline into the disturbance
// windows an adaptive attacker strikes in. Sustained disturbances map to
// their own span (a churn window), instantaneous ones to a trigger plus
// adaptiveHold. A link flap triggers on each up instant — the exploitable
// moment is the recovery, when every honest receiver re-subscribes from
// scratch — which is also why LinkDown alone is not a trigger: inflating
// into a dead link wastes the burst. Attacker lifecycle events are not
// disturbances. Events are matched by their concrete (value) types, the
// form every facade constructor and the fuzzer produce.
func adaptiveActions(events []TimelineEvent) []adaptiveAction {
	var acts []adaptiveAction
	window := func(from, to Time) {
		if from < 0 {
			from = 0
		}
		if to <= from {
			return
		}
		acts = append(acts, adaptiveAction{At: from, On: true}, adaptiveAction{At: to, On: false})
	}
	trigger := func(at Time) { window(at, at+adaptiveHold) }
	for _, ev := range events {
		switch ev := ev.(type) {
		case PoissonChurn:
			window(ev.From, ev.To)
		case LinkFlap:
			downFor := ev.DownFor
			if downFor == 0 {
				downFor = ev.Period / 10
			}
			_, ups := dynamics.FlapInstants(ev.Period, downFor, ev.From, ev.To)
			for _, up := range ups {
				trigger(up)
			}
		case LinkUp:
			trigger(ev.At)
		case LinkSetCapacity:
			trigger(ev.At)
		case LinkSetDelay:
			trigger(ev.At)
		case ReceiverJoin:
			trigger(ev.At)
		case ReceiverLeave:
			trigger(ev.At)
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	return acts
}

// AdaptiveOnset reports when a StrategyAdaptive attacker first inflates
// against the given timeline — the earliest disturbance-window opening,
// or the idle fallback onset when nothing is scripted. The fuzzer uses it
// to place measurement windows past every onset, adaptive ones included.
func AdaptiveOnset(events []TimelineEvent) Time {
	for _, a := range adaptiveActions(events) {
		if a.On {
			return a.At
		}
	}
	return adaptiveFallbackOnset
}

// scheduleAdaptive installs one adaptive attacker's compiled schedule on
// the experiment timeline: inflate when the first overlapping disturbance
// window opens, deflate when the last closes, counting depth so nested
// and chained windows produce one sustained burst instead of flapping the
// attack itself.
func (e *Experiment) scheduleAdaptive(r *Receiver) {
	depth := 0
	installed := false
	for _, a := range adaptiveActions(e.events) {
		if a.On {
			depth++
			if depth == 1 {
				e.timeline.Add(a.At, r.Inflate)
				installed = true
			}
		} else if depth--; depth == 0 {
			e.timeline.Add(a.At, r.Deflate)
		}
	}
	if !installed {
		e.timeline.Add(adaptiveFallbackOnset, r.Inflate)
	}
}
