package deltasigma

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"time"

	"deltasigma/internal/campaign"
	"deltasigma/internal/packet"
	"deltasigma/internal/stats"
	"deltasigma/internal/topo"
)

// TopologySpec names a topology family for sweep grids: Build constructs
// one instance sized to a grid point's bottleneck capacity and seed.
type TopologySpec struct {
	// Name labels the family in points and output ("dumbbell", "chain3"…).
	Name string
	// Build constructs the topology for one grid point.
	Build func(bottleneck int64, seed uint64) Topology
}

// DumbbellSpec is the paper's single-bottleneck dumbbell sized to the grid
// point's capacity.
func DumbbellSpec() TopologySpec {
	return TopologySpec{
		Name: "dumbbell",
		Build: func(bottleneck int64, seed uint64) Topology {
			return topo.New(topo.PaperConfig(bottleneck, seed))
		},
	}
}

// ChainSpec is a parking-lot chain of `hops` bottlenecks, each at the grid
// point's capacity.
func ChainSpec(hops int) TopologySpec {
	if hops < 1 {
		hops = 1
	}
	return TopologySpec{
		Name: fmt.Sprintf("chain%d", hops),
		Build: func(bottleneck int64, seed uint64) Topology {
			caps := make([]int64, hops)
			for i := range caps {
				caps[i] = bottleneck
			}
			return topo.NewChain(topo.ChainConfig{Bottlenecks: caps, Seed: seed})
		},
	}
}

// StarSpec is a hub-and-spoke star with `spokes` gatekept spokes, each at
// the grid point's capacity; receivers round-robin across the spokes.
func StarSpec(spokes int) TopologySpec {
	if spokes < 1 {
		spokes = 1
	}
	return TopologySpec{
		Name: fmt.Sprintf("star%d", spokes),
		Build: func(bottleneck int64, seed uint64) Topology {
			caps := make([]int64, spokes)
			for i := range caps {
				caps[i] = bottleneck
			}
			return topo.NewStar(topo.StarConfig{Spokes: caps, Seed: seed})
		},
	}
}

// SweepPoint identifies one grid point of a Sweep: the value picked from
// every axis.
type SweepPoint struct {
	Protocol  string `json:"protocol"`
	Topology  string `json:"topology"`
	Receivers int    `json:"receivers"`
	Attackers int    `json:"attackers"`
	// Strategy selects the attacker behaviour (AttackerStrategy) for every
	// attacker of the point; empty means the classic plain inflator.
	Strategy string `json:"strategy,omitempty"`
	// Cohort, when positive, adds one aggregated population of that many
	// well-behaved receivers (see ExperimentSession.AddCohort) alongside
	// the exact Receivers and Attackers.
	Cohort        int   `json:"cohort,omitempty"`
	BottleneckBps int64 `json:"bottleneck_bps"`
	// SlotNs is the declared slot duration (0 = the protocol default).
	SlotNs Time `json:"slot_ns,omitempty"`
	// DelaySpreadNs, when positive, assigns receiver i (of N) the absolute
	// access delay spread·(i+1)/N — delays rise linearly to the declared
	// maximum, replacing the topology default (0 = topology default for
	// all receivers).
	DelaySpreadNs Time `json:"delay_spread_ns,omitempty"`
	// ChurnRate, when positive, drives Poisson membership churn at this
	// many toggles/second across the point's well-behaved receivers for
	// the whole run.
	ChurnRate float64 `json:"churn_rate,omitempty"`
	// AttackAtNs, when positive, overrides the sweep-level AttackAt for
	// this point (the attacker-onset-time axis).
	AttackAtNs Time `json:"attack_at_ns,omitempty"`
	// FlapPeriodNs, when positive, flaps the first bottleneck: down every
	// period for a tenth of it.
	FlapPeriodNs Time   `json:"flap_period_ns,omitempty"`
	Seed         uint64 `json:"seed"`
}

// String renders the point compactly for logs and tables.
func (p SweepPoint) String() string {
	s := fmt.Sprintf("%s/%s r=%d a=%d cap=%d seed=%d",
		p.Protocol, p.Topology, p.Receivers, p.Attackers, p.BottleneckBps, p.Seed)
	if p.Strategy != "" {
		s += " strat=" + p.Strategy
	}
	if p.Cohort > 0 {
		s += fmt.Sprintf(" cohort=%d", p.Cohort)
	}
	if p.SlotNs > 0 {
		s += fmt.Sprintf(" slot=%v", p.SlotNs)
	}
	if p.DelaySpreadNs > 0 {
		s += fmt.Sprintf(" spread=%v", p.DelaySpreadNs)
	}
	if p.ChurnRate > 0 {
		s += fmt.Sprintf(" churn=%g/s", p.ChurnRate)
	}
	if p.AttackAtNs > 0 {
		s += fmt.Sprintf(" onset=%v", p.AttackAtNs)
	}
	if p.FlapPeriodNs > 0 {
		s += fmt.Sprintf(" flap=%v", p.FlapPeriodNs)
	}
	return s
}

// Sweep declares a parameter-sweep campaign: the cartesian product of its
// axes, one independent Experiment per grid point. Zero-length axes
// collapse to a single default value, so callers set only the dimensions
// they sweep. Run executes the grid on a bounded worker pool; because
// every point owns its scheduler, RNG and topology, points run in
// parallel without sharing state, and results are merged in grid order so
// the campaign output is byte-identical whatever the worker count.
//
//	res, err := deltasigma.Sweep{
//		Protocols: []string{"flid-dl", "flid-ds"},
//		Receivers: []int{1, 10, 100},
//		Attackers: []int{0, 1},
//		Duration:  30 * deltasigma.Second,
//	}.Run(0) // 0 = one worker per CPU
type Sweep struct {
	// Name labels the campaign in results.
	Name string

	// Axes. The first axis varies slowest in grid order.
	Protocols    []string       // default {"flid-ds"}
	Topologies   []TopologySpec // default {DumbbellSpec()}
	Receivers    []int          // well-behaved receivers per point; default {1}
	Attackers    []int          // attackers per point; default {0}
	Strategies   []string       // attacker strategies; "" = classic; default {""}
	Cohorts      []int          // aggregated population per point; 0 = none; default {0}
	Bottlenecks  []int64        // bottleneck bits/s; default {1_000_000}
	Slots        []Time         // slot durations; 0 = protocol default; default {0}
	DelaySpreads []Time         // max absolute access delay across receivers; default {0}
	ChurnRates   []float64      // Poisson membership toggles/second; 0 = static membership; default {0}
	AttackAts    []Time         // attacker onset times; 0 = the sweep-level AttackAt; default {0}
	FlapPeriods  []Time         // bottleneck flap periods (down a tenth of each); 0 = stable link; default {0}
	Seeds        []uint64       // seed replicas; default {1}

	// Duration is the simulated length of every point (default 30 s).
	Duration Time
	// Warmup is excluded from throughput statistics (default Duration/10).
	Warmup Time
	// AttackAt is when attackers inflate (default Duration/4).
	AttackAt Time
	// Schedule overrides the session rate schedule (zero value = paper's).
	Schedule RateSchedule
	// Shards, when above 1, runs each static grid point under sharded
	// execution (WithShards): results are byte-identical to serial, only
	// wall-clock changes. Points with mid-run dynamics — attackers, churn,
	// link flapping — always run serially (their events ride the timeline).
	// Run divides the worker pool by the shard count so shards × workers
	// stays within the machine. 0 (the default) and 1 run everything serial.
	Shards int
	// Configure, when set, customizes each point's experiment after the
	// session is wired and before it runs — cross traffic, extra sessions,
	// protocol knobs. Returning an error fails the point, not the campaign.
	Configure func(p SweepPoint, e *Experiment) error
}

// PointResult aggregates one grid point's run. Throughput statistics are
// in Kbps over [Warmup, Duration); percentiles are across the point's
// well-behaved receivers.
type PointResult struct {
	Point        SweepPoint `json:"point"`
	GoodMeanKbps float64    `json:"good_mean_kbps"`
	GoodP10Kbps  float64    `json:"good_p10_kbps"`
	GoodP50Kbps  float64    `json:"good_p50_kbps"`
	GoodP90Kbps  float64    `json:"good_p90_kbps"`
	// AttackerMeanKbps is the mean attacker throughput (0 without attackers).
	AttackerMeanKbps float64 `json:"attacker_mean_kbps"`
	// Suppression gauges how well the protocol held attackers to a fair
	// share: goodMean/(goodMean+attackerMean), so 0.5 means attackers got
	// exactly the well-behaved mean, above 0.5 they got less (suppressed,
	// up to 1 for fully starved), below 0.5 the inflation succeeded. Zero
	// when the point has no attackers (check Point.Attackers to tell that
	// apart from a fully successful attack).
	Suppression float64 `json:"suppression"`
	// Utilization is the mean bottleneck utilization in [0,1].
	Utilization float64 `json:"utilization"`
	// LostPackets totals packets lost at the point's bottlenecks:
	// drop-tail drops plus outage (down-link) discards.
	LostPackets uint64 `json:"lost_packets"`
	// Error is set when the point failed to build or run; statistics are
	// zero in that case and the rest of the campaign is unaffected.
	Error string `json:"error,omitempty"`
}

// CampaignResult is the deterministic outcome of Sweep.Run: one
// PointResult per grid point, in grid order.
type CampaignResult struct {
	Name string `json:"name,omitempty"`
	// DurationNs is the simulated length of every point.
	DurationNs Time `json:"duration_ns"`
	// Points holds one entry per grid point in grid order (first axis
	// slowest), independent of worker scheduling.
	Points []PointResult `json:"points"`
	// Failures counts points whose Error is set.
	Failures int `json:"failures"`
	// Elapsed is the wall-clock cost of Run. It is deliberately excluded
	// from serialization so output stays byte-identical across worker
	// counts and machines.
	Elapsed time.Duration `json:"-"`
}

// JSON renders the campaign as indented, deterministic JSON.
func (c *CampaignResult) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// WriteCSV renders the campaign as one CSV row per grid point.
func (c *CampaignResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"protocol", "topology", "receivers", "attackers", "strategy", "cohort", "bottleneck_bps",
		"slot_ms", "delay_spread_ms", "churn_rate", "attack_at_ms", "flap_period_ms", "seed",
		"good_mean_kbps", "good_p10_kbps", "good_p50_kbps", "good_p90_kbps",
		"attacker_mean_kbps", "suppression", "utilization", "lost_packets", "error",
	}); err != nil {
		return err
	}
	for _, pt := range c.Points {
		p := pt.Point
		err := cw.Write([]string{
			p.Protocol, p.Topology,
			strconv.Itoa(p.Receivers), strconv.Itoa(p.Attackers),
			p.Strategy,
			strconv.Itoa(p.Cohort),
			strconv.FormatInt(p.BottleneckBps, 10),
			strconv.FormatFloat(float64(p.SlotNs)/float64(Millisecond), 'g', -1, 64),
			strconv.FormatFloat(float64(p.DelaySpreadNs)/float64(Millisecond), 'g', -1, 64),
			strconv.FormatFloat(p.ChurnRate, 'g', -1, 64),
			strconv.FormatFloat(float64(p.AttackAtNs)/float64(Millisecond), 'g', -1, 64),
			strconv.FormatFloat(float64(p.FlapPeriodNs)/float64(Millisecond), 'g', -1, 64),
			strconv.FormatUint(p.Seed, 10),
			fmt.Sprintf("%.3f", pt.GoodMeanKbps),
			fmt.Sprintf("%.3f", pt.GoodP10Kbps),
			fmt.Sprintf("%.3f", pt.GoodP50Kbps),
			fmt.Sprintf("%.3f", pt.GoodP90Kbps),
			fmt.Sprintf("%.3f", pt.AttackerMeanKbps),
			fmt.Sprintf("%.4f", pt.Suppression),
			fmt.Sprintf("%.4f", pt.Utilization),
			strconv.FormatUint(pt.LostPackets, 10),
			pt.Error,
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// axes is a Sweep with every default applied.
type axes struct {
	protocols    []string
	topologies   []TopologySpec
	receivers    []int
	attackers    []int
	strategies   []string
	cohorts      []int
	bottlenecks  []int64
	slots        []Time
	delaySpreads []Time
	churnRates   []float64
	attackAts    []Time
	flapPeriods  []Time
	seeds        []uint64

	duration, warmup, attackAt Time
}

// defaultSweepDuration is the per-point simulated length when Duration is
// unset: long enough past the slow-start transient for stable averages.
const defaultSweepDuration = 30 * Second

func orInts(xs []int, def int) []int {
	if len(xs) == 0 {
		return []int{def}
	}
	return xs
}

// normalize applies axis defaults and validates the declared values.
func (sw Sweep) normalize() (axes, error) {
	a := axes{
		protocols:    sw.Protocols,
		topologies:   sw.Topologies,
		receivers:    orInts(sw.Receivers, 1),
		attackers:    orInts(sw.Attackers, 0),
		strategies:   sw.Strategies,
		cohorts:      orInts(sw.Cohorts, 0),
		bottlenecks:  sw.Bottlenecks,
		slots:        sw.Slots,
		delaySpreads: sw.DelaySpreads,
		churnRates:   sw.ChurnRates,
		attackAts:    sw.AttackAts,
		flapPeriods:  sw.FlapPeriods,
		seeds:        sw.Seeds,
		duration:     sw.Duration,
		warmup:       sw.Warmup,
		attackAt:     sw.AttackAt,
	}
	if len(a.protocols) == 0 {
		a.protocols = []string{"flid-ds"}
	}
	if len(a.topologies) == 0 {
		a.topologies = []TopologySpec{DumbbellSpec()}
	}
	if len(a.bottlenecks) == 0 {
		a.bottlenecks = []int64{1_000_000}
	}
	if len(a.slots) == 0 {
		a.slots = []Time{0}
	}
	if len(a.delaySpreads) == 0 {
		a.delaySpreads = []Time{0}
	}
	if len(a.churnRates) == 0 {
		a.churnRates = []float64{0}
	}
	if len(a.attackAts) == 0 {
		a.attackAts = []Time{0}
	}
	if len(a.flapPeriods) == 0 {
		a.flapPeriods = []Time{0}
	}
	if len(a.strategies) == 0 {
		a.strategies = []string{""}
	}
	if len(a.seeds) == 0 {
		a.seeds = []uint64{1}
	}
	if a.duration <= 0 {
		a.duration = defaultSweepDuration
	}
	if a.warmup <= 0 {
		a.warmup = a.duration / 10
	}
	if a.warmup >= a.duration {
		return axes{}, fmt.Errorf("deltasigma: sweep warmup %v must be shorter than duration %v", a.warmup, a.duration)
	}
	if a.attackAt <= 0 {
		a.attackAt = a.duration / 4
	}
	for _, n := range a.attackers {
		// An attack scheduled past the end would silently never happen and
		// the point would report a "defeated" attack that never ran.
		if n > 0 && a.attackAt >= a.duration {
			return axes{}, fmt.Errorf("deltasigma: sweep attack time %v must be inside duration %v", a.attackAt, a.duration)
		}
		for _, at := range a.attackAts {
			if n > 0 && at >= a.duration {
				return axes{}, fmt.Errorf("deltasigma: sweep attack onset %v must be inside duration %v", at, a.duration)
			}
		}
	}
	for _, r := range a.churnRates {
		if r < 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep churn rate %g is negative", r)
		}
	}
	for _, at := range a.attackAts {
		if at < 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep attack onset %v is negative", at)
		}
	}
	for _, p := range a.flapPeriods {
		if p < 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep flap period %v is negative", p)
		}
		if p > 0 && p >= a.duration {
			return axes{}, fmt.Errorf("deltasigma: sweep flap period %v must be inside duration %v", p, a.duration)
		}
	}
	for _, t := range a.topologies {
		if t.Build == nil {
			return axes{}, fmt.Errorf("deltasigma: topology spec %q has no Build", t.Name)
		}
	}
	for _, r := range a.receivers {
		if r < 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep receiver count %d is negative", r)
		}
	}
	for _, n := range a.attackers {
		if n < 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep attacker count %d is negative", n)
		}
	}
	for _, n := range a.cohorts {
		if n < 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep cohort population %d is negative", n)
		}
	}
	for _, st := range a.strategies {
		switch AttackerStrategy(st) {
		case "", StrategyClassic, StrategyColluding, StrategyAdaptive, StrategyForging:
		default:
			return axes{}, fmt.Errorf("deltasigma: sweep attacker strategy %q is not one of %v", st, AttackerStrategies())
		}
	}
	for _, c := range a.bottlenecks {
		if c <= 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep bottleneck %d must be positive", c)
		}
	}
	for _, s := range a.slots {
		if s < 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep slot %v is negative", s)
		}
	}
	for _, d := range a.delaySpreads {
		if d < 0 {
			return axes{}, fmt.Errorf("deltasigma: sweep delay spread %v is negative", d)
		}
	}
	return a, nil
}

func (a axes) grid() (campaign.Grid, error) {
	return campaign.NewGrid(
		len(a.protocols), len(a.topologies), len(a.receivers), len(a.attackers),
		len(a.strategies), len(a.cohorts), len(a.bottlenecks), len(a.slots),
		len(a.delaySpreads), len(a.churnRates), len(a.attackAts), len(a.flapPeriods),
		len(a.seeds))
}

// point materializes grid coordinates into a SweepPoint and its topology
// spec.
func (a axes) point(coords []int) (SweepPoint, TopologySpec) {
	spec := a.topologies[coords[1]]
	return SweepPoint{
		Protocol:      a.protocols[coords[0]],
		Topology:      spec.Name,
		Receivers:     a.receivers[coords[2]],
		Attackers:     a.attackers[coords[3]],
		Strategy:      a.strategies[coords[4]],
		Cohort:        a.cohorts[coords[5]],
		BottleneckBps: a.bottlenecks[coords[6]],
		SlotNs:        a.slots[coords[7]],
		DelaySpreadNs: a.delaySpreads[coords[8]],
		ChurnRate:     a.churnRates[coords[9]],
		AttackAtNs:    a.attackAts[coords[10]],
		FlapPeriodNs:  a.flapPeriods[coords[11]],
		Seed:          a.seeds[coords[12]],
	}, spec
}

// Size returns the number of grid points the sweep declares (0 if the
// sweep is invalid).
func (sw Sweep) Size() int {
	a, err := sw.normalize()
	if err != nil {
		return 0
	}
	g, err := a.grid()
	if err != nil {
		return 0
	}
	return g.Size()
}

// Points enumerates every grid point in grid order.
func (sw Sweep) Points() ([]SweepPoint, error) {
	a, err := sw.normalize()
	if err != nil {
		return nil, err
	}
	g, err := a.grid()
	if err != nil {
		return nil, err
	}
	pts := make([]SweepPoint, g.Size())
	for i := range pts {
		pts[i], _ = a.point(g.Coords(i))
	}
	return pts, nil
}

// Run executes every grid point on a pool of `workers` goroutines (0 = one
// per CPU) and merges the results in grid order. Each point is one
// independent Experiment with its own scheduler and RNG, so the returned
// CampaignResult — including its JSON and CSV serializations — is
// byte-identical for any worker count. A point that fails to build or
// panics reports through its PointResult.Error; the rest of the grid is
// unaffected.
func (sw Sweep) Run(workers int) (*CampaignResult, error) {
	a, err := sw.normalize()
	if err != nil {
		return nil, err
	}
	g, err := a.grid()
	if err != nil {
		return nil, err
	}
	if sw.Shards > 1 {
		// Shards multiply each point's goroutine footprint: shrink the
		// worker pool so shards × workers stays at the declared budget
		// (grid order keeps output byte-identical whatever the split).
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers = workers / sw.Shards; workers < 1 {
			workers = 1
		}
	}
	start := time.Now()
	results := make([]PointResult, g.Size())
	// One packet pool per worker: a worker runs its grid points
	// sequentially, so consecutive experiments recycle the same warm
	// freelist instead of re-allocating every envelope. Results stay
	// byte-identical for any worker count because pooling only changes
	// where envelopes come from, never what the simulation computes.
	pools := make([]*packet.Pool, campaign.EffectiveWorkers(g.Size(), workers))
	for i := range pools {
		pools[i] = &packet.Pool{}
	}
	errs := campaign.Run(g.Size(), workers, func(w, i int) error {
		p, spec := a.point(g.Coords(i))
		r, err := sw.runPoint(a, p, spec, pools[w])
		r.Point = p
		results[i] = r
		return err
	})
	res := &CampaignResult{
		Name:       sw.Name,
		DurationNs: a.duration,
		Points:     results,
		Elapsed:    time.Since(start),
	}
	for i, err := range errs {
		if err != nil {
			// A panicking job never stored its result; rebuild the point so
			// the failed entry still says what it was.
			if results[i].Point == (SweepPoint{}) {
				results[i].Point, _ = a.point(g.Coords(i))
			}
			results[i].Error = err.Error()
			res.Failures++
		}
	}
	return res, nil
}

// runPoint builds and runs one grid point's experiment and aggregates its
// statistics. pool, when non-nil, is the running worker's reusable packet
// pool.
func (sw Sweep) runPoint(a axes, p SweepPoint, spec TopologySpec, pool *packet.Pool) (PointResult, error) {
	var pr PointResult
	opts := []Option{
		WithProtocol(p.Protocol),
		WithSeed(p.Seed),
		WithTopologyFunc(func(seed uint64) Topology { return spec.Build(p.BottleneckBps, seed) }),
	}
	if pool != nil {
		opts = append(opts, WithPacketPool(pool))
	}
	if sw.Shards > 1 && p.Attackers == 0 && p.ChurnRate == 0 && p.FlapPeriodNs == 0 {
		// Static points shard; dynamic ones script timeline events below,
		// which forces serial execution anyway — skip the detour.
		opts = append(opts, WithShards(sw.Shards))
	}
	if p.SlotNs > 0 {
		opts = append(opts, WithSlot(p.SlotNs))
	}
	if sw.Schedule.N > 0 {
		opts = append(opts, WithSchedule(sw.Schedule))
	}
	e, err := New(opts...)
	if err != nil {
		return pr, err
	}

	s := e.AddSession(0)
	for i := 0; i < p.Receivers; i++ {
		delay := DefaultDelay
		if p.DelaySpreadNs > 0 {
			// Absolute access delays rising linearly to the declared
			// maximum (as the figure scenarios set them), so the point
			// covers the whole RTT range deterministically.
			delay = p.DelaySpreadNs * Time(i+1) / Time(p.Receivers)
		}
		s.AddReceiverDelay(delay)
	}
	for i := 0; i < p.Attackers; i++ {
		// The classic path goes through TryAddAttacker so attackerless
		// protocols (ProtocolHasAttacker false) surface their typed
		// *NoAttackerError as the point's Error instead of panicking the
		// campaign; RNG draws are identical to AddAttacker, keeping goldens
		// stable.
		var err error
		if p.Strategy == "" {
			_, err = s.TryAddAttacker()
		} else {
			_, err = s.TryAddAttackerStrategy(AttackerStrategy(p.Strategy))
		}
		if err != nil {
			return pr, err
		}
	}
	if p.Cohort > 0 {
		s.AddCohort(p.Cohort)
	}
	// Mid-run dynamics all ride the experiment timeline: attacker onset,
	// Poisson membership churn and bottleneck flapping are the same
	// mechanism a caller scripts through WithTimeline.
	if p.Attackers > 0 && AttackerStrategy(p.Strategy) != StrategyAdaptive {
		// Adaptive attackers compile their own onset from the declared
		// disturbances (churn/flap events below); a scripted AttackerOnset
		// on top would fight their inflation windows.
		onset := a.attackAt
		if p.AttackAtNs > 0 {
			onset = p.AttackAtNs
		}
		e.AddEvents(AttackerOnset{At: onset, Session: 1})
	}
	if p.ChurnRate > 0 {
		e.AddEvents(PoissonChurn{Session: 1, Rate: p.ChurnRate, To: a.duration})
	}
	if p.FlapPeriodNs > 0 {
		e.AddEvents(LinkFlap{Link: 0, Period: p.FlapPeriodNs, To: a.duration})
	}
	if sw.Configure != nil {
		if err := sw.Configure(p, e); err != nil {
			return pr, err
		}
	}

	e.Advance(a.duration)

	var good, atk []float64
	var goodSum, goodWeight float64
	for _, r := range s.Receivers {
		avg := r.Meter().AvgKbps(a.warmup, a.duration)
		if r.Attacker() {
			atk = append(atk, avg)
		} else {
			good = append(good, avg)
			goodSum += avg
			goodWeight++
		}
	}
	for _, c := range s.Cohorts {
		// A cohort's members are homogeneous, so the population enters the
		// statistics as one per-member sample carrying its member count as
		// weight: the mean is the true per-member mean across everyone,
		// and the percentile list gets one entry per population.
		per := c.Meter().AvgKbps(a.warmup, a.duration) / float64(c.Members())
		good = append(good, per)
		goodSum += per * float64(c.Members())
		goodWeight += float64(c.Members())
	}
	if goodWeight > 0 {
		pr.GoodMeanKbps = goodSum / goodWeight
	}
	sort.Float64s(good)
	pr.GoodP10Kbps = stats.PercentileSorted(good, 0.10)
	pr.GoodP50Kbps = stats.PercentileSorted(good, 0.50)
	pr.GoodP90Kbps = stats.PercentileSorted(good, 0.90)
	pr.AttackerMeanKbps = stats.Mean(atk)
	if len(atk) > 0 {
		if total := pr.GoodMeanKbps + pr.AttackerMeanKbps; total > 0 {
			pr.Suppression = pr.GoodMeanKbps / total
		}
	}

	var util float64
	links := e.Topo.Bottlenecks()
	for _, l := range links {
		// CapacityBits integrates rate over up-time, so points whose links
		// were re-rated, downed or flapped mid-run report true utilization.
		if capBits := l.CapacityBits(); capBits > 0 {
			util += float64(l.SentBytes) * 8 / capBits
		}
		pr.LostPackets += l.Queue.Dropped + l.DroppedDown
	}
	if len(links) > 0 {
		pr.Utilization = util / float64(len(links))
	}
	return pr, nil
}
