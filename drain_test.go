package deltasigma_test

import (
	"testing"

	"deltasigma"
)

// drainGrace is the virtual time the shared helper allows for queued,
// in-flight and retransmitted packets to terminate after traffic stops.
const drainGrace = 10 * deltasigma.Second

// drainAndVerify is the facade test suite's shared leak check, built on the
// invariant layer: stop every traffic source, let the network drain, then
// assert the structural post-drain invariants — pool balance (every pooled
// packet reference came back), per-link conservation, and empty links. Call
// it at the end of any facade-level test; it subsumes the hand-rolled
// pool.Outstanding()==0 checks the tests used to duplicate.
func drainAndVerify(t *testing.T, exp *deltasigma.Experiment) {
	t.Helper()
	if vs := exp.DrainAndAudit(drainGrace); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("invariant violated after drain: %v", v)
		}
	}
}
