package deltasigma_test

import (
	"testing"

	"deltasigma"
)

// TestColludingStrategy wires two colluding attackers with unequal
// entitlements — star spokes of different capacity, so one member's
// legitimate receiver decodes keys for groups the other could never reach
// — and checks the cohort machinery end to end: the shared pool exists,
// taps on the members' legitimate clients capture real keys, and the
// poorer member replays the richer member's keys above its own level.
func TestColludingStrategy(t *testing.T) {
	exp, err := deltasigma.New(
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithStar(600_000, 150_000),
		deltasigma.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.AddSession(0)
	s.AddReceiver()                                           // round-robin: fast spoke
	s.AddReceiver()                                           // slow spoke
	a1 := s.AddAttackerStrategy(deltasigma.StrategyColluding) // fast spoke: learns high-group keys
	a2 := s.AddAttackerStrategy(deltasigma.StrategyColluding) // slow spoke: replays them
	if a1.Strategy() != deltasigma.StrategyColluding || a2.Strategy() != deltasigma.StrategyColluding {
		t.Fatalf("strategies = %q, %q; want colluding", a1.Strategy(), a2.Strategy())
	}
	pool := s.Collusion()
	if pool == nil || pool.Members() != 2 {
		t.Fatalf("collusion pool = %v, want 2 members", pool)
	}
	exp.AddEvents(deltasigma.AttackerOnset{At: 2 * deltasigma.Second, Session: 1, Receiver: 3})
	exp.AddEvents(deltasigma.AttackerOnset{At: 2 * deltasigma.Second, Session: 1, Receiver: 4})
	exp.Run(12 * deltasigma.Second)

	if pool.KeysLearned == 0 {
		t.Error("collusion tap captured no real keys from the members' legitimate subscriptions")
	}
	if pool.SharedSubmitted == 0 {
		t.Error("no shared keys were replayed by non-entitled members")
	}
}

// TestForgingStrategy checks the feedback-forging attacker: it targets
// same-edge honest receivers with spoofed unsubscribes and floods the
// source with bogus consolidated feedback, and the honest victims end the
// run measurably suppressed relative to an undisturbed session.
func TestForgingStrategy(t *testing.T) {
	exp, err := deltasigma.New(
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithDumbbell(500_000),
		deltasigma.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.AddSession(0)
	honest := s.AddReceiver()
	atk := s.AddAttackerStrategy(deltasigma.StrategyForging)
	if atk.Strategy() != deltasigma.StrategyForging || atk.Forge() == nil {
		t.Fatalf("forging attacker not wired: strategy %q, forge %v", atk.Strategy(), atk.Forge())
	}
	exp.AddEvents(deltasigma.AttackerOnset{At: 2 * deltasigma.Second, Session: 1, Receiver: 2})
	exp.Run(12 * deltasigma.Second)

	f := atk.Forge()
	if f.ForgedUnsubscribes == 0 {
		t.Error("forging attacker sent no spoofed unsubscribes")
	}
	if f.ForgedReports == 0 {
		t.Error("forging attacker sent no bogus feedback reports")
	}
	// The victim must actually lose throughput while the attack runs.
	got := honest.Meter().AvgKbps(7*deltasigma.Second, 12*deltasigma.Second)
	if got > 100 {
		t.Errorf("honest receiver still at %.0f Kbps under forged eviction; expected suppression", got)
	}
}

// TestAdaptiveStrategy checks the adaptive attacker's compiled schedule:
// with a scripted churn window it inflates at the window's opening and
// deflates at its close, and AdaptiveOnset predicts the onset.
func TestAdaptiveStrategy(t *testing.T) {
	events := []deltasigma.TimelineEvent{
		deltasigma.PoissonChurn{Session: 1, Rate: 0.5, From: 3 * deltasigma.Second, To: 6 * deltasigma.Second},
	}
	if got := deltasigma.AdaptiveOnset(events); got != 3*deltasigma.Second {
		t.Fatalf("AdaptiveOnset = %v, want 3s (the churn window opening)", got)
	}
	// With nothing to react to, the fallback onset is early and fixed.
	if got := deltasigma.AdaptiveOnset(nil); got != deltasigma.Second {
		t.Fatalf("AdaptiveOnset(nil) = %v, want the 1s fallback", got)
	}

	exp, err := deltasigma.New(
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithDumbbell(500_000),
		deltasigma.WithSeed(3),
		deltasigma.WithTimeline(events...),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.AddSession(0)
	s.AddReceiver()
	s.AddReceiver()
	atk := s.AddAttackerStrategy(deltasigma.StrategyAdaptive)

	exp.Advance(2 * deltasigma.Second)
	if atk.Inflated() {
		t.Fatal("adaptive attacker inflated before the disturbance window")
	}
	exp.Advance(4 * deltasigma.Second)
	if !atk.Inflated() {
		t.Fatal("adaptive attacker idle inside the churn window")
	}
	exp.Advance(7 * deltasigma.Second)
	if atk.Inflated() {
		t.Fatal("adaptive attacker still inflated after the window closed")
	}
}

// TestStrategyDegradesOnUnprotected: without a SIGMA control plane there
// is nothing to collude against or forge into, so those strategies run
// the classic inflator (which already wins outright on FLID-DL).
func TestStrategyDegradesOnUnprotected(t *testing.T) {
	exp, err := deltasigma.New(
		deltasigma.WithProtocol("flid-dl"),
		deltasigma.WithDumbbell(500_000),
		deltasigma.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.AddSession(0)
	s.AddReceiver()
	for _, st := range []deltasigma.AttackerStrategy{deltasigma.StrategyColluding, deltasigma.StrategyForging} {
		if got := s.AddAttackerStrategy(st).Strategy(); got != deltasigma.StrategyClassic {
			t.Errorf("%s on flid-dl runs %q, want degraded to classic", st, got)
		}
	}
}

// TestStrategyForcesSerialSharding: non-classic strategies mutate
// cross-shard state, so a sharded experiment downgrades to serial with a
// recorded reason, exactly like scripted timelines do.
func TestStrategyForcesSerialSharding(t *testing.T) {
	exp, err := deltasigma.New(
		deltasigma.WithProtocol("flid-ds"),
		deltasigma.WithDumbbell(500_000),
		deltasigma.WithSeed(3),
		deltasigma.WithShards(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.AddSession(0)
	s.AddAttackerStrategy(deltasigma.StrategyColluding)
	s.AddReceiver()
	if shards, _, reason := exp.ShardStatus(); shards != 1 || reason == "" {
		t.Fatalf("ShardStatus = %d shards, reason %q; want serial with a recorded reason", shards, reason)
	}
	exp.Run(2 * deltasigma.Second) // still runs fine serially
}
